#include <cmath>

#include "common/rng.hpp"
#include "models/models.hpp"
#include "nn/prune.hpp"

namespace decimate {

namespace {

struct VitBuilder {
  Graph g;
  Rng rng;
  const VitOptions& opt;
  int tokens;
  std::vector<int8_t> gelu_lut;
  std::vector<uint8_t> exp_lut;

  explicit VitBuilder(const VitOptions& o)
      : g({o.image_hw, o.image_hw, 4}),  // C=3 padded to 4
        rng(o.seed),
        opt(o),
        tokens((o.image_hw / o.patch) * (o.image_hw / o.patch)),
        gelu_lut(build_gelu_lut(0.05f, 0.05f)),
        exp_lut(build_exp_lut(0.125f)) {}

  Tensor8 weights(int rows, int cols, int prune_m) {
    Tensor8 w = Tensor8::random({rows, cols}, rng);
    if (prune_m != 0 && cols % prune_m == 0) {
      nm_prune(w.flat(), rows, cols, 1, prune_m);
    }
    return w;
  }

  Tensor32 bias(int k) {
    Tensor32 b({k});
    for (int i = 0; i < k; ++i) b[i] = rng.uniform_int(-500, 500);
    return b;
  }

  int fc(const std::string& name, int in_id, int t, int c, int k,
         int prune_m) {
    Node n;
    n.op = OpType::kFc;
    n.name = name;
    n.inputs = {in_id};
    n.fc = FcGeom{.tokens = t, .c = c, .k = k};
    n.weights = weights(k, c, prune_m);
    n.bias = bias(k);
    n.rq = calibrate_requant(c);
    n.out_shape = {t, k};
    return g.add(std::move(n));
  }

  int layernorm(const std::string& name, int in_id) {
    const auto shape = g.node(in_id).out_shape;
    const int l = shape[1];
    Node n;
    n.op = OpType::kLayerNorm;
    n.name = name;
    n.inputs = {in_id};
    n.gamma = Tensor8({l});
    n.beta = Tensor8({l});
    for (int i = 0; i < l; ++i) {
      n.gamma[i] = static_cast<int8_t>(rng.uniform_int(48, 80));  // ~1.0 Q6
      n.beta[i] = static_cast<int8_t>(rng.uniform_int(-10, 10));
    }
    n.out_shape = shape;
    return g.add(std::move(n));
  }

  int slice(const std::string& name, int in_id, int c0, int c1) {
    Node n;
    n.op = OpType::kSlice;
    n.name = name;
    n.inputs = {in_id};
    n.slice_begin = c0;
    n.slice_end = c1;
    n.out_shape = {g.node(in_id).out_shape[0], c1 - c0};
    return g.add(std::move(n));
  }

  int add(const std::string& name, int a, int b_) {
    Node n;
    n.op = OpType::kAdd;
    n.name = name;
    n.inputs = {a, b_};
    n.rq = Requant{1, 1};
    n.rq2 = Requant{1, 1};
    n.out_shape = g.node(a).out_shape;
    return g.add(std::move(n));
  }

  /// One transformer encoder block.
  int block(const std::string& name, int x) {
    const int d = opt.dim, h = opt.heads, dh = d / h;
    const int ln1 = layernorm(name + ".ln1", x);
    const int qkv = fc(name + ".qkv", ln1, tokens, d, 3 * d, 0);
    std::vector<int> head_outs;
    for (int hi = 0; hi < h; ++hi) {
      const std::string hn = name + ".h" + std::to_string(hi);
      const int q = slice(hn + ".q", qkv, hi * dh, (hi + 1) * dh);
      const int k = slice(hn + ".k", qkv, d + hi * dh, d + (hi + 1) * dh);
      const int v = slice(hn + ".v", qkv, 2 * d + hi * dh, 2 * d + (hi + 1) * dh);
      // scores = q @ k^T / sqrt(dh): K-matrix rows are already {tok, dh}
      Node sc;
      sc.op = OpType::kMatmul;
      sc.name = hn + ".qk";
      sc.inputs = {q, k};
      sc.fc = FcGeom{.tokens = tokens, .c = dh, .k = tokens};
      sc.rq = make_requant(1.0 / (16.0 * std::sqrt(static_cast<double>(dh))),
                           127ll * 127 * dh);
      sc.transpose_b = false;
      sc.out_shape = {tokens, tokens};
      const int scores = g.add(std::move(sc));
      Node sm;
      sm.op = OpType::kSoftmax;
      sm.name = hn + ".softmax";
      sm.inputs = {scores};
      sm.exp_lut = exp_lut;
      sm.out_shape = {tokens, tokens};
      const int probs = g.add(std::move(sm));
      Node av;
      av.op = OpType::kMatmul;
      av.name = hn + ".av";
      av.inputs = {probs, v};
      av.fc = FcGeom{.tokens = tokens, .c = tokens, .k = dh};
      av.rq = make_requant(1.0 / 96.0, 127ll * 127 * tokens);
      av.transpose_b = true;  // V is {tok, dh}; needs {dh, tok} rows
      av.out_shape = {tokens, dh};
      head_outs.push_back(g.add(std::move(av)));
    }
    Node cat;
    cat.op = OpType::kConcat;
    cat.name = name + ".concat";
    cat.inputs = head_outs;
    cat.out_shape = {tokens, d};
    const int merged = g.add(std::move(cat));
    const int proj = fc(name + ".proj", merged, tokens, d, d, 0);
    const int res1 = add(name + ".add1", x, proj);
    // FFN (the sparsified part, Sec. 5.1)
    const int ln2 = layernorm(name + ".ln2", res1);
    const int up = fc(name + ".ffn.fc1", ln2, tokens, d, opt.mlp,
                      opt.sparsity_m);
    Node gelu;
    gelu.op = OpType::kLut;
    gelu.name = name + ".ffn.gelu";
    gelu.inputs = {up};
    gelu.lut = gelu_lut;
    gelu.out_shape = {tokens, opt.mlp};
    const int act = g.add(std::move(gelu));
    const int down = fc(name + ".ffn.fc2", act, tokens, opt.mlp, d,
                        opt.sparsity_m);
    return add(name + ".add2", res1, down);
  }
};

}  // namespace

Graph build_vit(const VitOptions& opt) {
  DECIMATE_CHECK(opt.dim % opt.heads == 0, "dim must divide into heads");
  DECIMATE_CHECK(opt.image_hw % opt.patch == 0, "image must tile by patch");
  VitBuilder b(opt);
  const int grid = opt.image_hw / opt.patch;

  // patch embedding as a strided convolution
  ConvGeom pe{.ix = opt.image_hw, .iy = opt.image_hw, .c = 4, .k = opt.dim,
              .fx = opt.patch, .fy = opt.patch, .stride = opt.patch, .pad = 0};
  Node embed;
  embed.op = OpType::kConv2d;
  embed.name = "patch_embed";
  embed.inputs = {0};
  embed.conv = pe;
  embed.weights = b.weights(opt.dim, pe.fsz(), 0);
  embed.bias = b.bias(opt.dim);
  embed.rq = calibrate_requant(pe.fsz());
  embed.out_shape = {grid, grid, opt.dim};
  int x = b.g.add(std::move(embed));

  Node tok;
  tok.op = OpType::kReshape;
  tok.name = "to_tokens";
  tok.inputs = {x};
  tok.out_shape = {b.tokens, opt.dim};
  x = b.g.add(std::move(tok));

  for (int blk = 0; blk < opt.depth; ++blk) {
    x = b.block("block" + std::to_string(blk), x);
  }

  x = b.layernorm("ln_final", x);
  // mean-pool tokens: reshape to {T, 1, D} and use the avgpool kernel
  Node rs;
  rs.op = OpType::kReshape;
  rs.name = "pool_view";
  rs.inputs = {x};
  rs.out_shape = {b.tokens, 1, opt.dim};
  x = b.g.add(std::move(rs));
  Node pool;
  pool.op = OpType::kAvgPool;
  pool.name = "token_pool";
  pool.inputs = {x};
  pool.rq = make_requant(1.0 / b.tokens, 127ll * b.tokens);
  pool.out_shape = {opt.dim};
  x = b.g.add(std::move(pool));
  Node rs2;
  rs2.op = OpType::kReshape;
  rs2.name = "head_view";
  rs2.inputs = {x};
  rs2.out_shape = {1, opt.dim};
  x = b.g.add(std::move(rs2));
  b.fc("head", x, 1, opt.dim, opt.num_classes, 0);
  return std::move(b.g);
}

Graph build_ffn_block(int tokens, int d, int hidden, int sparsity_m,
                      uint64_t seed) {
  Rng rng(seed);
  Graph g({tokens, d});
  const auto fc = [&](const char* name, int in, int c, int k) {
    Node n;
    n.op = OpType::kFc;
    n.name = name;
    n.inputs = {in};
    n.fc = FcGeom{.tokens = tokens, .c = c, .k = k};
    n.weights = Tensor8::random({k, c}, rng);
    if (sparsity_m) nm_prune(n.weights.flat(), k, c, 1, sparsity_m);
    n.bias = Tensor32({k}, 0);
    n.rq = calibrate_requant(c);
    n.out_shape = {tokens, k};
    return g.add(std::move(n));
  };
  fc("fc2", fc("fc1", 0, d, hidden), hidden, d);
  return g;
}

}  // namespace decimate
