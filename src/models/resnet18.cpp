#include "common/rng.hpp"
#include "models/models.hpp"
#include "nn/prune.hpp"

namespace decimate {

namespace {

Tensor8 synth_weights(int rows, int cols, Rng& rng, int prune_m) {
  Tensor8 w = Tensor8::random({rows, cols}, rng);
  if (prune_m != 0 && cols % prune_m == 0) {
    nm_prune(w.flat(), rows, cols, 1, prune_m);
  }
  return w;
}

Tensor32 synth_bias(int k, Rng& rng) {
  Tensor32 b({k});
  for (int i = 0; i < k; ++i) b[i] = rng.uniform_int(-500, 500);
  return b;
}

struct ResnetBuilder {
  Graph g;
  Rng rng;
  int prune_m;

  ResnetBuilder(const Resnet18Options& opt)
      : g({opt.input_hw, opt.input_hw, 4}),  // C=3 padded to 4
        rng(opt.seed),
        prune_m(opt.sparsity_m) {}

  void set_stage_sparsity(const Resnet18Options& opt, int stage) {
    if (!opt.per_stage_m.empty()) {
      DECIMATE_CHECK(opt.per_stage_m.size() == 4,
                     "per_stage_m must have 4 entries");
      prune_m = opt.per_stage_m[static_cast<size_t>(stage)];
    }
  }

  /// conv + optional fused relu node; returns last node id.
  int conv(const std::string& name, int in_id, int hw_in, int c, int k,
           int fsz_side, int stride, int pad, bool sparse, bool relu) {
    ConvGeom geom{.ix = hw_in, .iy = hw_in, .c = c, .k = k,
                  .fx = fsz_side, .fy = fsz_side, .stride = stride,
                  .pad = pad};
    Node n;
    n.op = OpType::kConv2d;
    n.name = name;
    n.inputs = {in_id};
    n.conv = geom;
    n.weights = synth_weights(k, geom.fsz(), rng, sparse ? prune_m : 0);
    n.bias = synth_bias(k, rng);
    n.rq = calibrate_requant(geom.fsz());
    n.out_shape = {geom.oy(), geom.ox(), k};
    int id = g.add(std::move(n));
    if (relu) {
      Node r;
      r.op = OpType::kRelu;
      r.name = name + ".relu";
      r.inputs = {id};
      r.out_shape = g.node(id).out_shape;
      id = g.add(std::move(r));
    }
    return id;
  }

  /// basic block: two 3x3 convs + skip (optionally downsampled).
  int block(const std::string& name, int in_id, int hw_in, int c_in, int k,
            int stride) {
    const int c1 = conv(name + ".conv1", in_id, hw_in, c_in, k, 3, stride, 1,
                        /*sparse=*/true, /*relu=*/true);
    const int hw_mid = g.node(c1).out_shape[0];
    const int c2 = conv(name + ".conv2", c1, hw_mid, k, k, 3, 1, 1,
                        /*sparse=*/true, /*relu=*/false);
    int skip = in_id;
    if (stride != 1 || c_in != k) {
      skip = conv(name + ".down", in_id, hw_in, c_in, k, 1, stride, 0,
                  /*sparse=*/false, /*relu=*/false);
    }
    Node add;
    add.op = OpType::kAdd;
    add.name = name + ".add";
    add.inputs = {c2, skip};
    add.rq = Requant{1, 1};
    add.rq2 = Requant{1, 1};
    add.out_shape = g.node(c2).out_shape;
    int id = g.add(std::move(add));
    Node r;
    r.op = OpType::kRelu;
    r.name = name + ".relu";
    r.inputs = {id};
    r.out_shape = g.node(id).out_shape;
    return g.add(std::move(r));
  }
};

}  // namespace

Graph build_resnet18(const Resnet18Options& opt) {
  DECIMATE_CHECK(opt.sparsity_m == 0 || opt.sparsity_m == 2 ||
                     opt.sparsity_m == 4 || opt.sparsity_m == 8 ||
                     opt.sparsity_m == 16,
                 "sparsity must be 0/2/4/8/16");
  ResnetBuilder b(opt);
  const int hw = opt.input_hw;
  // stem: 3x3 s1 (CIFAR variant), dense
  int x = b.conv("stem", 0, hw, 4, 64, 3, 1, 1, /*sparse=*/false, true);

  struct Stage { int k, stride; };
  const Stage stages[4] = {{64, 1}, {128, 2}, {256, 2}, {512, 2}};
  int c_in = 64;
  int cur_hw = hw;
  for (int s = 0; s < 4; ++s) {
    const auto [k, stride] = stages[s];
    b.set_stage_sparsity(opt, s);
    x = b.block("layer" + std::to_string(s + 1) + ".0", x, cur_hw, c_in, k,
                stride);
    cur_hw = b.g.node(x).out_shape[0];
    x = b.block("layer" + std::to_string(s + 1) + ".1", x, cur_hw, k, k, 1);
    c_in = k;
  }

  Node pool;
  pool.op = OpType::kAvgPool;
  pool.name = "avgpool";
  pool.inputs = {x};
  pool.rq = make_requant(1.0 / (cur_hw * cur_hw), 127ll * cur_hw * cur_hw);
  pool.out_shape = {512};
  x = b.g.add(std::move(pool));

  Node reshape;
  reshape.op = OpType::kReshape;
  reshape.name = "flatten";
  reshape.inputs = {x};
  reshape.out_shape = {1, 512};
  x = b.g.add(std::move(reshape));

  Node head;
  head.op = OpType::kFc;
  head.name = "fc";
  head.inputs = {x};
  head.fc = FcGeom{.tokens = 1, .c = 512, .k = opt.num_classes};
  head.weights = synth_weights(opt.num_classes, 512, b.rng, 0);
  head.bias = synth_bias(opt.num_classes, b.rng);
  head.rq = calibrate_requant(512);
  head.out_shape = {1, opt.num_classes};
  b.g.add(std::move(head));
  return std::move(b.g);
}

}  // namespace decimate
