#pragma once
// End-to-end network builders with deterministic synthetic weights:
//  - ResNet18 (CIFAR geometry, 32x32 input): N:M pruning applied to all
//    3x3 convolutions except the stem (paper Sec. 5.1: "N:M pruning to 3x3
//    convolutions, leaving pointwise layers dense"); the stem conv has
//    C=3 (padded to 4), which no 1:8/1:16 pattern divides, so it stays
//    dense like the pointwise layers.
//  - ViT-Small/16 @224: N:M pruning applied to the FFN FC layers only
//    (Sec. 5.1). This variant mean-pools tokens instead of using a CLS
//    token (196 vs the paper's 197 tokens; same cost to within 0.5%) and
//    folds the positional embedding (latency-neutral), as documented in
//    DESIGN.md.

#include "compiler/graph.hpp"

namespace decimate {

struct Resnet18Options {
  int sparsity_m = 0;  // 0 = dense; 2/4/8/16 = 1:M on 3x3 convs
  // Per-stage override (paper future work: variable sparsity patterns).
  // When non-empty, must hold 4 entries (one per residual stage); each is
  // 0/4/8/16 and overrides sparsity_m for that stage's 3x3 convs. The
  // pattern table recognizes each layer's M independently, so mixed
  // networks deploy without any further configuration.
  std::vector<int> per_stage_m = {};
  int num_classes = 100;
  int input_hw = 32;
  uint64_t seed = 42;
};

Graph build_resnet18(const Resnet18Options& opt = {});

struct VitOptions {
  int sparsity_m = 0;  // 0 = dense; 4/8/16 = 1:M on FFN FC layers
  int image_hw = 224;
  int patch = 16;
  int dim = 384;
  int depth = 12;
  int heads = 6;
  int mlp = 1536;
  int num_classes = 10;
  uint64_t seed = 43;
};

Graph build_vit(const VitOptions& opt = {});

/// Bare transformer FFN pair (fc1: d -> hidden, fc2: hidden -> d) over
/// `tokens` rows with deterministic synthetic weights, optionally 1:m
/// pruned — the FC-dominated workload the batch/shard benches and tests
/// share.
Graph build_ffn_block(int tokens, int d, int hidden, int sparsity_m,
                      uint64_t seed);

}  // namespace decimate
