#include "verify/verify.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/bitutil.hpp"
#include "exec/compile.hpp"
#include "exec/tile_runner.hpp"
#include "nn/prune.hpp"
#include "shard/shard_planner.hpp"
#include "sim/memory_map.hpp"
#include "trace/metrics.hpp"

namespace decimate {

const char* verify_severity_name(VerifySeverity s) {
  return s == VerifySeverity::kError ? "error" : "warn";
}

int VerifyReport::errors() const {
  int n = 0;
  for (const VerifyFinding& f : findings) {
    n += (f.severity == VerifySeverity::kError) ? 1 : 0;
  }
  return n;
}

int VerifyReport::warnings() const {
  return static_cast<int>(findings.size()) - errors();
}

bool VerifyReport::has(std::string_view check) const {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const VerifyFinding& f) { return f.check == check; });
}

std::string VerifyReport::to_string() const {
  std::ostringstream oss;
  oss << "plan verification: " << checks_run << " checks, " << errors()
      << " error(s), " << warnings() << " warning(s)";
  for (const VerifyFinding& f : findings) {
    oss << "\n  [" << verify_severity_name(f.severity) << "] " << f.check
        << " (node " << f.node_id << "): " << f.message;
  }
  return oss.str();
}

namespace {

std::string verify_error_what(const VerifyReport& report) {
  std::ostringstream oss;
  oss << "plan verification failed: " << report.errors() << " error(s)";
  int shown = 0;
  for (const VerifyFinding& f : report.findings) {
    if (shown == 8) {
      oss << "\n  ... " << report.findings.size() - 8 << " more";
      break;
    }
    oss << "\n  [" << verify_severity_name(f.severity) << "] " << f.check
        << " (node " << f.node_id << "): " << f.message;
    ++shown;
  }
  return oss.str();
}

}  // namespace

VerifyError::VerifyError(VerifyReport report)
    : Error(verify_error_what(report)), report_(std::move(report)) {}

namespace {

constexpr int64_t kInt32Max = std::numeric_limits<int32_t>::max();

/// One verification pass over a plan. Checks never execute kernels: they
/// re-derive expectations from the graph and compare against what the
/// plan recorded.
class PlanVerifier {
 public:
  explicit PlanVerifier(const CompiledPlan& plan) : plan_(plan) {}

  VerifyReport run() {
    if (!require(plan_.graph != nullptr, "graph.missing", 0,
                 "plan carries no graph pointer")) {
      return std::move(report_);
    }
    check_plan_structure();
    for (const PlanStep& step : plan_.steps) {
      // steps with an out-of-range node_id were already flagged by
      // plan.steps; per-step checks can't dereference their node
      if (step.node_id < 1 || step.node_id >= plan_.graph->size()) continue;
      check_step(step);
    }
    check_plan_totals();
    return std::move(report_);
  }

 private:
  void add(VerifySeverity sev, const char* check, int node,
           const std::string& msg) {
    report_.findings.push_back({sev, check, node, msg});
  }

  /// Evaluate one check; false records an error-level finding.
  bool require(bool ok, const char* check, int node, const std::string& msg) {
    ++report_.checks_run;
    if (!ok) add(VerifySeverity::kError, check, node, msg);
    return ok;
  }

  bool warn_unless(bool ok, const char* check, int node,
                   const std::string& msg) {
    ++report_.checks_run;
    if (!ok) add(VerifySeverity::kWarn, check, node, msg);
    return ok;
  }

  static std::string str(int64_t v) { return std::to_string(v); }

  // -- plan-level structure ------------------------------------------------

  void check_plan_structure() {
    const Graph& g = *plan_.graph;
    if (!require(static_cast<int>(plan_.steps.size()) == g.size() - 1,
                 "plan.steps", 0,
                 "plan has " + str(static_cast<int64_t>(plan_.steps.size())) +
                     " steps for " + str(g.size() - 1) + " graph nodes")) {
      return;
    }
    for (size_t i = 0; i < plan_.steps.size(); ++i) {
      const PlanStep& step = plan_.steps[i];
      require(step.node_id == static_cast<int>(i) + 1 &&
                  step.op == g.node(step.node_id).op,
              "plan.steps", step.node_id,
              "step " + str(static_cast<int64_t>(i)) +
                  " does not mirror its graph node");
    }
  }

  void check_plan_totals() {
    uint64_t cycles = 0;
    int64_t macs = 0;
    int64_t weights = 0;
    for (const PlanStep& step : plan_.steps) {
      cycles += step.report.total_cycles;
      macs += step.report.macs;
      if ((step.op == OpType::kConv2d || step.op == OpType::kFc) &&
          step.node_id >= 1 && step.node_id < plan_.graph->size()) {
        weights += deployed_weight_bytes(plan_.graph->node(step.node_id),
                                         step.choice);
      }
    }
    require(plan_.total_cycles == cycles && plan_.total_macs == macs,
            "plan.totals", 0,
            "plan totals (cycles " + str(static_cast<int64_t>(
                plan_.total_cycles)) + ", macs " + str(plan_.total_macs) +
                ") != sum of step reports (" +
                str(static_cast<int64_t>(cycles)) + ", " + str(macs) + ")");
    require(plan_.weight_bytes == weights, "mem.weight_bytes", 0,
            "plan.weight_bytes " + str(plan_.weight_bytes) +
                " != re-derived deployed bytes " + str(weights));
    require(Compiler::weight_region(plan_.weight_bytes) == plan_.weight_region,
            "mem.weight_region", 0,
            "weight region does not match the deployed-bytes budget rule (" +
                str(plan_.weight_bytes) + " bytes)");
  }

  // -- per-step dispatch ---------------------------------------------------

  void check_step(const PlanStep& step) {
    const Node& node = plan_.graph->node(step.node_id);
    switch (step.op) {
      case OpType::kConv2d: check_conv(step, node); break;
      case OpType::kFc:
      case OpType::kMatmul: check_fc(step, node); break;
      case OpType::kReshape:
        check_reshape(step, node);
        break;
      case OpType::kSlice: check_slice(step, node); break;
      case OpType::kConcat: check_concat(step, node); break;
      default: check_vec(step, node); break;
    }
    check_report_cycles(step, node);
  }

  // -- family 1: graph / shape legality ------------------------------------

  void check_conv(const PlanStep& step, const Node& node) {
    const ConvGeom& g = node.conv;
    bool geom_ok = true;
    try {
      g.validate();
    } catch (const Error& e) {
      geom_ok = false;
      add(VerifySeverity::kError, "shape.geom", step.node_id, e.what());
    }
    ++report_.checks_run;
    if (!geom_ok) return;

    require(node.out_shape == std::vector<int>{g.oy(), g.ox(), g.k},
            "shape.out", step.node_id,
            "out_shape does not match conv geometry {" + str(g.oy()) + ", " +
                str(g.ox()) + ", " + str(g.k) + "}");
    require(node.weights.shape() == std::vector<int>{g.k, g.fsz()},
            "shape.weights", step.node_id,
            "weights shape != {K, FY*FX*C} = {" + str(g.k) + ", " +
                str(g.fsz()) + "}");
    require(g.c % 4 == 0 && g.ox() % 2 == 0, "kernel.legal", step.node_id,
            "conv kernels need C % 4 == 0 and an even OX (C=" + str(g.c) +
                ", OX=" + str(g.ox()) + ")");
    check_kernel_choice(step, node, g.k, g.fsz());
    require(step.report.macs == g.macs(), "report.macs", step.node_id,
            "reported MACs " + str(step.report.macs) + " != geometry MACs " +
                str(g.macs()));

    const int batch = step.batch_fused ? std::max(1, plan_.options.batch) : 1;
    check_gemm_tiles(step, g.oy(), g.k, g.ox(), batch);
    // conv tile input windows must stay inside the padded input extent
    for (const ShardTile& t : step.tiles_meta) {
      const int len = t.a_e - t.a_s;
      if (len <= 0) continue;
      if (!require((len - 1) * g.stride + g.fy <= g.iy + 2 * g.pad,
                   "mem.window", step.node_id,
                   "tile rows [" + str(t.a_s) + ", " + str(t.a_e) +
                       ") need an input window taller than the padded "
                       "input")) {
        break;
      }
    }
    require(step.conv_tiles.l1_bytes > 0 &&
                step.conv_tiles.l1_bytes <= MemoryMap::kL1Size,
            "mem.l1", step.node_id,
            "conv tile L1 footprint " + str(step.conv_tiles.l1_bytes) +
                " outside (0, " + str(MemoryMap::kL1Size) + "]");
    check_pack(step, node, g.k, g.fsz());
    check_gemm_quant(step, node, g.fsz());
    check_program(step);
  }

  void check_fc(const PlanStep& step, const Node& node) {
    const FcGeom& g = node.fc;
    bool geom_ok = true;
    try {
      g.validate();
    } catch (const Error& e) {
      geom_ok = false;
      add(VerifySeverity::kError, "shape.geom", step.node_id, e.what());
    }
    ++report_.checks_run;
    if (!geom_ok) return;

    require(node.out_shape == std::vector<int>{g.tokens, g.k}, "shape.out",
            step.node_id,
            "out_shape does not match fc geometry {" + str(g.tokens) + ", " +
                str(g.k) + "}");
    if (node.op == OpType::kFc) {
      require(node.weights.shape() == std::vector<int>{g.k, g.c},
              "shape.weights", step.node_id,
              "weights shape != {K, C} = {" + str(g.k) + ", " + str(g.c) +
                  "}");
    }
    check_kernel_choice(step, node, g.k, g.c);
    require(step.report.macs == g.macs(), "report.macs", step.node_id,
            "reported MACs " + str(step.report.macs) + " != geometry MACs " +
                str(g.macs()));

    // batch-fused FC folds the batch into the token axis
    const int batch = step.batch_fused ? std::max(1, plan_.options.batch) : 1;
    check_gemm_tiles(step, g.tokens * batch, g.k, /*ox_mult=*/1,
                     /*cover=*/1);
    require(step.fc_tiles.l1_bytes > 0 &&
                step.fc_tiles.l1_bytes <= MemoryMap::kL1Size,
            "mem.l1", step.node_id,
            "fc tile L1 footprint " + str(step.fc_tiles.l1_bytes) +
                " outside (0, " + str(MemoryMap::kL1Size) + "]");
    check_pack(step, node, g.k, g.c);
    check_gemm_quant(step, node, g.c);
    check_program(step);
  }

  void check_kernel_choice(const PlanStep& step, const Node& node, int rows,
                           int cols) {
    const KernelChoice& c = step.choice;
    if (!c.sparse()) {
      require(!step.has_packed, "pack.missing", step.node_id,
              "dense kernel choice but the step carries packed weights");
      return;
    }
    require(c.m == 2 || c.m == 4 || c.m == 8 || c.m == 16, "kernel.legal",
            step.node_id, "sparse M must be 2/4/8/16, got " + str(c.m));
    const bool isa = c.kind == KernelKind::kConvSparseIsa ||
                     c.kind == KernelKind::kFcSparseIsa;
    require(!isa || c.m >= 4, "kernel.legal", step.node_id,
            "xDecimate kernels implement M in {4, 8, 16}, got M=" + str(c.m));
    require(node.op != OpType::kMatmul, "kernel.legal", step.node_id,
            "matmul operands are runtime activations; sparse choice is "
            "illegal");
    if (node.op == OpType::kMatmul) return;
    require(cols % c.m == 0 &&
                is_nm_sparse(node.weights.flat(), rows, cols, 1, c.m),
            "kernel.pattern", step.node_id,
            "weights are not 1:" + str(c.m) + " sparse but a 1:" + str(c.m) +
                " kernel was selected");
    require(step.has_packed, "pack.missing", step.node_id,
            "sparse kernel choice but no packed weights on the step");
  }

  // -- family 2: tile-schedule coverage ------------------------------------

  /// Coverage of the step's (A x K) output grid: every element written
  /// exactly `cover` times (batch-fused conv: once per image), tile
  /// ranges inside bounds, recorded out_bytes consistent.
  void check_gemm_tiles(const PlanStep& step, int A, int K, int ox_mult,
                        int cover) {
    if (!require(step.tiles_meta.size() == step.tile_costs.size(),
                 "tiles.count", step.node_id,
                 str(static_cast<int64_t>(step.tiles_meta.size())) +
                     " tile metadata entries for " +
                     str(static_cast<int64_t>(step.tile_costs.size())) +
                     " tile costs")) {
      return;
    }
    bool bounds_ok = true, bytes_ok = true;
    bool any_in = false, any_w = false;
    std::vector<int> counts(static_cast<size_t>(A) * static_cast<size_t>(K),
                            0);
    for (const ShardTile& t : step.tiles_meta) {
      if (!(0 <= t.a_s && t.a_s <= t.a_e && t.a_e <= A && 0 <= t.k_s &&
            t.k_s <= t.k_e && t.k_e <= K)) {
        if (bounds_ok) {
          add(VerifySeverity::kError, "tiles.bounds", step.node_id,
              "tile [" + str(t.a_s) + "," + str(t.a_e) + ")x[" + str(t.k_s) +
                  "," + str(t.k_e) + ") outside output " + str(A) + "x" +
                  str(K));
        }
        bounds_ok = false;
        continue;
      }
      const int64_t expect_bytes = static_cast<int64_t>(t.a_e - t.a_s) *
                                   ox_mult * (t.k_e - t.k_s);
      if (t.out_bytes != expect_bytes && bytes_ok) {
        add(VerifySeverity::kError, "tiles.out_bytes", step.node_id,
            "tile records " + str(t.out_bytes) + " output bytes, slice is " +
                str(expect_bytes));
        bytes_ok = false;
      }
      any_in = any_in || t.loads_input;
      any_w = any_w || t.loads_weights;
      for (int a = t.a_s; a < t.a_e; ++a) {
        for (int k = t.k_s; k < t.k_e; ++k) {
          ++counts[static_cast<size_t>(a) * static_cast<size_t>(K) +
                   static_cast<size_t>(k)];
        }
      }
    }
    report_.checks_run += 2;  // bounds + out_bytes sweeps
    bool overlap_ok = true, gap_ok = true;
    for (int a = 0; a < A && (overlap_ok || gap_ok); ++a) {
      for (int k = 0; k < K; ++k) {
        const int n = counts[static_cast<size_t>(a) * static_cast<size_t>(K) +
                             static_cast<size_t>(k)];
        if (n > cover && overlap_ok) {
          add(VerifySeverity::kError, "tiles.overlap", step.node_id,
              "output (" + str(a) + ", " + str(k) + ") written " + str(n) +
                  " times, expected " + str(cover));
          overlap_ok = false;
        } else if (n < cover && gap_ok) {
          add(VerifySeverity::kError, "tiles.gap", step.node_id,
              "output (" + str(a) + ", " + str(k) + ") written " + str(n) +
                  " times, expected " + str(cover));
          gap_ok = false;
        }
        if (!overlap_ok && !gap_ok) break;
      }
    }
    report_.checks_run += 2;  // overlap + gap sweeps
    require(step.tiles_meta.empty() || (any_in && any_w), "tiles.loads",
            step.node_id,
            "tile schedule never stages " +
                std::string(any_in ? "weights" : "input") + " in L1");
  }

  /// Row-chunked vector steps: contiguous ascending coverage from row 0.
  void check_row_tiles(const PlanStep& step) {
    if (step.shard_axis != ShardAxis::kRows) return;
    if (!require(step.tiles_meta.size() == step.tile_costs.size(),
                 "tiles.count", step.node_id,
                 "row-chunk metadata not parallel to tile costs")) {
      return;
    }
    int expect = 0;
    bool ok = true;
    for (const ShardTile& t : step.tiles_meta) {
      if (t.a_s != expect || t.a_e <= t.a_s) {
        add(VerifySeverity::kError,
            t.a_s < expect ? "tiles.overlap" : "tiles.gap", step.node_id,
            "row chunk [" + str(t.a_s) + ", " + str(t.a_e) +
                ") breaks contiguous coverage at row " + str(expect));
        ok = false;
        break;
      }
      expect = t.a_e;
    }
    ++report_.checks_run;
    (void)ok;
  }

  // -- family 3: N:M pack validation ---------------------------------------

  void check_pack(const PlanStep& step, const Node& node, int rows,
                  int cols) {
    // a dense choice carrying packed weights was already flagged by
    // pack.missing; layout_for is only defined for sparse kernel kinds
    if (!step.has_packed || !step.choice.sparse()) return;
    const NmPacked& p = step.packed;
    const NmLayout want = TileRunner::layout_for(step.choice.kind);
    require(p.layout == want, "pack.layout", step.node_id,
            std::string("packed layout ") + nm_layout_name(p.layout) +
                " does not match kernel kind (wants " +
                nm_layout_name(want) + ")");
    const bool meta_ok = require(
        p.m == step.choice.m && p.rows == rows && p.cols == cols &&
            p.m > 0 && p.cols % p.m == 0 && p.nz_per_row == p.cols / p.m &&
            p.nz_padded ==
                static_cast<int>(round_up(p.nz_per_row, p.m <= 4 ? 8 : 4)) &&
            p.values_row_bytes == p.nz_padded &&
            (p.layout != NmLayout::kFcIsaInterleaved || p.rows % 2 == 0),
        "pack.meta", step.node_id,
        "packed metadata inconsistent with M=" + str(step.choice.m) + ", " +
            str(rows) + "x" + str(cols));
    if (!meta_ok) return;
    const int units =
        (p.layout == NmLayout::kFcIsaInterleaved) ? p.rows / 2 : p.rows;
    const int fields_per_unit =
        (p.layout == NmLayout::kSw) ? p.nz_padded : 2 * p.nz_padded;
    if (!require(
            p.offsets_row_bytes ==
                    static_cast<int>(round_up(
                        ceil_div(static_cast<int64_t>(fields_per_unit) *
                                     p.offset_bits(),
                                 static_cast<int64_t>(8)),
                        4)) &&
                p.values_bytes() ==
                    static_cast<int64_t>(p.rows) * p.values_row_bytes &&
                p.offsets_bytes() ==
                    static_cast<int64_t>(units) * p.offsets_row_bytes,
            "pack.meta", step.node_id,
            "packed row strides / stream sizes inconsistent with the field "
            "width for M=" + str(p.m))) {
      return;
    }

    // Field-level scan: every stored offset < M, conv-ISA duplicates
    // agree, padding entries are {value 0, offset 0}.
    bool range_ok = true, dup_ok = true, pad_ok = true;
    const int bits = p.offset_bits();
    auto field = [&](int unit, int j) -> int {
      const int bitpos = j * bits;
      const uint8_t byte =
          p.offsets[static_cast<size_t>(unit) * p.offsets_row_bytes +
                    static_cast<size_t>(bitpos / 8)];
      return (byte >> (bitpos % 8)) & ((1 << bits) - 1);
    };
    for (int u = 0; u < units; ++u) {
      for (int j = 0; j < p.nz_padded; ++j) {
        const int raw0 =
            (p.layout == NmLayout::kSw) ? field(u, j) : field(u, 2 * j);
        if (p.layout == NmLayout::kConvIsaDup && dup_ok &&
            raw0 != field(u, 2 * j + 1)) {
          add(VerifySeverity::kError, "pack.dup", step.node_id,
              "conv-ISA duplicated offset fields disagree at row " + str(u) +
                  ", block " + str(j));
          dup_ok = false;
        }
        const int raw1 = (p.layout == NmLayout::kSw)
                             ? raw0
                             : field(u, 2 * j + 1);
        for (const int raw : {raw0, raw1}) {
          if (j < p.nz_per_row) {
            if (raw >= p.m && range_ok) {
              add(VerifySeverity::kError, "pack.offset_range", step.node_id,
                  "offset " + str(raw) + " >= M=" + str(p.m) + " at row " +
                      str(u) + ", block " + str(j));
              range_ok = false;
            }
          } else if (raw != 0 && pad_ok) {
            add(VerifySeverity::kError, "pack.padding", step.node_id,
                "padding offset field non-zero at row " + str(u) +
                    ", block " + str(j));
            pad_ok = false;
          }
        }
      }
    }
    for (int r = 0; r < p.rows && pad_ok; ++r) {
      for (int j = p.nz_per_row; j < p.nz_padded; ++j) {
        if (p.values[static_cast<size_t>(r) * p.values_row_bytes + j] != 0) {
          add(VerifySeverity::kError, "pack.padding", step.node_id,
              "padding value non-zero at row " + str(r) + ", slot " +
                  str(j) + " (the kernels accumulate it)");
          pad_ok = false;
          break;
        }
      }
    }
    report_.checks_run += 3;  // range + dup + padding sweeps

    // Decode round-trip against the graph's dense master copy. Skipped
    // when offsets are out of range (decode would index out of bounds).
    if (range_ok) {
      bool equal = false;
      try {
        equal = p.to_dense() == node.weights;
      } catch (const Error&) {
        equal = false;
      }
      require(equal, "pack.roundtrip", step.node_id,
              "packed weights do not decode back to the graph's dense "
              "weights");
    }
  }

  // -- family 4: quantization range analysis -------------------------------

  void check_requant(const Requant& rq, const char* what, int node_id) {
    require(rq.shift >= 0 && rq.shift < 31, "quant.shift", node_id,
            std::string(what) + " shift " + str(rq.shift) +
                " outside [0, 31)");
    require(rq.mult >= 1, "quant.mult", node_id,
            std::string(what) + " multiplier " + str(rq.mult) +
                " is not positive");
  }

  /// Worst-case |int32 accumulator| from the actual weights (|a| <= 127
  /// per activation) plus bias, then the requant multiply on top.
  void check_gemm_quant(const PlanStep& step, const Node& node, int cols) {
    check_requant(node.rq, "requant", step.node_id);
    int64_t worst = 0;
    if (node.op == OpType::kMatmul || node.weights.numel() == 0) {
      worst = 127ll * 127ll * cols;  // both operands are activations
    } else {
      const int rows = node.weights.dim(0);
      for (int r = 0; r < rows; ++r) {
        int64_t row_sum = 0;
        for (int c = 0; c < cols; ++c) {
          row_sum += std::abs(
              static_cast<int>(node.weights[static_cast<int64_t>(r) * cols +
                                            c]));
        }
        int64_t acc = row_sum * 127;
        if (node.bias.numel() == rows) {
          acc += std::abs(static_cast<int64_t>(node.bias[r]));
        }
        worst = std::max(worst, acc);
      }
    }
    require(worst <= kInt32Max, "quant.overflow", step.node_id,
            "worst-case |accumulator| " + str(worst) +
                " exceeds int32 range");
    if (worst <= kInt32Max && node.rq.mult >= 1) {
      warn_unless(worst * node.rq.mult <= kInt32Max, "quant.wrap",
                  step.node_id,
                  "|acc * mult| can reach " + str(worst * node.rq.mult) +
                      ": the 32-bit requant multiply wraps");
    }
  }

  // -- family 5: program / memory legality ---------------------------------

  void check_program(const PlanStep& step) {
    if (!require(step.program != nullptr, "prog.missing", step.node_id,
                 "gemm step has no kernel program")) {
      return;
    }
    const Program& prog = *step.program;
    const int size = prog.size();
    bool reg_ok = true, target_ok = true, halt = false;
    for (int i = 0; i < size; ++i) {
      const Instr& ins = prog.code[static_cast<size_t>(i)];
      if ((ins.rd >= 32 || ins.rs1 >= 32 || ins.rs2 >= 32) && reg_ok) {
        add(VerifySeverity::kError, "prog.reg", step.node_id,
            std::string("register index >= 32 in ") +
                opcode_name(ins.op) + " at instruction " + str(i));
        reg_ok = false;
      }
      halt = halt || ins.op == Opcode::kHalt;
      const Format fmt = opcode_format(ins.op);
      bool in_range = true;
      switch (fmt) {
        case Format::kFmtB:
        case Format::kFmtJ:
          in_range = ins.imm >= 0 && ins.imm < size;
          break;
        case Format::kFmtLp:
        case Format::kFmtLpI:
          // end marker is the index one past the loop body's last instr
          in_range = ins.imm > i && ins.imm <= size && ins.aux < 2;
          break;
        default: break;
      }
      if (!in_range && target_ok) {
        add(VerifySeverity::kError, "prog.target", step.node_id,
            std::string(opcode_name(ins.op)) + " at instruction " + str(i) +
                " targets " + str(ins.imm) + " outside the program (size " +
                str(size) + ")");
        target_ok = false;
      }
    }
    report_.checks_run += 2;
    require(halt, "prog.halt", step.node_id,
            "kernel program contains no halt");
  }

  // -- vector / marshalling steps ------------------------------------------

  void check_reshape(const PlanStep& step, const Node& node) {
    const Node& in = plan_.graph->node(node.inputs.at(0));
    int64_t in_n = 1, out_n = 1;
    for (int d : in.out_shape) in_n *= d;
    for (int d : node.out_shape) out_n *= d;
    require(in_n == out_n, "shape.reshape", step.node_id,
            "reshape changes element count " + str(in_n) + " -> " +
                str(out_n));
  }

  void check_slice(const PlanStep& step, const Node& node) {
    const Node& in = plan_.graph->node(node.inputs.at(0));
    const bool shape_ok = in.out_shape.size() == 2;
    require(shape_ok && node.slice_begin >= 0 &&
                node.slice_begin < node.slice_end &&
                node.slice_end <= in.out_shape[1],
            "mem.dma", step.node_id,
            "slice columns [" + str(node.slice_begin) + ", " +
                str(node.slice_end) + ") outside the producer tensor");
  }

  void check_concat(const PlanStep& step, const Node& node) {
    int width = 0;
    bool ok = node.out_shape.size() == 2;
    for (int input_id : node.inputs) {
      const Node& in = plan_.graph->node(input_id);
      ok = ok && in.out_shape.size() == 2 &&
           in.out_shape[0] == node.out_shape[0];
      if (in.out_shape.size() == 2) width += in.out_shape[1];
    }
    require(ok && width == node.out_shape[1], "shape.out", step.node_id,
            "concat inputs do not tile the output width");
  }

  void check_vec(const PlanStep& step, const Node& node) {
    check_row_tiles(step);
    if (node.op == OpType::kAdd) {
      check_requant(node.rq, "add input-0 requant", step.node_id);
      check_requant(node.rq2, "add input-1 requant", step.node_id);
    } else if (node.op == OpType::kAvgPool) {
      check_requant(node.rq, "avgpool requant", step.node_id);
      const Node& in = plan_.graph->node(node.inputs.at(0));
      if (in.out_shape.size() == 3) {
        const int64_t worst =
            127ll * in.out_shape[0] * in.out_shape[1];  // per-channel sum
        require(worst <= kInt32Max, "quant.overflow", step.node_id,
                "avgpool accumulator can reach " + str(worst));
      }
    }
  }

  // -- cost bookkeeping ----------------------------------------------------

  void check_report_cycles(const PlanStep& step, const Node& node) {
    (void)node;
    uint64_t expect = step.serial_cycles;
    if (!step.tile_costs.empty()) {
      uint64_t batch_total = 0;
      if (step.pipelined) {
        batch_total = pipeline_total(step.tile_costs);
      } else {
        for (const TileCost& tc : step.tile_costs) {
          batch_total += tc.compute + tc.dma_in + tc.dma_out;
        }
      }
      const uint64_t b =
          step.batch_fused
              ? static_cast<uint64_t>(std::max(1, plan_.options.batch))
              : 1;
      expect = (batch_total + b - 1) / b + step.serial_cycles;
    }
    require(step.report.total_cycles == expect, "report.cycles", step.node_id,
            "reported total " + str(static_cast<int64_t>(
                step.report.total_cycles)) +
                " cycles does not re-derive from the tile schedule (" +
                str(static_cast<int64_t>(expect)) + ")");
  }

  const CompiledPlan& plan_;
  VerifyReport report_;
};

}  // namespace

VerifyReport verify_plan(const CompiledPlan& plan) {
  VerifyReport rep = PlanVerifier(plan).run();
  auto& reg = metrics::registry();
  reg.counter("verify.runs").inc();
  reg.counter("verify.errors").inc(static_cast<uint64_t>(rep.errors()));
  reg.counter("verify.warnings").inc(static_cast<uint64_t>(rep.warnings()));
  return rep;
}

VerifyReport verify_shard(const CompiledPlan& plan, const ShardPlan& shard) {
  VerifyReport rep;
  auto require = [&](bool ok, const char* check, int node,
                     const std::string& msg) {
    ++rep.checks_run;
    if (!ok) rep.findings.push_back({VerifySeverity::kError, check, node, msg});
    return ok;
  };
  auto str = [](int64_t v) { return std::to_string(v); };

  require(plan.options.batch <= 1, "shard.batch", 0,
          "sharded plans must be compiled with batch == 1, got " +
              str(plan.options.batch));
  if (!require(shard.steps.size() == plan.steps.size(), "shard.steps", 0,
               str(static_cast<int64_t>(shard.steps.size())) +
                   " shard steps for " +
                   str(static_cast<int64_t>(plan.steps.size())) +
                   " plan steps")) {
    return rep;
  }

  uint64_t critical = 0, reduce = 0;
  for (size_t i = 0; i < shard.steps.size(); ++i) {
    const PlanStep& step = plan.steps[i];
    const StepShard& ss = shard.steps[i];
    require(ss.node_id == step.node_id, "shard.steps", step.node_id,
            "shard step order does not mirror the plan");
    if (!require(static_cast<int>(ss.slices.size()) == shard.num_clusters,
                 "shard.slices", step.node_id,
                 str(static_cast<int64_t>(ss.slices.size())) +
                     " slices for " + str(shard.num_clusters) +
                     " clusters")) {
      continue;
    }
    critical += ss.critical_cycles;
    reduce += ss.reduce_cycles;

    const bool sharded =
        step.shard_axis != ShardAxis::kNone && !step.tile_costs.empty();
    if (!sharded) {
      bool idle = ss.axis == ShardAxis::kNone;
      for (const ShardSlice& s : ss.slices) idle = idle && !s.active();
      require(idle && ss.critical_cycles == step.report.total_cycles,
              "shard.axis", step.node_id,
              "serial step must run whole on the root cluster");
      continue;
    }

    if (ss.axis == ShardAxis::kFcC) {
      require(step.op == OpType::kFc && step.tile_costs.size() == 1 &&
                  step.shard_axis == ShardAxis::kGemmTiles,
              "shard.axis", step.node_id,
              "kFcC split is only legal for a single-tile FC step");
      const int c_total = plan.graph->node(step.node_id).fc.c;
      int expect_c = 0;
      bool contiguous = true;
      for (const ShardSlice& s : ss.slices) {
        if (!s.active()) continue;
        if (s.c_range.first != expect_c || s.c_range.second <= s.c_range.first)
          contiguous = false;
        expect_c = s.c_range.second;
        if (!s.tiles.empty()) contiguous = false;  // either axis, not both
      }
      require(contiguous && expect_c == c_total, "shard.crange", step.node_id,
              "kFcC feature ranges do not tile [0, " + str(c_total) +
                  ") contiguously");
    } else {
      require(ss.axis == step.shard_axis, "shard.axis", step.node_id,
              "shard axis does not match the plan step");
      // every tile index assigned exactly once across the slices
      std::vector<int> seen(step.tile_costs.size(), 0);
      bool in_range = true;
      int64_t out_bytes_ok = 0;
      for (const ShardSlice& s : ss.slices) {
        int64_t slice_bytes = 0;
        for (int idx : s.tiles) {
          if (idx < 0 || idx >= static_cast<int>(seen.size())) {
            in_range = false;
            continue;
          }
          ++seen[static_cast<size_t>(idx)];
          slice_bytes += step.tiles_meta[static_cast<size_t>(idx)].out_bytes;
        }
        out_bytes_ok += (slice_bytes == s.out_bytes) ? 0 : 1;
      }
      require(in_range, "shard.tiles", step.node_id,
              "slice references a tile index outside the step's schedule");
      if (in_range) {
        int dup = -1, missing = -1;
        for (size_t t = 0; t < seen.size(); ++t) {
          if (seen[t] > 1 && dup < 0) dup = static_cast<int>(t);
          if (seen[t] == 0 && missing < 0) missing = static_cast<int>(t);
        }
        require(dup < 0, "shard.tiles", step.node_id,
                "tile " + str(dup) + " assigned to more than one cluster");
        require(missing < 0, "shard.tiles", step.node_id,
                "tile " + str(missing) + " assigned to no cluster");
      }
      require(out_bytes_ok == 0, "shard.out_bytes", step.node_id,
              "slice out_bytes does not match the sum of its tiles");
    }
    uint64_t longest = 0;
    for (const ShardSlice& s : ss.slices) {
      longest = std::max(longest, s.cycles);
    }
    require(ss.critical_cycles ==
                longest + ss.serial_cycles + ss.reduce_cycles,
            "shard.cycles", step.node_id,
            "critical cycles do not re-derive from slices + serial + "
            "reduce");
  }
  require(shard.critical_path_cycles == critical &&
              shard.reduction_cycles == reduce,
          "shard.total", 0,
          "shard plan totals do not match the per-step sums");
  return rep;
}

}  // namespace decimate
