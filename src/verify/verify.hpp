#pragma once
// PlanVerifier: static analysis over CompiledPlans.
//
// verify_plan() re-derives what a CompiledPlan *claims* from first
// principles — layer geometry from the graph, tile-schedule coverage,
// the N:M packing rules, integer ranges of the requant pipeline, kernel
// program legality and the SoC address map — and reports every
// inconsistency as a typed finding, without executing anything. It is
// the compiler's post-pass safety net (CompileOptions::verify_plans)
// and the serving PlanStore's admission gate: a plan that lowers wrong
// is rejected before a single cycle is simulated or served.
//
// Check families (ids are stable; tests and CI key on them):
//   shape.*   graph/geometry legality re-derived from layer_geometry
//   tiles.*   tile-schedule coverage: every output element written
//             exactly once (batch-fused: once per image), no overlap
//   pack.*    N:M packed weights: field widths, offset ranges, layout
//             duplication rules, dense round-trip
//   quant.*   worst-case int32 accumulator and requant legality
//   prog.*    kernel program operand/target bounds
//   mem.*     L1 footprints, DMA windows, weight-region budgets
//   report.*  per-step cost bookkeeping re-derived from tile costs
//   plan.*    plan-level structure and totals
//   shard.*   (verify_shard) slice disjointness/completeness
//
// Severity: kError findings mark plans that would run wrong (or not at
// all); kWarn marks suspicious-but-executable properties (e.g. a
// requant multiply that can wrap the 32-bit product).

#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "exec/plan.hpp"

namespace decimate {

struct ShardPlan;

enum class VerifySeverity : uint8_t { kWarn, kError };

const char* verify_severity_name(VerifySeverity s);

struct VerifyFinding {
  VerifySeverity severity = VerifySeverity::kError;
  std::string check;  // stable check id, e.g. "tiles.overlap"
  int node_id = 0;    // offending graph node (0 = plan-level)
  std::string message;
};

struct VerifyReport {
  std::vector<VerifyFinding> findings;
  int checks_run = 0;  // individual checks evaluated (clean or not)

  int errors() const;
  int warnings() const;
  /// No errors (warnings allowed).
  bool ok() const { return errors() == 0; }
  /// No findings at all.
  bool clean() const { return findings.empty(); }
  /// Any finding with this check id?
  bool has(std::string_view check) const;
  std::string to_string() const;
};

/// Thrown by the Compiler post-pass (CompileOptions::verify_plans) and
/// the PlanStore admission gate when a plan has error-level findings.
class VerifyError : public Error {
 public:
  explicit VerifyError(VerifyReport report);
  const VerifyReport& report() const { return report_; }

 private:
  VerifyReport report_;
};

/// Statically analyze a plan; never executes kernels or touches the ISS.
VerifyReport verify_plan(const CompiledPlan& plan);

/// Check a ShardPlan against the plan it partitions: slices per step are
/// disjoint and complete (tile indices assigned exactly once; kFcC
/// feature ranges tile [0, C) contiguously), and the cycle bookkeeping
/// re-derives from the slices.
VerifyReport verify_shard(const CompiledPlan& plan, const ShardPlan& shard);

}  // namespace decimate
