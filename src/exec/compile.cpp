#include "exec/compile.hpp"

#include <algorithm>
#include <functional>

#include "common/bitutil.hpp"
#include "exec/tile_runner.hpp"
#include "kernels/vecops.hpp"
#include "nn/prune.hpp"
#include "verify/verify.hpp"

namespace decimate {

ClusterConfig cluster_config_from(const CompileOptions& opt) {
  ClusterConfig cfg;
  cfg.num_cores = opt.num_cores;
  cfg.lockstep = opt.lockstep;
  cfg.core.xdec_forwarding = opt.xdec_forwarding;
  return cfg;
}

namespace {

int64_t numel_of(const std::vector<int>& shape) {
  int64_t n = 1;
  for (int d : shape) n *= d;
  return n;
}

}  // namespace

int64_t deployed_weight_bytes(const Node& node, const KernelChoice& choice) {
  const int rows = (node.op == OpType::kConv2d) ? node.conv.k : node.fc.k;
  const int cols = (node.op == OpType::kConv2d) ? node.conv.fsz() : node.fc.c;
  int64_t bytes = 0;
  if (choice.sparse()) {
    bytes = nm_bytes(rows, cols, choice.m,
                     /*duplicated=*/choice.kind == KernelKind::kConvSparseIsa);
  } else {
    bytes = dense_bytes(rows, cols);
  }
  return bytes + 4ll * rows;  // int32 bias
}

uint64_t pipeline_total(const std::vector<TileCost>& tiles) {
  if (tiles.empty()) return 0;
  uint64_t total = tiles.front().dma_in;
  const size_t n = tiles.size();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t overlap = (i + 1 < n ? tiles[i + 1].dma_in : 0) +
                             (i > 0 ? tiles[i - 1].dma_out : 0);
    total += std::max(tiles[i].compute, overlap);
  }
  total += tiles.back().dma_out;
  return total;
}

Compiler::Compiler(const CompileOptions& opt,
                   std::shared_ptr<TileLatencyCache> latencies)
    : opt_(opt),
      cluster_(cluster_config_from(opt)),
      dma_(cluster_.mem()),
      cache_(latencies ? std::move(latencies)
                       : std::make_shared<TileLatencyCache>()) {
  // warm start: pre-load previously measured tile cycles so compiles need
  // no ISS simulation for shapes the file already covers
  if (!opt_.latency_cache_path.empty()) {
    cache_->load(opt_.latency_cache_path);
  }
}

size_t Compiler::save_latencies() const {
  DECIMATE_CHECK(!opt_.latency_cache_path.empty(),
                 "save_latencies needs CompileOptions::latency_cache_path");
  return cache_->save(opt_.latency_cache_path);
}

MemRegion Compiler::weight_region(int64_t deployed_bytes) {
  // Leave ~20% of L2 for activations and buffers.
  const auto l2_budget = static_cast<int64_t>(MemoryMap::kL2Size * 8 / 10);
  return deployed_bytes <= l2_budget ? MemRegion::kL2 : MemRegion::kL3;
}

int tile_cfg_salt(const CompileOptions& opt) {
  return opt.num_cores | (opt.lockstep ? 1 << 8 : 0) |
         (opt.xdec_forwarding ? 1 << 9 : 0);
}

uint64_t Compiler::measure_conv_tile(const KernelChoice& choice,
                                     const ConvGeom& g) {
  return cache_->measure(
      conv_tile_key(choice.kind, choice.m, g, tile_cfg()), [&]() -> uint64_t {
        TileRunner runner(cluster_);
        const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng_);
        Tensor32 bias({g.k}, 0);
        const Requant rq{1, 8};
        if (choice.sparse()) {
          Tensor8 w = Tensor8::random({g.k, g.fsz()}, rng_);
          nm_prune(w.flat(), g.k, g.fsz(), 1, choice.m);
          const NmPacked packed = nm_pack(w.flat(), g.k, g.fsz(), choice.m,
                                          TileRunner::layout_for(choice.kind));
          return runner.conv(choice.kind, g, rq, input, nullptr, &packed, bias)
              .result.wall_cycles;
        }
        Tensor8 w = Tensor8::random({g.k, g.fsz()}, rng_);
        return runner.conv(choice.kind, g, rq, input, &w, nullptr, bias)
            .result.wall_cycles;
      });
}

uint64_t Compiler::measure_fc_tile(const KernelChoice& choice,
                                   const FcGeom& g) {
  return cache_->measure(
      fc_tile_key(choice.kind, choice.m, g, tile_cfg()), [&]() -> uint64_t {
        TileRunner runner(cluster_);
        const Tensor8 input = Tensor8::random({g.tokens, g.c}, rng_);
        Tensor32 bias({g.k}, 0);
        const Requant rq{1, 8};
        if (choice.sparse()) {
          Tensor8 w = Tensor8::random({g.k, g.c}, rng_);
          nm_prune(w.flat(), g.k, g.c, 1, choice.m);
          const NmPacked packed = nm_pack(w.flat(), g.k, g.c, choice.m,
                                          TileRunner::layout_for(choice.kind));
          return runner.fc(choice.kind, g, rq, input, nullptr, &packed, bias)
              .result.wall_cycles;
        }
        Tensor8 w = Tensor8::random({g.k, g.c}, rng_);
        return runner.fc(choice.kind, g, rq, input, &w, nullptr, bias)
            .result.wall_cycles;
      });
}

void Compiler::compile_gemm_node(const Graph& graph, const Node& node,
                                 PlanStep& step) {
  LayerReport& rep = step.report;
  const int64_t l1_budget = cluster_.l1_data_limit() - MemoryMap::kL1Base;
  const int startups_per_w =
      opt_.interleaved_weights ? 1 : (3);  // values + offsets + bias

  if (node.op == OpType::kConv2d) {
    const ConvGeom& g = node.conv;
    const KernelChoice choice = select_kernel(node, opt_);
    // Batch-fused conv tiling: the batch enters the tile *schedule* (a
    // K-outer pass sweeps every image's row tiles while the weight tile
    // stays resident, so weights are fetched once per batch), never the
    // kernel geometry — conv rows are not independent across images.
    const int batch = std::max(1, opt_.batch);
    const ConvTilePlan plan = plan_conv_tiles(
        g, choice, opt_.num_cores, l1_budget, opt_.num_clusters, batch);
    step.choice = choice;
    step.conv_tiles = plan;
    step.weight_region = w_region_;
    step.program = &TileRunner::program_for(choice.kind, choice.m);
    step.shard_axis = ShardAxis::kGemmTiles;
    rep.impl = kernel_kind_name(choice.kind);
    if (choice.sparse()) rep.impl += ":1:" + std::to_string(choice.m);
    rep.macs = g.macs();
    rep.weight_bytes = deployed_weight_bytes(node, choice);
    rep.bits_per_weight = bits_per_dense_weight(choice, g.fsz());
    rep.tiles = plan.n_oy * plan.n_k * batch;  // whole-batch count if fused

    const WeightRowBytes row = weight_row_bytes(choice, g.fsz());
    const int ixp = g.ix + 2 * g.pad;
    const auto oy_ranges = tile_ranges(g.oy(), plan.oy_t);
    const auto k_ranges = tile_ranges(g.k, plan.k_t);
    const auto add_tile = [&](const std::pair<int, int>& oy_r,
                              const std::pair<int, int>& k_r, bool load_in,
                              bool load_w) {
      const auto [oy_s, oy_e] = oy_r;
      const auto [k_s, k_e] = k_r;
      const int oy_len = oy_e - oy_s, k_len = k_e - k_s;
      ConvGeom tg = g;
      tg.ix = ixp;
      tg.iy = (oy_len - 1) * g.stride + g.fy;
      tg.pad = 0;
      tg.k = k_len;
      TileCost tc;
      tc.compute = measure_conv_tile(choice, tg);
      const uint64_t in_fetch = dma_.cost_2d(static_cast<uint64_t>(tg.iy),
                                             static_cast<uint64_t>(ixp) * g.c,
                                             MemRegion::kL2, MemRegion::kL1);
      const uint64_t w_bytes =
          static_cast<uint64_t>(k_len) * row.total() + 4ull * k_len;
      uint64_t w_fetch = dma_.cost_1d(w_bytes, w_region_, MemRegion::kL1);
      // separate-transfer ablation: extra startups
      for (int s = 1; s < startups_per_w; ++s) {
        w_fetch += (w_region_ == MemRegion::kL3)
                       ? dma_.config().l3_startup_cycles
                       : dma_.config().l2_startup_cycles;
      }
      if (load_in) tc.dma_in += in_fetch;
      if (load_w) {
        tc.dma_in += w_fetch;
        rep.weight_dma_cycles += w_fetch;
      }
      tc.dma_out = dma_.cost_1d(
          static_cast<uint64_t>(oy_len) * g.ox() * k_len, MemRegion::kL1,
          MemRegion::kL2);
      rep.compute_cycles += tc.compute;
      rep.dma_cycles += tc.dma_in + tc.dma_out;
      step.tile_costs.push_back(tc);
      step.tiles_meta.push_back(
          {oy_s, oy_e, k_s, k_e,
           static_cast<int64_t>(oy_len) * g.ox() * k_len, in_fetch, w_fetch,
           load_in, load_w});
    };
    if (plan.k_outer) {
      // weights resident per K pass; the pass covers the whole (possibly
      // batched) row sweep, so each weight tile is fetched exactly once
      for (const auto& k_r : k_ranges) {
        bool first = true;
        for (int b = 0; b < batch; ++b) {
          for (const auto& oy_r : oy_ranges) {
            add_tile(oy_r, k_r, /*load_in=*/true, /*load_w=*/first);
            first = false;
          }
        }
      }
    } else {
      // row tiles outer: input rows loaded once per row tile, weights
      // re-fetched per tile — batching cannot amortize this order
      for (int b = 0; b < batch; ++b) {
        for (const auto& oy_r : oy_ranges) {
          bool first = true;
          for (const auto& k_r : k_ranges) {
            add_tile(oy_r, k_r, /*load_in=*/first, /*load_w=*/true);
            first = false;
          }
        }
      }
    }
    step.pipelined = plan.double_buffered;
    step.batch_fused = batch > 1;
    const uint64_t batch_total = plan.double_buffered
                                     ? pipeline_total(step.tile_costs)
                                     : rep.compute_cycles + rep.dma_cycles;
    if (batch > 1) {
      // tile_costs — and rep.tiles — span the whole fused batch; cycle
      // fields are per-image amortized (rounded up), which is where the
      // weight-DMA saving shows. The impl tag marks the mixed granularity.
      rep.impl += "@b" + std::to_string(batch);
      const auto amort = [batch](uint64_t v) {
        return (v + static_cast<uint64_t>(batch) - 1) / batch;
      };
      rep.compute_cycles = amort(rep.compute_cycles);
      rep.dma_cycles = amort(rep.dma_cycles);
      rep.weight_dma_cycles = amort(rep.weight_dma_cycles);
      rep.total_cycles = amort(batch_total);
    } else {
      rep.total_cycles = batch_total;
    }

    if (choice.sparse()) {
      step.packed = nm_pack(node.weights.flat(), g.k, g.fsz(), choice.m,
                            TileRunner::layout_for(choice.kind));
      step.has_packed = true;
    }
    step.host =
        host_dispatch_for_conv(g, step.has_packed ? &step.packed : nullptr);
    return;
  }

  // FC / matmul
  const FcGeom& g = node.fc;
  const KernelChoice choice = select_kernel(node, opt_);
  step.choice = choice;
  step.program = &TileRunner::program_for(choice.kind, choice.m);
  uint64_t extra_cycles = 0;
  if (node.op == OpType::kMatmul) {
    DECIMATE_CHECK(node.inputs.size() >= 2, "matmul needs a second operand");
    const auto& b_shape = graph.node(node.inputs.at(1)).out_shape;
    DECIMATE_CHECK(b_shape.size() == 2, "matmul operand must be 2D");
    // the on-device transpose is a strided 2D DMA pass inside L2
    if (node.transpose_b) {
      extra_cycles += dma_.cost_2d(static_cast<uint64_t>(b_shape[1]),
                                   static_cast<uint64_t>(b_shape[0]),
                                   MemRegion::kL2, MemRegion::kL2);
    }
  }

  // Batch-aware FC tiling: fuse the batch dimension into the token dim so
  // the tile search sees all images' rows at once and each weight tile is
  // fetched once per batch, not once per image. Matmul operands are
  // per-image activations, so matmul never fuses.
  const int batch =
      (node.op == OpType::kFc) ? std::max(1, opt_.batch) : 1;

  // odd K with a pair kernel: pad the cycle-model geometry to even
  FcGeom cg = g;
  cg.tokens = g.tokens * batch;
  if (choice.kind != KernelKind::kFcSparseSw && cg.k % 2 != 0) cg.k += 1;
  const FcTilePlan plan = plan_fc_tiles(cg, choice, opt_.num_cores, l1_budget,
                                        opt_.num_clusters);
  step.fc_tiles = plan;
  step.shard_axis = ShardAxis::kGemmTiles;
  rep.impl = kernel_kind_name(choice.kind);
  if (choice.sparse()) rep.impl += ":1:" + std::to_string(choice.m);
  rep.macs = g.macs();
  rep.weight_bytes =
      (node.op == OpType::kMatmul) ? 0 : deployed_weight_bytes(node, choice);
  rep.bits_per_weight = bits_per_dense_weight(choice, g.c);
  rep.tiles = plan.n_tok * plan.n_k;

  const WeightRowBytes row = weight_row_bytes(choice, cg.c);
  // matmul "weights" are activations living in L2
  const MemRegion wreg =
      (node.op == OpType::kMatmul) ? MemRegion::kL2 : w_region_;
  step.weight_region = wreg;
  const auto tok_ranges = tile_ranges(cg.tokens, plan.tok_t);
  const auto k_ranges = tile_ranges(cg.k, plan.k_t);
  const auto& outer = plan.k_outer ? k_ranges : tok_ranges;
  const auto& inner = plan.k_outer ? tok_ranges : k_ranges;
  for (size_t o = 0; o < outer.size(); ++o) {
    for (size_t i = 0; i < inner.size(); ++i) {
      const auto [t_s, t_e] = plan.k_outer ? inner[i] : outer[o];
      const auto [k_s, k_e] = plan.k_outer ? outer[o] : inner[i];
      FcGeom tg;
      tg.tokens = t_e - t_s;
      tg.c = cg.c;
      tg.k = k_e - k_s;
      if (choice.kind != KernelKind::kFcSparseSw && tg.k % 2 != 0) tg.k += 1;
      TileCost tc;
      tc.compute = measure_fc_tile(choice, tg);
      const bool load_in = plan.k_outer || i == 0;
      const bool load_w = plan.k_outer ? (i == 0) : true;
      const uint64_t in_fetch =
          dma_.cost_1d(static_cast<uint64_t>(tg.tokens) * cg.c,
                       MemRegion::kL2, MemRegion::kL1);
      const uint64_t w_bytes =
          static_cast<uint64_t>(tg.k) * row.total() + 4ull * tg.k;
      uint64_t w_fetch = dma_.cost_1d(w_bytes, wreg, MemRegion::kL1);
      for (int s = 1; s < startups_per_w; ++s) {
        w_fetch += (wreg == MemRegion::kL3)
                       ? dma_.config().l3_startup_cycles
                       : dma_.config().l2_startup_cycles;
      }
      if (load_in) tc.dma_in += in_fetch;
      if (load_w) {
        tc.dma_in += w_fetch;
        rep.weight_dma_cycles += w_fetch;
      }
      tc.dma_out =
          dma_.cost_1d(static_cast<uint64_t>(tg.tokens) * tg.k,
                       MemRegion::kL1, MemRegion::kL2);
      rep.compute_cycles += tc.compute;
      rep.dma_cycles += tc.dma_in + tc.dma_out;
      step.tile_costs.push_back(tc);
      // meta ranges are real output coordinates (clamped to the graph's
      // K — the cycle-model geometry may be padded to an even K)
      const int mk_s = std::min(k_s, g.k), mk_e = std::min(k_e, g.k);
      step.tiles_meta.push_back(
          {t_s, t_e, mk_s, mk_e,
           static_cast<int64_t>(t_e - t_s) * (mk_e - mk_s), in_fetch,
           w_fetch, load_in, load_w});
    }
  }
  step.pipelined = plan.double_buffered;
  step.serial_cycles = extra_cycles;
  step.batch_fused = batch > 1;
  const uint64_t batch_total = plan.double_buffered
                                   ? pipeline_total(step.tile_costs)
                                   : rep.compute_cycles + rep.dma_cycles;
  if (batch > 1) {
    // tile_costs — and rep.tiles — span the whole fused batch; the cycle
    // fields are per-image amortized (rounded up), which is where the
    // weight-DMA saving shows. The impl tag marks the mixed granularity.
    rep.impl += "@b" + std::to_string(batch);
    const auto amort = [batch](uint64_t v) {
      return (v + static_cast<uint64_t>(batch) - 1) / batch;
    };
    rep.compute_cycles = amort(rep.compute_cycles);
    rep.dma_cycles = amort(rep.dma_cycles);
    rep.weight_dma_cycles = amort(rep.weight_dma_cycles);
    rep.total_cycles = amort(batch_total) + extra_cycles;
  } else {
    rep.total_cycles = batch_total + extra_cycles;
  }

  if (node.op == OpType::kFc && choice.sparse()) {
    step.packed = nm_pack(node.weights.flat(), g.k, g.c, choice.m,
                          TileRunner::layout_for(choice.kind));
    step.has_packed = true;
  }
  // matmul weights are dynamic activations, so it always dispatches dense
  step.host = host_dispatch_for_fc(
      g.k, g.c, step.has_packed ? &step.packed : nullptr, g.tokens);
}

void Compiler::compile_vec_node(const Graph& graph, const Node& node,
                                PlanStep& step) {
  LayerReport& rep = step.report;
  const std::vector<int>& in_shape = graph.node(node.inputs.at(0)).out_shape;
  const int64_t in_numel = numel_of(in_shape);
  rep.impl = op_name(node.op);

  // data-marshalling ops are pure DMA passes; no ISS measurement
  switch (node.op) {
    case OpType::kReshape:
      rep.total_cycles = 0;
      return;
    case OpType::kSlice: {
      DECIMATE_CHECK(in_shape.size() == 2, "slice expects {T, C}");
      const int t = in_shape[0];
      const int w = node.slice_end - node.slice_begin;
      DECIMATE_CHECK(w > 0 && node.slice_end <= in_shape[1],
                     "bad slice range");
      // column gather = strided 2D DMA inside L2
      rep.dma_cycles = dma_.cost_2d(static_cast<uint64_t>(t),
                                    static_cast<uint64_t>(w), MemRegion::kL2,
                                    MemRegion::kL2);
      rep.total_cycles = rep.dma_cycles;
      step.serial_cycles = rep.total_cycles;
      return;
    }
    case OpType::kConcat: {
      const int t = in_shape[0];
      for (int input_id : node.inputs) {
        const auto& p_shape = graph.node(input_id).out_shape;
        DECIMATE_CHECK(p_shape.size() == 2 && p_shape[0] == t,
                       "concat mismatch");
        rep.dma_cycles += dma_.cost_2d(static_cast<uint64_t>(t),
                                       static_cast<uint64_t>(p_shape[1]),
                                       MemRegion::kL2, MemRegion::kL2);
      }
      rep.total_cycles = rep.dma_cycles;
      step.serial_cycles = rep.total_cycles;
      return;
    }
    default: break;
  }

  // cycles: chunked ISS measurement + DMA pipeline. `key_extra`
  // disambiguates shapes whose (rows, row_bytes) coincide (e.g. maxpool
  // rows with equal 2*w*c products but different channel counts). Rows are
  // independent, so chunks shard across clusters; a shard-aware compile
  // caps the chunk size so every cluster can own at least one.
  auto chunked = [&](int total_rows, int row_bytes, int out_row_bytes,
                     int l1_per_row, int key_extra,
                     const std::function<uint64_t(int)>& measure_rows) {
    const int64_t budget =
        (cluster_.l1_data_limit() - MemoryMap::kL1Base) - 4096;
    int rows_per_chunk = std::max<int>(
        1, static_cast<int>(budget / std::max(1, 2 * l1_per_row)));
    rows_per_chunk = std::min(rows_per_chunk, total_rows);
    if (opt_.num_clusters > 1) {
      rows_per_chunk = std::min(
          rows_per_chunk,
          std::max(1, static_cast<int>(ceil_div(total_rows,
                                                opt_.num_clusters))));
    }
    for (const auto& [s, e] : tile_ranges(total_rows, rows_per_chunk)) {
      TileCost tc;
      tc.compute = cache_->measure(
          vec_tile_key(node.op, e - s, row_bytes, key_extra, tile_cfg()),
          [&] { return measure_rows(e - s); });
      tc.dma_in = dma_.cost_1d(static_cast<uint64_t>(e - s) * row_bytes,
                               MemRegion::kL2, MemRegion::kL1);
      tc.dma_out = dma_.cost_1d(static_cast<uint64_t>(e - s) * out_row_bytes,
                                MemRegion::kL1, MemRegion::kL2);
      rep.compute_cycles += tc.compute;
      rep.dma_cycles += tc.dma_in + tc.dma_out;
      step.tile_costs.push_back(tc);
      step.tiles_meta.push_back({s, e, 0, 0,
                                 static_cast<int64_t>(e - s) * out_row_bytes,
                                 tc.dma_in, 0, true, false});
    }
    step.shard_axis = ShardAxis::kRows;
    rep.tiles = static_cast<int>(step.tile_costs.size());
    rep.total_cycles = pipeline_total(step.tile_costs);
  };

  switch (node.op) {
    case OpType::kRelu: {
      // round up: a numel % 4 tail still costs a word of compute and DMA
      const int words = static_cast<int>((in_numel + 3) / 4);
      chunked(words, 4, 4, 8, 0, [&](int rows) {
        Tensor8 chunk = Tensor8::random({rows * 4}, rng_);
        return run_relu(cluster_, chunk).result.wall_cycles;
      });
      break;
    }
    case OpType::kAdd: {
      chunked(static_cast<int>(in_numel), 2, 1, 3, 0, [&](int rows) {
        Tensor8 a = Tensor8::random({rows}, rng_);
        Tensor8 b = Tensor8::random({rows}, rng_);
        return run_add(cluster_, a, node.rq, b, node.rq2).result.wall_cycles;
      });
      break;
    }
    case OpType::kLut: {
      chunked(static_cast<int>(in_numel), 1, 1, 2, 0, [&](int rows) {
        Tensor8 chunk = Tensor8::random({rows}, rng_);
        return run_lut(cluster_, chunk, node.lut).result.wall_cycles;
      });
      break;
    }
    case OpType::kMaxPool2: {
      const int h = in_shape[0], w = in_shape[1], c = in_shape[2];
      // c rides in the key's extra field: (w, c) pairs with equal 2*w*c
      // products are different kernels with different cycle counts
      chunked(h / 2, 2 * w * c, (w / 2) * c, 3 * w * c, c, [&](int rows) {
        Tensor8 chunk = Tensor8::random({2 * rows, w, c}, rng_);
        return run_maxpool2x2(cluster_, chunk).result.wall_cycles;
      });
      break;
    }
    case OpType::kAvgPool: {
      const int h = in_shape[0], w = in_shape[1], c = in_shape[2];
      TileCost tc;
      tc.compute =
          cache_->measure(vec_tile_key(node.op, h, w, c, tile_cfg()), [&] {
            Tensor8 chunk = Tensor8::random({h, w, c}, rng_);
            return run_avgpool(cluster_, chunk, node.rq).result.wall_cycles;
          });
      tc.dma_in = dma_.cost_1d(in_numel, MemRegion::kL2, MemRegion::kL1);
      tc.dma_out = dma_.cost_1d(static_cast<uint64_t>(c), MemRegion::kL1,
                                MemRegion::kL2);
      rep.compute_cycles = tc.compute;
      rep.dma_cycles = tc.dma_in + tc.dma_out;
      step.tile_costs.push_back(tc);
      rep.total_cycles = pipeline_total(step.tile_costs);
      break;
    }
    case OpType::kSoftmax: {
      const int t = in_shape[0], l = in_shape[1];
      chunked(t, l, l, 3 * l, 0, [&](int rows) {
        Tensor8 chunk = Tensor8::random({rows, l}, rng_);
        return run_softmax(cluster_, chunk, node.exp_lut).result.wall_cycles;
      });
      break;
    }
    case OpType::kLayerNorm: {
      const int t = in_shape[0], l = in_shape[1];
      chunked(t, l, l, 3 * l, 0, [&](int rows) {
        Tensor8 chunk = Tensor8::random({rows, l}, rng_);
        return run_layernorm(cluster_, chunk, node.gamma, node.beta)
            .result.wall_cycles;
      });
      break;
    }
    default: DECIMATE_FAIL("bad vec op");
  }
}

CompiledPlan Compiler::compile(const Graph& graph) {
  DECIMATE_CHECK(opt_.batch >= 1,
                 "CompileOptions::batch must be >= 1, got " << opt_.batch);
  DECIMATE_CHECK(opt_.num_clusters >= 1,
                 "CompileOptions::num_clusters must be >= 1, got "
                     << opt_.num_clusters);
  DECIMATE_CHECK(opt_.host_threads >= 0,
                 "CompileOptions::host_threads must be >= 0 (0 = auto), got "
                     << opt_.host_threads);
  CompiledPlan plan;
  plan.graph = &graph;
  plan.options = opt_;
  plan.latencies = cache_;

  // decide weight residency for the whole model
  int64_t deployed = 0;
  for (const auto& node : graph.nodes()) {
    if (node.op == OpType::kConv2d || node.op == OpType::kFc) {
      deployed += deployed_weight_bytes(node, select_kernel(node, opt_));
    }
  }
  w_region_ = weight_region(deployed);
  plan.weight_region = w_region_;
  plan.weight_bytes = deployed;

  for (int id = 1; id < graph.size(); ++id) {
    const Node& node = graph.node(id);
    PlanStep step;
    step.node_id = id;
    step.op = node.op;
    step.report.name = node.name;
    switch (node.op) {
      case OpType::kConv2d:
      case OpType::kFc:
      case OpType::kMatmul:
        compile_gemm_node(graph, node, step);
        break;
      case OpType::kInput:
        DECIMATE_FAIL("unexpected input node");
        break;
      default:
        compile_vec_node(graph, node, step);
        break;
    }
    plan.total_cycles += step.report.total_cycles;
    plan.total_macs += step.report.macs;
    plan.steps.push_back(std::move(step));
  }
  // static post-pass: reject plans the verifier can prove wrong
  if (opt_.verify_plans) {
    VerifyReport report = verify_plan(plan);
    if (!report.ok()) throw VerifyError(std::move(report));
  }
  return plan;
}

}  // namespace decimate
