#include "exec/node_exec.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <utility>

#include "nn/host_kernels.hpp"
#include "nn/ref_ops.hpp"
#include "trace/metrics.hpp"

namespace decimate {

namespace {

// One invocation counter per host kernel family; resolved once so the
// per-node cost is a single relaxed increment.
void count_kernel_invocation(HostImpl impl, bool use_host) {
  static metrics::Counter* const counters[] = {
      &metrics::registry().counter("exec.kernel.ref"),
      &metrics::registry().counter("exec.kernel.dense-conv-blocked"),
      &metrics::registry().counter("exec.kernel.dense-fc-blocked"),
      &metrics::registry().counter("exec.kernel.sparse-conv-nm"),
      &metrics::registry().counter("exec.kernel.sparse-fc-nm"),
  };
  const size_t i = use_host ? static_cast<size_t>(impl) : 0;
  counters[i < std::size(counters) ? i : 0]->inc();
}

}  // namespace

Tensor8 transpose2d(const Tensor8& x) {
  DECIMATE_CHECK(x.rank() == 2, "transpose expects 2D");
  const int r = x.dim(0), c = x.dim(1);
  Tensor8 out({c, r});
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) out.at({j, i}) = x.at({i, j});
  }
  return out;
}

void exec_gemm_node_host(const PlanStep& step, const Node& node,
                         const Tensor8& in, const Tensor8* b_operand,
                         bool use_host, Tensor8& out) {
  count_kernel_invocation(step.host.impl, use_host);
  if (node.op == OpType::kConv2d) {
    const ConvGeom& g = node.conv;
    out = Tensor8({g.oy(), g.ox(), g.k});
    if (use_host) {
      host_conv2d_s8_into(step.host, in, node.weights, node.bias, g, node.rq,
                          0, g.oy(), 0, g.k, out);
    } else {
      conv2d_s8_into(in, node.weights, node.bias, g, node.rq, 0, g.oy(), 0,
                     g.k, out);
    }
    return;
  }

  // FC / matmul: matmul's "weights" are the (possibly transposed) second
  // operand with a zero bias
  const FcGeom& g = node.fc;
  Tensor8 bmat;
  const Tensor8* weights = &node.weights;
  Tensor32 zero_bias;
  const Tensor32* bias = &node.bias;
  if (node.op == OpType::kMatmul) {
    DECIMATE_CHECK(b_operand != nullptr, "matmul needs a second operand");
    bmat = node.transpose_b ? transpose2d(*b_operand) : *b_operand;
    weights = &bmat;
    zero_bias = Tensor32({g.k}, 0);
    bias = &zero_bias;
  }
  out = Tensor8({in.dim(0), weights->dim(0)});
  if (use_host) {
    host_fc_s8_into(step.host, in, *weights, *bias, node.rq, 0, in.dim(0), 0,
                    weights->dim(0), out);
  } else {
    fc_s8_into(in, *weights, *bias, node.rq, 0, in.dim(0), 0,
               weights->dim(0), out);
  }
}

void exec_gemm_node_host_parallel(const PlanStep& step, const Node& node,
                                  const Tensor8& in, const Tensor8* b_operand,
                                  WorkerPool& pool, int parts, Tensor8& out) {
  count_kernel_invocation(step.host.impl, /*use_host=*/true);
  // contiguous [lo, hi) chunk i of `parts` over [0, n)
  const auto chunk = [](int n, int nparts, int i) {
    const int base = n / nparts, rem = n % nparts;
    const int lo = i * base + std::min(i, rem);
    return std::pair<int, int>{lo, lo + base + (i < rem ? 1 : 0)};
  };

  if (node.op == OpType::kConv2d) {
    const ConvGeom& g = node.conv;
    out = Tensor8({g.oy(), g.ox(), g.k});
    const int n = std::min(std::max(1, parts), g.oy());
    pool.run(n, [&](int i) {
      const auto [lo, hi] = chunk(g.oy(), n, i);
      host_conv2d_s8_into(step.host, in, node.weights, node.bias, g, node.rq,
                          lo, hi, 0, g.k, out);
    });
    return;
  }

  // FC / matmul: operand selection once, then split tokens — or output
  // channels when the token count can't feed every worker (the k split
  // keeps single-token FC heads parallel)
  const FcGeom& g = node.fc;
  Tensor8 bmat;
  const Tensor8* weights = &node.weights;
  Tensor32 zero_bias;
  const Tensor32* bias = &node.bias;
  if (node.op == OpType::kMatmul) {
    DECIMATE_CHECK(b_operand != nullptr, "matmul needs a second operand");
    bmat = node.transpose_b ? transpose2d(*b_operand) : *b_operand;
    weights = &bmat;
    zero_bias = Tensor32({g.k}, 0);
    bias = &zero_bias;
  }
  const int tokens = in.dim(0), k = weights->dim(0);
  out = Tensor8({tokens, k});
  if (tokens >= std::max(1, parts)) {
    const int n = std::min(std::max(1, parts), tokens);
    pool.run(n, [&](int i) {
      const auto [lo, hi] = chunk(tokens, n, i);
      host_fc_s8_into(step.host, in, *weights, *bias, node.rq, lo, hi, 0, k,
                      out);
    });
  } else {
    const int n = std::min(std::max(1, parts), k);
    pool.run(n, [&](int i) {
      const auto [lo, hi] = chunk(k, n, i);
      host_fc_s8_into(step.host, in, *weights, *bias, node.rq, 0, tokens, lo,
                      hi, out);
    });
  }
}

void exec_vec_node_ref(const Node& node,
                       const std::vector<const Tensor8*>& in, Tensor8& out) {
  const auto& x = *in[0];
  switch (node.op) {
    case OpType::kRelu: out = relu_s8(x); break;
    case OpType::kAdd: out = add_s8(x, node.rq, *in[1], node.rq2); break;
    case OpType::kMaxPool2: out = maxpool2x2_s8(x); break;
    case OpType::kAvgPool: out = global_avgpool_s8(x, node.rq); break;
    case OpType::kLut: out = lut_s8(x, node.lut); break;
    case OpType::kSoftmax: out = softmax_s8(x, node.exp_lut); break;
    case OpType::kLayerNorm:
      out = layernorm_s8(x, node.gamma, node.beta);
      break;
    case OpType::kReshape: {
      out = Tensor8(node.out_shape);
      DECIMATE_CHECK(out.numel() == x.numel(), "reshape numel mismatch");
      std::copy(x.flat().begin(), x.flat().end(), out.flat().begin());
      break;
    }
    case OpType::kSlice: {
      DECIMATE_CHECK(x.rank() == 2, "slice expects {T, C}");
      const int t = x.dim(0);
      const int w = node.slice_end - node.slice_begin;
      DECIMATE_CHECK(w > 0 && node.slice_end <= x.dim(1), "bad slice range");
      out = Tensor8({t, w});
      for (int i = 0; i < t; ++i) {
        std::memcpy(out.data() + static_cast<int64_t>(i) * w,
                    x.data() + static_cast<int64_t>(i) * x.dim(1) +
                        node.slice_begin,
                    static_cast<size_t>(w));
      }
      break;
    }
    case OpType::kConcat: {
      const int t = in[0]->dim(0);
      int total_c = 0;
      for (const Tensor8* p : in) {
        DECIMATE_CHECK(p->rank() == 2 && p->dim(0) == t, "concat mismatch");
        total_c += p->dim(1);
      }
      out = Tensor8({t, total_c});
      int col = 0;
      for (const Tensor8* p : in) {
        const int w = p->dim(1);
        for (int i = 0; i < t; ++i) {
          std::memcpy(out.data() + static_cast<int64_t>(i) * total_c + col,
                      p->data() + static_cast<int64_t>(i) * w,
                      static_cast<size_t>(w));
        }
        col += w;
      }
      break;
    }
    default: DECIMATE_FAIL("bad vec op");
  }
}

}  // namespace decimate
