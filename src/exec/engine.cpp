#include "exec/engine.hpp"

#include <algorithm>
#include <thread>

#include "exec/node_exec.hpp"
#include "exec/tile_runner.hpp"
#include "nn/host_kernel_instances.hpp"
#include "trace/trace.hpp"

namespace decimate {

namespace {

std::string batch_mismatch_message(int fused_batch, int got) {
  std::ostringstream oss;
  oss << "plan was compiled batch-fused for " << fused_batch
      << " images but run_batch got " << got
      << "; recompile with CompileOptions::batch == " << got
      << " (or 1 for the unfused pipeline)";
  return oss.str();
}

}  // namespace

BatchMismatchError::BatchMismatchError(int fused_batch, int got)
    : Error(batch_mismatch_message(fused_batch, got)),
      fused_batch_(fused_batch),
      got_(got) {}

std::shared_ptr<WorkerPool> ExecutionEngine::worker_pool(int target) {
  // the caller thread participates in every job, so a pool of N-1
  // threads gives N-way parallelism. The pool is sized to the engine's
  // worker target (not the batch size), so it resizes only when
  // set_workers changes — including shrinking, so the documented knob is
  // honored. Callers keep a shared_ptr: a concurrent run_batch that
  // triggers a resize retires the old pool only after its last in-flight
  // job releases it.
  const int want = std::max(0, target - 1);
  const std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr || pool_->threads() != want) {
    pool_ = std::make_shared<WorkerPool>(want);
  }
  return pool_;
}

Cluster& ExecutionEngine::verify_cluster(const CompileOptions& opt) {
  const ClusterConfig cfg = cluster_config_from(opt);
  if (verify_cluster_ == nullptr || !(cfg == verify_cfg_)) {
    verify_cluster_ = std::make_unique<Cluster>(cfg);
    verify_cfg_ = cfg;
  }
  return *verify_cluster_;
}

void ExecutionEngine::exec_gemm_node(const CompiledPlan& plan,
                                     const PlanStep& step, const Node& node,
                                     const Tensor8& in,
                                     const Tensor8* b_operand, Tensor8& out) {
  // numerics: host kernels (sparse N:M gather / blocked dense) or the
  // scalar reference ops — bit-identical either way. Large steps split
  // their output across the worker pool (intra-image parallelism) unless
  // this call already runs inside a pool task (run_batch image pipeline:
  // the split would execute inline anyway, so skip the pool round-trip)
  // or verify mode needs the serial path.
  const int want =
      intra_threads_ >= 0 ? intra_threads_ : plan.options.host_threads;
  const int parts = want == 0
      ? std::max(1, static_cast<int>(std::thread::hardware_concurrency()))
      : want;
  if (use_host_kernels_ && !verify_with_sim_ && !WorkerPool::in_task() &&
      parts > 1 && step.report.macs >= intra_mac_floor_) {
    exec_gemm_node_host_parallel(step, node, in, b_operand,
                                 *worker_pool(parts), parts, out);
  } else {
    exec_gemm_node_host(step, node, in, b_operand, use_host_kernels_, out);
  }

  if (!verify_with_sim_ || step.report.tiles != 1) return;
  if (node.op == OpType::kConv2d) {
    const ConvGeom& g = node.conv;
    TileRunner runner(verify_cluster(plan.options));
    KernelRun kr;
    if (step.has_packed) {
      kr = runner.conv(step.choice.kind, g, node.rq, in, nullptr,
                       &step.packed, node.bias);
    } else {
      kr = runner.conv(step.choice.kind, g, node.rq, in, &node.weights,
                       nullptr, node.bias);
    }
    DECIMATE_CHECK(kr.output == out,
                   "verify: ISS conv output mismatch on " << node.name);
    return;
  }
  const FcGeom& g = node.fc;
  if (node.op == OpType::kFc &&
      (step.choice.kind == KernelKind::kFcSparseSw || g.k % 2 == 0)) {
    TileRunner runner(verify_cluster(plan.options));
    KernelRun kr;
    if (step.has_packed) {
      kr = runner.fc(step.choice.kind, g, node.rq, in, nullptr, &step.packed,
                     node.bias);
    } else {
      kr = runner.fc(step.choice.kind, g, node.rq, in, &node.weights, nullptr,
                     node.bias);
    }
    DECIMATE_CHECK(kr.output == out,
                   "verify: ISS fc output mismatch on " << node.name);
  }
}

NetworkRun ExecutionEngine::run(const CompiledPlan& plan,
                                const Tensor8& input) {
  DECIMATE_CHECK(plan.graph != nullptr, "plan has no graph");
  const Graph& graph = *plan.graph;
  DECIMATE_CHECK(static_cast<int>(plan.steps.size()) == graph.size() - 1,
                 "plan does not match graph");

  NetworkRun net;
  net.weight_bytes = plan.weight_bytes;
  std::vector<Tensor8> outputs(static_cast<size_t>(graph.size()));
  DECIMATE_CHECK(input.shape() == graph.node(0).out_shape,
                 "graph input shape mismatch");
  // node 0's value is the caller's input, aliased — not copied: the
  // O(input) deep copy per invocation is pure overhead on the serving path
  std::vector<const Tensor8*> values(static_cast<size_t>(graph.size()),
                                     nullptr);
  values[0] = &input;

  trace::TraceScope run_span(trace::Cat::kExec, "engine.run");
  run_span.cycles(plan.total_cycles);

  for (const PlanStep& step : plan.steps) {
    const Node& node = graph.node(step.node_id);
    Tensor8& out = outputs[static_cast<size_t>(step.node_id)];
    const Tensor8& in0 = *values[static_cast<size_t>(node.inputs.at(0))];
    // span name points into the graph (outlives the plan); family and
    // instance are static literals from the kernel registry
    trace::TraceScope step_span(trace::Cat::kKernel, node.name.c_str());
    step_span.cycles(step.report.total_cycles);
    if (node.op == OpType::kConv2d || node.op == OpType::kFc ||
        node.op == OpType::kMatmul) {
      step_span.sarg("family", host_impl_name(step.host.impl));
      step_span.sarg("instance", host_instance_name(step.host));
    }
    switch (node.op) {
      case OpType::kConv2d:
      case OpType::kFc:
        exec_gemm_node(plan, step, node, in0, nullptr, out);
        break;
      case OpType::kMatmul:
        exec_gemm_node(plan, step, node, in0,
                       values[static_cast<size_t>(node.inputs.at(1))], out);
        break;
      default: {
        std::vector<const Tensor8*> ins;
        ins.reserve(node.inputs.size());
        for (int i : node.inputs) {
          ins.push_back(values[static_cast<size_t>(i)]);
        }
        exec_vec_node_ref(node, ins, out);
        break;
      }
    }
    DECIMATE_CHECK(out.shape() == node.out_shape,
                   "node " << node.name << " produced unexpected shape");
    values[static_cast<size_t>(step.node_id)] = &out;
    net.total_cycles += step.report.total_cycles;
    net.total_macs += step.report.macs;
    net.layers.push_back(step.report);
  }
  if (plan.steps.empty()) {
    net.output = input;
  } else {
    net.output = std::move(outputs.back());
  }
  return net;
}

uint64_t ExecutionEngine::modeled_batch_cycles(const CompiledPlan& plan,
                                               int n) {
  if (n <= 0) return 0;
  const int fused_b = std::max(1, plan.options.batch);
  std::vector<TileCost> stream;
  uint64_t total = 0;
  const auto flush = [&] {
    total += pipeline_total(stream);
    stream.clear();
  };
  // A pipelined step's tiles join the running DMA/compute pipeline, so
  // consecutive images/layers overlap each other's ramp-in/out. Serialized
  // work (non-double-buffered tiles, marshalling DMA, matmul transpose)
  // flushes the pipeline first.
  const auto append_step = [&](const PlanStep& step) {
    if (!step.tile_costs.empty()) {
      if (step.pipelined) {
        stream.insert(stream.end(), step.tile_costs.begin(),
                      step.tile_costs.end());
      } else {
        flush();
        for (const TileCost& tc : step.tile_costs) {
          total += tc.compute + tc.dma_in + tc.dma_out;
        }
      }
    }
    if (step.serial_cycles != 0) {
      flush();
      total += step.serial_cycles;
    }
  };
  if (fused_b > 1) {
    // layer-major schedule: a batch-fused step's tile stream already
    // spans a whole batch of fused_b images, so it runs once per batch
    const int batches = (n + fused_b - 1) / fused_b;
    for (const PlanStep& step : plan.steps) {
      const int repeat = step.batch_fused ? batches : n;
      for (int r = 0; r < repeat; ++r) append_step(step);
    }
  } else {
    // image-major software pipeline: layer i+1 of image m overlaps layer
    // i of image m+1
    for (int img = 0; img < n; ++img) {
      for (const PlanStep& step : plan.steps) append_step(step);
    }
  }
  flush();
  return total;
}

BatchRun ExecutionEngine::run_batch(const CompiledPlan& plan,
                                    std::span<const Tensor8> inputs) {
  BatchRun out;
  const int n = static_cast<int>(inputs.size());
  trace::TraceScope batch_span(trace::Cat::kExec, "engine.run_batch");
  batch_span.arg("images", n);
  // A batch-fused plan's tile schedule (and its per-image amortized
  // reports) covers exactly options.batch images; serving a different
  // span would silently stamp a mismatched cycle report on every run.
  if (plan.options.batch > 1 && n != plan.options.batch) {
    throw BatchMismatchError(plan.options.batch, n);
  }
  out.runs.resize(static_cast<size_t>(n));

  const int target = std::max(
      1, workers_ > 0
             ? workers_
             : static_cast<int>(std::thread::hardware_concurrency()));
  int workers = std::min(target, std::max(1, n));
  if (verify_with_sim_) workers = 1;  // the verify cluster is shared state

  if (workers == 1) {
    for (int i = 0; i < n; ++i) out.runs[static_cast<size_t>(i)] =
        run(plan, inputs[static_cast<size_t>(i)]);
  } else {
    // work-claiming pipeline on the persistent pool: each worker advances
    // one image through the plan's steps front-to-back, so at any moment
    // the batch occupies different pipeline depths (layer i+1 of image m
    // concurrent with layer i of image m+1); the pool's threads are
    // reused across batches instead of spawned per call (sized by the
    // engine's worker target — a small batch just leaves threads idle)
    worker_pool(target)->run(n, [&](int i) {
      out.runs[static_cast<size_t>(i)] =
          run(plan, inputs[static_cast<size_t>(i)]);
    });
  }

  for (const NetworkRun& r : out.runs) out.sequential_cycles += r.total_cycles;
  out.batch_cycles = modeled_batch_cycles(plan, n);
  batch_span.cycles(out.batch_cycles);
  return out;
}

}  // namespace decimate
