#include "exec/engine.hpp"

#include <cstring>

#include "exec/tile_runner.hpp"
#include "nn/ref_ops.hpp"

namespace decimate {

namespace {

Tensor8 transpose2d(const Tensor8& x) {
  DECIMATE_CHECK(x.rank() == 2, "transpose expects 2D");
  const int r = x.dim(0), c = x.dim(1);
  Tensor8 out({c, r});
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) out.at({j, i}) = x.at({i, j});
  }
  return out;
}

}  // namespace

Cluster& ExecutionEngine::verify_cluster(const CompileOptions& opt) {
  const ClusterConfig cfg = cluster_config_from(opt);
  if (verify_cluster_ == nullptr || !(cfg == verify_cfg_)) {
    verify_cluster_ = std::make_unique<Cluster>(cfg);
    verify_cfg_ = cfg;
  }
  return *verify_cluster_;
}

void ExecutionEngine::exec_gemm_node(const CompiledPlan& plan,
                                     const PlanStep& step, const Node& node,
                                     const Tensor8& in,
                                     const Tensor8* b_operand, Tensor8& out) {
  if (node.op == OpType::kConv2d) {
    const ConvGeom& g = node.conv;
    out = conv2d_s8(in, node.weights, node.bias, g, node.rq);
    if (verify_with_sim_ && step.report.tiles == 1) {
      TileRunner runner(verify_cluster(plan.options));
      KernelRun kr;
      if (step.has_packed) {
        kr = runner.conv(step.choice.kind, g, node.rq, in, nullptr,
                         &step.packed, node.bias);
      } else {
        kr = runner.conv(step.choice.kind, g, node.rq, in, &node.weights,
                         nullptr, node.bias);
      }
      DECIMATE_CHECK(kr.output == out,
                     "verify: ISS conv output mismatch on " << node.name);
    }
    return;
  }

  // FC / matmul
  const FcGeom& g = node.fc;
  Tensor8 bmat;  // matmul operand acting as weights
  const Tensor8* weights = &node.weights;
  Tensor32 zero_bias;
  const Tensor32* bias = &node.bias;
  if (node.op == OpType::kMatmul) {
    DECIMATE_CHECK(b_operand != nullptr, "matmul needs a second operand");
    bmat = node.transpose_b ? transpose2d(*b_operand) : *b_operand;
    weights = &bmat;
    zero_bias = Tensor32({g.k}, 0);
    bias = &zero_bias;
  }
  out = fc_s8(in, *weights, *bias, node.rq);

  if (verify_with_sim_ && step.report.tiles == 1 && node.op == OpType::kFc &&
      (step.choice.kind == KernelKind::kFcSparseSw || g.k % 2 == 0)) {
    TileRunner runner(verify_cluster(plan.options));
    KernelRun kr;
    if (step.has_packed) {
      kr = runner.fc(step.choice.kind, g, node.rq, in, nullptr, &step.packed,
                     node.bias);
    } else {
      kr = runner.fc(step.choice.kind, g, node.rq, in, &node.weights, nullptr,
                     node.bias);
    }
    DECIMATE_CHECK(kr.output == out,
                   "verify: ISS fc output mismatch on " << node.name);
  }
}

void ExecutionEngine::exec_vec_node(const Node& node,
                                    const std::vector<const Tensor8*>& in,
                                    Tensor8& out) {
  const auto& x = *in[0];
  switch (node.op) {
    case OpType::kRelu: out = relu_s8(x); break;
    case OpType::kAdd: out = add_s8(x, node.rq, *in[1], node.rq2); break;
    case OpType::kMaxPool2: out = maxpool2x2_s8(x); break;
    case OpType::kAvgPool: out = global_avgpool_s8(x, node.rq); break;
    case OpType::kLut: out = lut_s8(x, node.lut); break;
    case OpType::kSoftmax: out = softmax_s8(x, node.exp_lut); break;
    case OpType::kLayerNorm:
      out = layernorm_s8(x, node.gamma, node.beta);
      break;
    case OpType::kReshape: {
      out = Tensor8(node.out_shape);
      DECIMATE_CHECK(out.numel() == x.numel(), "reshape numel mismatch");
      std::copy(x.flat().begin(), x.flat().end(), out.flat().begin());
      break;
    }
    case OpType::kSlice: {
      DECIMATE_CHECK(x.rank() == 2, "slice expects {T, C}");
      const int t = x.dim(0);
      const int w = node.slice_end - node.slice_begin;
      DECIMATE_CHECK(w > 0 && node.slice_end <= x.dim(1), "bad slice range");
      out = Tensor8({t, w});
      for (int i = 0; i < t; ++i) {
        std::memcpy(out.data() + static_cast<int64_t>(i) * w,
                    x.data() + static_cast<int64_t>(i) * x.dim(1) +
                        node.slice_begin,
                    static_cast<size_t>(w));
      }
      break;
    }
    case OpType::kConcat: {
      const int t = in[0]->dim(0);
      int total_c = 0;
      for (const Tensor8* p : in) {
        DECIMATE_CHECK(p->rank() == 2 && p->dim(0) == t, "concat mismatch");
        total_c += p->dim(1);
      }
      out = Tensor8({t, total_c});
      int col = 0;
      for (const Tensor8* p : in) {
        const int w = p->dim(1);
        for (int i = 0; i < t; ++i) {
          std::memcpy(out.data() + static_cast<int64_t>(i) * total_c + col,
                      p->data() + static_cast<int64_t>(i) * w,
                      static_cast<size_t>(w));
        }
        col += w;
      }
      break;
    }
    default: DECIMATE_FAIL("bad vec op");
  }
}

NetworkRun ExecutionEngine::run(const CompiledPlan& plan,
                                const Tensor8& input) {
  DECIMATE_CHECK(plan.graph != nullptr, "plan has no graph");
  const Graph& graph = *plan.graph;
  DECIMATE_CHECK(static_cast<int>(plan.steps.size()) == graph.size() - 1,
                 "plan does not match graph");

  NetworkRun net;
  net.weight_bytes = plan.weight_bytes;
  std::vector<Tensor8> outputs(static_cast<size_t>(graph.size()));
  DECIMATE_CHECK(input.shape() == graph.node(0).out_shape,
                 "graph input shape mismatch");
  outputs[0] = input;

  for (const PlanStep& step : plan.steps) {
    const Node& node = graph.node(step.node_id);
    Tensor8& out = outputs[static_cast<size_t>(step.node_id)];
    const Tensor8& in0 = outputs[static_cast<size_t>(node.inputs.at(0))];
    switch (node.op) {
      case OpType::kConv2d:
      case OpType::kFc:
        exec_gemm_node(plan, step, node, in0, nullptr, out);
        break;
      case OpType::kMatmul:
        exec_gemm_node(plan, step, node, in0,
                       &outputs[static_cast<size_t>(node.inputs.at(1))], out);
        break;
      default: {
        std::vector<const Tensor8*> ins;
        ins.reserve(node.inputs.size());
        for (int i : node.inputs) {
          ins.push_back(&outputs[static_cast<size_t>(i)]);
        }
        exec_vec_node(node, ins, out);
        break;
      }
    }
    DECIMATE_CHECK(out.shape() == node.out_shape,
                   "node " << node.name << " produced unexpected shape");
    net.total_cycles += step.report.total_cycles;
    net.total_macs += step.report.macs;
    net.layers.push_back(step.report);
  }
  net.output = outputs.back();
  return net;
}

std::vector<NetworkRun> ExecutionEngine::run_batch(
    const CompiledPlan& plan, std::span<const Tensor8> inputs) {
  std::vector<NetworkRun> runs;
  runs.reserve(inputs.size());
  for (const Tensor8& input : inputs) runs.push_back(run(plan, input));
  return runs;
}

}  // namespace decimate
