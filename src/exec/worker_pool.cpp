#include "exec/worker_pool.hpp"

#include "serve/fault.hpp"
#include "trace/trace.hpp"

namespace decimate {

namespace {
// Depth of pool-task execution on this thread, across ALL pools. A run()
// issued from inside a task would either deadlock (same pool: job_mu_ is
// held by the outer job's caller) or oversubscribe the machine (another
// pool's threads stack on top of this pool's). Nested submissions
// therefore execute inline on the submitting thread — the engine's
// intra-image splits degrade gracefully to serial when they land inside
// run_batch's per-image tasks.
thread_local int tl_task_depth = 0;
}  // namespace

bool WorkerPool::in_task() { return tl_task_depth > 0; }

WorkerPool::WorkerPool(int threads) {
  workers_.reserve(static_cast<size_t>(threads > 0 ? threads : 0));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& th : workers_) th.join();
}

void WorkerPool::claim_tasks() {
  ++tl_task_depth;
  for (int i = next_.fetch_add(1); i < n_; i = next_.fetch_add(1)) {
    trace::TraceScope task_span(trace::Cat::kPool, "pool.task");
    task_span.arg("index", i);
    try {
      // Chaos hook: inside the try, so an injected worker exception takes
      // the same first-exception path a real task failure would.
      fault::on_site(fault::Site::kWorkerTask);
      (*fn_)(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(err_mu_);
      if (!err_) err_ = std::current_exception();
    }
  }
  --tl_task_depth;
}

void WorkerPool::worker_loop() {
  trace::set_thread_name("pool.worker");
  uint64_t seen = 0;
  for (;;) {
    {
      // parked time is a first-class span so pool idleness shows up in
      // the trace alongside the tasks it separates
      trace::TraceScope parked(trace::Cat::kPool, "pool.parked");
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    claim_tasks();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--busy_ == 0) cv_done_.notify_all();
    }
  }
}

void WorkerPool::run(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (tl_task_depth > 0) {
    // nested submission from inside a pool task: run inline (see
    // tl_task_depth above). Exceptions propagate directly — the caller
    // is a task body, whose own pool already collects them.
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::lock_guard<std::mutex> job(job_mu_);
  if (workers_.empty()) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0);
    busy_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();
  claim_tasks();  // the caller works too
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return busy_ == 0; });
    fn_ = nullptr;
  }
  std::exception_ptr err;
  {
    const std::lock_guard<std::mutex> lock(err_mu_);
    err = err_;
    err_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace decimate
