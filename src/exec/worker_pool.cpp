#include "exec/worker_pool.hpp"

namespace decimate {

WorkerPool::WorkerPool(int threads) {
  workers_.reserve(static_cast<size_t>(threads > 0 ? threads : 0));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& th : workers_) th.join();
}

void WorkerPool::claim_tasks() {
  for (int i = next_.fetch_add(1); i < n_; i = next_.fetch_add(1)) {
    try {
      (*fn_)(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(err_mu_);
      if (!err_) err_ = std::current_exception();
    }
  }
}

void WorkerPool::worker_loop() {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    claim_tasks();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--busy_ == 0) cv_done_.notify_all();
    }
  }
}

void WorkerPool::run(int n, const std::function<void(int)>& fn) {
  const std::lock_guard<std::mutex> job(job_mu_);
  if (n <= 0) return;
  if (workers_.empty()) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0);
    busy_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();
  claim_tasks();  // the caller works too
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return busy_ == 0; });
    fn_ = nullptr;
  }
  std::exception_ptr err;
  {
    const std::lock_guard<std::mutex> lock(err_mu_);
    err = err_;
    err_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace decimate
