#include "exec/tile_runner.hpp"

#include <cstring>
#include <map>
#include <mutex>

#include "common/bitutil.hpp"
#include "kernels/work_split.hpp"

namespace decimate {

namespace {

/// Simple bump allocator over the L1 data region.
class L1Alloc {
 public:
  explicit L1Alloc(uint32_t limit) : cur_(MemoryMap::kL1Base), limit_(limit) {}
  uint32_t take(int64_t bytes, const char* what) {
    const auto aligned = static_cast<uint32_t>(round_up(bytes, 4));
    DECIMATE_CHECK(cur_ + aligned <= limit_,
                   "L1 overflow allocating " << bytes << " bytes for " << what
                                             << " (used "
                                             << (cur_ - MemoryMap::kL1Base)
                                             << ", limit "
                                             << (limit_ - MemoryMap::kL1Base)
                                             << ")");
    const uint32_t addr = cur_;
    cur_ += aligned;
    return addr;
  }

 private:
  uint32_t cur_;
  uint32_t limit_;
};

Tensor8 pad_input_hwc(const Tensor8& input, const ConvGeom& g) {
  if (g.pad == 0) return input;
  const int iyp = g.iy + 2 * g.pad, ixp = g.ix + 2 * g.pad;
  Tensor8 padded({iyp, ixp, g.c});
  for (int y = 0; y < g.iy; ++y) {
    for (int x = 0; x < g.ix; ++x) {
      for (int c = 0; c < g.c; ++c) {
        padded.at({y + g.pad, x + g.pad, c}) = input.at({y, x, c});
      }
    }
  }
  return padded;
}

void write_i32(SocMemory& mem, uint32_t addr, std::span<const int32_t> words) {
  mem.write_block(addr, {reinterpret_cast<const uint8_t*>(words.data()),
                         words.size() * 4});
}

}  // namespace

const Program& TileRunner::program_for(KernelKind kind, int m) {
  static std::mutex mutex;
  static std::map<std::pair<KernelKind, int>, Program> cache;
  const auto key = std::make_pair(kind, kernel_is_sparse(kind) ? m : 0);
  // std::map nodes are stable, so references handed out earlier survive
  // later insertions; entries are never mutated after insertion.
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Program prog = kernel_is_conv(kind) ? build_conv_kernel(kind, key.second)
                                        : build_fc_kernel(kind, key.second);
    it = cache.emplace(key, std::move(prog)).first;
  }
  return it->second;
}

NmLayout TileRunner::layout_for(KernelKind kind) {
  switch (kind) {
    case KernelKind::kConvSparseSw:
    case KernelKind::kConvSparseIm2col:
    case KernelKind::kFcSparseSw:
      return NmLayout::kSw;
    case KernelKind::kConvSparseIsa:
      return NmLayout::kConvIsaDup;
    case KernelKind::kFcSparseIsa:
      return NmLayout::kFcIsaInterleaved;
    default:
      DECIMATE_FAIL("dense kernels have no NmLayout");
  }
}

int TileRunner::inner_iters(KernelKind kind, int m, int dense_cols,
                            int nz_padded) {
  if (!kernel_is_sparse(kind)) {
    DECIMATE_CHECK(dense_cols % 4 == 0, "dense row length must be 4-aligned");
    return dense_cols / 4;
  }
  const bool isa = kernel_uses_xdec(kind);
  if (isa && m == 4) {
    DECIMATE_CHECK(nz_padded % 8 == 0, "nz_padded must be 8-aligned for M=4");
    return nz_padded / 8;
  }
  DECIMATE_CHECK(nz_padded % 4 == 0, "nz_padded must be 4-aligned");
  return nz_padded / 4;
}

KernelRun TileRunner::conv(KernelKind kind, const ConvGeom& g,
                           const Requant& rq, const Tensor8& input,
                           const Tensor8* dense_w, const NmPacked* packed,
                           const Tensor32& bias) {
  g.validate();
  DECIMATE_CHECK(kernel_is_conv(kind), "conv() needs a conv kernel kind");
  DECIMATE_CHECK(g.c % 4 == 0, "conv kernels need C % 4 == 0 (pad channels)");
  DECIMATE_CHECK(g.ox() % 2 == 0, "conv kernels need an even OX");
  DECIMATE_CHECK(bias.numel() == g.k, "bias size mismatch");
  const bool sparse = kernel_is_sparse(kind);
  int m = 0, nz_padded = 0, w_row_bytes = 0, off_row_bytes = 0;
  if (sparse) {
    DECIMATE_CHECK(packed != nullptr, "sparse conv needs packed weights");
    DECIMATE_CHECK(packed->layout == layout_for(kind),
                   "packed layout " << nm_layout_name(packed->layout)
                                    << " does not match kernel "
                                    << kernel_kind_name(kind));
    DECIMATE_CHECK(packed->rows == g.k && packed->cols == g.fsz(),
                   "packed dims mismatch with geometry");
    m = packed->m;
    nz_padded = packed->nz_padded;
    w_row_bytes = packed->values_row_bytes;
    off_row_bytes = packed->offsets_row_bytes;
  } else {
    DECIMATE_CHECK(dense_w != nullptr, "dense conv needs dense weights");
    DECIMATE_CHECK(dense_w->shape() == (std::vector<int>{g.k, g.fsz()}),
                   "dense weight shape mismatch");
    if (kind == KernelKind::kConvDense4x2) {
      DECIMATE_CHECK(g.k % 4 == 0, "4x2 kernel needs K % 4 == 0");
    }
    w_row_bytes = static_cast<int>(round_up(g.fsz(), 4));
  }

  const Tensor8 padded = pad_input_hwc(input, g);
  const int ixp = g.ix + 2 * g.pad;
  const int oy = g.oy(), ox = g.ox();
  const int ncores = cluster_->num_cores();
  const int buf_core = static_cast<int>(
      round_up(g.fsz() + (sparse ? packed->gather_slack_bytes() : 0), 4));
  const int imcol_stride =
      (kind == KernelKind::kConvSparseIm2col) ? 4 * buf_core : 2 * buf_core;

  L1Alloc alloc(cluster_->l1_data_limit());
  const uint32_t args_addr =
      alloc.take(ConvArgs::size_words(ncores) * 4, "args");
  const uint32_t in_addr = alloc.take(padded.numel(), "input");
  uint32_t w_addr = 0, off_addr = 0;
  if (sparse) {
    w_addr = alloc.take(packed->values_bytes(), "nz values");
    off_addr = alloc.take(packed->offsets_bytes(), "nz offsets");
  } else {
    w_addr = alloc.take(static_cast<int64_t>(g.k) * w_row_bytes, "weights");
  }
  const uint32_t bias_addr = alloc.take(static_cast<int64_t>(g.k) * 4, "bias");
  const uint32_t out_addr =
      alloc.take(static_cast<int64_t>(oy) * ox * g.k, "output");
  const uint32_t imcol_addr =
      alloc.take(static_cast<int64_t>(ncores) * imcol_stride, "im2col");

  auto& mem = cluster_->mem();
  mem.write_block(in_addr, padded.bytes());
  if (sparse) {
    mem.write_block(w_addr, {reinterpret_cast<const uint8_t*>(
                                 packed->values.data()),
                             packed->values.size()});
    mem.write_block(off_addr, packed->offsets);
  } else {
    // dense rows, padded to w_row_bytes
    std::vector<uint8_t> wbuf(static_cast<size_t>(g.k) * w_row_bytes, 0);
    for (int k = 0; k < g.k; ++k) {
      std::memcpy(wbuf.data() + static_cast<size_t>(k) * w_row_bytes,
                  dense_w->data() + static_cast<int64_t>(k) * g.fsz(),
                  static_cast<size_t>(g.fsz()));
    }
    mem.write_block(w_addr, wbuf);
  }
  write_i32(mem, bias_addr, bias.flat());
  mem.fill(out_addr, static_cast<uint32_t>(oy) * ox * g.k, 0);

  // --- args block ---
  std::vector<int32_t> args(static_cast<size_t>(ConvArgs::size_words(ncores)),
                            0);
  args[ConvArgs::kInPtr] = static_cast<int32_t>(in_addr);
  args[ConvArgs::kOutPtr] = static_cast<int32_t>(out_addr);
  args[ConvArgs::kWPtr] = static_cast<int32_t>(w_addr);
  args[ConvArgs::kOffPtr] = static_cast<int32_t>(off_addr);
  args[ConvArgs::kBiasPtr] = static_cast<int32_t>(bias_addr);
  args[ConvArgs::kImcolPtr] = static_cast<int32_t>(imcol_addr);
  args[ConvArgs::kC] = g.c;
  args[ConvArgs::kK] = g.k;
  args[ConvArgs::kFy] = g.fy;
  args[ConvArgs::kOx] = ox;
  args[ConvArgs::kStride] = g.stride;
  args[ConvArgs::kQmult] = rq.mult;
  args[ConvArgs::kQshift] = rq.shift;
  args[ConvArgs::kInnerIters] = inner_iters(kind, m, g.fsz(), nz_padded);
  args[ConvArgs::kWRowBytes] = w_row_bytes;
  args[ConvArgs::kOffRowBytes] = off_row_bytes;
  args[ConvArgs::kRowCopyIters] = g.fx * g.c / 4;
  args[ConvArgs::kInRowBytes] = ixp * g.c;
  args[ConvArgs::kImcolBufBytes] = buf_core;
  args[ConvArgs::kImcolStride] = imcol_stride;
  args[ConvArgs::kOxPairs] = ox / 2;
  args[ConvArgs::kSxC] = g.stride * g.c;
  const auto work = split_conv_work(oy, ox / 2, g.k, ncores);
  for (int i = 0; i < ncores; ++i) {
    const auto& wk = work[static_cast<size_t>(i)];
    int32_t* dst = args.data() + ConvArgs::kWorkBase + i * ConvArgs::kWorkWords;
    dst[0] = wk.oy_s; dst[1] = wk.oy_e;
    dst[2] = wk.xp_s; dst[3] = wk.xp_e;
    dst[4] = wk.k_s;  dst[5] = wk.k_e;
  }
  write_i32(mem, args_addr, args);

  KernelRun run;
  run.result = cluster_->run(program_for(kind, m), args_addr);
  run.dense_macs = g.macs();
  run.output = Tensor8({oy, ox, g.k});
  mem.read_block(out_addr,
                 {reinterpret_cast<uint8_t*>(run.output.data()),
                  static_cast<size_t>(run.output.numel())});
  return run;
}

KernelRun TileRunner::fc(KernelKind kind, const FcGeom& g, const Requant& rq,
                         const Tensor8& input, const Tensor8* dense_w,
                         const NmPacked* packed, const Tensor32& bias) {
  g.validate();
  DECIMATE_CHECK(!kernel_is_conv(kind), "fc() needs an fc kernel kind");
  DECIMATE_CHECK(g.c % 4 == 0, "fc kernels need C % 4 == 0");
  DECIMATE_CHECK(input.shape() == (std::vector<int>{g.tokens, g.c}),
                 "fc input shape mismatch");
  DECIMATE_CHECK(bias.numel() == g.k, "fc bias size mismatch");
  const bool sparse = kernel_is_sparse(kind);
  const bool pair_kind = (kind != KernelKind::kFcSparseSw);
  if (pair_kind) {
    DECIMATE_CHECK(g.k % 2 == 0, "fc pair kernels need K % 2 == 0");
  }
  int m = 0, nz_padded = 0, w_row_bytes = 0, off_row_bytes = 0;
  int64_t slack = 0;
  if (sparse) {
    DECIMATE_CHECK(packed != nullptr, "sparse fc needs packed weights");
    DECIMATE_CHECK(packed->layout == layout_for(kind),
                   "packed layout mismatch");
    DECIMATE_CHECK(packed->rows == g.k && packed->cols == g.c,
                   "packed dims mismatch with geometry");
    m = packed->m;
    nz_padded = packed->nz_padded;
    w_row_bytes = packed->values_row_bytes;
    off_row_bytes = packed->offsets_row_bytes;
    slack = packed->gather_slack_bytes();
  } else {
    DECIMATE_CHECK(dense_w != nullptr, "dense fc needs dense weights");
    DECIMATE_CHECK(dense_w->shape() == (std::vector<int>{g.k, g.c}),
                   "dense fc weight shape mismatch");
    w_row_bytes = static_cast<int>(round_up(g.c, 4));
  }

  const int ncores = cluster_->num_cores();
  L1Alloc alloc(cluster_->l1_data_limit());
  const uint32_t args_addr = alloc.take(FcArgs::size_words(ncores) * 4, "args");
  const uint32_t in_addr =
      alloc.take(static_cast<int64_t>(g.tokens) * g.c + slack, "input");
  uint32_t w_addr = 0, off_addr = 0;
  if (sparse) {
    w_addr = alloc.take(packed->values_bytes(), "nz values");
    off_addr = alloc.take(packed->offsets_bytes(), "nz offsets");
  } else {
    w_addr = alloc.take(static_cast<int64_t>(g.k) * w_row_bytes, "weights");
  }
  const uint32_t bias_addr = alloc.take(static_cast<int64_t>(g.k) * 4, "bias");
  const uint32_t out_addr =
      alloc.take(static_cast<int64_t>(g.tokens) * g.k, "output");

  auto& mem = cluster_->mem();
  mem.write_block(in_addr, input.bytes());
  if (sparse) {
    mem.write_block(w_addr, {reinterpret_cast<const uint8_t*>(
                                 packed->values.data()),
                             packed->values.size()});
    mem.write_block(off_addr, packed->offsets);
  } else {
    std::vector<uint8_t> wbuf(static_cast<size_t>(g.k) * w_row_bytes, 0);
    for (int k = 0; k < g.k; ++k) {
      std::memcpy(wbuf.data() + static_cast<size_t>(k) * w_row_bytes,
                  dense_w->data() + static_cast<int64_t>(k) * g.c,
                  static_cast<size_t>(g.c));
    }
    mem.write_block(w_addr, wbuf);
  }
  write_i32(mem, bias_addr, bias.flat());
  mem.fill(out_addr,
           static_cast<uint32_t>(g.tokens) * static_cast<uint32_t>(g.k), 0);

  std::vector<int32_t> args(static_cast<size_t>(FcArgs::size_words(ncores)),
                            0);
  args[FcArgs::kInPtr] = static_cast<int32_t>(in_addr);
  args[FcArgs::kOutPtr] = static_cast<int32_t>(out_addr);
  args[FcArgs::kWPtr] = static_cast<int32_t>(w_addr);
  args[FcArgs::kOffPtr] = static_cast<int32_t>(off_addr);
  args[FcArgs::kBiasPtr] = static_cast<int32_t>(bias_addr);
  args[FcArgs::kC] = g.c;
  args[FcArgs::kQmult] = rq.mult;
  args[FcArgs::kQshift] = rq.shift;
  args[FcArgs::kInnerIters] = inner_iters(kind, m, g.c, nz_padded);
  args[FcArgs::kWRowBytes] = w_row_bytes;
  args[FcArgs::kOffRowBytes] = off_row_bytes;
  args[FcArgs::kOutRowBytes] = g.k;
  args[FcArgs::kInRowBytes] = g.c;
  const auto work = split_fc_work(g.tokens, g.k, ncores, pair_kind ? 2 : 1);
  for (int i = 0; i < ncores; ++i) {
    const auto& wk = work[static_cast<size_t>(i)];
    int32_t* dst = args.data() + FcArgs::kWorkBase + i * FcArgs::kWorkWords;
    dst[0] = wk.tok_s; dst[1] = wk.tok_e;
    dst[2] = wk.k_s;   dst[3] = wk.k_e;
  }
  write_i32(mem, args_addr, args);

  KernelRun run;
  run.result = cluster_->run(program_for(kind, m), args_addr);
  run.dense_macs = g.macs();
  run.output = Tensor8({g.tokens, g.k});
  mem.read_block(out_addr,
                 {reinterpret_cast<uint8_t*>(run.output.data()),
                  static_cast<size_t>(run.output.numel())});
  return run;
}

}  // namespace decimate
