#include "exec/latency_cache.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "common/check.hpp"

namespace decimate {

namespace {

// File layout: magic, version, entry count, then `count` fixed-size
// records. The record encodes the full TileKey tuple plus the measured
// cycles; bumping kVersion invalidates stale files wholesale.
constexpr char kMagic[4] = {'D', 'T', 'L', 'C'};
constexpr uint32_t kVersion = 1;

struct Record {
  uint8_t domain = 0;
  uint8_t kind = 0;
  uint8_t vec_op = 0;
  uint8_t pad = 0;
  int32_t m = 0;
  int32_t cfg = 0;
  std::array<int32_t, 8> geom{};
  uint64_t cycles = 0;
};
static_assert(sizeof(Record) == 56, "record layout drifted");

}  // namespace

size_t TileLatencyCache::save(const std::string& path) const {
  // snapshot ready entries under the lock; write outside it
  std::vector<Record> records;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    records.reserve(cache_.size());
    for (const auto& [key, fut] : cache_) {
      if (fut.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        continue;  // simulation still in flight on another thread
      }
      Record r;
      r.domain = static_cast<uint8_t>(key.domain);
      r.kind = static_cast<uint8_t>(key.kind);
      r.vec_op = static_cast<uint8_t>(key.vec_op);
      r.m = key.m;
      r.cfg = key.cfg;
      for (size_t i = 0; i < key.geom.size(); ++i) r.geom[i] = key.geom[i];
      r.cycles = fut.get();
      records.push_back(r);
    }
  }

  // write-then-rename so a killed process never leaves a truncated file
  // behind — a malformed warm file would fail every later start
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    DECIMATE_CHECK(out.good(), "cannot open latency cache file " << tmp);
    out.write(kMagic, sizeof(kMagic));
    const uint32_t version = kVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const uint64_t count = records.size();
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const Record& r : records) {
      out.write(reinterpret_cast<const char*>(&r), sizeof(r));
    }
    out.flush();
    DECIMATE_CHECK(out.good(), "failed writing latency cache file " << tmp);
  }
  DECIMATE_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "cannot move latency cache file into place at " << path);
  return records.size();
}

size_t TileLatencyCache::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return 0;  // no warm file yet: cold start

  char magic[4] = {};
  in.read(magic, sizeof(magic));
  DECIMATE_CHECK(in.good() && std::equal(magic, magic + 4, kMagic),
                 "latency cache file " << path << " has a bad magic");
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  DECIMATE_CHECK(in.good() && version == kVersion,
                 "latency cache file " << path << " has version " << version
                                       << ", expected " << kVersion);
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  DECIMATE_CHECK(in.good(), "latency cache file " << path << " truncated");

  size_t inserted = 0;
  const std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t i = 0; i < count; ++i) {
    Record r;
    in.read(reinterpret_cast<char*>(&r), sizeof(r));
    DECIMATE_CHECK(in.good(), "latency cache file " << path << " truncated");
    TileKey key;
    key.domain = static_cast<TileKey::Domain>(r.domain);
    key.kind = static_cast<KernelKind>(r.kind);
    key.vec_op = static_cast<OpType>(r.vec_op);
    key.m = r.m;
    key.cfg = r.cfg;
    for (size_t g = 0; g < key.geom.size(); ++g) key.geom[g] = r.geom[g];
    if (cache_.count(key) != 0) continue;  // a measured value wins
    std::promise<uint64_t> prom;
    prom.set_value(r.cycles);
    cache_.emplace(key, prom.get_future().share());
    ++inserted;
  }
  return inserted;
}

}  // namespace decimate
