#include "exec/latency_cache.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"

namespace decimate {

namespace {

// File layout: magic, version, CRC of the record block, then the
// count-prefixed records (append_records). Each record encodes the full
// TileKey tuple plus the measured cycles in explicit little-endian
// fields (common/serde.hpp); bumping kVersion invalidates stale files
// wholesale. v1 wrote host-endian packed structs; v2 is the portable
// serde encoding shared with the plan-artifact latency section.
constexpr char kMagic[4] = {'D', 'T', 'L', 'C'};
constexpr uint32_t kVersion = 2;

void write_record(serde::Writer& w, const TileKey& key, uint64_t cycles) {
  w.u8(static_cast<uint8_t>(key.domain));
  w.u8(static_cast<uint8_t>(key.kind));
  w.u8(static_cast<uint8_t>(key.vec_op));
  w.u8(0);  // pad, keeps the record word-aligned and greppable
  w.i32(key.m);
  w.i32(key.cfg);
  for (const int g : key.geom) w.i32(g);
  w.u64(cycles);
}

std::pair<TileKey, uint64_t> read_record(serde::Reader& r) {
  TileKey key;
  key.domain = static_cast<TileKey::Domain>(r.u8());
  key.kind = static_cast<KernelKind>(r.u8());
  key.vec_op = static_cast<OpType>(r.u8());
  r.u8();  // pad
  key.m = r.i32();
  key.cfg = r.i32();
  for (auto& g : key.geom) g = r.i32();
  return {key, r.u64()};
}

}  // namespace

size_t TileLatencyCache::append_records(serde::Writer& w) const {
  // snapshot ready entries under the lock; in-flight simulations on
  // other threads are skipped (they will be in the next snapshot)
  std::vector<std::pair<TileKey, uint64_t>> records;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    records.reserve(cache_.size());
    for (const auto& [key, fut] : cache_) {
      if (fut.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        continue;
      }
      records.emplace_back(key, fut.get());
    }
  }
  w.u64(records.size());
  for (const auto& [key, cycles] : records) write_record(w, key, cycles);
  return records.size();
}

size_t TileLatencyCache::merge_records(serde::Reader& r) {
  const uint64_t count = r.u64();
  size_t inserted = 0;
  const std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t i = 0; i < count; ++i) {
    const auto [key, cycles] = read_record(r);
    if (cache_.count(key) != 0) continue;  // a measured value wins
    std::promise<uint64_t> prom;
    prom.set_value(cycles);
    cache_.emplace(key, prom.get_future().share());
    ++inserted;
  }
  return inserted;
}

size_t TileLatencyCache::save(const std::string& path) const {
  serde::Writer records;
  const size_t count = append_records(records);

  serde::Writer out;
  out.bytes(kMagic, sizeof(kMagic));
  out.u32(kVersion);
  out.u32(serde::crc32(records.buffer()));
  out.bytes(records.buffer().data(), records.buffer().size());
  serde::write_file_atomic(path, out.buffer());
  return count;
}

size_t TileLatencyCache::load(const std::string& path) {
  std::vector<uint8_t> bytes;
  if (!serde::read_file(path, bytes)) return 0;  // no warm file: cold start

  serde::Reader r(bytes, "latency cache file " + path);
  const auto magic = r.take(sizeof(kMagic));
  DECIMATE_CHECK(std::equal(magic.begin(), magic.end(),
                            reinterpret_cast<const uint8_t*>(kMagic)),
                 "latency cache file " << path << " has a bad magic");
  const uint32_t version = r.u32();
  DECIMATE_CHECK(version == kVersion,
                 "latency cache file " << path << " has version " << version
                                       << ", expected " << kVersion);
  const uint32_t crc = r.u32();
  const auto records = r.take(r.remaining());
  DECIMATE_CHECK(serde::crc32(records) == crc,
                 "latency cache file " << path << " is corrupt (CRC)");
  serde::Reader rr(records, "latency cache records of " + path);
  return merge_records(rr);
}

}  // namespace decimate
