#pragma once
// Compiler: lowers a Graph into an immutable CompiledPlan (see plan.hpp).
//
// This is the offline half of the paper's pipeline — pattern matching,
// kernel selection (Sec. 4.4 feature 1), sparsity-aware L1 tiling
// (feature 2), N:M weight packing, weight residency, and the ISS-backed
// cycle model with DMA double-buffering. Each unique (kernel, tile
// geometry) is simulated once and memoized in a shared TileLatencyCache,
// so compiling a family of graphs — or re-compiling the same graph —
// never repeats a simulation.

#include <memory>

#include "common/rng.hpp"
#include "exec/plan.hpp"
#include "sim/cluster.hpp"
#include "sim/dma.hpp"

namespace decimate {

/// Cluster-config salt for TileLatencyCache keys: measured cycles depend
/// on the core count / lockstep / forwarding configuration, and the cache
/// may be shared between compilers (and the ShardPlanner) with different
/// options.
int tile_cfg_salt(const CompileOptions& opt);

class Compiler {
 public:
  /// `latencies` may be shared between compilers; a fresh cache is created
  /// when omitted.
  explicit Compiler(const CompileOptions& opt = {},
                    std::shared_ptr<TileLatencyCache> latencies = nullptr);

  /// Lower `graph` into a plan. The graph must outlive the plan (steps
  /// reference its weights).
  CompiledPlan compile(const Graph& graph);

  const CompileOptions& options() const { return opt_; }
  const TileLatencyCache& latencies() const { return *cache_; }
  std::shared_ptr<TileLatencyCache> shared_latencies() const { return cache_; }

  /// Persist the latency cache to options().latency_cache_path (which
  /// must be set); the next Compiler constructed with the same path
  /// compiles ISS-free for every shape measured so far.
  size_t save_latencies() const;

  /// Where a graph's weights live (decided by total deployed bytes).
  static MemRegion weight_region(int64_t deployed_bytes);

 private:
  int tile_cfg() const { return tile_cfg_salt(opt_); }
  uint64_t measure_conv_tile(const KernelChoice& choice, const ConvGeom& g);
  uint64_t measure_fc_tile(const KernelChoice& choice, const FcGeom& g);
  void compile_gemm_node(const Graph& graph, const Node& node, PlanStep& step);
  void compile_vec_node(const Graph& graph, const Node& node, PlanStep& step);

  CompileOptions opt_;
  Cluster cluster_;  // measurement cluster
  DmaModel dma_;
  MemRegion w_region_ = MemRegion::kL2;
  std::shared_ptr<TileLatencyCache> cache_;
  Rng rng_{0xBEEFCAFE};
};

/// Pipelined total of a tile sequence under double buffering: tile i's
/// compute overlaps tile i+1's input DMA and tile i-1's output DMA.
uint64_t pipeline_total(const std::vector<TileCost>& tiles);

/// The cluster configuration implied by a set of compile options (shared
/// by the measurement cluster and the engine's verify cluster).
ClusterConfig cluster_config_from(const CompileOptions& opt);

}  // namespace decimate
