#pragma once
// Single-tile ISS execution: places operands in L1, fills the args block,
// runs the cluster and reads the result back. This is the one place where
// conv/fc args-block setup, L1 placement and requant plumbing live — the
// execution engine uses it for latency measurement and verification, and
// the legacy KernelLauncher facade (kernels/launch.hpp) forwards here.
//
// Tiles assume "data already in L1", as the paper's kernels do; multi-tile
// layers with DMA double-buffering are planned by exec/compile and costed
// tile-by-tile through this runner.

#include "kernels/kernels.hpp"
#include "nn/layer_geometry.hpp"
#include "nn/nm_format.hpp"
#include "nn/quant.hpp"
#include "sim/cluster.hpp"

namespace decimate {

struct KernelRun {
  Tensor8 output;
  RunResult result;
  int64_t dense_macs = 0;

  double macs_per_cycle() const {
    return result.wall_cycles == 0
               ? 0.0
               : static_cast<double>(dense_macs) /
                     static_cast<double>(result.wall_cycles);
  }
};

class TileRunner {
 public:
  explicit TileRunner(Cluster& cluster) : cluster_(&cluster) {}

  /// Convolution. Dense kinds take `dense_w` ({K, FSZ}); sparse kinds take
  /// `packed` (layout must match the kind). Input is the *logical* tensor
  /// {IY, IX, C}; padding is materialized into L1 by the runner.
  KernelRun conv(KernelKind kind, const ConvGeom& g, const Requant& rq,
                 const Tensor8& input, const Tensor8* dense_w,
                 const NmPacked* packed, const Tensor32& bias);

  /// Fully-connected. Input {T, C}; dense weights {K, C} or packed.
  KernelRun fc(KernelKind kind, const FcGeom& g, const Requant& rq,
               const Tensor8& input, const Tensor8* dense_w,
               const NmPacked* packed, const Tensor32& bias);

  /// Program cache shared by all runners (programs depend only on
  /// (kind, M)). Thread-safe: guarded by an internal mutex; returned
  /// references stay valid for the process lifetime.
  static const Program& program_for(KernelKind kind, int m);

  /// The expected NmLayout for a sparse kernel kind.
  static NmLayout layout_for(KernelKind kind);

  /// Inner hardware-loop trip count for a geometry (dense row length or
  /// padded NZ count).
  static int inner_iters(KernelKind kind, int m, int dense_cols,
                         int nz_padded);

  Cluster& cluster() { return *cluster_; }

 private:
  Cluster* cluster_;
};

}  // namespace decimate
