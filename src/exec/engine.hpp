#pragma once
// ExecutionEngine: executes a CompiledPlan over one input or a batch.
//
// The plan is immutable and shareable: one engine can serve many inputs
// (run_batch), and many engines can serve one plan. Numerics come from
// the reference ops (bit-exact mirrors of the ISS kernels, enforced by
// the kernel test suite and the optional verify mode); cycle and memory
// reports were fixed at compile time, so no ISS simulation happens on the
// execution path — each unique (kernel, tile geometry) was simulated
// exactly once when the plan was built, however large the batch.
//
// run_batch is a software pipeline: images advance through the plan's
// steps concurrently on a worker pool (layer i+1 of image n overlaps
// layer i of image n+1), and the BatchRun cycle model merges the
// per-step tile streams across images so DMA ramp-in/out overlaps
// instead of summing independent per-image totals.

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "exec/compile.hpp"
#include "exec/worker_pool.hpp"
#include "sim/cluster.hpp"

namespace decimate {

/// Thrown by run_batch when a batch-fused plan receives a span of a
/// different size than the plan was fused for. Carries the structured
/// mismatch so callers (e.g. the serve Dispatcher) can re-chunk the batch
/// to the plan's fused size instead of parsing an error message.
class BatchMismatchError : public Error {
 public:
  BatchMismatchError(int fused_batch, int got);
  int fused_batch() const { return fused_batch_; }  // plan was fused for
  int got() const { return got_; }                  // span it was handed

 private:
  int fused_batch_ = 1;
  int got_ = 0;
};

/// Aggregate of a pipelined batch execution. Per-image outputs and
/// reports are bit-exact with N sequential run() calls; the batch cycle
/// model additionally accounts cross-image DMA/compute overlap.
struct BatchRun {
  std::vector<NetworkRun> runs;  // one per input, in input order

  /// Modeled cycles for the whole batch under cross-image double
  /// buffering: tile streams of consecutive images/layers merge into one
  /// DMA/compute pipeline (image-major; batch-fused FC steps contribute
  /// their whole-batch stream once per compiled batch).
  uint64_t batch_cycles = 0;

  /// Σ independent per-image totals — the no-overlap baseline.
  uint64_t sequential_cycles = 0;

  int batch_size() const { return static_cast<int>(runs.size()); }
  double cycles_per_image() const {
    return runs.empty() ? 0.0
                        : static_cast<double>(batch_cycles) /
                              static_cast<double>(runs.size());
  }
  double pipeline_speedup() const {
    return batch_cycles ? static_cast<double>(sequential_cycles) /
                              static_cast<double>(batch_cycles)
                        : 0.0;
  }
};

class ExecutionEngine {
 public:
  ExecutionEngine() = default;

  /// Execute the plan's graph on `input`; returns the last node's output
  /// plus the cycle/memory report. Thread-safe while verify mode is off.
  NetworkRun run(const CompiledPlan& plan, const Tensor8& input);

  /// Execute the plan over a batch of independent inputs on a worker
  /// pool; outputs are bit-exact with per-image run() calls. A batch-fused
  /// plan (options.batch > 1) only serves spans of exactly that size —
  /// anything else throws rather than stamping mismatched cycle reports.
  /// Concurrent run_batch calls on one engine are safe but serialize on
  /// the shared per-engine pool (jobs never interleave); callers that
  /// want parallel batches should use one engine per caller.
  BatchRun run_batch(const CompiledPlan& plan,
                     std::span<const Tensor8> inputs);

  /// Worker threads for run_batch. 0 (default) = min(batch size,
  /// hardware concurrency). Verify mode always runs single-threaded
  /// (the verify cluster is shared state). Threads live in a lazily-
  /// created per-engine WorkerPool reused across batches — a serving
  /// loop pays thread spawn once, not per formed batch.
  void set_workers(int n) { workers_ = n; }

  /// Intra-image parallelism: threads used to split a single image's
  /// gemm steps across the worker pool (conv output rows / FC tokens or
  /// channels via the ranged host ops — bit-exact stitching). -1
  /// (default) follows the plan's CompileOptions::host_threads; 0 =
  /// hardware concurrency; 1 = serial. Splits nested inside run_batch's
  /// image tasks execute inline (WorkerPool nesting guard), so batch- and
  /// intra-image parallelism compose without oversubscription. Verify
  /// mode always runs serial.
  void set_intra_image_threads(int n) { intra_threads_ = n; }

  /// Minimum step.report.macs for an intra-image split — tiny layers stay
  /// serial (fork/join overhead would beat the win). Default 1M MACs.
  void set_intra_mac_floor(int64_t macs) { intra_mac_floor_ = macs; }

  /// Route gemm numerics through the plan's HostKernelDispatch (sparse
  /// N:M gather kernels / blocked dense loops; default) or through the
  /// scalar reference ops. Outputs are bit-identical either way — the
  /// toggle exists for baselines and oracle comparisons.
  void set_use_host_kernels(bool v) { use_host_kernels_ = v; }
  bool use_host_kernels() const { return use_host_kernels_; }

  /// Test mode: single-tile conv/fc layers are additionally replayed on
  /// the ISS with the real data (using the plan's pre-packed weights) and
  /// compared against the reference.
  void set_verify_with_sim(bool v) { verify_with_sim_ = v; }

  /// The BatchRun cycle model for `n` images of `plan`, exposed for
  /// benches and tests: per-step tile streams are concatenated (with
  /// flushes at serialized/non-pipelined steps) and costed as one
  /// double-buffered pipeline.
  static uint64_t modeled_batch_cycles(const CompiledPlan& plan, int n);

 private:
  void exec_gemm_node(const CompiledPlan& plan, const PlanStep& step,
                      const Node& node, const Tensor8& in,
                      const Tensor8* b_operand, Tensor8& out);
  Cluster& verify_cluster(const CompileOptions& opt);
  std::shared_ptr<WorkerPool> worker_pool(int target);

  bool verify_with_sim_ = false;
  bool use_host_kernels_ = true;
  int workers_ = 0;
  int intra_threads_ = -1;  // -1 = follow plan options.host_threads
  int64_t intra_mac_floor_ = int64_t{1} << 20;
  std::mutex pool_mu_;  // guards pool_ swaps; callers hold their own ref
  std::shared_ptr<WorkerPool> pool_;  // lazily created, reused per batch
  std::unique_ptr<Cluster> verify_cluster_;
  ClusterConfig verify_cfg_;  // config the verify cluster was built with
};

}  // namespace decimate
