#pragma once
// ExecutionEngine: executes a CompiledPlan over one input or a batch.
//
// The plan is immutable and shareable: one engine can serve many inputs
// (run_batch), and many engines can serve one plan. Numerics come from
// the reference ops (bit-exact mirrors of the ISS kernels, enforced by
// the kernel test suite and the optional verify mode); cycle and memory
// reports were fixed at compile time, so no ISS simulation happens on the
// execution path — each unique (kernel, tile geometry) was simulated
// exactly once when the plan was built, however large the batch.

#include <memory>
#include <span>

#include "exec/compile.hpp"
#include "sim/cluster.hpp"

namespace decimate {

class ExecutionEngine {
 public:
  ExecutionEngine() = default;

  /// Execute the plan's graph on `input`; returns the last node's output
  /// plus the cycle/memory report.
  NetworkRun run(const CompiledPlan& plan, const Tensor8& input);

  /// Execute the plan over a batch of independent inputs.
  std::vector<NetworkRun> run_batch(const CompiledPlan& plan,
                                    std::span<const Tensor8> inputs);

  /// Test mode: single-tile conv/fc layers are additionally replayed on
  /// the ISS with the real data (using the plan's pre-packed weights) and
  /// compared against the reference.
  void set_verify_with_sim(bool v) { verify_with_sim_ = v; }

 private:
  void exec_gemm_node(const CompiledPlan& plan, const PlanStep& step,
                      const Node& node, const Tensor8& in,
                      const Tensor8* b_operand, Tensor8& out);
  void exec_vec_node(const Node& node,
                     const std::vector<const Tensor8*>& in, Tensor8& out);
  Cluster& verify_cluster(const CompileOptions& opt);

  bool verify_with_sim_ = false;
  std::unique_ptr<Cluster> verify_cluster_;
  ClusterConfig verify_cfg_;  // config the verify cluster was built with
};

}  // namespace decimate
