#pragma once
// Reference-numerics execution of single graph nodes, shared by the
// single-cluster ExecutionEngine and the sharded MultiClusterEngine (the
// numerics of a node do not depend on how its tiles are scheduled or
// which cluster runs them — both engines must produce identical bytes).

#include <vector>

#include "compiler/graph.hpp"
#include "nn/tensor.hpp"

namespace decimate {

/// Row/column transpose of a 2D tensor (matmul transpose_b operand).
Tensor8 transpose2d(const Tensor8& x);

/// Execute a non-gemm node on its input values (reference ops, bit-exact
/// mirrors of the ISS kernels). `in` holds one pointer per node input, in
/// node.inputs order.
void exec_vec_node_ref(const Node& node,
                       const std::vector<const Tensor8*>& in, Tensor8& out);

}  // namespace decimate
