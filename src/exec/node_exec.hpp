#pragma once
// Reference-numerics execution of single graph nodes, shared by the
// single-cluster ExecutionEngine and the sharded MultiClusterEngine (the
// numerics of a node do not depend on how its tiles are scheduled or
// which cluster runs them — both engines must produce identical bytes).

#include <vector>

#include "compiler/graph.hpp"
#include "exec/plan.hpp"
#include "exec/worker_pool.hpp"
#include "nn/tensor.hpp"

namespace decimate {

/// Row/column transpose of a 2D tensor (matmul transpose_b operand).
Tensor8 transpose2d(const Tensor8& x);

/// Execute a gemm node (conv / fc / matmul): operand selection (matmul
/// transpose, zero bias) plus the numerics, routed through the step's
/// HostKernelDispatch when `use_host` is set (sparse steps run the N:M
/// gather kernels, dense steps the blocked loops) and through the scalar
/// reference ops otherwise. Both paths are bit-identical — the flag exists
/// so engines, benches and tests can compare them. `b_operand` is the
/// matmul B producer value (nullptr for conv/fc).
void exec_gemm_node_host(const PlanStep& step, const Node& node,
                         const Tensor8& in, const Tensor8* b_operand,
                         bool use_host, Tensor8& out);

/// Intra-image parallel variant: partitions the step's output — conv
/// rows, FC tokens (falling back to output channels when the token count
/// is small) — into `parts` disjoint ranges executed concurrently on
/// `pool` through the ranged host ops. Disjoint ranges stitch bit-exactly
/// (each output element is produced by exactly one range, with the same
/// accumulation as the full-range call), so the result is bit-identical
/// to exec_gemm_node_host. `parts` is clamped to the split axis; a pool
/// task calling this nests inline (see WorkerPool::run).
void exec_gemm_node_host_parallel(const PlanStep& step, const Node& node,
                                  const Tensor8& in, const Tensor8* b_operand,
                                  WorkerPool& pool, int parts, Tensor8& out);

/// Execute a non-gemm node on its input values (reference ops, bit-exact
/// mirrors of the ISS kernels). `in` holds one pointer per node input, in
/// node.inputs order.
void exec_vec_node_ref(const Node& node,
                       const std::vector<const Tensor8*>& in, Tensor8& out);

}  // namespace decimate
