#pragma once
// Persistent worker pool for the execution engines.
//
// ExecutionEngine::run_batch used to build (and join) a std::vector of
// std::thread per call, so a serving loop paid thread spawn/teardown for
// every formed batch. A WorkerPool keeps its threads parked on a condition
// variable between jobs: run(n, fn) hands out task indices [0, n) to the
// workers (work-claiming, same pipeline semantics as before) plus the
// calling thread, and returns when every index has been processed.
// MultiClusterEngine reuses the same pool for its per-cluster shard
// slices and data-parallel thunks.
//
// Thread safety: run() may be called from several threads; calls
// serialize on an internal mutex (jobs never interleave). The first
// exception a task throws is rethrown on the caller after the job drains.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace decimate {

class WorkerPool {
 public:
  /// A pool with `threads` parked worker threads. The calling thread of
  /// run() also executes tasks, so a pool of T threads runs jobs with
  /// T + 1 way parallelism. threads == 0 is valid (run() degenerates to
  /// an inline loop).
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Execute fn(i) for every i in [0, n), distributing indices across the
  /// pool's threads and the caller. Blocks until all n tasks finished;
  /// rethrows the first task exception (remaining tasks still drain, as
  /// claimed indices must complete before the job ends).
  ///
  /// Nesting: run() called from INSIDE a pool task (this pool or any
  /// other) executes fn inline on the calling thread instead of
  /// submitting — same-pool nesting would deadlock on the job mutex and
  /// cross-pool nesting would oversubscribe the machine. The guard is a
  /// thread-local task depth, so it also covers indirect nesting (e.g.
  /// the engine's intra-image splits inside run_batch's image tasks).
  void run(int n, const std::function<void(int)>& fn);

  /// Is the calling thread currently inside a pool task (any pool)?
  /// Nested run() calls from such a context execute inline.
  static bool in_task();

  /// Worker threads owned by the pool (excluding the caller).
  int threads() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();
  void claim_tasks();

  std::mutex job_mu_;  // serializes concurrent run() calls

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* fn_ = nullptr;
  int n_ = 0;
  std::atomic<int> next_{0};
  uint64_t generation_ = 0;
  int busy_ = 0;  // workers still inside the current generation
  bool stop_ = false;

  std::mutex err_mu_;
  std::exception_ptr err_;

  std::vector<std::thread> workers_;
};

}  // namespace decimate
