#pragma once
// Structured ISS latency cache.
//
// Each unique tile shape is simulated on the ISS exactly once; the result
// is keyed by a typed (domain, kernel kind, M, geometry, cluster config)
// tuple instead of the stringly key the original schedule executor used.
// The cache is shared: a Compiler threads one instance through every plan
// it builds (CompiledPlan keeps a reference), so compiling N graphs — or
// executing one plan over an arbitrarily large batch — re-simulates each
// unique (kernel, tile geometry) only once.
//
// Thread safety: measure() may be called from concurrent compiles and the
// batch-pipeline workers. The map is mutex-guarded, and each key holds a
// shared_future so the first caller simulates while later callers for the
// same key wait on the in-flight result instead of re-simulating — the
// exactly-once guarantee holds under concurrency too. If the owning
// simulation throws, every waiter rethrows and the entry is erased so a
// later call can retry.

#include <array>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <tuple>

#include "common/serde.hpp"
#include "compiler/graph.hpp"
#include "kernels/abi.hpp"
#include "trace/metrics.hpp"

namespace decimate {

struct TileKey {
  enum class Domain : uint8_t { kConv, kFc, kVec };

  Domain domain = Domain::kConv;
  KernelKind kind = KernelKind::kConvDense1x2;  // gemm domains only
  int m = 0;                                    // sparsity block (0 = dense)
  OpType vec_op = OpType::kInput;               // vec domain only
  int cfg = 0;  // cluster-config salt (cores/lockstep/forwarding)
  std::array<int, 8> geom{};                    // domain-specific geometry

  friend bool operator<(const TileKey& a, const TileKey& b) {
    return std::tie(a.domain, a.kind, a.m, a.vec_op, a.cfg, a.geom) <
           std::tie(b.domain, b.kind, b.m, b.vec_op, b.cfg, b.geom);
  }
  friend bool operator==(const TileKey& a, const TileKey& b) {
    return std::tie(a.domain, a.kind, a.m, a.vec_op, a.cfg, a.geom) ==
           std::tie(b.domain, b.kind, b.m, b.vec_op, b.cfg, b.geom);
  }
};

inline TileKey conv_tile_key(KernelKind kind, int m, const ConvGeom& g,
                             int cfg = 0) {
  TileKey k;
  k.domain = TileKey::Domain::kConv;
  k.kind = kind;
  k.m = m;
  k.cfg = cfg;
  k.geom = {g.ix, g.iy, g.c, g.k, g.fx, g.fy, g.stride, g.pad};
  return k;
}

inline TileKey fc_tile_key(KernelKind kind, int m, const FcGeom& g,
                           int cfg = 0) {
  TileKey k;
  k.domain = TileKey::Domain::kFc;
  k.kind = kind;
  k.m = m;
  k.cfg = cfg;
  k.geom = {g.tokens, g.c, g.k};
  return k;
}

inline TileKey vec_tile_key(OpType op, int rows, int row_bytes, int extra = 0,
                            int cfg = 0) {
  TileKey k;
  k.domain = TileKey::Domain::kVec;
  k.vec_op = op;
  k.cfg = cfg;
  k.geom = {rows, row_bytes, extra};
  return k;
}

class TileLatencyCache {
 public:
  /// Return the cached cycle count for `key`, running `fn` (an ISS
  /// simulation) only on the first request. Safe to call concurrently;
  /// racing callers for the same key block on one shared simulation.
  uint64_t measure(const TileKey& key, const std::function<uint64_t()>& fn) {
    std::promise<uint64_t> prom;
    std::shared_future<uint64_t> fut;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++hits_;
        metrics::registry().counter("exec.tile_cache.hits").inc();
        fut = it->second;
      } else {
        fut = prom.get_future().share();
        cache_.emplace(key, fut);
        ++misses_;
        metrics::registry().counter("exec.tile_cache.misses").inc();
        owner = true;
      }
    }
    if (owner) {
      try {
        prom.set_value(fn());
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          cache_.erase(key);
        }
        prom.set_exception(std::current_exception());
      }
    }
    return fut.get();
  }

  /// Persist every measured entry to `path` (versioned binary header +
  /// fixed-size key/cycles records, host endianness). In-flight entries
  /// (simulations still running on another thread) are skipped. Returns
  /// the number of entries written; throws on I/O failure.
  size_t save(const std::string& path) const;

  /// Merge the entries of a file written by save() into this cache;
  /// existing keys win (a measured value is never overwritten). Returns
  /// the number of entries inserted; a missing file is not an error
  /// (returns 0), a malformed header or truncated record throws. Loaded
  /// entries count as neither hits nor misses — a later measure() of a
  /// loaded key is a hit with no simulation, which is the point: a warm
  /// file makes plan compiles ISS-free across process restarts.
  size_t load(const std::string& path);

  /// Append every ready entry as a count-prefixed record block to `w`
  /// (the record layout save() uses, without the file header). The plan
  /// artifact embeds the compile-time cache this way, so a registry-
  /// loaded plan can shard (kFcC tile measurement) without an ISS.
  size_t append_records(serde::Writer& w) const;

  /// Merge a count-prefixed record block written by append_records();
  /// existing keys win, exactly like load(). Returns entries inserted.
  size_t merge_records(serde::Reader& r);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  mutable std::mutex mu_;
  std::map<TileKey, std::shared_future<uint64_t>> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace decimate
