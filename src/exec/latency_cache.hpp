#pragma once
// Structured ISS latency cache.
//
// Each unique tile shape is simulated on the ISS exactly once; the result
// is keyed by a typed (domain, kernel kind, M, geometry) tuple instead of
// the stringly key the original schedule executor used. The cache is
// shared: a Compiler threads one instance through every plan it builds
// (CompiledPlan keeps a reference), so compiling N graphs — or executing
// one plan over an arbitrarily large batch — re-simulates each unique
// (kernel, tile geometry) only once.

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <tuple>

#include "compiler/graph.hpp"
#include "kernels/abi.hpp"

namespace decimate {

struct TileKey {
  enum class Domain : uint8_t { kConv, kFc, kVec };

  Domain domain = Domain::kConv;
  KernelKind kind = KernelKind::kConvDense1x2;  // gemm domains only
  int m = 0;                                    // sparsity block (0 = dense)
  OpType vec_op = OpType::kInput;               // vec domain only
  std::array<int, 8> geom{};                    // domain-specific geometry

  friend bool operator<(const TileKey& a, const TileKey& b) {
    return std::tie(a.domain, a.kind, a.m, a.vec_op, a.geom) <
           std::tie(b.domain, b.kind, b.m, b.vec_op, b.geom);
  }
  friend bool operator==(const TileKey& a, const TileKey& b) {
    return std::tie(a.domain, a.kind, a.m, a.vec_op, a.geom) ==
           std::tie(b.domain, b.kind, b.m, b.vec_op, b.geom);
  }
};

inline TileKey conv_tile_key(KernelKind kind, int m, const ConvGeom& g) {
  TileKey k;
  k.domain = TileKey::Domain::kConv;
  k.kind = kind;
  k.m = m;
  k.geom = {g.ix, g.iy, g.c, g.k, g.fx, g.fy, g.stride, g.pad};
  return k;
}

inline TileKey fc_tile_key(KernelKind kind, int m, const FcGeom& g) {
  TileKey k;
  k.domain = TileKey::Domain::kFc;
  k.kind = kind;
  k.m = m;
  k.geom = {g.tokens, g.c, g.k};
  return k;
}

inline TileKey vec_tile_key(OpType op, int rows, int row_bytes, int extra = 0) {
  TileKey k;
  k.domain = TileKey::Domain::kVec;
  k.vec_op = op;
  k.geom = {rows, row_bytes, extra};
  return k;
}

class TileLatencyCache {
 public:
  /// Return the cached cycle count for `key`, running `fn` (an ISS
  /// simulation) only on the first request.
  uint64_t measure(const TileKey& key, const std::function<uint64_t()>& fn) {
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    const uint64_t cycles = fn();
    cache_.emplace(key, cycles);
    return cycles;
  }

  size_t size() const { return cache_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  std::map<TileKey, uint64_t> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace decimate
