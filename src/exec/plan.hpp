#pragma once
// CompiledPlan: the immutable product of lowering a Graph (Sec. 4) —
// per-node kernel choice, tile schedule, packed N:M weights, pre-built
// kernel programs, L1/L2/L3 placement, and the full cycle/memory report.
//
// Compile once, execute many: every cycle number in this simulator is a
// function of (kernel, tile geometry) alone — tiles are measured on the
// ISS with synthetic data and cached — so the whole per-layer report is
// input-independent and computed at compile time. The ExecutionEngine
// only runs the numerics (reference ops, bit-exact mirrors of the
// kernels) and stamps the precomputed reports onto each run.

#include <memory>
#include <string>
#include <vector>

#include "compiler/graph.hpp"
#include "compiler/pattern.hpp"
#include "compiler/tiling.hpp"
#include "exec/latency_cache.hpp"
#include "nn/nm_format.hpp"
#include "sim/memory_map.hpp"

namespace decimate {

struct LayerReport {
  std::string name;
  std::string impl;            // kernel / vector-op implementing the node
  int64_t macs = 0;            // dense-equivalent
  uint64_t compute_cycles = 0; // Σ tile compute
  uint64_t dma_cycles = 0;     // Σ tile DMA (un-overlapped view)
  uint64_t weight_dma_cycles = 0;  // weight-fetch part of dma_cycles
  uint64_t total_cycles = 0;   // pipelined total
  int64_t weight_bytes = 0;    // deployed storage (values+offsets+bias)
  int tiles = 1;  // batch-fused FC steps ("...@bN" impl): whole-batch count
  double bits_per_weight = 0.0;

  double macs_per_cycle() const {
    return total_cycles ? static_cast<double>(macs) /
                              static_cast<double>(total_cycles)
                        : 0.0;
  }
};

struct NetworkRun {
  Tensor8 output;
  uint64_t total_cycles = 0;
  int64_t total_macs = 0;
  int64_t weight_bytes = 0;
  std::vector<LayerReport> layers;

  double macs_per_cycle() const {
    return total_cycles ? static_cast<double>(total_macs) /
                              static_cast<double>(total_cycles)
                        : 0.0;
  }
};

/// Cycle cost of one tile in the double-buffered DMA pipeline.
struct TileCost {
  uint64_t compute = 0;
  uint64_t dma_in = 0;
  uint64_t dma_out = 0;
};

/// One graph node, lowered. Gemm fields are meaningful only for
/// conv/fc/matmul nodes.
struct PlanStep {
  int node_id = 0;
  OpType op = OpType::kInput;

  // gemm lowering
  KernelChoice choice;
  ConvTilePlan conv_tiles;           // kConv2d
  FcTilePlan fc_tiles;               // kFc / kMatmul
  bool has_packed = false;           // sparse node with static weights
  NmPacked packed;                   // pre-packed N:M values + offsets
  const Program* program = nullptr;  // pre-built (kind, M) kernel program
  MemRegion weight_region = MemRegion::kL2;

  // cost model
  std::vector<TileCost> tile_costs;  // per-tile, in schedule order
  bool pipelined = true;    // tiles double-buffer (join the cross-layer
                            // DMA pipeline); false: DMA serializes
  uint64_t serial_cycles = 0;  // non-overlappable extras (marshalling DMA,
                               // matmul transpose) outside tile_costs
  bool batch_fused = false;    // FC tiles cover options.batch images at
                               // once; tile_costs span the whole batch and
                               // the report is per-image amortized
  LayerReport report;                // precomputed, input-independent
};

struct CompiledPlan {
  const Graph* graph = nullptr;  // must outlive the plan
  CompileOptions options;
  MemRegion weight_region = MemRegion::kL2;
  int64_t weight_bytes = 0;   // total deployed (values+offsets+bias)
  int64_t total_macs = 0;     // dense-equivalent
  uint64_t total_cycles = 0;  // Σ per-layer pipelined totals
  std::vector<PlanStep> steps;  // one per node, ids 1..graph->size()-1

  /// The latency cache this plan was costed with; shared with the owning
  /// Compiler so later compiles / engines reuse every ISS measurement.
  std::shared_ptr<TileLatencyCache> latencies;

  double macs_per_cycle() const {
    return total_cycles ? static_cast<double>(total_macs) /
                              static_cast<double>(total_cycles)
                        : 0.0;
  }
};

/// Deployed weight storage of one GEMM node under a kernel choice
/// (NZ values + packed offsets + int32 bias), in bytes.
int64_t deployed_weight_bytes(const Node& node, const KernelChoice& choice);

}  // namespace decimate
