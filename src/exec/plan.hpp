#pragma once
// CompiledPlan: the immutable product of lowering a Graph (Sec. 4) —
// per-node kernel choice, tile schedule, packed N:M weights, pre-built
// kernel programs, L1/L2/L3 placement, and the full cycle/memory report.
//
// Compile once, execute many: every cycle number in this simulator is a
// function of (kernel, tile geometry) alone — tiles are measured on the
// ISS with synthetic data and cached — so the whole per-layer report is
// input-independent and computed at compile time. The ExecutionEngine
// only runs the numerics (reference ops, bit-exact mirrors of the
// kernels) and stamps the precomputed reports onto each run.

#include <memory>
#include <string>
#include <vector>

#include "compiler/graph.hpp"
#include "compiler/pattern.hpp"
#include "compiler/tiling.hpp"
#include "exec/latency_cache.hpp"
#include "nn/host_kernels.hpp"
#include "nn/nm_format.hpp"
#include "sim/memory_map.hpp"

namespace decimate {

struct LayerReport {
  std::string name;
  std::string impl;            // kernel / vector-op implementing the node
  int64_t macs = 0;            // dense-equivalent
  uint64_t compute_cycles = 0; // Σ tile compute
  uint64_t dma_cycles = 0;     // Σ tile DMA (un-overlapped view)
  uint64_t weight_dma_cycles = 0;  // weight-fetch part of dma_cycles
  uint64_t total_cycles = 0;   // pipelined total
  int64_t weight_bytes = 0;    // deployed storage (values+offsets+bias)
  int tiles = 1;  // batch-fused FC steps ("...@bN" impl): whole-batch count
  double bits_per_weight = 0.0;

  double macs_per_cycle() const {
    return total_cycles ? static_cast<double>(macs) /
                              static_cast<double>(total_cycles)
                        : 0.0;
  }
};

struct NetworkRun {
  Tensor8 output;
  uint64_t total_cycles = 0;
  int64_t total_macs = 0;
  int64_t weight_bytes = 0;
  std::vector<LayerReport> layers;

  double macs_per_cycle() const {
    return total_cycles ? static_cast<double>(total_macs) /
                              static_cast<double>(total_cycles)
                        : 0.0;
  }
};

/// Cycle cost of one tile in the double-buffered DMA pipeline.
struct TileCost {
  uint64_t compute = 0;
  uint64_t dma_in = 0;
  uint64_t dma_out = 0;
};

/// How a step's tiles may be partitioned across clusters (see shard/).
enum class ShardAxis : uint8_t {
  kNone = 0,   // serial / marshalling / whole-tensor reduction: one cluster
  kGemmTiles,  // conv oy x k / fc tok x k output tiles: disjoint rectangles
  kRows,       // chunked row-parallel vector op (rows are independent)
  kFcC,        // planner-chosen input-feature split of a single-tile FC:
               // int32 partial sums, reduced in cluster order before requant
};

/// Output footprint of one tile — which slice of the step's output it
/// produces (compiler-recorded, parallel to PlanStep::tile_costs). The
/// shard planner assigns whole tiles to clusters, costs the stitch
/// traffic from out_bytes, and re-bills operand staging from the fetch
/// fields: the compiled stream amortizes input/weight loads across
/// consecutive tiles (loads_* marks the tile that actually pays), but a
/// cluster that receives only non-paying tiles of a pass still has to
/// stage the operand in its own L1.
struct ShardTile {
  int a_s = 0, a_e = 0;     // conv: output rows; fc: tokens; vec: op rows
  int k_s = 0, k_e = 0;     // output channels (gemm); unused for vec rows
  int64_t out_bytes = 0;    // bytes this tile writes
  uint64_t in_fetch_cycles = 0;  // cost to stage this tile's input in L1
  uint64_t w_fetch_cycles = 0;   // cost to stage its weights in L1
  bool loads_input = false;      // the compiled stream bills input here
  bool loads_weights = false;    // ... and weights here
};

/// One graph node, lowered. Gemm fields are meaningful only for
/// conv/fc/matmul nodes.
struct PlanStep {
  int node_id = 0;
  OpType op = OpType::kInput;

  // gemm lowering
  KernelChoice choice;
  ConvTilePlan conv_tiles;           // kConv2d
  FcTilePlan fc_tiles;               // kFc / kMatmul
  bool has_packed = false;           // sparse node with static weights
  NmPacked packed;                   // pre-packed N:M values + offsets
  const Program* program = nullptr;  // pre-built (kind, M) kernel program
  MemRegion weight_region = MemRegion::kL2;
  // host execution: which host kernel family runs this node's numerics
  // (sparse steps carry the decoded N:M gather plan; see nn/host_kernels)
  HostKernelDispatch host;

  // cost model
  std::vector<TileCost> tile_costs;  // per-tile, in schedule order
  bool pipelined = true;    // tiles double-buffer (join the cross-layer
                            // DMA pipeline); false: DMA serializes
  uint64_t serial_cycles = 0;  // non-overlappable extras (marshalling DMA,
                               // matmul transpose) outside tile_costs
  bool batch_fused = false;    // conv/FC tiles cover options.batch images
                               // at once; tile_costs span the whole batch
                               // and the report is per-image amortized
  // shard metadata: which axis partitions this step across clusters, and
  // each tile's output slice (parallel to tile_costs; empty when the step
  // is not tile-shardable). kFcC is never set here — the ShardPlanner
  // switches a single-tile FC to it when the tile grid cannot feed every
  // cluster.
  ShardAxis shard_axis = ShardAxis::kNone;
  std::vector<ShardTile> tiles_meta;
  LayerReport report;                // precomputed, input-independent
};

struct CompiledPlan {
  // Compiler-produced plans borrow the caller's graph (`graph` must
  // outlive the plan; the serving PlanStore guarantees it with its own
  // stable copy). Registry-loaded plans instead OWN their rehydrated
  // graph via `owned_graph` — `graph` then points into it, so a loaded
  // plan is self-contained and cannot dangle whatever happens to the
  // graph it was originally compiled from.
  const Graph* graph = nullptr;
  std::shared_ptr<const Graph> owned_graph;
  CompileOptions options;
  MemRegion weight_region = MemRegion::kL2;
  int64_t weight_bytes = 0;   // total deployed (values+offsets+bias)
  int64_t total_macs = 0;     // dense-equivalent
  uint64_t total_cycles = 0;  // Σ per-layer pipelined totals
  std::vector<PlanStep> steps;  // one per node, ids 1..graph->size()-1

  /// The latency cache this plan was costed with; shared with the owning
  /// Compiler so later compiles / engines reuse every ISS measurement.
  std::shared_ptr<TileLatencyCache> latencies;

  double macs_per_cycle() const {
    return total_cycles ? static_cast<double>(total_macs) /
                              static_cast<double>(total_cycles)
                        : 0.0;
  }
};

/// Deployed weight storage of one GEMM node under a kernel choice
/// (NZ values + packed offsets + int32 bias), in bytes.
int64_t deployed_weight_bytes(const Node& node, const KernelChoice& choice);

}  // namespace decimate
