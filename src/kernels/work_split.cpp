#include "kernels/work_split.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace decimate {

namespace {
/// Balanced chunk [s, e) for worker i of n over total T.
std::pair<int, int> chunk(int i, int n, int total) {
  return {static_cast<int>(static_cast<int64_t>(i) * total / n),
          static_cast<int>(static_cast<int64_t>(i + 1) * total / n)};
}
}  // namespace

std::vector<std::pair<int, int>> balanced_ranges(int total, int parts,
                                                 int grain) {
  DECIMATE_CHECK(total >= 0 && parts >= 1 && grain >= 1,
                 "bad balanced_ranges dims");
  std::vector<std::pair<int, int>> out(static_cast<size_t>(parts));
  const int units = (total + grain - 1) / grain;
  for (int i = 0; i < parts; ++i) {
    const auto [us, ue] = chunk(i, parts, units);
    out[static_cast<size_t>(i)] = {std::min(us * grain, total),
                                   std::min(ue * grain, total)};
  }
  return out;
}

std::vector<ConvWork> split_conv_work(int oy, int ox_pairs, int k,
                                      int ncores) {
  DECIMATE_CHECK(oy >= 1 && ox_pairs >= 1 && k >= 1 && ncores >= 1,
                 "bad conv work dims");
  std::vector<ConvWork> work(static_cast<size_t>(ncores));
  if (oy >= ncores) {
    for (int i = 0; i < ncores; ++i) {
      const auto [s, e] = chunk(i, ncores, oy);
      work[static_cast<size_t>(i)] = {s, e, 0, ox_pairs, 0, k};
    }
    return work;
  }
  // Fewer rows than cores: give each row a group of cores and split the
  // pair range inside the row among the group's cores.
  int core = 0;
  for (int row = 0; row < oy; ++row) {
    const auto [gs, ge] = chunk(row, oy, ncores);
    const int group = ge - gs;
    for (int j = 0; j < group; ++j, ++core) {
      const auto [ps, pe] = chunk(j, group, ox_pairs);
      work[static_cast<size_t>(core)] = {row, row + 1, ps, pe, 0, k};
    }
  }
  return work;
}

std::vector<FcWork> split_fc_work(int tokens, int k, int ncores,
                                  int k_grain) {
  DECIMATE_CHECK(tokens >= 1 && k >= 1 && ncores >= 1 && k_grain >= 1,
                 "bad fc work dims");
  DECIMATE_CHECK(k % k_grain == 0,
                 "K " << k << " not aligned to kernel grain " << k_grain);
  std::vector<FcWork> work(static_cast<size_t>(ncores));
  if (tokens >= ncores) {
    for (int i = 0; i < ncores; ++i) {
      const auto [s, e] = chunk(i, ncores, tokens);
      work[static_cast<size_t>(i)] = {s, e, 0, k};
    }
    return work;
  }
  const int k_units = k / k_grain;
  int core = 0;
  for (int t = 0; t < tokens; ++t) {
    const auto [gs, ge] = chunk(t, tokens, ncores);
    const int group = ge - gs;
    for (int j = 0; j < group; ++j, ++core) {
      const auto [us, ue] = chunk(j, group, k_units);
      work[static_cast<size_t>(core)] = {t, t + 1, us * k_grain,
                                         ue * k_grain};
    }
  }
  return work;
}

}  // namespace decimate
