// Convolution kernel programs (Sec. 4.1 of the paper).
//
// Shared structure (all conv kinds):
//   for oy in [oy_s, oy_e):                (per-core rectangle)
//     for xp in [xp_s, xp_e):              (pairs of output pixels)
//       partial im2col of 2 patches into the per-core buffers
//       for k in [k_s, k_e):               (output channels; 4x2 steps by 4)
//         accumulate over the patch (innermost hardware loop)
//         requantize, store 2 (or 8) outputs
//
// The input tile is stored padding-materialized ({IYP, IXP, C}), so the
// im2col is FY unconditional row copies of FX*C bytes per patch.

#include "common/check.hpp"
#include "isa/builder.hpp"
#include "kernels/kernels.hpp"

namespace decimate {

namespace {

using namespace reg;

// Register roles shared by the 1x2-family conv kernels (dense 1x2 and all
// sparse variants). The 4x2 kernel re-allocates (documented inline).
//   s0 xp_s | s1 oy_e | s2 k_s | s3 k_e | s4 imc1 | s5 imc2
//   s6 oy   | s7 xp   | s8 xp_e| s9 qmult | s10 qshift | s11 scratch/count
//   t0 bias cursor | t1 out p1 | t2 out p2 | t3 acc1 | t4 acc2
//   t5 buf1 cursor | t6 buf2 cursor
//   a1 k | a2 w row | a3 w row bytes | a4 w cursor | a5 off row
//   a6 off row bytes | a7 off cursor | ra/gp/tp body scratch (wv/vB1/vB2)

void emit_work_prologue(KernelBuilder& b) {
  b.hartid(t0);
  b.li(t1, ConvArgs::kWorkWords * 4);
  b.mul(t0, t0, t1);
  b.addi(t1, a0, ConvArgs::kWorkBase * 4);
  b.add(t1, t1, t0);
  b.lw(s6, 0, t1);   // oy_s (becomes the oy counter)
  b.lw(s1, 4, t1);   // oy_e
  b.lw(s0, 8, t1);   // xp_s
  b.lw(s8, 12, t1);  // xp_e
  b.lw(s2, 16, t1);  // k_s
  b.lw(s3, 20, t1);  // k_e
  b.bge(s6, s1, "done");
  b.bge(s0, s8, "done");
  b.bge(s2, s3, "done");
  // per-core im2col buffers
  b.lw(t2, ConvArgs::kImcolPtr * 4, a0);
  b.lw(t3, ConvArgs::kImcolBufBytes * 4, a0);
  b.lw(t5, ConvArgs::kImcolStride * 4, a0);
  b.hartid(t4);
  b.mul(t4, t4, t5);
  b.add(s4, t2, t4);  // imc1
  b.add(s5, s4, t3);  // imc2
  b.mv(s7, s0);       // xp = xp_s
}

/// Partial im2col: copy the two patches at (oy=s6, ox=2*s7, 2*s7+1) into
/// imc1/imc2. Clobbers t0, t6, a1..a6, ra, gp, tp.
void emit_im2col(KernelBuilder& b) {
  b.lw(t0, ConvArgs::kInPtr * 4, a0);
  b.lw(ra, ConvArgs::kStride * 4, a0);
  b.mul(gp, s6, ra);  // oy * stride
  b.lw(tp, ConvArgs::kInRowBytes * 4, a0);
  b.mul(gp, gp, tp);
  b.add(t0, t0, gp);  // input row base
  b.lw(gp, ConvArgs::kSxC * 4, a0);  // stride * C
  b.slli(tp, s7, 1);                 // xp * 2
  b.mul(tp, tp, gp);
  b.add(t0, t0, tp);  // src0
  b.add(t6, t0, gp);  // src1 = src0 + stride*C
  b.mv(a1, s4);       // dst1
  b.mv(a2, s5);       // dst2
  b.lw(a3, ConvArgs::kFy * 4, a0);
  b.lw(a4, ConvArgs::kRowCopyIters * 4, a0);
  const std::string fy_loop = b.fresh_label("fy_loop");
  b.bind(fy_loop);
  b.mv(a5, t0);
  b.hw_loop(0, a4, [&] {
    b.lw_pi(a6, a5, 4);
    b.sw_pi(a6, a1, 4);
  });
  b.mv(a5, t6);
  b.hw_loop(0, a4, [&] {
    b.lw_pi(a6, a5, 4);
    b.sw_pi(a6, a2, 4);
  });
  b.lw(a6, ConvArgs::kInRowBytes * 4, a0);
  b.add(t0, t0, a6);
  b.add(t6, t6, a6);
  b.addi(a3, a3, -1);
  b.bne(a3, zero, fy_loop);
}

/// Compute the output cursor p1 (t1) = out + ((oy*OX)+2*xp)*K + k_s.
/// Clobbers ra, gp, tp.
void emit_out_ptr(KernelBuilder& b) {
  b.lw(t1, ConvArgs::kOutPtr * 4, a0);
  b.lw(ra, ConvArgs::kOx * 4, a0);
  b.mul(gp, s6, ra);
  b.slli(tp, s7, 1);
  b.add(gp, gp, tp);
  b.lw(ra, ConvArgs::kK * 4, a0);
  b.mul(gp, gp, ra);
  b.add(t1, t1, gp);
  b.add(t1, t1, s2);
}

/// Loop-closing control flow after the k loop.
void emit_epilogue_loops(KernelBuilder& b, const std::string& pair_loop,
                         const std::string& oy_loop) {
  b.addi(s7, s7, 1);
  b.blt(s7, s8, pair_loop);
  b.mv(s7, s0);
  b.addi(s6, s6, 1);
  b.blt(s6, s1, oy_loop);
  b.bind("done");
  b.barrier();
  b.halt();
}

// --- inner-loop bodies -----------------------------------------------------

/// Dense 1x2 body: 5 instructions / 8 MACs.
void body_dense_1x2(KernelBuilder& b) {
  b.lw_pi(gp, t5, 4);  // activations word, pixel 0
  b.lw_pi(tp, t6, 4);  // activations word, pixel 1
  b.lw_pi(ra, a4, 4);  // weights word
  b.sdotsp_b(t3, ra, gp);
  b.sdotsp_b(t4, ra, tp);
}

/// Sparse SW body for M=8/16: 22 instructions / 8 MACs.
/// OFFSETS stream: 4-bit fields, one per NZ; lhu grabs 4 per iteration.
void body_sparse_sw_m8_16(KernelBuilder& b, int m) {
  // ra carries the packed offsets during the gather phase and is reused
  // for the weights word afterwards (s0/s8 hold the pair-loop bounds).
  b.lhu_pi(ra, a7, 2);  // 4 packed offsets
  for (int lane = 0; lane < 4; ++lane) {
    b.srli(s11, ra, 4 * lane);
    b.andi(s11, s11, 0xF);
    b.pv_lb_ins(gp, lane, t5, s11, m);  // vB1[lane] <- buf1[lane*M + o]
    b.pv_lb_ins(tp, lane, t6, s11, m);  // vB2[lane]
  }
  b.addi(t5, t5, 4 * m);
  b.addi(t6, t6, 4 * m);
  b.lw_pi(ra, a4, 4);  // 4 NZ weights
  b.sdotsp_b(t3, ra, gp);
  b.sdotsp_b(t4, ra, tp);
}

/// Sparse SW body for M=4: 23 instructions / 8 MACs. 2-bit offsets, 4 per
/// byte; lanes 1..3 fold the block index into the gather index with ori.
/// M=2 shares the 2-bit field width (offsets are just < 2), so the same
/// body serves both — only the lane fold and block stride scale with M.
void body_sparse_sw_m2_4(KernelBuilder& b, int m) {
  b.lbu_pi(ra, a7, 1);  // 4 packed 2-bit offsets
  // lane 0: index = o0
  b.andi(s11, ra, 0x3);
  b.pv_lb_ins(gp, 0, t5, s11, 0);
  b.pv_lb_ins(tp, 0, t6, s11, 0);
  // lanes 1..2: index = o | lane*M
  for (int lane = 1; lane <= 2; ++lane) {
    b.srli(ra, ra, 2);
    b.andi(s11, ra, 0x3);
    b.ori(s11, s11, lane * m);
    b.pv_lb_ins(gp, lane, t5, s11, 0);
    b.pv_lb_ins(tp, lane, t6, s11, 0);
  }
  // lane 3: top 2 bits are already isolated after the shift
  b.srli(ra, ra, 2);
  b.ori(s11, ra, 3 * m);
  b.pv_lb_ins(gp, 3, t5, s11, 0);
  b.pv_lb_ins(tp, 3, t6, s11, 0);
  b.addi(t5, t5, 4 * m);
  b.addi(t6, t6, 4 * m);
  b.lw_pi(ra, a4, 4);
  b.sdotsp_b(t3, ra, gp);
  b.sdotsp_b(t4, ra, tp);
}

/// Sparse ISA body for M=8/16: 12 instructions / 8 MACs. The im2col base
/// registers stay fixed; the xDecimate csr advances the block index.
void body_sparse_isa_m8_16(KernelBuilder& b, int m) {
  b.lw_pi(ra, a7, 4);  // duplicated offsets word (8 fields = 4 blocks)
  for (int j = 0; j < 4; ++j) {
    b.xdec(gp, t5, ra, m);
    b.xdec(tp, t6, ra, m);
  }
  b.lw_pi(ra, a4, 4);
  b.sdotsp_b(t3, ra, gp);
  b.sdotsp_b(t4, ra, tp);
}

/// Sparse ISA body for M=4: one offsets word carries 16 2-bit fields =
/// 8 duplicated blocks = 2 logical iterations; 23 instructions / 16 MACs.
void body_sparse_isa_m4(KernelBuilder& b) {
  // s11 keeps the offsets word alive across both halves (ra is clobbered
  // by the first weights load).
  b.lw_pi(s11, a7, 4);
  for (int half = 0; half < 2; ++half) {
    for (int j = 0; j < 4; ++j) {
      b.xdec(gp, t5, s11, 4);
      b.xdec(tp, t6, s11, 4);
    }
    b.lw_pi(ra, a4, 4);
    b.sdotsp_b(t3, ra, gp);
    b.sdotsp_b(t4, ra, tp);
  }
}

/// The k-loop shared by the 1x2-family kernels.
void emit_k_loop_1x2(KernelBuilder& b, KernelKind kind, int m) {
  b.mv(a1, s2);  // k
  b.lw(a2, ConvArgs::kWPtr * 4, a0);
  b.lw(a3, ConvArgs::kWRowBytes * 4, a0);
  b.mul(ra, s2, a3);
  b.add(a2, a2, ra);
  b.lw(a5, ConvArgs::kOffPtr * 4, a0);
  b.lw(a6, ConvArgs::kOffRowBytes * 4, a0);
  b.mul(ra, s2, a6);
  b.add(a5, a5, ra);
  b.lw(t0, ConvArgs::kBiasPtr * 4, a0);
  b.slli(ra, s2, 2);
  b.add(t0, t0, ra);
  b.lw(ra, ConvArgs::kK * 4, a0);
  b.add(t2, t1, ra);  // p2 = p1 + K
  const std::string k_loop = b.fresh_label("k_loop");
  b.bind(k_loop);
  b.lw_pi(t3, t0, 4);  // acc1 = bias[k]
  b.mv(t4, t3);        // acc2
  b.mv(t5, s4);
  b.mv(t6, s5);
  b.mv(a4, a2);
  b.mv(a7, a5);
  if (kernel_uses_xdec(kind)) b.xdec_clear();
  b.lw(s11, ConvArgs::kInnerIters * 4, a0);
  b.hw_loop(0, s11, [&] {
    b.marker(kInnerBegin);
    switch (kind) {
      case KernelKind::kConvDense1x2: body_dense_1x2(b); break;
      case KernelKind::kConvSparseSw:
        if (m <= 4) {
          body_sparse_sw_m2_4(b, m);
        } else {
          body_sparse_sw_m8_16(b, m);
        }
        break;
      case KernelKind::kConvSparseIsa:
        if (m == 4) {
          body_sparse_isa_m4(b);
        } else {
          body_sparse_isa_m8_16(b, m);
        }
        break;
      default: DECIMATE_FAIL("not a 1x2-family conv kind");
    }
    b.marker(kInnerEnd);
  });
  // requantize and store the two outputs
  b.mul(t3, t3, s9);
  b.mul(t4, t4, s9);
  b.sra(t3, t3, s10);
  b.sra(t4, t4, s10);
  b.pclip(t3, t3, 8);
  b.pclip(t4, t4, 8);
  b.sb_pi(t3, t1, 1);
  b.sb_pi(t4, t2, 1);
  b.add(a2, a2, a3);
  b.add(a5, a5, a6);
  b.addi(a1, a1, 1);
  b.blt(a1, s3, k_loop);
}

/// 4x2 PULP-NN k-loop. Register re-allocation for 8 accumulators:
///   accs pixel0 = {t3, a5, s9, sp}, pixel1 = {t4, a6, s10, t2};
///   weight cursors = {a4, a7, s11, t0}; buf cursors t5/t6; out p1 = t1.
void emit_k_loop_4x2(KernelBuilder& b) {
  b.mv(a1, s2);  // k
  b.lw(a2, ConvArgs::kWPtr * 4, a0);
  b.lw(a3, ConvArgs::kWRowBytes * 4, a0);
  b.mul(ra, s2, a3);
  b.add(a2, a2, ra);
  const std::string k_loop = b.fresh_label("k_loop4");
  b.bind(k_loop);
  // four weight-row cursors
  b.mv(a4, a2);
  b.add(a7, a4, a3);
  b.add(s11, a7, a3);
  b.add(t0, s11, a3);
  // biases for 4 channels -> 8 accumulators
  b.lw(ra, ConvArgs::kBiasPtr * 4, a0);
  b.slli(gp, a1, 2);
  b.add(ra, ra, gp);
  b.lw(t3, 0, ra);
  b.lw(a5, 4, ra);
  b.lw(s9, 8, ra);
  b.lw(sp, 12, ra);
  b.mv(t4, t3);
  b.mv(a6, a5);
  b.mv(s10, s9);
  b.mv(t2, sp);
  b.mv(t5, s4);
  b.mv(t6, s5);
  b.lw(ra, ConvArgs::kInnerIters * 4, a0);
  b.hw_loop(0, ra, [&] {
    b.marker(kInnerBegin);
    b.lw_pi(gp, t5, 4);
    b.lw_pi(tp, t6, 4);
    b.lw_pi(ra, a4, 4);
    b.sdotsp_b(t3, ra, gp);
    b.sdotsp_b(t4, ra, tp);
    b.lw_pi(ra, a7, 4);
    b.sdotsp_b(a5, ra, gp);
    b.sdotsp_b(a6, ra, tp);
    b.lw_pi(ra, s11, 4);
    b.sdotsp_b(s9, ra, gp);
    b.sdotsp_b(s10, ra, tp);
    b.lw_pi(ra, t0, 4);
    b.sdotsp_b(sp, ra, gp);
    b.sdotsp_b(t2, ra, tp);
    b.marker(kInnerEnd);
  });
  // requantize all 8 accumulators
  b.lw(ra, ConvArgs::kQmult * 4, a0);
  for (uint8_t acc : {t3, t4, a5, a6, s9, s10, sp, t2}) b.mul(acc, acc, ra);
  b.lw(ra, ConvArgs::kQshift * 4, a0);
  for (uint8_t acc : {t3, t4, a5, a6, s9, s10, sp, t2}) b.sra(acc, acc, ra);
  for (uint8_t acc : {t3, t4, a5, a6, s9, s10, sp, t2}) b.pclip(acc, acc, 8);
  // stores: pixel0 channels k..k+3 at p1, pixel1 at p1 + K
  b.lw(gp, ConvArgs::kK * 4, a0);
  b.add(gp, t1, gp);
  b.sb_pi(t3, t1, 1);
  b.sb_pi(a5, t1, 1);
  b.sb_pi(s9, t1, 1);
  b.sb_pi(sp, t1, 1);
  b.sb_pi(t4, gp, 1);
  b.sb_pi(a6, gp, 1);
  b.sb_pi(s10, gp, 1);
  b.sb_pi(t2, gp, 1);
  // next group of 4 channels
  b.slli(ra, a3, 2);
  b.add(a2, a2, ra);
  b.addi(a1, a1, 4);
  b.blt(a1, s3, k_loop);
}

/// Ablation (Sec. 4.1.2, strategy 2): per-output-channel sparse gather.
/// For every k, the NZ activations are first gathered into two compact
/// buffers (the per-channel "sparse im2col"), then a dense dot product
/// runs over the compact buffers. The gather repeats for every channel.
void emit_k_loop_sparse_im2col(KernelBuilder& b, int m) {
  b.mv(a1, s2);
  b.lw(a2, ConvArgs::kWPtr * 4, a0);
  b.lw(a3, ConvArgs::kWRowBytes * 4, a0);
  b.mul(ra, s2, a3);
  b.add(a2, a2, ra);
  b.lw(a5, ConvArgs::kOffPtr * 4, a0);
  b.lw(a6, ConvArgs::kOffRowBytes * 4, a0);
  b.mul(ra, s2, a6);
  b.add(a5, a5, ra);
  b.lw(t0, ConvArgs::kBiasPtr * 4, a0);
  b.slli(ra, s2, 2);
  b.add(t0, t0, ra);
  b.lw(ra, ConvArgs::kK * 4, a0);
  b.add(t2, t1, ra);
  const std::string k_loop = b.fresh_label("k_loop_si");
  b.bind(k_loop);
  // --- gather phase: compact buffers live after the two im2col buffers ---
  b.lw(gp, ConvArgs::kImcolBufBytes * 4, a0);
  b.add(t3, s5, gp);  // compact buf 1 = imc2 + buf_bytes
  b.add(t4, t3, gp);  // compact buf 2
  b.mv(t5, s4);
  b.mv(t6, s5);
  b.mv(a7, a5);
  b.mv(a4, t3);  // compact cursor 1
  b.mv(gp, t4);  // compact cursor 2
  b.lw(s11, ConvArgs::kInnerIters * 4, a0);
  b.hw_loop(0, s11, [&] {
    // unpack 4 offsets, copy the 4 selected bytes of each buffer
    // (t3 doubles as offset scratch; the compact-buffer base is
    // recomputed after the gather loop)
    b.lhu_pi(t3, a7, 2);
    for (int lane = 0; lane < 4; ++lane) {
      b.srli(s11, t3, 4 * lane);
      b.andi(s11, s11, 0xF);
      b.pv_lb_ins(tp, lane, t5, s11, m);
      b.pv_lb_ins(ra, lane, t6, s11, m);
    }
    b.addi(t5, t5, 4 * m);
    b.addi(t6, t6, 4 * m);
    b.sw_pi(tp, a4, 4);
    b.sw_pi(ra, gp, 4);
  });
  // --- dense dot product over the compact buffers ---
  b.lw(s11, ConvArgs::kImcolBufBytes * 4, a0);
  b.add(t3, s5, s11);  // recompute compact buf 1 (t3 was gather scratch)
  b.lw_pi(t5, t0, 4);  // acc1 = bias (t5 reused)
  b.mv(t6, t5);
  b.mv(a4, a2);
  b.mv(a7, t3);
  b.mv(gp, t4);
  b.lw(s11, ConvArgs::kInnerIters * 4, a0);
  b.hw_loop(1, s11, [&] {
    b.lw_pi(ra, a4, 4);
    b.lw_pi(t3, a7, 4);
    b.lw_pi(t4, gp, 4);
    b.sdotsp_b(t5, ra, t3);
    b.sdotsp_b(t6, ra, t4);
  });
  b.mul(t5, t5, s9);
  b.mul(t6, t6, s9);
  b.sra(t5, t5, s10);
  b.sra(t6, t6, s10);
  b.pclip(t5, t5, 8);
  b.pclip(t6, t6, 8);
  b.sb_pi(t5, t1, 1);
  b.sb_pi(t6, t2, 1);
  b.add(a2, a2, a3);
  b.add(a5, a5, a6);
  b.addi(a1, a1, 1);
  b.blt(a1, s3, k_loop);
}

}  // namespace

Program build_conv_kernel(KernelKind kind, int m) {
  DECIMATE_CHECK(kernel_is_conv(kind), "not a conv kernel kind");
  if (kernel_is_sparse(kind)) {
    // M=2 is SW-only: the xDecimate csr and the im2col ablation variant
    // implement the 4/8/16 block sizes of Sec. 4.3.
    const bool sw_only = kind == KernelKind::kConvSparseSw;
    DECIMATE_CHECK((sw_only && m == 2) || m == 4 || m == 8 || m == 16,
                   "sparse conv kernel " << kernel_kind_name(kind)
                                         << " does not support M=" << m);
  }
  KernelBuilder b;
  emit_work_prologue(b);
  if (kind != KernelKind::kConvDense4x2) {
    b.lw(s9, ConvArgs::kQmult * 4, a0);
    b.lw(s10, ConvArgs::kQshift * 4, a0);
  }
  const std::string oy_loop = b.fresh_label("oy_loop");
  const std::string pair_loop = b.fresh_label("pair_loop");
  b.bind(oy_loop);
  b.bind(pair_loop);
  emit_im2col(b);
  emit_out_ptr(b);
  switch (kind) {
    case KernelKind::kConvDense4x2: emit_k_loop_4x2(b); break;
    case KernelKind::kConvSparseIm2col: emit_k_loop_sparse_im2col(b, m); break;
    default: emit_k_loop_1x2(b, kind, m); break;
  }
  emit_epilogue_loops(b, pair_loop, oy_loop);
  return b.build();
}

int expected_inner_loop_length(KernelKind kind, int m) {
  switch (kind) {
    case KernelKind::kConvDense4x2: return 14;
    case KernelKind::kConvDense1x2: return 5;
    case KernelKind::kConvSparseSw: return m <= 4 ? 23 : 22;
    case KernelKind::kConvSparseIsa: return m == 4 ? 23 : 12;
    case KernelKind::kFcDense: return 5;
    case KernelKind::kFcSparseSw: return m <= 4 ? 17 : 16;
    case KernelKind::kFcSparseIsa: return m == 4 ? 25 : 13;
    case KernelKind::kConvSparseIm2col: return -1;  // two loops; not a peak
  }
  DECIMATE_FAIL("bad kind");
}

int macs_per_inner_iter(KernelKind kind, int m) {
  switch (kind) {
    case KernelKind::kConvDense4x2: return 32;
    case KernelKind::kConvDense1x2: return 8;
    case KernelKind::kConvSparseSw: return 8;
    case KernelKind::kConvSparseIsa: return m == 4 ? 16 : 8;
    case KernelKind::kFcDense: return 8;
    case KernelKind::kFcSparseSw: return 4;
    case KernelKind::kFcSparseIsa: return m == 4 ? 16 : 8;
    case KernelKind::kConvSparseIm2col: return 8;
  }
  DECIMATE_FAIL("bad kind");
}

}  // namespace decimate
