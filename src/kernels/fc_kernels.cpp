// Fully-connected kernel programs (Sec. 4.2 of the paper).
//
// Structure (all kinds):
//   for tok in [tok_s, tok_e):     (per-core rectangle; tokens = batch rows)
//     for k in [k_s, k_e):         (output channels; dense/ISA step by 2)
//       accumulate over C (innermost hardware loop)
//       requantize, store 1 or 2 outputs
//
// The dense kernel unrolls by 2 over K (weight reuse of the activation
// word); the SW sparse kernel processes one channel at a time (different
// channels gather different activations); the ISA kernel recovers the K=2
// unrolling through the offline interleaving of NZ offsets (Fig. 6).

#include "common/check.hpp"
#include "isa/builder.hpp"
#include "kernels/kernels.hpp"

namespace decimate {

namespace {

using namespace reg;

// Register roles:
//   t0 tok | s1 tok_e | s2 k_s | s3 k_e
//   s4 in_ptr | s6 w_row_bytes | s7 off_row_bytes | s8 inner_iters
//   s9 qmult | s10 qshift
//   a1 act base | a2 out cursor | a3 k | a4 w cursor ch k | a5 w cursor ch k+1
//   a6 off cursor | t1..t4 scratch/accs | t5 act cursor
//   gp/tp vB1/vB2 | ra/s11 weight words | s0 packed offsets

void body_fc_dense(KernelBuilder& b) {
  b.lw_pi(gp, t5, 4);   // activation word
  b.lw_pi(ra, a4, 4);   // weights ch k
  b.lw_pi(s11, a5, 4);  // weights ch k+1
  b.sdotsp_b(t3, ra, gp);
  b.sdotsp_b(t4, s11, gp);
}

void body_fc_sparse_sw_m8_16(KernelBuilder& b, int m) {
  b.lhu_pi(s0, a6, 2);
  for (int lane = 0; lane < 4; ++lane) {
    b.srli(s11, s0, 4 * lane);
    b.andi(s11, s11, 0xF);
    b.pv_lb_ins(gp, lane, t5, s11, m);
  }
  b.addi(t5, t5, 4 * m);
  b.lw_pi(ra, a4, 4);
  b.sdotsp_b(t3, ra, gp);
}

// M=2 shares the 2-bit field width (offsets are just < 2), so one body
// serves M=2 and M=4 — only the lane fold and block stride scale with M.
void body_fc_sparse_sw_m2_4(KernelBuilder& b, int m) {
  b.lbu_pi(s0, a6, 1);
  b.andi(s11, s0, 0x3);
  b.pv_lb_ins(gp, 0, t5, s11, 0);
  for (int lane = 1; lane <= 2; ++lane) {
    b.srli(s0, s0, 2);
    b.andi(s11, s0, 0x3);
    b.ori(s11, s11, lane * m);
    b.pv_lb_ins(gp, lane, t5, s11, 0);
  }
  b.srli(s0, s0, 2);
  b.ori(s11, s0, 3 * m);
  b.pv_lb_ins(gp, 3, t5, s11, 0);
  b.addi(t5, t5, 4 * m);
  b.lw_pi(ra, a4, 4);
  b.sdotsp_b(t3, ra, gp);
}

void body_fc_sparse_isa_m8_16(KernelBuilder& b, int m) {
  b.lw_pi(s0, a6, 4);  // interleaved offsets (4 blocks x 2 channels)
  for (int j = 0; j < 4; ++j) {
    b.xdec(gp, a1, s0, m);  // channel k   -> vB1
    b.xdec(tp, a1, s0, m);  // channel k+1 -> vB2
  }
  b.lw_pi(ra, a4, 4);
  b.lw_pi(s11, a5, 4);
  b.sdotsp_b(t3, ra, gp);
  b.sdotsp_b(t4, s11, tp);
}

void body_fc_sparse_isa_m4(KernelBuilder& b) {
  b.lw_pi(s0, a6, 4);  // 16 2-bit fields = 8 blocks x 2 channels = 2 iters
  for (int half = 0; half < 2; ++half) {
    for (int j = 0; j < 4; ++j) {
      b.xdec(gp, a1, s0, 4);
      b.xdec(tp, a1, s0, 4);
    }
    b.lw_pi(ra, a4, 4);
    b.lw_pi(s11, a5, 4);
    b.sdotsp_b(t3, ra, gp);
    b.sdotsp_b(t4, s11, tp);
  }
}

}  // namespace

Program build_fc_kernel(KernelKind kind, int m) {
  DECIMATE_CHECK(!kernel_is_conv(kind), "not an fc kernel kind");
  if (kernel_is_sparse(kind)) {
    // M=2 is SW-only: the xDecimate csr implements 4/8/16 (Sec. 4.3).
    const bool sw_only = kind == KernelKind::kFcSparseSw;
    DECIMATE_CHECK((sw_only && m == 2) || m == 4 || m == 8 || m == 16,
                   "sparse fc kernel " << kernel_kind_name(kind)
                                       << " does not support M=" << m);
  }
  const bool pair = (kind != KernelKind::kFcSparseSw);  // 2 channels / iter

  KernelBuilder b;
  // --- prologue: work rectangle and cached parameters ---
  b.hartid(t0);
  b.li(t1, FcArgs::kWorkWords * 4);
  b.mul(t0, t0, t1);
  b.addi(t1, a0, FcArgs::kWorkBase * 4);
  b.add(t1, t1, t0);
  b.lw(t0, 0, t1);   // tok_s (becomes counter)
  b.lw(s1, 4, t1);   // tok_e
  b.lw(s2, 8, t1);   // k_s
  b.lw(s3, 12, t1);  // k_e
  b.bge(t0, s1, "done");
  b.bge(s2, s3, "done");
  b.lw(s4, FcArgs::kInPtr * 4, a0);
  b.lw(s6, FcArgs::kWRowBytes * 4, a0);
  b.lw(s7, FcArgs::kOffRowBytes * 4, a0);
  b.lw(s8, FcArgs::kInnerIters * 4, a0);
  b.lw(s9, FcArgs::kQmult * 4, a0);
  b.lw(s10, FcArgs::kQshift * 4, a0);
  // act base for tok_s
  b.lw(t2, FcArgs::kInRowBytes * 4, a0);
  b.mul(a1, t0, t2);
  b.add(a1, a1, s4);
  // out cursor for (tok_s, k_s)
  b.lw(t3, FcArgs::kOutPtr * 4, a0);
  b.lw(t4, FcArgs::kOutRowBytes * 4, a0);
  b.mul(a2, t0, t4);
  b.add(a2, a2, t3);
  b.add(a2, a2, s2);

  const std::string tok_loop = b.fresh_label("tok_loop");
  const std::string k_loop = b.fresh_label("k_loop");
  b.bind(tok_loop);
  b.mv(a3, s2);  // k
  b.bind(k_loop);
  // weight cursor(s)
  b.lw(t2, FcArgs::kWPtr * 4, a0);
  b.mul(t3, a3, s6);
  b.add(a4, t2, t3);
  if (pair) b.add(a5, a4, s6);
  // offsets cursor (sparse)
  if (kernel_is_sparse(kind)) {
    b.lw(t2, FcArgs::kOffPtr * 4, a0);
    if (kind == KernelKind::kFcSparseIsa) {
      b.srli(t3, a3, 1);  // pair-row index
      b.mul(t3, t3, s7);
    } else {
      b.mul(t3, a3, s7);
    }
    b.add(a6, t2, t3);
  }
  // bias -> accumulators
  b.lw(t2, FcArgs::kBiasPtr * 4, a0);
  b.slli(t3, a3, 2);
  b.add(t2, t2, t3);
  b.lw(t3, 0, t2);            // acc1
  if (pair) b.lw(t4, 4, t2);  // acc2
  b.mv(t5, a1);               // act cursor
  if (kernel_uses_xdec(kind)) b.xdec_clear();
  b.hw_loop(0, s8, [&] {
    b.marker(kInnerBegin);
    switch (kind) {
      case KernelKind::kFcDense: body_fc_dense(b); break;
      case KernelKind::kFcSparseSw:
        if (m <= 4) {
          body_fc_sparse_sw_m2_4(b, m);
        } else {
          body_fc_sparse_sw_m8_16(b, m);
        }
        break;
      case KernelKind::kFcSparseIsa:
        if (m == 4) {
          body_fc_sparse_isa_m4(b);
        } else {
          body_fc_sparse_isa_m8_16(b, m);
        }
        break;
      default: DECIMATE_FAIL("bad fc kind");
    }
    b.marker(kInnerEnd);
  });
  // requantize and store
  b.mul(t3, t3, s9);
  b.sra(t3, t3, s10);
  b.pclip(t3, t3, 8);
  b.sb_pi(t3, a2, 1);
  if (pair) {
    b.mul(t4, t4, s9);
    b.sra(t4, t4, s10);
    b.pclip(t4, t4, 8);
    b.sb_pi(t4, a2, 1);
  }
  b.addi(a3, a3, pair ? 2 : 1);
  b.blt(a3, s3, k_loop);
  // token epilogue: advance act base and realign the out cursor
  b.lw(t2, FcArgs::kInRowBytes * 4, a0);
  b.add(a1, a1, t2);
  b.lw(t2, FcArgs::kOutRowBytes * 4, a0);
  b.sub(t3, s3, s2);  // channels written this token
  b.sub(t2, t2, t3);
  b.add(a2, a2, t2);
  b.addi(t0, t0, 1);
  b.blt(t0, s1, tok_loop);
  b.bind("done");
  b.barrier();
  b.halt();
  return b.build();
}

const char* kernel_kind_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::kConvDense4x2: return "conv-dense-4x2(pulp-nn)";
    case KernelKind::kConvDense1x2: return "conv-dense-1x2";
    case KernelKind::kConvSparseSw: return "conv-sparse-sw";
    case KernelKind::kConvSparseIsa: return "conv-sparse-isa";
    case KernelKind::kConvSparseIm2col: return "conv-sparse-im2col(ablation)";
    case KernelKind::kFcDense: return "fc-dense-1x2";
    case KernelKind::kFcSparseSw: return "fc-sparse-sw";
    case KernelKind::kFcSparseIsa: return "fc-sparse-isa";
  }
  return "?";
}

bool kernel_is_sparse(KernelKind kind) {
  switch (kind) {
    case KernelKind::kConvSparseSw:
    case KernelKind::kConvSparseIsa:
    case KernelKind::kConvSparseIm2col:
    case KernelKind::kFcSparseSw:
    case KernelKind::kFcSparseIsa:
      return true;
    default:
      return false;
  }
}

bool kernel_is_conv(KernelKind kind) {
  switch (kind) {
    case KernelKind::kConvDense4x2:
    case KernelKind::kConvDense1x2:
    case KernelKind::kConvSparseSw:
    case KernelKind::kConvSparseIsa:
    case KernelKind::kConvSparseIm2col:
      return true;
    default:
      return false;
  }
}

bool kernel_uses_xdec(KernelKind kind) {
  return kind == KernelKind::kConvSparseIsa ||
         kind == KernelKind::kFcSparseIsa;
}

}  // namespace decimate
