#pragma once
// Host-side work partitioning across compute units. The paper
// parallelizes the outermost OX/OY loops (conv) and the K dimension (FC)
// across the cluster's cores; we generalize slightly to rectangles so that
// deep layers with few output rows still occupy all 8 cores, and so the
// kernels need no division. The same balanced-range splitter also carves
// work across *clusters* (shard/): shards split tiles or feature ranges
// between clusters, then each cluster splits its tile across cores here.

#include <utility>
#include <vector>

namespace decimate {

/// Balanced partition of [0, total) into `parts` contiguous ranges, each
/// aligned to `grain` (except possibly the last). Trailing ranges may be
/// empty when total/grain < parts. The concatenation of the ranges always
/// covers [0, total) exactly, in order.
std::vector<std::pair<int, int>> balanced_ranges(int total, int parts,
                                                 int grain = 1);

struct ConvWork {
  int oy_s = 0, oy_e = 0;  // output row range
  int xp_s = 0, xp_e = 0;  // output pixel-pair range within each row
  int k_s = 0, k_e = 0;    // output channel range
  bool empty() const { return oy_s >= oy_e || xp_s >= xp_e || k_s >= k_e; }
};

struct FcWork {
  int tok_s = 0, tok_e = 0;  // token (batch row) range
  int k_s = 0, k_e = 0;      // output channel range
  bool empty() const { return tok_s >= tok_e || k_s >= k_e; }
};

/// Partition a conv output of `oy` rows x `ox_pairs` pixel pairs x `k`
/// channels over `ncores` cores. All rects carry the full K range; the
/// spatial plane is split into row chunks (oy >= ncores) or row-strips
/// (oy < ncores). Rects cover the space disjointly.
std::vector<ConvWork> split_conv_work(int oy, int ox_pairs, int k,
                                      int ncores);

/// Partition an FC output of `tokens` x `k` channels. K ranges are aligned
/// to `k_grain` (2 for the channel-pair kernels, 1 otherwise).
std::vector<FcWork> split_fc_work(int tokens, int k, int ncores, int k_grain);

}  // namespace decimate
