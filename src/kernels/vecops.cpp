#include "kernels/vecops.hpp"

#include <functional>
#include <map>

#include "common/bitutil.hpp"
#include "common/check.hpp"
#include "isa/builder.hpp"
#include "sim/memory_map.hpp"

namespace decimate {

namespace {

using namespace reg;

/// Shared prologue: s0 = range start, s1 = range end for this core.
void emit_vec_prologue(KernelBuilder& b) {
  b.hartid(t0);
  b.slli(t0, t0, 3);  // kWorkWords * 4 bytes
  b.addi(t1, a0, VecArgs::kWorkBase * 4);
  b.add(t1, t1, t0);
  b.lw(s0, 0, t1);
  b.lw(s1, 4, t1);
  b.bge(s0, s1, "done");
}

void emit_done(KernelBuilder& b) {
  b.bind("done");
  b.barrier();
  b.halt();
}

void emit_relu(KernelBuilder& b) {
  // range is in words; out[i] = max(a[i], 0) on 4 int8 lanes
  emit_vec_prologue(b);
  b.lw(a1, VecArgs::kAPtr * 4, a0);
  b.lw(a2, VecArgs::kOutPtr * 4, a0);
  b.slli(t0, s0, 2);
  b.add(a1, a1, t0);
  b.add(a2, a2, t0);
  b.sub(t1, s1, s0);  // word count
  b.hw_loop(0, t1, [&] {
    b.lw_pi(t2, a1, 4);
    b.pv_max_b(t2, t2, zero);
    b.sw_pi(t2, a2, 4);
  });
  emit_done(b);
}

void emit_add(KernelBuilder& b) {
  // range in elements; out = clip8((a*m1 >> s1) + (b*m2 >> s2))
  emit_vec_prologue(b);
  b.lw(a1, VecArgs::kAPtr * 4, a0);
  b.lw(a2, VecArgs::kBPtr * 4, a0);
  b.lw(a3, VecArgs::kOutPtr * 4, a0);
  b.add(a1, a1, s0);
  b.add(a2, a2, s0);
  b.add(a3, a3, s0);
  b.lw(s2, VecArgs::kM1 * 4, a0);
  b.lw(s3, VecArgs::kS1 * 4, a0);
  b.lw(s4, VecArgs::kM2 * 4, a0);
  b.lw(s5, VecArgs::kS2 * 4, a0);
  b.sub(t1, s1, s0);
  b.hw_loop(0, t1, [&] {
    b.lb_pi(t2, a1, 1);
    b.mul(t2, t2, s2);
    b.sra(t2, t2, s3);
    b.lb_pi(t3, a2, 1);
    b.mul(t3, t3, s4);
    b.sra(t3, t3, s5);
    b.add(t2, t2, t3);
    b.pclip(t2, t2, 8);
    b.sb_pi(t2, a3, 1);
  });
  emit_done(b);
}

void emit_lut(KernelBuilder& b) {
  // range in elements; out[i] = lut[(uint8)a[i]]
  emit_vec_prologue(b);
  b.lw(a1, VecArgs::kAPtr * 4, a0);
  b.lw(a3, VecArgs::kOutPtr * 4, a0);
  b.lw(a4, VecArgs::kLutPtr * 4, a0);
  b.add(a1, a1, s0);
  b.add(a3, a3, s0);
  b.sub(t1, s1, s0);
  b.hw_loop(0, t1, [&] {
    b.lbu_pi(t2, a1, 1);
    b.add(t2, a4, t2);
    b.lbu(t2, 0, t2);
    b.sb_pi(t2, a3, 1);
  });
  emit_done(b);
}

void emit_avgpool(KernelBuilder& b) {
  // range over channels; kLen = H*W, kStride = C; out[k] = rq(sum_k)
  emit_vec_prologue(b);
  b.lw(a1, VecArgs::kAPtr * 4, a0);
  b.lw(a3, VecArgs::kOutPtr * 4, a0);
  b.add(a3, a3, s0);  // out cursor at first owned channel
  b.lw(s2, VecArgs::kLen * 4, a0);
  b.lw(s3, VecArgs::kStride * 4, a0);
  b.lw(s4, VecArgs::kM1 * 4, a0);
  b.lw(s5, VecArgs::kS1 * 4, a0);
  b.mv(t0, s0);  // k
  const std::string k_loop = b.fresh_label("avg_k");
  b.bind(k_loop);
  b.add(t1, a1, t0);  // strided cursor
  b.li(t2, 0);        // acc
  b.hw_loop(0, s2, [&] {
    b.lb(t3, 0, t1);
    b.add(t2, t2, t3);
    b.add(t1, t1, s3);
  });
  b.mul(t2, t2, s4);
  b.sra(t2, t2, s5);
  b.pclip(t2, t2, 8);
  b.sb_pi(t2, a3, 1);
  b.addi(t0, t0, 1);
  b.blt(t0, s1, k_loop);
  emit_done(b);
}

void emit_maxpool2(KernelBuilder& b) {
  // range over output rows; kLen = C, kStride = W*C, kAux = W/2
  emit_vec_prologue(b);
  b.lw(s2, VecArgs::kLen * 4, a0);     // C
  b.lw(s3, VecArgs::kStride * 4, a0);  // W*C
  b.lw(s4, VecArgs::kAux * 4, a0);     // W/2
  b.mv(s5, s0);                        // y
  const std::string y_loop = b.fresh_label("mp_y");
  b.bind(y_loop);
  // source cursors for row pair 2y
  b.lw(a1, VecArgs::kAPtr * 4, a0);
  b.slli(t0, s5, 1);
  b.mul(t0, t0, s3);
  b.add(a1, a1, t0);       // p00
  b.add(a2, a1, s2);       // p01
  b.add(a4, a1, s3);       // p10
  b.add(a5, a4, s2);       // p11
  // output cursor
  b.lw(a6, VecArgs::kOutPtr * 4, a0);
  b.mul(t0, s4, s2);       // (W/2)*C
  b.mul(t0, t0, s5);
  b.add(a6, a6, t0);
  b.li(s6, 0);             // x
  const std::string x_loop = b.fresh_label("mp_x");
  b.bind(x_loop);
  b.hw_loop(0, s2, [&] {
    b.lb_pi(t1, a1, 1);
    b.lb_pi(t2, a2, 1);
    b.lb_pi(t3, a4, 1);
    b.lb_pi(t4, a5, 1);
    b.pmax(t1, t1, t2);
    b.pmax(t3, t3, t4);
    b.pmax(t1, t1, t3);
    b.sb_pi(t1, a6, 1);
  });
  // skip the already-consumed odd column
  b.add(a1, a1, s2);
  b.add(a2, a2, s2);
  b.add(a4, a4, s2);
  b.add(a5, a5, s2);
  b.addi(s6, s6, 1);
  b.blt(s6, s4, x_loop);
  b.addi(s5, s5, 1);
  b.blt(s5, s1, y_loop);
  emit_done(b);
}

void emit_softmax(KernelBuilder& b) {
  // range over rows; kLen = L (= row stride), per-core scratch at
  // kTmpPtr + hart*L. Mirrors softmax_s8_row() exactly.
  emit_vec_prologue(b);
  b.lw(s2, VecArgs::kLen * 4, a0);   // L
  b.lw(s3, VecArgs::kLutPtr * 4, a0);
  b.lw(s4, VecArgs::kTmpPtr * 4, a0);
  b.hartid(t0);
  b.mul(t0, t0, s2);
  b.add(s4, s4, t0);  // per-core exp scratch
  b.mv(s5, s0);       // row t
  const std::string row_loop = b.fresh_label("sm_row");
  b.bind(row_loop);
  b.lw(a1, VecArgs::kAPtr * 4, a0);
  b.mul(t0, s5, s2);
  b.add(a1, a1, t0);  // row base
  b.lw(a2, VecArgs::kOutPtr * 4, a0);
  b.add(a2, a2, t0);  // out row
  // pass 1: max
  b.mv(t1, a1);
  b.li(s6, -128);
  b.hw_loop(0, s2, [&] {
    b.lb_pi(t2, t1, 1);
    b.pmax(s6, s6, t2);
  });
  // pass 2: exp LUT + sum
  b.mv(t1, a1);
  b.mv(t3, s4);
  b.li(s7, 0);  // sum
  b.hw_loop(0, s2, [&] {
    b.lb_pi(t2, t1, 1);
    b.sub(t2, t2, s6);
    b.andi(t2, t2, 0xFF);
    b.add(t2, s3, t2);
    b.lbu(t2, 0, t2);
    b.sb_pi(t2, t3, 1);
    b.add(s7, s7, t2);
  });
  // r = (127 << 16) / max(sum, 1)
  b.li(t4, 1);
  b.pmax(s7, s7, t4);
  b.li(t4, 127 << 16);
  b.divu(s8, t4, s7);
  // pass 3: out = (e * r) >> 16
  b.mv(t3, s4);
  b.hw_loop(0, s2, [&] {
    b.lbu_pi(t2, t3, 1);
    b.mul(t2, t2, s8);
    b.srli(t2, t2, 16);
    b.sb_pi(t2, a2, 1);
  });
  b.addi(s5, s5, 1);
  b.blt(s5, s1, row_loop);
  emit_done(b);
}

void emit_layernorm(KernelBuilder& b) {
  // range over rows; kLen = L; gamma at kBPtr, beta at kLutPtr.
  // Mirrors layernorm_s8_row() exactly, including the bit-serial isqrt.
  emit_vec_prologue(b);
  b.lw(s2, VecArgs::kLen * 4, a0);  // L
  b.mv(s5, s0);                     // row t
  const std::string row_loop = b.fresh_label("ln_row");
  b.bind(row_loop);
  b.lw(a1, VecArgs::kAPtr * 4, a0);
  b.mul(t0, s5, s2);
  b.add(a1, a1, t0);
  b.lw(a2, VecArgs::kOutPtr * 4, a0);
  b.add(a2, a2, t0);
  // pass 1: sum -> mean
  b.mv(t1, a1);
  b.li(s6, 0);
  b.hw_loop(0, s2, [&] {
    b.lb_pi(t2, t1, 1);
    b.add(s6, s6, t2);
  });
  b.div(s6, s6, s2);  // mean
  // pass 2: sum of squared deviations -> var
  b.mv(t1, a1);
  b.li(s7, 0);
  b.hw_loop(0, s2, [&] {
    b.lb_pi(t2, t1, 1);
    b.sub(t2, t2, s6);
    b.mul(t2, t2, t2);
    b.add(s7, s7, t2);
  });
  b.div(s7, s7, s2);   // var
  b.slli(a4, s7, 8);   // v = var << 8 (isqrt input)
  // --- inline bit-serial isqrt: a5 = floor(sqrt(a4)), clobbers a6/a7 ---
  {
    const std::string shrink = b.fresh_label("isq_shrink");
    const std::string loop = b.fresh_label("isq_loop");
    const std::string els = b.fresh_label("isq_else");
    const std::string next = b.fresh_label("isq_next");
    const std::string done_ = b.fresh_label("isq_done");
    b.li(a5, 0);
    b.li(a6, 1 << 30);
    b.bind(shrink);
    b.bgeu(a4, a6, loop);  // bit <= v -> start
    b.srli(a6, a6, 2);
    b.bne(a6, zero, shrink);
    b.j(done_);            // v == 0
    b.bind(loop);
    b.beq(a6, zero, done_);
    b.add(a7, a5, a6);
    b.bltu(a4, a7, els);
    b.sub(a4, a4, a7);
    b.srli(a5, a5, 1);
    b.add(a5, a5, a6);
    b.j(next);
    b.bind(els);
    b.srli(a5, a5, 1);
    b.bind(next);
    b.srli(a6, a6, 2);
    b.j(loop);
    b.bind(done_);
  }
  // r = 65536 / max(stdq, 1)
  b.li(t4, 1);
  b.pmax(a5, a5, t4);
  b.li(t4, 1 << 16);
  b.divu(s8, t4, a5);
  // pass 3
  b.mv(t1, a1);
  b.lw(a6, VecArgs::kBPtr * 4, a0);   // gamma
  b.lw(a7, VecArgs::kLutPtr * 4, a0); // beta
  b.hw_loop(0, s2, [&] {
    b.lb_pi(t2, t1, 1);
    b.sub(t2, t2, s6);
    b.mul(t2, t2, s8);
    b.srai(t2, t2, 8);
    b.lb_pi(t3, a6, 1);
    b.mul(t2, t2, t3);
    b.srai(t2, t2, 6);
    b.lb_pi(t3, a7, 1);
    b.add(t2, t2, t3);
    b.pclip(t2, t2, 8);
    b.sb_pi(t2, a2, 1);
  });
  b.addi(s5, s5, 1);
  b.blt(s5, s1, row_loop);
  emit_done(b);
}

/// Balanced 1-D range split.
std::vector<std::pair<int, int>> split_range(int total, int n) {
  std::vector<std::pair<int, int>> out(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out[static_cast<size_t>(i)] = {
        static_cast<int>(static_cast<int64_t>(i) * total / n),
        static_cast<int>(static_cast<int64_t>(i + 1) * total / n)};
  }
  return out;
}

struct VecLayout {
  uint32_t a = 0, b_ = 0, out = 0, lut = 0, tmp = 0, args = 0;
};

/// Common launch path: lay out operands, fill args, run, read back.
VecRun launch(Cluster& cluster, VecKind kind,
              std::span<const uint8_t> a_bytes,
              std::span<const uint8_t> b_bytes,
              std::span<const uint8_t> lut_bytes, int64_t out_bytes,
              int64_t tmp_bytes, int total_range,
              const std::function<void(std::vector<int32_t>&, const VecLayout&)>&
                  fill_args,
              std::vector<int> out_shape) {
  const int ncores = cluster.num_cores();
  uint32_t cur = MemoryMap::kL1Base;
  auto take = [&](int64_t bytes) {
    const uint32_t addr = cur;
    cur += static_cast<uint32_t>(round_up(bytes, 4));
    DECIMATE_CHECK(cur <= cluster.l1_data_limit(), "vec kernel L1 overflow");
    return addr;
  };
  VecLayout lay;
  lay.args = take(VecArgs::size_words(ncores) * 4);
  lay.a = take(static_cast<int64_t>(a_bytes.size()));
  lay.b_ = b_bytes.empty() ? 0 : take(static_cast<int64_t>(b_bytes.size()));
  lay.lut = lut_bytes.empty() ? 0 : take(static_cast<int64_t>(lut_bytes.size()));
  lay.out = take(out_bytes);
  lay.tmp = tmp_bytes ? take(tmp_bytes) : 0;

  auto& mem = cluster.mem();
  mem.write_block(lay.a, a_bytes);
  if (!b_bytes.empty()) mem.write_block(lay.b_, b_bytes);
  if (!lut_bytes.empty()) mem.write_block(lay.lut, lut_bytes);
  mem.fill(lay.out, static_cast<uint32_t>(out_bytes), 0);

  std::vector<int32_t> args(static_cast<size_t>(VecArgs::size_words(ncores)), 0);
  args[VecArgs::kAPtr] = static_cast<int32_t>(lay.a);
  args[VecArgs::kBPtr] = static_cast<int32_t>(lay.b_);
  args[VecArgs::kOutPtr] = static_cast<int32_t>(lay.out);
  args[VecArgs::kLutPtr] = static_cast<int32_t>(lay.lut);
  args[VecArgs::kTmpPtr] = static_cast<int32_t>(lay.tmp);
  fill_args(args, lay);
  const auto ranges = split_range(total_range, ncores);
  for (int i = 0; i < ncores; ++i) {
    args[static_cast<size_t>(VecArgs::kWorkBase + 2 * i)] = ranges[static_cast<size_t>(i)].first;
    args[static_cast<size_t>(VecArgs::kWorkBase + 2 * i + 1)] =
        ranges[static_cast<size_t>(i)].second;
  }
  mem.write_block(lay.args, {reinterpret_cast<const uint8_t*>(args.data()),
                             args.size() * 4});

  VecRun run;
  run.result = cluster.run(vec_program_for(kind), lay.args);
  run.output = Tensor8(std::move(out_shape));
  mem.read_block(lay.out, {reinterpret_cast<uint8_t*>(run.output.data()),
                           static_cast<size_t>(run.output.numel())});
  return run;
}

std::span<const uint8_t> as_bytes(const Tensor8& t) { return t.bytes(); }

}  // namespace

const char* vec_kind_name(VecKind kind) {
  switch (kind) {
    case VecKind::kRelu: return "relu";
    case VecKind::kAdd: return "add";
    case VecKind::kLut: return "lut";
    case VecKind::kAvgPool: return "avgpool";
    case VecKind::kMaxPool2: return "maxpool2x2";
    case VecKind::kSoftmax: return "softmax";
    case VecKind::kLayerNorm: return "layernorm";
  }
  return "?";
}

Program build_vec_kernel(VecKind kind) {
  KernelBuilder b;
  switch (kind) {
    case VecKind::kRelu: emit_relu(b); break;
    case VecKind::kAdd: emit_add(b); break;
    case VecKind::kLut: emit_lut(b); break;
    case VecKind::kAvgPool: emit_avgpool(b); break;
    case VecKind::kMaxPool2: emit_maxpool2(b); break;
    case VecKind::kSoftmax: emit_softmax(b); break;
    case VecKind::kLayerNorm: emit_layernorm(b); break;
  }
  return b.build();
}

const Program& vec_program_for(VecKind kind) {
  static std::map<VecKind, Program> cache;
  auto it = cache.find(kind);
  if (it == cache.end()) {
    it = cache.emplace(kind, build_vec_kernel(kind)).first;
  }
  return it->second;
}

VecRun run_relu(Cluster& cluster, const Tensor8& x) {
  DECIMATE_CHECK(x.numel() % 4 == 0, "relu kernel needs a 4-aligned size");
  const int words = static_cast<int>(x.numel() / 4);
  return launch(cluster, VecKind::kRelu, as_bytes(x), {}, {}, x.numel(), 0,
                words, [](auto&, const auto&) {}, x.shape());
}

VecRun run_add(Cluster& cluster, const Tensor8& a, const Requant& ra,
               const Tensor8& b, const Requant& rb) {
  DECIMATE_CHECK(a.shape() == b.shape(), "add shape mismatch");
  return launch(cluster, VecKind::kAdd, as_bytes(a), as_bytes(b), {},
                a.numel(), 0, static_cast<int>(a.numel()),
                [&](std::vector<int32_t>& args, const VecLayout&) {
                  args[VecArgs::kM1] = ra.mult;
                  args[VecArgs::kS1] = ra.shift;
                  args[VecArgs::kM2] = rb.mult;
                  args[VecArgs::kS2] = rb.shift;
                },
                a.shape());
}

VecRun run_lut(Cluster& cluster, const Tensor8& x,
               std::span<const int8_t> lut) {
  DECIMATE_CHECK(lut.size() == 256, "lut must have 256 entries");
  return launch(cluster, VecKind::kLut, as_bytes(x), {},
                {reinterpret_cast<const uint8_t*>(lut.data()), lut.size()},
                x.numel(), 0, static_cast<int>(x.numel()),
                [](auto&, const auto&) {}, x.shape());
}

VecRun run_avgpool(Cluster& cluster, const Tensor8& x, const Requant& rq) {
  DECIMATE_CHECK(x.rank() == 3, "avgpool expects {H,W,C}");
  const int h = x.dim(0), w = x.dim(1), c = x.dim(2);
  return launch(cluster, VecKind::kAvgPool, as_bytes(x), {}, {}, c, 0, c,
                [&](std::vector<int32_t>& args, const VecLayout&) {
                  args[VecArgs::kLen] = h * w;
                  args[VecArgs::kStride] = c;
                  args[VecArgs::kM1] = rq.mult;
                  args[VecArgs::kS1] = rq.shift;
                },
                {c});
}

VecRun run_maxpool2x2(Cluster& cluster, const Tensor8& x) {
  DECIMATE_CHECK(x.rank() == 3, "maxpool expects {H,W,C}");
  const int h = x.dim(0), w = x.dim(1), c = x.dim(2);
  DECIMATE_CHECK(h % 2 == 0 && w % 2 == 0, "maxpool needs even H/W");
  return launch(cluster, VecKind::kMaxPool2, as_bytes(x), {}, {},
                static_cast<int64_t>(h / 2) * (w / 2) * c, 0, h / 2,
                [&](std::vector<int32_t>& args, const VecLayout&) {
                  args[VecArgs::kLen] = c;
                  args[VecArgs::kStride] = w * c;
                  args[VecArgs::kAux] = w / 2;
                },
                {h / 2, w / 2, c});
}

VecRun run_softmax(Cluster& cluster, const Tensor8& x,
                   std::span<const uint8_t> exp_lut) {
  DECIMATE_CHECK(x.rank() == 2, "softmax expects {T,L}");
  DECIMATE_CHECK(exp_lut.size() == 256, "exp lut must have 256 entries");
  const int t = x.dim(0), l = x.dim(1);
  return launch(cluster, VecKind::kSoftmax, as_bytes(x), {},
                {exp_lut.data(), exp_lut.size()}, x.numel(),
                static_cast<int64_t>(cluster.num_cores()) * l, t,
                [&](std::vector<int32_t>& args, const VecLayout&) {
                  args[VecArgs::kLen] = l;
                },
                x.shape());
}

VecRun run_layernorm(Cluster& cluster, const Tensor8& x, const Tensor8& gamma,
                     const Tensor8& beta) {
  DECIMATE_CHECK(x.rank() == 2, "layernorm expects {T,L}");
  const int t = x.dim(0), l = x.dim(1);
  DECIMATE_CHECK(gamma.numel() == l && beta.numel() == l,
                 "layernorm gamma/beta size mismatch");
  return launch(cluster, VecKind::kLayerNorm, as_bytes(x), as_bytes(gamma),
                {reinterpret_cast<const uint8_t*>(beta.data()),
                 static_cast<size_t>(beta.numel())},
                x.numel(), 0, t,
                [&](std::vector<int32_t>& args, const VecLayout&) {
                  args[VecArgs::kLen] = l;
                },
                x.shape());
}

}  // namespace decimate
