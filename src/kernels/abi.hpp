#pragma once
// ABI between the host-side launcher and the ISS kernels.
//
// Kernel programs are generic over layer geometry: every dimension, stride
// and pointer is read from an args block in L1 whose address is passed in
// a0. A per-core work descriptor array assigns each core a rectangle of
// the output space (the host computes the split; the kernels contain no
// division). Programs therefore depend only on (kernel kind, M), which
// lets the schedule executor cache cycle measurements per geometry.

#include <cstdint>

#include "isa/instr.hpp"

namespace decimate {

/// Word indices inside the convolution args block.
struct ConvArgs {
  enum : int {
    kInPtr = 0,       // padded input tile, HWC {IYP, IXP, C}
    kOutPtr,          // output tile, HWC {OY, OX, K}
    kWPtr,            // weight rows (dense: padded fsz; sparse: NZ values)
    kOffPtr,          // packed NZ offsets (0 for dense)
    kBiasPtr,         // int32 bias, K entries
    kImcolPtr,        // im2col area: num_cores * 2 * buf_bytes
    kC,
    kK,               // output channels in this tile (output row stride)
    kFy,
    kOx,
    kStride,
    kQmult,
    kQshift,
    kInnerIters,      // hw-loop trips: dense fsz/4, sparse nz/4 (m=4 ISA: nz/8)
    kWRowBytes,       // stride between weight rows
    kOffRowBytes,     // stride between offset rows
    kRowCopyIters,    // fx*c/4 (im2col word copies per filter row)
    kInRowBytes,      // IXP * C
    kImcolBufBytes,   // round_up(fsz, 4)
    kImcolStride,     // per-core im2col area stride (2*buf; ablation: 4*buf)
    kOxPairs,         // ox / 2
    kSxC,             // stride * C (src1 offset from src0)
    kWorkBase,        // per-core work rects start here
    kWorkWords = 6,   // {oy_s, oy_e, xp_s, xp_e, k_s, k_e}
  };
  static constexpr int size_words(int num_cores) {
    return kWorkBase + kWorkWords * num_cores;
  }
};

/// Word indices inside the fully-connected args block.
struct FcArgs {
  enum : int {
    kInPtr = 0,      // activations {T, C}
    kOutPtr,         // output {T, K} (row stride = kOutRowBytes)
    kWPtr,
    kOffPtr,
    kBiasPtr,
    kC,              // input features (= dense weight row content)
    kQmult,
    kQshift,
    kInnerIters,     // dense: C/4; sparse: nz/4 (m=4 ISA: nz/8)
    kWRowBytes,
    kOffRowBytes,    // SW: per channel row; ISA: per channel-pair row
    kOutRowBytes,    // output row stride in bytes (K of the tile)
    kInRowBytes,     // C
    kWorkBase,
    kWorkWords = 4,  // {tok_s, tok_e, k_s, k_e}
  };
  static constexpr int size_words(int num_cores) {
    return kWorkBase + kWorkWords * num_cores;
  }
};

/// The kernel families of the paper (Sec. 4.1/4.2) plus the sparse-im2col
/// ablation variant (Sec. 4.1.2, strategy 2).
enum class KernelKind : uint8_t {
  kConvDense4x2,       // PULP-NN baseline (4 output channels x 2 pixels)
  kConvDense1x2,       // dense baseline with 1x2 unrolling
  kConvSparseSw,       // N:M, XpulpV2 only
  kConvSparseIsa,      // N:M with xDecimate
  kConvSparseIm2col,   // ablation: per-channel sparse im2col (strategy 2)
  kFcDense,            // dense FC, K unrolled by 2
  kFcSparseSw,         // N:M, XpulpV2 only (one channel at a time)
  kFcSparseIsa,        // N:M with xDecimate (channel pairs, Fig. 6)
};

const char* kernel_kind_name(KernelKind kind);
bool kernel_is_sparse(KernelKind kind);
bool kernel_is_conv(KernelKind kind);
bool kernel_uses_xdec(KernelKind kind);

/// Markers bracketing the innermost-loop body in every kernel program.
inline constexpr const char* kInnerBegin = "inner_begin";
inline constexpr const char* kInnerEnd = "inner_end";

}  // namespace decimate
