#pragma once
// Host-side kernel launcher — compatibility facade over exec::TileRunner,
// which is the single home of L1 placement, args-block setup and requant
// plumbing for single-tile conv/fc execution ("data already in L1", as the
// paper's kernels assume). Multi-tile layers with DMA double-buffering are
// planned by exec/compile and executed via exec/engine.

#include "exec/tile_runner.hpp"
#include "nn/ref_ops.hpp"

namespace decimate {

class KernelLauncher {
 public:
  explicit KernelLauncher(Cluster& cluster) : runner_(cluster) {}

  /// Convolution. Dense kinds take `dense_w` ({K, FSZ}); sparse kinds take
  /// `packed` (layout must match the kind). Input is the *logical* tensor
  /// {IY, IX, C}; padding is materialized into L1 by the runner.
  KernelRun conv(KernelKind kind, const ConvGeom& g, const Requant& rq,
                 const Tensor8& input, const Tensor8* dense_w,
                 const NmPacked* packed, const Tensor32& bias) {
    return runner_.conv(kind, g, rq, input, dense_w, packed, bias);
  }

  /// Fully-connected. Input {T, C}; dense weights {K, C} or packed.
  KernelRun fc(KernelKind kind, const FcGeom& g, const Requant& rq,
               const Tensor8& input, const Tensor8* dense_w,
               const NmPacked* packed, const Tensor32& bias) {
    return runner_.fc(kind, g, rq, input, dense_w, packed, bias);
  }

  /// Program cache shared by all launchers (programs depend only on
  /// (kind, M)); thread-safe.
  static const Program& program_for(KernelKind kind, int m) {
    return TileRunner::program_for(kind, m);
  }

  /// The expected NmLayout for a sparse kernel kind.
  static NmLayout layout_for(KernelKind kind) {
    return TileRunner::layout_for(kind);
  }

  /// Inner hardware-loop trip count for a geometry (dense row length or
  /// padded NZ count).
  static int inner_iters(KernelKind kind, int m, int dense_cols,
                         int nz_padded) {
    return TileRunner::inner_iters(kind, m, dense_cols, nz_padded);
  }

  Cluster& cluster() { return runner_.cluster(); }

 private:
  TileRunner runner_;
};

}  // namespace decimate
