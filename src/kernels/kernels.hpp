#pragma once
// Builders for the dense and sparse DNN kernel programs (Sec. 4 of the
// paper). Programs are generic over layer geometry (everything is read
// from the args block, see abi.hpp) and depend only on (kind, M), so one
// program serves every layer of a given kernel family.
//
// Inner-loop instruction budgets (asserted in tests, Sec. 4 analysis):
//   conv dense 4x2 (PULP-NN) : 14 instr / 32 MACs  (2.28 MACs/instr)
//   conv dense 1x2           :  5 instr /  8 MACs  (1.60)
//   conv sparse SW, M=8/16   : 22 instr /  8 MACs  (0.36)
//   conv sparse SW, M=4      : 23 instr /  8 MACs  (0.35)
//   conv sparse ISA          : 12 instr /  8 MACs  (0.66; M=4: 23 per 2 iters)
//   fc dense 1x2             :  5 instr /  8 MACs  (1.60)
//   fc sparse SW, M=8/16     : 16 instr /  4 MACs  (0.25)
//   fc sparse ISA            : 13 instr /  8 MACs  (0.61; M=4: 25 per 2 iters)

#include "isa/instr.hpp"
#include "kernels/abi.hpp"

namespace decimate {

/// Build a convolution kernel program. `m` is the sparsity block size
/// (4/8/16) for sparse kinds and ignored (pass 0) for dense kinds.
Program build_conv_kernel(KernelKind kind, int m = 0);

/// Build a fully-connected kernel program.
Program build_fc_kernel(KernelKind kind, int m = 0);

/// Static inner-loop body length for (kind, m), as listed above.
int expected_inner_loop_length(KernelKind kind, int m);

/// Logical MACs performed per inner-loop iteration (dense-equivalent MACs
/// are macs_per_iter * m for sparse kernels).
int macs_per_inner_iter(KernelKind kind, int m);

}  // namespace decimate
