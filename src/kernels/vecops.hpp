#pragma once
// Non-matmul ISS kernels: ReLU, requantized residual add, byte-LUT
// application (GELU), global average pooling, 2x2 max pooling, integer
// softmax and integer layernorm (I-BERT/Deeploy-style; see quant.hpp for
// the exact integer algorithms, mirrored 1:1 by these programs).
//
// These carry the non-GEMM cycles of the end-to-end networks (Table 2);
// all of them parallelize a 1-D range (words, elements, channels or rows)
// across the cluster cores.

#include "sim/cluster.hpp"
#include "nn/quant.hpp"
#include "nn/tensor.hpp"

namespace decimate {

/// Args block layout shared by all vector kernels.
struct VecArgs {
  enum : int {
    kAPtr = 0,
    kBPtr,
    kOutPtr,
    kLutPtr,
    kLen,      // row length (softmax/layernorm) or stride-loop trip count
    kM1,
    kS1,
    kM2,
    kS2,
    kStride,   // channel stride (pools) / row stride (softmax rows)
    kTmpPtr,   // per-core scratch (softmax exp buffer)
    kAux,      // op-specific
    kWorkBase,
    kWorkWords = 2,  // {start, end} of the per-core 1-D range
  };
  static constexpr int size_words(int num_cores) {
    return kWorkBase + kWorkWords * num_cores;
  }
};

enum class VecKind : uint8_t {
  kRelu,       // SIMD max with zero, 4 lanes/iteration
  kAdd,        // out = clip8((a*m1 >> s1) + (b*m2 >> s2))
  kLut,        // out[i] = lut[(uint8)a[i]]
  kAvgPool,    // {H,W,C} -> {C}: requant(sum over H*W), strided loads
  kMaxPool2,   // {H,W,C} -> {H/2,W/2,C}, 2x2 stride 2
  kSoftmax,    // rows of length L, 3 passes + one divide per row
  kLayerNorm,  // rows of length L, integer mean/var/isqrt
};

const char* vec_kind_name(VecKind kind);

/// Build the program for a vector kernel (generic over geometry).
Program build_vec_kernel(VecKind kind);

struct VecRun {
  Tensor8 output;
  RunResult result;
};

/// Host-side launchers (single L1-resident execution, like KernelLauncher).
VecRun run_relu(Cluster& cluster, const Tensor8& x);
VecRun run_add(Cluster& cluster, const Tensor8& a, const Requant& ra,
               const Tensor8& b, const Requant& rb);
VecRun run_lut(Cluster& cluster, const Tensor8& x, std::span<const int8_t> lut);
VecRun run_avgpool(Cluster& cluster, const Tensor8& x, const Requant& rq);
VecRun run_maxpool2x2(Cluster& cluster, const Tensor8& x);
VecRun run_softmax(Cluster& cluster, const Tensor8& x,
                   std::span<const uint8_t> exp_lut);
VecRun run_layernorm(Cluster& cluster, const Tensor8& x, const Tensor8& gamma,
                     const Tensor8& beta);

/// Program cache for vector kernels.
const Program& vec_program_for(VecKind kind);

}  // namespace decimate
