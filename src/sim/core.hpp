#pragma once
// Single RI5CY-class core: RV32IM subset + XpulpV2 subset + xDecimate.
//
// Timing model (cycle-approximate, matching the paper's analysis where
// MACs/instruction ≈ MACs/cycle in hardware-loop bodies):
//   - 1 cycle per instruction
//   - +1 cycle for taken branches and jumps (pipeline flush)
//   - hardware-loop back-edges are free (that is their purpose)
//   - L1 loads/stores are single-cycle; L2/L3 accesses from the core pay a
//     latency penalty (kernels are expected to touch only L1)
//   - DIV/REM pay a serial-divider penalty
//   - optional: +1 stall for an xDecimate immediately following another
//     xDecimate when the WB->EX forwarding path is disabled (the csr is a
//     distance-1 dependency; see Sec. 4.3 of the paper and hw/xfu_model)

#include <array>
#include <cstdint>
#include <span>

#include "isa/instr.hpp"
#include "sim/memory.hpp"

namespace decimate {

struct CoreConfig {
  int branch_taken_penalty = 1;  // extra cycles on taken branch/jump
  int div_penalty = 31;          // extra cycles for div/rem
  int l2_access_penalty = 8;     // extra cycles for a core-issued L2 access
  int l3_access_penalty = 40;    // extra cycles for a core-issued L3 access
  bool xdec_forwarding = true;   // WB->EX forwarding inside the XFU

  bool operator==(const CoreConfig&) const = default;
};

struct CoreStats {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t taken_branches = 0;
  uint64_t mem_stall_cycles = 0;   // TCDM contention (lockstep mode)
  uint64_t xdec_stall_cycles = 0;  // missing-forwarding stalls
  std::array<uint64_t, kNumOpcodes> opcode_histogram{};

  uint64_t count(Opcode op) const {
    return opcode_histogram[static_cast<size_t>(op)];
  }
};

class Core {
 public:
  Core(uint32_t hartid, SocMemory& mem, const CoreConfig& cfg);

  /// Reset architectural state and bind a program; a0 <- arg0, sp <- stack.
  void reset(std::span<const Instr> program, uint32_t arg0, uint32_t sp);

  /// Execute one instruction. Returns extra wait cycles beyond the one
  /// accounted cycle (multi-cycle instructions, used by lockstep mode).
  int step();

  /// Run until HALT or BARRIER (sequential mode). Returns cycles spent in
  /// this segment. `max_cycles` guards against runaway programs.
  uint64_t run_segment(uint64_t max_cycles = (1ull << 40));

  bool halted() const { return halted_; }
  bool at_barrier() const { return at_barrier_; }
  /// Release a core that is waiting at a barrier.
  void release_barrier() { at_barrier_ = false; }

  /// Address of the data-memory access the *next* instruction will make,
  /// or 0 if it does not access memory (TCDM bank arbitration, lockstep).
  uint32_t peek_mem_addr() const;

  uint32_t hartid() const { return hartid_; }
  const CoreStats& stats() const { return stats_; }
  CoreStats& mutable_stats() { return stats_; }
  uint32_t reg(uint8_t r) const { return regs_[r]; }
  void set_reg(uint8_t r, uint32_t v) {
    if (r != 0) regs_[r] = v;
  }
  uint32_t pc() const { return pc_; }
  uint32_t xdec_csr() const { return xdec_csr_; }

 private:
  void advance_pc(uint32_t next);

  uint32_t hartid_;
  SocMemory& mem_;
  CoreConfig cfg_;
  std::span<const Instr> prog_;

  std::array<uint32_t, 32> regs_{};
  uint32_t pc_ = 0;
  uint32_t xdec_csr_ = 0;
  bool halted_ = true;
  bool at_barrier_ = false;
  bool prev_was_xdec_ = false;

  struct HwLoop {
    uint32_t start = 0;
    uint32_t end = 0;
    uint32_t count = 0;
  };
  std::array<HwLoop, 2> loops_{};

  CoreStats stats_;
};

}  // namespace decimate
