#pragma once
// The 8-core PULP cluster model.
//
// Two execution modes:
//  - Sequential (default, fast): each core runs to the next barrier/halt
//    independently; wall cycles of an epoch = max over cores. Valid because
//    the kernels partition work disjointly between barriers.
//  - Lockstep: cores advance cycle-by-cycle with word-interleaved TCDM bank
//    arbitration (rotating priority), modelling L1 contention. Used by the
//    TCDM-contention ablation (E12).

#include <memory>
#include <vector>

#include "sim/core.hpp"
#include "sim/memory.hpp"

namespace decimate {

struct ClusterConfig {
  int num_cores = 8;
  CoreConfig core;
  bool lockstep = false;
  int tcdm_banks = 16;
  int barrier_cycles = 8;  // event-unit round trip per barrier epoch
  uint64_t max_cycles = 1ull << 40;
  uint32_t stack_bytes_per_core = 512;

  bool operator==(const ClusterConfig&) const = default;
};

struct RunResult {
  uint64_t wall_cycles = 0;
  uint64_t total_instructions = 0;
  uint64_t total_mem_stalls = 0;
  uint64_t total_xdec_stalls = 0;
  std::vector<CoreStats> per_core;

  /// Sum of one opcode across cores.
  uint64_t count(Opcode op) const {
    uint64_t n = 0;
    for (const auto& cs : per_core) n += cs.count(op);
    return n;
  }
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg = {});

  SocMemory& mem() { return *mem_; }
  const ClusterConfig& config() const { return cfg_; }
  int num_cores() const { return cfg_.num_cores; }

  /// Highest L1 address usable for data (below the per-core stacks).
  uint32_t l1_data_limit() const;

  /// Run `prog` on all cores (a0 = args_ptr on every core) until all halt.
  RunResult run(const Program& prog, uint32_t args_ptr);

 private:
  RunResult run_sequential(const Program& prog, uint32_t args_ptr);
  RunResult run_lockstep(const Program& prog, uint32_t args_ptr);
  RunResult collect(uint64_t wall) const;

  ClusterConfig cfg_;
  std::unique_ptr<SocMemory> mem_;
  std::vector<Core> cores_;
};

}  // namespace decimate
