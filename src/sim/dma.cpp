#include "sim/dma.hpp"

#include "common/bitutil.hpp"

namespace decimate {

uint64_t DmaModel::cost_1d(uint64_t bytes, MemRegion a, MemRegion b) const {
  if (bytes == 0) return 0;
  if (slow_path(a, b)) {
    return cfg_.l3_startup_cycles +
           static_cast<uint64_t>(
               ceil_div(static_cast<int64_t>(bytes),
                        static_cast<int64_t>(cfg_.l3_bytes_per_cycle)));
  }
  return cfg_.l2_startup_cycles +
         static_cast<uint64_t>(
             ceil_div(static_cast<int64_t>(bytes),
                      static_cast<int64_t>(cfg_.l2_bytes_per_cycle)));
}

uint64_t DmaModel::cost_2d(uint64_t rows, uint64_t row_bytes, MemRegion a,
                           MemRegion b) const {
  if (rows == 0 || row_bytes == 0) return 0;
  return cost_1d(rows * row_bytes, a, b) + rows * cfg_.per_row_cycles;
}

uint64_t DmaModel::copy_1d(uint32_t dst, uint32_t src, uint32_t bytes) {
  mem_->copy(dst, src, bytes);
  return cost_1d(bytes, mem_->region(src), mem_->region(dst));
}

uint64_t DmaModel::copy_2d(uint32_t dst, uint32_t src, uint32_t rows,
                           uint32_t row_bytes, uint32_t dst_stride,
                           uint32_t src_stride) {
  for (uint32_t r = 0; r < rows; ++r) {
    mem_->copy(dst + r * dst_stride, src + r * src_stride, row_bytes);
  }
  if (rows == 0 || row_bytes == 0) return 0;
  return cost_2d(rows, row_bytes, mem_->region(src), mem_->region(dst));
}

uint64_t DmaModel::fill(uint32_t dst, uint32_t bytes, uint8_t value) {
  mem_->fill(dst, bytes, value);
  return cost_1d(bytes, MemRegion::kL1, mem_->region(dst));
}

}  // namespace decimate
