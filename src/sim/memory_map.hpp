#pragma once
// Address map of the simulated SoC, mirroring the Vega memory hierarchy
// (Rossi et al., 2021): a 128 kB shared L1 TCDM inside the cluster, a
// 1.6 MB L2, and a 16 MB external L3 (HyperRAM-class).

#include <cstdint>

namespace decimate {

enum class MemRegion : uint8_t { kL1, kL2, kL3 };

struct MemoryMap {
  static constexpr uint32_t kL1Base = 0x10000000;
  static constexpr uint32_t kL1Size = 128 * 1024;
  static constexpr uint32_t kL2Base = 0x1C000000;
  static constexpr uint32_t kL2Size = 1600 * 1024;
  static constexpr uint32_t kL3Base = 0x80000000;
  static constexpr uint32_t kL3Size = 16 * 1024 * 1024;

  static constexpr bool in_l1(uint32_t a) {
    return a >= kL1Base && a < kL1Base + kL1Size;
  }
  static constexpr bool in_l2(uint32_t a) {
    return a >= kL2Base && a < kL2Base + kL2Size;
  }
  static constexpr bool in_l3(uint32_t a) {
    return a >= kL3Base && a < kL3Base + kL3Size;
  }
};

}  // namespace decimate
