#include "sim/core.hpp"

#include "common/bitutil.hpp"

namespace decimate {

Core::Core(uint32_t hartid, SocMemory& mem, const CoreConfig& cfg)
    : hartid_(hartid), mem_(mem), cfg_(cfg) {}

void Core::reset(std::span<const Instr> program, uint32_t arg0, uint32_t sp) {
  prog_ = program;
  regs_.fill(0);
  regs_[reg::a0] = arg0;
  regs_[reg::sp] = sp;
  pc_ = 0;
  xdec_csr_ = 0;
  halted_ = program.empty();
  at_barrier_ = false;
  prev_was_xdec_ = false;
  loops_ = {};
}

void Core::advance_pc(uint32_t next) {
  // Hardware-loop handling: if the executed instruction sits at the end of
  // an active loop with remaining iterations, jump to the loop start with
  // zero overhead. Loop 0 is the innermost and is checked first (RI5CY).
  for (auto& lp : loops_) {
    if (lp.count > 1 && pc_ == lp.end) {
      --lp.count;
      pc_ = lp.start;
      return;
    }
    if (lp.count == 1 && pc_ == lp.end) {
      lp.count = 0;  // loop exhausted
      break;
    }
  }
  pc_ = next;
}

uint32_t Core::peek_mem_addr() const {
  if (halted_ || at_barrier_ || pc_ >= prog_.size()) return 0;
  const Instr& in = prog_[pc_];
  switch (in.op) {
    case Opcode::kLb: case Opcode::kLbu: case Opcode::kLh: case Opcode::kLhu:
    case Opcode::kLw: case Opcode::kSb: case Opcode::kSh: case Opcode::kSw:
      return regs_[in.rs1] + static_cast<uint32_t>(in.imm);
    case Opcode::kLbPi: case Opcode::kLbuPi: case Opcode::kLhuPi:
    case Opcode::kLwPi: case Opcode::kSbPi: case Opcode::kSwPi:
      return regs_[in.rs1];
    case Opcode::kLbRr: case Opcode::kLbuRr: case Opcode::kLwRr:
      return regs_[in.rs1] + regs_[in.rs2];
    case Opcode::kPvLbIns: {
      const unsigned lane = in.aux & 3;
      const unsigned lm = in.aux >> 2;
      return regs_[in.rs1] + regs_[in.rs2] + (lm ? (lane << lm) : 0u);
    }
    case Opcode::kXdec: {
      const uint32_t csr = xdec_csr_;
      const uint32_t rs2v = regs_[in.rs2];
      const uint32_t o = (in.aux == 4) ? bits(rs2v, (csr & 15) * 2 + 1, (csr & 15) * 2)
                                       : bits(rs2v, (csr & 7) * 4 + 3, (csr & 7) * 4);
      return regs_[in.rs1] + in.aux * bits(csr, 15, 1) + o;
    }
    default:
      return 0;
  }
}

int Core::step() {
  DECIMATE_CHECK(!halted_ && !at_barrier_, "step() on inactive core");
  DECIMATE_CHECK(pc_ < prog_.size(), "pc out of program bounds: " << pc_);
  const Instr& in = prog_[pc_];
  auto& r = regs_;
  const uint32_t rs1v = r[in.rs1];
  const uint32_t rs2v = r[in.rs2];
  auto wr = [&](uint32_t v) {
    if (in.rd != 0) r[in.rd] = v;
  };

  ++stats_.instructions;
  ++stats_.cycles;
  ++stats_.opcode_histogram[static_cast<size_t>(in.op)];

  int extra = 0;
  uint32_t next = pc_ + 1;
  bool is_xdec = false;

  auto mem_penalty = [&](uint32_t addr) {
    if (MemoryMap::in_l1(addr)) return;
    extra += (MemoryMap::in_l2(addr)) ? cfg_.l2_access_penalty
                                      : cfg_.l3_access_penalty;
  };
  auto take_branch = [&](bool cond) {
    if (cond) {
      next = static_cast<uint32_t>(in.imm);
      extra += cfg_.branch_taken_penalty;
      ++stats_.taken_branches;
    }
  };

  switch (in.op) {
    using enum Opcode;
    // --- ALU ---
    case kAdd: wr(rs1v + rs2v); break;
    case kSub: wr(rs1v - rs2v); break;
    case kAnd: wr(rs1v & rs2v); break;
    case kOr: wr(rs1v | rs2v); break;
    case kXor: wr(rs1v ^ rs2v); break;
    case kSll: wr(rs1v << (rs2v & 31)); break;
    case kSrl: wr(rs1v >> (rs2v & 31)); break;
    case kSra: wr(static_cast<uint32_t>(static_cast<int32_t>(rs1v) >> (rs2v & 31))); break;
    case kSlt: wr(static_cast<int32_t>(rs1v) < static_cast<int32_t>(rs2v) ? 1 : 0); break;
    case kSltu: wr(rs1v < rs2v ? 1 : 0); break;
    case kMul: wr(rs1v * rs2v); break;
    case kMulh:
      wr(static_cast<uint32_t>(
          (static_cast<int64_t>(static_cast<int32_t>(rs1v)) *
           static_cast<int64_t>(static_cast<int32_t>(rs2v))) >> 32));
      break;
    case kDiv:
      wr(rs2v == 0 ? ~0u
                   : static_cast<uint32_t>(static_cast<int32_t>(rs1v) /
                                           static_cast<int32_t>(rs2v)));
      extra += cfg_.div_penalty;
      break;
    case kDivu:
      wr(rs2v == 0 ? ~0u : rs1v / rs2v);
      extra += cfg_.div_penalty;
      break;
    case kRem:
      wr(rs2v == 0 ? rs1v
                   : static_cast<uint32_t>(static_cast<int32_t>(rs1v) %
                                           static_cast<int32_t>(rs2v)));
      extra += cfg_.div_penalty;
      break;
    case kAddi: wr(rs1v + static_cast<uint32_t>(in.imm)); break;
    case kAndi: wr(rs1v & static_cast<uint32_t>(in.imm)); break;
    case kOri: wr(rs1v | static_cast<uint32_t>(in.imm)); break;
    case kXori: wr(rs1v ^ static_cast<uint32_t>(in.imm)); break;
    case kSlli: wr(rs1v << (in.imm & 31)); break;
    case kSrli: wr(rs1v >> (in.imm & 31)); break;
    case kSrai: wr(static_cast<uint32_t>(static_cast<int32_t>(rs1v) >> (in.imm & 31))); break;
    case kSlti: wr(static_cast<int32_t>(rs1v) < in.imm ? 1 : 0); break;
    case kSltiu: wr(rs1v < static_cast<uint32_t>(in.imm) ? 1 : 0); break;
    case kLui: wr(static_cast<uint32_t>(in.imm) << 12); break;
    case kPClip: wr(static_cast<uint32_t>(clip_signed(static_cast<int32_t>(rs1v), in.aux))); break;
    case kPMax: wr(static_cast<int32_t>(rs1v) > static_cast<int32_t>(rs2v) ? rs1v : rs2v); break;
    case kPMin: wr(static_cast<int32_t>(rs1v) < static_cast<int32_t>(rs2v) ? rs1v : rs2v); break;

    // --- loads / stores ---
    case kLb: { const uint32_t a = rs1v + static_cast<uint32_t>(in.imm); mem_penalty(a);
      wr(static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(mem_.read8(a))))); break; }
    case kLbu: { const uint32_t a = rs1v + static_cast<uint32_t>(in.imm); mem_penalty(a);
      wr(mem_.read8(a)); break; }
    case kLh: { const uint32_t a = rs1v + static_cast<uint32_t>(in.imm); mem_penalty(a);
      wr(static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(mem_.read16(a))))); break; }
    case kLhu: { const uint32_t a = rs1v + static_cast<uint32_t>(in.imm); mem_penalty(a);
      wr(mem_.read16(a)); break; }
    case kLw: { const uint32_t a = rs1v + static_cast<uint32_t>(in.imm); mem_penalty(a);
      wr(mem_.read32(a)); break; }
    case kSb: mem_penalty(rs1v + static_cast<uint32_t>(in.imm));
      mem_.write8(rs1v + static_cast<uint32_t>(in.imm), static_cast<uint8_t>(rs2v)); break;
    case kSh: mem_penalty(rs1v + static_cast<uint32_t>(in.imm));
      mem_.write16(rs1v + static_cast<uint32_t>(in.imm), static_cast<uint16_t>(rs2v)); break;
    case kSw: mem_penalty(rs1v + static_cast<uint32_t>(in.imm));
      mem_.write32(rs1v + static_cast<uint32_t>(in.imm), rs2v); break;

    // --- XpulpV2 post-increment (access mem[rs1], then rs1 += imm) ---
    case kLbPi: mem_penalty(rs1v);
      wr(static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(mem_.read8(rs1v)))));
      r[in.rs1] = rs1v + static_cast<uint32_t>(in.imm); break;
    case kLbuPi: mem_penalty(rs1v); wr(mem_.read8(rs1v));
      r[in.rs1] = rs1v + static_cast<uint32_t>(in.imm); break;
    case kLhuPi: mem_penalty(rs1v); wr(mem_.read16(rs1v));
      r[in.rs1] = rs1v + static_cast<uint32_t>(in.imm); break;
    case kLwPi: mem_penalty(rs1v); wr(mem_.read32(rs1v));
      r[in.rs1] = rs1v + static_cast<uint32_t>(in.imm); break;
    case kSbPi: mem_penalty(rs1v); mem_.write8(rs1v, static_cast<uint8_t>(rs2v));
      r[in.rs1] = rs1v + static_cast<uint32_t>(in.imm); break;
    case kSwPi: mem_penalty(rs1v); mem_.write32(rs1v, rs2v);
      r[in.rs1] = rs1v + static_cast<uint32_t>(in.imm); break;

    // --- register-register addressing ---
    case kLbRr: { const uint32_t a = rs1v + rs2v; mem_penalty(a);
      wr(static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(mem_.read8(a))))); break; }
    case kLbuRr: { const uint32_t a = rs1v + rs2v; mem_penalty(a); wr(mem_.read8(a)); break; }
    case kLwRr: { const uint32_t a = rs1v + rs2v; mem_penalty(a); wr(mem_.read32(a)); break; }

    // --- branches / jumps ---
    case kBeq: take_branch(rs1v == rs2v); break;
    case kBne: take_branch(rs1v != rs2v); break;
    case kBlt: take_branch(static_cast<int32_t>(rs1v) < static_cast<int32_t>(rs2v)); break;
    case kBge: take_branch(static_cast<int32_t>(rs1v) >= static_cast<int32_t>(rs2v)); break;
    case kBltu: take_branch(rs1v < rs2v); break;
    case kBgeu: take_branch(rs1v >= rs2v); break;
    case kJal:
      wr((pc_ + 1) * 4);
      next = static_cast<uint32_t>(in.imm);
      extra += cfg_.branch_taken_penalty;
      break;
    case kJalr:
      wr((pc_ + 1) * 4);
      next = (rs1v + static_cast<uint32_t>(in.imm)) / 4;
      extra += cfg_.branch_taken_penalty;
      break;

    // --- hardware loops ---
    case kLpSetup: {
      auto& lp = loops_[in.aux & 1];
      DECIMATE_CHECK(rs1v >= 1, "lp.setup with zero trip count at pc " << pc_);
      lp.start = pc_ + 1;
      lp.end = static_cast<uint32_t>(in.imm);
      lp.count = rs1v;
      break;
    }
    case kLpSetupImm: {
      auto& lp = loops_[in.aux & 1];
      lp.start = pc_ + 1;
      lp.end = static_cast<uint32_t>(in.imm);
      lp.count = static_cast<uint32_t>(in.imm2);
      break;
    }

    // --- SIMD ---
    case kPvSdotspB: wr(r[in.rd] + static_cast<uint32_t>(sdot4(rs1v, rs2v))); break;
    case kPvAddB: {
      uint32_t out = 0;
      for (unsigned l = 0; l < 4; ++l) {
        out |= (static_cast<uint32_t>(
                    static_cast<uint8_t>(lane_b(rs1v, l) + lane_b(rs2v, l))))
               << (8 * l);
      }
      wr(out);
      break;
    }
    case kPvMaxB: {
      uint32_t out = 0;
      for (unsigned l = 0; l < 4; ++l) {
        const int8_t m = std::max(lane_b(rs1v, l), lane_b(rs2v, l));
        out |= static_cast<uint32_t>(static_cast<uint8_t>(m)) << (8 * l);
      }
      wr(out);
      break;
    }
    case kPvLbIns: {
      const unsigned lane = in.aux & 3;
      const unsigned lm = in.aux >> 2;  // log2 of the lane stride, 0 = none
      const uint32_t a = rs1v + rs2v + (lm ? (lane << lm) : 0u);
      mem_penalty(a);
      uint32_t v = r[in.rd];
      v = (v & ~(0xFFu << (8 * lane))) |
          (static_cast<uint32_t>(mem_.read8(a)) << (8 * lane));
      wr(v);
      break;
    }

    // --- xDecimate (Sec. 4.3 of the paper) ---
    case kXdec: {
      is_xdec = true;
      if (prev_was_xdec_ && !cfg_.xdec_forwarding) {
        // csr is a distance-1 dependency between consecutive xDecimate
        // instructions; without the WB->EX forwarding path the second one
        // stalls for one cycle.
        extra += 1;
        ++stats_.xdec_stall_cycles;
      }
      const uint32_t csr = xdec_csr_;
      const uint32_t o =
          (in.aux == 4) ? bits(rs2v, (csr & 15) * 2 + 1, (csr & 15) * 2)
                        : bits(rs2v, (csr & 7) * 4 + 3, (csr & 7) * 4);
      const uint32_t addr = rs1v + in.aux * bits(csr, 15, 1) + o;
      mem_penalty(addr);
      const unsigned lane = bits(csr, 2, 1);
      uint32_t v = r[in.rd];
      v = (v & ~(0xFFu << (8 * lane))) |
          (static_cast<uint32_t>(mem_.read8(addr)) << (8 * lane));
      wr(v);
      xdec_csr_ = csr + 1;
      break;
    }
    case kXdecClear: xdec_csr_ = 0; break;

    // --- system ---
    case kHartid: wr(hartid_); break;
    case kBarrier: at_barrier_ = true; break;
    case kHalt: halted_ = true; break;
    case kCount: DECIMATE_FAIL("invalid opcode");
  }

  prev_was_xdec_ = is_xdec;
  stats_.cycles += static_cast<uint64_t>(extra);
  advance_pc(next);
  return extra;
}

uint64_t Core::run_segment(uint64_t max_cycles) {
  const uint64_t start = stats_.cycles;
  while (!halted_ && !at_barrier_) {
    step();
    DECIMATE_CHECK(stats_.cycles - start < max_cycles,
                   "core " << hartid_ << " exceeded max cycles; runaway loop?");
  }
  return stats_.cycles - start;
}

}  // namespace decimate
