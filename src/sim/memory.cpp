#include "sim/memory.hpp"

#include <cstring>

namespace decimate {

SocMemory::SocMemory()
    : l1_(MemoryMap::kL1Size, 0),
      l2_(MemoryMap::kL2Size, 0),
      l3_(MemoryMap::kL3Size, 0) {}

const uint8_t* SocMemory::ptr(uint32_t addr, uint32_t len) const {
  if (MemoryMap::in_l1(addr) && MemoryMap::in_l1(addr + len - 1)) {
    return l1_.data() + (addr - MemoryMap::kL1Base);
  }
  if (MemoryMap::in_l2(addr) && MemoryMap::in_l2(addr + len - 1)) {
    return l2_.data() + (addr - MemoryMap::kL2Base);
  }
  if (MemoryMap::in_l3(addr) && MemoryMap::in_l3(addr + len - 1)) {
    return l3_.data() + (addr - MemoryMap::kL3Base);
  }
  DECIMATE_FAIL("unmapped or straddling memory access at 0x" << std::hex
                                                             << addr);
}

uint8_t* SocMemory::mut_ptr(uint32_t addr, uint32_t len) {
  return const_cast<uint8_t*>(ptr(addr, len));
}

uint16_t SocMemory::read16(uint32_t addr) const {
  DECIMATE_CHECK((addr & 1) == 0, "misaligned halfword load at 0x" << std::hex << addr);
  uint16_t v;
  std::memcpy(&v, ptr(addr, 2), 2);
  return v;
}

uint32_t SocMemory::read32(uint32_t addr) const {
  DECIMATE_CHECK((addr & 3) == 0, "misaligned word load at 0x" << std::hex << addr);
  uint32_t v;
  std::memcpy(&v, ptr(addr, 4), 4);
  return v;
}

void SocMemory::write16(uint32_t addr, uint16_t v) {
  DECIMATE_CHECK((addr & 1) == 0, "misaligned halfword store at 0x" << std::hex << addr);
  std::memcpy(mut_ptr(addr, 2), &v, 2);
}

void SocMemory::write32(uint32_t addr, uint32_t v) {
  DECIMATE_CHECK((addr & 3) == 0, "misaligned word store at 0x" << std::hex << addr);
  std::memcpy(mut_ptr(addr, 4), &v, 4);
}

MemRegion SocMemory::region(uint32_t addr) const {
  if (MemoryMap::in_l1(addr)) return MemRegion::kL1;
  if (MemoryMap::in_l2(addr)) return MemRegion::kL2;
  if (MemoryMap::in_l3(addr)) return MemRegion::kL3;
  DECIMATE_FAIL("unmapped address 0x" << std::hex << addr);
}

void SocMemory::write_block(uint32_t addr, std::span<const uint8_t> data) {
  if (data.empty()) return;
  std::memcpy(mut_ptr(addr, static_cast<uint32_t>(data.size())), data.data(),
              data.size());
}

void SocMemory::read_block(uint32_t addr, std::span<uint8_t> out) const {
  if (out.empty()) return;
  std::memcpy(out.data(), ptr(addr, static_cast<uint32_t>(out.size())),
              out.size());
}

void SocMemory::fill(uint32_t addr, uint32_t len, uint8_t value) {
  if (len == 0) return;
  std::memset(mut_ptr(addr, len), value, len);
}

void SocMemory::copy(uint32_t dst, uint32_t src, uint32_t len) {
  if (len == 0) return;
  std::memmove(mut_ptr(dst, len), ptr(src, len), len);
}

}  // namespace decimate
