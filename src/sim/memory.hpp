#pragma once
// Functional model of the SoC data memories (L1/L2/L3) with a flat host
// backing store per region. Alignment is enforced for halfword/word
// accesses, as on RI5CY with unaligned support disabled.

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "sim/memory_map.hpp"

namespace decimate {

class SocMemory {
 public:
  SocMemory();

  // --- core-facing accessors (hot path) ---
  uint8_t read8(uint32_t addr) const { return *ptr(addr, 1); }
  uint16_t read16(uint32_t addr) const;
  uint32_t read32(uint32_t addr) const;
  void write8(uint32_t addr, uint8_t v) { *mut_ptr(addr, 1) = v; }
  void write16(uint32_t addr, uint16_t v);
  void write32(uint32_t addr, uint32_t v);

  /// Region of an address (throws on unmapped).
  MemRegion region(uint32_t addr) const;

  // --- host-facing bulk accessors (used by launchers, DMA, tests) ---
  void write_block(uint32_t addr, std::span<const uint8_t> data);
  void read_block(uint32_t addr, std::span<uint8_t> out) const;
  void fill(uint32_t addr, uint32_t len, uint8_t value);
  /// Functional copy between any two mapped ranges (the DMA datapath).
  void copy(uint32_t dst, uint32_t src, uint32_t len);

  /// Host view of one full region (for checkpointing in tests).
  std::span<const uint8_t> l1() const { return l1_; }
  std::span<const uint8_t> l2() const { return l2_; }

 private:
  const uint8_t* ptr(uint32_t addr, uint32_t len) const;
  uint8_t* mut_ptr(uint32_t addr, uint32_t len);

  std::vector<uint8_t> l1_;
  std::vector<uint8_t> l2_;
  std::vector<uint8_t> l3_;
};

}  // namespace decimate
