#pragma once
// Cluster DMA model: functional copies inside SocMemory plus a cycle cost
// model (startup + bandwidth). The schedule executor uses the cost side to
// overlap transfers with compute (double buffering), as MATCH does on Vega.

#include <cstdint>

#include "sim/memory.hpp"

namespace decimate {

struct DmaConfig {
  // L2 <-> L1 (cluster DMA over the 64-bit AXI port)
  uint32_t l2_startup_cycles = 20;
  double l2_bytes_per_cycle = 8.0;
  // L3 <-> L2 (HyperRAM-class external memory)
  uint32_t l3_startup_cycles = 300;
  double l3_bytes_per_cycle = 1.0;
  // Extra cost per row of a 2D (strided) transfer
  uint32_t per_row_cycles = 2;
};

class DmaModel {
 public:
  explicit DmaModel(SocMemory& mem, const DmaConfig& cfg = {})
      : mem_(&mem), cfg_(cfg) {}

  const DmaConfig& config() const { return cfg_; }

  /// Cost of a 1D transfer of `bytes` between two regions (no data moved).
  uint64_t cost_1d(uint64_t bytes, MemRegion a, MemRegion b) const;

  /// Cost of a 2D transfer (rows x row_bytes) between two regions.
  uint64_t cost_2d(uint64_t rows, uint64_t row_bytes, MemRegion a,
                   MemRegion b) const;

  /// Functional 1D copy; returns its cycle cost.
  uint64_t copy_1d(uint32_t dst, uint32_t src, uint32_t bytes);

  /// Functional 2D copy with independent strides; returns its cycle cost.
  uint64_t copy_2d(uint32_t dst, uint32_t src, uint32_t rows,
                   uint32_t row_bytes, uint32_t dst_stride,
                   uint32_t src_stride);

  /// Functional fill (used to materialize zero padding); returns cost.
  uint64_t fill(uint32_t dst, uint32_t bytes, uint8_t value);

 private:
  bool slow_path(MemRegion a, MemRegion b) const {
    return a == MemRegion::kL3 || b == MemRegion::kL3;
  }

  SocMemory* mem_;
  DmaConfig cfg_;
};

}  // namespace decimate
