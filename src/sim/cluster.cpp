#include "sim/cluster.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace decimate {

Cluster::Cluster(const ClusterConfig& cfg)
    : cfg_(cfg), mem_(std::make_unique<SocMemory>()) {
  DECIMATE_CHECK(cfg_.num_cores >= 1 && cfg_.num_cores <= 16,
                 "cluster supports 1..16 cores, got " << cfg_.num_cores);
  cores_.reserve(static_cast<size_t>(cfg_.num_cores));
  for (int i = 0; i < cfg_.num_cores; ++i) {
    cores_.emplace_back(static_cast<uint32_t>(i), *mem_, cfg_.core);
  }
}

uint32_t Cluster::l1_data_limit() const {
  return MemoryMap::kL1Base + MemoryMap::kL1Size -
         static_cast<uint32_t>(cfg_.num_cores) * cfg_.stack_bytes_per_core;
}

RunResult Cluster::run(const Program& prog, uint32_t args_ptr) {
  const uint32_t stack_top = MemoryMap::kL1Base + MemoryMap::kL1Size;
  for (int i = 0; i < cfg_.num_cores; ++i) {
    const uint32_t sp =
        stack_top - static_cast<uint32_t>(i) * cfg_.stack_bytes_per_core;
    cores_[static_cast<size_t>(i)].reset(prog.code, args_ptr, sp);
  }
  return cfg_.lockstep ? run_lockstep(prog, args_ptr)
                       : run_sequential(prog, args_ptr);
}

RunResult Cluster::collect(uint64_t wall) const {
  RunResult res;
  res.wall_cycles = wall;
  for (const auto& c : cores_) {
    res.per_core.push_back(c.stats());
    res.total_instructions += c.stats().instructions;
    res.total_mem_stalls += c.stats().mem_stall_cycles;
    res.total_xdec_stalls += c.stats().xdec_stall_cycles;
  }
  return res;
}

RunResult Cluster::run_sequential(const Program& prog, uint32_t /*args_ptr*/) {
  (void)prog;
  uint64_t wall = 0;
  while (true) {
    uint64_t epoch = 0;
    bool all_halted = true;
    for (auto& core : cores_) {
      if (core.halted() || core.at_barrier()) continue;
      epoch = std::max(epoch, core.run_segment(cfg_.max_cycles));
      all_halted = all_halted && core.halted();
    }
    for (const auto& core : cores_) {
      all_halted = all_halted && core.halted();
    }
    wall += epoch;
    DECIMATE_CHECK(wall < cfg_.max_cycles, "cluster exceeded max cycles");
    if (all_halted) break;
    // Everyone is either halted or waiting at a barrier: release the epoch.
    // (Halted cores count as arrived, matching the team semantics of the
    // PULP runtime where a core that returns also joins the final barrier.)
    bool any_barrier = false;
    for (auto& core : cores_) {
      if (core.at_barrier()) {
        core.release_barrier();
        any_barrier = true;
      }
    }
    DECIMATE_CHECK(any_barrier, "cluster wedged: no runnable core");
    wall += static_cast<uint64_t>(cfg_.barrier_cycles);
  }
  return collect(wall);
}

RunResult Cluster::run_lockstep(const Program& prog, uint32_t /*args_ptr*/) {
  (void)prog;
  const int n = cfg_.num_cores;
  std::vector<int> wait(static_cast<size_t>(n), 0);
  std::vector<int8_t> bank_owner(static_cast<size_t>(cfg_.tcdm_banks));
  uint64_t wall = 0;
  int rotate = 0;

  auto all_done_or_waiting = [&]() {
    bool all_halted = true;
    bool all_blocked = true;
    for (int i = 0; i < n; ++i) {
      const auto& c = cores_[static_cast<size_t>(i)];
      all_halted = all_halted && c.halted();
      all_blocked = all_blocked && (c.halted() || c.at_barrier());
    }
    if (all_halted) return 2;
    if (all_blocked) return 1;
    return 0;
  };

  while (true) {
    const int state = all_done_or_waiting();
    if (state == 2) break;
    if (state == 1) {
      for (auto& c : cores_) {
        if (c.at_barrier()) c.release_barrier();
      }
      wall += static_cast<uint64_t>(cfg_.barrier_cycles);
      continue;
    }
    std::fill(bank_owner.begin(), bank_owner.end(), int8_t{-1});
    for (int k = 0; k < n; ++k) {
      const int i = (k + rotate) % n;
      auto& core = cores_[static_cast<size_t>(i)];
      if (core.halted() || core.at_barrier()) continue;
      if (wait[static_cast<size_t>(i)] > 0) {
        --wait[static_cast<size_t>(i)];
        continue;
      }
      const uint32_t addr = core.peek_mem_addr();
      if (addr != 0 && MemoryMap::in_l1(addr)) {
        const int bank =
            static_cast<int>((addr >> 2) % static_cast<uint32_t>(cfg_.tcdm_banks));
        if (bank_owner[static_cast<size_t>(bank)] >= 0) {
          // conflict: stall this cycle, retry next
          core.mutable_stats().cycles += 1;
          core.mutable_stats().mem_stall_cycles += 1;
          continue;
        }
        bank_owner[static_cast<size_t>(bank)] = static_cast<int8_t>(i);
      }
      wait[static_cast<size_t>(i)] = core.step();
    }
    ++rotate;
    ++wall;
    DECIMATE_CHECK(wall < cfg_.max_cycles, "cluster exceeded max cycles");
  }
  return collect(wall);
}

}  // namespace decimate
