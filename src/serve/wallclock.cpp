#include "serve/wallclock.hpp"

#include <algorithm>
#include <sstream>

#include "common/rng.hpp"
#include "serve/fault.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace decimate {

namespace {

std::string what_of(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown error";
  }
}

bool is_transient(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const fault::FaultInjectedError&) {
    return true;
  } catch (...) {
    return false;
  }
}

void sleep_ns(uint64_t ns) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

}  // namespace

const char* to_string(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kOk: return "ok";
    case ServeOutcome::kRejected: return "rejected";
    case ServeOutcome::kShed: return "shed";
    case ServeOutcome::kFailed: return "failed";
  }
  return "?";
}

WallClockServer::WallClockServer(PlanStore& store,
                                 const DispatchConfig& dispatch_cfg,
                                 const WallClockConfig& cfg)
    : store_(store),
      dispatch_cfg_(dispatch_cfg),
      cfg_(cfg),
      epoch_(std::chrono::steady_clock::now()) {
  DECIMATE_CHECK(cfg_.executors >= 1, "need at least one executor");
  DECIMATE_CHECK(cfg_.max_batch >= 1, "max_batch must be >= 1");
  // One Dispatcher per executor: Dispatcher (and its MultiClusterEngine)
  // is single-caller by design; per-thread instances over the shared
  // thread-safe PlanStore make the concurrency story trivial.
  for (int i = 0; i < cfg_.executors; ++i) {
    dispatchers_.push_back(
        std::make_unique<Dispatcher>(store_, dispatch_cfg_));
  }
  // normalized fused sizes (sorted, containing 1) for the cycle tables
  dispatch_cfg_ = dispatchers_.front()->config();
  for (int i = 0; i < cfg_.executors; ++i) {
    executor_threads_.emplace_back([this, i] { executor_loop(i); });
  }
}

WallClockServer::~WallClockServer() {
  {
    const std::lock_guard<std::mutex> lock(exec_mu_);
    stop_ = true;
  }
  exec_cv_.notify_all();
  for (std::thread& t : executor_threads_) t.join();
}

uint64_t WallClockServer::now_ns() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void WallClockServer::warm(int model) {
  trace::TraceScope span(trace::Cat::kServe, "wallclock.warm");
  for (auto& d : dispatchers_) d->warm(model);
  // cycle table per fused batch size (the store compiled these in warm)
  std::vector<std::pair<int, uint64_t>> table;
  for (const int b : dispatch_cfg_.fused_batches) {
    table.emplace_back(b, ExecutionEngine::modeled_batch_cycles(
                              store_.plan(model, b, 1), b));
  }
  // Calibration: one timed single-image run seeds (or refreshes) the
  // ns/cycle EWMA that translates modeled cycles into wall predictions.
  // Two runs, keep the faster — the first pays cold caches.
  const CompiledPlan& single = store_.plan(model, 1, 1);
  Rng rng(0x5eedULL + static_cast<uint64_t>(model));
  const Tensor8 input = Tensor8::random(store_.graph(model).node(0).out_shape,
                                        rng);
  uint64_t best_ns = UINT64_MAX;
  for (int i = 0; i < 2; ++i) {
    const uint64_t t0 = now_ns();
    recovery_engine_.run(single, input);
    best_ns = std::min(best_ns, now_ns() - t0);
  }
  const uint64_t single_cycles =
      ExecutionEngine::modeled_batch_cycles(single, 1);
  const double measured =
      static_cast<double>(best_ns) / static_cast<double>(single_cycles);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    batch_cycles_[model] = std::move(table);
    ns_per_cycle_ =
        ns_per_cycle_ == 0.0 ? measured : 0.5 * ns_per_cycle_ + 0.5 * measured;
  }
}

uint64_t WallClockServer::modeled_cycles_for(int model, int batch) const {
  const auto it = batch_cycles_.find(model);
  DECIMATE_CHECK(it != batch_cycles_.end(),
                 "model " << model << " was not warm()ed");
  // greedy chunk decomposition, mirroring Dispatcher::fused_chunks
  uint64_t cycles = 0;
  int n = batch;
  while (n > 0) {
    const std::pair<int, uint64_t>* best = &it->second.front();
    for (const auto& entry : it->second) {
      if (entry.first <= n) best = &entry;
    }
    cycles += best->second;
    n -= best->first;
  }
  return cycles;
}

uint64_t WallClockServer::predicted_exec_ns_locked(int model,
                                                   int batch) const {
  DECIMATE_CHECK(ns_per_cycle_ > 0.0,
                 "model " << model << " was not warm()ed (no calibration)");
  return static_cast<uint64_t>(
      static_cast<double>(modeled_cycles_for(model, batch)) * ns_per_cycle_);
}

uint64_t WallClockServer::predicted_exec_ns(int model, int batch) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return predicted_exec_ns_locked(model, batch);
}

double WallClockServer::sustained_img_per_s(int model) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = batch_cycles_.find(model);
  DECIMATE_CHECK(it != batch_cycles_.end(),
                 "model " << model << " was not warm()ed");
  const int b = it->second.back().first;  // largest fused size
  const uint64_t ns = predicted_exec_ns_locked(model, b);
  return ns == 0 ? 0.0 : static_cast<double>(b) * 1e9 /
                             static_cast<double>(ns);
}

int WallClockServer::brownout_level() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return brownout_level_;
}

double WallClockServer::ns_per_cycle() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ns_per_cycle_;
}

void WallClockServer::record_terminal(const QueuedRequest& qr,
                                      ServeOutcome outcome, ServeReason reason,
                                      const std::string& detail,
                                      uint64_t dispatch_ns) {
  // mu_ must be held by the caller.
  WallServed w;
  w.id = qr.req.id;
  w.model = qr.req.model;
  w.outcome = outcome;
  w.reason = reason;
  w.detail = detail;
  w.arrival_ns = qr.arrival_ns;
  w.deadline_abs_ns = qr.deadline_abs_ns;
  w.dispatch_ns = dispatch_ns;
  w.completion_ns = now_ns();
  w.modeled_exec_ns = qr.predicted_exec_ns;
  std::string counter_name = "serve.wall.";
  counter_name += to_string(outcome);
  counter_name += '.';
  counter_name += to_string(reason);
  metrics::registry().counter(counter_name).inc();
  trace::instant(trace::Cat::kServe, "wallclock.terminal", w.id,
                 trace::Flow::kEnd, nullptr, 0, "reason", to_string(reason));
  done_.push_back(std::move(w));
}

void WallClockServer::submit(WallRequest r) {
  const uint64_t now = now_ns();
  auto& reg = metrics::registry();
  trace::instant(trace::Cat::kServe, "wallclock.arrival", r.id,
                 trace::Flow::kStart);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    DECIMATE_CHECK(!closed_, "submit after close");
    reg.counter("serve.wall.submitted").inc();
    const uint64_t rel = r.deadline_ns != 0 ? r.deadline_ns : cfg_.deadline_ns;
    QueuedRequest q;
    q.arrival_ns = now;
    q.deadline_abs_ns = now + rel;
    q.predicted_exec_ns = predicted_exec_ns_locked(r.model, 1);
    q.req = std::move(r);
    const ServeReason why = admission_decision(
        cfg_.admission, now, q.deadline_abs_ns, q.predicted_exec_ns,
        inflight_pred_ns_ + queue_.backlog_ns(), queue_.size());
    if (why != ServeReason::kNone) {
      record_terminal(q, ServeOutcome::kRejected, why, "", 0);
      return;
    }
    reg.counter("serve.wall.admitted").inc();
    queue_.push(std::move(q));
    // bounded inbox: evict the least valuable entry (possibly the one
    // that just arrived) until the depth policy holds again
    while (queue_.size() > cfg_.admission.max_queue_depth) {
      const QueuedRequest victim = queue_.shed_one();
      record_terminal(victim, ServeOutcome::kShed,
                      ServeReason::kShedQueueDepth, "", 0);
    }
    reg.gauge("serve.wall.queue_depth").set(
        static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_all();
}

void WallClockServer::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void WallClockServer::update_brownout_locked(size_t depth) {
  if (!cfg_.brownout) return;
  const size_t d0 = cfg_.brownout_depth != 0
                        ? cfg_.brownout_depth
                        : 4 * static_cast<size_t>(cfg_.max_batch);
  const int level = depth >= 3 * d0 ? 3 : depth >= 2 * d0 ? 2
                                      : depth >= d0       ? 1
                                                          : 0;
  if (level != brownout_level_) {
    auto& reg = metrics::registry();
    reg.counter("serve.wall.brownout_transitions").inc();
    reg.gauge("serve.wall.brownout_level").set(level);
    trace::instant(trace::Cat::kServe, "wallclock.brownout", 0,
                   trace::Flow::kNone, "level", level);
    brownout_level_ = level;
  }
}

void WallClockServer::shed_infeasible_locked(uint64_t now) {
  // serve-or-shed over the whole queue: walking in deadline (EDF) order,
  // an entry survives only if everything surviving ahead of it plus its
  // own service still fits its deadline
  std::vector<QueuedRequest> all = queue_.drain();
  uint64_t cum_ns = 0;
  for (QueuedRequest& qr : all) {
    const double need = static_cast<double>(cum_ns + qr.predicted_exec_ns) *
                        cfg_.admission.headroom;
    if (static_cast<double>(now) + need >
        static_cast<double>(qr.deadline_abs_ns)) {
      record_terminal(qr, ServeOutcome::kShed, ServeReason::kShedPredictedWait,
                      "brown-out serve-or-shed", 0);
    } else {
      cum_ns += qr.predicted_exec_ns;
      queue_.push(std::move(qr));
    }
  }
}

std::vector<WallServed> WallClockServer::serve() {
  trace::set_thread_name("serve.wallclock");
  trace::TraceScope serve_span(trace::Cat::kServe, "wallclock.serve");
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) break;  // closed and drained
    update_brownout_locked(queue_.size());
    if (brownout_level_ >= 3 && cfg_.admission.shedding) {
      shed_infeasible_locked(now_ns());
      if (queue_.empty()) continue;
    }
    // brown-out shrinks the co-dispatched batch (level 1 halves it,
    // level 2+ quarters it) to cap the latency any one request donates
    // to its groupmates
    const int eff_batch =
        std::max(1, cfg_.max_batch >> std::min(brownout_level_, 2));
    const int model = queue_.front().req.model;
    std::vector<QueuedRequest> batch =
        queue_.pop_model_batch(model, static_cast<size_t>(eff_batch));
    metrics::registry().gauge("serve.wall.queue_depth").set(
        static_cast<int64_t>(queue_.size()));
    // final serve-or-shed: if even starting now cannot meet a member's
    // deadline, a typed shed beats a guaranteed miss
    std::vector<QueuedRequest> keep;
    keep.reserve(batch.size());
    const uint64_t now = now_ns();
    const uint64_t pred =
        predicted_exec_ns_locked(model, static_cast<int>(batch.size()));
    for (QueuedRequest& qr : batch) {
      const double done_at =
          static_cast<double>(now) +
          static_cast<double>(pred) * cfg_.admission.headroom;
      if (cfg_.admission.shedding &&
          done_at > static_cast<double>(qr.deadline_abs_ns)) {
        record_terminal(qr, ServeOutcome::kShed,
                        ServeReason::kShedPredictedWait, "", 0);
      } else {
        keep.push_back(std::move(qr));
      }
    }
    if (keep.empty()) continue;
    lock.unlock();
    run_batch_with_recovery(std::move(keep));
    lock.lock();
  }
  DECIMATE_CHECK(queue_.empty(), "serve loop exited with queued requests");
  return std::move(done_);
}

void WallClockServer::run_batch_with_recovery(
    std::vector<QueuedRequest> batch) {
  auto& reg = metrics::registry();
  const int model = batch.front().req.model;
  const int n = static_cast<int>(batch.size());
  trace::TraceScope span(trace::Cat::kServe, "wallclock.batch");
  span.arg("batch", n);
  span.flow(batch.front().req.id, trace::Flow::kStep);

  uint64_t pred = 0;
  SloConfig slo;
  std::optional<ServeMode> force_mode;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    pred = predicted_exec_ns_locked(model, n);
    // translate the tightest remaining wall budget into a modeled cycle
    // budget: the dispatcher then shards tight batches and fuses loose
    // ones exactly as it does on the virtual timeline
    uint64_t min_deadline = UINT64_MAX;
    for (const QueuedRequest& qr : batch) {
      min_deadline = std::min(min_deadline, qr.deadline_abs_ns);
    }
    const uint64_t now = now_ns();
    const uint64_t budget_ns = min_deadline > now ? min_deadline - now : 0;
    slo.deadline_cycles =
        ns_per_cycle_ > 0.0
            ? static_cast<uint64_t>(static_cast<double>(budget_ns) /
                                    ns_per_cycle_)
            : UINT64_MAX;
    slo.max_batch = n;
    if (cfg_.brownout && brownout_level_ >= 2 &&
        dispatch_cfg_.num_clusters > 1) {
      force_mode = ServeMode::kShardedSingle;  // latency over throughput
    }
    inflight_pred_ns_ += pred;
  }
  const uint64_t first_dispatch_ns = now_ns();
  const uint64_t watchdog_ns =
      std::max(cfg_.watchdog_floor_ns,
               static_cast<uint64_t>(cfg_.watchdog_factor *
                                     static_cast<double>(pred)));

  int attempt = 0;
  bool post_quarantine = false;
  for (;;) {
    auto job = std::make_shared<Job>();
    job->model = model;
    job->slo = slo;
    job->force_mode = force_mode;
    job->ids.reserve(batch.size());
    job->inputs.reserve(batch.size());
    for (const QueuedRequest& qr : batch) {
      job->ids.push_back(qr.req.id);
      job->inputs.push_back(qr.req.input);  // copy: survives abandonment
    }
    {
      const std::lock_guard<std::mutex> lock(exec_mu_);
      jobs_.push_back(job);
    }
    exec_cv_.notify_one();

    bool finished = false;
    {
      std::unique_lock<std::mutex> jl(job->mu);
      finished = job->cv.wait_for(jl, std::chrono::nanoseconds(watchdog_ns),
                                  [&] { return job->done; });
    }
    if (!finished) {
      // Watchdog: abandon the straggler (its cancel flag unsticks an
      // injected stall; a late result is discarded with the job) and
      // recover every member individually on this thread.
      job->abandoned.store(true, std::memory_order_release);
      reg.counter("serve.wall.timeouts").inc();
      trace::instant(trace::Cat::kServe, "wallclock.watchdog_timeout", 0,
                     trace::Flow::kNone, "batch", n);
      {
        const std::lock_guard<std::mutex> lock(mu_);
        inflight_pred_ns_ -= pred;
      }
      redispatch_per_image(batch, first_dispatch_ns, attempt);
      return;
    }
    if (!job->error) {
      {
        const std::lock_guard<std::mutex> lock(mu_);
        inflight_pred_ns_ -= pred;
      }
      record_success(batch, *job, attempt, first_dispatch_ns);
      return;
    }

    // dispatch failed: walk the recovery ladder
    reg.counter(is_transient(job->error) ? "serve.wall.faults.transient"
                                         : "serve.wall.faults.other")
        .inc();
    ++attempt;
    if (attempt <= cfg_.max_retries) {
      reg.counter("serve.wall.retries").inc();
      sleep_ns(cfg_.retry_backoff_ns << (attempt - 1));
      continue;
    }
    const std::string detail = what_of(job->error);
    int fails = 0;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      fails = ++consecutive_failures_[model];
    }
    if (fails >= cfg_.quarantine_after && !post_quarantine) {
      // N consecutive batch failures: distrust the cached/persisted
      // plans, compile fresh, and give the batch one more round
      quarantine_model(model, n);
      {
        const std::lock_guard<std::mutex> lock(mu_);
        consecutive_failures_[model] = 0;
      }
      post_quarantine = true;
      attempt = 0;
      continue;
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      inflight_pred_ns_ -= pred;
      for (const QueuedRequest& qr : batch) {
        record_terminal(qr, ServeOutcome::kFailed, ServeReason::kWorkerFault,
                        detail, first_dispatch_ns);
      }
    }
    return;
  }
}

void WallClockServer::quarantine_model(int model, int batch_size) {
  // The failed dispatch could have touched any of the model's warmed
  // identities (fused chunk plans, the sharded plan, the single-image
  // plan), so all of them are distrusted together. Recompiles are lazy —
  // only configs that serve again pay.
  (void)batch_size;
  metrics::registry().counter("serve.wall.quarantines").inc();
  trace::instant(trace::Cat::kServe, "wallclock.quarantine", 0,
                 trace::Flow::kNone, "model", model);
  for (const int b : dispatch_cfg_.fused_batches) {
    store_.quarantine(model, b, 1);
  }
  if (dispatch_cfg_.num_clusters > 1) {
    store_.quarantine(model, 1, dispatch_cfg_.num_clusters);
  }
}

void WallClockServer::record_success(const std::vector<QueuedRequest>& batch,
                                     Job& job, int retries_used,
                                     uint64_t dispatch_ns) {
  auto& reg = metrics::registry();
  const uint64_t wall_exec = job.end_ns - job.start_ns;
  uint64_t makespan_cycles = 0;
  for (const Served& s : job.result.served) {
    makespan_cycles = std::max(makespan_cycles, s.stats.completion_cycles);
  }
  const std::lock_guard<std::mutex> lock(mu_);
  if (makespan_cycles > 0 && wall_exec > 0) {
    // calibration feedback: what a modeled cycle cost on the wall just now
    const double measured = static_cast<double>(wall_exec) /
                            static_cast<double>(makespan_cycles);
    ns_per_cycle_ = 0.7 * ns_per_cycle_ + 0.3 * measured;
    const uint64_t modeled_ns = static_cast<uint64_t>(
        static_cast<double>(makespan_cycles) * ns_per_cycle_);
    if (modeled_ns > 0) {
      reg.histogram("serve.wall.model_error_pct")
          .observe(100 * wall_exec / modeled_ns);
    }
  }
  DECIMATE_CHECK(job.result.served.size() == batch.size(),
                 "dispatch result does not cover the batch");
  for (size_t i = 0; i < batch.size(); ++i) {
    const QueuedRequest& qr = batch[i];
    Served& s = job.result.served[i];
    WallServed w;
    w.id = qr.req.id;
    w.model = qr.req.model;
    w.outcome = ServeOutcome::kOk;
    w.mode = s.stats.mode;
    w.group_size = s.stats.group_size;
    w.retries = retries_used;
    w.arrival_ns = qr.arrival_ns;
    w.dispatch_ns = dispatch_ns;
    w.completion_ns = job.end_ns;
    w.deadline_abs_ns = qr.deadline_abs_ns;
    w.modeled_exec_ns = static_cast<uint64_t>(
        static_cast<double>(s.stats.completion_cycles) * ns_per_cycle_);
    w.deadline_hit = w.completion_ns <= w.deadline_abs_ns;
    w.output = std::move(s.output);
    reg.counter("serve.wall.served_ok").inc();
    reg.counter(w.deadline_hit ? "serve.wall.deadline.hits"
                               : "serve.wall.deadline.misses")
        .inc();
    reg.histogram("serve.wall.latency_ns").observe(w.latency_ns());
    reg.histogram("serve.wall.exec_ns").observe(wall_exec);
    reg.histogram("serve.wall.modeled_exec_ns").observe(w.modeled_exec_ns);
    done_.push_back(std::move(w));
  }
  consecutive_failures_[batch.front().req.model] = 0;
}

void WallClockServer::redispatch_per_image(std::vector<QueuedRequest>& batch,
                                           uint64_t first_dispatch_ns,
                                           int retries_used) {
  auto& reg = metrics::registry();
  trace::TraceScope span(trace::Cat::kServe, "wallclock.redispatch");
  span.arg("batch", static_cast<int64_t>(batch.size()));
  reg.counter("serve.wall.redispatches").inc(batch.size());
  // the per-image generalization of run_chunk_with_fallback: the whole
  // batch failed as a unit, so each member re-runs alone on the serving
  // thread's recovery engine (plan already compiled at warm)
  const CompiledPlan& single = store_.plan(batch.front().req.model, 1, 1);
  const uint64_t single_cycles =
      ExecutionEngine::modeled_batch_cycles(single, 1);
  for (QueuedRequest& qr : batch) {
    std::exception_ptr last;
    bool ok = false;
    Tensor8 out;
    for (int a = 0; a <= cfg_.max_retries && !ok; ++a) {
      try {
        if (a > 0) {
          reg.counter("serve.wall.retries").inc();
          sleep_ns(cfg_.retry_backoff_ns << (a - 1));
        }
        fault::on_site(fault::Site::kDispatchExec);
        out = recovery_engine_.run(single, qr.req.input).output;
        ok = true;
      } catch (...) {
        last = std::current_exception();
      }
    }
    const std::lock_guard<std::mutex> lock(mu_);
    if (!ok) {
      record_terminal(qr, ServeOutcome::kFailed, ServeReason::kTimeout,
                      what_of(last), first_dispatch_ns);
      continue;
    }
    WallServed w;
    w.id = qr.req.id;
    w.model = qr.req.model;
    w.outcome = ServeOutcome::kOk;
    w.mode = ServeMode::kBatchFused;
    w.group_size = 1;
    w.retries = retries_used;
    w.redispatched = true;
    w.arrival_ns = qr.arrival_ns;
    w.dispatch_ns = first_dispatch_ns;
    w.completion_ns = now_ns();
    w.deadline_abs_ns = qr.deadline_abs_ns;
    w.modeled_exec_ns = static_cast<uint64_t>(
        static_cast<double>(single_cycles) * ns_per_cycle_);
    w.deadline_hit = w.completion_ns <= w.deadline_abs_ns;
    w.output = std::move(out);
    reg.counter("serve.wall.served_ok").inc();
    reg.counter(w.deadline_hit ? "serve.wall.deadline.hits"
                               : "serve.wall.deadline.misses")
        .inc();
    reg.histogram("serve.wall.latency_ns").observe(w.latency_ns());
    done_.push_back(std::move(w));
  }
}

void WallClockServer::executor_loop(int idx) {
  trace::set_thread_name("serve.executor");
  Dispatcher& dispatcher = *dispatchers_[static_cast<size_t>(idx)];
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(exec_mu_);
      exec_cv_.wait(lock, [&] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ and drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    if (job->abandoned.load(std::memory_order_acquire)) {
      // the serving thread already gave up on this job; nobody waits
      const std::lock_guard<std::mutex> jl(job->mu);
      job->done = true;
      continue;
    }
    job->start_ns = now_ns();
    // an injected stall inside this job wakes early once the watchdog
    // abandons it
    fault::set_cancel_flag(&job->abandoned);
    FormedBatch fb;
    fb.model = job->model;
    fb.dispatch_cycles = 0;  // modeled completions become batch-relative
    fb.requests.reserve(job->ids.size());
    for (size_t i = 0; i < job->ids.size(); ++i) {
      Request r;
      r.id = job->ids[i];
      r.model = job->model;
      r.arrival_cycles = 0;
      r.input = std::move(job->inputs[i]);
      fb.requests.push_back(std::move(r));
    }
    try {
      trace::TraceScope exec_span(trace::Cat::kServe, "wallclock.exec");
      exec_span.arg("batch", static_cast<int64_t>(fb.requests.size()));
      job->result = dispatcher.dispatch(std::move(fb), job->slo,
                                        job->force_mode);
    } catch (...) {
      job->error = std::current_exception();
    }
    fault::set_cancel_flag(nullptr);
    job->end_ns = now_ns();
    {
      const std::lock_guard<std::mutex> jl(job->mu);
      job->done = true;
    }
    job->cv.notify_all();
  }
}

}  // namespace decimate
