#pragma once
// WallClockServer — ServerMode::kWallClock: the serving runtime on real
// time, real threads, and real failures.
//
// Where Server replays a deterministic modeled-cycle timeline, this mode
// is a server: submit() is called from any thread at actual wall times,
// deadlines are steady-clock nanoseconds, and batches execute on the
// PR 6 host kernels through per-executor Dispatchers. Determinism moves
// down a level — each served output is still bit-exact with a sequential
// ExecutionEngine::run, but WHICH requests complete (vs shed/reject)
// depends on real machine speed, which is the point.
//
// Flow of a request:
//
//   submit() ── admission_decision ──reject──> WallServed{kRejected}
//      │ admit
//      v
//   EdfQueue (bounded; overflow sheds lowest-value/latest-deadline)
//      │
//   serve() loop: forms the earliest-deadline same-model batch (size
//   shrinks under brown-out), sheds entries whose deadline can no longer
//   be met even if started now, and hands the batch to an executor
//   thread; the serving thread waits with a watchdog.
//      │
//   executor: Dispatcher::dispatch against the host kernels (mode chosen
//   by modeled cycles under the request's remaining wall budget,
//   translated via the calibrated ns/cycle; brown-out >= 2 forces
//   kShardedSingle).
//
// Fault-tolerance ladder, in escalation order:
//  1. retry-with-backoff: a failed dispatch retries up to max_retries
//     (injected FaultInjectedErrors and real transient errors alike).
//  2. watchdog + per-image redispatch: if the executor does not finish
//     within max(watchdog_floor_ns, watchdog_factor x predicted), the job
//     is abandoned (its cancel flag unsticks injected stalls; a late
//     straggler result is discarded) and every request re-runs
//     individually on the serving thread's recovery engine — the same
//     generalization run_chunk_with_fallback applies to fused chunks.
//  3. quarantine: quarantine_after consecutive batch failures for a model
//     quarantines its plan fingerprints in the PlanStore (references stay
//     valid; next use compiles fresh, bypassing the registry) and the
//     batch gets one post-quarantine attempt on the fresh plans.
//  4. brown-out: queue depth beyond brownout_depth degrades service
//     rather than latency — level 1 halves the batch, level 2 also forces
//     the sharded low-latency mode, level 3 additionally sheds every
//     queued request that could not finish even if started immediately.
//
// Every terminal outcome is typed (ServeOutcome + ServeReason); nothing
// is silently dropped, nothing blocks forever. Metrics live under
// serve.wall.*, spans under Cat::kServe on the "serve.wallclock" and
// "serve.executor" threads.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/dispatcher.hpp"

namespace decimate {

struct WallClockConfig {
  /// Default per-request SLO, relative to arrival (WallRequest overrides).
  uint64_t deadline_ns = 50'000'000;
  /// Requests co-dispatched per batch at brown-out level 0.
  int max_batch = 4;
  AdmissionPolicy admission;
  /// Executor threads (>= 1). One is enough for throughput (a dispatch
  /// already fans out over the worker pool); the second keeps serving
  /// while an abandoned straggler finishes dying.
  int executors = 2;

  // -- fault tolerance --
  /// Full-batch dispatch attempts after the first failure.
  int max_retries = 2;
  /// Backoff before retry k doubles from this base.
  uint64_t retry_backoff_ns = 200'000;
  /// Watchdog: a dispatch is abandoned after
  /// max(watchdog_floor_ns, watchdog_factor x predicted exec ns).
  double watchdog_factor = 8.0;
  uint64_t watchdog_floor_ns = 2'000'000;
  /// Consecutive failed batches (per model) before plan quarantine.
  int quarantine_after = 3;

  // -- brown-out --
  bool brownout = true;
  /// Queue depth entering level 1 (2x -> level 2, 3x -> level 3).
  /// 0 = auto: 4 x max_batch.
  size_t brownout_depth = 0;
};

/// How a request's story ended.
enum class ServeOutcome : uint8_t {
  kOk = 0,
  kRejected,  // refused at submit() (admission control / full queue)
  kShed,      // admitted, then load-shed before execution
  kFailed,    // executed but kept failing after the whole recovery ladder
};

const char* to_string(ServeOutcome outcome);

/// Per-request wall-clock serving report. Times are steady-clock ns on
/// the server's epoch (now_ns()).
struct WallServed {
  uint64_t id = 0;
  int model = 0;
  ServeOutcome outcome = ServeOutcome::kOk;
  ServeReason reason = ServeReason::kNone;  // != kNone iff outcome != kOk
  std::string detail;                       // failure detail for non-kOk
  Tensor8 output;                           // valid iff outcome == kOk

  ServeMode mode = ServeMode::kBatchFused;
  int group_size = 0;
  int retries = 0;           // full-batch dispatch retries consumed
  bool redispatched = false; // recovered via per-image redispatch

  uint64_t arrival_ns = 0;
  uint64_t dispatch_ns = 0;     // first dispatch attempt (0: never ran)
  uint64_t completion_ns = 0;   // outcome decided (incl. reject/shed time)
  uint64_t deadline_abs_ns = 0;
  uint64_t modeled_exec_ns = 0; // calibrated model of the exec time
  bool deadline_hit = false;    // only meaningful for kOk

  uint64_t latency_ns() const { return completion_ns - arrival_ns; }

  /// The typed error for a non-kOk outcome.
  ServeError error() const { return {reason, id, detail}; }
};

class WallClockServer {
 public:
  static constexpr ServerMode kMode = ServerMode::kWallClock;

  /// Executors get their own Dispatchers over `store` (Dispatcher and
  /// MultiClusterEngine are single-caller by design; per-thread instances
  /// make the concurrency story trivial), plus one recovery engine for
  /// per-image redispatch on the serving thread.
  WallClockServer(PlanStore& store, const DispatchConfig& dispatch_cfg,
                  const WallClockConfig& cfg);
  ~WallClockServer();
  WallClockServer(const WallClockServer&) = delete;
  WallClockServer& operator=(const WallClockServer&) = delete;

  /// Compile every plan serving can request for `model` on every
  /// executor, then run one calibration inference to seed the ns/cycle
  /// EWMA. Must run before submit() sees the model.
  void warm(int model);

  /// Thread-safe. Stamps arrival, decides admission, enqueues or records
  /// the typed rejection. Never blocks on execution.
  void submit(WallRequest r);

  /// No further submits; serve() returns once the queue drains.
  void close();

  /// Run the serving loop on the caller's thread until close()d and
  /// drained. Returns every request's report (completion order).
  std::vector<WallServed> serve();

  /// Steady-clock ns since this server's construction.
  uint64_t now_ns() const;

  /// Calibrated wall prediction for one batch of `batch` images (fused
  /// chunk decomposition x ns/cycle). Thread-safe; model must be warm.
  uint64_t predicted_exec_ns(int model, int batch) const;

  /// Modeled sustained throughput at the largest warmed fused batch —
  /// the rate admission control is defending.
  double sustained_img_per_s(int model) const;

  /// Current brown-out level (0-3), for tests/benches.
  int brownout_level() const;

  double ns_per_cycle() const;

 private:
  struct Job {
    int model = 0;
    std::vector<uint64_t> ids;
    std::vector<Tensor8> inputs;  // owned copies: survive abandonment
    SloConfig slo;
    std::optional<ServeMode> force_mode;
    std::atomic<bool> abandoned{false};

    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    DispatchResult result;
    std::exception_ptr error;
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
  };

  void executor_loop(int idx);
  void run_batch_with_recovery(std::vector<QueuedRequest> batch);
  void redispatch_per_image(std::vector<QueuedRequest>& batch,
                            uint64_t first_dispatch_ns, int retries_used);
  void record_success(const std::vector<QueuedRequest>& batch, Job& job,
                      int retries_used, uint64_t dispatch_ns);
  void record_terminal(const QueuedRequest& qr, ServeOutcome outcome,
                       ServeReason reason, const std::string& detail,
                       uint64_t dispatch_ns);
  uint64_t modeled_cycles_for(int model, int batch) const;  // mu_ held
  uint64_t predicted_exec_ns_locked(int model, int batch) const;
  void update_brownout_locked(size_t depth);
  void shed_infeasible_locked(uint64_t now);
  void quarantine_model(int model, int batch_size);

  PlanStore& store_;
  DispatchConfig dispatch_cfg_;
  WallClockConfig cfg_;
  std::chrono::steady_clock::time_point epoch_;

  // serving state (mu_): queue, reports, calibration, brown-out
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  EdfQueue queue_;
  std::vector<WallServed> done_;
  std::map<int, std::vector<std::pair<int, uint64_t>>> batch_cycles_;
  double ns_per_cycle_ = 0.0;  // EWMA, seeded by warm()'s timed run
  uint64_t inflight_pred_ns_ = 0;
  int brownout_level_ = 0;
  std::map<int, int> consecutive_failures_;

  // executor state (exec_mu_)
  std::mutex exec_mu_;
  std::condition_variable exec_cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
  std::vector<std::unique_ptr<Dispatcher>> dispatchers_;
  std::vector<std::thread> executor_threads_;

  // per-image redispatch on the serving thread (never contended)
  ExecutionEngine recovery_engine_;
};

}  // namespace decimate
