#include "serve/fault.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace decimate::fault {

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

// Cooperative cancellation target for injected stalls on this thread.
thread_local const std::atomic<bool>* tl_cancel = nullptr;

// splitmix64: decorrelates (seed, seq) into a bit position.
uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

const char* injected_counter_name(Site site) {
  switch (site) {
    case Site::kWorkerTask: return "fault.injected.worker_task";
    case Site::kRegistryLoad: return "fault.injected.registry_load";
    case Site::kDispatchExec: return "fault.injected.dispatch_exec";
  }
  return "fault.injected.unknown";
}

}  // namespace

const char* to_string(Site site) {
  switch (site) {
    case Site::kWorkerTask: return "worker_task";
    case Site::kRegistryLoad: return "registry_load";
    case Site::kDispatchExec: return "dispatch_exec";
  }
  return "?";
}

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kNone: return "none";
    case Kind::kException: return "exception";
    case Kind::kStall: return "stall";
    case Kind::kBitFlip: return "bit_flip";
  }
  return "?";
}

FaultInjectedError::FaultInjectedError(Site site, uint64_t seq)
    : Error([&] {
        std::ostringstream os;
        os << "injected fault at site " << to_string(site) << " (event #"
           << seq << ")";
        return os.str();
      }()),
      site_(site),
      seq_(seq) {}

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed) {}

void FaultInjector::set_plan(Site site, const SitePlan& plan) {
  const std::lock_guard<std::mutex> lock(mu_);
  plans_[static_cast<int>(site)] = plan;
}

uint64_t FaultInjector::events(Site site) const {
  return events_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

uint64_t FaultInjector::injected(Site site) const {
  return injected_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

Fired FaultInjector::fire(Site site) {
  const int s = static_cast<int>(site);
  const uint64_t seq = events_[s].fetch_add(1, std::memory_order_relaxed);
  Kind kind = Kind::kNone;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const SitePlan& plan = plans_[s];
    const bool scheduled = plan.kind != Kind::kNone && plan.period > 0 &&
                           seq >= plan.phase &&
                           (seq - plan.phase) % plan.period == 0;
    if (scheduled && (plan.count < 0 || fired_[s] < plan.count)) {
      ++fired_[s];
      kind = plan.kind;
    }
  }
  if (kind == Kind::kNone) return {Kind::kNone, seq};

  injected_[s].fetch_add(1, std::memory_order_relaxed);
  metrics::registry().counter(injected_counter_name(site)).inc();
  trace::instant(trace::Cat::kFault, "fault.inject", 0, trace::Flow::kNone,
                 "seq", static_cast<int64_t>(seq), "kind", to_string(kind));

  switch (kind) {
    case Kind::kException:
      throw FaultInjectedError(site, seq);
    case Kind::kStall: {
      // Chunked sleep so a watchdog that abandons the surrounding job can
      // unstick this thread through its cancel flag instead of waiting
      // out the full stall.
      const std::atomic<bool>* cancel = tl_cancel;
      constexpr uint64_t kChunkNs = 100'000;
      uint64_t slept = 0;
      while (slept < stall_ns_) {
        if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
          break;
        }
        const uint64_t step = std::min(kChunkNs, stall_ns_ - slept);
        std::this_thread::sleep_for(std::chrono::nanoseconds(step));
        slept += step;
      }
      break;
    }
    case Kind::kBitFlip:
    case Kind::kNone:
      break;
  }
  return {kind, seq};
}

void FaultInjector::flip_bit(std::vector<uint8_t>& bytes,
                             uint64_t seq) const {
  DECIMATE_CHECK(!bytes.empty(), "cannot flip a bit in an empty buffer");
  // Restrict to the second half: for .plan artifacts that is inside the
  // CRC-covered weight section, never the inter-section alignment padding
  // a flip could silently hide in.
  const uint64_t half_bits = (bytes.size() - bytes.size() / 2) * 8;
  const uint64_t bit = mix(seed_ ^ mix(seq)) % half_bits;
  const uint64_t pos = bytes.size() / 2 + bit / 8;
  bytes[pos] ^= static_cast<uint8_t>(1U << (bit % 8));
}

void FaultInjector::install(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

FaultInjector* FaultInjector::installed() {
  return g_injector.load(std::memory_order_acquire);
}

void on_site(Site site) {
  FaultInjector* inj = g_injector.load(std::memory_order_relaxed);
  if (inj == nullptr) return;
  inj->fire(site);
}

void set_cancel_flag(const std::atomic<bool>* flag) { tl_cancel = flag; }

}  // namespace decimate::fault
