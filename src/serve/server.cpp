#include "serve/server.hpp"

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace decimate {

const char* to_string(ServerMode mode) {
  switch (mode) {
    case ServerMode::kVirtualCycle: return "virtual_cycle";
    case ServerMode::kWallClock: return "wall_clock";
  }
  return "?";
}

const char* to_string(ServeMode mode) {
  switch (mode) {
    case ServeMode::kBatchFused: return "batch_fused";
    case ServeMode::kShardedSingle: return "sharded_single";
    case ServeMode::kDataParallel: return "data_parallel";
  }
  return "?";
}

Server::Server(Dispatcher& dispatcher, const SloConfig& slo)
    : dispatcher_(dispatcher), batcher_(slo), slo_(slo) {}

void Server::submit(Request r) {
  const uint64_t id = r.id;
  const auto arrival = static_cast<int64_t>(r.arrival_cycles);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    DECIMATE_CHECK(!closed_, "submit after close");
    // checked against the last submission ever, not the inbox tail: the
    // serving loop may already have drained earlier requests, and a late
    // out-of-order arrival must fail here, at the offending submit
    DECIMATE_CHECK(r.arrival_cycles >= last_submitted_,
                   "arrivals must be submitted in nondecreasing order: got "
                       << r.arrival_cycles << " after " << last_submitted_);
    last_submitted_ = r.arrival_cycles;
    inbox_.push_back(std::move(r));
    metrics::registry().gauge("serve.inbox_depth").add(1);
  }
  metrics::registry().counter("serve.requests_submitted").inc();
  // the request's flow starts here, on the submitting thread
  trace::instant(trace::Cat::kServe, "request.arrival", id,
                 trace::Flow::kStart, "arrival_cycles", arrival);
  cv_.notify_all();
}

void Server::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<Served> Server::serve() {
  trace::set_thread_name("serve.loop");
  trace::TraceScope serve_span(trace::Cat::kServe, "server.serve");
  std::vector<Served> done;
  batches_ = 0;
  uint64_t free_at = 0;
  for (;;) {
    // snapshot what is known about the future: the earliest unadmitted
    // arrival, and whether anything more can ever arrive
    std::optional<uint64_t> next_arrival;
    bool drained;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!inbox_.empty()) next_arrival = inbox_.front().arrival_cycles;
      drained = closed_ && inbox_.empty();
    }

    if (auto batch = batcher_.try_form(free_at, next_arrival, drained)) {
      DispatchResult result = dispatcher_.dispatch(std::move(*batch), slo_);
      ++batches_;
      free_at = std::max(free_at, result.finish_cycles);
      for (Served& s : result.served) {
        trace::instant(trace::Cat::kServe, "request.reply", s.stats.id,
                       trace::Flow::kEnd, "latency_cycles",
                       static_cast<int64_t>(s.stats.latency_cycles()));
        done.push_back(std::move(s));
      }
      continue;
    }

    // undecidable: admit the next request if one is waiting, finish if
    // the stream is over, otherwise block for more information
    std::unique_lock<std::mutex> lock(mu_);
    if (!inbox_.empty()) {
      Request r = std::move(inbox_.front());
      inbox_.pop_front();
      lock.unlock();
      metrics::registry().gauge("serve.inbox_depth").add(-1);
      trace::instant(trace::Cat::kServe, "request.enqueue", r.id,
                     trace::Flow::kStep);
      batcher_.admit(std::move(r));
      continue;
    }
    if (closed_) {
      DECIMATE_CHECK(!batcher_.has_pending(),
                     "serve loop stalled with pending requests");
      break;
    }
    cv_.wait(lock,
             [this] { return closed_ || !inbox_.empty(); });
  }
  return done;
}

}  // namespace decimate
