#include "serve/admission.hpp"

#include <iterator>
#include <sstream>

namespace decimate {

const char* to_string(ServeReason reason) {
  switch (reason) {
    case ServeReason::kNone: return "none";
    case ServeReason::kAdmissionInfeasible: return "admission_infeasible";
    case ServeReason::kQueueFull: return "queue_full";
    case ServeReason::kShedQueueDepth: return "shed_queue_depth";
    case ServeReason::kShedPredictedWait: return "shed_predicted_wait";
    case ServeReason::kWorkerFault: return "worker_fault";
    case ServeReason::kTimeout: return "timeout";
  }
  return "?";
}

ServeError::ServeError(ServeReason reason, uint64_t request_id,
                       const std::string& detail)
    : Error([&] {
        std::ostringstream os;
        os << "request " << request_id << " not served ("
           << to_string(reason) << ")";
        if (!detail.empty()) os << ": " << detail;
        return os.str();
      }()),
      reason_(reason),
      request_id_(request_id) {}

ServeReason admission_decision(const AdmissionPolicy& policy, uint64_t now_ns,
                               uint64_t deadline_abs_ns,
                               uint64_t predicted_exec_ns, uint64_t backlog_ns,
                               size_t queue_depth) {
  // With shedding on, a full queue is not a rejection: the arrival is
  // admitted and the EDF queue evicts the least valuable entry instead
  // (which may turn out to be the arrival itself).
  if (!policy.shedding && queue_depth >= policy.max_queue_depth) {
    return ServeReason::kQueueFull;
  }
  if (policy.admission_control) {
    const double need =
        static_cast<double>(backlog_ns + predicted_exec_ns) * policy.headroom;
    if (static_cast<double>(now_ns) + need >
        static_cast<double>(deadline_abs_ns)) {
      return ServeReason::kAdmissionInfeasible;
    }
  }
  return ServeReason::kNone;
}

void EdfQueue::push(QueuedRequest q) {
  backlog_ns_ += q.predicted_exec_ns;
  auto it = q_.begin();
  while (it != q_.end() && it->deadline_abs_ns <= q.deadline_abs_ns) ++it;
  q_.insert(it, std::move(q));
}

const QueuedRequest& EdfQueue::front() const {
  DECIMATE_CHECK(!q_.empty(), "front() on an empty EdfQueue");
  return q_.front();
}

std::vector<QueuedRequest> EdfQueue::pop_model_batch(int model, size_t max) {
  std::vector<QueuedRequest> out;
  for (auto it = q_.begin(); it != q_.end() && out.size() < max;) {
    if (it->req.model != model) {
      ++it;
      continue;
    }
    backlog_ns_ -= it->predicted_exec_ns;
    out.push_back(std::move(*it));
    it = q_.erase(it);
  }
  return out;
}

std::vector<QueuedRequest> EdfQueue::drain() {
  std::vector<QueuedRequest> out;
  out.reserve(q_.size());
  for (QueuedRequest& q : q_) out.push_back(std::move(q));
  q_.clear();
  backlog_ns_ = 0;
  return out;
}

QueuedRequest EdfQueue::shed_one() {
  DECIMATE_CHECK(!q_.empty(), "shed_one() on an empty EdfQueue");
  auto victim = q_.begin();
  for (auto it = std::next(q_.begin()); it != q_.end(); ++it) {
    if (it->req.value < victim->req.value ||
        (it->req.value == victim->req.value &&
         (it->deadline_abs_ns > victim->deadline_abs_ns ||
          (it->deadline_abs_ns == victim->deadline_abs_ns &&
           it->arrival_ns > victim->arrival_ns)))) {
      victim = it;
    }
  }
  QueuedRequest out = std::move(*victim);
  q_.erase(victim);
  backlog_ns_ -= out.predicted_exec_ns;
  return out;
}

}  // namespace decimate
