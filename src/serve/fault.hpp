#pragma once
// FaultInjector: deterministic, seeded fault injection for exercising the
// serving stack's recovery paths.
//
// Production code calls the fault::on_site() / fire() hooks at three
// points:
//
//   kWorkerTask    WorkerPool::claim_tasks, before each task body runs
//   kRegistryLoad  PlanRegistry::load, after the artifact is mapped
//   kDispatchExec  Dispatcher::dispatch, before a batch executes (and the
//                  wall-clock server's per-image redispatch path)
//
// With no injector installed (the default, and the only state production
// ever sees) a hook costs one relaxed atomic load. Tests and the chaos
// bench install a process-wide FaultInjector whose per-site schedule
// decides, for the site's k-th event, whether to throw a
// FaultInjectedError (a transient worker/dispatch exception), stall the
// calling thread (a bounded sleep honoring the thread's cooperative
// cancel flag, modeling a hung worker), or report kBitFlip so the call
// site corrupts the bytes it is about to consume (registry load — the
// corruption then has to be caught by the real admission gate, not by the
// injector).
//
// Determinism: schedules are (period, phase, count) predicates over a
// per-site atomic event counter, so WHICH events fault is a pure function
// of how many events the site has seen — independent of thread
// interleaving — and the bit flipped by flip_bit() is a pure function of
// (seed, event index). Re-running a seeded test injects the same faults.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/check.hpp"

namespace decimate::fault {

/// Hook points in the serving stack (indices into the injector's plans).
enum class Site : uint8_t {
  kWorkerTask = 0,   // WorkerPool task bodies
  kRegistryLoad = 1, // PlanRegistry::load admission path
  kDispatchExec = 2, // Dispatcher execute / per-image redispatch
};
constexpr int kSiteCount = 3;

/// What the injector does when a scheduled event fires.
enum class Kind : uint8_t {
  kNone = 0,
  kException,  // throw FaultInjectedError from the hook
  kStall,      // sleep stall_ns (cancellable), then continue normally
  kBitFlip,    // return kBitFlip: the call site corrupts its own bytes
};

const char* to_string(Site site);
const char* to_string(Kind kind);

/// The transient fault the injector throws for Kind::kException. By
/// contract this error is retryable: the operation itself was sound and
/// only the injector failed it, which is exactly the shape of fault the
/// retry-with-backoff ladder is meant to absorb.
class FaultInjectedError : public Error {
 public:
  FaultInjectedError(Site site, uint64_t seq);
  Site site() const { return site_; }
  uint64_t seq() const { return seq_; }

 private:
  Site site_;
  uint64_t seq_;
};

/// Per-site schedule: event `seq` faults iff period > 0, seq >= phase,
/// (seq - phase) % period == 0, and fewer than `count` faults have fired
/// at the site so far (count < 0 = unlimited).
struct SitePlan {
  Kind kind = Kind::kNone;
  uint64_t period = 0;
  uint64_t phase = 0;
  int64_t count = -1;
};

/// Outcome of one fire(): the kind injected (kNone = nothing) and the
/// site event index it fired at (the flip_bit seed for kBitFlip).
struct Fired {
  Kind kind = Kind::kNone;
  uint64_t seq = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 1);

  /// Configure before install(); not safe to call while hooks may fire.
  void set_plan(Site site, const SitePlan& plan);
  void set_stall_ns(uint64_t ns) { stall_ns_ = ns; }

  /// Record one event at `site` and act on the schedule: kException
  /// throws FaultInjectedError, kStall sleeps (waking early once the
  /// calling thread's cancel flag rises), kBitFlip / kNone return so the
  /// call site decides. Thread-safe.
  Fired fire(Site site);

  /// Flip one (seed, seq)-deterministic bit in the second half of
  /// `bytes` — for artifacts that lands inside the CRC-covered weight
  /// section, so the corruption must be caught by the admission gate.
  void flip_bit(std::vector<uint8_t>& bytes, uint64_t seq) const;

  uint64_t events(Site site) const;
  uint64_t injected(Site site) const;

  /// Install as the process-wide injector (nullptr uninstalls). The
  /// injector must outlive its installation.
  static void install(FaultInjector* injector);
  static FaultInjector* installed();

 private:
  uint64_t seed_;
  uint64_t stall_ns_ = 2'000'000;  // 2 ms default stall
  mutable std::mutex mu_;          // guards plans_ + fired counts
  SitePlan plans_[kSiteCount];
  int64_t fired_[kSiteCount] = {0, 0, 0};
  std::atomic<uint64_t> events_[kSiteCount] = {0, 0, 0};
  std::atomic<uint64_t> injected_[kSiteCount] = {0, 0, 0};
};

/// Hook for sites that cannot act on kBitFlip themselves: fires the
/// installed injector (if any) and discards non-throwing outcomes. The
/// uninstalled fast path is a single relaxed atomic load.
void on_site(Site site);

/// Register `flag` (owned by the caller, may be nullptr to clear) as this
/// thread's cooperative cancel flag: an injected stall on this thread
/// wakes every 100us and returns early once *flag is true. The wall-clock
/// server points this at the job's `abandoned` flag so a watchdog timeout
/// actually unsticks a stalled executor.
void set_cancel_flag(const std::atomic<bool>* flag);

}  // namespace decimate::fault
