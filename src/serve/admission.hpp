#pragma once
// Admission control and load-shedding for the wall-clock serving mode.
//
// The wall-clock server holds arrivals in an EDF (earliest-deadline-
// first) queue bounded by AdmissionPolicy::max_queue_depth. Three
// mechanisms keep overload from turning into unbounded latency:
//
//  - Admission control rejects a request at submit() when the predicted
//    completion (backlog + its own service time, scaled by a headroom
//    factor) already misses its deadline — better a fast typed rejection
//    the client can retry elsewhere than a slow guaranteed miss.
//  - Depth shedding evicts the lowest-value / latest-deadline entry once
//    the queue exceeds the policy depth (the arriving request competes
//    with the queued ones, so a high-value arrival displaces a low-value
//    waiter, never the reverse).
//  - Serve-or-shed drops a request at dispatch time when even starting it
//    immediately cannot meet its deadline any more.
//
// Every rejected/shed request is reported with a typed ServeReason, never
// silently dropped. The decision function is pure and exposed separately
// (admission_decision) so tests can probe the boundary without a server.

#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "nn/tensor.hpp"

namespace decimate {

/// Why a request did not complete normally (ServeError::reason()).
enum class ServeReason : uint8_t {
  kNone = 0,
  kAdmissionInfeasible,  // predicted completion already misses the deadline
  kQueueFull,            // bounded inbox full and shedding is disabled
  kShedQueueDepth,       // shed: queue depth exceeded policy
  kShedPredictedWait,    // shed: queue wait left no budget to execute
  kWorkerFault,          // execution kept failing after retries
  kTimeout,              // watchdog expired and per-image redispatch failed
};

const char* to_string(ServeReason reason);

/// The typed error a rejected/shed/failed request reports.
class ServeError : public Error {
 public:
  ServeError(ServeReason reason, uint64_t request_id,
             const std::string& detail);
  ServeReason reason() const { return reason_; }
  uint64_t request_id() const { return request_id_; }

 private:
  ServeReason reason_;
  uint64_t request_id_;
};

struct AdmissionPolicy {
  bool admission_control = true;
  bool shedding = true;
  size_t max_queue_depth = 64;
  /// Safety factor on predicted service times in feasibility checks: the
  /// calibrated cycle model is optimistic about wall-clock jitter, and
  /// rejecting slightly early beats missing a deadline slightly late.
  double headroom = 1.25;
};

/// A wall-clock inference request. `deadline_ns` is relative to arrival
/// (0 = the server's configured default); `value` orders shed victims —
/// lower value sheds first.
struct WallRequest {
  uint64_t id = 0;
  int model = 0;
  int value = 1;
  uint64_t deadline_ns = 0;
  Tensor8 input;
};

/// A queued request with its absolute (server-epoch ns) deadline and the
/// predicted single-image service time stamped at admission.
struct QueuedRequest {
  WallRequest req;
  uint64_t arrival_ns = 0;
  uint64_t deadline_abs_ns = 0;
  uint64_t predicted_exec_ns = 0;
};

/// Pure admission decision for one arriving request; kNone = admit.
/// `backlog_ns` is the predicted service time of everything already
/// admitted but not completed (queued + in flight).
ServeReason admission_decision(const AdmissionPolicy& policy, uint64_t now_ns,
                               uint64_t deadline_abs_ns,
                               uint64_t predicted_exec_ns, uint64_t backlog_ns,
                               size_t queue_depth);

/// Earliest-deadline-first queue with value-aware shedding. Not
/// thread-safe: the wall-clock server guards it with its own mutex.
class EdfQueue {
 public:
  /// Ordered insert by absolute deadline (stable for ties: an equal
  /// deadline queues behind earlier arrivals).
  void push(QueuedRequest q);

  bool empty() const { return q_.empty(); }
  size_t size() const { return q_.size(); }

  /// The earliest-deadline entry.
  const QueuedRequest& front() const;

  /// Pop up to `max` entries of `model` in deadline order — the batch the
  /// wall-clock server forms (same-model only; other models keep their
  /// queue positions).
  std::vector<QueuedRequest> pop_model_batch(int model, size_t max);

  /// Remove and return the shed victim: lowest value, then latest
  /// deadline, then latest arrival.
  QueuedRequest shed_one();

  /// Remove and return everything, in deadline order (the brown-out
  /// serve-or-shed pass re-pushes the survivors).
  std::vector<QueuedRequest> drain();

  /// Sum of predicted_exec_ns over everything queued (the queue's share
  /// of the admission backlog estimate). Maintained incrementally.
  uint64_t backlog_ns() const { return backlog_ns_; }

 private:
  std::list<QueuedRequest> q_;  // sorted by deadline_abs_ns ascending
  uint64_t backlog_ns_ = 0;
};

}  // namespace decimate
