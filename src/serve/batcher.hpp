#pragma once
// Batcher: SLO-aware dynamic batch formation on the modeled-cycle
// timeline.
//
// Requests are admitted in nondecreasing arrival order and queue FIFO per
// model (a batch always serves one model — mixed streams form separate
// batches). A batch flushes when the first of these holds:
//
//  - kFull:     a queue holds max_batch requests — dispatch as soon as
//               the engine and the last member are both available. A
//               full batch of any model takes priority over an older,
//               still-forming batch of another; partial batches flush in
//               oldest-head order.
//  - kDeadline: the oldest request has waited max_wait_cycles and it is
//               *provable* that no further request can join before then
//               (the next unadmitted arrival — supplied by the caller —
//               lies beyond the flush point). Dispatch at the deadline.
//  - kDrain:    the stream is closed; nothing more can arrive, so waiting
//               buys nothing — dispatch immediately.
//
// try_form returns nullopt when no batch can be decided yet: either there
// is nothing pending, or the next arrival would join the forming batch
// (admit it first), or the future is unknown (open stream, no next
// arrival visible) — the Server then blocks on its inbox for more
// information. Because decisions depend only on arrival cycles and the
// closed flag, batch formation is deterministic for a given trace no
// matter how submission threads interleave in wall time.

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "serve/serving.hpp"

namespace decimate {

enum class FlushReason : uint8_t { kFull, kDeadline, kDrain };

const char* to_string(FlushReason reason);

/// A dispatch-ready batch: same-model requests in arrival order plus the
/// cycle at which the Dispatcher starts executing them.
struct FormedBatch {
  int model = 0;
  std::vector<Request> requests;
  uint64_t dispatch_cycles = 0;
  FlushReason reason = FlushReason::kFull;
};

class Batcher {
 public:
  explicit Batcher(const SloConfig& slo);

  /// Queue a request. Arrivals must be nondecreasing across all admits.
  void admit(Request r);

  bool has_pending() const { return pending_ != 0; }
  size_t pending() const { return pending_; }

  /// Try to form the next batch. `free_at` is when the engine is next
  /// idle; `next_arrival` is the arrival cycle of the earliest
  /// not-yet-admitted request (nullopt when the inbox is empty); `closed`
  /// means no further request will ever arrive. Returns nullopt when
  /// undecidable (see file comment).
  std::optional<FormedBatch> try_form(uint64_t free_at,
                                      std::optional<uint64_t> next_arrival,
                                      bool closed);

  const SloConfig& slo() const { return slo_; }

 private:
  SloConfig slo_;
  std::map<int, std::deque<Request>> queues_;  // per model, arrival order
  size_t pending_ = 0;
  uint64_t last_arrival_ = 0;
};

}  // namespace decimate
