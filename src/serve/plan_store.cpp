#include "serve/plan_store.hpp"

#include "compiler/fingerprint.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "verify/verify.hpp"

namespace decimate {

PlanStore::PlanStore(const CompileOptions& base,
                     std::shared_ptr<TileLatencyCache> latencies)
    : base_(base),
      latencies_(latencies ? std::move(latencies)
                           : std::make_shared<TileLatencyCache>()) {
  // warm start: load once here, not per-compile — options_for() strips
  // the path so the per-plan Compilers don't re-read the file
  if (!base_.latency_cache_path.empty()) {
    latencies_->load(base_.latency_cache_path);
  }
}

size_t PlanStore::save_latencies() const {
  DECIMATE_CHECK(!base_.latency_cache_path.empty(),
                 "save_latencies needs CompileOptions::latency_cache_path");
  return latencies_->save(base_.latency_cache_path);
}

int PlanStore::add_model(const Graph& graph) {
  const uint64_t fp = graph_fingerprint(graph);  // outside the lock: O(bytes)
  const std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < models_.size(); ++i) {
    // same content (possibly a re-created Graph object): the existing
    // registration and its plans keep serving from the store's own copy
    if (models_[i].fingerprint == fp) return static_cast<int>(i);
  }
  models_.push_back(Model{std::make_unique<Graph>(graph), fp});
  return static_cast<int>(models_.size()) - 1;
}

int PlanStore::model_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(models_.size());
}

const Graph& PlanStore::graph(int model) const {
  const std::lock_guard<std::mutex> lock(mu_);
  DECIMATE_CHECK(model >= 0 && model < static_cast<int>(models_.size()),
                 "unknown model id " << model);
  return *models_[static_cast<size_t>(model)].graph;
}

CompileOptions PlanStore::options_for(int batch, int num_clusters) const {
  DECIMATE_CHECK(batch >= 1, "batch must be >= 1, got " << batch);
  DECIMATE_CHECK(num_clusters >= 1,
                 "num_clusters must be >= 1, got " << num_clusters);
  CompileOptions opt = base_;
  opt.batch = batch;
  opt.num_clusters = num_clusters;
  // the store's shared cache was warmed in the constructor; per-plan
  // Compilers must not re-read the file on every compile
  opt.latency_cache_path.clear();
  return opt;
}

uint64_t PlanStore::key_for(int model, int batch, int num_clusters) const {
  DECIMATE_CHECK(model >= 0 && model < static_cast<int>(models_.size()),
                 "unknown model id " << model);
  return plan_fingerprint_from(models_[static_cast<size_t>(model)].fingerprint,
                               options_for(batch, num_clusters));
}

void PlanStore::attach_registry(std::shared_ptr<PlanRegistry> registry) {
  const std::lock_guard<std::mutex> lock(mu_);
  registry_ = std::move(registry);
}

std::shared_ptr<PlanRegistry> PlanStore::attach_registry(
    const std::string& dir) {
  auto registry = std::make_shared<PlanRegistry>(dir, latencies_);
  attach_registry(registry);
  return registry;
}

std::shared_ptr<PlanRegistry> PlanStore::registry() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return registry_;
}

const CompiledPlan& PlanStore::plan(int model, int batch, int num_clusters) {
  const std::lock_guard<std::mutex> lock(mu_);
  const uint64_t key = key_for(model, batch, num_clusters);
  auto it = plans_.find(key);
  if (it == plans_.end() && registry_ != nullptr &&
      quarantined_.count(key) == 0) {
    // read-through: a published artifact with this exact plan identity
    // serves without the compiler or the ISS. load() already ran the
    // full admission gate (artifact.* checks + static verifier); the
    // loaded plan owns its rehydrated graph, so it never references the
    // store's model copy. A quarantined fingerprint skips this tier —
    // the on-disk artifact is exactly what is distrusted.
    try {
      auto loaded = registry_->load(key);
      if (loaded.has_value()) {
        // runtime knobs are the loading process's, not the publisher's
        loaded->options.host_threads = base_.host_threads;
        loaded->options.verify_plans = base_.verify_plans;
        ++registry_loads_;
        it = plans_
                 .emplace(key,
                          std::make_unique<CompiledPlan>(std::move(*loaded)))
                 .first;
      }
    } catch (const Error&) {
      // A corrupt/unreadable artifact (VerifyError from the admission
      // gate, I/O failure, an injected load fault) must not take serving
      // down: count it and fall back to compiling from the graph — the
      // write-through below then replaces the bad artifact.
      ++registry_faults_;
      metrics::registry().counter("serve.plan_store.registry_faults").inc();
      trace::instant(trace::Cat::kServe, "plan_store.registry_fault");
    }
  }
  if (it == plans_.end()) {
    // compiles_ stays the per-store view (compiles() below); the registry
    // counter aggregates across every store in the process
    ++compiles_;
    metrics::registry().counter("serve.plan_store.compiles").inc();
    trace::TraceScope compile_span(trace::Cat::kServe, "plan_store.compile");
    compile_span.arg("batch", batch);
    compile_span.arg("clusters", num_clusters);
    // Compiling under the lock keeps the exactly-once guarantee simple;
    // the latency cache handles its own concurrency, and serving compiles
    // only during warm-up anyway.
    const CompileOptions opt = options_for(batch, num_clusters);
    Compiler compiler(opt, latencies_);
    auto plan = std::make_unique<CompiledPlan>(
        compiler.compile(*models_[static_cast<size_t>(model)].graph));
    // Admission gate: serving plans are always statically verified, even
    // in Release builds where the compiler post-pass is off by default.
    // (When opt.verify_plans is set the compile above already verified.)
    if (!opt.verify_plans) {
      VerifyReport report = verify_plan(*plan);
      if (!report.ok()) throw VerifyError(std::move(report));
    }
    it = plans_.emplace(key, std::move(plan)).first;
    // write-through: the next process (or the next fleet rollout) finds
    // this exact plan identity on disk and cold-starts with zero
    // compiles and zero ISS invocations
    if (registry_ != nullptr) registry_->publish(*it->second);
  }
  return *it->second;
}

bool PlanStore::contains(int model, int batch, int num_clusters) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return plans_.count(key_for(model, batch, num_clusters)) != 0;
}

void PlanStore::warm(int model, std::span<const int> batches,
                     int num_clusters) {
  for (const int b : batches) plan(model, b, num_clusters);
}

int PlanStore::compiles() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return compiles_;
}

int PlanStore::registry_loads() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return registry_loads_;
}

uint64_t PlanStore::quarantine(int model, int batch, int num_clusters) {
  const std::lock_guard<std::mutex> lock(mu_);
  const uint64_t key = key_for(model, batch, num_clusters);
  quarantined_.insert(key);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    // plan() promises references stay valid for the store's lifetime, so
    // the distrusted plan retires instead of being destroyed; only its
    // index entry goes, forcing the next plan() call to compile fresh.
    retired_.push_back(std::move(it->second));
    plans_.erase(it);
  }
  ++quarantines_;
  metrics::registry().counter("serve.plan_store.quarantines").inc();
  trace::instant(trace::Cat::kServe, "plan_store.quarantine", 0,
                 trace::Flow::kNone, "batch", batch);
  return key;
}

int PlanStore::quarantines() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return quarantines_;
}

int PlanStore::registry_faults() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return registry_faults_;
}

}  // namespace decimate
