#pragma once
// Shared types of the serving runtime (see server.hpp for the overview).
//
// All serving time is modeled ISS cycles, not wall clock: requests carry
// an arrival cycle, the Batcher's wait/flush decisions and the
// Dispatcher's mode choice are computed from the plans' precomputed cycle
// reports, and ServedStats reports queue wait / completion on the same
// virtual timeline. That keeps every serving decision — and therefore
// every served output — bit-reproducible for a given arrival trace.

#include <cstdint>
#include <string>

#include "nn/tensor.hpp"

namespace decimate {

/// Which timeline a server runs on. kVirtualCycle is the deterministic
/// modeled-cycle event loop (Server); kWallClock is the real-time mode
/// (WallClockServer): steady-clock deadlines, real thread concurrency,
/// admission control / load-shedding / fault recovery.
enum class ServerMode : uint8_t {
  kVirtualCycle,
  kWallClock,
};

const char* to_string(ServerMode mode);

/// How the Dispatcher executed a formed batch.
enum class ServeMode : uint8_t {
  kBatchFused,     // run_batch on one cluster, batch-fused plan chunks
  kShardedSingle,  // each image sharded across all clusters in turn
  kDataParallel,   // whole images round-robin across clusters
};

const char* to_string(ServeMode mode);

/// The serving contract a Server enforces, in modeled cycles.
struct SloConfig {
  /// A partial batch flushes once its oldest request has waited this long.
  uint64_t max_wait_cycles = 0;
  /// Per-request end-to-end target (completion - arrival); a request whose
  /// modeled latency exceeds it is a deadline miss. The Dispatcher picks
  /// the cheapest mode that keeps every request inside this budget.
  uint64_t deadline_cycles = UINT64_MAX;
  /// A batch dispatches as soon as it holds this many requests.
  int max_batch = 1;
};

/// One single-image inference request. `model` is the id PlanStore
/// returned from add_model; arrival cycles must be submitted in
/// nondecreasing order (the virtual clock only moves forward).
struct Request {
  uint64_t id = 0;
  int model = 0;
  uint64_t arrival_cycles = 0;
  Tensor8 input;
};

/// Per-request serving report, all on the modeled cycle timeline.
struct ServedStats {
  uint64_t id = 0;
  int model = 0;
  ServeMode mode = ServeMode::kBatchFused;
  int group_size = 1;  // images co-executed with this one (fused chunk
                       // size; 1 for sharded; formed batch for data-par)
  uint64_t arrival_cycles = 0;
  uint64_t dispatch_cycles = 0;    // when its batch started executing
  uint64_t completion_cycles = 0;  // when its output was ready
  bool deadline_hit = true;

  uint64_t queue_wait_cycles() const {
    return dispatch_cycles - arrival_cycles;
  }
  uint64_t exec_cycles() const { return completion_cycles - dispatch_cycles; }
  uint64_t latency_cycles() const {
    return completion_cycles - arrival_cycles;
  }
};

/// A completed request: stats plus the network output (bit-exact with a
/// sequential ExecutionEngine::run of the same input).
struct Served {
  ServedStats stats;
  Tensor8 output;
};

}  // namespace decimate
