#pragma once
// Dispatcher: picks, per formed batch, how the clusters should execute it
// — and then executes it bit-exactly.
//
// Three modes compete (all numerics identical to sequential
// ExecutionEngine::run by construction; only cycles differ):
//
//  - kBatchFused:    the batch is chunked to the largest pre-compiled
//                    fused batch sizes and run_batch executes each chunk
//                    on one cluster. Cheapest total cycles (weight DMA
//                    amortizes across the chunk), worst latency (every
//                    member waits for its whole chunk).
//  - kShardedSingle: each image in turn is sharded across all clusters
//                    by the MultiClusterEngine. Best latency (the shard
//                    critical path), most total cycles (stitch/reduce
//                    overhead and shard imbalance on every image).
//  - kDataParallel:  whole images round-robin across clusters. Middle
//                    ground: per-image latency of the single-cluster
//                    pipeline, no fusion savings, but n images finish in
//                    ceil(n / clusters) waves.
//
// Selection rule ("best modeled SLO-feasible cycles"): among the modes
// whose modeled per-request latencies all meet the SLO deadline, take the
// one consuming the fewest total cluster-busy cycles (the energy/cost
// axis the paper's per-request framing cares about); when no mode is
// feasible, take the one hitting the most deadlines, tie-broken by the
// smaller worst-case latency. A loose SLO therefore picks batch-fused
// plans, a tight SLO sharded single-image execution, and a mid-range SLO
// over a deep batch data-parallel placement.
//
// Every plan comes from the PlanStore; after Dispatcher::warm no dispatch
// compiles anything. If run_batch ever reports a fused-batch mismatch
// (BatchMismatchError — the structured error proves the condition is
// recoverable, unlike a bare Error), the dispatcher re-runs the chunk
// image by image on the unfused plan and restamps the affected stats
// instead of failing the batch.

#include <optional>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/plan_store.hpp"
#include "serve/serving.hpp"
#include "shard/multi_cluster_engine.hpp"

namespace decimate {

struct DispatchConfig {
  /// Clusters available to the sharded and data-parallel modes.
  int num_clusters = 1;
  /// Fused batch sizes the store pre-compiles; chunking greedily takes
  /// the largest size <= the remaining batch (1 is always available), so
  /// a batch larger than any fused plan splits instead of failing.
  std::vector<int> fused_batches = {1, 2, 4, 8};
};

/// Modeled outcome of one mode for one formed batch (before executing).
struct ModeEval {
  ServeMode mode = ServeMode::kBatchFused;
  bool feasible = false;      // every request meets the SLO deadline
  int deadline_hits = 0;
  uint64_t cost_cycles = 0;   // total cluster-busy cycles consumed
  uint64_t makespan_cycles = 0;       // dispatch -> last completion
  uint64_t worst_latency_cycles = 0;  // max per-request completion-arrival
  std::vector<uint64_t> completion_cycles;  // per request, absolute
  std::vector<int> group_size;              // per request (fused chunk...)
};

/// A dispatched batch: per-request results (request order) plus when the
/// clusters become free again.
struct DispatchResult {
  std::vector<Served> served;
  ServeMode mode = ServeMode::kBatchFused;
  uint64_t finish_cycles = 0;
};

class Dispatcher {
 public:
  Dispatcher(PlanStore& store, const DispatchConfig& cfg);

  /// Score all modes for a batch of `arrivals` dispatched at
  /// `dispatch_cycles` (pure cycle model — nothing executes). Exposed so
  /// tests and benches can probe the decision boundaries directly.
  std::vector<ModeEval> evaluate(int model, int batch_size,
                                 const std::vector<uint64_t>& arrivals,
                                 uint64_t dispatch_cycles,
                                 const SloConfig& slo);

  /// The winning mode index under the selection rule above.
  static size_t choose(const std::vector<ModeEval>& evals);

  /// Execute a formed batch under the selection rule; results are in
  /// request order and bit-exact with sequential ExecutionEngine::run.
  /// Takes the batch by value: the inputs are consumed (moved into the
  /// execution paths), never deep-copied on the serving path.
  /// `force_mode` overrides the selection rule (the wall-clock server's
  /// brown-out ladder pins kShardedSingle under sustained overload); the
  /// stats still report the forced mode's modeled completions.
  DispatchResult dispatch(FormedBatch batch, const SloConfig& slo,
                          std::optional<ServeMode> force_mode = std::nullopt);

  /// Run one fused chunk, recovering from a fused-batch mismatch: if
  /// `chunk_plan` turns out to be fused for a different batch than
  /// `inputs` (a mis-warmed or externally shared store), the structured
  /// BatchMismatchError proves the condition is recoverable and the
  /// chunk re-runs image by image on `single_plan`. Returns outputs in
  /// input order and reports the group size that actually executed plus
  /// each image's modeled completion offset from chunk start (all equal
  /// on the fused path; serial prefixes on the fallback). Static and
  /// public so the recovery path is directly testable.
  static std::vector<Tensor8> run_chunk_with_fallback(
      ExecutionEngine& engine, const CompiledPlan& chunk_plan,
      const CompiledPlan& single_plan, std::span<const Tensor8> inputs,
      int& group_size, std::vector<uint64_t>& completion_offsets);

  /// Pre-compile every plan this dispatcher can request for `model`
  /// (all fused batch sizes at one cluster, the shard-aware single-image
  /// plan, and its shard schedule), so serving never compiles.
  void warm(int model);

  const DispatchConfig& config() const { return cfg_; }
  PlanStore& store() { return store_; }

 private:
  /// Greedy fused chunking of n requests: largest configured size <= rest.
  std::vector<int> fused_chunks(int n) const;
  void exec_fused(FormedBatch& batch, const SloConfig& slo,
                  DispatchResult& out);
  void exec_sharded(const FormedBatch& batch, DispatchResult& out);
  void exec_data_parallel(FormedBatch& batch, DispatchResult& out);

  PlanStore& store_;
  DispatchConfig cfg_;
  ExecutionEngine engine_;
  MultiClusterEngine mce_;
};

}  // namespace decimate
