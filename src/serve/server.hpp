#pragma once
// Server: the serving runtime's front end.
//
//   submit() ──► inbox (thread-safe) ──► Batcher ──► Dispatcher ──► Served
//                                        (SLO)       (PlanStore,
//                                                     mode choice)
//
// Producers submit single-image requests from any thread, in
// nondecreasing arrival-cycle order; serve() runs the event loop (on the
// caller's thread) until the stream is closed and everything pending has
// been dispatched. The loop keeps a virtual clock: the engine's free_at
// advances by each dispatched batch's modeled makespan, the Batcher
// decides flushes from arrival cycles alone, and the Dispatcher picks the
// cheapest SLO-feasible execution mode. Because every decision is a
// function of the arrival trace (never of wall-clock thread timing),
// serving the same trace twice yields identical batches, modes, stats,
// and bit-exact outputs.
//
// serve() blocks waiting for the inbox whenever the next batching
// decision needs more information (an open stream with an undecidable
// flush); close() is what guarantees it terminates.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/dispatcher.hpp"

namespace decimate {

class Server {
 public:
  Server(Dispatcher& dispatcher, const SloConfig& slo);

  /// Enqueue a request (thread-safe). Arrival cycles must be
  /// nondecreasing across all submissions; submitting after close throws.
  void submit(Request r);

  /// Declare the stream finished: serve() drains what is pending and
  /// returns. Thread-safe, idempotent.
  void close();

  /// Run the serving loop until the stream is closed and drained.
  /// Returns every served request in dispatch order (use stats.id to
  /// re-associate). Call at most once.
  std::vector<Served> serve();

  /// Batches dispatched by the last serve() call.
  int batches_dispatched() const { return batches_; }

 private:
  Dispatcher& dispatcher_;
  Batcher batcher_;
  SloConfig slo_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> inbox_;
  uint64_t last_submitted_ = 0;  // newest arrival ever submitted
  bool closed_ = false;
  int batches_ = 0;
};

}  // namespace decimate
