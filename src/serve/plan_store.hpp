#pragma once
// PlanStore: pre-compiles and indexes CompiledPlans per (graph content x
// batch size x cluster config) for the serving runtime.
//
// The store owns the serving-side compile-once guarantee: each registered
// model's parameters are fingerprinted once (add_model), every (batch,
// num_clusters) variant is keyed by plan_fingerprint_from(graph_fp,
// options) — the same sound identity the ScheduleExecutor and shard-plan
// caches use — and all compiles share one TileLatencyCache, so a tile
// geometry common to several variants is ISS-measured exactly once.
// After warm() has covered the configs a Dispatcher can request,
// compiles() must stay constant however much traffic is served (the
// serving bench asserts exactly that).

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <vector>

#include "artifact/registry.hpp"
#include "exec/compile.hpp"

namespace decimate {

class PlanStore {
 public:
  /// `base` carries every option except batch / num_clusters, which the
  /// store varies per entry. `latencies` may be shared with other
  /// compilers; a fresh cache is created when omitted.
  explicit PlanStore(const CompileOptions& base = {},
                     std::shared_ptr<TileLatencyCache> latencies = nullptr);

  /// Register a model. The store keeps its own copy of the graph, so the
  /// argument may be destroyed freely afterwards and cached plans always
  /// reference the store's stable copy (no pointer fix-ups, no races with
  /// concurrent serving). Returns a stable model id; a graph with
  /// identical content re-uses the existing id (and therefore every plan
  /// already compiled for it).
  int add_model(const Graph& graph);

  int model_count() const;

  /// The store's own copy of a registered model's graph (the one every
  /// cached plan references).
  const Graph& graph(int model) const;

  /// The plan serving `model` at this batch size and cluster config;
  /// compiles on first request, then returns the cached plan (reference
  /// stays valid for the store's lifetime — entries are never evicted).
  /// Thread-safe; concurrent requests for one config compile once.
  const CompiledPlan& plan(int model, int batch, int num_clusters = 1);

  /// Whether the (model, batch, num_clusters) plan is already compiled.
  bool contains(int model, int batch, int num_clusters = 1) const;

  /// Pre-compile a set of batch sizes (each at `num_clusters` clusters)
  /// so serving never compiles on the request path.
  void warm(int model, std::span<const int> batches, int num_clusters = 1);

  /// Plans compiled so far (cache misses): zero recompiles after warm-up
  /// means this stays constant while serving. Registry loads are NOT
  /// compiles — a store serving entirely from a warm registry keeps this
  /// at zero forever.
  int compiles() const;

  /// Plans admitted from the registry (read-through hits).
  int registry_loads() const;

  /// Quarantine a plan identity the serving layer has judged poisoned
  /// (N consecutive execution failures): the cached entry retires — any
  /// reference already handed out stays valid for the store's lifetime,
  /// honoring plan()'s contract — and the fingerprint is barred from
  /// registry read-through, so the next plan() call for this config
  /// compiles fresh from the graph (and its write-through publish
  /// replaces the distrusted artifact). Returns the fingerprint.
  uint64_t quarantine(int model, int batch, int num_clusters = 1);

  /// Plan identities quarantined so far.
  int quarantines() const;

  /// Registry read-throughs that failed the admission gate (corrupt /
  /// unreadable artifact) and fell back to a fresh compile instead of
  /// taking down the caller.
  int registry_faults() const;

  /// Attach a PlanRegistry as the read-through / write-through tier:
  /// plan() misses first try registry.load(fingerprint) (a hit skips the
  /// compiler AND the ISS entirely), and freshly compiled plans are
  /// published back so the next process cold-starts warm. For serve-time
  /// shard planning to stay ISS-free too, construct the registry with
  /// this store's shared_latencies() — loaded plans are then costed
  /// against the same cache the store's compiles feed.
  void attach_registry(std::shared_ptr<PlanRegistry> registry);

  /// Convenience: open (or create) `dir` as this store's registry tier,
  /// sharing the store's latency cache — artifact latency sections merge
  /// straight into it, which is what makes a warm-registry cold start
  /// ISS-free end to end. Returns the registry.
  std::shared_ptr<PlanRegistry> attach_registry(const std::string& dir);

  std::shared_ptr<PlanRegistry> registry() const;

  /// Persist the shared latency cache to base_options().latency_cache_path
  /// (which must be set). A store constructed later with the same path
  /// warms up ISS-free: every tile shape measured during this process's
  /// compiles is read back from the file.
  size_t save_latencies() const;

  const CompileOptions& base_options() const { return base_; }
  std::shared_ptr<TileLatencyCache> shared_latencies() const {
    return latencies_;
  }

 private:
  struct Model {
    std::unique_ptr<Graph> graph;  // owned copy, stable address
    uint64_t fingerprint = 0;      // graph content, hashed once at add_model
  };

  uint64_t key_for(int model, int batch, int num_clusters) const;
  CompileOptions options_for(int batch, int num_clusters) const;

  CompileOptions base_;
  std::shared_ptr<TileLatencyCache> latencies_;
  std::shared_ptr<PlanRegistry> registry_;
  mutable std::mutex mu_;
  std::vector<Model> models_;
  // unique_ptr values keep plan references stable across inserts
  std::map<uint64_t, std::unique_ptr<CompiledPlan>> plans_;
  // quarantined plans retire here (never destroyed: references stay
  // valid) and their fingerprints skip registry read-through
  std::vector<std::unique_ptr<CompiledPlan>> retired_;
  std::set<uint64_t> quarantined_;
  int compiles_ = 0;
  int registry_loads_ = 0;
  int quarantines_ = 0;
  int registry_faults_ = 0;
};

}  // namespace decimate
