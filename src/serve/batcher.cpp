#include "serve/batcher.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace decimate {

const char* to_string(FlushReason reason) {
  switch (reason) {
    case FlushReason::kFull: return "full";
    case FlushReason::kDeadline: return "deadline";
    case FlushReason::kDrain: return "drain";
  }
  return "?";
}

Batcher::Batcher(const SloConfig& slo) : slo_(slo) {
  DECIMATE_CHECK(slo_.max_batch >= 1,
                 "max_batch must be >= 1, got " << slo_.max_batch);
}

void Batcher::admit(Request r) {
  DECIMATE_CHECK(r.arrival_cycles >= last_arrival_,
                 "arrivals must be nondecreasing: got "
                     << r.arrival_cycles << " after " << last_arrival_);
  last_arrival_ = r.arrival_cycles;
  queues_[r.model].push_back(std::move(r));
  ++pending_;
  metrics::registry().gauge("serve.queue_depth").set(
      static_cast<int64_t>(pending_));
}

namespace {

uint64_t saturating_add(uint64_t a, uint64_t b) {
  const uint64_t sum = a + b;
  return sum < a ? UINT64_MAX : sum;
}

}  // namespace

std::optional<FormedBatch> Batcher::try_form(
    uint64_t free_at, std::optional<uint64_t> next_arrival, bool closed) {
  if (pending_ == 0) return std::nullopt;

  const size_t want = static_cast<size_t>(slo_.max_batch);
  FlushReason reason;
  uint64_t dispatch = 0;
  size_t take = 0;
  const std::deque<Request>* queue = nullptr;
  int model = 0;

  // A full batch flushes as soon as the engine and its last member are
  // both available — it is never blocked behind an older, still-forming
  // batch of another model. Among several full models, the one whose
  // batch was assembled first goes first.
  for (const auto& [m, q] : queues_) {
    if (q.size() < want) continue;
    const uint64_t ready = q[want - 1].arrival_cycles;
    if (queue == nullptr || ready < (*queue)[want - 1].arrival_cycles) {
      queue = &q;
      model = m;
    }
  }
  if (queue != nullptr) {
    reason = FlushReason::kFull;
    take = want;
    dispatch = std::max(free_at, (*queue)[want - 1].arrival_cycles);
  } else {
    // no full batch: FIFO across models — consider the model whose head
    // request is oldest
    for (const auto& [m, q] : queues_) {
      if (q.empty()) continue;
      if (queue == nullptr ||
          q.front().arrival_cycles < queue->front().arrival_cycles) {
        queue = &q;
        model = m;
      }
    }
    DECIMATE_CHECK(queue != nullptr, "pending count out of sync");

    const uint64_t deadline = saturating_add(queue->front().arrival_cycles,
                                             slo_.max_wait_cycles);
    // While the engine is busy past the deadline, later arrivals can
    // still join (continuous batching): the admission window is
    // whichever is later.
    const uint64_t admit_until = std::max(deadline, free_at);

    if (next_arrival && *next_arrival <= admit_until) {
      return std::nullopt;  // that request may join: admit it first
    } else if (next_arrival) {
      // proof: the next arrival is beyond the admission window, so the
      // membership is final — flush at the SLO deadline
      reason = FlushReason::kDeadline;
      take = queue->size();
      dispatch = std::max(free_at, deadline);
    } else if (closed) {
      reason = FlushReason::kDrain;
      take = queue->size();
      dispatch = std::max(free_at, queue->back().arrival_cycles);
    } else {
      return std::nullopt;  // open stream, future unknown: wait for info
    }
  }

  FormedBatch batch;
  batch.model = model;
  batch.reason = reason;
  batch.dispatch_cycles = dispatch;
  batch.requests.reserve(take);
  std::deque<Request>& q = queues_[model];
  for (size_t i = 0; i < take; ++i) {
    batch.requests.push_back(std::move(q.front()));
    q.pop_front();
    --pending_;
  }
  {
    auto& reg = metrics::registry();
    reg.gauge("serve.queue_depth").set(static_cast<int64_t>(pending_));
    reg.histogram("serve.batch_size").observe(take);
    switch (reason) {
      case FlushReason::kFull: reg.counter("serve.flush.full").inc(); break;
      case FlushReason::kDeadline:
        reg.counter("serve.flush.deadline").inc();
        break;
      case FlushReason::kDrain: reg.counter("serve.flush.drain").inc(); break;
    }
  }
  trace::instant(trace::Cat::kBatcher, "batcher.flush", batch.requests[0].id,
                 trace::Flow::kStep, "batch_size",
                 static_cast<int64_t>(take), "reason", to_string(reason));
  return batch;
}

}  // namespace decimate
