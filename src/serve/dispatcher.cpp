#include "serve/dispatcher.hpp"

#include <algorithm>
#include <numeric>

#include "serve/fault.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace decimate {

namespace {

// ServedStats bookkeeping, mirrored onto the metrics registry after a
// batch finishes executing (the fused fallback path may restamp
// completions, so the final stats are the source of truth).
void record_served_metrics(const DispatchResult& out) {
  auto& reg = metrics::registry();
  switch (out.mode) {
    case ServeMode::kBatchFused:
      reg.counter("serve.mode.batch_fused").inc();
      break;
    case ServeMode::kShardedSingle:
      reg.counter("serve.mode.sharded_single").inc();
      break;
    case ServeMode::kDataParallel:
      reg.counter("serve.mode.data_parallel").inc();
      break;
  }
  for (const Served& s : out.served) {
    reg.histogram("serve.queue_wait_cycles").observe(
        s.stats.queue_wait_cycles());
    reg.histogram("serve.exec_cycles").observe(s.stats.exec_cycles());
    reg.histogram("serve.latency_cycles").observe(s.stats.latency_cycles());
    reg.histogram("serve.group_size").observe(
        static_cast<uint64_t>(s.stats.group_size));
    reg.counter(s.stats.deadline_hit ? "serve.deadline.hits"
                                     : "serve.deadline.misses")
        .inc();
  }
}

}  // namespace

Dispatcher::Dispatcher(PlanStore& store, const DispatchConfig& cfg)
    : store_(store), cfg_(cfg), mce_(cfg.num_clusters) {
  DECIMATE_CHECK(cfg_.num_clusters >= 1,
                 "num_clusters must be >= 1, got " << cfg_.num_clusters);
  // 1 must always be available so any batch size decomposes
  if (std::find(cfg_.fused_batches.begin(), cfg_.fused_batches.end(), 1) ==
      cfg_.fused_batches.end()) {
    cfg_.fused_batches.push_back(1);
  }
  std::sort(cfg_.fused_batches.begin(), cfg_.fused_batches.end());
  for (const int b : cfg_.fused_batches) {
    DECIMATE_CHECK(b >= 1, "fused batch sizes must be >= 1, got " << b);
  }
}

std::vector<int> Dispatcher::fused_chunks(int n) const {
  std::vector<int> chunks;
  while (n > 0) {
    // largest configured fused size that still fits (sizes are sorted and
    // contain 1, so this always makes progress)
    int best = 1;
    for (const int b : cfg_.fused_batches) {
      if (b <= n) best = b;
    }
    chunks.push_back(best);
    n -= best;
  }
  return chunks;
}

void Dispatcher::warm(int model) {
  for (const int b : cfg_.fused_batches) store_.plan(model, b, 1);
  const CompiledPlan& sharded = store_.plan(model, 1, cfg_.num_clusters);
  mce_.shard_plan(sharded);  // shard schedule is cached too
}

std::vector<ModeEval> Dispatcher::evaluate(
    int model, int batch_size, const std::vector<uint64_t>& arrivals,
    uint64_t dispatch_cycles, const SloConfig& slo) {
  DECIMATE_CHECK(batch_size >= 1, "empty batch");
  DECIMATE_CHECK(arrivals.size() == static_cast<size_t>(batch_size),
                 "one arrival per request expected");
  const size_t n = static_cast<size_t>(batch_size);

  const auto finalize = [&](ModeEval& e) {
    e.deadline_hits = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t latency = e.completion_cycles[i] - arrivals[i];
      e.deadline_hits += latency <= slo.deadline_cycles ? 1 : 0;
      e.worst_latency_cycles = std::max(e.worst_latency_cycles, latency);
      e.makespan_cycles = std::max(e.makespan_cycles,
                                   e.completion_cycles[i] - dispatch_cycles);
    }
    e.feasible = e.deadline_hits == batch_size;
  };

  std::vector<ModeEval> evals;

  // kBatchFused: chunks run back-to-back on one cluster; each member
  // completes with its chunk
  {
    ModeEval e;
    e.mode = ServeMode::kBatchFused;
    e.completion_cycles.resize(n);
    e.group_size.resize(n);
    uint64_t at = dispatch_cycles;
    size_t next = 0;
    for (const int b : fused_chunks(batch_size)) {
      const CompiledPlan& plan = store_.plan(model, b, 1);
      const uint64_t dur = ExecutionEngine::modeled_batch_cycles(plan, b);
      at += dur;
      e.cost_cycles += dur;
      for (int j = 0; j < b; ++j, ++next) {
        e.completion_cycles[next] = at;
        e.group_size[next] = b;
      }
    }
    finalize(e);
    evals.push_back(std::move(e));
  }

  // kShardedSingle: each image's latency is the shard critical path;
  // images run one after another across all clusters
  {
    ModeEval e;
    e.mode = ServeMode::kShardedSingle;
    e.completion_cycles.resize(n);
    e.group_size.assign(n, 1);
    const CompiledPlan& plan = store_.plan(model, 1, cfg_.num_clusters);
    const ShardPlan& sp = mce_.shard_plan(plan);
    const uint64_t busy = std::accumulate(sp.cluster_busy_cycles.begin(),
                                          sp.cluster_busy_cycles.end(),
                                          uint64_t{0});
    for (size_t i = 0; i < n; ++i) {
      e.completion_cycles[i] =
          dispatch_cycles +
          sp.critical_path_cycles * static_cast<uint64_t>(i + 1);
    }
    e.cost_cycles = busy * static_cast<uint64_t>(n);
    finalize(e);
    evals.push_back(std::move(e));
  }

  // kDataParallel: whole images round-robin across clusters
  {
    ModeEval e;
    e.mode = ServeMode::kDataParallel;
    e.group_size.assign(n, batch_size);
    const CompiledPlan& plan = store_.plan(model, 1, 1);
    e.completion_cycles = MultiClusterEngine::data_parallel_completions(
        plan, batch_size, cfg_.num_clusters);
    for (uint64_t& c : e.completion_cycles) c += dispatch_cycles;
    for (const uint64_t busy : MultiClusterEngine::data_parallel_busy_cycles(
             plan, batch_size, cfg_.num_clusters)) {
      e.cost_cycles += busy;
    }
    finalize(e);
    evals.push_back(std::move(e));
  }

  return evals;
}

size_t Dispatcher::choose(const std::vector<ModeEval>& evals) {
  DECIMATE_CHECK(!evals.empty(), "no modes to choose from");
  // among SLO-feasible modes, fewest consumed cluster cycles wins; with
  // no feasible mode, most deadline hits then smallest worst latency.
  // Strict comparisons keep ties on the earlier mode (fused first), so
  // the choice is deterministic.
  size_t best = evals.size();
  for (size_t i = 0; i < evals.size(); ++i) {
    if (!evals[i].feasible) continue;
    if (best == evals.size() || evals[i].cost_cycles < evals[best].cost_cycles)
      best = i;
  }
  if (best != evals.size()) return best;
  best = 0;
  for (size_t i = 1; i < evals.size(); ++i) {
    if (evals[i].deadline_hits > evals[best].deadline_hits ||
        (evals[i].deadline_hits == evals[best].deadline_hits &&
         evals[i].worst_latency_cycles < evals[best].worst_latency_cycles)) {
      best = i;
    }
  }
  return best;
}

std::vector<Tensor8> Dispatcher::run_chunk_with_fallback(
    ExecutionEngine& engine, const CompiledPlan& chunk_plan,
    const CompiledPlan& single_plan, std::span<const Tensor8> inputs,
    int& group_size, std::vector<uint64_t>& completion_offsets) {
  const int b = static_cast<int>(inputs.size());
  std::vector<Tensor8> outputs;
  outputs.reserve(static_cast<size_t>(b));
  completion_offsets.assign(static_cast<size_t>(b), 0);
  try {
    BatchRun run = engine.run_batch(chunk_plan, inputs);
    group_size = b;
    // a fused chunk completes together
    const uint64_t dur = ExecutionEngine::modeled_batch_cycles(chunk_plan, b);
    for (auto& o : completion_offsets) o = dur;
    for (auto& r : run.runs) outputs.push_back(std::move(r.output));
  } catch (const BatchMismatchError& e) {
    // Only this structured error is recoverable: it proves the inputs
    // are fine and the plan merely covers a different fused batch (a
    // mis-warmed or externally shared store), so re-running image by
    // image on the unfused plan is always safe. A bare Error could be
    // any real failure and must keep propagating.
    metrics::registry().counter("serve.fallbacks").inc();
    trace::TraceScope fb_span(trace::Cat::kServe, "dispatcher.fallback");
    fb_span.sarg("reason", "batch_mismatch");
    fb_span.arg("fused_for", e.fused_batch());
    fb_span.arg("got", e.got());
    group_size = 1;
    uint64_t at = 0;
    for (int i = 0; i < b; ++i) {
      outputs.push_back(engine.run(single_plan, inputs[static_cast<size_t>(i)])
                            .output);
      at += ExecutionEngine::modeled_batch_cycles(single_plan, 1);
      completion_offsets[static_cast<size_t>(i)] = at;  // serial: per image
    }
  }
  return outputs;
}

void Dispatcher::exec_fused(FormedBatch& batch, const SloConfig& slo,
                            DispatchResult& out) {
  const int n = static_cast<int>(batch.requests.size());
  size_t next = 0;
  // Execution-side cursor. On the happy path it reproduces the modeled
  // completions already stamped from evaluate(); once a fused-batch
  // mismatch forces the per-image fallback, everything from that point
  // on is restamped from the cursor so ServedStats reports what actually
  // executed.
  uint64_t at = batch.dispatch_cycles;
  bool restamp = false;
  const CompiledPlan& single = store_.plan(batch.model, 1, 1);
  for (const int b : fused_chunks(n)) {
    std::vector<Tensor8> inputs;
    inputs.reserve(static_cast<size_t>(b));
    for (int j = 0; j < b; ++j) {
      inputs.push_back(
          std::move(batch.requests[next + static_cast<size_t>(j)].input));
    }
    int group = b;
    std::vector<uint64_t> offsets;
    std::vector<Tensor8> outputs =
        run_chunk_with_fallback(engine_, store_.plan(batch.model, b, 1),
                                single, inputs, group, offsets);
    restamp = restamp || group != b;
    for (size_t j = 0; j < outputs.size(); ++j) {
      out.served[next].output = std::move(outputs[j]);
      if (restamp) {
        ServedStats& s = out.served[next].stats;
        s.group_size = group;
        s.completion_cycles = at + offsets[j];
        s.deadline_hit = s.latency_cycles() <= slo.deadline_cycles;
      }
      ++next;
    }
    at += offsets.empty() ? 0 : offsets.back();
  }
  DECIMATE_CHECK(next == batch.requests.size(),
                 "fused chunks did not cover the batch");
}

void Dispatcher::exec_sharded(const FormedBatch& batch, DispatchResult& out) {
  const CompiledPlan& plan =
      store_.plan(batch.model, 1, cfg_.num_clusters);
  for (size_t i = 0; i < batch.requests.size(); ++i) {
    ShardedRun run = mce_.run(plan, batch.requests[i].input);
    out.served[i].output = std::move(run.run.output);
  }
}

void Dispatcher::exec_data_parallel(FormedBatch& batch,
                                    DispatchResult& out) {
  const CompiledPlan& plan = store_.plan(batch.model, 1, 1);
  std::vector<Tensor8> inputs;
  inputs.reserve(batch.requests.size());
  for (Request& r : batch.requests) inputs.push_back(std::move(r.input));
  DataParallelRun run = mce_.run_data_parallel(plan, inputs);
  for (size_t i = 0; i < batch.requests.size(); ++i) {
    out.served[i].output = std::move(run.runs[i].output);
  }
}

DispatchResult Dispatcher::dispatch(FormedBatch batch, const SloConfig& slo,
                                    std::optional<ServeMode> force_mode) {
  const int n = static_cast<int>(batch.requests.size());
  DECIMATE_CHECK(n >= 1, "cannot dispatch an empty batch");
  trace::TraceScope dispatch_span(trace::Cat::kDispatch,
                                  "dispatcher.dispatch");
  dispatch_span.arg("batch", n);
  dispatch_span.flow(batch.requests[0].id, trace::Flow::kStep);
  std::vector<uint64_t> arrivals;
  arrivals.reserve(static_cast<size_t>(n));
  for (const Request& r : batch.requests) {
    arrivals.push_back(r.arrival_cycles);
  }

  const ModeEval pick = [&] {
    trace::TraceScope eval_span(trace::Cat::kDispatch, "dispatcher.evaluate");
    std::vector<ModeEval> evals =
        evaluate(batch.model, n, arrivals, batch.dispatch_cycles, slo);
    // evaluate() emits evals in ServeMode declaration order, so a forced
    // mode indexes directly
    const size_t idx = force_mode.has_value()
                           ? static_cast<size_t>(*force_mode)
                           : choose(evals);
    DECIMATE_CHECK(idx < evals.size(), "forced mode out of range");
    return std::move(evals[idx]);
  }();
  dispatch_span.sarg("mode", to_string(pick.mode));

  DispatchResult out;
  out.mode = pick.mode;
  out.served.resize(static_cast<size_t>(n));
  for (size_t i = 0; i < static_cast<size_t>(n); ++i) {
    ServedStats& s = out.served[i].stats;
    const Request& r = batch.requests[i];
    s.id = r.id;
    s.model = r.model;
    s.mode = pick.mode;
    s.group_size = pick.group_size[i];
    s.arrival_cycles = r.arrival_cycles;
    s.dispatch_cycles = batch.dispatch_cycles;
    s.completion_cycles = pick.completion_cycles[i];
    s.deadline_hit = s.latency_cycles() <= slo.deadline_cycles;
  }

  {
    trace::TraceScope exec_span(trace::Cat::kDispatch, "dispatcher.execute");
    exec_span.sarg("mode", to_string(pick.mode));
    fault::on_site(fault::Site::kDispatchExec);
    switch (pick.mode) {
      case ServeMode::kBatchFused: exec_fused(batch, slo, out); break;
      case ServeMode::kShardedSingle: exec_sharded(batch, out); break;
      case ServeMode::kDataParallel: exec_data_parallel(batch, out); break;
    }
  }
  // after execution: the fused path may have restamped completions on a
  // mismatch recovery, so the finish time comes from the final stats
  for (const Served& s : out.served) {
    out.finish_cycles = std::max(out.finish_cycles, s.stats.completion_cycles);
  }
  record_served_metrics(out);
  return out;
}

}  // namespace decimate
