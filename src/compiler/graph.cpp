#include "compiler/graph.hpp"

#include <cmath>

namespace decimate {

const char* op_name(OpType op) {
  switch (op) {
    case OpType::kInput: return "input";
    case OpType::kConv2d: return "conv2d";
    case OpType::kFc: return "fc";
    case OpType::kMatmul: return "matmul";
    case OpType::kRelu: return "relu";
    case OpType::kAdd: return "add";
    case OpType::kMaxPool2: return "maxpool2x2";
    case OpType::kAvgPool: return "avgpool";
    case OpType::kLut: return "lut";
    case OpType::kSoftmax: return "softmax";
    case OpType::kLayerNorm: return "layernorm";
    case OpType::kReshape: return "reshape";
    case OpType::kSlice: return "slice";
    case OpType::kConcat: return "concat";
  }
  return "?";
}

Graph::Graph(std::vector<int> input_shape) {
  Node in;
  in.id = 0;
  in.op = OpType::kInput;
  in.name = "input";
  in.out_shape = std::move(input_shape);
  nodes_.push_back(std::move(in));
}

int Graph::add(Node node) {
  node.id = static_cast<int>(nodes_.size());
  for (int in : node.inputs) {
    DECIMATE_CHECK(in >= 0 && in < node.id,
                   "node " << node.name << " input " << in
                           << " is not topologically earlier");
  }
  DECIMATE_CHECK(!node.out_shape.empty(), "node needs an output shape");
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

const Node& Graph::node(int id) const {
  DECIMATE_CHECK(id >= 0 && id < size(), "bad node id " << id);
  return nodes_[static_cast<size_t>(id)];
}

int64_t Graph::total_macs() const {
  int64_t macs = 0;
  for (const auto& n : nodes_) {
    if (n.op == OpType::kConv2d) macs += n.conv.macs();
    if (n.op == OpType::kFc || n.op == OpType::kMatmul) macs += n.fc.macs();
  }
  return macs;
}

Requant calibrate_requant(int fan_in) {
  DECIMATE_CHECK(fan_in > 0, "fan_in must be positive");
  // Accumulator std under iid uniform int8 inputs/weights is
  // ~sqrt(fan_in) * 73 * 73; map ~2 sigma to the int8 range.
  const double acc_std = std::sqrt(static_cast<double>(fan_in)) * 73.0 * 73.0;
  const double scale = 64.0 / (2.0 * acc_std);
  const auto max_abs =
      static_cast<int64_t>(static_cast<double>(fan_in) * 127.0 * 127.0);
  return make_requant(scale, max_abs);
}

}  // namespace decimate
