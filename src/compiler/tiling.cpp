#include "compiler/tiling.hpp"

#include <set>

#include "common/bitutil.hpp"
#include "kernels/kernels.hpp"

namespace decimate {

namespace {

/// Distinct balanced-chunk sizes ceil(total/n) for n = 1..total, aligned
/// up to `grain`.
std::vector<int> chunk_candidates(int total, int grain) {
  std::set<int, std::greater<>> sizes;
  for (int n = 1; n <= total; ++n) {
    int t = static_cast<int>(ceil_div(total, n));
    t = static_cast<int>(round_up(t, grain));
    if (t > 0 && t <= static_cast<int>(round_up(total, grain))) {
      sizes.insert(std::min(t, total));
    }
  }
  return {sizes.begin(), sizes.end()};
}


/// Shard-aware imbalance of splitting `n_tiles` equal tiles over
/// `clusters`: the busiest cluster's share relative to a perfect split
/// (1.0 when tiles divide evenly). Scales the overlap term of the tile-
/// search cost so a shard-aware compile prefers grids every cluster can
/// fill — e.g. 4 tiles beat 3 under 2 clusters even though 3 tiles move
/// slightly less DMA.
double shard_imbalance(int n_tiles, int clusters) {
  if (clusters <= 1 || n_tiles <= 0) return 1.0;
  const int per = (n_tiles + clusters - 1) / clusters;
  return static_cast<double>(per) * clusters / n_tiles;
}

/// Theoretical dense-equivalent MACs/instruction/core of a kernel choice
/// (Sec. 4 analysis), used only to rank tilings.
double theoretical_peak(const KernelChoice& c) {
  const int len = expected_inner_loop_length(c.kind, c.m == 0 ? 8 : c.m);
  const int macs = macs_per_inner_iter(c.kind, c.m == 0 ? 8 : c.m);
  if (len <= 0) return 1.0;
  return static_cast<double>(macs) * std::max(c.m, 1) /
         static_cast<double>(len);
}

int nz_padded_for(int dense_cols, int m) {
  const int nz = dense_cols / m;
  return static_cast<int>(round_up(nz, m == 4 ? 8 : 4));
}

}  // namespace

WeightRowBytes weight_row_bytes(const KernelChoice& choice, int dense_cols) {
  WeightRowBytes out;
  if (!choice.sparse()) {
    out.values = static_cast<int>(round_up(dense_cols, 4));
    out.offsets = 0;
    return out;
  }
  const int m = choice.m;
  const int nzp = nz_padded_for(dense_cols, m);
  out.values = nzp;
  const int bits = (m == 4) ? 2 : 4;
  const bool doubled = kernel_uses_xdec(choice.kind) ||
                       choice.kind == KernelKind::kFcSparseIsa;
  // SW: one field per NZ. Conv-ISA: duplicated fields. FC-ISA: pair rows
  // share a row of 2*nzp fields -> nzp fields per channel on average.
  const int fields_per_row = doubled ? 2 * nzp : nzp;
  out.offsets = static_cast<int>(
      round_up(ceil_div(static_cast<int64_t>(fields_per_row) * bits, 8), 4));
  if (choice.kind == KernelKind::kFcSparseIsa) {
    out.offsets = (out.offsets + 1) / 2;  // per channel (pair row / 2)
  }
  return out;
}

double bits_per_dense_weight(const KernelChoice& choice, int dense_cols) {
  const WeightRowBytes row = weight_row_bytes(choice, dense_cols);
  return 8.0 * static_cast<double>(row.total()) /
         static_cast<double>(dense_cols);
}

std::vector<std::pair<int, int>> tile_ranges(int total, int size) {
  std::vector<std::pair<int, int>> out;
  for (int s = 0; s < total; s += size) {
    out.emplace_back(s, std::min(total, s + size));
  }
  return out;
}

ConvTilePlan plan_conv_tiles(const ConvGeom& g, const KernelChoice& choice,
                             int num_cores, int64_t l1_budget,
                             int min_tiles, int batch) {
  g.validate();
  DECIMATE_CHECK(min_tiles >= 1 && batch >= 1, "bad min_tiles/batch");
  const int oy = g.oy(), ox = g.ox();
  const int ixp = g.ix + 2 * g.pad;
  const WeightRowBytes row = weight_row_bytes(choice, g.fsz());
  const int k_grain = (choice.kind == KernelKind::kConvDense4x2) ? 4 : 1;
  const int args_bytes = ConvArgs::size_words(num_cores) * 4;
  const int slack = choice.sparse()
                        ? (nz_padded_for(g.fsz(), choice.m) -
                           g.fsz() / choice.m) * choice.m
                        : 0;
  const int64_t buf_core = round_up(g.fsz() + slack, 4);
  const int64_t imcol = static_cast<int64_t>(num_cores) * 2 * buf_core;
  // the geometry may not be able to produce min_tiles tiles at all
  const int need =
      std::min<int>(min_tiles, oy * static_cast<int>(ceil_div(g.k, k_grain)));

  ConvTilePlan best;
  double best_cost = 1e30;
  const auto search = [&](int need_try, int db_try) {
    for (int oy_t : chunk_candidates(oy, 1)) {
      for (int k_t : chunk_candidates(g.k, k_grain)) {
        const int n_oy = static_cast<int>(ceil_div(oy, oy_t));
        const int n_k = static_cast<int>(ceil_div(g.k, k_t));
        if (n_oy * n_k < need_try) continue;  // too few tiles to shard
        const int iy_t = (oy_t - 1) * g.stride + g.fy;
        const int64_t in_tile = static_cast<int64_t>(iy_t) * ixp * g.c;
        const int64_t w_tile =
            static_cast<int64_t>(k_t) * row.total() + 4ll * k_t;  // + bias
        const int64_t out_tile = static_cast<int64_t>(oy_t) * ox * k_t;
        const bool multi = n_oy * n_k > 1;
        const int64_t db = multi ? db_try : 1;  // double buffering
        const int64_t l1 = args_bytes + imcol + db * (in_tile + out_tile) +
                           (n_k > 1 ? db : 1) * w_tile;
        if (l1 > l1_budget) continue;
        for (bool k_outer : {false, true}) {
          // bytes moved; a batch streams inputs/outputs once per image,
          // but a K-outer order keeps each weight tile resident across
          // the whole batch (once per batch, not once per image)
          const int64_t in_total = static_cast<int64_t>(k_outer ? n_k : 1) *
                                   n_oy * batch * in_tile;
          const int64_t w_total =
              static_cast<int64_t>(k_outer ? 1 : n_oy * batch) * n_k * w_tile;
          const int64_t out_total =
              static_cast<int64_t>(n_oy) * n_k * batch * out_tile;
          // crude cost: DMA cycles at 8 B/cyc + 30 cyc per transfer vs
          // compute at the kernel's theoretical peak; they overlap.
          const double dma =
              static_cast<double>(in_total + w_total + out_total) / 8.0 +
              30.0 * static_cast<double>(n_oy * n_k * batch);
          const double peak =
              static_cast<double>(theoretical_peak(choice));
          const double compute = static_cast<double>(g.macs()) *
                                 static_cast<double>(batch) /
                                 (peak * num_cores);
          // Secondary preference for less total DMA traffic (see the FC
          // search): when compute hides the DMA entirely, max() alone
          // cannot see weight re-fetches, so batch-fused schedules would
          // never flip to the weight-resident K-outer order.
          const double cost =
              std::max(dma, compute) * shard_imbalance(n_oy * n_k, min_tiles) +
              0.01 * dma + 0.001 * static_cast<double>(n_oy * n_k);
          if (cost < best_cost) {
            best_cost = cost;
            best = ConvTilePlan{oy_t, k_t, k_outer, l1, n_oy, n_k,
                                in_total, w_total, out_total, db_try == 2};
          }
        }
      }
    }
  };
  // db = 2: ping-pong buffers for overlap; db = 1: fallback when L1 is too
  // tight (DMA then serializes with compute). The shard min-tile
  // constraint softens before double buffering does.
  for (int need_try : {need, 1}) {
    if (best.oy_t != 0) break;
    for (int db_try : {2, 1}) {
      if (best.oy_t != 0) break;
      search(need_try, db_try);
    }
  }
  DECIMATE_CHECK(best.oy_t != 0,
                 "no conv tiling fits L1 for K=" << g.k << " C=" << g.c
                                                 << " fsz=" << g.fsz());
  return best;
}

FcTilePlan plan_fc_tiles(const FcGeom& g, const KernelChoice& choice,
                         int num_cores, int64_t l1_budget, int min_tiles) {
  g.validate();
  DECIMATE_CHECK(min_tiles >= 1, "bad min_tiles");
  const WeightRowBytes row = weight_row_bytes(choice, g.c);
  const int k_grain = (choice.kind == KernelKind::kFcSparseSw) ? 1 : 2;
  const int args_bytes = FcArgs::size_words(num_cores) * 4;
  const int slack = choice.sparse()
                        ? nz_padded_for(g.c, choice.m) * choice.m - g.c + 64
                        : 0;
  const int need = std::min<int>(
      min_tiles, g.tokens * static_cast<int>(ceil_div(g.k, k_grain)));

  FcTilePlan best;
  double best_cost = 1e30;
  const auto search = [&](int need_try, int db_try) {
    for (int tok_t : chunk_candidates(g.tokens, 1)) {
      for (int k_t : chunk_candidates(g.k, k_grain)) {
        const int n_tok = static_cast<int>(ceil_div(g.tokens, tok_t));
        const int n_k = static_cast<int>(ceil_div(g.k, k_t));
        if (n_tok * n_k < need_try) continue;  // too few tiles to shard
        const int64_t in_tile = static_cast<int64_t>(tok_t) * g.c + slack;
        const int64_t w_tile =
            static_cast<int64_t>(k_t) * row.total() + 4ll * k_t;
        const int64_t out_tile = static_cast<int64_t>(tok_t) * k_t;
        const bool multi = n_tok * n_k > 1;
        const int64_t db = multi ? db_try : 1;
        const int64_t l1 =
            args_bytes + db * (in_tile + out_tile) + (multi ? db : 1) * w_tile;
        if (l1 > l1_budget) continue;
        for (bool k_outer : {false, true}) {
          const int64_t in_total =
              static_cast<int64_t>(k_outer ? n_k : 1) * n_tok * in_tile;
          const int64_t w_total =
              static_cast<int64_t>(k_outer ? 1 : n_tok) * n_k * w_tile;
          const int64_t out_total =
              static_cast<int64_t>(n_tok) * n_k * out_tile;
          const double dma =
              static_cast<double>(in_total + w_total + out_total) / 8.0 +
              30.0 * static_cast<double>(n_tok * n_k);
          const double peak =
              static_cast<double>(theoretical_peak(choice));
          const double compute =
              static_cast<double>(g.macs()) / (peak * num_cores);
          // Secondary preference for less total DMA traffic: when compute
          // hides the DMA entirely, max() alone cannot see weight re-fetches,
          // so batch-fused token dims would never amortize weight DMA. The
          // small traffic term steers near-ties toward schedules that fetch
          // each weight tile once per (batched) token pass.
          const double cost =
              std::max(dma, compute) *
                  shard_imbalance(n_tok * n_k, min_tiles) +
              0.01 * dma + 0.001 * static_cast<double>(n_tok * n_k);
          if (cost < best_cost) {
            best_cost = cost;
            best = FcTilePlan{tok_t, k_t, k_outer, l1, n_tok, n_k,
                              in_total, w_total, out_total, db_try == 2};
          }
        }
      }
    }
  };
  for (int need_try : {need, 1}) {
    if (best.tok_t != 0) break;
    for (int db_try : {2, 1}) {
      if (best.tok_t != 0) break;
      search(need_try, db_try);
    }
  }
  DECIMATE_CHECK(best.tok_t != 0, "no fc tiling fits L1 for K=" << g.k
                                                                << " C=" << g.c);
  return best;
}

}  // namespace decimate
