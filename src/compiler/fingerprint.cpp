#include "compiler/fingerprint.hpp"

#include <span>

namespace decimate {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

struct Fnv {
  uint64_t h = kFnvOffset;

  void bytes(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    for (size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= kFnvPrime;
    }
  }
  void u64(uint64_t v) { bytes(&v, sizeof(v)); }
  void i32(int32_t v) { bytes(&v, sizeof(v)); }
  template <typename T>
  void vec(const std::vector<T>& v) {
    u64(v.size());
    if (!v.empty()) bytes(v.data(), v.size() * sizeof(T));
  }
  template <typename T>
  void tensor(const T& t) {
    vec(t.shape());
    const auto f = t.flat();
    u64(f.size());
    if (!f.empty()) bytes(f.data(), f.size_bytes());
  }
};

}  // namespace

uint64_t graph_fingerprint(const Graph& graph) {
  Fnv f;
  f.i32(graph.size());
  for (const Node& node : graph.nodes()) {
    f.i32(node.id);
    f.i32(static_cast<int32_t>(node.op));
    f.u64(node.name.size());
    f.bytes(node.name.data(), node.name.size());
    f.vec(node.inputs);
    f.vec(node.out_shape);
    f.i32(node.conv.ix);
    f.i32(node.conv.iy);
    f.i32(node.conv.c);
    f.i32(node.conv.k);
    f.i32(node.conv.fx);
    f.i32(node.conv.fy);
    f.i32(node.conv.stride);
    f.i32(node.conv.pad);
    f.i32(node.fc.tokens);
    f.i32(node.fc.c);
    f.i32(node.fc.k);
    f.i32(node.rq.mult);
    f.i32(node.rq.shift);
    f.i32(node.rq2.mult);
    f.i32(node.rq2.shift);
    f.tensor(node.weights);
    f.tensor(node.bias);
    f.tensor(node.gamma);
    f.tensor(node.beta);
    f.vec(node.lut);
    f.vec(node.exp_lut);
    f.i32(node.transpose_b ? 1 : 0);
    f.i32(node.slice_begin);
    f.i32(node.slice_end);
  }
  return f.h;
}

uint64_t options_fingerprint(const CompileOptions& opt) {
  // host_threads, latency_cache_path and verify_plans are deliberately
  // absent: they change how a plan is produced or validated, never what
  // it contains.
  Fnv f;
  f.i32(opt.enable_sparse ? 1 : 0);
  f.i32(opt.enable_isa ? 1 : 0);
  f.i32(opt.pulpnn_dense ? 1 : 0);
  f.i32(opt.interleaved_weights ? 1 : 0);
  f.i32(opt.lockstep ? 1 : 0);
  f.i32(opt.xdec_forwarding ? 1 : 0);
  f.i32(opt.num_cores);
  f.i32(opt.batch);
  f.i32(opt.num_clusters);
  return f.h;
}

uint64_t plan_fingerprint(const Graph& graph, const CompileOptions& opt) {
  return plan_fingerprint_from(graph_fingerprint(graph), opt);
}

uint64_t plan_fingerprint_from(uint64_t graph_fp, const CompileOptions& opt) {
  Fnv f;
  f.u64(graph_fp);
  f.u64(options_fingerprint(opt));
  return f.h;
}

}  // namespace decimate
