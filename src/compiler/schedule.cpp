#include "compiler/schedule.hpp"

#include <cstring>
#include <functional>
#include <sstream>

#include "common/bitutil.hpp"
#include "kernels/launch.hpp"
#include "kernels/vecops.hpp"
#include "nn/nm_format.hpp"
#include "nn/prune.hpp"
#include "nn/ref_ops.hpp"

namespace decimate {

namespace {

ClusterConfig cluster_config_from(const CompileOptions& opt) {
  ClusterConfig cfg;
  cfg.num_cores = opt.num_cores;
  cfg.lockstep = opt.lockstep;
  cfg.core.xdec_forwarding = opt.xdec_forwarding;
  return cfg;
}

/// Balanced ranges of `total` into pieces of at most `size` (grain-aligned
/// except possibly the last).
std::vector<std::pair<int, int>> ranges_of(int total, int size) {
  std::vector<std::pair<int, int>> out;
  for (int s = 0; s < total; s += size) {
    out.emplace_back(s, std::min(total, s + size));
  }
  return out;
}

Tensor8 transpose2d(const Tensor8& x) {
  DECIMATE_CHECK(x.rank() == 2, "transpose expects 2D");
  const int r = x.dim(0), c = x.dim(1);
  Tensor8 out({c, r});
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) out.at({j, i}) = x.at({i, j});
  }
  return out;
}

}  // namespace

int64_t deployed_weight_bytes(const Node& node, const KernelChoice& choice) {
  const int rows = (node.op == OpType::kConv2d) ? node.conv.k : node.fc.k;
  const int cols = (node.op == OpType::kConv2d) ? node.conv.fsz() : node.fc.c;
  int64_t bytes = 0;
  if (choice.sparse()) {
    bytes = nm_bytes(rows, cols, choice.m,
                     /*duplicated=*/choice.kind == KernelKind::kConvSparseIsa);
  } else {
    bytes = dense_bytes(rows, cols);
  }
  return bytes + 4ll * rows;  // int32 bias
}

ScheduleExecutor::ScheduleExecutor(const CompileOptions& opt)
    : opt_(opt), cluster_(cluster_config_from(opt)), dma_(cluster_.mem()) {}

MemRegion ScheduleExecutor::weight_region(int64_t deployed_bytes) {
  // Leave ~20% of L2 for activations and buffers.
  const auto l2_budget = static_cast<int64_t>(MemoryMap::kL2Size * 8 / 10);
  return deployed_bytes <= l2_budget ? MemRegion::kL2 : MemRegion::kL3;
}

uint64_t ScheduleExecutor::pipeline_total(const std::vector<TileCost>& tiles) {
  if (tiles.empty()) return 0;
  uint64_t total = tiles.front().dma_in;
  const size_t n = tiles.size();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t overlap = (i + 1 < n ? tiles[i + 1].dma_in : 0) +
                             (i > 0 ? tiles[i - 1].dma_out : 0);
    total += std::max(tiles[i].compute, overlap);
  }
  total += tiles.back().dma_out;
  return total;
}

uint64_t ScheduleExecutor::measure(const std::string& key,
                                   const std::function<uint64_t()>& fn) {
  auto it = latency_cache_.find(key);
  if (it != latency_cache_.end()) return it->second;
  const uint64_t cycles = fn();
  latency_cache_.emplace(key, cycles);
  return cycles;
}

uint64_t ScheduleExecutor::measure_conv_tile(const KernelChoice& choice,
                                             const ConvGeom& g) {
  std::ostringstream key;
  key << "conv|" << static_cast<int>(choice.kind) << "|" << choice.m << "|"
      << g.ix << "x" << g.iy << "x" << g.c << "|k" << g.k << "|f" << g.fx
      << "x" << g.fy << "|s" << g.stride << "|p" << g.pad;
  return measure(key.str(), [&]() -> uint64_t {
    KernelLauncher launcher(cluster_);
    const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng_);
    Tensor32 bias({g.k}, 0);
    const Requant rq{1, 8};
    if (choice.sparse()) {
      Tensor8 w = Tensor8::random({g.k, g.fsz()}, rng_);
      nm_prune(w.flat(), g.k, g.fsz(), 1, choice.m);
      const NmPacked packed = nm_pack(w.flat(), g.k, g.fsz(), choice.m,
                                      KernelLauncher::layout_for(choice.kind));
      return launcher.conv(choice.kind, g, rq, input, nullptr, &packed, bias)
          .result.wall_cycles;
    }
    Tensor8 w = Tensor8::random({g.k, g.fsz()}, rng_);
    return launcher.conv(choice.kind, g, rq, input, &w, nullptr, bias)
        .result.wall_cycles;
  });
}

uint64_t ScheduleExecutor::measure_fc_tile(const KernelChoice& choice,
                                           const FcGeom& g) {
  std::ostringstream key;
  key << "fc|" << static_cast<int>(choice.kind) << "|" << choice.m << "|t"
      << g.tokens << "|c" << g.c << "|k" << g.k;
  return measure(key.str(), [&]() -> uint64_t {
    KernelLauncher launcher(cluster_);
    const Tensor8 input = Tensor8::random({g.tokens, g.c}, rng_);
    Tensor32 bias({g.k}, 0);
    const Requant rq{1, 8};
    if (choice.sparse()) {
      Tensor8 w = Tensor8::random({g.k, g.c}, rng_);
      nm_prune(w.flat(), g.k, g.c, 1, choice.m);
      const NmPacked packed = nm_pack(w.flat(), g.k, g.c, choice.m,
                                      KernelLauncher::layout_for(choice.kind));
      return launcher.fc(choice.kind, g, rq, input, nullptr, &packed, bias)
          .result.wall_cycles;
    }
    Tensor8 w = Tensor8::random({g.k, g.c}, rng_);
    return launcher.fc(choice.kind, g, rq, input, &w, nullptr, bias)
        .result.wall_cycles;
  });
}

void ScheduleExecutor::exec_gemm_node(const Node& node, const Tensor8& in,
                                      const Tensor8* b_operand, Tensor8& out,
                                      LayerReport& rep) {
  const int64_t l1_budget = cluster_.l1_data_limit() - MemoryMap::kL1Base;
  const int startups_per_w =
      opt_.interleaved_weights ? 1 : (3);  // values + offsets + bias

  if (node.op == OpType::kConv2d) {
    const ConvGeom& g = node.conv;
    const KernelChoice choice = select_kernel(node, opt_);
    const ConvTilePlan plan =
        plan_conv_tiles(g, choice, opt_.num_cores, l1_budget);
    rep.impl = kernel_kind_name(choice.kind);
    if (choice.sparse()) rep.impl += ":1:" + std::to_string(choice.m);
    rep.macs = g.macs();
    rep.weight_bytes = deployed_weight_bytes(node, choice);
    rep.bits_per_weight = bits_per_dense_weight(choice, g.fsz());
    rep.tiles = plan.n_oy * plan.n_k;

    const WeightRowBytes row = weight_row_bytes(choice, g.fsz());
    const int ixp = g.ix + 2 * g.pad;
    const auto oy_ranges = ranges_of(g.oy(), plan.oy_t);
    const auto k_ranges = ranges_of(g.k, plan.k_t);
    std::vector<TileCost> tiles;
    const auto& outer = plan.k_outer ? k_ranges : oy_ranges;
    const auto& inner = plan.k_outer ? oy_ranges : k_ranges;
    for (size_t o = 0; o < outer.size(); ++o) {
      for (size_t i = 0; i < inner.size(); ++i) {
        const auto [oy_s, oy_e] = plan.k_outer ? inner[i] : outer[o];
        const auto [k_s, k_e] = plan.k_outer ? outer[o] : inner[i];
        const int oy_len = oy_e - oy_s, k_len = k_e - k_s;
        ConvGeom tg = g;
        tg.ix = ixp;
        tg.iy = (oy_len - 1) * g.stride + g.fy;
        tg.pad = 0;
        tg.k = k_len;
        TileCost tc;
        tc.compute = measure_conv_tile(choice, tg);
        const bool load_in = plan.k_outer || i == 0;
        const bool load_w = plan.k_outer ? (i == 0) : true;
        if (load_in) {
          tc.dma_in += dma_.cost_2d(static_cast<uint64_t>(tg.iy),
                                    static_cast<uint64_t>(ixp) * g.c,
                                    MemRegion::kL2, MemRegion::kL1);
        }
        if (load_w) {
          const uint64_t w_bytes =
              static_cast<uint64_t>(k_len) * row.total() + 4ull * k_len;
          tc.dma_in += dma_.cost_1d(w_bytes, w_region_, MemRegion::kL1);
          // separate-transfer ablation: extra startups
          for (int s = 1; s < startups_per_w; ++s) {
            tc.dma_in += (w_region_ == MemRegion::kL3)
                             ? dma_.config().l3_startup_cycles
                             : dma_.config().l2_startup_cycles;
          }
        }
        tc.dma_out = dma_.cost_1d(
            static_cast<uint64_t>(oy_len) * g.ox() * k_len, MemRegion::kL1,
            MemRegion::kL2);
        rep.compute_cycles += tc.compute;
        rep.dma_cycles += tc.dma_in + tc.dma_out;
        tiles.push_back(tc);
      }
    }
    rep.total_cycles = plan.double_buffered
                           ? pipeline_total(tiles)
                           : rep.compute_cycles + rep.dma_cycles;

    // numerics
    out = conv2d_s8(in, node.weights, node.bias, g, node.rq);
    if (verify_with_sim_ && rep.tiles == 1) {
      KernelLauncher launcher(cluster_);
      KernelRun kr;
      if (choice.sparse()) {
        const NmPacked packed =
            nm_pack(node.weights.flat(), g.k, g.fsz(), choice.m,
                    KernelLauncher::layout_for(choice.kind));
        kr = launcher.conv(choice.kind, g, node.rq, in, nullptr, &packed,
                           node.bias);
      } else {
        kr = launcher.conv(choice.kind, g, node.rq, in, &node.weights,
                           nullptr, node.bias);
      }
      DECIMATE_CHECK(kr.output == out,
                     "verify: ISS conv output mismatch on " << node.name);
    }
    return;
  }

  // FC / matmul
  FcGeom g = node.fc;
  KernelChoice choice = select_kernel(node, opt_);
  Tensor8 bmat;  // matmul operand acting as weights
  const Tensor8* weights = &node.weights;
  Tensor32 zero_bias;
  const Tensor32* bias = &node.bias;
  uint64_t extra_cycles = 0;
  if (node.op == OpType::kMatmul) {
    DECIMATE_CHECK(b_operand != nullptr, "matmul needs a second operand");
    bmat = node.transpose_b ? transpose2d(*b_operand) : *b_operand;
    // the on-device transpose is a strided 2D DMA pass inside L2
    if (node.transpose_b) {
      extra_cycles += dma_.cost_2d(static_cast<uint64_t>(bmat.dim(0)),
                                   static_cast<uint64_t>(bmat.dim(1)),
                                   MemRegion::kL2, MemRegion::kL2);
    }
    weights = &bmat;
    zero_bias = Tensor32({g.k}, 0);
    bias = &zero_bias;
  }
  // numerics first (on the logical geometry)
  out = fc_s8(in, *weights, *bias, node.rq);

  // odd K with a pair kernel: pad the cycle-model geometry to even
  FcGeom cg = g;
  if (choice.kind != KernelKind::kFcSparseSw && cg.k % 2 != 0) cg.k += 1;
  const FcTilePlan plan = plan_fc_tiles(cg, choice, opt_.num_cores, l1_budget);
  rep.impl = kernel_kind_name(choice.kind);
  if (choice.sparse()) rep.impl += ":1:" + std::to_string(choice.m);
  rep.macs = g.macs();
  rep.weight_bytes =
      (node.op == OpType::kMatmul) ? 0 : deployed_weight_bytes(node, choice);
  rep.bits_per_weight = bits_per_dense_weight(choice, g.c);
  rep.tiles = plan.n_tok * plan.n_k;

  const WeightRowBytes row = weight_row_bytes(choice, cg.c);
  // matmul "weights" are activations living in L2
  const MemRegion wreg =
      (node.op == OpType::kMatmul) ? MemRegion::kL2 : w_region_;
  const auto tok_ranges = ranges_of(cg.tokens, plan.tok_t);
  const auto k_ranges = ranges_of(cg.k, plan.k_t);
  std::vector<TileCost> tiles;
  const auto& outer = plan.k_outer ? k_ranges : tok_ranges;
  const auto& inner = plan.k_outer ? tok_ranges : k_ranges;
  for (size_t o = 0; o < outer.size(); ++o) {
    for (size_t i = 0; i < inner.size(); ++i) {
      const auto [t_s, t_e] = plan.k_outer ? inner[i] : outer[o];
      const auto [k_s, k_e] = plan.k_outer ? outer[o] : inner[i];
      FcGeom tg;
      tg.tokens = t_e - t_s;
      tg.c = cg.c;
      tg.k = k_e - k_s;
      if (choice.kind != KernelKind::kFcSparseSw && tg.k % 2 != 0) tg.k += 1;
      TileCost tc;
      tc.compute = measure_fc_tile(choice, tg);
      const bool load_in = plan.k_outer || i == 0;
      const bool load_w = plan.k_outer ? (i == 0) : true;
      if (load_in) {
        tc.dma_in += dma_.cost_1d(static_cast<uint64_t>(tg.tokens) * cg.c,
                                  MemRegion::kL2, MemRegion::kL1);
      }
      if (load_w) {
        const uint64_t w_bytes =
            static_cast<uint64_t>(tg.k) * row.total() + 4ull * tg.k;
        tc.dma_in += dma_.cost_1d(w_bytes, wreg, MemRegion::kL1);
        for (int s = 1; s < startups_per_w; ++s) {
          tc.dma_in += (wreg == MemRegion::kL3)
                           ? dma_.config().l3_startup_cycles
                           : dma_.config().l2_startup_cycles;
        }
      }
      tc.dma_out =
          dma_.cost_1d(static_cast<uint64_t>(tg.tokens) * tg.k,
                       MemRegion::kL1, MemRegion::kL2);
      rep.compute_cycles += tc.compute;
      rep.dma_cycles += tc.dma_in + tc.dma_out;
      tiles.push_back(tc);
    }
  }
  rep.total_cycles = (plan.double_buffered
                          ? pipeline_total(tiles)
                          : rep.compute_cycles + rep.dma_cycles) +
                     extra_cycles;

  if (verify_with_sim_ && rep.tiles == 1 && node.op == OpType::kFc &&
      (choice.kind == KernelKind::kFcSparseSw || g.k % 2 == 0)) {
    KernelLauncher launcher(cluster_);
    KernelRun kr;
    if (choice.sparse()) {
      const NmPacked packed =
          nm_pack(node.weights.flat(), g.k, g.c, choice.m,
                  KernelLauncher::layout_for(choice.kind));
      kr = launcher.fc(choice.kind, g, node.rq, in, nullptr, &packed,
                       node.bias);
    } else {
      kr = launcher.fc(choice.kind, g, node.rq, in, &node.weights, nullptr,
                       node.bias);
    }
    DECIMATE_CHECK(kr.output == out,
                   "verify: ISS fc output mismatch on " << node.name);
  }
}

void ScheduleExecutor::exec_vec_node(const Node& node,
                                     const std::vector<const Tensor8*>& in,
                                     Tensor8& out, LayerReport& rep) {
  const auto& x = *in[0];
  rep.impl = op_name(node.op);

  // numerics via the reference op
  switch (node.op) {
    case OpType::kRelu: out = relu_s8(x); break;
    case OpType::kAdd: out = add_s8(x, node.rq, *in[1], node.rq2); break;
    case OpType::kMaxPool2: out = maxpool2x2_s8(x); break;
    case OpType::kAvgPool: out = global_avgpool_s8(x, node.rq); break;
    case OpType::kLut: out = lut_s8(x, node.lut); break;
    case OpType::kSoftmax: out = softmax_s8(x, node.exp_lut); break;
    case OpType::kLayerNorm: out = layernorm_s8(x, node.gamma, node.beta); break;
    case OpType::kReshape: {
      out = Tensor8(node.out_shape);
      DECIMATE_CHECK(out.numel() == x.numel(), "reshape numel mismatch");
      std::copy(x.flat().begin(), x.flat().end(), out.flat().begin());
      rep.total_cycles = 0;
      return;
    }
    case OpType::kSlice: {
      DECIMATE_CHECK(x.rank() == 2, "slice expects {T, C}");
      const int t = x.dim(0);
      const int w = node.slice_end - node.slice_begin;
      DECIMATE_CHECK(w > 0 && node.slice_end <= x.dim(1), "bad slice range");
      out = Tensor8({t, w});
      for (int i = 0; i < t; ++i) {
        std::memcpy(out.data() + static_cast<int64_t>(i) * w,
                    x.data() + static_cast<int64_t>(i) * x.dim(1) +
                        node.slice_begin,
                    static_cast<size_t>(w));
      }
      // column gather = strided 2D DMA inside L2
      rep.dma_cycles = dma_.cost_2d(static_cast<uint64_t>(t),
                                    static_cast<uint64_t>(w), MemRegion::kL2,
                                    MemRegion::kL2);
      rep.total_cycles = rep.dma_cycles;
      return;
    }
    case OpType::kConcat: {
      const int t = in[0]->dim(0);
      int total_c = 0;
      for (const Tensor8* p : in) {
        DECIMATE_CHECK(p->rank() == 2 && p->dim(0) == t, "concat mismatch");
        total_c += p->dim(1);
      }
      out = Tensor8({t, total_c});
      int col = 0;
      for (const Tensor8* p : in) {
        const int w = p->dim(1);
        for (int i = 0; i < t; ++i) {
          std::memcpy(out.data() + static_cast<int64_t>(i) * total_c + col,
                      p->data() + static_cast<int64_t>(i) * w,
                      static_cast<size_t>(w));
        }
        rep.dma_cycles += dma_.cost_2d(static_cast<uint64_t>(t),
                                       static_cast<uint64_t>(w),
                                       MemRegion::kL2, MemRegion::kL2);
        col += w;
      }
      rep.total_cycles = rep.dma_cycles;
      return;
    }
    default: DECIMATE_FAIL("bad vec op");
  }

  // cycles: chunked ISS measurement + DMA pipeline
  auto chunked = [&](int total_rows, int row_bytes, int out_row_bytes,
                     int l1_per_row, const char* tag,
                     const std::function<uint64_t(int)>& measure_rows) {
    const int64_t budget =
        (cluster_.l1_data_limit() - MemoryMap::kL1Base) - 4096;
    int rows_per_chunk = std::max<int>(
        1, static_cast<int>(budget / std::max(1, 2 * l1_per_row)));
    rows_per_chunk = std::min(rows_per_chunk, total_rows);
    std::vector<TileCost> tiles;
    for (const auto& [s, e] : ranges_of(total_rows, rows_per_chunk)) {
      std::ostringstream key;
      key << tag << "|rows" << (e - s) << "|rb" << row_bytes;
      TileCost tc;
      tc.compute = measure(key.str(), [&] { return measure_rows(e - s); });
      tc.dma_in = dma_.cost_1d(static_cast<uint64_t>(e - s) * row_bytes,
                               MemRegion::kL2, MemRegion::kL1);
      tc.dma_out = dma_.cost_1d(static_cast<uint64_t>(e - s) * out_row_bytes,
                                MemRegion::kL1, MemRegion::kL2);
      rep.compute_cycles += tc.compute;
      rep.dma_cycles += tc.dma_in + tc.dma_out;
      tiles.push_back(tc);
    }
    rep.tiles = static_cast<int>(tiles.size());
    rep.total_cycles = pipeline_total(tiles);
  };

  switch (node.op) {
    case OpType::kRelu: {
      const int words = static_cast<int>(x.numel() / 4);
      chunked(words, 4, 4, 8, "relu", [&](int rows) {
        Tensor8 chunk = Tensor8::random({rows * 4}, rng_);
        return run_relu(cluster_, chunk).result.wall_cycles;
      });
      break;
    }
    case OpType::kAdd: {
      chunked(static_cast<int>(x.numel()), 2, 1, 3, "add", [&](int rows) {
        Tensor8 a = Tensor8::random({rows}, rng_);
        Tensor8 b = Tensor8::random({rows}, rng_);
        return run_add(cluster_, a, node.rq, b, node.rq2).result.wall_cycles;
      });
      break;
    }
    case OpType::kLut: {
      chunked(static_cast<int>(x.numel()), 1, 1, 2, "lut", [&](int rows) {
        Tensor8 chunk = Tensor8::random({rows}, rng_);
        return run_lut(cluster_, chunk, node.lut).result.wall_cycles;
      });
      break;
    }
    case OpType::kMaxPool2: {
      const int h = x.dim(0), w = x.dim(1), c = x.dim(2);
      chunked(h / 2, 2 * w * c, (w / 2) * c, 3 * w * c, "maxpool",
              [&](int rows) {
                Tensor8 chunk = Tensor8::random({2 * rows, w, c}, rng_);
                return run_maxpool2x2(cluster_, chunk).result.wall_cycles;
              });
      break;
    }
    case OpType::kAvgPool: {
      const int h = x.dim(0), w = x.dim(1), c = x.dim(2);
      std::ostringstream key;
      key << "avgpool|" << h << "x" << w << "x" << c;
      TileCost tc;
      tc.compute = measure(key.str(), [&] {
        Tensor8 chunk = Tensor8::random({h, w, c}, rng_);
        return run_avgpool(cluster_, chunk, node.rq).result.wall_cycles;
      });
      tc.dma_in = dma_.cost_1d(x.numel(), MemRegion::kL2, MemRegion::kL1);
      tc.dma_out = dma_.cost_1d(static_cast<uint64_t>(c), MemRegion::kL1,
                                MemRegion::kL2);
      rep.compute_cycles = tc.compute;
      rep.dma_cycles = tc.dma_in + tc.dma_out;
      rep.total_cycles = pipeline_total({tc});
      break;
    }
    case OpType::kSoftmax: {
      const int t = x.dim(0), l = x.dim(1);
      chunked(t, l, l, 3 * l, "softmax", [&](int rows) {
        Tensor8 chunk = Tensor8::random({rows, l}, rng_);
        return run_softmax(cluster_, chunk, node.exp_lut).result.wall_cycles;
      });
      break;
    }
    case OpType::kLayerNorm: {
      const int t = x.dim(0), l = x.dim(1);
      chunked(t, l, l, 3 * l, "layernorm", [&](int rows) {
        Tensor8 chunk = Tensor8::random({rows, l}, rng_);
        return run_layernorm(cluster_, chunk, node.gamma, node.beta)
            .result.wall_cycles;
      });
      break;
    }
    default: break;
  }
}

NetworkRun ScheduleExecutor::run(const Graph& graph, const Tensor8& input) {
  // decide weight residency for the whole model
  int64_t deployed = 0;
  for (const auto& node : graph.nodes()) {
    if (node.op == OpType::kConv2d || node.op == OpType::kFc) {
      deployed += deployed_weight_bytes(node, select_kernel(node, opt_));
    }
  }
  w_region_ = weight_region(deployed);

  NetworkRun net;
  net.weight_bytes = deployed;
  std::vector<Tensor8> outputs(static_cast<size_t>(graph.size()));
  DECIMATE_CHECK(input.shape() == graph.node(0).out_shape,
                 "graph input shape mismatch");
  outputs[0] = input;

  for (int id = 1; id < graph.size(); ++id) {
    const Node& node = graph.node(id);
    LayerReport rep;
    rep.name = node.name;
    const Tensor8& in0 = outputs[static_cast<size_t>(node.inputs.at(0))];
    switch (node.op) {
      case OpType::kConv2d:
      case OpType::kFc:
        exec_gemm_node(node, in0, nullptr, outputs[static_cast<size_t>(id)],
                       rep);
        break;
      case OpType::kMatmul:
        exec_gemm_node(node, in0,
                       &outputs[static_cast<size_t>(node.inputs.at(1))],
                       outputs[static_cast<size_t>(id)], rep);
        break;
      case OpType::kInput:
        DECIMATE_FAIL("unexpected input node");
      default: {
        std::vector<const Tensor8*> ins;
        ins.reserve(node.inputs.size());
        for (int i : node.inputs) {
          ins.push_back(&outputs[static_cast<size_t>(i)]);
        }
        exec_vec_node(node, ins, outputs[static_cast<size_t>(id)], rep);
        break;
      }
    }
    DECIMATE_CHECK(outputs[static_cast<size_t>(id)].shape() == node.out_shape,
                   "node " << node.name << " produced unexpected shape");
    net.total_cycles += rep.total_cycles;
    net.total_macs += rep.macs;
    net.layers.push_back(std::move(rep));
  }
  net.output = outputs.back();
  return net;
}

}  // namespace decimate
