#pragma once
// Sparse pattern recognition and kernel selection — the compiler's pattern
// table (Sec. 4.4, feature 1). Conv/FC nodes whose weights match a 1:M
// pattern (M in {4, 8, 16}) are mapped to the sparse kernels; everything
// else falls back to the dense baselines.

#include <string>

#include "compiler/graph.hpp"
#include "kernels/abi.hpp"

namespace decimate {

struct CompileOptions {
  bool enable_sparse = true;   // recognize N:M patterns at all
  bool enable_isa = false;     // use the xDecimate kernels
  bool pulpnn_dense = true;    // 4x2 PULP-NN for dense convs (else 1x2)
  bool interleaved_weights = true;  // single-DMA weight+index layout (E10)
  bool lockstep = false;       // TCDM-contention simulation mode
  bool xdec_forwarding = true; // XFU forwarding path present
  int num_cores = 8;
  // Batch size the plan is costed for. When > 1, FC tiling fuses the batch
  // dimension into FcGeom::tokens so each weight tile is fetched once per
  // batch instead of once per image, and conv tiling fuses the batch into
  // the OY tile loop (K tiles outer, all images' row tiles swept per
  // weight residency) so conv weight DMA amortizes the same way; reports
  // stay per-image (amortized). Numerics are unaffected — images are
  // independent.
  int batch = 1;
  // Cluster count the plan is sharded across (see shard/). When > 1, the
  // tile search is constrained to produce at least this many tiles per
  // gemm/vector step where the geometry allows, so the ShardPlanner can
  // hand every cluster work. Changes tile schedules (and therefore plan
  // identity — plan_fingerprint salts on it); numerics are unaffected.
  int num_clusters = 1;
  // Host-side execution threads per image: ExecutionEngine::run splits
  // each sufficiently large gemm step's output rows (conv) or tokens/
  // channels (FC) across the engine's WorkerPool using the ranged host
  // ops — disjoint ranges stitch bit-exactly, so numerics are unaffected.
  // 1 (default) = serial; 0 = hardware concurrency; engines can override
  // per-engine via set_intra_image_threads. Like latency_cache_path this
  // only changes how fast a plan runs, never what it contains, so it is
  // NOT part of the plan fingerprint.
  int host_threads = 1;
  // Run the static plan verifier (src/verify) as a compile post-pass and
  // throw VerifyError when it finds error-level defects. On by default in
  // Debug builds; Release builds opt in explicitly (the serving PlanStore
  // always verifies newly admitted plans regardless of this flag). Like
  // host_threads, this never changes what a plan contains, so it is NOT
  // part of the plan fingerprint.
#ifdef NDEBUG
  bool verify_plans = false;
#else
  bool verify_plans = true;
#endif
  // Optional TileLatencyCache warm file: when non-empty, the Compiler
  // (and PlanStore) pre-load measured tile cycles from this path at
  // construction, so a previously-saved file makes compiles ISS-free
  // across process restarts (TileLatencyCache::save writes it back).
  // Not part of the plan fingerprint — the path never changes what a
  // plan contains, only how fast it is costed.
  std::string latency_cache_path;
};

struct KernelChoice {
  KernelKind kind = KernelKind::kConvDense1x2;
  int m = 0;  // 0 = dense
  bool sparse() const { return m != 0; }
};

/// Decide the kernel implementing a conv/fc/matmul node.
KernelChoice select_kernel(const Node& node, const CompileOptions& opt);

}  // namespace decimate
