#include "compiler/pattern.hpp"

#include "nn/prune.hpp"

namespace decimate {

KernelChoice select_kernel(const Node& node, const CompileOptions& opt) {
  switch (node.op) {
    case OpType::kConv2d: {
      if (opt.enable_sparse) {
        const int m = detect_one_to_m(node.weights.flat(), node.conv.k,
                                      node.conv.fsz());
        if (m != 0) {
          // The xDecimate csr implements M in {4, 8, 16}; M=2 runs on the
          // SW sparse kernel (2-bit offsets shared with M=4).
          return {opt.enable_isa && m != 2 ? KernelKind::kConvSparseIsa
                                           : KernelKind::kConvSparseSw,
                  m};
        }
      }
      if (opt.pulpnn_dense && node.conv.k % 4 == 0) {
        return {KernelKind::kConvDense4x2, 0};
      }
      return {KernelKind::kConvDense1x2, 0};
    }
    case OpType::kFc: {
      if (opt.enable_sparse) {
        const int m =
            detect_one_to_m(node.weights.flat(), node.fc.k, node.fc.c);
        // The pair-channel ISA kernel needs an even K and M in {4, 8, 16};
        // fall back to the SW sparse kernel otherwise.
        if (m != 0) {
          if (opt.enable_isa && node.fc.k % 2 == 0 && m != 2) {
            return {KernelKind::kFcSparseIsa, m};
          }
          return {KernelKind::kFcSparseSw, m};
        }
      }
      return {KernelKind::kFcDense, 0};
    }
    case OpType::kMatmul:
      // Both operands are activations: always dense.
      return {KernelKind::kFcDense, 0};
    default:
      DECIMATE_FAIL("select_kernel on non-GEMM node " << op_name(node.op));
  }
}

}  // namespace decimate
