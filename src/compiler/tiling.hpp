#pragma once
// Sparsity-aware L1 tiling engine (Sec. 4.4, feature 2).
//
// The key paper idea: the tile search accounts the *actual* bits per
// dense-equivalent weight of the chosen kernel (e.g. 1:4 with duplicated
// offsets = 12 bits per NZ = 3 bits per dense weight), so sparse layers
// fit larger K-tiles in L1, which reduces input re-reads and adds
// end-to-end speedup on top of the kernel speedup.

#include <cstdint>
#include <utility>
#include <vector>

#include "compiler/pattern.hpp"
#include "nn/layer_geometry.hpp"

namespace decimate {

/// Tile boundaries of one axis: [s, min(total, s + size)) for s = 0, size,
/// 2*size, ... — the exact ranges the compiler's tile-cost loops walk, so
/// the shard planner sees the same boundaries the cost model was built on.
std::vector<std::pair<int, int>> tile_ranges(int total, int size);

/// Per-row weight storage of a kernel choice (values + packed offsets,
/// padded the way the launcher lays them out).
struct WeightRowBytes {
  int values = 0;
  int offsets = 0;
  int total() const { return values + offsets; }
};
WeightRowBytes weight_row_bytes(const KernelChoice& choice, int dense_cols);

/// Bits per dense-equivalent weight (the quantity the paper's modified
/// tiling engine reasons in: 8 for dense; 3 for 1:4 ISA; etc).
double bits_per_dense_weight(const KernelChoice& choice, int dense_cols);

struct ConvTilePlan {
  int oy_t = 0;         // output rows per tile
  int k_t = 0;          // output channels per tile
  bool k_outer = false; // loop order: K tiles outer (input re-read per pass)
  int64_t l1_bytes = 0; // peak L1 footprint
  int n_oy = 0, n_k = 0;
  int64_t dma_in_bytes = 0, dma_w_bytes = 0, dma_out_bytes = 0;  // totals
  bool double_buffered = true;  // false: L1 too tight, DMA serializes
};

/// Search the (oy_t, k_t, loop order) space for the cheapest schedule that
/// fits L1. `min_tiles` (shard-aware compiles: CompileOptions::num_clusters)
/// restricts the search to schedules with at least that many tiles so every
/// cluster can own one; it softens to the best achievable count when the
/// geometry cannot produce enough tiles. `batch` > 1 costs a batch-fused
/// schedule: inputs/outputs stream once per image but a K-outer order keeps
/// each weight tile resident across the whole batch, which the search's
/// DMA-traffic term rewards.
ConvTilePlan plan_conv_tiles(const ConvGeom& g, const KernelChoice& choice,
                             int num_cores, int64_t l1_budget,
                             int min_tiles = 1, int batch = 1);

struct FcTilePlan {
  int tok_t = 0;
  int k_t = 0;
  bool k_outer = false;  // K tiles outer: activations re-read per pass
  int64_t l1_bytes = 0;
  int n_tok = 0, n_k = 0;
  int64_t dma_in_bytes = 0, dma_w_bytes = 0, dma_out_bytes = 0;
  bool double_buffered = true;  // false: L1 too tight, DMA serializes
};

/// FC tile search; `min_tiles` as in plan_conv_tiles (batch fusion enters
/// through an inflated g.tokens instead of a parameter — FC rows are
/// independent, so the batch is just more rows).
FcTilePlan plan_fc_tiles(const FcGeom& g, const KernelChoice& choice,
                         int num_cores, int64_t l1_budget,
                         int min_tiles = 1);

}  // namespace decimate
