#pragma once
// Sparsity-aware L1 tiling engine (Sec. 4.4, feature 2).
//
// The key paper idea: the tile search accounts the *actual* bits per
// dense-equivalent weight of the chosen kernel (e.g. 1:4 with duplicated
// offsets = 12 bits per NZ = 3 bits per dense weight), so sparse layers
// fit larger K-tiles in L1, which reduces input re-reads and adds
// end-to-end speedup on top of the kernel speedup.

#include <cstdint>

#include "compiler/pattern.hpp"
#include "nn/layer_geometry.hpp"

namespace decimate {

/// Per-row weight storage of a kernel choice (values + packed offsets,
/// padded the way the launcher lays them out).
struct WeightRowBytes {
  int values = 0;
  int offsets = 0;
  int total() const { return values + offsets; }
};
WeightRowBytes weight_row_bytes(const KernelChoice& choice, int dense_cols);

/// Bits per dense-equivalent weight (the quantity the paper's modified
/// tiling engine reasons in: 8 for dense; 3 for 1:4 ISA; etc).
double bits_per_dense_weight(const KernelChoice& choice, int dense_cols);

struct ConvTilePlan {
  int oy_t = 0;         // output rows per tile
  int k_t = 0;          // output channels per tile
  bool k_outer = false; // loop order: K tiles outer (input re-read per pass)
  int64_t l1_bytes = 0; // peak L1 footprint
  int n_oy = 0, n_k = 0;
  int64_t dma_in_bytes = 0, dma_w_bytes = 0, dma_out_bytes = 0;  // totals
  bool double_buffered = true;  // false: L1 too tight, DMA serializes
};

ConvTilePlan plan_conv_tiles(const ConvGeom& g, const KernelChoice& choice,
                             int num_cores, int64_t l1_budget);

struct FcTilePlan {
  int tok_t = 0;
  int k_t = 0;
  bool k_outer = false;  // K tiles outer: activations re-read per pass
  int64_t l1_bytes = 0;
  int n_tok = 0, n_k = 0;
  int64_t dma_in_bytes = 0, dma_w_bytes = 0, dma_out_bytes = 0;
  bool double_buffered = true;  // false: L1 too tight, DMA serializes
};

FcTilePlan plan_fc_tiles(const FcGeom& g, const KernelChoice& choice,
                         int num_cores, int64_t l1_budget);

}  // namespace decimate
