#pragma once
// Schedule executor: runs a Graph end-to-end.
//
// Compile-once wrapper over the exec subsystem, kept for API
// compatibility: run() lowers the graph with exec::Compiler into a
// CompiledPlan *once* per distinct (graph content, options) identity —
// keyed by a sound fingerprint of topology + geometry + parameters +
// options — and reuses the cached plan on every later call, so repeated
// runs neither re-simulate tiles nor re-pack weights. Callers that
// execute one graph many times (or over batches) can still hold a
// CompiledPlan directly — see exec/compile.hpp and exec/engine.hpp.

#include <map>
#include <memory>

#include "compiler/fingerprint.hpp"
#include "exec/compile.hpp"
#include "exec/engine.hpp"

namespace decimate {

class ScheduleExecutor {
 public:
  explicit ScheduleExecutor(const CompileOptions& opt = {})
      : compiler_(opt) {}

  /// Execute the graph on `input`; returns the last node's output plus the
  /// cycle/memory report. The first call for a given graph identity
  /// compiles; later calls reuse the cached plan.
  NetworkRun run(const Graph& graph, const Tensor8& input) {
    return engine_.run(plan_for(graph), input);
  }

  /// Execute the graph over a batch through the pipelined engine.
  BatchRun run_batch(const Graph& graph, std::span<const Tensor8> inputs) {
    return engine_.run_batch(plan_for(graph), inputs);
  }

  /// Test mode: single-tile conv/fc layers are additionally replayed on
  /// the ISS with the real data and compared against the reference.
  void set_verify_with_sim(bool v) { engine_.set_verify_with_sim(v); }

  /// Number of actual compiles performed (cache misses) — a repeated
  /// graph must compile exactly once.
  int compiles() const { return compiles_; }

  const TileLatencyCache& latencies() const { return compiler_.latencies(); }

  /// Where this graph's weights live (decided by total deployed bytes).
  static MemRegion weight_region(int64_t deployed_bytes) {
    return Compiler::weight_region(deployed_bytes);
  }

 private:
  // Soundness requires hashing the graph *content* (kernel selection
  // reads the weight values), so every call pays an O(parameter-bytes)
  // scan. That replaces a full recompile + re-pack, but callers on a hot
  // serving path should hold a CompiledPlan directly and skip the wrapper.
  // Options are fixed per executor, but the key still salts on them
  // (plan_fingerprint) so shard/batch configs can never collide if the
  // cache is ever shared more widely.
  const CompiledPlan& plan_for(const Graph& graph) {
    const uint64_t key = plan_fingerprint(graph, compiler_.options());
    ++tick_;
    auto it = plans_.find(key);
    if (it == plans_.end()) {
      if (plans_.size() >= kMaxCachedPlans) {
        auto lru = plans_.begin();
        for (auto p = plans_.begin(); p != plans_.end(); ++p) {
          if (p->second.last_use < lru->second.last_use) lru = p;
        }
        plans_.erase(lru);
      }
      ++compiles_;
      it = plans_
               .emplace(key, Entry{std::make_unique<CompiledPlan>(
                                       compiler_.compile(graph)),
                                   tick_})
               .first;
    } else {
      // same content, possibly a different (or re-created) Graph object:
      // re-point the cached plan at the caller's live graph so the engine
      // never reads a stale pointer
      it->second.plan->graph = &graph;
      it->second.last_use = tick_;
    }
    return *it->second.plan;
  }

  // Bounds the cache when callers stream many distinct graph contents
  // through one executor (e.g. re-running after weight updates): least-
  // recently-used plans are evicted, so memory stays O(kMaxCachedPlans).
  static constexpr size_t kMaxCachedPlans = 16;
  struct Entry {
    std::unique_ptr<CompiledPlan> plan;
    uint64_t last_use = 0;
  };

  Compiler compiler_;
  ExecutionEngine engine_;
  // options are fixed per executor, so graph content alone keys the cache
  std::map<uint64_t, Entry> plans_;
  uint64_t tick_ = 0;
  int compiles_ = 0;
};

}  // namespace decimate
