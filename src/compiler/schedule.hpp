#pragma once
// Schedule executor: runs a Graph end-to-end.
//
// Thin compile+execute wrapper over the exec subsystem, kept for API
// compatibility: each run() lowers the graph with exec::Compiler into a
// CompiledPlan and executes it with exec::ExecutionEngine. The ISS latency
// cache lives in the Compiler and persists across run() calls, so repeated
// runs re-simulate nothing. Callers that execute one graph many times (or
// over batches) should hold a CompiledPlan directly — see exec/compile.hpp
// and exec/engine.hpp.

#include "exec/compile.hpp"
#include "exec/engine.hpp"

namespace decimate {

class ScheduleExecutor {
 public:
  explicit ScheduleExecutor(const CompileOptions& opt = {})
      : compiler_(opt) {}

  /// Execute the graph on `input`; returns the last node's output plus the
  /// cycle/memory report.
  NetworkRun run(const Graph& graph, const Tensor8& input) {
    const CompiledPlan plan = compiler_.compile(graph);
    return engine_.run(plan, input);
  }

  /// Test mode: single-tile conv/fc layers are additionally replayed on
  /// the ISS with the real data and compared against the reference.
  void set_verify_with_sim(bool v) { engine_.set_verify_with_sim(v); }

  /// Where this graph's weights live (decided by total deployed bytes).
  static MemRegion weight_region(int64_t deployed_bytes) {
    return Compiler::weight_region(deployed_bytes);
  }

 private:
  Compiler compiler_;
  ExecutionEngine engine_;
};

}  // namespace decimate
