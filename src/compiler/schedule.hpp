#pragma once
// Schedule executor: runs a Graph end-to-end.
//
// Numerics come from the reference ops (bit-exact mirrors of the kernels,
// enforced by the kernel test suite and by the optional verify mode that
// replays single-tile layers on the ISS with the real data). Cycles come
// from the ISS: each unique (kernel, tile geometry, sparsity) is simulated
// once and cached; DMA transfers are costed by the DmaModel and overlapped
// with compute tile-by-tile (double buffering), as MATCH does on Vega.

#include <functional>
#include <map>
#include <string>

#include "compiler/pattern.hpp"
#include "compiler/tiling.hpp"
#include "sim/cluster.hpp"
#include "sim/dma.hpp"

namespace decimate {

struct LayerReport {
  std::string name;
  std::string impl;            // kernel / vector-op implementing the node
  int64_t macs = 0;            // dense-equivalent
  uint64_t compute_cycles = 0; // Σ tile compute
  uint64_t dma_cycles = 0;     // Σ tile DMA (un-overlapped view)
  uint64_t total_cycles = 0;   // pipelined total
  int64_t weight_bytes = 0;    // deployed storage (values+offsets+bias)
  int tiles = 1;
  double bits_per_weight = 0.0;

  double macs_per_cycle() const {
    return total_cycles ? static_cast<double>(macs) /
                              static_cast<double>(total_cycles)
                        : 0.0;
  }
};

struct NetworkRun {
  Tensor8 output;
  uint64_t total_cycles = 0;
  int64_t total_macs = 0;
  int64_t weight_bytes = 0;
  std::vector<LayerReport> layers;

  double macs_per_cycle() const {
    return total_cycles ? static_cast<double>(total_macs) /
                              static_cast<double>(total_cycles)
                        : 0.0;
  }
};

class ScheduleExecutor {
 public:
  explicit ScheduleExecutor(const CompileOptions& opt = {});

  /// Execute the graph on `input`; returns the last node's output plus the
  /// cycle/memory report.
  NetworkRun run(const Graph& graph, const Tensor8& input);

  /// Test mode: single-tile conv/fc layers are additionally replayed on
  /// the ISS with the real data and compared against the reference.
  void set_verify_with_sim(bool v) { verify_with_sim_ = v; }

  /// Where this graph's weights live (decided by total deployed bytes).
  static MemRegion weight_region(int64_t deployed_bytes);

 private:
  struct TileCost {
    uint64_t compute = 0;
    uint64_t dma_in = 0;
    uint64_t dma_out = 0;
  };
  static uint64_t pipeline_total(const std::vector<TileCost>& tiles);

  uint64_t measure(const std::string& key,
                   const std::function<uint64_t()>& fn);
  uint64_t measure_conv_tile(const KernelChoice& choice, const ConvGeom& g);
  uint64_t measure_fc_tile(const KernelChoice& choice, const FcGeom& g);

  void exec_gemm_node(const Node& node, const Tensor8& in,
                      const Tensor8* b_operand, Tensor8& out,
                      LayerReport& rep);
  void exec_vec_node(const Node& node, const std::vector<const Tensor8*>& in,
                     Tensor8& out, LayerReport& rep);

  CompileOptions opt_;
  Cluster cluster_;   // measurement cluster
  DmaModel dma_;
  MemRegion w_region_ = MemRegion::kL2;
  bool verify_with_sim_ = false;
  std::map<std::string, uint64_t> latency_cache_;
  Rng rng_{0xBEEFCAFE};
};

/// Deployed weight storage of one GEMM node under a kernel choice
/// (NZ values + packed offsets + int32 bias), in bytes.
int64_t deployed_weight_bytes(const Node& node, const KernelChoice& choice);

}  // namespace decimate
