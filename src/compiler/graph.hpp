#pragma once
// Small DNN graph IR for the MATCH-style compiler (Sec. 4.4).
//
// Nodes are appended in topological order; node inputs refer to earlier
// node ids. Node 0 is the network input placeholder. Weights are stored
// dense in the graph (pruned weights carry their zeros); the pattern
// recognizer decides at compile time which kernel (and which N:M packing)
// implements each node — exactly the role of MATCH's pattern table.

#include <string>
#include <vector>

#include "nn/layer_geometry.hpp"
#include "nn/quant.hpp"
#include "nn/tensor.hpp"

namespace decimate {

enum class OpType : uint8_t {
  kInput,
  kConv2d,     // weights {K, FY*FX*C}
  kFc,         // weights {K, C}; applied per token
  kMatmul,     // B comes from a second producer node (attention)
  kRelu,
  kAdd,        // two producers, per-input requant
  kMaxPool2,
  kAvgPool,    // global, {H,W,C} -> {C}
  kLut,        // unary int8 LUT (GELU)
  kSoftmax,    // rows
  kLayerNorm,  // rows
  kReshape,    // free relabeling of the shape (no data movement)
  kSlice,      // column slice of a {T, C} tensor (strided DMA marshalling)
  kConcat,     // column concatenation of {T, C_i} tensors
};

const char* op_name(OpType op);

struct Node {
  int id = 0;
  OpType op = OpType::kInput;
  std::string name;
  std::vector<int> inputs;      // producer node ids
  std::vector<int> out_shape;

  // op-specific payload
  ConvGeom conv;                // kConv2d
  FcGeom fc;                    // kFc / kMatmul
  Requant rq;                   // conv/fc/matmul/avgpool; add: input 0
  Requant rq2;                  // add: input 1
  Tensor8 weights;              // conv/fc (dense master copy)
  Tensor32 bias;                // conv/fc/matmul (matmul: zeros)
  Tensor8 gamma, beta;          // layernorm
  std::vector<int8_t> lut;      // kLut
  std::vector<uint8_t> exp_lut; // kSoftmax
  bool transpose_b = false;     // kMatmul: B must be transposed first
  int slice_begin = 0;          // kSlice: column range [begin, end)
  int slice_end = 0;
};

class Graph {
 public:
  /// Create the input placeholder (node 0).
  explicit Graph(std::vector<int> input_shape);

  /// Append a node; returns its id. Node.inputs must refer to prior ids.
  int add(Node node);

  const Node& node(int id) const;
  int size() const { return static_cast<int>(nodes_.size()); }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Total dense-equivalent MACs of conv/fc/matmul nodes.
  int64_t total_macs() const;

 private:
  std::vector<Node> nodes_;
};

/// Pick a requant for a layer with `fan_in` accumulation terms so that
/// int8 outputs occupy a healthy range under synthetic +/-127-uniform
/// weights and activations (used by the model builders).
Requant calibrate_requant(int fan_in);

}  // namespace decimate
