#pragma once
// Graph / options identity fingerprints.
//
// A CompiledPlan is a pure function of (graph content, compile options):
// kernel selection reads the weight values (the 1:M pattern matcher), the
// cost model reads every geometry field, and the engine reads weights,
// biases, LUTs and requant constants. A sound compile-once key therefore
// hashes all of it — topology, geometry, op payloads, and the raw
// parameter bytes — so two Graph objects with equal fingerprints lower to
// identical plans and produce identical runs.
//
// 64-bit FNV-1a. Used by ScheduleExecutor's plan cache; a collision would
// silently reuse the wrong plan, so everything the compiler or engine can
// observe must be folded in.

#include <cstdint>

#include "compiler/graph.hpp"
#include "compiler/pattern.hpp"

namespace decimate {

/// Content fingerprint of a graph: node topology, shapes, geometries,
/// requant constants, and all parameter tensors (weights/bias/LUTs/...).
/// Carries no compile options — combine with options_fingerprint (or use
/// plan_fingerprint) whenever plans under different options share a cache.
uint64_t graph_fingerprint(const Graph& graph);

/// Fingerprint of every compile option that shapes a plan: kernel
/// selection flags, cluster configuration, batch fusion, and the shard
/// config (num_clusters changes tile grids, so two shard counts must
/// never collide in a plan cache).
uint64_t options_fingerprint(const CompileOptions& opt);

/// Plan identity: a CompiledPlan is a pure function of (graph content,
/// options), so this is the sound key for any cache that outlives a
/// single Compiler — the ScheduleExecutor plan cache and the
/// MultiClusterEngine shard-plan cache both key on it.
uint64_t plan_fingerprint(const Graph& graph, const CompileOptions& opt);

/// plan_fingerprint from an already-computed graph fingerprint:
/// plan_fingerprint_from(graph_fingerprint(g), opt) == plan_fingerprint(g,
/// opt). Lets indices that serve many (batch x cluster) configs of one
/// graph (the serve PlanStore) pay the O(parameter-bytes) content scan
/// once per model instead of once per lookup.
uint64_t plan_fingerprint_from(uint64_t graph_fp, const CompileOptions& opt);

}  // namespace decimate
