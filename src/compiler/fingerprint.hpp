#pragma once
// Graph / options identity fingerprints.
//
// A CompiledPlan is a pure function of (graph content, compile options):
// kernel selection reads the weight values (the 1:M pattern matcher), the
// cost model reads every geometry field, and the engine reads weights,
// biases, LUTs and requant constants. A sound compile-once key therefore
// hashes all of it — topology, geometry, op payloads, and the raw
// parameter bytes — so two Graph objects with equal fingerprints lower to
// identical plans and produce identical runs.
//
// 64-bit FNV-1a. Used by ScheduleExecutor's plan cache; a collision would
// silently reuse the wrong plan, so everything the compiler or engine can
// observe must be folded in.

#include <cstdint>

#include "compiler/graph.hpp"

namespace decimate {

/// Content fingerprint of a graph: node topology, shapes, geometries,
/// requant constants, and all parameter tensors (weights/bias/LUTs/...).
/// Options are not part of the key — they are fixed per ScheduleExecutor.
uint64_t graph_fingerprint(const Graph& graph);

}  // namespace decimate
