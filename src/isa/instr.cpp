#include "isa/instr.hpp"

#include "common/check.hpp"

namespace decimate {

const char* reg_name(uint8_t r) {
  static const char* kNames[32] = {
      "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
      "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
      "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
  DECIMATE_CHECK(r < 32, "register index out of range: " << int(r));
  return kNames[r];
}

int Program::label(const std::string& name) const {
  auto it = labels.find(name);
  DECIMATE_CHECK(it != labels.end(), "unknown label: " << name);
  return it->second;
}

void Program::set_marker(const std::string& name, int index) {
  markers_[name] = index;
}

bool Program::has_marker(const std::string& name) const {
  return markers_.count(name) > 0;
}

int Program::marker(const std::string& name) const {
  auto it = markers_.find(name);
  DECIMATE_CHECK(it != markers_.end(), "unknown marker: " << name);
  return it->second;
}

int Program::region_length(const std::string& begin,
                           const std::string& end) const {
  const int b = marker(begin);
  const int e = marker(end);
  DECIMATE_CHECK(e >= b, "marker region inverted: " << begin << ".." << end);
  return e - b;
}

}  // namespace decimate
