#pragma once
// Pre-decoded instruction representation and program container.
//
// The simulator executes pre-decoded `Instr` structs for speed; the binary
// 32-bit encoding layer (encoding.hpp) is provided for fidelity, the
// disassembler and round-trip tests. Branch/jump targets and hardware-loop
// end points are *absolute instruction indices* within the program.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/opcode.hpp"

namespace decimate {

/// Symbolic register names (RV32 ABI).
namespace reg {
constexpr uint8_t zero = 0, ra = 1, sp = 2, gp = 3, tp = 4;
constexpr uint8_t t0 = 5, t1 = 6, t2 = 7;
constexpr uint8_t s0 = 8, s1 = 9;
constexpr uint8_t a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14, a5 = 15,
                  a6 = 16, a7 = 17;
constexpr uint8_t s2 = 18, s3 = 19, s4 = 20, s5 = 21, s6 = 22, s7 = 23,
                  s8 = 24, s9 = 25, s10 = 26, s11 = 27;
constexpr uint8_t t3 = 28, t4 = 29, t5 = 30, t6 = 31;
}  // namespace reg

const char* reg_name(uint8_t r);

struct Instr {
  Opcode op = Opcode::kHalt;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  uint8_t aux = 0;   // SIMD lane (pv.lb.ins), M (xdecimate), loop id, clip bits
  int32_t imm = 0;   // immediate / branch target (instruction index)
  int32_t imm2 = 0;  // second immediate (lp.setupi count)
};

/// A kernel program: instructions plus symbols and named markers.
/// Markers delimit regions of interest (e.g. the innermost loop) so tests
/// can assert the paper's instruction-count analysis (Sec. 4).
class Program {
 public:
  std::vector<Instr> code;
  std::unordered_map<std::string, int> labels;

  int size() const { return static_cast<int>(code.size()); }

  /// Instruction index of a label; throws if absent.
  int label(const std::string& name) const;

  /// Record/get a marker (named instruction index).
  void set_marker(const std::string& name, int index);
  bool has_marker(const std::string& name) const;
  int marker(const std::string& name) const;

  /// Number of instructions in [marker(begin), marker(end)) — used by the
  /// instruction-count tests for the kernels' inner loops.
  int region_length(const std::string& begin, const std::string& end) const;

 private:
  std::unordered_map<std::string, int> markers_;
};

}  // namespace decimate
