#pragma once
// Textual disassembly of programs, for debugging, the ISA demo example and
// golden tests.

#include <string>

#include "isa/instr.hpp"

namespace decimate {

/// Disassemble one instruction (pc used to print absolute branch targets).
std::string disassemble(const Instr& in, int pc = 0);

/// Disassemble a whole program, one instruction per line with indices and
/// label annotations.
std::string disassemble(const Program& prog);

}  // namespace decimate
