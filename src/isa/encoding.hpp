#pragma once
// Binary encoding of the instruction set into 32-bit words.
//
// Base RV32IM instructions use the standard RISC-V formats and opcodes.
// XpulpV2-class instructions (hardware loops, post-increment loads, SIMD)
// use the custom opcode spaces (0x0B, 0x2B, 0x57, 0x7B) with layouts
// *inspired by* XpulpV2 — self-consistent, round-trip tested, but not
// bit-identical to the RI5CY implementation. The xDecimate extension uses
// custom-3 (0x5B) with funct7 = log2(M), matching the paper's R-type
// encoding description (Sec. 4.3).
//
// Control-flow targets inside `Instr` are absolute instruction indices;
// the encoder converts them to pc-relative byte offsets and back.

#include <cstdint>
#include <vector>

#include "isa/instr.hpp"

namespace decimate {

/// Encode one instruction located at instruction index `pc`.
uint32_t encode(const Instr& in, int pc);

/// Decode one 32-bit word located at instruction index `pc`.
Instr decode(uint32_t word, int pc);

/// Encode a whole program to its binary image.
std::vector<uint32_t> encode_program(const Program& prog);

/// Decode a binary image back to instructions (labels/markers are lost).
std::vector<Instr> decode_program(const std::vector<uint32_t>& words);

}  // namespace decimate
