#pragma once
// Instruction set of the simulated PULP-class core.
//
// The set is the subset of RV32IM + XpulpV2 actually used by the dense and
// sparse DNN kernels of the paper, plus the paper's custom xDecimate
// extension (Sec. 4.3):
//  - base ALU / loads / stores / branches (RV32I), MUL/DIV (RV32M)
//  - XpulpV2: hardware loops (lp.setup), post-increment and register-
//    register addressed loads/stores, p.clip/p.max/p.min, and the 4x8-bit
//    SIMD dot product pv.sdotsp.b
//  - pv.lb.ins: load byte + insert into a SIMD lane. This models the
//    XpulpV2 byte-gather slot that the paper budgets as one instruction
//    when filling vB1/vB2 ("8 instructions for loading data").
//  - xdecimate.{m4,m8,m16} and xdecimate.clear, as specified in Sec. 4.3.

#include <cstdint>

namespace decimate {

// X-macro: opcode, mnemonic, format
#define DECIMATE_OPCODE_LIST(X)                      \
  /* RV32I ALU register-register */                  \
  X(kAdd, "add", kFmtR)                              \
  X(kSub, "sub", kFmtR)                              \
  X(kAnd, "and", kFmtR)                              \
  X(kOr, "or", kFmtR)                                \
  X(kXor, "xor", kFmtR)                              \
  X(kSll, "sll", kFmtR)                              \
  X(kSrl, "srl", kFmtR)                              \
  X(kSra, "sra", kFmtR)                              \
  X(kSlt, "slt", kFmtR)                              \
  X(kSltu, "sltu", kFmtR)                            \
  /* RV32M */                                        \
  X(kMul, "mul", kFmtR)                              \
  X(kMulh, "mulh", kFmtR)                            \
  X(kDiv, "div", kFmtR)                              \
  X(kDivu, "divu", kFmtR)                            \
  X(kRem, "rem", kFmtR)                              \
  /* RV32I ALU immediate */                          \
  X(kAddi, "addi", kFmtI)                            \
  X(kAndi, "andi", kFmtI)                            \
  X(kOri, "ori", kFmtI)                              \
  X(kXori, "xori", kFmtI)                            \
  X(kSlli, "slli", kFmtI)                            \
  X(kSrli, "srli", kFmtI)                            \
  X(kSrai, "srai", kFmtI)                            \
  X(kSlti, "slti", kFmtI)                            \
  X(kSltiu, "sltiu", kFmtI)                          \
  X(kLui, "lui", kFmtU)                              \
  /* XpulpV2 scalar */                               \
  X(kPClip, "p.clip", kFmtClip)                      \
  X(kPMax, "p.max", kFmtR)                           \
  X(kPMin, "p.min", kFmtR)                           \
  /* RV32I loads / stores */                         \
  X(kLb, "lb", kFmtLoad)                             \
  X(kLbu, "lbu", kFmtLoad)                           \
  X(kLh, "lh", kFmtLoad)                             \
  X(kLhu, "lhu", kFmtLoad)                           \
  X(kLw, "lw", kFmtLoad)                             \
  X(kSb, "sb", kFmtStore)                            \
  X(kSh, "sh", kFmtStore)                            \
  X(kSw, "sw", kFmtStore)                            \
  /* XpulpV2 post-increment (rs1 += imm after access) */ \
  X(kLbPi, "p.lb!", kFmtLoadPi)                      \
  X(kLbuPi, "p.lbu!", kFmtLoadPi)                    \
  X(kLhuPi, "p.lhu!", kFmtLoadPi)                    \
  X(kLwPi, "p.lw!", kFmtLoadPi)                      \
  X(kSbPi, "p.sb!", kFmtStorePi)                     \
  X(kSwPi, "p.sw!", kFmtStorePi)                     \
  /* XpulpV2 register-register addressing (addr = rs1 + rs2) */ \
  X(kLbRr, "p.lb.rr", kFmtLoadRr)                    \
  X(kLbuRr, "p.lbu.rr", kFmtLoadRr)                  \
  X(kLwRr, "p.lw.rr", kFmtLoadRr)                    \
  /* Branches / jumps */                             \
  X(kBeq, "beq", kFmtB)                              \
  X(kBne, "bne", kFmtB)                              \
  X(kBlt, "blt", kFmtB)                              \
  X(kBge, "bge", kFmtB)                              \
  X(kBltu, "bltu", kFmtB)                            \
  X(kBgeu, "bgeu", kFmtB)                            \
  X(kJal, "jal", kFmtJ)                              \
  X(kJalr, "jalr", kFmtJr)                           \
  /* XpulpV2 hardware loops */                       \
  X(kLpSetup, "lp.setup", kFmtLp)                    \
  X(kLpSetupImm, "lp.setupi", kFmtLpI)               \
  /* XpulpV2 SIMD */                                 \
  X(kPvSdotspB, "pv.sdotsp.b", kFmtR)                \
  X(kPvAddB, "pv.add.b", kFmtR)                      \
  X(kPvMaxB, "pv.max.b", kFmtR)                      \
  X(kPvLbIns, "pv.lb.ins", kFmtPvLbIns)              \
  /* xDecimate extension (this paper) */             \
  X(kXdec, "xdecimate", kFmtXdec)                    \
  X(kXdecClear, "xdecimate.clear", kFmtNone)         \
  /* System */                                       \
  X(kHartid, "csrr.hartid", kFmtRdOnly)              \
  X(kBarrier, "p.barrier", kFmtNone)                 \
  X(kHalt, "halt", kFmtNone)

enum class Opcode : uint8_t {
#define X(op, name, fmt) op,
  DECIMATE_OPCODE_LIST(X)
#undef X
      kCount
};

constexpr int kNumOpcodes = static_cast<int>(Opcode::kCount);

/// Operand formats, used by the encoder and the disassembler.
enum class Format : uint8_t {
  kFmtR,        // rd, rs1, rs2
  kFmtI,        // rd, rs1, imm12
  kFmtU,        // rd, imm20
  kFmtClip,     // rd, rs1, bit-width imm
  kFmtLoad,     // rd, imm(rs1)
  kFmtStore,    // rs2, imm(rs1)
  kFmtLoadPi,   // rd, imm(rs1!)
  kFmtStorePi,  // rs2, imm(rs1!)
  kFmtLoadRr,   // rd, rs2(rs1)
  kFmtB,        // rs1, rs2, target (absolute instruction index)
  kFmtJ,        // rd, target
  kFmtJr,       // rd, rs1, imm
  kFmtLp,       // loop(aux), rs1=count, imm=end index
  kFmtLpI,      // loop(aux), imm2=count, imm=end index
  kFmtPvLbIns,  // rd[lane=aux] <- mem8[rs1 + rs2]
  kFmtXdec,     // rd, rs1, rs2 with aux = M (4/8/16)
  kFmtRdOnly,   // rd
  kFmtNone,     // no operands
};

const char* opcode_name(Opcode op);
Format opcode_format(Opcode op);

/// True for instructions that access data memory.
bool is_memory_op(Opcode op);

/// True for control-flow instructions with a taken-branch penalty.
bool is_branch_or_jump(Opcode op);

}  // namespace decimate
