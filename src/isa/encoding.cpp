#include "isa/encoding.hpp"

#include "common/bitutil.hpp"
#include "common/check.hpp"

namespace decimate {

namespace {

// Major opcodes (bits [6:0]).
constexpr uint32_t kOpcLoad = 0x03;
constexpr uint32_t kOpcMiscMem = 0x0F;
constexpr uint32_t kOpcOpImm = 0x13;
constexpr uint32_t kOpcStore = 0x23;
constexpr uint32_t kOpcOp = 0x33;
constexpr uint32_t kOpcLui = 0x37;
constexpr uint32_t kOpcBranch = 0x63;
constexpr uint32_t kOpcJalr = 0x67;
constexpr uint32_t kOpcJal = 0x6F;
constexpr uint32_t kOpcSystem = 0x73;
constexpr uint32_t kOpcPulpLoad = 0x0B;   // custom-0: post-inc / rr loads
constexpr uint32_t kOpcPulpStore = 0x2B;  // custom-1: post-inc stores, clip/max/min
constexpr uint32_t kOpcSimd = 0x57;       // SIMD (vector opcode space)
constexpr uint32_t kOpcXdec = 0x5B;       // custom-3: xDecimate
constexpr uint32_t kOpcHwloop = 0x7B;     // hardware loops

uint32_t enc_r(uint32_t opc, uint32_t f3, uint32_t f7, uint32_t rd,
               uint32_t rs1, uint32_t rs2) {
  return opc | (rd << 7) | (f3 << 12) | (rs1 << 15) | (rs2 << 20) | (f7 << 25);
}

uint32_t enc_i(uint32_t opc, uint32_t f3, uint32_t rd, uint32_t rs1,
               int32_t imm) {
  DECIMATE_CHECK(imm >= -2048 && imm < 2048, "I-type imm out of range: " << imm);
  return opc | (rd << 7) | (f3 << 12) | (rs1 << 15) |
         ((static_cast<uint32_t>(imm) & 0xFFF) << 20);
}

uint32_t enc_s(uint32_t opc, uint32_t f3, uint32_t rs1, uint32_t rs2,
               int32_t imm) {
  DECIMATE_CHECK(imm >= -2048 && imm < 2048, "S-type imm out of range: " << imm);
  const uint32_t u = static_cast<uint32_t>(imm) & 0xFFF;
  return opc | ((u & 0x1F) << 7) | (f3 << 12) | (rs1 << 15) | (rs2 << 20) |
         ((u >> 5) << 25);
}

uint32_t enc_b(uint32_t opc, uint32_t f3, uint32_t rs1, uint32_t rs2,
               int32_t off_bytes) {
  DECIMATE_CHECK(off_bytes >= -4096 && off_bytes < 4096 && (off_bytes & 1) == 0,
                 "B-type offset out of range: " << off_bytes);
  const uint32_t u = static_cast<uint32_t>(off_bytes);
  uint32_t w = opc | (f3 << 12) | (rs1 << 15) | (rs2 << 20);
  w |= bits(u, 11, 11) << 7;
  w |= bits(u, 4, 1) << 8;
  w |= bits(u, 10, 5) << 25;
  w |= bits(u, 12, 12) << 31;
  return w;
}

int32_t dec_b_off(uint32_t w) {
  uint32_t u = 0;
  u |= bits(w, 7, 7) << 11;
  u |= bits(w, 11, 8) << 1;
  u |= bits(w, 30, 25) << 5;
  u |= bits(w, 31, 31) << 12;
  return sign_extend(u, 13);
}

uint32_t enc_j(uint32_t opc, uint32_t rd, int32_t off_bytes) {
  DECIMATE_CHECK(off_bytes >= -(1 << 20) && off_bytes < (1 << 20),
                 "J-type offset out of range: " << off_bytes);
  const uint32_t u = static_cast<uint32_t>(off_bytes);
  uint32_t w = opc | (rd << 7);
  w |= bits(u, 19, 12) << 12;
  w |= bits(u, 11, 11) << 20;
  w |= bits(u, 10, 1) << 21;
  w |= bits(u, 20, 20) << 31;
  return w;
}

int32_t dec_j_off(uint32_t w) {
  uint32_t u = 0;
  u |= bits(w, 19, 12) << 12;
  u |= bits(w, 20, 20) << 11;
  u |= bits(w, 30, 21) << 1;
  u |= bits(w, 31, 31) << 20;
  return sign_extend(u, 21);
}

int32_t dec_i_imm(uint32_t w) { return sign_extend(bits(w, 31, 20), 12); }
int32_t dec_s_imm(uint32_t w) {
  return sign_extend((bits(w, 31, 25) << 5) | bits(w, 11, 7), 12);
}

struct F3F7 {
  uint32_t f3, f7;
};

F3F7 alu_f3f7(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return {0, 0x00};
    case Opcode::kSub: return {0, 0x20};
    case Opcode::kSll: return {1, 0x00};
    case Opcode::kSlt: return {2, 0x00};
    case Opcode::kSltu: return {3, 0x00};
    case Opcode::kXor: return {4, 0x00};
    case Opcode::kSrl: return {5, 0x00};
    case Opcode::kSra: return {5, 0x20};
    case Opcode::kOr: return {6, 0x00};
    case Opcode::kAnd: return {7, 0x00};
    case Opcode::kMul: return {0, 0x01};
    case Opcode::kMulh: return {1, 0x01};
    case Opcode::kDiv: return {4, 0x01};
    case Opcode::kDivu: return {5, 0x01};
    case Opcode::kRem: return {6, 0x01};
    default: DECIMATE_FAIL("not an OP-format opcode");
  }
}

}  // namespace

uint32_t encode(const Instr& in, int pc) {
  using enum Opcode;
  switch (in.op) {
    case kAdd: case kSub: case kSll: case kSlt: case kSltu: case kXor:
    case kSrl: case kSra: case kOr: case kAnd: case kMul: case kMulh:
    case kDiv: case kDivu: case kRem: {
      const auto [f3, f7] = alu_f3f7(in.op);
      return enc_r(kOpcOp, f3, f7, in.rd, in.rs1, in.rs2);
    }
    case kAddi: return enc_i(kOpcOpImm, 0, in.rd, in.rs1, in.imm);
    case kSlti: return enc_i(kOpcOpImm, 2, in.rd, in.rs1, in.imm);
    case kSltiu: return enc_i(kOpcOpImm, 3, in.rd, in.rs1, in.imm);
    case kXori: return enc_i(kOpcOpImm, 4, in.rd, in.rs1, in.imm);
    case kOri: return enc_i(kOpcOpImm, 6, in.rd, in.rs1, in.imm);
    case kAndi: return enc_i(kOpcOpImm, 7, in.rd, in.rs1, in.imm);
    case kSlli: return enc_r(kOpcOpImm, 1, 0x00, in.rd, in.rs1, in.imm & 31);
    case kSrli: return enc_r(kOpcOpImm, 5, 0x00, in.rd, in.rs1, in.imm & 31);
    case kSrai: return enc_r(kOpcOpImm, 5, 0x20, in.rd, in.rs1, in.imm & 31);
    case kLui:
      return kOpcLui | (static_cast<uint32_t>(in.rd) << 7) |
             ((static_cast<uint32_t>(in.imm) & 0xFFFFF) << 12);
    case kLb: return enc_i(kOpcLoad, 0, in.rd, in.rs1, in.imm);
    case kLh: return enc_i(kOpcLoad, 1, in.rd, in.rs1, in.imm);
    case kLw: return enc_i(kOpcLoad, 2, in.rd, in.rs1, in.imm);
    case kLbu: return enc_i(kOpcLoad, 4, in.rd, in.rs1, in.imm);
    case kLhu: return enc_i(kOpcLoad, 5, in.rd, in.rs1, in.imm);
    case kSb: return enc_s(kOpcStore, 0, in.rs1, in.rs2, in.imm);
    case kSh: return enc_s(kOpcStore, 1, in.rs1, in.rs2, in.imm);
    case kSw: return enc_s(kOpcStore, 2, in.rs1, in.rs2, in.imm);
    case kLbPi: return enc_i(kOpcPulpLoad, 0, in.rd, in.rs1, in.imm);
    case kLwPi: return enc_i(kOpcPulpLoad, 2, in.rd, in.rs1, in.imm);
    case kLbuPi: return enc_i(kOpcPulpLoad, 4, in.rd, in.rs1, in.imm);
    case kLhuPi: return enc_i(kOpcPulpLoad, 5, in.rd, in.rs1, in.imm);
    case kLbRr: return enc_r(kOpcPulpLoad, 7, 0x00, in.rd, in.rs1, in.rs2);
    case kLbuRr: return enc_r(kOpcPulpLoad, 7, 0x01, in.rd, in.rs1, in.rs2);
    case kLwRr: return enc_r(kOpcPulpLoad, 7, 0x02, in.rd, in.rs1, in.rs2);
    case kSbPi: return enc_s(kOpcPulpStore, 0, in.rs1, in.rs2, in.imm);
    case kSwPi: return enc_s(kOpcPulpStore, 2, in.rs1, in.rs2, in.imm);
    case kPClip: return enc_r(kOpcPulpStore, 7, 0x60, in.rd, in.rs1, in.aux);
    case kPMax: return enc_r(kOpcPulpStore, 7, 0x61, in.rd, in.rs1, in.rs2);
    case kPMin: return enc_r(kOpcPulpStore, 7, 0x62, in.rd, in.rs1, in.rs2);
    case kBeq: return enc_b(kOpcBranch, 0, in.rs1, in.rs2, (in.imm - pc) * 4);
    case kBne: return enc_b(kOpcBranch, 1, in.rs1, in.rs2, (in.imm - pc) * 4);
    case kBlt: return enc_b(kOpcBranch, 4, in.rs1, in.rs2, (in.imm - pc) * 4);
    case kBge: return enc_b(kOpcBranch, 5, in.rs1, in.rs2, (in.imm - pc) * 4);
    case kBltu: return enc_b(kOpcBranch, 6, in.rs1, in.rs2, (in.imm - pc) * 4);
    case kBgeu: return enc_b(kOpcBranch, 7, in.rs1, in.rs2, (in.imm - pc) * 4);
    case kJal: return enc_j(kOpcJal, in.rd, (in.imm - pc) * 4);
    case kJalr: return enc_i(kOpcJalr, 0, in.rd, in.rs1, in.imm);
    case kLpSetup: {
      const int32_t end_off = in.imm - pc;
      DECIMATE_CHECK(end_off >= 0 && end_off < 4096,
                     "lp.setup end offset out of range: " << end_off);
      return enc_i(kOpcHwloop, 0, in.aux & 1, in.rs1, end_off);
    }
    case kLpSetupImm: {
      // Custom layout: [6:0]=0x7B, f3[14:12]=1, [7]=loop id,
      // count (8 bits) in [11:8]|[24:21], end offset (13 bits) in
      // [17:15]|[20:18]|[31:25]. Mirrored exactly in decode().
      const int32_t end_off = in.imm - pc;
      DECIMATE_CHECK(end_off >= 0 && end_off < (1 << 13),
                     "lp.setupi end offset out of range: " << end_off);
      DECIMATE_CHECK(in.imm2 >= 1 && in.imm2 < 256,
                     "lp.setupi count out of range: " << in.imm2);
      const auto count = static_cast<uint32_t>(in.imm2);
      const auto off = static_cast<uint32_t>(end_off);
      uint32_t w = kOpcHwloop | (1u << 12);
      w = set_bits(w, 7, 7, in.aux & 1);
      w = set_bits(w, 11, 8, count & 0xF);
      w = set_bits(w, 24, 21, (count >> 4) & 0xF);
      w = set_bits(w, 17, 15, off & 0x7);
      w = set_bits(w, 20, 18, (off >> 3) & 0x7);
      w = set_bits(w, 31, 25, off >> 6);
      return w;
    }
    case kPvAddB: return enc_r(kOpcSimd, 0, 0x01, in.rd, in.rs1, in.rs2);
    case kPvMaxB: return enc_r(kOpcSimd, 0, 0x02, in.rd, in.rs1, in.rs2);
    case kPvSdotspB: return enc_r(kOpcSimd, 0, 0x03, in.rd, in.rs1, in.rs2);
    case kPvLbIns:
      // funct7 = 0x20 | aux (lane in [1:0], log2(lane stride) in [4:2])
      return enc_r(kOpcSimd, 0, 0x20u | (in.aux & 0x1F), in.rd, in.rs1,
                   in.rs2);
    case kXdec:
      return enc_r(kOpcXdec, 0, ceil_log2(in.aux), in.rd, in.rs1, in.rs2);
    case kXdecClear: return enc_r(kOpcXdec, 0, 0x7F, 0, 0, 0);
    case kHartid: return enc_i(kOpcSystem, 2, in.rd, 0, 0xF14 - 4096);
    case kHalt: return enc_i(kOpcSystem, 0, 0, 0, 1);
    case kBarrier: return enc_i(kOpcMiscMem, 0, 0, 0, 0);
    case kCount: break;
  }
  DECIMATE_FAIL("cannot encode opcode");
}

Instr decode(uint32_t w, int pc) {
  using enum Opcode;
  Instr in;
  const uint32_t opc = bits(w, 6, 0);
  const uint32_t f3 = bits(w, 14, 12);
  const uint32_t f7 = bits(w, 31, 25);
  in.rd = static_cast<uint8_t>(bits(w, 11, 7));
  in.rs1 = static_cast<uint8_t>(bits(w, 19, 15));
  in.rs2 = static_cast<uint8_t>(bits(w, 24, 20));

  auto r_op = [&](Opcode op) {
    in.op = op;
    return in;
  };
  auto i_op = [&](Opcode op) {
    in.op = op;
    in.rs2 = 0;
    in.imm = dec_i_imm(w);
    return in;
  };
  auto s_op = [&](Opcode op) {
    in.op = op;
    in.rd = 0;
    in.imm = dec_s_imm(w);
    return in;
  };
  auto b_op = [&](Opcode op) {
    in.op = op;
    in.rd = 0;
    in.imm = pc + dec_b_off(w) / 4;
    return in;
  };

  switch (opc) {
    case kOpcOp:
      switch (f3 | (f7 << 3)) {
        case 0 | (0x00 << 3): return r_op(kAdd);
        case 0 | (0x20 << 3): return r_op(kSub);
        case 1 | (0x00 << 3): return r_op(kSll);
        case 2 | (0x00 << 3): return r_op(kSlt);
        case 3 | (0x00 << 3): return r_op(kSltu);
        case 4 | (0x00 << 3): return r_op(kXor);
        case 5 | (0x00 << 3): return r_op(kSrl);
        case 5 | (0x20 << 3): return r_op(kSra);
        case 6 | (0x00 << 3): return r_op(kOr);
        case 7 | (0x00 << 3): return r_op(kAnd);
        case 0 | (0x01 << 3): return r_op(kMul);
        case 1 | (0x01 << 3): return r_op(kMulh);
        case 4 | (0x01 << 3): return r_op(kDiv);
        case 5 | (0x01 << 3): return r_op(kDivu);
        case 6 | (0x01 << 3): return r_op(kRem);
        default: DECIMATE_FAIL("bad OP encoding");
      }
      break;
    case kOpcOpImm:
      switch (f3) {
        case 0: return i_op(kAddi);
        case 2: return i_op(kSlti);
        case 3: return i_op(kSltiu);
        case 4: return i_op(kXori);
        case 6: return i_op(kOri);
        case 7: return i_op(kAndi);
        case 1: in.op = kSlli; in.imm = in.rs2; in.rs2 = 0; return in;
        case 5:
          in.op = (f7 == 0x20) ? kSrai : kSrli;
          in.imm = in.rs2;
          in.rs2 = 0;
          return in;
        default: DECIMATE_FAIL("bad OP-IMM encoding");
      }
      break;
    case kOpcLui:
      in.op = kLui;
      in.imm = static_cast<int32_t>(bits(w, 31, 12));
      in.rs1 = in.rs2 = 0;
      return in;
    case kOpcLoad:
      switch (f3) {
        case 0: return i_op(kLb);
        case 1: return i_op(kLh);
        case 2: return i_op(kLw);
        case 4: return i_op(kLbu);
        case 5: return i_op(kLhu);
        default: DECIMATE_FAIL("bad LOAD encoding");
      }
      break;
    case kOpcStore:
      switch (f3) {
        case 0: return s_op(kSb);
        case 1: return s_op(kSh);
        case 2: return s_op(kSw);
        default: DECIMATE_FAIL("bad STORE encoding");
      }
      break;
    case kOpcPulpLoad:
      if (f3 == 7) {
        switch (f7) {
          case 0x00: return r_op(kLbRr);
          case 0x01: return r_op(kLbuRr);
          case 0x02: return r_op(kLwRr);
          default: DECIMATE_FAIL("bad p.l*.rr encoding");
        }
      }
      switch (f3) {
        case 0: return i_op(kLbPi);
        case 2: return i_op(kLwPi);
        case 4: return i_op(kLbuPi);
        case 5: return i_op(kLhuPi);
        default: DECIMATE_FAIL("bad p.l*! encoding");
      }
      break;
    case kOpcPulpStore:
      if (f3 == 7) {
        switch (f7) {
          case 0x60:
            in.op = kPClip;
            in.aux = static_cast<uint8_t>(in.rs2);
            in.rs2 = 0;
            return in;
          case 0x61: return r_op(kPMax);
          case 0x62: return r_op(kPMin);
          default: DECIMATE_FAIL("bad custom-1 encoding");
        }
      }
      switch (f3) {
        case 0: return s_op(kSbPi);
        case 2: return s_op(kSwPi);
        default: DECIMATE_FAIL("bad p.s*! encoding");
      }
      break;
    case kOpcBranch:
      switch (f3) {
        case 0: return b_op(kBeq);
        case 1: return b_op(kBne);
        case 4: return b_op(kBlt);
        case 5: return b_op(kBge);
        case 6: return b_op(kBltu);
        case 7: return b_op(kBgeu);
        default: DECIMATE_FAIL("bad BRANCH encoding");
      }
      break;
    case kOpcJal:
      in.op = kJal;
      in.rs1 = in.rs2 = 0;
      in.imm = pc + dec_j_off(w) / 4;
      return in;
    case kOpcJalr: return i_op(kJalr);
    case kOpcHwloop:
      if (f3 == 0) {
        in.op = kLpSetup;
        in.aux = in.rd & 1;
        in.rd = 0;
        in.imm = pc + dec_i_imm(w);
        in.rs2 = 0;
        return in;
      } else {
        in.op = kLpSetupImm;
        in.aux = static_cast<uint8_t>(bits(w, 7, 7));
        in.rd = in.rs1 = in.rs2 = 0;
        in.imm2 = static_cast<int32_t>(bits(w, 11, 8) | (bits(w, 24, 21) << 4));
        const uint32_t end_off =
            bits(w, 17, 15) | (bits(w, 20, 18) << 3) | (bits(w, 31, 25) << 6);
        in.imm = pc + static_cast<int32_t>(end_off);
        return in;
      }
      break;
    case kOpcSimd:
      switch (f7) {
        case 0x01: return r_op(kPvAddB);
        case 0x02: return r_op(kPvMaxB);
        case 0x03: return r_op(kPvSdotspB);
        default:
          if (f7 >= 0x20 && f7 <= 0x3F) {
            in.op = kPvLbIns;
            in.aux = static_cast<uint8_t>(f7 & 0x1F);
            return in;
          }
          DECIMATE_FAIL("bad SIMD encoding");
      }
      break;
    case kOpcXdec:
      if (f7 == 0x7F) {
        in = Instr{};
        in.op = kXdecClear;
        return in;
      }
      DECIMATE_CHECK(f7 >= 2 && f7 <= 4, "bad xdecimate M encoding");
      in.op = kXdec;
      in.aux = static_cast<uint8_t>(1u << f7);
      return in;
    case kOpcSystem:
      if (f3 == 2) {
        in.op = kHartid;
        in.rs1 = in.rs2 = 0;
        in.imm = 0;
        return in;
      }
      in = Instr{};
      in.op = kHalt;
      return in;
    case kOpcMiscMem:
      in = Instr{};
      in.op = kBarrier;
      return in;
    default: DECIMATE_FAIL("unknown major opcode: " << opc);
  }
}

std::vector<uint32_t> encode_program(const Program& prog) {
  std::vector<uint32_t> words;
  words.reserve(prog.code.size());
  for (int pc = 0; pc < prog.size(); ++pc) {
    words.push_back(encode(prog.code[static_cast<size_t>(pc)], pc));
  }
  return words;
}

std::vector<Instr> decode_program(const std::vector<uint32_t>& words) {
  std::vector<Instr> out;
  out.reserve(words.size());
  for (int pc = 0; pc < static_cast<int>(words.size()); ++pc) {
    out.push_back(decode(words[static_cast<size_t>(pc)], pc));
  }
  return out;
}

}  // namespace decimate
