#include "isa/disasm.hpp"

#include <map>
#include <sstream>

#include "common/check.hpp"

namespace decimate {

std::string disassemble(const Instr& in, int pc) {
  (void)pc;
  std::ostringstream oss;
  oss << opcode_name(in.op);
  const auto rd = reg_name(in.rd);
  const auto rs1 = reg_name(in.rs1);
  const auto rs2 = reg_name(in.rs2);
  switch (opcode_format(in.op)) {
    case Format::kFmtR:
      oss << " " << rd << ", " << rs1 << ", " << rs2;
      break;
    case Format::kFmtI:
      oss << " " << rd << ", " << rs1 << ", " << in.imm;
      break;
    case Format::kFmtU:
      oss << " " << rd << ", " << in.imm;
      break;
    case Format::kFmtClip:
      oss << " " << rd << ", " << rs1 << ", " << int(in.aux);
      break;
    case Format::kFmtLoad:
      oss << " " << rd << ", " << in.imm << "(" << rs1 << ")";
      break;
    case Format::kFmtStore:
      oss << " " << rs2 << ", " << in.imm << "(" << rs1 << ")";
      break;
    case Format::kFmtLoadPi:
      oss << " " << rd << ", " << in.imm << "(" << rs1 << "!)";
      break;
    case Format::kFmtStorePi:
      oss << " " << rs2 << ", " << in.imm << "(" << rs1 << "!)";
      break;
    case Format::kFmtLoadRr:
      oss << " " << rd << ", " << rs2 << "(" << rs1 << ")";
      break;
    case Format::kFmtB:
      oss << " " << rs1 << ", " << rs2 << ", @" << in.imm;
      break;
    case Format::kFmtJ:
      oss << " " << rd << ", @" << in.imm;
      break;
    case Format::kFmtJr:
      oss << " " << rd << ", " << rs1 << ", " << in.imm;
      break;
    case Format::kFmtLp:
      oss << " l" << int(in.aux) << ", " << rs1 << ", @" << in.imm;
      break;
    case Format::kFmtLpI:
      oss << " l" << int(in.aux) << ", " << in.imm2 << ", @" << in.imm;
      break;
    case Format::kFmtPvLbIns: {
      const int lane = in.aux & 3;
      const int lm = in.aux >> 2;
      oss << " " << rd << "[" << lane << "], " << rs2 << "(" << rs1 << ")";
      if (lm) oss << "+" << lane << "*" << (1 << lm);
      break;
    }
    case Format::kFmtXdec:
      oss << ".m" << int(in.aux) << " " << rd << ", " << rs1 << ", " << rs2;
      break;
    case Format::kFmtRdOnly:
      oss << " " << rd;
      break;
    case Format::kFmtNone:
      break;
  }
  return oss.str();
}

std::string disassemble(const Program& prog) {
  // invert label map for annotation
  std::map<int, std::string> at;
  for (const auto& [name, idx] : prog.labels) {
    auto it = at.find(idx);
    if (it == at.end()) {
      at[idx] = name;
    } else {
      it->second += ", " + name;
    }
  }
  std::ostringstream oss;
  for (int pc = 0; pc < prog.size(); ++pc) {
    auto it = at.find(pc);
    if (it != at.end()) oss << it->second << ":\n";
    oss << "  " << pc << ":\t"
        << disassemble(prog.code[static_cast<size_t>(pc)], pc) << "\n";
  }
  return oss.str();
}

}  // namespace decimate
