#include "isa/opcode.hpp"

namespace decimate {

namespace {
constexpr const char* kNames[] = {
#define X(op, name, fmt) name,
    DECIMATE_OPCODE_LIST(X)
#undef X
};
constexpr Format kFormats[] = {
#define X(op, name, fmt) Format::fmt,
    DECIMATE_OPCODE_LIST(X)
#undef X
};
}  // namespace

const char* opcode_name(Opcode op) {
  return kNames[static_cast<int>(op)];
}

Format opcode_format(Opcode op) {
  return kFormats[static_cast<int>(op)];
}

bool is_memory_op(Opcode op) {
  switch (op) {
    case Opcode::kLb:
    case Opcode::kLbu:
    case Opcode::kLh:
    case Opcode::kLhu:
    case Opcode::kLw:
    case Opcode::kSb:
    case Opcode::kSh:
    case Opcode::kSw:
    case Opcode::kLbPi:
    case Opcode::kLbuPi:
    case Opcode::kLhuPi:
    case Opcode::kLwPi:
    case Opcode::kSbPi:
    case Opcode::kSwPi:
    case Opcode::kLbRr:
    case Opcode::kLbuRr:
    case Opcode::kLwRr:
    case Opcode::kPvLbIns:
    case Opcode::kXdec:
      return true;
    default:
      return false;
  }
}

bool is_branch_or_jump(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
    case Opcode::kJal:
    case Opcode::kJalr:
      return true;
    default:
      return false;
  }
}

}  // namespace decimate
