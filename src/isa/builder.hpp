#pragma once
// KernelBuilder: a tiny assembler used to construct kernel programs.
//
// Supports forward-referenced string labels, the two nested XpulpV2
// hardware loops, `li` pseudo-instruction expansion, and named markers used
// by the instruction-count tests (Sec. 4 analysis of the paper).

#include <functional>
#include <string>
#include <vector>

#include "isa/instr.hpp"

namespace decimate {

class KernelBuilder {
 public:
  // --- labels & markers ---------------------------------------------------
  /// Bind a label at the next emitted instruction.
  void bind(const std::string& name);
  /// Record a named marker at the next emitted instruction.
  void marker(const std::string& name);
  /// Create a unique label name (for helper-generated control flow).
  std::string fresh_label(const std::string& stem);

  // --- ALU -----------------------------------------------------------------
  void add(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kAdd, rd, rs1, rs2); }
  void sub(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kSub, rd, rs1, rs2); }
  void and_(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kAnd, rd, rs1, rs2); }
  void or_(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kOr, rd, rs1, rs2); }
  void xor_(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kXor, rd, rs1, rs2); }
  void sll(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kSll, rd, rs1, rs2); }
  void srl(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kSrl, rd, rs1, rs2); }
  void sra(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kSra, rd, rs1, rs2); }
  void slt(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kSlt, rd, rs1, rs2); }
  void sltu(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kSltu, rd, rs1, rs2); }
  void mul(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kMul, rd, rs1, rs2); }
  void mulh(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kMulh, rd, rs1, rs2); }
  void div(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kDiv, rd, rs1, rs2); }
  void divu(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kDivu, rd, rs1, rs2); }
  void rem(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kRem, rd, rs1, rs2); }
  void pmax(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kPMax, rd, rs1, rs2); }
  void pmin(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kPMin, rd, rs1, rs2); }

  void addi(uint8_t rd, uint8_t rs1, int32_t imm) { i(Opcode::kAddi, rd, rs1, imm); }
  void andi(uint8_t rd, uint8_t rs1, int32_t imm) { i(Opcode::kAndi, rd, rs1, imm); }
  void ori(uint8_t rd, uint8_t rs1, int32_t imm) { i(Opcode::kOri, rd, rs1, imm); }
  void xori(uint8_t rd, uint8_t rs1, int32_t imm) { i(Opcode::kXori, rd, rs1, imm); }
  void slli(uint8_t rd, uint8_t rs1, int32_t imm) { i(Opcode::kSlli, rd, rs1, imm); }
  void srli(uint8_t rd, uint8_t rs1, int32_t imm) { i(Opcode::kSrli, rd, rs1, imm); }
  void srai(uint8_t rd, uint8_t rs1, int32_t imm) { i(Opcode::kSrai, rd, rs1, imm); }
  void slti(uint8_t rd, uint8_t rs1, int32_t imm) { i(Opcode::kSlti, rd, rs1, imm); }
  void lui(uint8_t rd, int32_t imm20) {
    emit(Instr{Opcode::kLui, rd, 0, 0, 0, imm20, 0});
  }
  void pclip(uint8_t rd, uint8_t rs1, int bits_) {
    Instr in{Opcode::kPClip, rd, rs1, 0, static_cast<uint8_t>(bits_), 0, 0};
    emit(in);
  }

  /// Load-immediate pseudo-instruction (1 or 2 instructions).
  void li(uint8_t rd, int32_t value);
  /// Register move pseudo-instruction.
  void mv(uint8_t rd, uint8_t rs) { addi(rd, rs, 0); }
  void nop() { addi(0, 0, 0); }

  // --- memory ---------------------------------------------------------------
  void lb(uint8_t rd, int32_t imm, uint8_t rs1) { i(Opcode::kLb, rd, rs1, imm); }
  void lbu(uint8_t rd, int32_t imm, uint8_t rs1) { i(Opcode::kLbu, rd, rs1, imm); }
  void lh(uint8_t rd, int32_t imm, uint8_t rs1) { i(Opcode::kLh, rd, rs1, imm); }
  void lhu(uint8_t rd, int32_t imm, uint8_t rs1) { i(Opcode::kLhu, rd, rs1, imm); }
  void lw(uint8_t rd, int32_t imm, uint8_t rs1) { i(Opcode::kLw, rd, rs1, imm); }
  void sb(uint8_t rs2, int32_t imm, uint8_t rs1) { s(Opcode::kSb, rs1, rs2, imm); }
  void sh(uint8_t rs2, int32_t imm, uint8_t rs1) { s(Opcode::kSh, rs1, rs2, imm); }
  void sw(uint8_t rs2, int32_t imm, uint8_t rs1) { s(Opcode::kSw, rs1, rs2, imm); }
  // post-increment: access mem[rs1], then rs1 += imm
  void lb_pi(uint8_t rd, uint8_t rs1, int32_t imm) { i(Opcode::kLbPi, rd, rs1, imm); }
  void lbu_pi(uint8_t rd, uint8_t rs1, int32_t imm) { i(Opcode::kLbuPi, rd, rs1, imm); }
  void lhu_pi(uint8_t rd, uint8_t rs1, int32_t imm) { i(Opcode::kLhuPi, rd, rs1, imm); }
  void lw_pi(uint8_t rd, uint8_t rs1, int32_t imm) { i(Opcode::kLwPi, rd, rs1, imm); }
  void sb_pi(uint8_t rs2, uint8_t rs1, int32_t imm) { s(Opcode::kSbPi, rs1, rs2, imm); }
  void sw_pi(uint8_t rs2, uint8_t rs1, int32_t imm) { s(Opcode::kSwPi, rs1, rs2, imm); }
  // register-register addressing: mem[rs1 + rs2]
  void lb_rr(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kLbRr, rd, rs1, rs2); }
  void lbu_rr(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kLbuRr, rd, rs1, rs2); }
  void lw_rr(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kLwRr, rd, rs1, rs2); }

  // --- control flow ----------------------------------------------------------
  void beq(uint8_t rs1, uint8_t rs2, const std::string& target) { b(Opcode::kBeq, rs1, rs2, target); }
  void bne(uint8_t rs1, uint8_t rs2, const std::string& target) { b(Opcode::kBne, rs1, rs2, target); }
  void blt(uint8_t rs1, uint8_t rs2, const std::string& target) { b(Opcode::kBlt, rs1, rs2, target); }
  void bge(uint8_t rs1, uint8_t rs2, const std::string& target) { b(Opcode::kBge, rs1, rs2, target); }
  void bltu(uint8_t rs1, uint8_t rs2, const std::string& target) { b(Opcode::kBltu, rs1, rs2, target); }
  void bgeu(uint8_t rs1, uint8_t rs2, const std::string& target) { b(Opcode::kBgeu, rs1, rs2, target); }
  void j(const std::string& target) { jal(reg::zero, target); }
  void jal(uint8_t rd, const std::string& target);
  void jalr(uint8_t rd, uint8_t rs1, int32_t imm = 0) {
    Instr in{Opcode::kJalr, rd, rs1, 0, 0, imm, 0};
    emit(in);
  }
  void call(const std::string& target) { jal(reg::ra, target); }
  void ret() { jalr(reg::zero, reg::ra, 0); }

  // --- hardware loops ---------------------------------------------------------
  /// Emit lp.setup(id) with trip count from `count_reg`, then the body.
  /// The loop body must emit at least 2 instructions and runs count times
  /// (count must be >= 1 at runtime; guard externally if it can be 0).
  void hw_loop(int id, uint8_t count_reg, const std::function<void()>& body);
  /// Same with a compile-time trip count.
  void hw_loop_imm(int id, int32_t count, const std::function<void()>& body);

  // --- SIMD / custom ------------------------------------------------------------
  void sdotsp_b(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kPvSdotspB, rd, rs1, rs2); }
  void pv_add_b(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kPvAddB, rd, rs1, rs2); }
  void pv_max_b(uint8_t rd, uint8_t rs1, uint8_t rs2) { r(Opcode::kPvMaxB, rd, rs1, rs2); }
  /// rd.byte[lane] = mem8[rs1 + rs2 + (m ? lane*m : 0)]. The lane-scaled
  /// addend models the per-lane M-block stride of the sparse kernels'
  /// byte-gather slot (see DESIGN.md); pass m = 0 for a plain rs1+rs2 load.
  void pv_lb_ins(uint8_t rd, int lane, uint8_t rs1, uint8_t rs2, int m = 0);
  /// xdecimate for sparsity M in {4, 8, 16}
  void xdec(uint8_t rd, uint8_t rs1, uint8_t rs2, int m);
  void xdec_clear() { emit(Instr{Opcode::kXdecClear, 0, 0, 0, 0, 0, 0}); }

  // --- system -------------------------------------------------------------------
  void hartid(uint8_t rd) { emit(Instr{Opcode::kHartid, rd, 0, 0, 0, 0, 0}); }
  void barrier() { emit(Instr{Opcode::kBarrier, 0, 0, 0, 0, 0, 0}); }
  void halt() { emit(Instr{Opcode::kHalt, 0, 0, 0, 0, 0, 0}); }

  // --- finalize -------------------------------------------------------------------
  int next_index() const { return static_cast<int>(code_.size()); }
  /// Resolve all fixups and return the program. Builder is left empty.
  Program build();

 private:
  void emit(const Instr& in) { code_.push_back(in); }
  void r(Opcode op, uint8_t rd, uint8_t rs1, uint8_t rs2) {
    emit(Instr{op, rd, rs1, rs2, 0, 0, 0});
  }
  void i(Opcode op, uint8_t rd, uint8_t rs1, int32_t imm);
  void s(Opcode op, uint8_t rs1, uint8_t rs2, int32_t imm);
  void b(Opcode op, uint8_t rs1, uint8_t rs2, const std::string& target);

  struct Fixup {
    int index;          // instruction needing its imm patched
    std::string label;  // target label
  };

  std::vector<Instr> code_;
  std::unordered_map<std::string, int> labels_;
  std::vector<std::pair<std::string, int>> markers_;
  std::vector<Fixup> fixups_;
  int fresh_counter_ = 0;
};

}  // namespace decimate
