#include "isa/builder.hpp"

#include "common/bitutil.hpp"
#include "common/check.hpp"

namespace decimate {

void KernelBuilder::bind(const std::string& name) {
  DECIMATE_CHECK(labels_.count(name) == 0, "duplicate label: " << name);
  labels_[name] = next_index();
}

void KernelBuilder::marker(const std::string& name) {
  markers_.emplace_back(name, next_index());
}

std::string KernelBuilder::fresh_label(const std::string& stem) {
  return stem + "$" + std::to_string(fresh_counter_++);
}

void KernelBuilder::li(uint8_t rd, int32_t value) {
  if (value >= -2048 && value < 2048) {
    addi(rd, reg::zero, value);
    return;
  }
  // lui loads bits [31:12]; addi adds a signed 12-bit value. Round the
  // upper part so that the signed addi correction lands on `value`.
  const int32_t lo = sign_extend(static_cast<uint32_t>(value) & 0xFFF, 12);
  const int32_t hi = (value - lo) >> 12;
  lui(rd, hi);
  if (lo != 0) addi(rd, rd, lo);
}

void KernelBuilder::jal(uint8_t rd, const std::string& target) {
  fixups_.push_back({next_index(), target});
  emit(Instr{Opcode::kJal, rd, 0, 0, 0, 0, 0});
}

void KernelBuilder::i(Opcode op, uint8_t rd, uint8_t rs1, int32_t imm) {
  DECIMATE_CHECK(imm >= -2048 && imm < 2048,
                 "imm out of I-type range for " << opcode_name(op) << ": "
                                                << imm);
  emit(Instr{op, rd, rs1, 0, 0, imm, 0});
}

void KernelBuilder::s(Opcode op, uint8_t rs1, uint8_t rs2, int32_t imm) {
  DECIMATE_CHECK(imm >= -2048 && imm < 2048,
                 "imm out of S-type range for " << opcode_name(op) << ": "
                                                << imm);
  emit(Instr{op, 0, rs1, rs2, 0, imm, 0});
}

void KernelBuilder::b(Opcode op, uint8_t rs1, uint8_t rs2,
                      const std::string& target) {
  fixups_.push_back({next_index(), target});
  emit(Instr{op, 0, rs1, rs2, 0, 0, 0});
}

void KernelBuilder::pv_lb_ins(uint8_t rd, int lane, uint8_t rs1, uint8_t rs2,
                              int m) {
  DECIMATE_CHECK(lane >= 0 && lane < 4, "SIMD lane must be 0..3: " << lane);
  DECIMATE_CHECK(m == 0 || m == 4 || m == 8 || m == 16,
                 "pv.lb.ins lane stride must be 0/4/8/16, got " << m);
  // aux = lane | (log2(m) << 2); log2(m) == 0 encodes "no addend".
  const auto aux = static_cast<uint8_t>(lane | (m ? ceil_log2(m) << 2 : 0));
  emit(Instr{Opcode::kPvLbIns, rd, rs1, rs2, aux, 0, 0});
}

void KernelBuilder::xdec(uint8_t rd, uint8_t rs1, uint8_t rs2, int m) {
  DECIMATE_CHECK(m == 4 || m == 8 || m == 16,
                 "xdecimate supports M in {4,8,16}, got " << m);
  emit(Instr{Opcode::kXdec, rd, rs1, rs2, static_cast<uint8_t>(m), 0, 0});
}

void KernelBuilder::hw_loop(int id, uint8_t count_reg,
                            const std::function<void()>& body) {
  DECIMATE_CHECK(id == 0 || id == 1, "hardware loop id must be 0 or 1");
  const int setup_idx = next_index();
  emit(Instr{Opcode::kLpSetup, 0, count_reg, 0, static_cast<uint8_t>(id), 0, 0});
  body();
  const int end = next_index() - 1;  // index of last body instruction
  DECIMATE_CHECK(end >= setup_idx + 2,
                 "hardware loop body needs at least 2 instructions");
  code_[setup_idx].imm = end;
}

void KernelBuilder::hw_loop_imm(int id, int32_t count,
                                const std::function<void()>& body) {
  DECIMATE_CHECK(id == 0 || id == 1, "hardware loop id must be 0 or 1");
  DECIMATE_CHECK(count >= 1, "lp.setupi trip count must be >= 1");
  const int setup_idx = next_index();
  emit(Instr{Opcode::kLpSetupImm, 0, 0, 0, static_cast<uint8_t>(id), 0, count});
  body();
  const int end = next_index() - 1;
  DECIMATE_CHECK(end >= setup_idx + 2,
                 "hardware loop body needs at least 2 instructions");
  code_[setup_idx].imm = end;
}

Program KernelBuilder::build() {
  Program prog;
  for (const auto& fx : fixups_) {
    auto it = labels_.find(fx.label);
    DECIMATE_CHECK(it != labels_.end(), "undefined label: " << fx.label);
    code_[fx.index].imm = it->second;
  }
  prog.code = std::move(code_);
  prog.labels = std::move(labels_);
  for (const auto& [name, idx] : markers_) prog.set_marker(name, idx);
  code_.clear();
  labels_.clear();
  markers_.clear();
  fixups_.clear();
  return prog;
}

}  // namespace decimate
