#pragma once
// Metrics registry: named counters, gauges, and fixed-bucket log-scale
// histograms for the whole runtime.
//
// Unlike span tracing (trace.hpp), metrics are always compiled in: every
// instrument is one relaxed atomic op on the hot path, cheap enough for
// the serving loop and the per-node kernel dispatch. Metric objects live
// in a process-wide Registry keyed by name; handles returned by
// counter()/gauge()/histogram() are stable for the process lifetime, so
// hot paths resolve a name once (function-local static reference) and
// then touch only the atomic.
//
// Histograms use HdrHistogram-style buckets: values below 16 are exact,
// larger values land in 8 logarithmic sub-buckets per power of two, so a
// reported percentile is within ~6% of the true order statistic at any
// magnitude while the whole histogram stays a fixed ~4 KB of atomics
// (no allocation, no lock on observe). p50/p95/p99 come from the bucket
// midpoints; max and min are tracked exactly.
//
// snapshot_json() serializes every metric, sorted by name, so two
// snapshots of the same state are byte-identical (tests rely on this).

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace decimate::metrics {

class Counter {
 public:
  void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

class Histogram {
 public:
  // bucket 0 = value 0; 1..15 exact; then 8 sub-buckets per octave up to
  // 2^63 (bit widths 4..63 inclusive -> 60 octaves above the exact range)
  static constexpr int kBuckets = 16 + 60 * 8;

  /// Map a value to its bucket index (exact below 16, log-scale above).
  static int bucket_of(uint64_t v);
  /// Representative value of a bucket (the bucket midpoint; exact for the
  /// exact range). Inverse-ish of bucket_of: bucket_of(rep(b)) == b.
  static uint64_t bucket_rep(int bucket);

  void observe(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t min() const;  // UINT64_MAX when empty
  double mean() const;

  /// The p-quantile (p in [0, 1]) from the bucket midpoints: the value of
  /// the bucket holding the ceil(p * count)-th smallest observation.
  /// p >= 1 returns the exact max. 0 when empty.
  uint64_t percentile(double p) const;

  void reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
};

class Registry {
 public:
  /// Find-or-create by name. References stay valid for the process
  /// lifetime (metrics are never removed, reset() only zeroes values).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Deterministic JSON snapshot of every registered metric, sorted by
  /// name: {"counters": {...}, "gauges": {...}, "histograms": {"name":
  /// {"count", "sum", "mean", "p50", "p95", "p99", "max"}}}.
  std::string snapshot_json() const;

  /// Write snapshot_json() to a file; returns false on I/O failure.
  bool save_json(const std::string& path) const;

  /// Zero every metric's value (objects and references stay valid).
  /// For tests and benches that want a clean slate per scenario.
  void reset();

 private:
  struct Impl;
  Impl& impl() const;
};

/// The process-wide registry.
Registry& registry();

}  // namespace decimate::metrics
