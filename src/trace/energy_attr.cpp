#include "trace/energy_attr.hpp"

#include <map>
#include <utility>

namespace decimate::trace {

EnergyBreakdown step_energy(const EnergyModel& model,
                            const LayerReport& report, int num_cores,
                            MemRegion weight_region) {
  const EnergyConfig& cfg = model.config();
  EnergyBreakdown e;
  const double cores = static_cast<double>(num_cores);
  e.compute_nj = static_cast<double>(report.compute_cycles) *
                 cfg.core_pj_per_cycle * cores * 1e-3;
  // inside the pipelined total, cycles beyond the compute share are cores
  // waiting on DMA / serial marshalling
  const uint64_t idle = report.total_cycles > report.compute_cycles
                            ? report.total_cycles - report.compute_cycles
                            : 0;
  e.idle_nj =
      static_cast<double>(idle) * cfg.idle_pj_per_cycle * cores * 1e-3;
  // convert the DMA cycle view back into bytes; weight fetch pays the
  // weight region's rate, activations always stage through L2
  const uint64_t weight_dma = report.weight_dma_cycles <= report.dma_cycles
                                  ? report.weight_dma_cycles
                                  : report.dma_cycles;
  const auto weight_bytes = static_cast<uint64_t>(
      static_cast<double>(weight_dma) * cfg.dma_bytes_per_cycle);
  const auto act_bytes = static_cast<uint64_t>(
      static_cast<double>(report.dma_cycles - weight_dma) *
      cfg.dma_bytes_per_cycle);
  if (weight_region == MemRegion::kL3) {
    e.dma_nj = model.dma_nj(act_bytes, weight_bytes);
  } else {
    e.dma_nj = model.dma_nj(act_bytes + weight_bytes, 0);
  }
  return e;
}

EnergyAttribution attribute_energy(std::span<const Served> served,
                                   PlanStore& store, int num_clusters,
                                   const EnergyModel& model,
                                   int cores_per_cluster) {
  EnergyAttribution out;
  // (model, node name) -> index into out.layers; node names are unique
  // within a graph, models keep mixed traces apart
  std::map<std::pair<int, std::string>, size_t> layer_index;
  for (const Served& s : served) {
    const ServedStats& st = s.stats;
    int batch = 1;
    int clusters = 1;     // clusters the plan was compiled for
    int active = 1;       // clusters busy on THIS request's image
    switch (st.mode) {
      case ServeMode::kBatchFused:
        batch = st.group_size;
        break;
      case ServeMode::kShardedSingle:
        clusters = num_clusters;
        active = num_clusters;
        break;
      case ServeMode::kDataParallel:
        break;
    }
    const CompiledPlan& plan = store.plan(st.model, batch, clusters);
    const int cores = cores_per_cluster * active;
    RequestEnergy req{st.id, 0.0};
    for (const PlanStep& step : plan.steps) {
      if (step.report.total_cycles == 0) continue;
      const EnergyBreakdown eb =
          step_energy(model, step.report, cores, plan.weight_region);
      const double nj = eb.total_nj();
      req.nj += nj;
      auto [it, inserted] = layer_index.emplace(
          std::make_pair(st.model, step.report.name), out.layers.size());
      if (inserted) {
        LayerEnergy le;
        le.model = st.model;
        le.name = step.report.name;
        le.impl = step.report.impl;
        out.layers.push_back(std::move(le));
      }
      LayerEnergy& le = out.layers[it->second];
      le.nj += nj;
      le.cycles += step.report.total_cycles;
      ++le.invocations;
    }
    out.total_nj += req.nj;
    out.requests.push_back(req);
  }
  return out;
}

}  // namespace decimate::trace
