#include "trace/trace.hpp"

#if DECIMATE_TRACE_ENABLED

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

namespace decimate::trace {

const char* cat_name(Cat cat) {
  switch (cat) {
    case Cat::kServe:
      return "serve";
    case Cat::kBatcher:
      return "batcher";
    case Cat::kDispatch:
      return "dispatch";
    case Cat::kExec:
      return "exec";
    case Cat::kKernel:
      return "kernel";
    case Cat::kShard:
      return "shard";
    case Cat::kPool:
      return "pool";
    case Cat::kArtifact:
      return "artifact";
    case Cat::kFault:
      return "fault";
  }
  return "?";
}

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<size_t> g_ring_capacity{size_t{1} << 14};
std::atomic<uint32_t> g_next_tid{1};

// One per recording thread. Owned by the global registry (leaky, so spans
// survive their thread's exit); only the owner thread writes events.
struct RingBuffer {
  explicit RingBuffer(size_t cap)
      : capacity(cap), slots(cap), tid(g_next_tid.fetch_add(1)) {}

  const size_t capacity;
  std::vector<Event> slots;
  const uint32_t tid;
  // Total events ever pushed; slot index is head % capacity. Written by
  // the owner thread with release so exporters see completed slots.
  std::atomic<uint64_t> head{0};
  std::string thread_name;

  void push(const Event& e) {
    const uint64_t h = head.load(std::memory_order_relaxed);
    slots[static_cast<size_t>(h % capacity)] = e;
    head.store(h + 1, std::memory_order_release);
  }
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<RingBuffer*> buffers;  // registration order; never removed
};

BufferRegistry& buffer_registry() {
  // leaky: reachable from a static pointer for the whole process, so
  // exported traces of finished threads stay valid and LSan stays quiet
  static BufferRegistry* instance = new BufferRegistry;
  return *instance;
}

RingBuffer& local_buffer() {
  thread_local RingBuffer* buf = [] {
    auto* b = new RingBuffer(g_ring_capacity.load(std::memory_order_relaxed));
    BufferRegistry& reg = buffer_registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    reg.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

uint64_t epoch_ns() {
  static const uint64_t epoch = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return epoch;
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof hex, "\\u%04x", c);
      out += hex;
    } else {
      out += c;
    }
  }
}

void append_args(std::string& out, const Event& e) {
  out += "\"args\":{";
  bool first = true;
  if (e.cycles != 0) {
    out += "\"cycles\":" + std::to_string(e.cycles);
    first = false;
  }
  for (int i = 0; i < e.nargs; ++i) {
    if (!first) out += ',';
    out += '"';
    append_json_escaped(out, e.akey[i]);
    out += "\":" + std::to_string(e.aval[i]);
    first = false;
  }
  for (int i = 0; i < e.nsargs; ++i) {
    if (e.skey[i] == nullptr || e.sval[i] == nullptr) continue;
    if (!first) out += ',';
    out += '"';
    append_json_escaped(out, e.skey[i]);
    out += "\":\"";
    append_json_escaped(out, e.sval[i]);
    out += '"';
    first = false;
  }
  out += '}';
}

// ts/dur in fractional microseconds, the unit chrome://tracing expects.
std::string us(uint64_t ns) {
  std::string s = std::to_string(ns / 1000);
  s += '.';
  const uint64_t frac = ns % 1000;
  s += static_cast<char>('0' + frac / 100);
  s += static_cast<char>('0' + frac / 10 % 10);
  s += static_cast<char>('0' + frac % 10);
  return s;
}

void append_event_json(std::string& out, const Event& e) {
  out += "{\"name\":\"";
  append_json_escaped(out, e.name);
  out += "\",\"cat\":\"";
  out += cat_name(e.cat);
  out += "\",\"ph\":\"";
  out += e.ph;
  out += "\",\"pid\":1,\"tid\":" + std::to_string(e.tid);
  out += ",\"ts\":" + us(e.ts_ns);
  if (e.ph == 'X') out += ",\"dur\":" + us(e.dur_ns);
  if (e.ph == 'i') out += ",\"s\":\"t\"";
  out += ',';
  append_args(out, e);
  out += '}';
  // a flow event binds to the enclosing slice at the same ts/tid; emit it
  // as a sibling record so Perfetto draws the request arrow
  if (e.flow != Flow::kNone && e.flow_id != 0) {
    const char fph = e.flow == Flow::kStart ? 's'
                     : e.flow == Flow::kStep ? 't'
                                             : 'f';
    out += ",\n{\"name\":\"request\",\"cat\":\"request\",\"ph\":\"";
    out += fph;
    out += "\",\"id\":" + std::to_string(e.flow_id);
    out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    out += ",\"ts\":" + us(e.ts_ns);
    if (fph == 'f') out += ",\"bp\":\"e\"";
    out += '}';
  }
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

uint64_t now_ns() {
  // epoch first: its one-time init reads the clock, so sampling `now`
  // before it would put the very first timestamp BEFORE the epoch
  const uint64_t epoch = epoch_ns();
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - epoch;
}

void set_ring_capacity(size_t events) {
  g_ring_capacity.store(events > 0 ? events : 1, std::memory_order_relaxed);
}

void set_thread_name(const char* name) {
  RingBuffer& buf = local_buffer();
  BufferRegistry& reg = buffer_registry();
  const std::lock_guard<std::mutex> lock(reg.mu);  // exporters read names
  buf.thread_name = name;
}

void emit(Event e) {
  if (!enabled()) return;
  RingBuffer& buf = local_buffer();
  e.tid = buf.tid;
  buf.push(e);
}

void clear() {
  BufferRegistry& reg = buffer_registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (RingBuffer* b : reg.buffers) b->head.store(0, std::memory_order_release);
}

size_t event_count() {
  BufferRegistry& reg = buffer_registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  size_t n = 0;
  for (const RingBuffer* b : reg.buffers) {
    const uint64_t h = b->head.load(std::memory_order_acquire);
    n += static_cast<size_t>(h < b->capacity ? h : b->capacity);
  }
  return n;
}

void for_each_event(const std::function<void(const Event&)>& fn) {
  BufferRegistry& reg = buffer_registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const RingBuffer* b : reg.buffers) {
    const uint64_t head = b->head.load(std::memory_order_acquire);
    const uint64_t held = head < b->capacity ? head : b->capacity;
    for (uint64_t i = head - held; i < head; ++i) {
      fn(b->slots[static_cast<size_t>(i % b->capacity)]);
    }
  }
}

std::string export_chrome_string() {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  {
    BufferRegistry& reg = buffer_registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    out +=
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"decimate\"}}";
    first = false;
    for (const RingBuffer* b : reg.buffers) {
      out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
             std::to_string(b->tid) + ",\"args\":{\"name\":\"";
      append_json_escaped(
          out, b->thread_name.empty() ? "thread" : b->thread_name.c_str());
      out += " (" + std::to_string(b->tid) + ")\"}}";
    }
  }
  for_each_event([&](const Event& e) {
    if (!first) out += ",\n";
    first = false;
    append_event_json(out, e);
  });
  out += "\n]}\n";
  return out;
}

bool export_chrome(const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << export_chrome_string();
  return static_cast<bool>(f);
}

void instant(Cat cat, const char* name, uint64_t flow_request_id,
             Flow flow_phase, const char* akey, int64_t aval, const char* skey,
             const char* sval) {
  if (!enabled()) return;
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.ts_ns = now_ns();
  if (flow_phase != Flow::kNone) {
    e.flow = flow_phase;
    e.flow_id = flow_request_id + 1;
  }
  if (akey != nullptr) {
    e.akey[0] = akey;
    e.aval[0] = aval;
    e.nargs = 1;
  }
  if (skey != nullptr) {
    e.skey[0] = skey;
    e.sval[0] = sval;
    e.nsargs = 1;
  }
  emit(e);
}

}  // namespace decimate::trace

#else  // !DECIMATE_TRACE_ENABLED

namespace decimate::trace {

// Keep this TU non-empty and cat_name available to exporters/tests that
// want the taxonomy even in untraced builds.
const char* cat_name(Cat cat) {
  switch (cat) {
    case Cat::kServe:
      return "serve";
    case Cat::kBatcher:
      return "batcher";
    case Cat::kDispatch:
      return "dispatch";
    case Cat::kExec:
      return "exec";
    case Cat::kKernel:
      return "kernel";
    case Cat::kShard:
      return "shard";
    case Cat::kPool:
      return "pool";
    case Cat::kArtifact:
      return "artifact";
    case Cat::kFault:
      return "fault";
  }
  return "?";
}

}  // namespace decimate::trace

#endif  // DECIMATE_TRACE_ENABLED
