#pragma once
// Runtime span tracing: per-thread lock-free ring buffers of nested spans
// exported as Chrome trace-event JSON (opens directly in Perfetto or
// chrome://tracing).
//
// Recording model:
//  - TraceScope is an RAII span: construction stamps the steady-clock
//    start, destruction stamps the duration and pushes ONE complete
//    ('X') event into the calling thread's ring buffer. Nesting falls out
//    of interval containment per thread track — no begin/end pairing to
//    keep consistent. Spans may carry up to two named integer args, one
//    named string arg, modeled cycles, and a flow point.
//  - instant() records a zero-duration ('i') event the same way.
//  - Flow: a request's journey across threads (submit thread -> serve
//    loop -> pool workers) is stitched by flow events keyed on the
//    request id; Perfetto draws them as arrows between the spans they
//    attach to.
//  - Every name/arg-key/string-arg must be a pointer that outlives the
//    export (string literals, or owned strings like Node::name that live
//    as long as their Graph). Nothing is copied on the hot path.
//
// Threading: each thread owns its buffer (created on first event,
// registered once under a mutex, kept alive for the process so spans of
// joined threads still export). Recording is wait-free: one slot write
// plus a release store of the head index; the ring wraps, overwriting the
// oldest events, so memory stays bounded however long a server runs.
// Export expects recording threads to be quiescent (or tracing disabled);
// a racing writer can tear at most the ring tail.
//
// Cost: a span is two steady_clock reads and a ~128-byte slot write when
// tracing is runtime-enabled, one relaxed atomic load when disabled, and
// ZERO when compiled out — without -DDECIMATE_TRACE=ON (CMake option
// DECIMATE_TRACE) TraceScope is an empty type, every function below is an
// empty inline, and no tracing code or data exists in the binary; builds
// are behavior-identical either way.

#include <cstdint>
#include <functional>
#include <string>

#if defined(DECIMATE_TRACE)
#define DECIMATE_TRACE_ENABLED 1
#else
#define DECIMATE_TRACE_ENABLED 0
#endif

namespace decimate::trace {

/// Stable span categories — one per runtime layer ("cat" in the JSON).
enum class Cat : uint8_t {
  kServe,     // Server: request lifecycle, serve loop
  kBatcher,   // Batcher: flush decisions
  kDispatch,  // Dispatcher: mode choice, chunking
  kExec,      // ExecutionEngine: run / run_batch
  kKernel,    // per-PlanStep kernel execution
  kShard,     // MultiClusterEngine: per-cluster shard work
  kPool,      // WorkerPool: task execution and parked time
  kArtifact,  // PlanRegistry: artifact load / mmap / verify / publish
  kFault,     // FaultInjector: injected faults and recovery actions
};

const char* cat_name(Cat cat);

/// Flow-event phase attached to a span or instant.
enum class Flow : uint8_t { kNone = 0, kStart, kStep, kEnd };

/// One recorded event (a ring-buffer slot). POD by design.
struct Event {
  const char* name = nullptr;
  Cat cat = Cat::kExec;
  char ph = 'X';  // 'X' complete span, 'i' instant
  Flow flow = Flow::kNone;
  uint32_t tid = 0;
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t cycles = 0;   // modeled cycles, 0 = not applicable
  uint64_t flow_id = 0;  // request id + 1; 0 = no flow
  int nargs = 0;
  const char* akey[2] = {nullptr, nullptr};
  int64_t aval[2] = {0, 0};
  int nsargs = 0;
  const char* skey[2] = {nullptr, nullptr};
  const char* sval[2] = {nullptr, nullptr};
};

#if DECIMATE_TRACE_ENABLED

/// Runtime collection toggle. Compiled-in builds start ENABLED, so a
/// traced binary records by default; flip it off around sections that
/// must not record (e.g. the overhead gate's baseline timing).
bool enabled();
void set_enabled(bool on);

/// Steady-clock nanoseconds since the trace epoch (first use).
uint64_t now_ns();

/// Ring capacity (events per thread) for buffers created AFTER this call;
/// existing buffers keep their size. Default 1 << 14.
void set_ring_capacity(size_t events);

/// Name the calling thread's track in the exported trace.
void set_thread_name(const char* name);

/// Append a fully-formed event to the calling thread's ring (tid is
/// stamped here). Recording must be enabled, or the event is dropped.
void emit(Event e);

/// Drop every recorded event (buffers stay registered). Call while
/// recording threads are quiescent.
void clear();

/// Total events currently held across all thread rings.
size_t event_count();

/// Visit every recorded event, oldest-first per thread, threads in
/// registration order. For tests and custom exporters.
void for_each_event(const std::function<void(const Event&)>& fn);

/// Serialize everything recorded as Chrome trace-event JSON: one track
/// per thread (thread_name metadata), complete/instant events with args
/// ("cycles" included when set), and s/t/f flow events stitching request
/// ids across threads.
std::string export_chrome_string();

/// Write export_chrome_string() to `path`; false on I/O failure.
bool export_chrome(const std::string& path);

class TraceScope {
 public:
  TraceScope(Cat cat, const char* name) {
    if (enabled()) {
      live_ = true;
      e_.cat = cat;
      e_.name = name;
      e_.ts_ns = now_ns();
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() {
    if (live_) {
      e_.dur_ns = now_ns() - e_.ts_ns;
      emit(e_);
    }
  }

  void arg(const char* key, int64_t v) {
    if (live_ && e_.nargs < 2) {
      e_.akey[e_.nargs] = key;
      e_.aval[e_.nargs] = v;
      ++e_.nargs;
    }
  }
  void sarg(const char* key, const char* v) {
    if (live_ && e_.nsargs < 2) {
      e_.skey[e_.nsargs] = key;
      e_.sval[e_.nsargs] = v;
      ++e_.nsargs;
    }
  }
  void cycles(uint64_t c) {
    if (live_) e_.cycles = c;
  }
  void flow(uint64_t request_id, Flow phase) {
    if (live_) {
      e_.flow_id = request_id + 1;
      e_.flow = phase;
    }
  }

 private:
  Event e_;
  bool live_ = false;
};

/// Zero-duration event; args mirror TraceScope's.
void instant(Cat cat, const char* name, uint64_t flow_request_id = 0,
             Flow flow_phase = Flow::kNone, const char* akey = nullptr,
             int64_t aval = 0, const char* skey = nullptr,
             const char* sval = nullptr);

#else  // !DECIMATE_TRACE_ENABLED — every entry point is an empty inline

inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline uint64_t now_ns() { return 0; }
inline void set_ring_capacity(size_t) {}
inline void set_thread_name(const char*) {}
inline void emit(Event) {}
inline void clear() {}
inline size_t event_count() { return 0; }
inline void for_each_event(const std::function<void(const Event&)>&) {}
inline std::string export_chrome_string() { return {}; }
inline bool export_chrome(const std::string&) { return false; }

class TraceScope {
 public:
  TraceScope(Cat, const char*) {}
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  void arg(const char*, int64_t) {}
  void sarg(const char*, const char*) {}
  void cycles(uint64_t) {}
  void flow(uint64_t, Flow) {}
};

inline void instant(Cat, const char*, uint64_t = 0, Flow = Flow::kNone,
                    const char* = nullptr, int64_t = 0, const char* = nullptr,
                    const char* = nullptr) {}

#endif  // DECIMATE_TRACE_ENABLED

}  // namespace decimate::trace
