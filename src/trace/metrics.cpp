#include "trace/metrics.hpp"

#include <bit>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

namespace decimate::metrics {

// --- Histogram --------------------------------------------------------------

int Histogram::bucket_of(uint64_t v) {
  if (v < 16) return static_cast<int>(v);
  const int width = std::bit_width(v);  // 5..64 here
  const int octave = width - 4;         // 1.. for v >= 16
  const int sub = static_cast<int>((v >> (width - 4)) & 7);
  const int idx = 16 + (octave - 1) * 8 + sub;
  return idx < kBuckets ? idx : kBuckets - 1;
}

uint64_t Histogram::bucket_rep(int bucket) {
  if (bucket < 16) return static_cast<uint64_t>(bucket);
  const int octave = (bucket - 16) / 8 + 1;
  const int sub = (bucket - 16) % 8;
  // bucket covers [(8 + sub) << octave, (8 + sub + 1) << octave); the
  // midpoint keeps percentile error within half a bucket width (~6%)
  const uint64_t lo = static_cast<uint64_t>(8 + sub) << octave;
  const uint64_t width = uint64_t{1} << octave;
  return lo + width / 2;
}

void Histogram::observe(uint64_t v) {
  buckets_[static_cast<size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const { return min_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const uint64_t n = count();
  return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

uint64_t Histogram::percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (p >= 1.0) return max();
  if (p < 0.0) p = 0.0;
  // rank of the wanted order statistic, 1-based
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(n)) + 1;
  if (rank > n) rank = n;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    if (seen >= rank) return bucket_rep(b);
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
}

// --- Registry ---------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mu;
  // deques keep element addresses stable; maps give sorted-by-name
  // iteration for the deterministic snapshot
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, Counter*> counter_by_name;
  std::map<std::string, Gauge*> gauge_by_name;
  std::map<std::string, Histogram*> histogram_by_name;
};

Registry::Impl& Registry::impl() const {
  // leaky singleton: reachable from a static pointer for the process
  // lifetime, so handles never dangle and LSan stays quiet
  static Impl* instance = new Impl;
  return *instance;
}

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.counter_by_name.find(std::string(name));
  if (it == im.counter_by_name.end()) {
    im.counters.emplace_back();
    it = im.counter_by_name.emplace(std::string(name), &im.counters.back())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.gauge_by_name.find(std::string(name));
  if (it == im.gauge_by_name.end()) {
    im.gauges.emplace_back();
    it = im.gauge_by_name.emplace(std::string(name), &im.gauges.back()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.histogram_by_name.find(std::string(name));
  if (it == im.histogram_by_name.end()) {
    im.histograms.emplace_back();
    it = im.histogram_by_name.emplace(std::string(name), &im.histograms.back())
             .first;
  }
  return *it->second;
}

std::string Registry::snapshot_json() const {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : im.counter_by_name) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : im.gauge_by_name) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << g->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : im.histogram_by_name) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
       << h->count() << ", \"sum\": " << h->sum() << ", \"mean\": "
       << h->mean() << ", \"p50\": " << h->percentile(0.50) << ", \"p95\": "
       << h->percentile(0.95) << ", \"p99\": " << h->percentile(0.99)
       << ", \"max\": " << h->max() << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

bool Registry::save_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << snapshot_json();
  return static_cast<bool>(out);
}

void Registry::reset() {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  for (auto& c : im.counters) c.reset();
  for (auto& g : im.gauges) g.reset();
  for (auto& h : im.histograms) h.reset();
}

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace decimate::metrics
