#pragma once
// Energy attribution: fold src/hw's EnergyModel over the per-step cycle
// reports of the plans a serving run executed, yielding J/request and
// J/layer — the Deutel-style "energy per inference" dashboard.
//
// The plan reports carry cycles (compute / DMA / pipelined total), not
// opcode histograms, so attribution uses the first-order cycle-level
// knobs of EnergyConfig:
//   compute  = compute_cycles x core_pj_per_cycle x cores        (busy)
//   idle     = (total - compute) x idle_pj_per_cycle x cores     (stalled
//              on DMA or barriers inside the pipelined total)
//   dma      = dma_cycles x dma_bytes_per_cycle bytes, billed at the L2
//              rate except the weight-fetch share, billed at the plan's
//              weight region (L3-resident weights cost ~10x per byte)
// Like the cycle reports themselves, the result is input-independent and
// deterministic: same arrival trace, same joules.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "exec/plan.hpp"
#include "hw/energy.hpp"
#include "serve/plan_store.hpp"
#include "serve/serving.hpp"

namespace decimate::trace {

/// Energy of one executed layer, aggregated across every request that ran
/// it (per-image view: a fused batch bills each image its amortized
/// share).
struct LayerEnergy {
  int model = 0;
  std::string name;
  std::string impl;
  double nj = 0.0;
  uint64_t cycles = 0;       // Σ per-image total_cycles across invocations
  uint64_t invocations = 0;  // requests that executed this layer
};

struct RequestEnergy {
  uint64_t id = 0;
  double nj = 0.0;
};

struct EnergyAttribution {
  double total_nj = 0.0;
  std::vector<LayerEnergy> layers;      // first-execution order
  std::vector<RequestEnergy> requests;  // input order
  double mean_nj_per_request() const {
    return requests.empty() ? 0.0
                            : total_nj / static_cast<double>(requests.size());
  }
};

/// Energy of one plan step's per-image report executed on `num_cores`
/// cores, weights resident in `weight_region`.
EnergyBreakdown step_energy(const EnergyModel& model,
                            const LayerReport& report, int num_cores,
                            MemRegion weight_region);

/// Attribute energy to every served request by folding `model` over the
/// cycle reports of the plan each request's ServedStats says it ran:
/// kBatchFused -> plan(model, group_size, 1) (per-image amortized),
/// kShardedSingle -> plan(model, 1, num_clusters) (all clusters busy),
/// kDataParallel -> plan(model, 1, 1) (one cluster per image).
/// The store must already hold those plans (a Dispatcher-served run has
/// warmed them); missing ones compile here.
EnergyAttribution attribute_energy(std::span<const Served> served,
                                   PlanStore& store, int num_clusters,
                                   const EnergyModel& model = EnergyModel{},
                                   int cores_per_cluster = 8);

}  // namespace decimate::trace
