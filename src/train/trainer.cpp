#include "train/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "compiler/schedule.hpp"
#include "nn/prune.hpp"

namespace decimate {

SynthDataset SynthDataset::make(int n, int dim, int classes, double spread,
                                Rng& rng, uint64_t task_seed) {
  SynthDataset ds;
  ds.dim = dim;
  ds.classes = classes;
  ds.x.resize(static_cast<size_t>(n) * dim);
  ds.y.resize(static_cast<size_t>(n));
  Rng center_rng(task_seed);
  std::vector<float> centers(static_cast<size_t>(classes) * dim);
  for (auto& c : centers) c = static_cast<float>(center_rng.normal());
  for (int i = 0; i < n; ++i) {
    const int cls = rng.uniform_int(0, classes - 1);
    ds.y[static_cast<size_t>(i)] = cls;
    for (int d = 0; d < dim; ++d) {
      ds.x[static_cast<size_t>(i) * dim + d] =
          centers[static_cast<size_t>(cls) * dim + d] +
          static_cast<float>(rng.normal() * spread);
    }
  }
  return ds;
}

Mlp::Mlp(const MlpConfig& cfg) : cfg_(cfg) {
  Rng rng(cfg.seed);
  const auto init = [&](std::vector<float>& w, int fan_in, size_t n) {
    w.resize(n);
    const double s = 1.0 / std::sqrt(static_cast<double>(fan_in));
    for (auto& v : w) v = static_cast<float>(rng.normal() * s);
  };
  init(w1_, cfg.in, static_cast<size_t>(cfg.hidden) * cfg.in);
  init(w2_, cfg.hidden, static_cast<size_t>(cfg.classes) * cfg.hidden);
  b1_.assign(static_cast<size_t>(cfg.hidden), 0.f);
  b2_.assign(static_cast<size_t>(cfg.classes), 0.f);
  project();
}

void Mlp::project() {
  if (cfg_.nm_m == 0) return;
  nm_prune(std::span<float>(w1_), cfg_.hidden, cfg_.in, 1, cfg_.nm_m);
  nm_prune(std::span<float>(w2_), cfg_.classes, cfg_.hidden, 1, cfg_.nm_m);
}

void Mlp::forward(const float* x, std::vector<float>& h,
                  std::vector<float>& logits) const {
  h.assign(static_cast<size_t>(cfg_.hidden), 0.f);
  for (int j = 0; j < cfg_.hidden; ++j) {
    float acc = b1_[static_cast<size_t>(j)];
    const float* w = w1_.data() + static_cast<int64_t>(j) * cfg_.in;
    for (int i = 0; i < cfg_.in; ++i) acc += w[i] * x[i];
    h[static_cast<size_t>(j)] = std::max(acc, 0.f);
  }
  logits.assign(static_cast<size_t>(cfg_.classes), 0.f);
  for (int k = 0; k < cfg_.classes; ++k) {
    float acc = b2_[static_cast<size_t>(k)];
    const float* w = w2_.data() + static_cast<int64_t>(k) * cfg_.hidden;
    for (int j = 0; j < cfg_.hidden; ++j) acc += w[j] * h[static_cast<size_t>(j)];
    logits[static_cast<size_t>(k)] = acc;
  }
}

void Mlp::train(const SynthDataset& train_set) {
  Rng rng(cfg_.seed + 1);
  std::vector<float> h, logits, p(static_cast<size_t>(cfg_.classes));
  std::vector<float> dh(static_cast<size_t>(cfg_.hidden));
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    for (int step = 0; step < train_set.size(); ++step) {
      const int i = rng.uniform_int(0, train_set.size() - 1);
      const float* x = train_set.sample(i);
      forward(x, h, logits);
      // softmax + cross-entropy gradient
      float mx = logits[0];
      for (float v : logits) mx = std::max(mx, v);
      float sum = 0.f;
      for (int k = 0; k < cfg_.classes; ++k) {
        p[static_cast<size_t>(k)] = std::exp(logits[static_cast<size_t>(k)] - mx);
        sum += p[static_cast<size_t>(k)];
      }
      for (auto& v : p) v /= sum;
      p[static_cast<size_t>(train_set.y[static_cast<size_t>(i)])] -= 1.f;
      // backward: layer 2
      std::fill(dh.begin(), dh.end(), 0.f);
      const auto lr = static_cast<float>(cfg_.lr);
      for (int k = 0; k < cfg_.classes; ++k) {
        float* w = w2_.data() + static_cast<int64_t>(k) * cfg_.hidden;
        const float g = p[static_cast<size_t>(k)];
        for (int j = 0; j < cfg_.hidden; ++j) {
          dh[static_cast<size_t>(j)] += g * w[j];
          w[j] -= lr * g * h[static_cast<size_t>(j)];
        }
        b2_[static_cast<size_t>(k)] -= lr * g;
      }
      // layer 1 (through ReLU)
      for (int j = 0; j < cfg_.hidden; ++j) {
        if (h[static_cast<size_t>(j)] <= 0.f) continue;
        const float g = dh[static_cast<size_t>(j)];
        float* w = w1_.data() + static_cast<int64_t>(j) * cfg_.in;
        for (int d = 0; d < cfg_.in; ++d) w[d] -= lr * g * x[d];
        b1_[static_cast<size_t>(j)] -= lr * g;
      }
      project();  // projected SGD: re-impose the 1:M pattern each step
    }
  }
}

double Mlp::accuracy(const SynthDataset& test_set) const {
  std::vector<float> h, logits;
  int correct = 0;
  for (int i = 0; i < test_set.size(); ++i) {
    forward(test_set.sample(i), h, logits);
    const int pred = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    correct += (pred == test_set.y[static_cast<size_t>(i)]);
  }
  return static_cast<double>(correct) / test_set.size();
}

Graph Mlp::to_int8_graph(float input_scale) const {
  Graph g({1, cfg_.in});
  // layer 1
  Tensor8 w1q({cfg_.hidden, cfg_.in});
  const float s_w1 = quantize_symmetric(w1_, w1q.flat());
  Tensor8 w2q({cfg_.classes, cfg_.hidden});
  const float s_w2 = quantize_symmetric(w2_, w2q.flat());
  const float s_h = 0.05f;       // hidden activation scale
  const float s_out = 0.25f;     // logits scale
  auto bias_q = [&](const std::vector<float>& b, float s_acc) {
    Tensor32 out({static_cast<int>(b.size())});
    for (size_t i = 0; i < b.size(); ++i) {
      out[static_cast<int64_t>(i)] =
          static_cast<int32_t>(std::lround(b[i] / s_acc));
    }
    return out;
  };
  Node fc1;
  fc1.op = OpType::kFc;
  fc1.name = "fc1";
  fc1.inputs = {0};
  fc1.fc = FcGeom{.tokens = 1, .c = cfg_.in, .k = cfg_.hidden};
  fc1.weights = w1q;
  fc1.bias = bias_q(b1_, input_scale * s_w1);
  fc1.rq = make_requant(static_cast<double>(input_scale) * s_w1 / s_h,
                        static_cast<int64_t>(cfg_.in) * 127 * 127);
  fc1.out_shape = {1, cfg_.hidden};
  const int id1 = g.add(std::move(fc1));
  Node r;
  r.op = OpType::kRelu;
  r.name = "relu";
  r.inputs = {id1};
  r.out_shape = {1, cfg_.hidden};
  const int id2 = g.add(std::move(r));
  Node fc2;
  fc2.op = OpType::kFc;
  fc2.name = "fc2";
  fc2.inputs = {id2};
  fc2.fc = FcGeom{.tokens = 1, .c = cfg_.hidden, .k = cfg_.classes};
  fc2.weights = w2q;
  fc2.bias = bias_q(b2_, s_h * s_w2);
  fc2.rq = make_requant(static_cast<double>(s_h) * s_w2 / s_out,
                        static_cast<int64_t>(cfg_.hidden) * 127 * 127);
  fc2.out_shape = {1, cfg_.classes};
  g.add(std::move(fc2));
  return g;
}

Tensor8 Mlp::quantize_input(const float* x, float input_scale) const {
  Tensor8 q({1, cfg_.in});
  for (int i = 0; i < cfg_.in; ++i) {
    const auto v = static_cast<int>(std::lround(x[i] / input_scale));
    q[i] = static_cast<int8_t>(std::clamp(v, -127, 127));
  }
  return q;
}

std::vector<AccuracyPoint> accuracy_trend_experiment(int test_samples,
                                                     uint64_t seed) {
  Rng rng(seed);
  const int dim = 32, classes = 10;
  const SynthDataset train_set =
      SynthDataset::make(2000, dim, classes, 2.0, rng);
  const SynthDataset test_set =
      SynthDataset::make(test_samples, dim, classes, 2.0, rng);
  const float input_scale = 0.05f;

  std::vector<AccuracyPoint> points;
  for (int m : {0, 4, 8, 16}) {
    MlpConfig cfg;
    cfg.nm_m = m;
    Mlp mlp(cfg);
    mlp.train(train_set);
    AccuracyPoint pt;
    pt.m = m;
    pt.float_acc = mlp.accuracy(test_set);
    // int8 deployment through the compiler/executor stack: compile the
    // graph once, then stream the whole test set through the pipelined
    // batch engine in one call
    const Graph g = mlp.to_int8_graph(input_scale);
    CompileOptions copt;
    copt.enable_isa = true;
    Compiler compiler(copt);
    const CompiledPlan plan = compiler.compile(g);
    ExecutionEngine engine;
    std::vector<Tensor8> qx;
    qx.reserve(static_cast<size_t>(test_set.size()));
    for (int i = 0; i < test_set.size(); ++i) {
      qx.push_back(mlp.quantize_input(test_set.sample(i), input_scale));
    }
    const BatchRun batch = engine.run_batch(plan, qx);
    int correct = 0;
    for (int i = 0; i < test_set.size(); ++i) {
      const NetworkRun& run = batch.runs[static_cast<size_t>(i)];
      int pred = 0;
      for (int k = 1; k < classes; ++k) {
        if (run.output[k] > run.output[pred]) pred = k;
      }
      correct += (pred == test_set.y[static_cast<size_t>(i)]);
    }
    pt.int8_acc = static_cast<double>(correct) / test_set.size();
    points.push_back(pt);
  }
  return points;
}

}  // namespace decimate
