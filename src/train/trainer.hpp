#pragma once
// Accuracy-trend substitute for Table 2's accuracy column (see DESIGN.md):
// a float MLP trained with N:M projected SGD (the inference-side analogue
// of Zhou et al. 2021's training scheme) on a synthetic Gaussian-mixture
// classification task, then quantized to int8 and deployed through the
// same graph/executor stack as the paper's networks. The claim reproduced
// is the *trend* — dense ≈ 1:4 ≥ 1:8 ≥ 1:16 with small degradations — not
// the paper's absolute CIFAR numbers (we have no CIFAR here).

#include <vector>

#include "common/rng.hpp"
#include "compiler/graph.hpp"

namespace decimate {

struct SynthDataset {
  int dim = 0;
  int classes = 0;
  std::vector<float> x;  // n x dim
  std::vector<int> y;    // n

  int size() const { return static_cast<int>(y.size()); }
  const float* sample(int i) const { return x.data() + static_cast<int64_t>(i) * dim; }

  /// Gaussian clusters, one per class. Class centers are derived from
  /// `task_seed` so that several calls (train/test splits) share the same
  /// underlying task; `rng` drives the per-sample noise.
  static SynthDataset make(int n, int dim, int classes, double spread,
                           Rng& rng, uint64_t task_seed = 2718);
};

struct MlpConfig {
  int in = 32;
  int hidden = 128;
  int classes = 10;
  int epochs = 25;
  double lr = 0.005;
  int nm_m = 0;  // 0 = dense; otherwise project both layers to 1:M
  uint64_t seed = 1234;
};

/// Two-layer ReLU MLP with plain SGD + optional per-step 1:M magnitude
/// projection (projected gradient descent).
class Mlp {
 public:
  explicit Mlp(const MlpConfig& cfg);

  void train(const SynthDataset& train_set);
  double accuracy(const SynthDataset& test_set) const;

  /// Quantize to int8 and build a 2-layer FC graph runnable by the
  /// ScheduleExecutor (weights keep their trained N:M pattern).
  Graph to_int8_graph(float input_scale) const;
  /// Quantize a float sample to the int8 input of to_int8_graph().
  Tensor8 quantize_input(const float* x, float input_scale) const;

  const MlpConfig& config() const { return cfg_; }

 private:
  void forward(const float* x, std::vector<float>& h,
               std::vector<float>& logits) const;
  void project();

  MlpConfig cfg_;
  std::vector<float> w1_, b1_;  // hidden x in
  std::vector<float> w2_, b2_;  // classes x hidden
};

struct AccuracyPoint {
  int m = 0;          // 0 = dense
  double float_acc = 0.0;
  double int8_acc = 0.0;  // deployed through the executor stack
};

/// Train dense + the three sparsity levels and evaluate both float and
/// int8-deployed accuracy.
std::vector<AccuracyPoint> accuracy_trend_experiment(int test_samples = 400,
                                                     uint64_t seed = 99);

}  // namespace decimate
