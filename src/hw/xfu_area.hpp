#pragma once
// Area model of the xDecimate eXtension Functional Unit (Sec. 4.3, Fig. 7)
// and a cycle-level model of its 4-stage pipeline integration (ID/EX/WB)
// with the WB->EX forwarding path for the csr and rd dependencies.
//
// The paper reports a 5.0% core-area overhead from Synopsys synthesis in
// 22nm. We reproduce the *accounting*: a per-block kGE budget for the XFU
// against an RI5CY-class (FPU-less) core baseline. Block sizes are
// first-order standard-cell estimates (NAND2-equivalent gates) for the
// datapath widths involved; the ratio — not the absolute kGE — is the
// reproduced quantity.

#include <cstdint>
#include <string>
#include <vector>

namespace decimate {

struct AreaBlock {
  std::string name;
  double kge = 0.0;
  std::string note;
};

struct XfuAreaModel {
  /// RI5CY-class RV32IMC + XpulpV2 core without FPU. Schuiki et al. (2020)
  /// report 102 kGE for the FPU-equipped RI5CY; the paper's SSR comparison
  /// (20-31 kGE being 44% of an FPU-less core) puts the FPU-less baseline
  /// near 45-50 kGE.
  double core_kge = 47.0;

  std::vector<AreaBlock> blocks() const;
  double xfu_kge() const;
  double overhead_fraction() const { return xfu_kge() / core_kge; }
};

/// Pipeline-timing model of back-to-back xDecimate instructions through
/// ID/EX/WB: the csr (incremented in WB, consumed in EX) is a distance-1
/// dependency, so consecutive xDecimate pairs stall `bubble_cycles()`
/// cycles unless the WB->EX forwarding path is present.
struct XfuPipelineModel {
  bool forwarding = true;
  int stages_between_ex_and_wb = 1;

  int bubble_cycles() const {
    return forwarding ? 0 : stages_between_ex_and_wb;
  }

  /// Cycles to execute `n` back-to-back xDecimate instructions.
  uint64_t back_to_back_cycles(uint64_t n) const {
    if (n == 0) return 0;
    return n + (n - 1) * static_cast<uint64_t>(bubble_cycles());
  }
};

}  // namespace decimate
