#pragma once
// Energy model (extension; paper Sec. 6 future work: "prototype our
// hardware extension on FPGA to enable an estimation of the energy
// savings").
//
// First-order per-instruction-class energy for a Vega-class 22nm cluster
// core, applied to the ISS opcode histograms. Absolute pJ values are
// literature-scale estimates (Rossi et al. 2021 report ~1.7-3 pJ/op core
// energy at the efficiency point); the reproduced quantity is the
// *relative* energy of dense vs sparse executions — fewer executed
// instructions and fewer transferred bytes translate directly into energy
// at roughly constant power.

#include <cstdint>

#include "sim/cluster.hpp"

namespace decimate {

struct EnergyConfig {
  // pJ per executed instruction, by class
  double alu_pj = 1.0;
  double mul_pj = 1.5;
  double div_pj = 6.0;
  double mem_l1_pj = 2.5;   // L1 load/store (incl. post-increment)
  double simd_pj = 2.0;     // pv.* dot products / lane ops
  double xdec_pj = 2.8;     // xDecimate: L1 byte load + unpack + insert
  double branch_pj = 1.2;
  double idle_pj_per_cycle = 0.4;  // stalled / barrier-waiting core
  // DMA energy per byte moved
  double dma_l2_pj_per_byte = 1.2;
  double dma_l3_pj_per_byte = 12.0;  // off-chip HyperRAM-class access
  // Cycle-level knobs for attributing energy from plan reports (which
  // carry cycles, not opcode histograms — see trace/energy_attr):
  // average pJ a busy core burns per cycle (between alu_pj and simd_pj at
  // IPC ~1), and bytes a DMA stream moves per dma_cycle (converts the
  // report's cycle view back into transferred bytes).
  double core_pj_per_cycle = 2.0;
  double dma_bytes_per_cycle = 8.0;
};

struct EnergyBreakdown {
  double compute_nj = 0.0;
  double idle_nj = 0.0;
  double dma_nj = 0.0;
  double total_nj() const { return compute_nj + idle_nj + dma_nj; }
};

class EnergyModel {
 public:
  explicit EnergyModel(const EnergyConfig& cfg = {}) : cfg_(cfg) {}

  const EnergyConfig& config() const { return cfg_; }

  /// Instruction class energy of one opcode.
  double op_pj(Opcode op) const;

  /// Energy of a cluster run (opcode histograms + idle cycles).
  EnergyBreakdown kernel_energy(const RunResult& run) const;

  /// DMA transfer energy for bytes moved at a hierarchy level.
  double dma_nj(uint64_t l2_bytes, uint64_t l3_bytes) const {
    return (static_cast<double>(l2_bytes) * cfg_.dma_l2_pj_per_byte +
            static_cast<double>(l3_bytes) * cfg_.dma_l3_pj_per_byte) * 1e-3;
  }

 private:
  EnergyConfig cfg_;
};

}  // namespace decimate
