#include "hw/xfu_area.hpp"

namespace decimate {

std::vector<AreaBlock> XfuAreaModel::blocks() const {
  // First-order NAND2-equivalent estimates for the Fig. 7 micro-
  // architecture. One kGE = 1000 NAND2-equivalent gates.
  return {
      {"decoder", 0.15,
       "R-type decode of the three xdecimate flavors + clear"},
      {"offset-unpack mux", 0.45,
       "32:4 nibble / 32:2 bit-pair selection driven by csr[3:0]"},
      {"address adder", 0.55,
       "rs1 + M*csr[15:1] + o; 32-bit carry-lookahead + shift of csr"},
      {"csr register + increment", 0.30, "16-bit csr, +1 incrementer, clear"},
      {"byte-insert mux", 0.40,
       "4-lane byte write-enable into rd (WB stage)"},
      {"WB->EX forwarding", 0.20,
       "csr/rd bypass comparators and muxes for back-to-back xdecimate"},
      {"pipeline registers/control", 0.30,
       "EX/WB flops for lane select, LSU handshake"},
  };
}

double XfuAreaModel::xfu_kge() const {
  double total = 0.0;
  for (const auto& b : blocks()) total += b.kge;
  return total;
}

}  // namespace decimate
