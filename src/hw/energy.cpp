#include "hw/energy.hpp"

namespace decimate {

double EnergyModel::op_pj(Opcode op) const {
  switch (op) {
    case Opcode::kMul:
    case Opcode::kMulh:
      return cfg_.mul_pj;
    case Opcode::kDiv:
    case Opcode::kDivu:
    case Opcode::kRem:
      return cfg_.div_pj;
    case Opcode::kLb: case Opcode::kLbu: case Opcode::kLh: case Opcode::kLhu:
    case Opcode::kLw: case Opcode::kSb: case Opcode::kSh: case Opcode::kSw:
    case Opcode::kLbPi: case Opcode::kLbuPi: case Opcode::kLhuPi:
    case Opcode::kLwPi: case Opcode::kSbPi: case Opcode::kSwPi:
    case Opcode::kLbRr: case Opcode::kLbuRr: case Opcode::kLwRr:
    case Opcode::kPvLbIns:
      return cfg_.mem_l1_pj;
    case Opcode::kPvSdotspB:
    case Opcode::kPvAddB:
    case Opcode::kPvMaxB:
      return cfg_.simd_pj;
    case Opcode::kXdec:
      return cfg_.xdec_pj;
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt: case Opcode::kBge:
    case Opcode::kBltu: case Opcode::kBgeu: case Opcode::kJal:
    case Opcode::kJalr:
      return cfg_.branch_pj;
    default:
      return cfg_.alu_pj;
  }
}

EnergyBreakdown EnergyModel::kernel_energy(const RunResult& run) const {
  EnergyBreakdown e;
  for (const auto& cs : run.per_core) {
    double core_pj = 0.0;
    for (int op = 0; op < kNumOpcodes; ++op) {
      core_pj += static_cast<double>(cs.opcode_histogram[static_cast<size_t>(op)]) *
                 op_pj(static_cast<Opcode>(op));
    }
    e.compute_nj += core_pj * 1e-3;
    // cycles a core spends stalled or waiting on the barrier relative to
    // the wall time of the run
    const uint64_t busy = cs.cycles;
    const uint64_t idle = run.wall_cycles > busy ? run.wall_cycles - busy : 0;
    e.idle_nj += static_cast<double>(idle) * cfg_.idle_pj_per_cycle * 1e-3;
  }
  return e;
}

}  // namespace decimate
