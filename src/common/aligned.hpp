#pragma once
// 64-byte-aligned allocator for hot-path arrays. Tensor backing storage
// and the HostKernelDispatch gather arrays are allocated through this so
// SIMD loads never straddle a cache line at the base of an array, and so
// adjacent arrays don't false-share a line when worker threads stream
// them concurrently. 64 covers every vector width we dispatch to (AVX2
// 32B, AVX-512 64B) and the common x86 cache-line size.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace decimate {

inline constexpr std::size_t kHostAlign = 64;

template <typename T, std::size_t Align = kHostAlign>
struct AlignedAlloc {
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");
  static_assert(Align >= alignof(T), "alignment below the type's natural one");

  using value_type = T;
  // the non-type Align parameter defeats allocator_traits' automatic
  // rebind deduction, so spell it out
  template <typename U>
  struct rebind {
    using other = AlignedAlloc<U, Align>;
  };

  AlignedAlloc() noexcept = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t{Align});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  bool operator==(const AlignedAlloc<U, Align>&) const noexcept {
    return true;
  }
};

template <typename T>
using AlignedVec = std::vector<T, AlignedAlloc<T>>;

/// Is `p` aligned to the host SIMD/cache-line boundary?
inline bool host_aligned(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & (kHostAlign - 1)) == 0;
}

}  // namespace decimate
