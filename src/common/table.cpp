#include "common/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace decimate {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DECIMATE_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  DECIMATE_CHECK(row.size() == header_.size(),
                 "row arity " << row.size() << " != header arity "
                              << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int prec) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(prec) << v;
  return oss.str();
}

std::string Table::to_string() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      oss << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
          << row[c];
    }
    oss << " |\n";
  };
  emit(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    oss << (c == 0 ? "|" : "|") << std::string(width[c] + 2, '-');
  }
  oss << "|\n";
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

}  // namespace decimate
