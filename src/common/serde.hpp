#pragma once
// Versioned-record binary I/O, shared by the TileLatencyCache warm files
// and the plan-artifact registry (src/artifact).
//
// Every multi-byte field is written little-endian with an explicit width,
// so a file written on one host parses identically on any other — the
// registry's whole point is that a compile farm writes artifacts a
// serving fleet reads. Readers are bounds-checked: running off the end of
// a buffer (a truncated download, a torn file) throws decimate::Error
// with the reader's context string instead of reading garbage.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace decimate::serde {

/// Append-only little-endian byte sink. pos() is the next write offset;
/// patch_* rewrites a previously written fixed-width field (section
/// tables are written as placeholders and patched once sizes are known).
class Writer {
 public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) { le(v); }
  void u32(uint32_t v) { le(v); }
  void u64(uint64_t v) { le(v); }
  void i8(int8_t v) { u8(static_cast<uint8_t>(v)); }
  void i16(int16_t v) { u16(static_cast<uint16_t>(v)); }
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
  void f64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void bytes(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  /// u32 length prefix + raw bytes.
  void str(const std::string& s) {
    u32(static_cast<uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }

  /// u64 count prefix + raw element bytes (fixed-width element types
  /// only; use explicit per-field writes for structs).
  template <typename T, typename Alloc>
  void pod_vec(const std::vector<T, Alloc>& v) {
    static_assert(sizeof(T) == 1, "pod_vec is for byte element types; "
                                  "multi-byte fields need explicit widths");
    u64(v.size());
    if (!v.empty()) bytes(v.data(), v.size());
  }

  /// Zero-pad so pos() is a multiple of `a`.
  void align(size_t a) {
    while (buf_.size() % a != 0) buf_.push_back(0);
  }

  size_t pos() const { return buf_.size(); }

  void patch_u32(size_t at, uint32_t v) { patch(at, v); }
  void patch_u64(size_t at, uint64_t v) { patch(at, v); }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }

 private:
  template <typename T>
  void le(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  template <typename T>
  void patch(size_t at, T v) {
    DECIMATE_CHECK(at + sizeof(T) <= buf_.size(),
                   "serde patch outside buffer");
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_[at + i] = static_cast<uint8_t>(v >> (8 * i));
    }
  }

  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed byte span. `what`
/// names the source (a path, a section) in error messages.
class Reader {
 public:
  Reader(std::span<const uint8_t> data, std::string what)
      : data_(data), what_(std::move(what)) {}

  uint8_t u8() { return take(1)[0]; }
  uint16_t u16() { return le<uint16_t>(); }
  uint32_t u32() { return le<uint32_t>(); }
  uint64_t u64() { return le<uint64_t>(); }
  int8_t i8() { return static_cast<int8_t>(u8()); }
  int16_t i16() { return static_cast<int16_t>(u16()); }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64() {
    const uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() { return u8() != 0; }

  std::string str() {
    const uint32_t n = u32();
    const auto b = take(n);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  /// Borrow `n` raw bytes (no copy; valid while the backing span lives).
  std::span<const uint8_t> take(size_t n) {
    DECIMATE_CHECK(n <= remaining(),
                   what_ << ": truncated (need " << n << " bytes at offset "
                         << off_ << ", have " << remaining() << ")");
    const auto out = data_.subspan(off_, n);
    off_ += n;
    return out;
  }

  void skip_align(size_t a) {
    while (off_ % a != 0) {
      DECIMATE_CHECK(off_ < data_.size(), what_ << ": truncated padding");
      ++off_;
    }
  }

  size_t pos() const { return off_; }
  size_t remaining() const { return data_.size() - off_; }
  bool done() const { return off_ == data_.size(); }
  const std::string& what() const { return what_; }

 private:
  template <typename T>
  T le() {
    const auto b = take(sizeof(T));
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(b[i]) << (8 * i)));
    }
    return v;
  }

  std::span<const uint8_t> data_;
  size_t off_ = 0;
  std::string what_;
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over a byte span. Chainable:
/// pass a previous result as `seed` to extend it.
uint32_t crc32(std::span<const uint8_t> data, uint32_t seed = 0);

/// Read a whole file into `out`. Returns false when the file does not
/// exist (callers treat that as a cold start); throws on a read error.
bool read_file(const std::string& path, std::vector<uint8_t>& out);

/// Write-then-rename so a killed process never leaves a truncated file at
/// `path` — readers see either the old bytes or the complete new ones.
void write_file_atomic(const std::string& path,
                       std::span<const uint8_t> data);

}  // namespace decimate::serde
