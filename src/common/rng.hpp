#pragma once
// Deterministic pseudo-random number generation. All weight synthesis,
// pruning tie-breaking and test data use this generator so that every run
// of the benchmarks and tests is bit-reproducible.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace decimate {

/// xoshiro128** — small, fast, deterministic; good enough for synthetic
/// weights and test vectors (not for cryptography).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 seeding
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = static_cast<uint32_t>((z ^ (z >> 31)) & 0xFFFFFFFFull);
    }
  }

  uint32_t next_u32() {
    const uint32_t result = rotl(state_[1] * 5, 7) * 9;
    const uint32_t t = state_[1] << 9;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 11);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int32_t uniform_int(int32_t lo, int32_t hi) {
    const uint32_t span = static_cast<uint32_t>(hi - lo) + 1u;
    return lo + static_cast<int32_t>(next_u32() % span);
  }

  /// Uniform double in [0, 1).
  double uniform() { return next_u32() * (1.0 / 4294967296.0); }

  /// Approximate standard normal (sum of 12 uniforms, CLT).
  double normal() {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += uniform();
    return s - 6.0;
  }

  /// Random int8 in [-127, 127] (avoids -128 so dense/sparse kernels can
  /// negate weights without overflow in tests).
  int8_t int8() { return static_cast<int8_t>(uniform_int(-127, 127)); }

  /// Vector of random int8.
  std::vector<int8_t> int8_vec(size_t n) {
    std::vector<int8_t> v(n);
    for (auto& x : v) x = int8();
    return v;
  }

 private:
  static constexpr uint32_t rotl(uint32_t x, int k) {
    return (x << k) | (x >> (32 - k));
  }
  uint32_t state_[4]{};
};

}  // namespace decimate
