#include "common/check.hpp"

namespace decimate::detail {

void throw_error(const char* file, int line, const char* cond,
                 const std::string& msg) {
  std::ostringstream oss;
  oss << file << ":" << line << ": check failed: (" << cond << ") " << msg;
  throw Error(oss.str());
}

}  // namespace decimate::detail
