#pragma once
// Error handling helpers. The library throws decimate::Error on contract
// violations: configuration errors, unsupported layer geometries, and
// simulator faults (misaligned access, out-of-range address, ...).

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace decimate {

/// Exception type thrown by all DECIMATE_CHECK failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const char* cond,
                              const std::string& msg);
}  // namespace detail

/// Check a precondition; throws decimate::Error with context on failure.
/// The message argument is streamed, e.g.
///   DECIMATE_CHECK(c % 4 == 0, "channels must be a multiple of 4, got " << c);
#define DECIMATE_CHECK(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream oss_;                                          \
      oss_ << msg; /* NOLINT */                                         \
      ::decimate::detail::throw_error(__FILE__, __LINE__, #cond,        \
                                      oss_.str());                      \
    }                                                                   \
  } while (false)

/// Unconditional failure.
#define DECIMATE_FAIL(msg) DECIMATE_CHECK(false, msg)

/// Checked narrowing conversion (Core Guidelines ES.46 style).
template <typename To, typename From>
To narrow(From v) {
  const To out = static_cast<To>(v);
  if (static_cast<From>(out) != v) {
    throw Error("narrowing conversion lost information");
  }
  return out;
}

}  // namespace decimate
