#pragma once
// SharedBuf<T>: an array that either OWNS 64-byte-aligned storage (the
// normal compile-time path — backed by AlignedVec, with the vector-like
// mutation API the builders use) or is a read-only VIEW into memory kept
// alive by a shared keep-alive handle (the registry load path — the view
// aliases a file mapping, so N server processes that load the same plan
// artifact share one physical copy of the packed weights instead of each
// decoding a private heap copy).
//
// NmPacked and HostKernelDispatch store their payload arrays through
// this type. Reads (data() const, operator[] const, size, span
// conversion) work in both modes; mutation is owned-mode only and throws
// in a view — registry-loaded plans are immutable by construction.
//
// Copying is shallow: copies share the same storage (shared_ptr), which
// is exactly what plan copies want — payloads are written once at pack /
// build time and never mutated afterwards. Don't mutate a buffer after
// copying it; mutate, then copy.

#include <cstddef>
#include <memory>
#include <span>
#include <utility>

#include "common/aligned.hpp"
#include "common/check.hpp"

namespace decimate {

template <typename T>
class SharedBuf {
 public:
  SharedBuf() = default;

  /// A view over [p, p+n) whose lifetime is guaranteed by `keepalive`
  /// (e.g. the mmap of a plan artifact). The bytes must stay immutable.
  static SharedBuf view(const T* p, size_t n,
                        std::shared_ptr<const void> keepalive) {
    SharedBuf b;
    b.view_ptr_ = p;
    b.view_size_ = n;
    b.keepalive_ = std::move(keepalive);
    return b;
  }

  bool is_view() const { return view_ptr_ != nullptr; }

  // --- reads (both modes) ---------------------------------------------------
  const T* data() const { return is_view() ? view_ptr_ : owned_data(); }
  size_t size() const { return is_view() ? view_size_ : owned_size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](size_t i) const { return data()[i]; }
  operator std::span<const T>() const { return {data(), size()}; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }

  /// The keep-alive handle of a view (null for owned buffers) — plan
  /// loaders hand this out so sibling structures can alias the same
  /// mapping.
  const std::shared_ptr<const void>& keepalive() const { return keepalive_; }

  // --- mutation (owned mode only) -------------------------------------------
  T* data() {
    DECIMATE_CHECK(!is_view(), "SharedBuf: mutable access to a view");
    return own_ ? own_->data() : nullptr;
  }
  T& operator[](size_t i) { return data()[i]; }
  void assign(size_t n, T v) { mut().assign(n, v); }
  void resize(size_t n) { mut().resize(n); }
  void reserve(size_t n) { mut().reserve(n); }
  void push_back(T v) { mut().push_back(v); }
  size_t capacity() const { return own_ ? own_->capacity() : 0; }
  void clear() {
    view_ptr_ = nullptr;
    view_size_ = 0;
    keepalive_.reset();
    own_.reset();
  }

 private:
  AlignedVec<T>& mut() {
    DECIMATE_CHECK(!is_view(), "SharedBuf: cannot mutate a view");
    if (!own_) own_ = std::make_shared<AlignedVec<T>>();
    return *own_;
  }
  const T* owned_data() const { return own_ ? own_->data() : nullptr; }
  size_t owned_size() const { return own_ ? own_->size() : 0; }

  // owned storage (copies share it; see header comment)
  std::shared_ptr<AlignedVec<T>> own_;
  // view fields
  const T* view_ptr_ = nullptr;
  size_t view_size_ = 0;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace decimate
