#pragma once
// ASCII table printer used by the benchmark harnesses to render the
// paper's tables and figure data as aligned text.

#include <iosfwd>
#include <string>
#include <vector>

namespace decimate {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with `prec` decimals.
  static std::string num(double v, int prec = 2);

  /// Render with column alignment and a separator under the header.
  std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace decimate
