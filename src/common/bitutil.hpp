#pragma once
// Small bit-manipulation helpers shared by the ISA model, the N:M packers
// and the quantization code.

#include <cstdint>

#include "common/check.hpp"

namespace decimate {

/// Extract bits [hi:lo] (inclusive, hi >= lo) of a 32-bit word.
constexpr uint32_t bits(uint32_t word, unsigned hi, unsigned lo) {
  const unsigned width = hi - lo + 1;
  if (width >= 32) return word >> lo;
  return (word >> lo) & ((1u << width) - 1u);
}

/// Set bits [hi:lo] of `word` to `value` (low bits of value used).
constexpr uint32_t set_bits(uint32_t word, unsigned hi, unsigned lo,
                            uint32_t value) {
  const unsigned width = hi - lo + 1;
  const uint32_t mask =
      (width >= 32) ? ~0u : (((1u << width) - 1u) << lo);
  return (word & ~mask) | ((value << lo) & mask);
}

/// Sign-extend the low `width` bits of `v`.
constexpr int32_t sign_extend(uint32_t v, unsigned width) {
  const uint32_t m = 1u << (width - 1);
  v &= (width >= 32) ? ~0u : ((1u << width) - 1u);
  return static_cast<int32_t>((v ^ m) - m);
}

/// Ceiling division for non-negative integers.
constexpr int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// Round `a` up to the next multiple of `b`.
constexpr int64_t round_up(int64_t a, int64_t b) { return ceil_div(a, b) * b; }

/// True if `v` is a power of two (v > 0).
constexpr bool is_pow2(int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

/// ceil(log2(v)) for v >= 1.
constexpr unsigned ceil_log2(uint64_t v) {
  unsigned r = 0;
  uint64_t p = 1;
  while (p < v) {
    p <<= 1;
    ++r;
  }
  return r;
}

/// Pack 4 int8 lanes into a 32-bit SIMD word (lane 0 = least significant).
constexpr uint32_t pack_b4(int8_t b0, int8_t b1, int8_t b2, int8_t b3) {
  return (static_cast<uint32_t>(static_cast<uint8_t>(b0))) |
         (static_cast<uint32_t>(static_cast<uint8_t>(b1)) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(b2)) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(b3)) << 24);
}

/// Extract int8 lane `i` (0..3) from a 32-bit SIMD word.
constexpr int8_t lane_b(uint32_t word, unsigned i) {
  return static_cast<int8_t>((word >> (8 * i)) & 0xFF);
}

/// Signed 8-bit 4-lane dot product: sum_i a.b[i] * b.b[i].
constexpr int32_t sdot4(uint32_t a, uint32_t b) {
  int32_t acc = 0;
  for (unsigned i = 0; i < 4; ++i) {
    acc += static_cast<int32_t>(lane_b(a, i)) * static_cast<int32_t>(lane_b(b, i));
  }
  return acc;
}

/// Saturating clip of a 32-bit value to signed `bits_` (p.clip semantics).
constexpr int32_t clip_signed(int32_t v, unsigned bits_) {
  const int32_t hi = (1 << (bits_ - 1)) - 1;
  const int32_t lo = -(1 << (bits_ - 1));
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace decimate
