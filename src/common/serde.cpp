#include "common/serde.hpp"

#include <array>
#include <cstdio>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace decimate::serde {

namespace {

std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t crc32(std::span<const uint8_t> data, uint32_t seed) {
  static const std::array<uint32_t, 256> table = make_crc_table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const uint8_t b : data) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

bool read_file(const std::string& path, std::vector<uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  DECIMATE_CHECK(size >= 0, "cannot stat " << path);
  in.seekg(0, std::ios::beg);
  out.resize(static_cast<size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(out.data()), size);
  }
  DECIMATE_CHECK(in.good(), "failed reading " << path);
  return true;
}

void write_file_atomic(const std::string& path,
                       std::span<const uint8_t> data) {
  // pid-salted temp name: two processes publishing the same path never
  // tear each other's half-written temp file; rename() is atomic either way
#if defined(__unix__) || defined(__APPLE__)
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
#else
  const std::string tmp = path + ".tmp";
#endif
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    DECIMATE_CHECK(out.good(), "cannot open " << tmp << " for writing");
    if (!data.empty()) {
      out.write(reinterpret_cast<const char*>(data.data()),
                static_cast<std::streamsize>(data.size()));
    }
    out.flush();
    DECIMATE_CHECK(out.good(), "failed writing " << tmp);
  }
  DECIMATE_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "cannot move " << tmp << " into place at " << path);
}

}  // namespace decimate::serde
