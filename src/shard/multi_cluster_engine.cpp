#include "shard/multi_cluster_engine.hpp"

#include <algorithm>
#include <functional>
#include <iterator>

#include "compiler/fingerprint.hpp"
#include "exec/node_exec.hpp"
#include "nn/host_kernels.hpp"
#include "nn/ref_ops.hpp"
#include "trace/trace.hpp"

namespace decimate {

namespace {

// Stable span names for cluster shard work (trace names must outlive the
// export, so no per-call formatting).
const char* cluster_span_name(size_t c) {
  static const char* const names[] = {"cluster0", "cluster1", "cluster2",
                                      "cluster3", "cluster4", "cluster5",
                                      "cluster6", "cluster7"};
  return c < std::size(names) ? names[c] : "cluster8+";
}

}  // namespace

MultiClusterEngine::MultiClusterEngine(int num_clusters)
    : num_clusters_(num_clusters), planner_(num_clusters) {}

WorkerPool& MultiClusterEngine::pool() {
  // thunks come one per cluster and the caller participates, so
  // num_clusters - 1 parked threads saturate every sharded step without
  // re-spawning threads per step
  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkerPool>(std::max(0, num_clusters_ - 1));
  }
  return *pool_;
}

void MultiClusterEngine::run_parallel(
    std::vector<std::function<void()>>& thunks) {
  if (thunks.size() == 1) {
    thunks.front()();
    return;
  }
  pool().run(static_cast<int>(thunks.size()),
             [&](int i) { thunks[static_cast<size_t>(i)](); });
}

const ShardPlan& MultiClusterEngine::shard_plan(const CompiledPlan& plan) {
  DECIMATE_CHECK(plan.graph != nullptr, "plan has no graph");
  const uint64_t key = plan_fingerprint(*plan.graph, plan.options);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++plans_;
    // the schedule is content-addressed (tile indices), so it outlives
    // the particular CompiledPlan object and serves any identical one
    it = cache_.emplace(key, planner_.plan(plan)).first;
  }
  return it->second;
}

void MultiClusterEngine::exec_sharded_gemm(const StepShard& ss,
                                           const PlanStep& step,
                                           const Node& node,
                                           const Tensor8& in,
                                           const Tensor8* b_operand,
                                           Tensor8& out) {
  // operand selection mirrors ExecutionEngine::exec_gemm_node
  const Tensor8* weights = &node.weights;
  Tensor8 bmat;
  Tensor32 zero_bias;
  const Tensor32* bias = &node.bias;
  if (node.op == OpType::kMatmul) {
    DECIMATE_CHECK(b_operand != nullptr, "matmul needs a second operand");
    bmat = node.transpose_b ? transpose2d(*b_operand) : *b_operand;
    weights = &bmat;
    zero_bias = Tensor32({node.fc.k}, 0);
    bias = &zero_bias;
  }
  out = Tensor8(node.out_shape);

  if (ss.axis == ShardAxis::kFcC) {
    // input-feature split: int32 partial sums per cluster, reduced in
    // ascending cluster order on top of the bias, then one requant —
    // exactly the unsharded accumulation sequence, regrouped.
    std::vector<const ShardSlice*> active;
    for (const ShardSlice& slice : ss.slices) {
      if (slice.active()) active.push_back(&slice);
    }
    DECIMATE_CHECK(!active.empty(), "kFcC step with no active slices");
    std::vector<Tensor32> partials(active.size());
    std::vector<std::function<void()>> thunks;
    thunks.reserve(active.size());
    for (size_t j = 0; j < active.size(); ++j) {
      const size_t cluster = static_cast<size_t>(active[j] - ss.slices.data());
      thunks.emplace_back([&, j, cluster] {
        trace::TraceScope span(trace::Cat::kShard, cluster_span_name(cluster));
        span.cycles(ss.slices[cluster].cycles);
        span.sarg("node", node.name.c_str());
        partials[j] =
            use_host_kernels_
                ? host_fc_s32_partial(step.host, in, *weights,
                                      active[j]->c_range.first,
                                      active[j]->c_range.second)
                : fc_s32_partial(in, *weights, active[j]->c_range.first,
                                 active[j]->c_range.second);
      });
    }
    run_parallel(thunks);
    const int t = in.dim(0), k = weights->dim(0);
    for (int ti = 0; ti < t; ++ti) {
      for (int ki = 0; ki < k; ++ki) {
        int32_t acc = (*bias)[ki];
        for (const Tensor32& p : partials) acc += p.at({ti, ki});
        out.at({ti, ki}) = node.rq.apply(acc);
      }
    }
    return;
  }

  // output-tile shards: disjoint slices of `out`, written concurrently
  std::vector<std::function<void()>> thunks;
  for (size_t c = 0; c < ss.slices.size(); ++c) {
    const ShardSlice& slice = ss.slices[c];
    if (slice.tiles.empty()) continue;
    thunks.emplace_back([&, &slice = slice, c] {
      trace::TraceScope span(trace::Cat::kShard, cluster_span_name(c));
      span.cycles(slice.cycles);
      span.sarg("node", node.name.c_str());
      for (int idx : slice.tiles) {
        const ShardTile& m = step.tiles_meta[static_cast<size_t>(idx)];
        if (node.op == OpType::kConv2d) {
          if (use_host_kernels_) {
            host_conv2d_s8_into(step.host, in, node.weights, node.bias,
                                node.conv, node.rq, m.a_s, m.a_e, m.k_s,
                                m.k_e, out);
          } else {
            conv2d_s8_into(in, node.weights, node.bias, node.conv, node.rq,
                           m.a_s, m.a_e, m.k_s, m.k_e, out);
          }
        } else if (use_host_kernels_) {
          host_fc_s8_into(step.host, in, *weights, *bias, node.rq, m.a_s,
                          m.a_e, m.k_s, m.k_e, out);
        } else {
          fc_s8_into(in, *weights, *bias, node.rq, m.a_s, m.a_e, m.k_s,
                     m.k_e, out);
        }
      }
    });
  }
  DECIMATE_CHECK(!thunks.empty(), "gemm step with no assigned tiles");
  run_parallel(thunks);
}

std::vector<uint64_t> MultiClusterEngine::data_parallel_completions(
    const CompiledPlan& plan, int n, int clusters) {
  DECIMATE_CHECK(clusters >= 1, "need at least one cluster");
  std::vector<uint64_t> completions(static_cast<size_t>(std::max(n, 0)));
  // image i is the (i / clusters)-th image of cluster i % clusters; it
  // finishes when its cluster's pipelined prefix of that many images does
  for (int i = 0; i < n; ++i) {
    const int position = i / clusters + 1;
    completions[static_cast<size_t>(i)] =
        ExecutionEngine::modeled_batch_cycles(plan, position);
  }
  return completions;
}

std::vector<uint64_t> MultiClusterEngine::data_parallel_busy_cycles(
    const CompiledPlan& plan, int n, int clusters) {
  DECIMATE_CHECK(clusters >= 1, "need at least one cluster");
  std::vector<uint64_t> busy(static_cast<size_t>(clusters), 0);
  for (int c = 0; c < clusters && c < n; ++c) {
    const int images = (n - c - 1) / clusters + 1;  // round-robin share
    busy[static_cast<size_t>(c)] =
        ExecutionEngine::modeled_batch_cycles(plan, images);
  }
  return busy;
}

DataParallelRun MultiClusterEngine::run_data_parallel(
    const CompiledPlan& plan, std::span<const Tensor8> inputs) {
  DECIMATE_CHECK(plan.options.batch <= 1,
                 "data-parallel execution needs an unfused plan "
                 "(options.batch == 1), got batch "
                     << plan.options.batch);
  const int n = static_cast<int>(inputs.size());
  DataParallelRun out;
  out.runs.resize(static_cast<size_t>(n));
  out.cluster_of.resize(static_cast<size_t>(n));
  out.completion_cycles = data_parallel_completions(plan, n, num_clusters_);
  out.cluster_busy_cycles = data_parallel_busy_cycles(plan, n, num_clusters_);

  ExecutionEngine engine;  // run() is thread-safe with verify off
  engine.set_use_host_kernels(use_host_kernels_);
  // with several clusters the round-robin thunks already occupy the host,
  // and a nested intra-image split inside a pool task would run inline
  // anyway (WorkerPool nesting guard) — pin the engine serial to skip the
  // attempt. A single cluster keeps the plan's host_threads so intra-image
  // parallelism still applies when it is the only parallelism available.
  if (num_clusters_ > 1) engine.set_intra_image_threads(1);
  std::vector<std::function<void()>> thunks;
  for (int c = 0; c < num_clusters_ && c < n; ++c) {
    thunks.emplace_back([&, c] {
      for (int i = c; i < n; i += num_clusters_) {
        trace::TraceScope span(trace::Cat::kShard,
                               cluster_span_name(static_cast<size_t>(c)));
        span.arg("image", i);
        out.runs[static_cast<size_t>(i)] =
            engine.run(plan, inputs[static_cast<size_t>(i)]);
        out.cluster_of[static_cast<size_t>(i)] = c;
      }
    });
  }
  if (!thunks.empty()) run_parallel(thunks);
  for (const uint64_t c : out.completion_cycles) {
    out.makespan_cycles = std::max(out.makespan_cycles, c);
  }
  return out;
}

ShardedRun MultiClusterEngine::run(const CompiledPlan& plan,
                                   const Tensor8& input) {
  trace::TraceScope run_span(trace::Cat::kShard, "mce.run");
  run_span.arg("clusters", num_clusters_);
  const ShardPlan& sp = shard_plan(plan);  // validates batch == 1
  run_span.cycles(sp.critical_path_cycles);
  const Graph& graph = *plan.graph;
  DECIMATE_CHECK(static_cast<int>(plan.steps.size()) == graph.size() - 1,
                 "plan does not match graph");
  DECIMATE_CHECK(sp.steps.size() == plan.steps.size(),
                 "shard plan does not match plan");
  DECIMATE_CHECK(input.shape() == graph.node(0).out_shape,
                 "graph input shape mismatch");

  ShardedRun result;
  NetworkRun& net = result.run;
  net.weight_bytes = plan.weight_bytes;
  std::vector<Tensor8> outputs(static_cast<size_t>(graph.size()));
  std::vector<const Tensor8*> values(static_cast<size_t>(graph.size()),
                                     nullptr);
  values[0] = &input;

  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const PlanStep& step = plan.steps[i];
    const StepShard& ss = sp.steps[i];
    const Node& node = graph.node(step.node_id);
    Tensor8& out = outputs[static_cast<size_t>(step.node_id)];
    const Tensor8& in0 = *values[static_cast<size_t>(node.inputs.at(0))];
    switch (node.op) {
      case OpType::kConv2d:
      case OpType::kFc:
        exec_sharded_gemm(ss, step, node, in0, nullptr, out);
        break;
      case OpType::kMatmul:
        exec_sharded_gemm(ss, step, node, in0,
                          values[static_cast<size_t>(node.inputs.at(1))],
                          out);
        break;
      default: {
        // row-parallel and serial vector ops: numerics are element-wise
        // identical however the rows are split, so the reference runs
        // once; the shard plan still accounts their chunk distribution.
        std::vector<const Tensor8*> ins;
        ins.reserve(node.inputs.size());
        for (int in_id : node.inputs) {
          ins.push_back(values[static_cast<size_t>(in_id)]);
        }
        exec_vec_node_ref(node, ins, out);
        break;
      }
    }
    DECIMATE_CHECK(out.shape() == node.out_shape,
                   "node " << node.name << " produced unexpected shape");
    values[static_cast<size_t>(step.node_id)] = &out;
    // per-layer totals become the sharded critical paths, so layer rows
    // still sum to the end-to-end number
    LayerReport rep = step.report;
    rep.total_cycles = ss.critical_cycles;
    net.total_cycles += ss.critical_cycles;
    net.total_macs += rep.macs;
    net.layers.push_back(std::move(rep));
  }
  if (plan.steps.empty()) {
    net.output = input;
  } else {
    net.output = std::move(outputs.back());
  }

  result.num_clusters = num_clusters_;
  result.critical_path_cycles = sp.critical_path_cycles;
  result.single_cluster_cycles = plan.total_cycles;
  result.reduction_cycles = sp.reduction_cycles;
  result.cluster_busy_cycles = sp.cluster_busy_cycles;
  return result;
}

}  // namespace decimate
