#include "shard/shard_planner.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "compiler/tiling.hpp"
#include "exec/tile_runner.hpp"
#include "kernels/work_split.hpp"
#include "nn/prune.hpp"

namespace decimate {

ShardPlanner::ShardPlanner(int num_clusters) : num_clusters_(num_clusters) {
  DECIMATE_CHECK(num_clusters >= 1,
                 "num_clusters must be >= 1, got " << num_clusters);
}

Cluster& ShardPlanner::measure_cluster(const CompileOptions& opt) {
  const ClusterConfig cfg = cluster_config_from(opt);
  if (cluster_ == nullptr || !(cfg == cluster_cfg_)) {
    cluster_ = std::make_unique<Cluster>(cfg);
    cluster_cfg_ = cfg;
  }
  return *cluster_;
}

bool ShardPlanner::wants_fc_c_split(const PlanStep& step,
                                    const Node& node) const {
  // Only a single-tile FC: with >= 2 output tiles the grid already
  // spreads across clusters, and conv/matmul keep their tile sharding
  // (conv halos and runtime matmul operands make a reduction split far
  // more expensive than it is worth).
  if (step.op != OpType::kFc || num_clusters_ < 2) return false;
  if (step.shard_axis != ShardAxis::kGemmTiles) return false;
  if (step.tile_costs.size() != 1) return false;
  const int grain = step.choice.sparse() ? step.choice.m : 4;
  return node.fc.c >= 2 * grain && node.fc.c % grain == 0;
}

StepShard ShardPlanner::shard_tiles(const CompiledPlan& plan,
                                    const PlanStep& step) {
  DmaModel dma(measure_cluster(plan.options).mem());
  StepShard out;
  out.node_id = step.node_id;
  out.axis = step.shard_axis;
  out.serial_cycles = step.serial_cycles;
  out.slices.resize(static_cast<size_t>(num_clusters_));

  // Cost-balanced assignment: largest tile first onto the least-loaded
  // cluster. Tile costs are the TileLatencyCache-measured numbers the
  // compiled schedule already carries.
  const auto scalar = [&](int i) {
    const TileCost& tc = step.tile_costs[static_cast<size_t>(i)];
    return tc.compute + tc.dma_in + tc.dma_out;
  };
  std::vector<int> order(step.tile_costs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return scalar(a) > scalar(b); });
  std::vector<uint64_t> load(static_cast<size_t>(num_clusters_), 0);
  for (int idx : order) {
    const size_t c = static_cast<size_t>(std::distance(
        load.begin(), std::min_element(load.begin(), load.end())));
    out.slices[c].tiles.push_back(idx);
    load[c] += scalar(idx);
  }

  uint64_t longest = 0;
  for (ShardSlice& slice : out.slices) {
    if (slice.tiles.empty()) continue;
    std::sort(slice.tiles.begin(), slice.tiles.end());  // schedule order
    std::vector<TileCost> seq;
    seq.reserve(slice.tiles.size());
    // The compiled stream amortizes operand staging across the tiles of a
    // pass (loads_* marks the tile that pays). Re-bill per *operand*: for
    // every distinct input row-range / weight channel-range this cluster
    // touches without owning its paying tile, it must stage that operand
    // in its own L1 once.
    std::map<std::pair<int, int>, std::pair<bool, uint64_t>> in_ops, w_ops;
    for (int idx : slice.tiles) {
      const ShardTile& meta = step.tiles_meta[static_cast<size_t>(idx)];
      seq.push_back(step.tile_costs[static_cast<size_t>(idx)]);
      slice.out_bytes += meta.out_bytes;
      auto& in_op = in_ops[{meta.a_s, meta.a_e}];
      in_op.first = in_op.first || meta.loads_input;
      in_op.second = std::max(in_op.second, meta.in_fetch_cycles);
      auto& w_op = w_ops[{meta.k_s, meta.k_e}];
      w_op.first = w_op.first || meta.loads_weights;
      w_op.second = std::max(w_op.second, meta.w_fetch_cycles);
    }
    uint64_t rebill = 0;
    for (const auto& [range, op] : in_ops) {
      if (!op.first) rebill += op.second;
    }
    for (const auto& [range, op] : w_ops) {
      if (!op.first) rebill += op.second;
    }
    seq.front().dma_in += rebill;
    if (step.pipelined) {
      slice.cycles = pipeline_total(seq);
    } else {
      for (const TileCost& tc : seq) {
        slice.cycles += tc.compute + tc.dma_in + tc.dma_out;
      }
    }
    longest = std::max(longest, slice.cycles);
  }

  // Stitch: non-root partial outputs cross the interconnect into the
  // root cluster's L2 (the next step reads its input there). Transfers
  // share the interconnect, so they serialize.
  for (size_t c = 1; c < out.slices.size(); ++c) {
    if (out.slices[c].out_bytes != 0) {
      out.reduce_cycles +=
          dma.cost_1d(static_cast<uint64_t>(out.slices[c].out_bytes),
                      MemRegion::kL2, MemRegion::kL2);
    }
  }
  out.critical_cycles = longest + out.serial_cycles + out.reduce_cycles;
  return out;
}

StepShard ShardPlanner::shard_fc_c(const CompiledPlan& plan,
                                   const PlanStep& step, const Node& node) {
  Cluster& cluster = measure_cluster(plan.options);
  DmaModel dma(cluster.mem());
  const FcGeom& g = node.fc;
  const KernelChoice& choice = step.choice;
  const int grain = choice.sparse() ? choice.m : 4;
  const int parts = std::min(num_clusters_, g.c / grain);
  const auto ranges = balanced_ranges(g.c, parts, grain);
  // pair kernels need an even K in the cycle-model geometry
  int km = g.k;
  if (choice.kind != KernelKind::kFcSparseSw && km % 2 != 0) km += 1;
  const int64_t partial_bytes = static_cast<int64_t>(g.tokens) * g.k * 4;

  StepShard out;
  out.node_id = step.node_id;
  out.axis = ShardAxis::kFcC;
  out.serial_cycles = step.serial_cycles;
  out.slices.resize(static_cast<size_t>(num_clusters_));

  uint64_t longest = 0;
  for (size_t j = 0; j < ranges.size(); ++j) {
    const auto [c_s, c_e] = ranges[j];
    if (c_s >= c_e) continue;
    ShardSlice& slice = out.slices[j];
    slice.c_range = {c_s, c_e};
    FcGeom pg;
    pg.tokens = g.tokens;
    pg.c = c_e - c_s;
    pg.k = km;
    // a fresh tile shape: measured once through the plan's shared cache
    const uint64_t compute = plan.latencies->measure(
        fc_tile_key(choice.kind, choice.m, pg,
                    tile_cfg_salt(plan.options)),
        [&]() -> uint64_t {
          TileRunner runner(cluster);
          const Tensor8 input = Tensor8::random({pg.tokens, pg.c}, rng_);
          Tensor32 bias({pg.k}, 0);
          const Requant rq{1, 8};
          if (choice.sparse()) {
            Tensor8 w = Tensor8::random({pg.k, pg.c}, rng_);
            nm_prune(w.flat(), pg.k, pg.c, 1, choice.m);
            const NmPacked packed =
                nm_pack(w.flat(), pg.k, pg.c, choice.m,
                        TileRunner::layout_for(choice.kind));
            return runner.fc(choice.kind, pg, rq, input, nullptr, &packed,
                             bias)
                .result.wall_cycles;
          }
          Tensor8 w = Tensor8::random({pg.k, pg.c}, rng_);
          return runner.fc(choice.kind, pg, rq, input, &w, nullptr, bias)
              .result.wall_cycles;
        });
    // input column slice (strided), weight column slice, int32 partials
    const WeightRowBytes row = weight_row_bytes(choice, pg.c);
    uint64_t dma_in =
        dma.cost_2d(static_cast<uint64_t>(g.tokens),
                    static_cast<uint64_t>(pg.c), MemRegion::kL2,
                    MemRegion::kL1) +
        dma.cost_1d(static_cast<uint64_t>(g.k) * row.total() +
                        (j == 0 ? 4ull * g.k : 0),  // bias rides with root
                    step.weight_region, MemRegion::kL1);
    const uint64_t dma_out = dma.cost_1d(
        static_cast<uint64_t>(partial_bytes), MemRegion::kL1, MemRegion::kL2);
    slice.cycles = dma_in + compute + dma_out;
    slice.out_bytes = partial_bytes;
    longest = std::max(longest, slice.cycles);
  }

  // Reduction on the root: every non-root int32 partial crosses the
  // interconnect, then folds in with one add per element (ascending
  // cluster order — the order MultiClusterEngine reduces in).
  const uint64_t add_cycles =
      (static_cast<uint64_t>(g.tokens) * g.k +
       static_cast<uint64_t>(plan.options.num_cores) - 1) /
      static_cast<uint64_t>(plan.options.num_cores);
  for (size_t j = 1; j < out.slices.size(); ++j) {
    if (!out.slices[j].active()) continue;
    out.reduce_cycles += dma.cost_1d(static_cast<uint64_t>(partial_bytes),
                                     MemRegion::kL2, MemRegion::kL2) +
                         add_cycles;
  }
  out.critical_cycles = longest + out.serial_cycles + out.reduce_cycles;
  return out;
}

ShardPlan ShardPlanner::plan(const CompiledPlan& compiled) {
  DECIMATE_CHECK(compiled.graph != nullptr, "plan has no graph");
  DECIMATE_CHECK(
      compiled.options.batch <= 1,
      "cannot shard a batch-fused plan (CompileOptions::batch == "
          << compiled.options.batch
          << "): the fused tile stream interleaves images; recompile with "
             "batch == 1");
  ShardPlan sp;
  sp.num_clusters = num_clusters_;
  sp.cluster_busy_cycles.assign(static_cast<size_t>(num_clusters_), 0);
  sp.steps.reserve(compiled.steps.size());

  for (const PlanStep& step : compiled.steps) {
    const Node& node = compiled.graph->node(step.node_id);
    StepShard ss;
    if (step.shard_axis != ShardAxis::kNone && !step.tile_costs.empty()) {
      DECIMATE_CHECK(step.tiles_meta.size() == step.tile_costs.size(),
                     "plan step " << node.name << " has no tile metadata");
      ss = wants_fc_c_split(step, node) ? shard_fc_c(compiled, step, node)
                                        : shard_tiles(compiled, step);
    } else {
      // serial / marshalling / whole-tensor step: root cluster only
      ss.node_id = step.node_id;
      ss.slices.resize(static_cast<size_t>(num_clusters_));
      ss.critical_cycles = step.report.total_cycles;
      sp.cluster_busy_cycles[0] += step.report.total_cycles;
    }
    for (size_t c = 0; c < ss.slices.size(); ++c) {
      sp.cluster_busy_cycles[c] += ss.slices[c].cycles;
    }
    sp.cluster_busy_cycles[0] += ss.serial_cycles + ss.reduce_cycles;
    sp.critical_path_cycles += ss.critical_cycles;
    sp.reduction_cycles += ss.reduce_cycles;
    sp.steps.push_back(std::move(ss));
  }
  return sp;
}

}  // namespace decimate
