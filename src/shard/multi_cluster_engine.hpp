#pragma once
// MultiClusterEngine: executes a CompiledPlan sharded across N clusters.
//
// Numerics are bit-exact with the single-cluster ExecutionEngine by
// construction: output-tile shards write disjoint slices of the same
// tensor through the ranged reference ops, and reduction-split FC steps
// (ShardAxis::kFcC) fold int32 partial sums in ascending cluster order on
// top of the bias before the single requant — the same accumulation
// sequence the unsharded kernel performs, regrouped associatively.
//
// Cycles come from the ShardPlan: per-cluster tile streams are pipelined
// independently (the BatchRun tile-stream merge, applied per cluster) and
// synchronized at every stitch/reduce point, giving a critical path,
// per-cluster utilizations, and the interconnect/reduction overhead.
// Shard plans are cached under plan_fingerprint (graph content x options,
// so two shard-aware compiles of different num_clusters never collide).
//
// The engine also offers the dual deployment shape, run_data_parallel:
// instead of splitting one image's tiles across clusters (latency), it
// places whole images on clusters round-robin (throughput) — no stitch or
// reduction traffic, per-cluster pipelines modeled independently. The
// serve Dispatcher picks between the two per formed batch.

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "exec/engine.hpp"
#include "exec/plan.hpp"
#include "exec/worker_pool.hpp"
#include "shard/shard_planner.hpp"

namespace decimate {

/// Result of one sharded execution: the usual NetworkRun (per-layer
/// totals are the sharded critical paths, so they still sum to
/// total_cycles) plus the cluster-level aggregate.
struct ShardedRun {
  NetworkRun run;
  int num_clusters = 1;
  uint64_t critical_path_cycles = 0;   // modeled end-to-end latency
  uint64_t single_cluster_cycles = 0;  // same plan on one cluster
  uint64_t reduction_cycles = 0;       // stitch/reduce share of critical
  std::vector<uint64_t> cluster_busy_cycles;

  double speedup() const {
    return critical_path_cycles
               ? static_cast<double>(single_cluster_cycles) /
                     static_cast<double>(critical_path_cycles)
               : 0.0;
  }
  double utilization(int cluster) const {
    return critical_path_cycles
               ? static_cast<double>(
                     cluster_busy_cycles[static_cast<size_t>(cluster)]) /
                     static_cast<double>(critical_path_cycles)
               : 0.0;
  }
  double avg_utilization() const {
    double sum = 0.0;
    for (size_t c = 0; c < cluster_busy_cycles.size(); ++c) {
      sum += utilization(static_cast<int>(c));
    }
    return cluster_busy_cycles.empty()
               ? 0.0
               : sum / static_cast<double>(cluster_busy_cycles.size());
  }
};

/// Result of a data-parallel execution: whole images assigned round-robin
/// to clusters, each cluster running its images through the plan's
/// single-cluster pipeline independently (no stitch/reduce traffic — the
/// throughput-oriented counterpart of sharding one image across clusters).
struct DataParallelRun {
  std::vector<NetworkRun> runs;  // one per input, in input order
  std::vector<int> cluster_of;   // which cluster served input i
  /// Modeled finish of input i relative to batch start: the pipelined
  /// prefix total of its cluster's image stream.
  std::vector<uint64_t> completion_cycles;
  uint64_t makespan_cycles = 0;  // max over completion_cycles
  std::vector<uint64_t> cluster_busy_cycles;  // per-cluster stream totals
};

class MultiClusterEngine {
 public:
  explicit MultiClusterEngine(int num_clusters);

  /// Execute the plan's graph on `input` across the clusters. The plan
  /// must be unfused (options.batch == 1). Output is bit-exact with
  /// ExecutionEngine::run on the same plan.
  ShardedRun run(const CompiledPlan& plan, const Tensor8& input);

  /// Execute a batch of independent inputs data-parallel: input i runs
  /// whole on cluster i % num_clusters. The plan must be unfused. Outputs
  /// are bit-exact with per-image ExecutionEngine::run.
  DataParallelRun run_data_parallel(const CompiledPlan& plan,
                                    std::span<const Tensor8> inputs);

  /// The data-parallel completion model without executing: modeled finish
  /// of each of `n` round-robin-assigned images on `clusters` clusters
  /// (image i finishes when its cluster's pipelined prefix does). Used by
  /// the serve Dispatcher to score the mode before committing to it.
  static std::vector<uint64_t> data_parallel_completions(
      const CompiledPlan& plan, int n, int clusters);

  /// Per-cluster busy cycles of the same round-robin placement (each
  /// cluster's pipelined stream over its own images) — the consumed-
  /// cycles side of the model, shared by run_data_parallel's report and
  /// the Dispatcher's mode cost so the two can never diverge.
  static std::vector<uint64_t> data_parallel_busy_cycles(
      const CompiledPlan& plan, int n, int clusters);

  /// The (cached) shard schedule for a plan; builds it on first use.
  /// Plans are keyed by content (plan_fingerprint), so a re-created plan
  /// with identical graph/options reuses the schedule.
  const ShardPlan& shard_plan(const CompiledPlan& plan);

  int num_clusters() const { return num_clusters_; }

  /// Shard plans built so far (cache misses) — a repeated plan must
  /// shard-plan exactly once.
  int plans() const { return plans_; }

  /// Route shard-slice gemm numerics through the plan's
  /// HostKernelDispatch (ranged sparse/blocked host kernels; default) or
  /// the ranged reference ops. Bit-identical either way.
  void set_use_host_kernels(bool v) { use_host_kernels_ = v; }

 private:
  void exec_sharded_gemm(const StepShard& ss, const PlanStep& step,
                         const Node& node, const Tensor8& in,
                         const Tensor8* b_operand, Tensor8& out);
  /// Run the thunks concurrently ("one per cluster") on the persistent
  /// pool and rethrow the first failure. Inline when there is only one.
  void run_parallel(std::vector<std::function<void()>>& thunks);
  WorkerPool& pool();

  int num_clusters_ = 1;
  bool use_host_kernels_ = true;
  ShardPlanner planner_;
  std::unique_ptr<WorkerPool> pool_;  // lazily created, reused across runs
  std::map<uint64_t, ShardPlan> cache_;
  int plans_ = 0;
};

}  // namespace decimate
