#pragma once
// ShardPlanner: partitions a CompiledPlan's per-step tile schedules across
// `num_clusters` PULP-style clusters (the Snitch/SparCE scaling recipe —
// replicate small clusters instead of growing one).
//
// Sharding is a pure cost/placement transform: every tile keeps the cycle
// cost the TileLatencyCache measured for it at compile time, and the
// planner only decides which cluster runs which tiles. Three step shapes:
//
//  - kGemmTiles / kRows: whole tiles are assigned to clusters with a
//    cost-balanced greedy (largest tile first onto the least-loaded
//    cluster). Each cluster pipelines its own slice; outputs of non-root
//    clusters cross the interconnect back to the root L2 (stitch cost).
//  - kFcC: a single-tile FC cannot feed several clusters, so the planner
//    splits the *input-feature* (reduction) axis instead: each cluster
//    computes int32 partial sums over a contiguous C range (costed by a
//    fresh ISS measurement through the plan's own TileLatencyCache), and
//    the root reduces the partials in ascending cluster order before the
//    single requant — the exact accumulation regrouping MultiClusterEngine
//    implements, so results stay bit-exact.
//  - kNone: serial / marshalling / whole-tensor steps run on the root.
//
// With num_clusters == 1 the plan degenerates to the unsharded schedule:
// critical_path_cycles == CompiledPlan::total_cycles exactly.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "exec/compile.hpp"
#include "exec/plan.hpp"
#include "sim/cluster.hpp"
#include "sim/dma.hpp"

namespace decimate {

/// One cluster's share of one plan step.
struct ShardSlice {
  std::vector<int> tiles;  // indices into step.tile_costs / tiles_meta
  std::pair<int, int> c_range{0, 0};  // kFcC only: input-feature range
  uint64_t cycles = 0;     // pipelined slice total on this cluster
  int64_t out_bytes = 0;   // output bytes produced on this cluster
  bool active() const {
    return !tiles.empty() || c_range.second > c_range.first;
  }
};

/// One plan step, sharded across the clusters.
struct StepShard {
  int node_id = 0;
  ShardAxis axis = ShardAxis::kNone;
  std::vector<ShardSlice> slices;  // one per cluster (root = cluster 0)
  uint64_t serial_cycles = 0;   // root-only extras (marshalling, transpose)
  uint64_t reduce_cycles = 0;   // stitch DMA / partial-sum reduction
  uint64_t critical_cycles = 0; // max over slices + serial + reduce
  int active_clusters() const {
    int n = 0;
    for (const ShardSlice& s : slices) n += s.active() ? 1 : 0;
    return n;
  }
};

/// The sharded schedule of a whole plan: per-step assignments plus the
/// aggregate cycle view (per-cluster busy streams merged the same way
/// BatchRun::batch_cycles merges per-image tile streams — each cluster
/// pipelines its own slice, clusters sync at every stitch/reduce point).
/// Holds no pointer back to the CompiledPlan: slices address tiles by
/// index, so the schedule applies to any plan with the same content
/// (MultiClusterEngine caches it under plan_fingerprint).
struct ShardPlan {
  int num_clusters = 1;
  std::vector<StepShard> steps;  // parallel to plan->steps
  uint64_t critical_path_cycles = 0;  // Σ per-step critical paths
  uint64_t reduction_cycles = 0;      // Σ stitch/reduce overhead (within ^)
  std::vector<uint64_t> cluster_busy_cycles;  // Σ own-slice cycles

  double utilization(int cluster) const {
    return critical_path_cycles
               ? static_cast<double>(
                     cluster_busy_cycles[static_cast<size_t>(cluster)]) /
                     static_cast<double>(critical_path_cycles)
               : 0.0;
  }
};

class ShardPlanner {
 public:
  explicit ShardPlanner(int num_clusters);

  /// Shard `plan` across the planner's clusters. The plan must be
  /// unfused (options.batch == 1) — a batch-fused tile stream interleaves
  /// images, which sharding would tear apart. New kFcC tile shapes are
  /// measured through plan.latencies, so repeated plans re-simulate
  /// nothing.
  ShardPlan plan(const CompiledPlan& plan);

  int num_clusters() const { return num_clusters_; }

 private:
  StepShard shard_tiles(const CompiledPlan& plan, const PlanStep& step);
  StepShard shard_fc_c(const CompiledPlan& plan, const PlanStep& step,
                       const Node& node);
  bool wants_fc_c_split(const PlanStep& step, const Node& node) const;
  Cluster& measure_cluster(const CompileOptions& opt);

  int num_clusters_ = 1;
  std::unique_ptr<Cluster> cluster_;  // kFcC measurement cluster
  ClusterConfig cluster_cfg_;         // config cluster_ was built with
  Rng rng_{0x5AADBEEF};
};

}  // namespace decimate
