#pragma once
// Minimal dense tensor with row-major layout. Activations use HWC
// ({H, W, C}) as on PULP-NN; weights use {K, FY*FX*C} patch-major rows
// (fy, fx, c order), matching the kernels' im2col buffers.

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace decimate {

template <typename T>
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape, T fill = T{})
      : shape_(std::move(shape)), data_(checked_numel(shape_), fill) {}

  static Tensor random(std::vector<int> shape, Rng& rng, int lo = -127,
                       int hi = 127) {
    Tensor t(std::move(shape));
    for (auto& v : t.data_) v = static_cast<T>(rng.uniform_int(lo, hi));
    return t;
  }

  const std::vector<int>& shape() const { return shape_; }
  int dim(size_t i) const {
    DECIMATE_CHECK(i < shape_.size(), "dim index out of range");
    return shape_[i];
  }
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::span<T> flat() { return data_; }
  std::span<const T> flat() const { return data_; }
  std::span<const uint8_t> bytes() const {
    return {reinterpret_cast<const uint8_t*>(data_.data()),
            data_.size() * sizeof(T)};
  }

  T& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  const T& operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// Row-major multi-index access.
  T& at(std::initializer_list<int> idx) { return data_[flat_index(idx)]; }
  const T& at(std::initializer_list<int> idx) const {
    return data_[flat_index(idx)];
  }

  bool operator==(const Tensor& o) const {
    return shape_ == o.shape_ && data_ == o.data_;
  }

 private:
  static size_t checked_numel(const std::vector<int>& shape) {
    int64_t n = 1;
    for (int d : shape) {
      DECIMATE_CHECK(d > 0, "tensor dims must be positive, got " << d);
      n *= d;
    }
    DECIMATE_CHECK(n < (1ll << 31), "tensor too large: " << n);
    return static_cast<size_t>(n);
  }

  size_t flat_index(std::initializer_list<int> idx) const {
    DECIMATE_CHECK(idx.size() == shape_.size(),
                   "index rank " << idx.size() << " != tensor rank "
                                 << shape_.size());
    int64_t flat = 0;
    size_t d = 0;
    for (int i : idx) {
      DECIMATE_CHECK(i >= 0 && i < shape_[d], "index " << i << " out of range "
                                                       << shape_[d]);
      flat = flat * shape_[d] + i;
      ++d;
    }
    return static_cast<size_t>(flat);
  }

  std::vector<int> shape_;
  // 64-byte-aligned backing storage: a vector load at the base of any
  // tensor never straddles a cache line (see common/aligned.hpp)
  std::vector<T, AlignedAlloc<T>> data_;
};

static_assert(kHostAlign % 64 == 0,
              "tensor backing storage must be at least 64-byte aligned");

using Tensor8 = Tensor<int8_t>;
using Tensor32 = Tensor<int32_t>;
using TensorF = Tensor<float>;

}  // namespace decimate
