// AVX2 kernel instances: 16-lane int8 dot-product microkernels.
//
// Bit-exactness strategy — this TU never uses a saturating intermediate:
//  - dense dot products sign-extend both operands to int16 and use
//    pmaddwd (madd_epi16): each lane is a sum of two int16 x int16
//    products, which fits int32 exactly; lane accumulation wraps modulo
//    2^32 exactly like the scalar reference accumulator. (pmaddubsw
//    would be one instruction shorter but saturates its int16 sum — the
//    classic trap this file deliberately avoids.)
//  - sparse kernels are pixel-major: the input is transposed so each
//    non-zero weight is broadcast-multiplied across 16 *contiguous*
//    outputs (adjacent conv columns / adjacent FC tokens), turning the
//    gather loop into sequential 16-byte loads. int16 product magnitude
//    is bounded by 128*127, so mullo_epi16 is exact; widening to int32
//    before accumulation keeps the wrap-exact contract.
// Horizontal sums and lane splits only reorder int32 additions, which
// are associative and commutative modulo 2^32 — any order is the
// reference order. Scalar borders/remainders come from the private
// copies of the scalar kernels in this TU (see host_kernels_impl.hpp).
//
// This file is compiled with -mavx2 (CMake: DECIMATE_HAVE_AVX2_TU) and
// its entry points are only selected/forced after CPUID reports AVX2.

#include <immintrin.h>

#include "nn/host_kernels_impl.hpp"

namespace decimate {
namespace hostk {

namespace {

/// Widen 16 int8 lanes to int16.
inline __m256i widen16(const int8_t* p) {
  return _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

/// acc += a[0..15] dot b[0..15] (pairwise int16 madd, exact).
inline __m256i dot16(__m256i acc, __m256i av, const int8_t* b) {
  return _mm256_add_epi32(acc, _mm256_madd_epi16(av, widen16(b)));
}

/// Sum of the 8 int32 lanes (wrap-exact).
inline int32_t hsum8(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

/// 16 int32 accumulators (two registers) for 16 adjacent outputs, plus
/// the broadcast multiply-accumulate of one non-zero weight against 16
/// contiguous int8 inputs — the sparse pixel-major inner step.
struct Acc16 {
  __m256i lo, hi;

  explicit Acc16(int32_t init)
      : lo(_mm256_set1_epi32(init)), hi(_mm256_set1_epi32(init)) {}

  inline void mac(const int8_t* p, int8_t v) {
    const __m256i prod =
        _mm256_mullo_epi16(widen16(p), _mm256_set1_epi16(v));  // exact int16
    lo = _mm256_add_epi32(lo,
                          _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod)));
    hi = _mm256_add_epi32(
        hi, _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1)));
  }

  /// Requantize the first `n` lanes into strided int8 outputs
  /// out[i*stride] (n < 16 = partial remainder block: the junk in the
  /// unstored lanes never saturated anything, so dropping it is exact).
  inline void store(const Requant& rq, int8_t* out, int64_t stride,
                    int n = 16) const {
    alignas(32) int32_t tmp[16];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), lo);
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp + 8), hi);
    for (int i = 0; i < n; ++i) out[i * stride] = rq.apply(tmp[i]);
  }
};

}  // namespace

void conv_dense_avx2(const HostKernelDispatch&, const Tensor8& input,
                     const Tensor8& weights, const Tensor32& bias,
                     const ConvGeom& g, const Requant& rq, int oy_s, int oy_e,
                     int k_s, int k_e, Tensor8& out) {
  const int ox = g.ox(), kk = g.k, fsz = g.fsz();
  const int fxc = g.fx * g.c;
  const int vec = fxc & ~15;  // 16-lane-covered prefix of each filter row
  const int64_t in_row = static_cast<int64_t>(g.ix) * g.c;
  const auto [x_lo, x_hi] = interior_range(g.ix, g.fx, g.stride, g.pad, ox);
  const auto [y_lo, y_hi] =
      interior_range(g.iy, g.fy, g.stride, g.pad, g.oy());
  const int8_t* in0 = input.data();
  const int8_t* w0 = weights.data();

  // interior pixel: per filter row, one widened activation load feeds 4
  // output channels' madd chains; the fxc % 16 tail stays scalar
  const auto interior_pixel = [&](const int8_t* in_base, int8_t* orow) {
    int k = k_s;
    for (; k + 3 < k_e; k += 4) {
      const int8_t* wr0 = w0 + static_cast<int64_t>(k) * fsz;
      const int8_t* wr1 = wr0 + fsz;
      const int8_t* wr2 = wr1 + fsz;
      const int8_t* wr3 = wr2 + fsz;
      __m256i v0 = _mm256_setzero_si256(), v1 = v0, v2 = v0, v3 = v0;
      int32_t a0 = bias[k], a1 = bias[k + 1], a2 = bias[k + 2],
              a3 = bias[k + 3];
      int wi = 0;
      for (int fy = 0; fy < g.fy; ++fy) {
        const int8_t* in = in_base + fy * in_row;
        int i = 0;
        for (; i < vec; i += 16) {
          const __m256i av = widen16(in + i);
          v0 = dot16(v0, av, wr0 + wi + i);
          v1 = dot16(v1, av, wr1 + wi + i);
          v2 = dot16(v2, av, wr2 + wi + i);
          v3 = dot16(v3, av, wr3 + wi + i);
        }
        for (; i < fxc; ++i) {
          const int32_t v = in[i];
          a0 += v * wr0[wi + i];
          a1 += v * wr1[wi + i];
          a2 += v * wr2[wi + i];
          a3 += v * wr3[wi + i];
        }
        wi += fxc;
      }
      orow[k] = rq.apply(a0 + hsum8(v0));
      orow[k + 1] = rq.apply(a1 + hsum8(v1));
      orow[k + 2] = rq.apply(a2 + hsum8(v2));
      orow[k + 3] = rq.apply(a3 + hsum8(v3));
    }
    for (; k < k_e; ++k) {
      const int8_t* wr = w0 + static_cast<int64_t>(k) * fsz;
      __m256i v = _mm256_setzero_si256();
      int32_t a = bias[k];
      int wi = 0;
      for (int fy = 0; fy < g.fy; ++fy) {
        const int8_t* in = in_base + fy * in_row;
        int i = 0;
        for (; i < vec; i += 16) v = dot16(v, widen16(in + i), wr + wi + i);
        for (; i < fxc; ++i) {
          a += static_cast<int32_t>(in[i]) * static_cast<int32_t>(wr[wi + i]);
        }
        wi += fxc;
      }
      orow[k] = rq.apply(a + hsum8(v));
    }
  };

  for (int y = oy_s; y < oy_e; ++y) {
    int8_t* out_y = out.data() + static_cast<int64_t>(y) * ox * kk;
    const bool y_in = y >= y_lo && y < y_hi;
    if (!y_in) {
      for (int x = 0; x < ox; ++x) {
        dense_conv_pixel(in0, w0, bias, g, rq, y, x, k_s, k_e,
                         out_y + static_cast<int64_t>(x) * kk);
      }
      continue;
    }
    const int8_t* row_base = in0 + (y * g.stride - g.pad) * in_row;
    int x = 0;
    for (; x < x_lo; ++x) {
      dense_conv_pixel(in0, w0, bias, g, rq, y, x, k_s, k_e,
                       out_y + static_cast<int64_t>(x) * kk);
    }
    for (; x < x_hi; ++x) {
      interior_pixel(row_base + static_cast<int64_t>(x * g.stride - g.pad) * g.c,
                     out_y + static_cast<int64_t>(x) * kk);
    }
    for (; x < ox; ++x) {
      dense_conv_pixel(in0, w0, bias, g, rq, y, x, k_s, k_e,
                       out_y + static_cast<int64_t>(x) * kk);
    }
  }
}

void conv_nm_avx2(const HostKernelDispatch& d, const Tensor8& input,
                  const Tensor8& weights, const Tensor32& bias,
                  const ConvGeom& g, const Requant& rq, int oy_s, int oy_e,
                  int k_s, int k_e, Tensor8& out) {
  // pixel-major needs unit stride (adjacent outputs = adjacent inputs);
  // other geometries run the scalar gather kernel of this TU
  if (g.stride != 1 || oy_s >= oy_e || k_s >= k_e) {
    sparse_conv_into(d, input, bias, g, rq, oy_s, oy_e, k_s, k_e, out);
    return;
  }
  const int ox = g.ox(), kk = g.k, taps = d.taps;
  const auto [x_lo, x_hi] = interior_range(g.ix, g.fx, g.stride, g.pad, ox);
  const auto [y_lo, y_hi] =
      interior_range(g.iy, g.fy, g.stride, g.pad, g.oy());
  const int8_t* in0 = input.data();
  (void)weights;  // sparse: the gather plan replaces the dense weights

  // Transpose the input HWC -> CHW once: per non-zero (channel, value),
  // 16 adjacent output columns then read 16 *contiguous* bytes of that
  // channel's plane. The transpose costs one pass over the input and
  // amortizes over k output channels of gather work.
  // +16 slack: a partial remainder block's 16-byte load from the last
  // channel's last row may read past the plane end; the slack lanes are
  // never stored
  const int64_t plane = static_cast<int64_t>(g.iy) * g.ix;
  AlignedVec<int8_t> chw(static_cast<size_t>(plane) * g.c + 16);
  for (int y = 0; y < g.iy; ++y) {
    for (int x = 0; x < g.ix; ++x) {
      const int8_t* px = in0 + (static_cast<int64_t>(y) * g.ix + x) * g.c;
      const int64_t at = static_cast<int64_t>(y) * g.ix + x;
      for (int ch = 0; ch < g.c; ++ch) chw[ch * plane + at] = px[ch];
    }
  }

  for (int y = oy_s; y < oy_e; ++y) {
    int8_t* out_y = out.data() + static_cast<int64_t>(y) * ox * kk;
    const bool y_in = y >= y_lo && y < y_hi;
    if (!y_in) {
      for (int x = 0; x < ox; ++x) {
        sparse_conv_pixel(d, in0, bias, g, rq, y, x, k_s, k_e,
                          out_y + static_cast<int64_t>(x) * kk);
      }
      continue;
    }
    int x = 0;
    for (; x < x_lo; ++x) {
      sparse_conv_pixel(d, in0, bias, g, rq, y, x, k_s, k_e,
                        out_y + static_cast<int64_t>(x) * kk);
    }
    // 16 adjacent interior columns share one decode of the non-zero
    // stream; every non-zero is one contiguous 16-byte load + broadcast
    // multiply into 16 int32 accumulators. The final partial block (>= 4
    // columns) computes all 16 lanes and stores only the valid ones —
    // narrow interiors (ResNet stages at 16x16 and 8x8) stay vectorized.
    while (x < x_hi) {
      const int lanes = std::min(16, x_hi - x);
      if (lanes < 4) break;  // tiny tail: scalar wins
      for (int k = k_s; k < k_e; ++k) {
        Acc16 acc(bias[k]);
        const int32_t* ts =
            d.tap_start.data() + static_cast<size_t>(k) * taps;
        for (int t = 0; t < taps; ++t) {
          const int64_t row_off =
              static_cast<int64_t>(y - g.pad + d.tap_fy[static_cast<size_t>(t)]) *
                  g.ix +
              (x - g.pad + d.tap_fx[static_cast<size_t>(t)]);
          const int e_end = ts[t + 1];
          for (int e = ts[t]; e < e_end; ++e) {
            acc.mac(chw.data() + d.ci[static_cast<size_t>(e)] * plane + row_off,
                    d.val[static_cast<size_t>(e)]);
          }
        }
        acc.store(rq, out_y + static_cast<int64_t>(x) * kk + k, kk, lanes);
      }
      x += lanes;
    }
    for (; x < ox; ++x) {
      sparse_conv_pixel(d, in0, bias, g, rq, y, x, k_s, k_e,
                        out_y + static_cast<int64_t>(x) * kk);
    }
  }
}

void fc_dense_avx2(const HostKernelDispatch&, const Tensor8& input,
                   const Tensor8& weights, const Tensor32& bias,
                   const Requant& rq, int t_s, int t_e, int k_s, int k_e,
                   Tensor8& out) {
  const int c = input.dim(1), kk = out.dim(1);
  const int vec = c & ~15;
  const int8_t* w0 = weights.data();

  // 2 tokens x 4 output channels: each widened weight load feeds two
  // madd chains, halving the weight-stream traffic large FC layers are
  // bound by
  int ti = t_s;
  for (; ti + 1 < t_e; ti += 2) {
    const int8_t* in0 = input.data() + static_cast<int64_t>(ti) * c;
    const int8_t* in1 = in0 + c;
    int8_t* orow = out.data() + static_cast<int64_t>(ti) * kk;
    int ki = k_s;
    for (; ki + 3 < k_e; ki += 4) {
      const int8_t* wr[4] = {w0 + static_cast<int64_t>(ki) * c,
                             w0 + static_cast<int64_t>(ki + 1) * c,
                             w0 + static_cast<int64_t>(ki + 2) * c,
                             w0 + static_cast<int64_t>(ki + 3) * c};
      __m256i va[2][4];
      for (auto& row : va) {
        for (auto& v : row) v = _mm256_setzero_si256();
      }
      int i = 0;
      for (; i < vec; i += 16) {
        const __m256i a0 = widen16(in0 + i);
        const __m256i a1 = widen16(in1 + i);
        for (int q = 0; q < 4; ++q) {
          const __m256i wv = widen16(wr[q] + i);
          va[0][q] = _mm256_add_epi32(va[0][q], _mm256_madd_epi16(a0, wv));
          va[1][q] = _mm256_add_epi32(va[1][q], _mm256_madd_epi16(a1, wv));
        }
      }
      for (int q = 0; q < 4; ++q) {
        int32_t s0 = bias[ki + q] + hsum8(va[0][q]);
        int32_t s1 = bias[ki + q] + hsum8(va[1][q]);
        for (int j = i; j < c; ++j) {
          const int32_t b = wr[q][j];
          s0 += static_cast<int32_t>(in0[j]) * b;
          s1 += static_cast<int32_t>(in1[j]) * b;
        }
        orow[ki + q] = rq.apply(s0);
        orow[kk + ki + q] = rq.apply(s1);
      }
    }
    for (; ki < k_e; ++ki) {
      const int8_t* w = w0 + static_cast<int64_t>(ki) * c;
      __m256i v0 = _mm256_setzero_si256(), v1 = v0;
      int i = 0;
      for (; i < vec; i += 16) {
        const __m256i wv = widen16(w + i);
        v0 = _mm256_add_epi32(v0, _mm256_madd_epi16(widen16(in0 + i), wv));
        v1 = _mm256_add_epi32(v1, _mm256_madd_epi16(widen16(in1 + i), wv));
      }
      int32_t s0 = bias[ki] + hsum8(v0);
      int32_t s1 = bias[ki] + hsum8(v1);
      for (; i < c; ++i) {
        const int32_t b = w[i];
        s0 += static_cast<int32_t>(in0[i]) * b;
        s1 += static_cast<int32_t>(in1[i]) * b;
      }
      orow[ki] = rq.apply(s0);
      orow[kk + ki] = rq.apply(s1);
    }
  }
  for (; ti < t_e; ++ti) {
    const int8_t* in = input.data() + static_cast<int64_t>(ti) * c;
    int8_t* orow = out.data() + static_cast<int64_t>(ti) * kk;
    for (int ki = k_s; ki < k_e; ++ki) {
      const int8_t* w = w0 + static_cast<int64_t>(ki) * c;
      __m256i v = _mm256_setzero_si256();
      int i = 0;
      for (; i < vec; i += 16) v = dot16(v, widen16(in + i), w + i);
      int32_t s = bias[ki] + hsum8(v);
      for (; i < c; ++i) {
        s += static_cast<int32_t>(in[i]) * static_cast<int32_t>(w[i]);
      }
      orow[ki] = rq.apply(s);
    }
  }
}

void fc_nm_avx2(const HostKernelDispatch& d, const Tensor8& input,
                const Tensor8& weights, const Tensor32& bias,
                const Requant& rq, int t_s, int t_e, int k_s, int k_e,
                Tensor8& out) {
  const int c = input.dim(1), kk = out.dim(1);
  (void)weights;  // sparse: the gather plan replaces the dense weights

  // Token-major: transpose 16 tokens x c into [c][16] so each non-zero
  // (column, value) is one contiguous 16-byte load broadcast across 16
  // tokens — the FC analogue of the conv pixel-major trick.
  AlignedVec<int8_t> buf(static_cast<size_t>(c) * 16);
  int tb = t_s;
  while (tb < t_e) {
    const int lanes = std::min(16, t_e - tb);
    if (lanes < 4) break;  // tiny tail: scalar wins
    for (int p = 0; p < lanes; ++p) {
      const int8_t* in = input.data() + static_cast<int64_t>(tb + p) * c;
      for (int i = 0; i < c; ++i) buf[static_cast<size_t>(i) * 16 + p] = in[i];
    }
    int8_t* oblk = out.data() + static_cast<int64_t>(tb) * kk;
    for (int ki = k_s; ki < k_e; ++ki) {
      Acc16 acc(bias[ki]);
      const int e_end = d.row_start[static_cast<size_t>(ki) + 1];
      for (int e = d.row_start[static_cast<size_t>(ki)]; e < e_end; ++e) {
        acc.mac(buf.data() + static_cast<size_t>(d.col[static_cast<size_t>(e)]) * 16,
                d.val[static_cast<size_t>(e)]);
      }
      // partial block: lanes past the batch end hold the previous
      // block's stale tokens — computed but never stored (exact)
      acc.store(rq, oblk + ki, kk, lanes);
    }
    tb += lanes;
  }
  // remaining tokens (< 4): this TU's scalar gather kernel
  if (tb < t_e) sparse_fc_into(d, input, bias, rq, tb, t_e, k_s, k_e, out);
}

}  // namespace hostk
}  // namespace decimate
