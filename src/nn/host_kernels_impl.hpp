#pragma once
// Internal header for the host kernel translation units ONLY
// (host_kernels.cpp and the per-ISA host_kernels_<isa>.cpp). Do not
// include from public headers.
//
// The scalar kernels live here as `static inline` functions on purpose:
// each TU compiles its own private copy under its own ISA flags. The
// copies taken by host_kernels.cpp (built with the base flags) back the
// scalar registry instances, so the guaranteed fallback never contains
// AVX instructions; the copies inside an -mavx2 TU serve as that
// instance's border/tail paths and only execute when CPUID already
// proved the ISA. An ordinary `inline` (COMDAT) definition would let the
// linker pick the AVX-compiled copy for everyone — the classic
// one-definition-rule ISA footgun this layout avoids.
//
// Everything here preserves the bit-exactness contract: int8 x int8
// products accumulate into int32, which wraps modulo 2^32 and is fully
// associative/commutative — any split, block, or vector order produces
// the same final accumulator, and Requant::apply is a pure function of
// it.

#include <algorithm>
#include <utility>

#include "nn/host_kernel_instances.hpp"
#include "nn/host_kernels.hpp"

namespace decimate {
namespace hostk {

/// Output positions [lo, hi) of one spatial axis whose full filter
/// footprint lands inside the input (no padding reach): the branch-free
/// interior of the conv loops. Empty when the filter overhangs everywhere.
static inline std::pair<int, int> interior_range(int in_dim, int f,
                                                 int stride, int pad,
                                                 int out_dim) {
  int lo = (pad + stride - 1) / stride;           // first o: o*s - pad >= 0
  int hi = (in_dim - f + pad) / stride + 1;       // last o + 1 inside
  if (in_dim - f + pad < 0) hi = 0;
  lo = std::clamp(lo, 0, out_dim);
  hi = std::clamp(hi, lo, out_dim);
  return {lo, hi};
}

// ---------------------------------------------------------------------------
// Single-pixel scalar helpers: bounds-checked taps, so they are correct
// for border AND interior pixels. The SIMD instances use these for edge
// pixels and vector-width remainders.
// ---------------------------------------------------------------------------

static inline void dense_conv_pixel(const int8_t* in0, const int8_t* w0,
                                    const Tensor32& bias, const ConvGeom& g,
                                    const Requant& rq, int y, int x, int k_s,
                                    int k_e, int8_t* orow) {
  const int fsz = g.fsz();
  const int64_t in_row = static_cast<int64_t>(g.ix) * g.c;
  const int iy0 = y * g.stride - g.pad;
  const int ix0 = x * g.stride - g.pad;
  for (int k = k_s; k < k_e; ++k) {
    int32_t acc = bias[k];
    const int8_t* wrow = w0 + static_cast<int64_t>(k) * fsz;
    for (int fy = 0; fy < g.fy; ++fy) {
      const int iy = iy0 + fy;
      if (iy < 0 || iy >= g.iy) continue;  // whole filter row padded out
      const int fx_s = std::max(0, -ix0);
      const int fx_e = std::min(g.fx, g.ix - ix0);
      if (fx_s >= fx_e) continue;
      const int8_t* in =
          in0 + iy * in_row + static_cast<int64_t>(ix0 + fx_s) * g.c;
      const int8_t* w = wrow + (fy * g.fx + fx_s) * g.c;
      const int n = (fx_e - fx_s) * g.c;
      for (int i = 0; i < n; ++i) {
        acc += static_cast<int32_t>(in[i]) * static_cast<int32_t>(w[i]);
      }
    }
    orow[k] = rq.apply(acc);
  }
}

static inline void sparse_conv_pixel(const HostKernelDispatch& d,
                                     const int8_t* in0, const Tensor32& bias,
                                     const ConvGeom& g, const Requant& rq,
                                     int y, int x, int k_s, int k_e,
                                     int8_t* orow) {
  const int64_t in_row = static_cast<int64_t>(g.ix) * g.c;
  const int iy0 = y * g.stride - g.pad;
  const int ix0 = x * g.stride - g.pad;
  const int taps = d.taps;
  for (int k = k_s; k < k_e; ++k) {
    int32_t acc = bias[k];
    const int32_t* ts = d.tap_start.data() + static_cast<size_t>(k) * taps;
    for (int t = 0; t < taps; ++t) {
      const int iy = iy0 + d.tap_fy[static_cast<size_t>(t)];
      const int ix = ix0 + d.tap_fx[static_cast<size_t>(t)];
      if (iy < 0 || iy >= g.iy || ix < 0 || ix >= g.ix) continue;
      const int8_t* p = in0 + iy * in_row + static_cast<int64_t>(ix) * g.c;
      const int e_end = ts[t + 1];
      for (int e = ts[t]; e < e_end; ++e) {
        acc += static_cast<int32_t>(p[d.ci[static_cast<size_t>(e)]]) *
               static_cast<int32_t>(d.val[static_cast<size_t>(e)]);
      }
    }
    orow[k] = rq.apply(acc);
  }
}

// ---------------------------------------------------------------------------
// Blocked dense conv: interior pixels run a branch-free (fy, fx*c) loop
// with 4 output channels sharing every input load; border pixels clamp
// the fx range per filter row instead of testing every element.
// ---------------------------------------------------------------------------

static inline void dense_conv_into(const Tensor8& input,
                                   const Tensor8& weights,
                                   const Tensor32& bias, const ConvGeom& g,
                                   const Requant& rq, int oy_s, int oy_e,
                                   int k_s, int k_e, Tensor8& out) {
  const int ox = g.ox(), kk = g.k, fsz = g.fsz();
  const int fxc = g.fx * g.c;
  const int64_t in_row = static_cast<int64_t>(g.ix) * g.c;
  const auto [x_lo, x_hi] = interior_range(g.ix, g.fx, g.stride, g.pad, ox);
  const auto [y_lo, y_hi] =
      interior_range(g.iy, g.fy, g.stride, g.pad, g.oy());
  const int8_t* in0 = input.data();
  const int8_t* w0 = weights.data();

  const auto border_pixel = [&](int y, int x, int8_t* orow) {
    dense_conv_pixel(in0, w0, bias, g, rq, y, x, k_s, k_e, orow);
  };

  // single interior pixel: branch-free (fy, fx*c) walk, 4 output
  // channels sharing every input load
  const auto interior_pixel = [&](const int8_t* in_base, int8_t* orow) {
    int k = k_s;
    for (; k + 3 < k_e; k += 4) {
      int32_t a0 = bias[k], a1 = bias[k + 1], a2 = bias[k + 2],
              a3 = bias[k + 3];
      const int8_t* wr0 = w0 + static_cast<int64_t>(k) * fsz;
      const int8_t* wr1 = wr0 + fsz;
      const int8_t* wr2 = wr1 + fsz;
      const int8_t* wr3 = wr2 + fsz;
      int wi = 0;
      for (int fy = 0; fy < g.fy; ++fy) {
        const int8_t* in = in_base + fy * in_row;
        for (int i = 0; i < fxc; ++i) {
          const int32_t v = in[i];
          a0 += v * wr0[wi + i];
          a1 += v * wr1[wi + i];
          a2 += v * wr2[wi + i];
          a3 += v * wr3[wi + i];
        }
        wi += fxc;
      }
      orow[k] = rq.apply(a0);
      orow[k + 1] = rq.apply(a1);
      orow[k + 2] = rq.apply(a2);
      orow[k + 3] = rq.apply(a3);
    }
    for (; k < k_e; ++k) {
      int32_t acc = bias[k];
      const int8_t* wrow = w0 + static_cast<int64_t>(k) * fsz;
      int wi = 0;
      for (int fy = 0; fy < g.fy; ++fy) {
        const int8_t* in = in_base + fy * in_row;
        for (int i = 0; i < fxc; ++i) {
          acc += static_cast<int32_t>(in[i]) *
                 static_cast<int32_t>(wrow[wi + i]);
        }
        wi += fxc;
      }
      orow[k] = rq.apply(acc);
    }
  };

  // 4 adjacent interior pixels x 2 output channels: 8 accumulators share
  // every weight load, so the weight stream — the bandwidth bottleneck of
  // wide conv layers — is read once per 4 pixels instead of per pixel
  const int sc = g.stride * g.c;
  const auto interior_block4 = [&](const int8_t* in_base, int8_t* orow) {
    int k = k_s;
    for (; k + 1 < k_e; k += 2) {
      const int8_t* wr0 = w0 + static_cast<int64_t>(k) * fsz;
      const int8_t* wr1 = wr0 + fsz;
      int32_t acc[4][2];
      for (int p = 0; p < 4; ++p) {
        acc[p][0] = bias[k];
        acc[p][1] = bias[k + 1];
      }
      int wi = 0;
      for (int fy = 0; fy < g.fy; ++fy) {
        const int8_t* in = in_base + fy * in_row;
        for (int i = 0; i < fxc; ++i) {
          const int32_t b0 = wr0[wi + i], b1 = wr1[wi + i];
          const int32_t v0 = in[i], v1 = in[i + sc], v2 = in[i + 2 * sc],
                        v3 = in[i + 3 * sc];
          acc[0][0] += v0 * b0; acc[0][1] += v0 * b1;
          acc[1][0] += v1 * b0; acc[1][1] += v1 * b1;
          acc[2][0] += v2 * b0; acc[2][1] += v2 * b1;
          acc[3][0] += v3 * b0; acc[3][1] += v3 * b1;
        }
        wi += fxc;
      }
      for (int p = 0; p < 4; ++p) {
        orow[p * kk + k] = rq.apply(acc[p][0]);
        orow[p * kk + k + 1] = rq.apply(acc[p][1]);
      }
    }
    for (; k < k_e; ++k) {
      const int8_t* wrow = w0 + static_cast<int64_t>(k) * fsz;
      int32_t a0 = bias[k], a1 = bias[k], a2 = bias[k], a3 = bias[k];
      int wi = 0;
      for (int fy = 0; fy < g.fy; ++fy) {
        const int8_t* in = in_base + fy * in_row;
        for (int i = 0; i < fxc; ++i) {
          const int32_t b = wrow[wi + i];
          a0 += static_cast<int32_t>(in[i]) * b;
          a1 += static_cast<int32_t>(in[i + sc]) * b;
          a2 += static_cast<int32_t>(in[i + 2 * sc]) * b;
          a3 += static_cast<int32_t>(in[i + 3 * sc]) * b;
        }
        wi += fxc;
      }
      orow[k] = rq.apply(a0);
      orow[kk + k] = rq.apply(a1);
      orow[2 * kk + k] = rq.apply(a2);
      orow[3 * kk + k] = rq.apply(a3);
    }
  };

  for (int y = oy_s; y < oy_e; ++y) {
    int8_t* out_y = out.data() + static_cast<int64_t>(y) * ox * kk;
    const bool y_in = y >= y_lo && y < y_hi;
    const int iy0 = y * g.stride - g.pad;
    if (!y_in) {
      for (int x = 0; x < ox; ++x) {
        border_pixel(y, x, out_y + static_cast<int64_t>(x) * kk);
      }
      continue;
    }
    int x = 0;
    for (; x < x_lo; ++x) {
      border_pixel(y, x, out_y + static_cast<int64_t>(x) * kk);
    }
    const int8_t* row_base = in0 + iy0 * in_row;
    for (; x + 3 < x_hi; x += 4) {
      interior_block4(
          row_base + static_cast<int64_t>(x * g.stride - g.pad) * g.c,
          out_y + static_cast<int64_t>(x) * kk);
    }
    for (; x < x_hi; ++x) {
      interior_pixel(
          row_base + static_cast<int64_t>(x * g.stride - g.pad) * g.c,
          out_y + static_cast<int64_t>(x) * kk);
    }
    for (; x < ox; ++x) {
      border_pixel(y, x, out_y + static_cast<int64_t>(x) * kk);
    }
  }
}

// ---------------------------------------------------------------------------
// Sparse N:M conv: per output element, walk only the filter taps and the
// non-zeros each tap holds — cols/M MACs per output instead of cols.
// Skipped weights are exact zeros, so the int32 accumulator matches the
// dense reference bit for bit.
// ---------------------------------------------------------------------------

static inline void sparse_conv_into(const HostKernelDispatch& d,
                                    const Tensor8& input,
                                    const Tensor32& bias, const ConvGeom& g,
                                    const Requant& rq, int oy_s, int oy_e,
                                    int k_s, int k_e, Tensor8& out) {
  const int ox = g.ox(), kk = g.k;
  const int64_t in_row = static_cast<int64_t>(g.ix) * g.c;
  const auto [x_lo, x_hi] = interior_range(g.ix, g.fx, g.stride, g.pad, ox);
  const auto [y_lo, y_hi] =
      interior_range(g.iy, g.fy, g.stride, g.pad, g.oy());
  const int8_t* in0 = input.data();
  const int taps = d.taps;
  const int sc = g.stride * g.c;  // input step between adjacent out pixels

  // single interior pixel: walk only the taps' non-zeros
  const auto interior_pixel = [&](const int8_t* in_base, int8_t* orow) {
    for (int k = k_s; k < k_e; ++k) {
      int32_t acc = bias[k];
      const int32_t* ts = d.tap_start.data() + static_cast<size_t>(k) * taps;
      for (int t = 0; t < taps; ++t) {
        const int8_t* p = in_base + d.tap_off[static_cast<size_t>(t)];
        const int e_end = ts[t + 1];
        for (int e = ts[t]; e < e_end; ++e) {
          acc += static_cast<int32_t>(p[d.ci[static_cast<size_t>(e)]]) *
                 static_cast<int32_t>(d.val[static_cast<size_t>(e)]);
        }
      }
      orow[k] = rq.apply(acc);
    }
  };

  // 4 adjacent interior pixels share one (index, value) stream walk —
  // the per-non-zero decode cost amortizes 4x, which is what lets an
  // M=4 layer actually run near cols/4 cost
  const auto interior_block4 = [&](const int8_t* in_base, int8_t* orow) {
    for (int k = k_s; k < k_e; ++k) {
      const int32_t b = bias[k];
      int32_t a0 = b, a1 = b, a2 = b, a3 = b;
      const int32_t* ts = d.tap_start.data() + static_cast<size_t>(k) * taps;
      for (int t = 0; t < taps; ++t) {
        const int8_t* p = in_base + d.tap_off[static_cast<size_t>(t)];
        const int e_end = ts[t + 1];
        for (int e = ts[t]; e < e_end; ++e) {
          const int32_t v = d.val[static_cast<size_t>(e)];
          const int idx = d.ci[static_cast<size_t>(e)];
          a0 += static_cast<int32_t>(p[idx]) * v;
          a1 += static_cast<int32_t>(p[idx + sc]) * v;
          a2 += static_cast<int32_t>(p[idx + 2 * sc]) * v;
          a3 += static_cast<int32_t>(p[idx + 3 * sc]) * v;
        }
      }
      orow[k] = rq.apply(a0);
      orow[kk + k] = rq.apply(a1);
      orow[2 * kk + k] = rq.apply(a2);
      orow[3 * kk + k] = rq.apply(a3);
    }
  };

  const auto border_pixel = [&](int y, int x, int8_t* orow) {
    sparse_conv_pixel(d, in0, bias, g, rq, y, x, k_s, k_e, orow);
  };

  for (int y = oy_s; y < oy_e; ++y) {
    int8_t* out_y = out.data() + static_cast<int64_t>(y) * ox * kk;
    const bool y_in = y >= y_lo && y < y_hi;
    const int iy0 = y * g.stride - g.pad;
    if (!y_in) {
      for (int x = 0; x < ox; ++x) {
        border_pixel(y, x, out_y + static_cast<int64_t>(x) * kk);
      }
      continue;
    }
    int x = 0;
    for (; x < x_lo; ++x) {
      border_pixel(y, x, out_y + static_cast<int64_t>(x) * kk);
    }
    const int8_t* row_base = in0 + iy0 * in_row;
    for (; x + 3 < x_hi; x += 4) {
      interior_block4(
          row_base + static_cast<int64_t>(x * g.stride - g.pad) * g.c,
          out_y + static_cast<int64_t>(x) * kk);
    }
    for (; x < x_hi; ++x) {
      interior_pixel(
          row_base + static_cast<int64_t>(x * g.stride - g.pad) * g.c,
          out_y + static_cast<int64_t>(x) * kk);
    }
    for (; x < ox; ++x) {
      border_pixel(y, x, out_y + static_cast<int64_t>(x) * kk);
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked dense FC and sparse N:M FC (see the conv counterparts).
// ---------------------------------------------------------------------------

static inline void dense_fc_into(const Tensor8& input, const Tensor8& weights,
                                 const Tensor32& bias, const Requant& rq,
                                 int t_s, int t_e, int k_s, int k_e,
                                 Tensor8& out) {
  const int c = input.dim(1), kk = out.dim(1);
  const int8_t* w0 = weights.data();
  int ti = t_s;
  // 4 tokens x 4 output channels: 16 accumulators share every input and
  // weight load, cutting weight-stream traffic 4x — large dense FC
  // layers are weight-bandwidth-bound, so this is where the win is
  for (; ti + 3 < t_e; ti += 4) {
    const int8_t* in0 = input.data() + static_cast<int64_t>(ti) * c;
    const int8_t* in1 = in0 + c;
    const int8_t* in2 = in1 + c;
    const int8_t* in3 = in2 + c;
    int8_t* orow = out.data() + static_cast<int64_t>(ti) * kk;
    int ki = k_s;
    for (; ki + 3 < k_e; ki += 4) {
      const int8_t* wr0 = w0 + static_cast<int64_t>(ki) * c;
      const int8_t* wr1 = wr0 + c;
      const int8_t* wr2 = wr1 + c;
      const int8_t* wr3 = wr2 + c;
      int32_t acc[4][4];
      for (int p = 0; p < 4; ++p) {
        for (int q = 0; q < 4; ++q) acc[p][q] = bias[ki + q];
      }
      for (int i = 0; i < c; ++i) {
        const int32_t b0 = wr0[i], b1 = wr1[i], b2 = wr2[i], b3 = wr3[i];
        const int32_t v0 = in0[i], v1 = in1[i], v2 = in2[i], v3 = in3[i];
        acc[0][0] += v0 * b0; acc[0][1] += v0 * b1;
        acc[0][2] += v0 * b2; acc[0][3] += v0 * b3;
        acc[1][0] += v1 * b0; acc[1][1] += v1 * b1;
        acc[1][2] += v1 * b2; acc[1][3] += v1 * b3;
        acc[2][0] += v2 * b0; acc[2][1] += v2 * b1;
        acc[2][2] += v2 * b2; acc[2][3] += v2 * b3;
        acc[3][0] += v3 * b0; acc[3][1] += v3 * b1;
        acc[3][2] += v3 * b2; acc[3][3] += v3 * b3;
      }
      for (int p = 0; p < 4; ++p) {
        for (int q = 0; q < 4; ++q) {
          orow[p * kk + ki + q] = rq.apply(acc[p][q]);
        }
      }
    }
    for (; ki < k_e; ++ki) {
      const int8_t* w = w0 + static_cast<int64_t>(ki) * c;
      int32_t a0 = bias[ki], a1 = bias[ki], a2 = bias[ki], a3 = bias[ki];
      for (int i = 0; i < c; ++i) {
        const int32_t b = w[i];
        a0 += static_cast<int32_t>(in0[i]) * b;
        a1 += static_cast<int32_t>(in1[i]) * b;
        a2 += static_cast<int32_t>(in2[i]) * b;
        a3 += static_cast<int32_t>(in3[i]) * b;
      }
      orow[ki] = rq.apply(a0);
      orow[kk + ki] = rq.apply(a1);
      orow[2 * kk + ki] = rq.apply(a2);
      orow[3 * kk + ki] = rq.apply(a3);
    }
  }
  for (; ti < t_e; ++ti) {
    const int8_t* in = input.data() + static_cast<int64_t>(ti) * c;
    int8_t* orow = out.data() + static_cast<int64_t>(ti) * kk;
    int ki = k_s;
    for (; ki + 3 < k_e; ki += 4) {
      const int8_t* wr0 = w0 + static_cast<int64_t>(ki) * c;
      const int8_t* wr1 = wr0 + c;
      const int8_t* wr2 = wr1 + c;
      const int8_t* wr3 = wr2 + c;
      int32_t a0 = bias[ki], a1 = bias[ki + 1], a2 = bias[ki + 2],
              a3 = bias[ki + 3];
      for (int i = 0; i < c; ++i) {
        const int32_t v = in[i];
        a0 += v * wr0[i];
        a1 += v * wr1[i];
        a2 += v * wr2[i];
        a3 += v * wr3[i];
      }
      orow[ki] = rq.apply(a0);
      orow[ki + 1] = rq.apply(a1);
      orow[ki + 2] = rq.apply(a2);
      orow[ki + 3] = rq.apply(a3);
    }
    for (; ki < k_e; ++ki) {
      const int8_t* w = w0 + static_cast<int64_t>(ki) * c;
      int32_t acc = bias[ki];
      for (int i = 0; i < c; ++i) {
        acc += static_cast<int32_t>(in[i]) * static_cast<int32_t>(w[i]);
      }
      orow[ki] = rq.apply(acc);
    }
  }
}

static inline void sparse_fc_into(const HostKernelDispatch& d,
                                  const Tensor8& input, const Tensor32& bias,
                                  const Requant& rq, int t_s, int t_e,
                                  int k_s, int k_e, Tensor8& out) {
  const int c = input.dim(1), kk = out.dim(1);
  int ti = t_s;
  // 4 tokens share one walk of each row's (column, value) stream — the
  // per-non-zero decode cost amortizes 4x across the batch rows
  for (; ti + 3 < t_e; ti += 4) {
    const int8_t* in0 = input.data() + static_cast<int64_t>(ti) * c;
    const int8_t* in1 = in0 + c;
    const int8_t* in2 = in1 + c;
    const int8_t* in3 = in2 + c;
    int8_t* orow = out.data() + static_cast<int64_t>(ti) * kk;
    for (int ki = k_s; ki < k_e; ++ki) {
      const int32_t b = bias[ki];
      int32_t a0 = b, a1 = b, a2 = b, a3 = b;
      const int e_end = d.row_start[static_cast<size_t>(ki) + 1];
      for (int e = d.row_start[static_cast<size_t>(ki)]; e < e_end; ++e) {
        const int32_t v = d.val[static_cast<size_t>(e)];
        const int idx = d.col[static_cast<size_t>(e)];
        a0 += static_cast<int32_t>(in0[idx]) * v;
        a1 += static_cast<int32_t>(in1[idx]) * v;
        a2 += static_cast<int32_t>(in2[idx]) * v;
        a3 += static_cast<int32_t>(in3[idx]) * v;
      }
      orow[ki] = rq.apply(a0);
      orow[kk + ki] = rq.apply(a1);
      orow[2 * kk + ki] = rq.apply(a2);
      orow[3 * kk + ki] = rq.apply(a3);
    }
  }
  for (; ti < t_e; ++ti) {
    const int8_t* in = input.data() + static_cast<int64_t>(ti) * c;
    int8_t* orow = out.data() + static_cast<int64_t>(ti) * kk;
    for (int ki = k_s; ki < k_e; ++ki) {
      int32_t acc = bias[ki];
      const int e_end = d.row_start[static_cast<size_t>(ki) + 1];
      for (int e = d.row_start[static_cast<size_t>(ki)]; e < e_end; ++e) {
        acc += static_cast<int32_t>(in[d.col[static_cast<size_t>(e)]]) *
               static_cast<int32_t>(d.val[static_cast<size_t>(e)]);
      }
      orow[ki] = rq.apply(acc);
    }
  }
}

// ---------------------------------------------------------------------------
// Registry plumbing. The table itself lives in host_kernels.cpp; the
// SIMD instance entry points are extern functions defined in the per-ISA
// TUs, present only when CMake found the compiler flags.
// ---------------------------------------------------------------------------

using ConvRunFn = void (*)(const HostKernelDispatch& d, const Tensor8& input,
                           const Tensor8& weights, const Tensor32& bias,
                           const ConvGeom& g, const Requant& rq, int oy_s,
                           int oy_e, int k_s, int k_e, Tensor8& out);
using FcRunFn = void (*)(const HostKernelDispatch& d, const Tensor8& input,
                         const Tensor8& weights, const Tensor32& bias,
                         const Requant& rq, int t_s, int t_e, int k_s,
                         int k_e, Tensor8& out);

/// One registry entry. `fits_*` are pure performance heuristics — every
/// instance must be bit-exact on every geometry of its family, so forcing
/// a mismatched instance is legal (and fuzz-tested), just slower.
struct Instance {
  HostInstanceInfo info;
  bool (*fits_conv)(const ConvGeom& g, int m);          // conv families
  bool (*fits_fc)(int tokens, int c, int k, int m);     // fc families
  ConvRunFn conv_run;
  FcRunFn fc_run;
};

#if defined(DECIMATE_HAVE_AVX2_TU)
void conv_dense_avx2(const HostKernelDispatch& d, const Tensor8& input,
                     const Tensor8& weights, const Tensor32& bias,
                     const ConvGeom& g, const Requant& rq, int oy_s, int oy_e,
                     int k_s, int k_e, Tensor8& out);
void conv_nm_avx2(const HostKernelDispatch& d, const Tensor8& input,
                  const Tensor8& weights, const Tensor32& bias,
                  const ConvGeom& g, const Requant& rq, int oy_s, int oy_e,
                  int k_s, int k_e, Tensor8& out);
void fc_dense_avx2(const HostKernelDispatch& d, const Tensor8& input,
                   const Tensor8& weights, const Tensor32& bias,
                   const Requant& rq, int t_s, int t_e, int k_s, int k_e,
                   Tensor8& out);
void fc_nm_avx2(const HostKernelDispatch& d, const Tensor8& input,
                const Tensor8& weights, const Tensor32& bias,
                const Requant& rq, int t_s, int t_e, int k_s, int k_e,
                Tensor8& out);
#endif

#if defined(DECIMATE_HAVE_AVX512_TU)
void conv_dense_vnni(const HostKernelDispatch& d, const Tensor8& input,
                     const Tensor8& weights, const Tensor32& bias,
                     const ConvGeom& g, const Requant& rq, int oy_s, int oy_e,
                     int k_s, int k_e, Tensor8& out);
void fc_dense_vnni(const HostKernelDispatch& d, const Tensor8& input,
                   const Tensor8& weights, const Tensor32& bias,
                   const Requant& rq, int t_s, int t_e, int k_s, int k_e,
                   Tensor8& out);
#endif

}  // namespace hostk
}  // namespace decimate
