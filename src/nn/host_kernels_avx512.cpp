// AVX-512 VNNI kernel instances: vpdpbusd 64-lane u8 x s8 dot products.
//
// vpdpbusd multiplies unsigned bytes by signed bytes and accumulates the
// int32 lane sums WITHOUT saturation (unlike vpdpbusds), so it preserves
// the wrap-mod-2^32 accumulation contract. Our activations are signed,
// so each chunk is biased into u8 with a XOR 0x80 (a + 128 as u8) and
// corrected exactly:
//
//   sum((a+128) * w) = sum(a*w) + 128 * sum(w)   (mod 2^32)
//
// The correction term sum(w) is accumulated in the same loop with a
// second vpdpbusd against an all-ones u8 vector, and the combine is done
// in uint32 arithmetic, so the final accumulator equals the scalar
// reference bit for bit. Horizontal reduction (_mm512_reduce_add_epi32)
// only reorders int32 additions — order-free modulo 2^32.
//
// Compiled with -mavx512f -mavx512bw -mavx512vl -mavx512vnni (CMake:
// DECIMATE_HAVE_AVX512_TU); selected/forced only after CPUID reports all
// four features.

#include <immintrin.h>

#include "nn/host_kernels_impl.hpp"

namespace decimate {
namespace hostk {

namespace {

/// One 64-byte dot-product step: data term into `acc`, weight-sum
/// correction term into `corr`.
inline void dot64(__m512i& acc, __m512i& corr, const int8_t* a,
                  const int8_t* w) {
  const __m512i av = _mm512_xor_si512(
      _mm512_loadu_si512(a), _mm512_set1_epi8(static_cast<char>(0x80)));
  const __m512i wv = _mm512_loadu_si512(w);
  acc = _mm512_dpbusd_epi32(acc, av, wv);
  corr = _mm512_dpbusd_epi32(corr, _mm512_set1_epi8(1), wv);
}

/// Exact combine: sum(a*w) = biased accumulator - 128 * sum(w), mod 2^32.
inline int32_t combine(__m512i acc, __m512i corr) {
  const auto a = static_cast<uint32_t>(_mm512_reduce_add_epi32(acc));
  const auto s = static_cast<uint32_t>(_mm512_reduce_add_epi32(corr));
  return static_cast<int32_t>(a - 128u * s);
}

}  // namespace

void conv_dense_vnni(const HostKernelDispatch&, const Tensor8& input,
                     const Tensor8& weights, const Tensor32& bias,
                     const ConvGeom& g, const Requant& rq, int oy_s, int oy_e,
                     int k_s, int k_e, Tensor8& out) {
  const int ox = g.ox(), kk = g.k, fsz = g.fsz();
  const int fxc = g.fx * g.c;
  const int vec = fxc & ~63;  // 64-byte-covered prefix of each filter row
  const int64_t in_row = static_cast<int64_t>(g.ix) * g.c;
  const auto [x_lo, x_hi] = interior_range(g.ix, g.fx, g.stride, g.pad, ox);
  const auto [y_lo, y_hi] =
      interior_range(g.iy, g.fy, g.stride, g.pad, g.oy());
  const int8_t* in0 = input.data();
  const int8_t* w0 = weights.data();

  const auto interior_pixel = [&](const int8_t* in_base, int8_t* orow) {
    int k = k_s;
    for (; k + 1 < k_e; k += 2) {
      const int8_t* wr0 = w0 + static_cast<int64_t>(k) * fsz;
      const int8_t* wr1 = wr0 + fsz;
      __m512i acc0 = _mm512_setzero_si512(), corr0 = acc0;
      __m512i acc1 = acc0, corr1 = acc0;
      int32_t s0 = bias[k], s1 = bias[k + 1];
      int wi = 0;
      for (int fy = 0; fy < g.fy; ++fy) {
        const int8_t* in = in_base + fy * in_row;
        int i = 0;
        for (; i < vec; i += 64) {
          dot64(acc0, corr0, in + i, wr0 + wi + i);
          dot64(acc1, corr1, in + i, wr1 + wi + i);
        }
        for (; i < fxc; ++i) {
          const int32_t v = in[i];
          s0 += v * wr0[wi + i];
          s1 += v * wr1[wi + i];
        }
        wi += fxc;
      }
      orow[k] = rq.apply(s0 + combine(acc0, corr0));
      orow[k + 1] = rq.apply(s1 + combine(acc1, corr1));
    }
    for (; k < k_e; ++k) {
      const int8_t* wr = w0 + static_cast<int64_t>(k) * fsz;
      __m512i acc = _mm512_setzero_si512(), corr = acc;
      int32_t s = bias[k];
      int wi = 0;
      for (int fy = 0; fy < g.fy; ++fy) {
        const int8_t* in = in_base + fy * in_row;
        int i = 0;
        for (; i < vec; i += 64) dot64(acc, corr, in + i, wr + wi + i);
        for (; i < fxc; ++i) {
          s += static_cast<int32_t>(in[i]) * static_cast<int32_t>(wr[wi + i]);
        }
        wi += fxc;
      }
      orow[k] = rq.apply(s + combine(acc, corr));
    }
  };

  for (int y = oy_s; y < oy_e; ++y) {
    int8_t* out_y = out.data() + static_cast<int64_t>(y) * ox * kk;
    const bool y_in = y >= y_lo && y < y_hi;
    if (!y_in) {
      for (int x = 0; x < ox; ++x) {
        dense_conv_pixel(in0, w0, bias, g, rq, y, x, k_s, k_e,
                         out_y + static_cast<int64_t>(x) * kk);
      }
      continue;
    }
    const int8_t* row_base = in0 + (y * g.stride - g.pad) * in_row;
    int x = 0;
    for (; x < x_lo; ++x) {
      dense_conv_pixel(in0, w0, bias, g, rq, y, x, k_s, k_e,
                       out_y + static_cast<int64_t>(x) * kk);
    }
    for (; x < x_hi; ++x) {
      interior_pixel(row_base + static_cast<int64_t>(x * g.stride - g.pad) * g.c,
                     out_y + static_cast<int64_t>(x) * kk);
    }
    for (; x < ox; ++x) {
      dense_conv_pixel(in0, w0, bias, g, rq, y, x, k_s, k_e,
                       out_y + static_cast<int64_t>(x) * kk);
    }
  }
}

void fc_dense_vnni(const HostKernelDispatch&, const Tensor8& input,
                   const Tensor8& weights, const Tensor32& bias,
                   const Requant& rq, int t_s, int t_e, int k_s, int k_e,
                   Tensor8& out) {
  const int c = input.dim(1), kk = out.dim(1);
  const int vec = c & ~63;
  const int8_t* w0 = weights.data();

  // 2 tokens x 2 output channels: each weight chunk (and its correction
  // dot) is loaded once for two tokens
  int ti = t_s;
  for (; ti + 1 < t_e; ti += 2) {
    const int8_t* in0 = input.data() + static_cast<int64_t>(ti) * c;
    const int8_t* in1 = in0 + c;
    int8_t* orow = out.data() + static_cast<int64_t>(ti) * kk;
    int ki = k_s;
    for (; ki + 1 < k_e; ki += 2) {
      const int8_t* wr0 = w0 + static_cast<int64_t>(ki) * c;
      const int8_t* wr1 = wr0 + c;
      const __m512i bias_u8 = _mm512_set1_epi8(static_cast<char>(0x80));
      const __m512i ones = _mm512_set1_epi8(1);
      __m512i a00 = _mm512_setzero_si512(), a01 = a00, a10 = a00, a11 = a00;
      __m512i c0 = a00, c1 = a00;
      int i = 0;
      for (; i < vec; i += 64) {
        const __m512i x0 =
            _mm512_xor_si512(_mm512_loadu_si512(in0 + i), bias_u8);
        const __m512i x1 =
            _mm512_xor_si512(_mm512_loadu_si512(in1 + i), bias_u8);
        const __m512i v0 = _mm512_loadu_si512(wr0 + i);
        const __m512i v1 = _mm512_loadu_si512(wr1 + i);
        a00 = _mm512_dpbusd_epi32(a00, x0, v0);
        a01 = _mm512_dpbusd_epi32(a01, x0, v1);
        a10 = _mm512_dpbusd_epi32(a10, x1, v0);
        a11 = _mm512_dpbusd_epi32(a11, x1, v1);
        c0 = _mm512_dpbusd_epi32(c0, ones, v0);
        c1 = _mm512_dpbusd_epi32(c1, ones, v1);
      }
      int32_t s00 = bias[ki] + combine(a00, c0);
      int32_t s01 = bias[ki + 1] + combine(a01, c1);
      int32_t s10 = bias[ki] + combine(a10, c0);
      int32_t s11 = bias[ki + 1] + combine(a11, c1);
      for (; i < c; ++i) {
        const int32_t b0 = wr0[i], b1 = wr1[i];
        const int32_t v0 = in0[i], v1 = in1[i];
        s00 += v0 * b0;
        s01 += v0 * b1;
        s10 += v1 * b0;
        s11 += v1 * b1;
      }
      orow[ki] = rq.apply(s00);
      orow[ki + 1] = rq.apply(s01);
      orow[kk + ki] = rq.apply(s10);
      orow[kk + ki + 1] = rq.apply(s11);
    }
    for (; ki < k_e; ++ki) {
      const int8_t* w = w0 + static_cast<int64_t>(ki) * c;
      __m512i acc0 = _mm512_setzero_si512(), corr0 = acc0;
      __m512i acc1 = acc0, corr1 = acc0;
      int i = 0;
      for (; i < vec; i += 64) {
        dot64(acc0, corr0, in0 + i, w + i);
        dot64(acc1, corr1, in1 + i, w + i);
      }
      int32_t s0 = bias[ki] + combine(acc0, corr0);
      int32_t s1 = bias[ki] + combine(acc1, corr1);
      for (; i < c; ++i) {
        const int32_t b = w[i];
        s0 += static_cast<int32_t>(in0[i]) * b;
        s1 += static_cast<int32_t>(in1[i]) * b;
      }
      orow[ki] = rq.apply(s0);
      orow[kk + ki] = rq.apply(s1);
    }
  }
  for (; ti < t_e; ++ti) {
    const int8_t* in = input.data() + static_cast<int64_t>(ti) * c;
    int8_t* orow = out.data() + static_cast<int64_t>(ti) * kk;
    for (int ki = k_s; ki < k_e; ++ki) {
      const int8_t* w = w0 + static_cast<int64_t>(ki) * c;
      __m512i acc = _mm512_setzero_si512(), corr = acc;
      int i = 0;
      for (; i < vec; i += 64) dot64(acc, corr, in + i, w + i);
      int32_t s = bias[ki] + combine(acc, corr);
      for (; i < c; ++i) {
        s += static_cast<int32_t>(in[i]) * static_cast<int32_t>(w[i]);
      }
      orow[ki] = rq.apply(s);
    }
  }
}

}  // namespace hostk
}  // namespace decimate
