#pragma once
// N:M semi-structured pruning (magnitude criterion) and sparsity pattern
// recognition. The paper trains with the scheme of Zhou et al. (2021); for
// inference-side reproduction, magnitude pruning of synthetic weights
// produces the same *pattern class* (exactly N non-zeros per M-block),
// which is all the kernels and the compiler depend on.

#include <cstdint>
#include <span>

#include "nn/tensor.hpp"

namespace decimate {

/// In-place N:M magnitude pruning along the innermost dimension of a
/// [rows x cols] matrix. cols must be a multiple of m. Keeps the n
/// largest-magnitude entries per m-block; ties keep the lowest index
/// (deterministic).
void nm_prune(std::span<float> w, int rows, int cols, int n, int m);
void nm_prune(std::span<int8_t> w, int rows, int cols, int n, int m);

/// True iff every m-block has at most n non-zeros (pattern recognition,
/// used by the compiler's sparse pattern table, Sec. 4.4).
bool is_nm_sparse(std::span<const int8_t> w, int rows, int cols, int n, int m);

/// Fraction of zero entries.
double sparsity(std::span<const int8_t> w);

/// Detect the tightest supported 1:M pattern (M in {16, 8, 4, 2}) of a
/// weight matrix; returns 0 if none applies. Requires genuinely sparse
/// blocks: a dense matrix trivially fails (some block has >1 non-zero).
int detect_one_to_m(std::span<const int8_t> w, int rows, int cols);

}  // namespace decimate
