#pragma once
// Host kernel layer: sparsity-aware and blocked-dense CPU kernels that
// execute a plan at the speed its kernel choice implies, instead of the
// naive dense scalar loops in ref_ops.cpp.
//
// Two families, both bit-exact with the reference ops:
//
//  - N:M sparse conv/FC: iterate only the packed non-zeros decoded from
//    the plan's NmPacked (values + ceil(log2 M)-bit offsets), doing
//    cols/M MACs per output instead of cols — the paper's software-kernel
//    idea (Sec. 4.1/4.2) applied to the host execution path. Skipped
//    terms are exact zeros and int32 accumulation wraps modulo 2^32, so
//    the accumulator is bit-identical to the dense reference sum.
//  - Blocked dense conv/FC: interior/border split so the padded-conv
//    inner loop is branch-free, K-register blocking (4 output channels
//    share each input load), and contiguous pointer walks instead of
//    per-element Tensor::at. Per-output-channel accumulation order is
//    exactly the reference order, so outputs match bit for bit.
//
// A HostKernelDispatch is built once at compile time (per PlanStep) from
// the step's KernelChoice: sparse steps decode the packed weights into a
// gather plan (per-filter-tap CSR for conv, per-row column CSR for FC),
// dense steps carry just the implementation tag. A default-constructed
// dispatch falls back to the reference ops, which stay the bit-exactness
// oracle.

#include <cstdint>
#include <vector>

#include "common/aligned.hpp"
#include "common/shared_buf.hpp"
#include "nn/layer_geometry.hpp"
#include "nn/nm_format.hpp"
#include "nn/quant.hpp"
#include "nn/tensor.hpp"

namespace decimate {

enum class HostImpl : uint8_t {
  kRefFallback = 0,  // no dispatch built: scalar reference ops
  kDenseConv,        // blocked dense conv (interior/border split, K x 4)
  kDenseFc,          // K-blocked dense FC (also matmul: dynamic weights)
  kSparseConv,       // N:M gather conv (per-tap CSR over the non-zeros)
  kSparseFc,         // N:M gather FC (per-row column CSR)
};

const char* host_impl_name(HostImpl impl);

/// Compile-time product of lowering one gemm node to a host kernel. The
/// sparse gather plan is self-contained (decoded values + indices), so it
/// survives plan copies and never dangles into the NmPacked it was built
/// from.
struct HostKernelDispatch {
  HostImpl impl = HostImpl::kRefFallback;
  int m = 0;  // N:M block size for the sparse impls (0 = dense)
  // Registry index of the kernel instance selected for this node's
  // geometry (see nn/host_kernel_instances.hpp). The table is a static
  // singleton, so the index survives plan copies; -1 resolves to the
  // family's scalar instance at run time.
  int instance = -1;

  // Sparse conv: non-zeros grouped by (output channel, filter tap), in
  // ascending (tap, channel) order — the dense reference order with the
  // zeros removed. tap_start is a CSR of size rows*taps+1 into ci/val;
  // tap_off/tap_fy/tap_fx are per-tap input addressing (interior offset
  // and tap coordinates for the border path). The streamed arrays
  // (val/ci/col) are 64-byte aligned so vector loads never straddle a
  // cache line at the base. Arrays are SharedBufs: built/owned at compile
  // time, read-only views into the artifact's mmap'd weight section when
  // the plan was loaded from the registry (so server processes share one
  // physical copy of the gather plan instead of each decoding its own).
  int taps = 0;  // fy * fx
  SharedBuf<int32_t> tap_start;
  SharedBuf<uint16_t> ci;       // input channel within the tap
  SharedBuf<int32_t> tap_off;   // interior input offset: (fy*ix + fx)*c
  SharedBuf<int16_t> tap_fy, tap_fx;

  // Sparse FC: per output channel, the absolute input features of its
  // non-zeros. row_start is a CSR of size rows+1 into col/val.
  SharedBuf<int32_t> row_start;
  SharedBuf<int32_t> col;

  SharedBuf<int8_t> val;  // non-zero values, parallel to ci / col

  bool sparse() const {
    return impl == HostImpl::kSparseConv || impl == HostImpl::kSparseFc;
  }
  /// MACs one output element costs (nz per row for sparse, cols dense).
  int64_t nz_total() const { return static_cast<int64_t>(val.size()); }
};

/// Re-select the kernel instance index for a dispatch whose arrays were
/// rehydrated from a plan artifact: the index is a position in this
/// host's static instance registry (ISA-dependent), so it is never
/// serialized — loaders call these with the deserialized family/geometry
/// to bind the dispatch to the loading host. Same selection logic as
/// host_dispatch_for_conv / host_dispatch_for_fc.
int host_select_instance_for_conv(HostImpl family, const ConvGeom& g, int m);
int host_select_instance_for_fc(HostImpl family, int tokens, int c, int k,
                                int m);

/// Build the dispatch for a conv node: sparse gather plan when `packed`
/// is non-null (any NmLayout; logical offsets are decoded), blocked dense
/// otherwise. The kernel instance is selected here, keyed on the node's
/// geometry (channel divisibility, stride, interior width) and the host
/// ISA — see nn/host_kernel_instances.hpp.
HostKernelDispatch host_dispatch_for_conv(const ConvGeom& g,
                                          const NmPacked* packed);

/// Build the dispatch for an FC/matmul node over `c` input features and
/// `rows` output channels; matmul passes packed == nullptr (weights are
/// dynamic activations). `tokens` is the token count the plan will run
/// the node with — it keys instance selection (the token-parallel sparse
/// SIMD instance needs >= 16 tokens to pay for its transpose) but never
/// correctness: every instance accepts any token range at run time.
HostKernelDispatch host_dispatch_for_fc(int rows, int c,
                                        const NmPacked* packed,
                                        int tokens = 1);

/// Ranged convolution through the dispatch: bit-identical to
/// conv2d_s8_into over the same ranges (disjoint ranges stitch exactly).
/// Dense impls read `weights`; sparse impls read the dispatch's gather
/// plan and ignore `weights`.
void host_conv2d_s8_into(const HostKernelDispatch& d, const Tensor8& input,
                         const Tensor8& weights, const Tensor32& bias,
                         const ConvGeom& g, const Requant& rq, int oy_s,
                         int oy_e, int k_s, int k_e, Tensor8& out);

/// Full-range wrapper.
Tensor8 host_conv2d_s8(const HostKernelDispatch& d, const Tensor8& input,
                       const Tensor8& weights, const Tensor32& bias,
                       const ConvGeom& g, const Requant& rq);

/// Ranged FC through the dispatch (see conv2d counterpart).
void host_fc_s8_into(const HostKernelDispatch& d, const Tensor8& input,
                     const Tensor8& weights, const Tensor32& bias,
                     const Requant& rq, int t_s, int t_e, int k_s, int k_e,
                     Tensor8& out);

/// Full-range wrapper.
Tensor8 host_fc_s8(const HostKernelDispatch& d, const Tensor8& input,
                   const Tensor8& weights, const Tensor32& bias,
                   const Requant& rq);

/// Partial FC accumulation over input features [c_s, c_e), bit-identical
/// to fc_s32_partial: the sparse impl binary-searches each row's column
/// CSR for the range, the dense impl runs the blocked loops over it.
Tensor32 host_fc_s32_partial(const HostKernelDispatch& d,
                             const Tensor8& input, const Tensor8& weights,
                             int c_s, int c_e);

}  // namespace decimate
