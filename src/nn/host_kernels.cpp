#include "nn/host_kernels.hpp"

#include <algorithm>

#include "nn/ref_ops.hpp"

namespace decimate {

namespace {

/// Output positions [lo, hi) of one spatial axis whose full filter
/// footprint lands inside the input (no padding reach): the branch-free
/// interior of the conv loops. Empty when the filter overhangs everywhere.
std::pair<int, int> interior_range(int in_dim, int f, int stride, int pad,
                                   int out_dim) {
  int lo = (pad + stride - 1) / stride;           // first o: o*s - pad >= 0
  int hi = (in_dim - f + pad) / stride + 1;       // last o + 1 inside
  if (in_dim - f + pad < 0) hi = 0;
  lo = std::clamp(lo, 0, out_dim);
  hi = std::clamp(hi, lo, out_dim);
  return {lo, hi};
}

void check_conv_args(const Tensor8& input, const Tensor8& weights,
                     const Tensor32& bias, const ConvGeom& g, int oy_s,
                     int oy_e, int k_s, int k_e, const Tensor8& out,
                     bool dense) {
  g.validate();
  DECIMATE_CHECK(input.shape() == (std::vector<int>{g.iy, g.ix, g.c}),
                 "host conv input shape mismatch");
  if (dense) {
    DECIMATE_CHECK(weights.shape() == (std::vector<int>{g.k, g.fsz()}),
                   "host conv weight shape mismatch");
  }
  DECIMATE_CHECK(bias.shape() == (std::vector<int>{g.k}),
                 "host conv bias shape mismatch");
  DECIMATE_CHECK(out.shape() == (std::vector<int>{g.oy(), g.ox(), g.k}),
                 "host conv output shape mismatch");
  DECIMATE_CHECK(0 <= oy_s && oy_s <= oy_e && oy_e <= g.oy() && 0 <= k_s &&
                     k_s <= k_e && k_e <= g.k,
                 "host conv range out of bounds");
}

// ---------------------------------------------------------------------------
// Blocked dense conv: interior pixels run a branch-free (fy, fx*c) loop
// with 4 output channels sharing every input load; border pixels clamp
// the fx range per filter row instead of testing every element.
// ---------------------------------------------------------------------------

void dense_conv_into(const Tensor8& input, const Tensor8& weights,
                     const Tensor32& bias, const ConvGeom& g,
                     const Requant& rq, int oy_s, int oy_e, int k_s, int k_e,
                     Tensor8& out) {
  const int ox = g.ox(), kk = g.k, fsz = g.fsz();
  const int fxc = g.fx * g.c;
  const int64_t in_row = static_cast<int64_t>(g.ix) * g.c;
  const auto [x_lo, x_hi] = interior_range(g.ix, g.fx, g.stride, g.pad, ox);
  const auto [y_lo, y_hi] =
      interior_range(g.iy, g.fy, g.stride, g.pad, g.oy());
  const int8_t* in0 = input.data();
  const int8_t* w0 = weights.data();

  const auto border_pixel = [&](int y, int x, int8_t* orow) {
    const int iy0 = y * g.stride - g.pad;
    const int ix0 = x * g.stride - g.pad;
    for (int k = k_s; k < k_e; ++k) {
      int32_t acc = bias[k];
      const int8_t* wrow = w0 + static_cast<int64_t>(k) * fsz;
      for (int fy = 0; fy < g.fy; ++fy) {
        const int iy = iy0 + fy;
        if (iy < 0 || iy >= g.iy) continue;  // whole filter row padded out
        const int fx_s = std::max(0, -ix0);
        const int fx_e = std::min(g.fx, g.ix - ix0);
        if (fx_s >= fx_e) continue;
        const int8_t* in =
            in0 + iy * in_row + static_cast<int64_t>(ix0 + fx_s) * g.c;
        const int8_t* w = wrow + (fy * g.fx + fx_s) * g.c;
        const int n = (fx_e - fx_s) * g.c;
        for (int i = 0; i < n; ++i) {
          acc += static_cast<int32_t>(in[i]) * static_cast<int32_t>(w[i]);
        }
      }
      orow[k] = rq.apply(acc);
    }
  };

  // single interior pixel: branch-free (fy, fx*c) walk, 4 output
  // channels sharing every input load
  const auto interior_pixel = [&](const int8_t* in_base, int8_t* orow) {
    int k = k_s;
    for (; k + 3 < k_e; k += 4) {
      int32_t a0 = bias[k], a1 = bias[k + 1], a2 = bias[k + 2],
              a3 = bias[k + 3];
      const int8_t* wr0 = w0 + static_cast<int64_t>(k) * fsz;
      const int8_t* wr1 = wr0 + fsz;
      const int8_t* wr2 = wr1 + fsz;
      const int8_t* wr3 = wr2 + fsz;
      int wi = 0;
      for (int fy = 0; fy < g.fy; ++fy) {
        const int8_t* in = in_base + fy * in_row;
        for (int i = 0; i < fxc; ++i) {
          const int32_t v = in[i];
          a0 += v * wr0[wi + i];
          a1 += v * wr1[wi + i];
          a2 += v * wr2[wi + i];
          a3 += v * wr3[wi + i];
        }
        wi += fxc;
      }
      orow[k] = rq.apply(a0);
      orow[k + 1] = rq.apply(a1);
      orow[k + 2] = rq.apply(a2);
      orow[k + 3] = rq.apply(a3);
    }
    for (; k < k_e; ++k) {
      int32_t acc = bias[k];
      const int8_t* wrow = w0 + static_cast<int64_t>(k) * fsz;
      int wi = 0;
      for (int fy = 0; fy < g.fy; ++fy) {
        const int8_t* in = in_base + fy * in_row;
        for (int i = 0; i < fxc; ++i) {
          acc += static_cast<int32_t>(in[i]) *
                 static_cast<int32_t>(wrow[wi + i]);
        }
        wi += fxc;
      }
      orow[k] = rq.apply(acc);
    }
  };

  // 4 adjacent interior pixels x 2 output channels: 8 accumulators share
  // every weight load, so the weight stream — the bandwidth bottleneck of
  // wide conv layers — is read once per 4 pixels instead of per pixel
  const int sc = g.stride * g.c;
  const auto interior_block4 = [&](const int8_t* in_base, int8_t* orow) {
    int k = k_s;
    for (; k + 1 < k_e; k += 2) {
      const int8_t* wr0 = w0 + static_cast<int64_t>(k) * fsz;
      const int8_t* wr1 = wr0 + fsz;
      int32_t acc[4][2];
      for (int p = 0; p < 4; ++p) {
        acc[p][0] = bias[k];
        acc[p][1] = bias[k + 1];
      }
      int wi = 0;
      for (int fy = 0; fy < g.fy; ++fy) {
        const int8_t* in = in_base + fy * in_row;
        for (int i = 0; i < fxc; ++i) {
          const int32_t b0 = wr0[wi + i], b1 = wr1[wi + i];
          const int32_t v0 = in[i], v1 = in[i + sc], v2 = in[i + 2 * sc],
                        v3 = in[i + 3 * sc];
          acc[0][0] += v0 * b0; acc[0][1] += v0 * b1;
          acc[1][0] += v1 * b0; acc[1][1] += v1 * b1;
          acc[2][0] += v2 * b0; acc[2][1] += v2 * b1;
          acc[3][0] += v3 * b0; acc[3][1] += v3 * b1;
        }
        wi += fxc;
      }
      for (int p = 0; p < 4; ++p) {
        orow[p * kk + k] = rq.apply(acc[p][0]);
        orow[p * kk + k + 1] = rq.apply(acc[p][1]);
      }
    }
    for (; k < k_e; ++k) {
      const int8_t* wrow = w0 + static_cast<int64_t>(k) * fsz;
      int32_t a0 = bias[k], a1 = bias[k], a2 = bias[k], a3 = bias[k];
      int wi = 0;
      for (int fy = 0; fy < g.fy; ++fy) {
        const int8_t* in = in_base + fy * in_row;
        for (int i = 0; i < fxc; ++i) {
          const int32_t b = wrow[wi + i];
          a0 += static_cast<int32_t>(in[i]) * b;
          a1 += static_cast<int32_t>(in[i + sc]) * b;
          a2 += static_cast<int32_t>(in[i + 2 * sc]) * b;
          a3 += static_cast<int32_t>(in[i + 3 * sc]) * b;
        }
        wi += fxc;
      }
      orow[k] = rq.apply(a0);
      orow[kk + k] = rq.apply(a1);
      orow[2 * kk + k] = rq.apply(a2);
      orow[3 * kk + k] = rq.apply(a3);
    }
  };

  for (int y = oy_s; y < oy_e; ++y) {
    int8_t* out_y = out.data() + static_cast<int64_t>(y) * ox * kk;
    const bool y_in = y >= y_lo && y < y_hi;
    const int iy0 = y * g.stride - g.pad;
    if (!y_in) {
      for (int x = 0; x < ox; ++x) {
        border_pixel(y, x, out_y + static_cast<int64_t>(x) * kk);
      }
      continue;
    }
    int x = 0;
    for (; x < x_lo; ++x) {
      border_pixel(y, x, out_y + static_cast<int64_t>(x) * kk);
    }
    const int8_t* row_base = in0 + iy0 * in_row;
    for (; x + 3 < x_hi; x += 4) {
      interior_block4(
          row_base + static_cast<int64_t>(x * g.stride - g.pad) * g.c,
          out_y + static_cast<int64_t>(x) * kk);
    }
    for (; x < x_hi; ++x) {
      interior_pixel(
          row_base + static_cast<int64_t>(x * g.stride - g.pad) * g.c,
          out_y + static_cast<int64_t>(x) * kk);
    }
    for (; x < ox; ++x) {
      border_pixel(y, x, out_y + static_cast<int64_t>(x) * kk);
    }
  }
}

// ---------------------------------------------------------------------------
// Sparse N:M conv: per output element, walk only the filter taps and the
// non-zeros each tap holds — cols/M gathers instead of cols MACs. Skipped
// weights are exact zeros, so the int32 accumulator matches the dense
// reference bit for bit.
// ---------------------------------------------------------------------------

void sparse_conv_into(const HostKernelDispatch& d, const Tensor8& input,
                      const Tensor32& bias, const ConvGeom& g,
                      const Requant& rq, int oy_s, int oy_e, int k_s, int k_e,
                      Tensor8& out) {
  const int ox = g.ox(), kk = g.k;
  const int64_t in_row = static_cast<int64_t>(g.ix) * g.c;
  const auto [x_lo, x_hi] = interior_range(g.ix, g.fx, g.stride, g.pad, ox);
  const auto [y_lo, y_hi] =
      interior_range(g.iy, g.fy, g.stride, g.pad, g.oy());
  const int8_t* in0 = input.data();
  const int taps = d.taps;
  const int sc = g.stride * g.c;  // input step between adjacent out pixels

  // single interior pixel: walk only the taps' non-zeros
  const auto interior_pixel = [&](const int8_t* in_base, int8_t* orow) {
    for (int k = k_s; k < k_e; ++k) {
      int32_t acc = bias[k];
      const int32_t* ts = d.tap_start.data() + static_cast<size_t>(k) * taps;
      for (int t = 0; t < taps; ++t) {
        const int8_t* p = in_base + d.tap_off[static_cast<size_t>(t)];
        const int e_end = ts[t + 1];
        for (int e = ts[t]; e < e_end; ++e) {
          acc += static_cast<int32_t>(p[d.ci[static_cast<size_t>(e)]]) *
                 static_cast<int32_t>(d.val[static_cast<size_t>(e)]);
        }
      }
      orow[k] = rq.apply(acc);
    }
  };

  // 4 adjacent interior pixels share one (index, value) stream walk —
  // the per-non-zero decode cost amortizes 4x, which is what lets an
  // M=4 layer actually run near cols/4 cost
  const auto interior_block4 = [&](const int8_t* in_base, int8_t* orow) {
    for (int k = k_s; k < k_e; ++k) {
      const int32_t b = bias[k];
      int32_t a0 = b, a1 = b, a2 = b, a3 = b;
      const int32_t* ts = d.tap_start.data() + static_cast<size_t>(k) * taps;
      for (int t = 0; t < taps; ++t) {
        const int8_t* p = in_base + d.tap_off[static_cast<size_t>(t)];
        const int e_end = ts[t + 1];
        for (int e = ts[t]; e < e_end; ++e) {
          const int32_t v = d.val[static_cast<size_t>(e)];
          const int idx = d.ci[static_cast<size_t>(e)];
          a0 += static_cast<int32_t>(p[idx]) * v;
          a1 += static_cast<int32_t>(p[idx + sc]) * v;
          a2 += static_cast<int32_t>(p[idx + 2 * sc]) * v;
          a3 += static_cast<int32_t>(p[idx + 3 * sc]) * v;
        }
      }
      orow[k] = rq.apply(a0);
      orow[kk + k] = rq.apply(a1);
      orow[2 * kk + k] = rq.apply(a2);
      orow[3 * kk + k] = rq.apply(a3);
    }
  };

  const auto border_pixel = [&](int iy0, int ix0, int8_t* orow) {
    for (int k = k_s; k < k_e; ++k) {
      int32_t acc = bias[k];
      const int32_t* ts = d.tap_start.data() + static_cast<size_t>(k) * taps;
      for (int t = 0; t < taps; ++t) {
        const int iy = iy0 + d.tap_fy[static_cast<size_t>(t)];
        const int ix = ix0 + d.tap_fx[static_cast<size_t>(t)];
        if (iy < 0 || iy >= g.iy || ix < 0 || ix >= g.ix) continue;
        const int8_t* p = in0 + iy * in_row + static_cast<int64_t>(ix) * g.c;
        const int e_end = ts[t + 1];
        for (int e = ts[t]; e < e_end; ++e) {
          acc += static_cast<int32_t>(p[d.ci[static_cast<size_t>(e)]]) *
                 static_cast<int32_t>(d.val[static_cast<size_t>(e)]);
        }
      }
      orow[k] = rq.apply(acc);
    }
  };

  for (int y = oy_s; y < oy_e; ++y) {
    int8_t* out_y = out.data() + static_cast<int64_t>(y) * ox * kk;
    const bool y_in = y >= y_lo && y < y_hi;
    const int iy0 = y * g.stride - g.pad;
    if (!y_in) {
      for (int x = 0; x < ox; ++x) {
        border_pixel(iy0, x * g.stride - g.pad,
                     out_y + static_cast<int64_t>(x) * kk);
      }
      continue;
    }
    int x = 0;
    for (; x < x_lo; ++x) {
      border_pixel(iy0, x * g.stride - g.pad,
                   out_y + static_cast<int64_t>(x) * kk);
    }
    const int8_t* row_base = in0 + iy0 * in_row;
    for (; x + 3 < x_hi; x += 4) {
      interior_block4(
          row_base + static_cast<int64_t>(x * g.stride - g.pad) * g.c,
          out_y + static_cast<int64_t>(x) * kk);
    }
    for (; x < x_hi; ++x) {
      interior_pixel(
          row_base + static_cast<int64_t>(x * g.stride - g.pad) * g.c,
          out_y + static_cast<int64_t>(x) * kk);
    }
    for (; x < ox; ++x) {
      border_pixel(iy0, x * g.stride - g.pad,
                   out_y + static_cast<int64_t>(x) * kk);
    }
  }
}

void check_fc_args(const Tensor8& input, const Tensor8& weights,
                   const Tensor32& bias, int t_s, int t_e, int k_s, int k_e,
                   const Tensor8& out, bool dense) {
  DECIMATE_CHECK(input.rank() == 2, "host fc expects 2D input");
  const int t = input.dim(0), c = input.dim(1), k = out.dim(1);
  if (dense) {
    DECIMATE_CHECK(weights.rank() == 2 && weights.dim(1) == c,
                   "host fc weight/input dim mismatch");
    DECIMATE_CHECK(weights.dim(0) == k, "host fc weight row mismatch");
  }
  DECIMATE_CHECK(bias.shape() == (std::vector<int>{k}),
                 "host fc bias mismatch");
  DECIMATE_CHECK(out.rank() == 2 && out.dim(0) == t,
                 "host fc output shape mismatch");
  DECIMATE_CHECK(0 <= t_s && t_s <= t_e && t_e <= t && 0 <= k_s &&
                     k_s <= k_e && k_e <= k,
                 "host fc range out of bounds");
}

void dense_fc_into(const Tensor8& input, const Tensor8& weights,
                   const Tensor32& bias, const Requant& rq, int t_s, int t_e,
                   int k_s, int k_e, Tensor8& out) {
  const int c = input.dim(1), kk = out.dim(1);
  const int8_t* w0 = weights.data();
  int ti = t_s;
  // 4 tokens x 4 output channels: 16 accumulators share every input and
  // weight load, cutting weight-stream traffic 4x — large dense FC
  // layers are weight-bandwidth-bound, so this is where the win is
  for (; ti + 3 < t_e; ti += 4) {
    const int8_t* in0 = input.data() + static_cast<int64_t>(ti) * c;
    const int8_t* in1 = in0 + c;
    const int8_t* in2 = in1 + c;
    const int8_t* in3 = in2 + c;
    int8_t* orow = out.data() + static_cast<int64_t>(ti) * kk;
    int ki = k_s;
    for (; ki + 3 < k_e; ki += 4) {
      const int8_t* wr0 = w0 + static_cast<int64_t>(ki) * c;
      const int8_t* wr1 = wr0 + c;
      const int8_t* wr2 = wr1 + c;
      const int8_t* wr3 = wr2 + c;
      int32_t acc[4][4];
      for (int p = 0; p < 4; ++p) {
        for (int q = 0; q < 4; ++q) acc[p][q] = bias[ki + q];
      }
      for (int i = 0; i < c; ++i) {
        const int32_t b0 = wr0[i], b1 = wr1[i], b2 = wr2[i], b3 = wr3[i];
        const int32_t v0 = in0[i], v1 = in1[i], v2 = in2[i], v3 = in3[i];
        acc[0][0] += v0 * b0; acc[0][1] += v0 * b1;
        acc[0][2] += v0 * b2; acc[0][3] += v0 * b3;
        acc[1][0] += v1 * b0; acc[1][1] += v1 * b1;
        acc[1][2] += v1 * b2; acc[1][3] += v1 * b3;
        acc[2][0] += v2 * b0; acc[2][1] += v2 * b1;
        acc[2][2] += v2 * b2; acc[2][3] += v2 * b3;
        acc[3][0] += v3 * b0; acc[3][1] += v3 * b1;
        acc[3][2] += v3 * b2; acc[3][3] += v3 * b3;
      }
      for (int p = 0; p < 4; ++p) {
        for (int q = 0; q < 4; ++q) {
          orow[p * kk + ki + q] = rq.apply(acc[p][q]);
        }
      }
    }
    for (; ki < k_e; ++ki) {
      const int8_t* w = w0 + static_cast<int64_t>(ki) * c;
      int32_t a0 = bias[ki], a1 = bias[ki], a2 = bias[ki], a3 = bias[ki];
      for (int i = 0; i < c; ++i) {
        const int32_t b = w[i];
        a0 += static_cast<int32_t>(in0[i]) * b;
        a1 += static_cast<int32_t>(in1[i]) * b;
        a2 += static_cast<int32_t>(in2[i]) * b;
        a3 += static_cast<int32_t>(in3[i]) * b;
      }
      orow[ki] = rq.apply(a0);
      orow[kk + ki] = rq.apply(a1);
      orow[2 * kk + ki] = rq.apply(a2);
      orow[3 * kk + ki] = rq.apply(a3);
    }
  }
  for (; ti < t_e; ++ti) {
    const int8_t* in = input.data() + static_cast<int64_t>(ti) * c;
    int8_t* orow = out.data() + static_cast<int64_t>(ti) * kk;
    int ki = k_s;
    for (; ki + 3 < k_e; ki += 4) {
      const int8_t* wr0 = w0 + static_cast<int64_t>(ki) * c;
      const int8_t* wr1 = wr0 + c;
      const int8_t* wr2 = wr1 + c;
      const int8_t* wr3 = wr2 + c;
      int32_t a0 = bias[ki], a1 = bias[ki + 1], a2 = bias[ki + 2],
              a3 = bias[ki + 3];
      for (int i = 0; i < c; ++i) {
        const int32_t v = in[i];
        a0 += v * wr0[i];
        a1 += v * wr1[i];
        a2 += v * wr2[i];
        a3 += v * wr3[i];
      }
      orow[ki] = rq.apply(a0);
      orow[ki + 1] = rq.apply(a1);
      orow[ki + 2] = rq.apply(a2);
      orow[ki + 3] = rq.apply(a3);
    }
    for (; ki < k_e; ++ki) {
      const int8_t* w = w0 + static_cast<int64_t>(ki) * c;
      int32_t acc = bias[ki];
      for (int i = 0; i < c; ++i) {
        acc += static_cast<int32_t>(in[i]) * static_cast<int32_t>(w[i]);
      }
      orow[ki] = rq.apply(acc);
    }
  }
}

void sparse_fc_into(const HostKernelDispatch& d, const Tensor8& input,
                    const Tensor32& bias, const Requant& rq, int t_s, int t_e,
                    int k_s, int k_e, Tensor8& out) {
  const int c = input.dim(1), kk = out.dim(1);
  int ti = t_s;
  // 4 tokens share one walk of each row's (column, value) stream — the
  // per-non-zero decode cost amortizes 4x across the batch rows
  for (; ti + 3 < t_e; ti += 4) {
    const int8_t* in0 = input.data() + static_cast<int64_t>(ti) * c;
    const int8_t* in1 = in0 + c;
    const int8_t* in2 = in1 + c;
    const int8_t* in3 = in2 + c;
    int8_t* orow = out.data() + static_cast<int64_t>(ti) * kk;
    for (int ki = k_s; ki < k_e; ++ki) {
      const int32_t b = bias[ki];
      int32_t a0 = b, a1 = b, a2 = b, a3 = b;
      const int e_end = d.row_start[static_cast<size_t>(ki) + 1];
      for (int e = d.row_start[static_cast<size_t>(ki)]; e < e_end; ++e) {
        const int32_t v = d.val[static_cast<size_t>(e)];
        const int idx = d.col[static_cast<size_t>(e)];
        a0 += static_cast<int32_t>(in0[idx]) * v;
        a1 += static_cast<int32_t>(in1[idx]) * v;
        a2 += static_cast<int32_t>(in2[idx]) * v;
        a3 += static_cast<int32_t>(in3[idx]) * v;
      }
      orow[ki] = rq.apply(a0);
      orow[kk + ki] = rq.apply(a1);
      orow[2 * kk + ki] = rq.apply(a2);
      orow[3 * kk + ki] = rq.apply(a3);
    }
  }
  for (; ti < t_e; ++ti) {
    const int8_t* in = input.data() + static_cast<int64_t>(ti) * c;
    int8_t* orow = out.data() + static_cast<int64_t>(ti) * kk;
    for (int ki = k_s; ki < k_e; ++ki) {
      int32_t acc = bias[ki];
      const int e_end = d.row_start[static_cast<size_t>(ki) + 1];
      for (int e = d.row_start[static_cast<size_t>(ki)]; e < e_end; ++e) {
        acc += static_cast<int32_t>(in[d.col[static_cast<size_t>(e)]]) *
               static_cast<int32_t>(d.val[static_cast<size_t>(e)]);
      }
      orow[ki] = rq.apply(acc);
    }
  }
}

}  // namespace

const char* host_impl_name(HostImpl impl) {
  switch (impl) {
    case HostImpl::kRefFallback: return "ref";
    case HostImpl::kDenseConv: return "dense-conv-blocked";
    case HostImpl::kDenseFc: return "dense-fc-blocked";
    case HostImpl::kSparseConv: return "sparse-conv-nm";
    case HostImpl::kSparseFc: return "sparse-fc-nm";
  }
  return "?";
}

HostKernelDispatch host_dispatch_for_conv(const ConvGeom& g,
                                          const NmPacked* packed) {
  HostKernelDispatch d;
  if (packed == nullptr) {
    d.impl = HostImpl::kDenseConv;
    return d;
  }
  DECIMATE_CHECK(packed->rows == g.k && packed->cols == g.fsz(),
                 "packed weights do not match conv geometry");
  DECIMATE_CHECK(g.c <= 65535, "conv channel count overflows gather index");
  d.impl = HostImpl::kSparseConv;
  d.m = packed->m;
  d.taps = g.fy * g.fx;
  d.tap_off.resize(static_cast<size_t>(d.taps));
  d.tap_fy.resize(static_cast<size_t>(d.taps));
  d.tap_fx.resize(static_cast<size_t>(d.taps));
  for (int t = 0; t < d.taps; ++t) {
    const int fy = t / g.fx, fx = t % g.fx;
    d.tap_fy[static_cast<size_t>(t)] = static_cast<int16_t>(fy);
    d.tap_fx[static_cast<size_t>(t)] = static_cast<int16_t>(fx);
    d.tap_off[static_cast<size_t>(t)] = (fy * g.ix + fx) * g.c;
  }
  d.tap_start.assign(static_cast<size_t>(g.k) * d.taps + 1, 0);
  d.ci.reserve(static_cast<size_t>(g.k) * packed->nz_per_row);
  d.val.reserve(d.ci.capacity());
  for (int r = 0; r < g.k; ++r) {
    int tap_cursor = 0;
    for (int j = 0; j < packed->nz_per_row; ++j) {
      const int8_t v =
          packed->values[static_cast<size_t>(r) * packed->values_row_bytes +
                         static_cast<size_t>(j)];
      if (v == 0) continue;  // zero weight contributes nothing — drop it
      const int dcol = j * packed->m + packed->offset_at(r, j);
      const int tap = dcol / g.c;
      // dcol ascends with j, so taps arrive in order; close skipped taps
      while (tap_cursor < tap) {
        d.tap_start[static_cast<size_t>(r) * d.taps + ++tap_cursor] =
            static_cast<int32_t>(d.val.size());
      }
      d.ci.push_back(static_cast<uint16_t>(dcol % g.c));
      d.val.push_back(v);
    }
    while (tap_cursor < d.taps) {
      d.tap_start[static_cast<size_t>(r) * d.taps + ++tap_cursor] =
          static_cast<int32_t>(d.val.size());
    }
  }
  return d;
}

HostKernelDispatch host_dispatch_for_fc(int rows, int c,
                                        const NmPacked* packed) {
  HostKernelDispatch d;
  if (packed == nullptr) {
    d.impl = HostImpl::kDenseFc;
    return d;
  }
  DECIMATE_CHECK(packed->rows == rows && packed->cols == c,
                 "packed weights do not match fc geometry");
  d.impl = HostImpl::kSparseFc;
  d.m = packed->m;
  d.row_start.assign(static_cast<size_t>(rows) + 1, 0);
  d.col.reserve(static_cast<size_t>(rows) * packed->nz_per_row);
  d.val.reserve(d.col.capacity());
  for (int r = 0; r < rows; ++r) {
    for (int j = 0; j < packed->nz_per_row; ++j) {
      const int8_t v =
          packed->values[static_cast<size_t>(r) * packed->values_row_bytes +
                         static_cast<size_t>(j)];
      if (v == 0) continue;
      d.col.push_back(j * packed->m + packed->offset_at(r, j));
      d.val.push_back(v);
    }
    d.row_start[static_cast<size_t>(r) + 1] =
        static_cast<int32_t>(d.val.size());
  }
  return d;
}

void host_conv2d_s8_into(const HostKernelDispatch& d, const Tensor8& input,
                         const Tensor8& weights, const Tensor32& bias,
                         const ConvGeom& g, const Requant& rq, int oy_s,
                         int oy_e, int k_s, int k_e, Tensor8& out) {
  switch (d.impl) {
    case HostImpl::kSparseConv:
      check_conv_args(input, weights, bias, g, oy_s, oy_e, k_s, k_e, out,
                      /*dense=*/false);
      sparse_conv_into(d, input, bias, g, rq, oy_s, oy_e, k_s, k_e, out);
      return;
    case HostImpl::kDenseConv:
      check_conv_args(input, weights, bias, g, oy_s, oy_e, k_s, k_e, out,
                      /*dense=*/true);
      dense_conv_into(input, weights, bias, g, rq, oy_s, oy_e, k_s, k_e, out);
      return;
    case HostImpl::kRefFallback:
      conv2d_s8_into(input, weights, bias, g, rq, oy_s, oy_e, k_s, k_e, out);
      return;
    default: DECIMATE_FAIL("dispatch is not a conv kernel");
  }
}

Tensor8 host_conv2d_s8(const HostKernelDispatch& d, const Tensor8& input,
                       const Tensor8& weights, const Tensor32& bias,
                       const ConvGeom& g, const Requant& rq) {
  Tensor8 out({g.oy(), g.ox(), g.k});
  host_conv2d_s8_into(d, input, weights, bias, g, rq, 0, g.oy(), 0, g.k, out);
  return out;
}

void host_fc_s8_into(const HostKernelDispatch& d, const Tensor8& input,
                     const Tensor8& weights, const Tensor32& bias,
                     const Requant& rq, int t_s, int t_e, int k_s, int k_e,
                     Tensor8& out) {
  switch (d.impl) {
    case HostImpl::kSparseFc:
      check_fc_args(input, weights, bias, t_s, t_e, k_s, k_e, out,
                    /*dense=*/false);
      sparse_fc_into(d, input, bias, rq, t_s, t_e, k_s, k_e, out);
      return;
    case HostImpl::kDenseFc:
      check_fc_args(input, weights, bias, t_s, t_e, k_s, k_e, out,
                    /*dense=*/true);
      dense_fc_into(input, weights, bias, rq, t_s, t_e, k_s, k_e, out);
      return;
    case HostImpl::kRefFallback:
      fc_s8_into(input, weights, bias, rq, t_s, t_e, k_s, k_e, out);
      return;
    default: DECIMATE_FAIL("dispatch is not an fc kernel");
  }
}

Tensor8 host_fc_s8(const HostKernelDispatch& d, const Tensor8& input,
                   const Tensor8& weights, const Tensor32& bias,
                   const Requant& rq) {
  DECIMATE_CHECK(input.rank() == 2, "host fc expects 2D input");
  const int k = d.impl == HostImpl::kSparseFc
                    ? static_cast<int>(d.row_start.size()) - 1
                    : weights.dim(0);
  Tensor8 out({input.dim(0), k});
  host_fc_s8_into(d, input, weights, bias, rq, 0, input.dim(0), 0, k, out);
  return out;
}

Tensor32 host_fc_s32_partial(const HostKernelDispatch& d,
                             const Tensor8& input, const Tensor8& weights,
                             int c_s, int c_e) {
  DECIMATE_CHECK(input.rank() == 2, "host fc expects 2D input");
  const int t = input.dim(0), c = input.dim(1);
  DECIMATE_CHECK(0 <= c_s && c_s <= c_e && c_e <= c,
                 "host fc feature range out of bounds");

  if (d.impl == HostImpl::kSparseFc) {
    const int k = static_cast<int>(d.row_start.size()) - 1;
    Tensor32 out({t, k}, 0);
    for (int ki = 0; ki < k; ++ki) {
      // the row's columns ascend — binary-search the feature window once
      const auto row_b = d.col.begin() + d.row_start[static_cast<size_t>(ki)];
      const auto row_e =
          d.col.begin() + d.row_start[static_cast<size_t>(ki) + 1];
      const int e_s =
          static_cast<int>(std::lower_bound(row_b, row_e, c_s) - d.col.begin());
      const int e_e =
          static_cast<int>(std::lower_bound(row_b, row_e, c_e) - d.col.begin());
      for (int ti = 0; ti < t; ++ti) {
        const int8_t* in = input.data() + static_cast<int64_t>(ti) * c;
        int32_t acc = 0;
        for (int e = e_s; e < e_e; ++e) {
          acc += static_cast<int32_t>(in[d.col[static_cast<size_t>(e)]]) *
                 static_cast<int32_t>(d.val[static_cast<size_t>(e)]);
        }
        out[static_cast<int64_t>(ti) * k + ki] = acc;
      }
    }
    return out;
  }

  if (d.impl == HostImpl::kDenseFc) {
    DECIMATE_CHECK(weights.rank() == 2 && weights.dim(1) == c,
                   "host fc weight/input dim mismatch");
    const int k = weights.dim(0);
    Tensor32 out({t, k}, 0);
    const int n = c_e - c_s;
    for (int ti = 0; ti < t; ++ti) {
      const int8_t* in = input.data() + static_cast<int64_t>(ti) * c + c_s;
      int32_t* orow = out.data() + static_cast<int64_t>(ti) * k;
      int ki = 0;
      for (; ki + 3 < k; ki += 4) {
        const int8_t* wr0 = weights.data() + static_cast<int64_t>(ki) * c + c_s;
        const int8_t* wr1 = wr0 + c;
        const int8_t* wr2 = wr1 + c;
        const int8_t* wr3 = wr2 + c;
        int32_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
        for (int i = 0; i < n; ++i) {
          const int32_t v = in[i];
          a0 += v * wr0[i];
          a1 += v * wr1[i];
          a2 += v * wr2[i];
          a3 += v * wr3[i];
        }
        orow[ki] = a0;
        orow[ki + 1] = a1;
        orow[ki + 2] = a2;
        orow[ki + 3] = a3;
      }
      for (; ki < k; ++ki) {
        const int8_t* w = weights.data() + static_cast<int64_t>(ki) * c + c_s;
        int32_t acc = 0;
        for (int i = 0; i < n; ++i) {
          acc += static_cast<int32_t>(in[i]) * static_cast<int32_t>(w[i]);
        }
        orow[ki] = acc;
      }
    }
    return out;
  }

  return fc_s32_partial(input, weights, c_s, c_e);
}

}  // namespace decimate
