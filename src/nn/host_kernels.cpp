#include "nn/host_kernels.hpp"

#include <algorithm>
#include <atomic>

#include "nn/host_kernel_instances.hpp"
#include "nn/host_kernels_impl.hpp"
#include "nn/ref_ops.hpp"

namespace decimate {

namespace {

void check_conv_args(const Tensor8& input, const Tensor8& weights,
                     const Tensor32& bias, const ConvGeom& g, int oy_s,
                     int oy_e, int k_s, int k_e, const Tensor8& out,
                     bool dense) {
  g.validate();
  DECIMATE_CHECK(input.shape() == (std::vector<int>{g.iy, g.ix, g.c}),
                 "host conv input shape mismatch");
  if (dense) {
    DECIMATE_CHECK(weights.shape() == (std::vector<int>{g.k, g.fsz()}),
                   "host conv weight shape mismatch");
  }
  DECIMATE_CHECK(bias.shape() == (std::vector<int>{g.k}),
                 "host conv bias shape mismatch");
  DECIMATE_CHECK(out.shape() == (std::vector<int>{g.oy(), g.ox(), g.k}),
                 "host conv output shape mismatch");
  DECIMATE_CHECK(0 <= oy_s && oy_s <= oy_e && oy_e <= g.oy() && 0 <= k_s &&
                     k_s <= k_e && k_e <= g.k,
                 "host conv range out of bounds");
}

void check_fc_args(const Tensor8& input, const Tensor8& weights,
                   const Tensor32& bias, int t_s, int t_e, int k_s, int k_e,
                   const Tensor8& out, bool dense) {
  DECIMATE_CHECK(input.rank() == 2, "host fc expects 2D input");
  const int t = input.dim(0), c = input.dim(1), k = out.dim(1);
  if (dense) {
    DECIMATE_CHECK(weights.rank() == 2 && weights.dim(1) == c,
                   "host fc weight/input dim mismatch");
    DECIMATE_CHECK(weights.dim(0) == k, "host fc weight row mismatch");
  }
  DECIMATE_CHECK(bias.shape() == (std::vector<int>{k}),
                 "host fc bias mismatch");
  DECIMATE_CHECK(out.rank() == 2 && out.dim(0) == t,
                 "host fc output shape mismatch");
  DECIMATE_CHECK(0 <= t_s && t_s <= t_e && t_e <= t && 0 <= k_s &&
                     k_s <= k_e && k_e <= k,
                 "host fc range out of bounds");
}

// ---------------------------------------------------------------------------
// Scalar registry entries. These adapters bind the registry's uniform
// signature to the private scalar kernel copies of THIS translation unit,
// which is compiled with the base ISA flags only — the guaranteed
// fallback contains no AVX code whatever the other TUs were built with.
// ---------------------------------------------------------------------------

void run_conv_dense_scalar(const HostKernelDispatch&, const Tensor8& input,
                           const Tensor8& weights, const Tensor32& bias,
                           const ConvGeom& g, const Requant& rq, int oy_s,
                           int oy_e, int k_s, int k_e, Tensor8& out) {
  hostk::dense_conv_into(input, weights, bias, g, rq, oy_s, oy_e, k_s, k_e,
                         out);
}

void run_conv_nm_scalar(const HostKernelDispatch& d, const Tensor8& input,
                        const Tensor8&, const Tensor32& bias,
                        const ConvGeom& g, const Requant& rq, int oy_s,
                        int oy_e, int k_s, int k_e, Tensor8& out) {
  hostk::sparse_conv_into(d, input, bias, g, rq, oy_s, oy_e, k_s, k_e, out);
}

void run_fc_dense_scalar(const HostKernelDispatch&, const Tensor8& input,
                         const Tensor8& weights, const Tensor32& bias,
                         const Requant& rq, int t_s, int t_e, int k_s,
                         int k_e, Tensor8& out) {
  hostk::dense_fc_into(input, weights, bias, rq, t_s, t_e, k_s, k_e, out);
}

void run_fc_nm_scalar(const HostKernelDispatch& d, const Tensor8& input,
                      const Tensor8&, const Tensor32& bias, const Requant& rq,
                      int t_s, int t_e, int k_s, int k_e, Tensor8& out) {
  hostk::sparse_fc_into(d, input, bias, rq, t_s, t_e, k_s, k_e, out);
}

// ---------------------------------------------------------------------------
// Geometry predicates. A predicate says "this instance is the fast choice
// here", never "this instance works here" — every instance handles every
// geometry of its family via internal scalar borders/tails.
// ---------------------------------------------------------------------------

#if defined(DECIMATE_HAVE_AVX2_TU) || defined(DECIMATE_HAVE_AVX512_TU)
bool conv_dense_wide16(const ConvGeom& g, int) { return g.fx * g.c >= 16; }

bool conv_nm_interior8(const ConvGeom& g, int) {
  // the pixel-major kernel multiplies each non-zero across up to 16
  // adjacent output columns — it needs unit stride (contiguous pixels in
  // the transposed plane) and enough interior to fill at least half a
  // vector (partial remainder blocks keep narrow interiors vectorized,
  // so >= 8 columns already beats the scalar gather)
  const auto [x_lo, x_hi] =
      hostk::interior_range(g.ix, g.fx, g.stride, g.pad, g.ox());
  return g.stride == 1 && x_hi - x_lo >= 8;
}

bool fc_dense_deep16(int, int c, int, int) { return c >= 16; }

bool fc_nm_tokens8(int tokens, int, int, int) { return tokens >= 8; }
#endif

#if defined(DECIMATE_HAVE_AVX512_TU)
bool conv_dense_wide64(const ConvGeom& g, int) { return g.fx * g.c >= 64; }

bool fc_dense_deep64(int, int c, int, int) { return c >= 64; }
#endif

bool fits_always_conv(const ConvGeom&, int) { return true; }
bool fits_always_fc(int, int, int, int) { return true; }

// ---------------------------------------------------------------------------
// The instance table. Selection scans in order and takes the first entry
// whose family matches, whose ISA the host (as capped) supports, and
// whose predicate accepts the geometry — so within a family, faster
// tiers come first and the scalar instance is the unconditional last
// resort.
// ---------------------------------------------------------------------------

constexpr HostIsa kIsaScalar = HostIsa::kScalar;

const hostk::Instance kInstances[] = {
    // dense conv: the avx2 4-channel madd block outranks the vnni dp64
    // variant — its advantage is robust across conv shapes (a 64-byte
    // chunk only fills from long filter rows, and whole-model dense conv
    // measured faster through it), while the vnni instance stays
    // registered for forcing/benching on the shapes where it wins
#if defined(DECIMATE_HAVE_AVX2_TU)
    {{"conv-dense-mac16-avx2", HostImpl::kDenseConv, HostIsa::kAvx2,
      "fx*c >= 16"},
     conv_dense_wide16, nullptr, hostk::conv_dense_avx2, nullptr},
#endif
#if defined(DECIMATE_HAVE_AVX512_TU)
    {{"conv-dense-dp64-vnni", HostImpl::kDenseConv, HostIsa::kAvx512Vnni,
      "fx*c >= 64"},
     conv_dense_wide64, nullptr, hostk::conv_dense_vnni, nullptr},
#endif
    {{"conv-dense-scalar", HostImpl::kDenseConv, kIsaScalar, "always"},
     fits_always_conv, nullptr, run_conv_dense_scalar, nullptr},

#if defined(DECIMATE_HAVE_AVX2_TU)
    {{"conv-nm-pix16-avx2", HostImpl::kSparseConv, HostIsa::kAvx2,
      "stride == 1 && interior >= 8"},
     conv_nm_interior8, nullptr, hostk::conv_nm_avx2, nullptr},
#endif
    {{"conv-nm-scalar", HostImpl::kSparseConv, kIsaScalar, "always"},
     fits_always_conv, nullptr, run_conv_nm_scalar, nullptr},

#if defined(DECIMATE_HAVE_AVX512_TU)
    {{"fc-dense-dp64-vnni", HostImpl::kDenseFc, HostIsa::kAvx512Vnni,
      "c >= 64"},
     nullptr, fc_dense_deep64, nullptr, hostk::fc_dense_vnni},
#endif
#if defined(DECIMATE_HAVE_AVX2_TU)
    {{"fc-dense-mac16-avx2", HostImpl::kDenseFc, HostIsa::kAvx2, "c >= 16"},
     nullptr, fc_dense_deep16, nullptr, hostk::fc_dense_avx2},
#endif
    {{"fc-dense-scalar", HostImpl::kDenseFc, kIsaScalar, "always"},
     nullptr, fits_always_fc, nullptr, run_fc_dense_scalar},

#if defined(DECIMATE_HAVE_AVX2_TU)
    {{"fc-nm-tok16-avx2", HostImpl::kSparseFc, HostIsa::kAvx2,
      "tokens >= 8"},
     nullptr, fc_nm_tokens8, nullptr, hostk::fc_nm_avx2},
#endif
    {{"fc-nm-scalar", HostImpl::kSparseFc, kIsaScalar, "always"},
     nullptr, fits_always_fc, nullptr, run_fc_nm_scalar},
};

constexpr int kNumInstances =
    static_cast<int>(sizeof(kInstances) / sizeof(kInstances[0]));

std::atomic<HostIsa> g_isa_cap{HostIsa::kAvx512Vnni};

/// Scalar instance of a family (always present; the -1 / mismatch
/// fallback at run time).
const hostk::Instance& scalar_instance(HostImpl family) {
  for (const hostk::Instance& ins : kInstances) {
    if (ins.info.family == family && ins.info.isa == HostIsa::kScalar) {
      return ins;
    }
  }
  DECIMATE_FAIL("no scalar instance for family " << host_impl_name(family));
}

/// The instance a dispatch resolved to: its stored selection when valid
/// for the family (and runnable on this CPU), else the scalar fallback.
const hostk::Instance& resolve(const HostKernelDispatch& d) {
  if (d.instance >= 0 && d.instance < kNumInstances) {
    const hostk::Instance& ins = kInstances[d.instance];
    if (ins.info.family == d.impl && ins.info.isa <= host_isa_detected()) {
      return ins;
    }
  }
  return scalar_instance(d.impl);
}

int select_conv_instance(HostImpl family, const ConvGeom& g, int m) {
  const HostIsa isa = host_isa();
  for (int i = 0; i < kNumInstances; ++i) {
    const hostk::Instance& ins = kInstances[i];
    if (ins.info.family != family || ins.info.isa > isa) continue;
    if (ins.fits_conv != nullptr && ins.fits_conv(g, m)) return i;
  }
  DECIMATE_FAIL("no conv instance fits family " << host_impl_name(family));
}

int select_fc_instance(HostImpl family, int tokens, int c, int k, int m) {
  const HostIsa isa = host_isa();
  for (int i = 0; i < kNumInstances; ++i) {
    const hostk::Instance& ins = kInstances[i];
    if (ins.info.family != family || ins.info.isa > isa) continue;
    if (ins.fits_fc != nullptr && ins.fits_fc(tokens, c, k, m)) return i;
  }
  DECIMATE_FAIL("no fc instance fits family " << host_impl_name(family));
}

}  // namespace

int host_select_instance_for_conv(HostImpl family, const ConvGeom& g, int m) {
  return select_conv_instance(family, g, m);
}

int host_select_instance_for_fc(HostImpl family, int tokens, int c, int k,
                                int m) {
  return select_fc_instance(family, tokens, c, k, m);
}

const char* host_impl_name(HostImpl impl) {
  switch (impl) {
    case HostImpl::kRefFallback: return "ref";
    case HostImpl::kDenseConv: return "dense-conv-blocked";
    case HostImpl::kDenseFc: return "dense-fc-blocked";
    case HostImpl::kSparseConv: return "sparse-conv-nm";
    case HostImpl::kSparseFc: return "sparse-fc-nm";
  }
  return "?";
}

const char* host_isa_name(HostIsa isa) {
  switch (isa) {
    case HostIsa::kScalar: return "scalar";
    case HostIsa::kAvx2: return "avx2";
    case HostIsa::kAvx512Vnni: return "avx512vnni";
  }
  return "?";
}

HostIsa host_isa_detected() {
  static const HostIsa detected = [] {
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512vnni")) {
      return HostIsa::kAvx512Vnni;
    }
    if (__builtin_cpu_supports("avx2")) return HostIsa::kAvx2;
#endif
    return HostIsa::kScalar;
  }();
  return detected;
}

HostIsa host_isa() {
  return std::min(host_isa_detected(), g_isa_cap.load(std::memory_order_relaxed));
}

void set_host_isa_cap(HostIsa cap) {
  g_isa_cap.store(cap, std::memory_order_relaxed);
}

int host_instance_count() { return kNumInstances; }

const HostInstanceInfo& host_instance_info(int id) {
  DECIMATE_CHECK(id >= 0 && id < kNumInstances,
                 "host instance id out of range: " << id);
  return kInstances[id].info;
}

const char* host_instance_name(const HostKernelDispatch& d) {
  if (d.impl == HostImpl::kRefFallback) return "ref";
  return resolve(d).info.name;
}

void host_force_instance(HostKernelDispatch& d, int id) {
  DECIMATE_CHECK(id >= 0 && id < kNumInstances,
                 "host instance id out of range: " << id);
  const hostk::Instance& ins = kInstances[id];
  DECIMATE_CHECK(ins.info.family == d.impl,
                 "instance " << ins.info.name << " does not implement "
                             << host_impl_name(d.impl));
  DECIMATE_CHECK(ins.info.isa <= host_isa_detected(),
                 "instance " << ins.info.name
                             << " needs an ISA this CPU lacks");
  d.instance = id;
}

HostKernelDispatch host_dispatch_for_conv(const ConvGeom& g,
                                          const NmPacked* packed) {
  HostKernelDispatch d;
  if (packed == nullptr) {
    d.impl = HostImpl::kDenseConv;
    d.instance = select_conv_instance(d.impl, g, 0);
    return d;
  }
  DECIMATE_CHECK(packed->rows == g.k && packed->cols == g.fsz(),
                 "packed weights do not match conv geometry");
  DECIMATE_CHECK(g.c <= 65535, "conv channel count overflows gather index");
  d.impl = HostImpl::kSparseConv;
  d.m = packed->m;
  d.instance = select_conv_instance(d.impl, g, packed->m);
  d.taps = g.fy * g.fx;
  d.tap_off.resize(static_cast<size_t>(d.taps));
  d.tap_fy.resize(static_cast<size_t>(d.taps));
  d.tap_fx.resize(static_cast<size_t>(d.taps));
  for (int t = 0; t < d.taps; ++t) {
    const int fy = t / g.fx, fx = t % g.fx;
    d.tap_fy[static_cast<size_t>(t)] = static_cast<int16_t>(fy);
    d.tap_fx[static_cast<size_t>(t)] = static_cast<int16_t>(fx);
    d.tap_off[static_cast<size_t>(t)] = (fy * g.ix + fx) * g.c;
  }
  d.tap_start.assign(static_cast<size_t>(g.k) * d.taps + 1, 0);
  d.ci.reserve(static_cast<size_t>(g.k) * packed->nz_per_row);
  d.val.reserve(d.ci.capacity());
  for (int r = 0; r < g.k; ++r) {
    int tap_cursor = 0;
    for (int j = 0; j < packed->nz_per_row; ++j) {
      const int8_t v =
          packed->values[static_cast<size_t>(r) * packed->values_row_bytes +
                         static_cast<size_t>(j)];
      if (v == 0) continue;  // zero weight contributes nothing — drop it
      const int dcol = j * packed->m + packed->offset_at(r, j);
      const int tap = dcol / g.c;
      // dcol ascends with j, so taps arrive in order; close skipped taps
      while (tap_cursor < tap) {
        d.tap_start[static_cast<size_t>(r) * d.taps + ++tap_cursor] =
            static_cast<int32_t>(d.val.size());
      }
      d.ci.push_back(static_cast<uint16_t>(dcol % g.c));
      d.val.push_back(v);
    }
    while (tap_cursor < d.taps) {
      d.tap_start[static_cast<size_t>(r) * d.taps + ++tap_cursor] =
          static_cast<int32_t>(d.val.size());
    }
  }
  return d;
}

HostKernelDispatch host_dispatch_for_fc(int rows, int c,
                                        const NmPacked* packed, int tokens) {
  HostKernelDispatch d;
  if (packed == nullptr) {
    d.impl = HostImpl::kDenseFc;
    d.instance = select_fc_instance(d.impl, tokens, c, rows, 0);
    return d;
  }
  DECIMATE_CHECK(packed->rows == rows && packed->cols == c,
                 "packed weights do not match fc geometry");
  d.impl = HostImpl::kSparseFc;
  d.m = packed->m;
  d.instance = select_fc_instance(d.impl, tokens, c, rows, packed->m);
  d.row_start.assign(static_cast<size_t>(rows) + 1, 0);
  d.col.reserve(static_cast<size_t>(rows) * packed->nz_per_row);
  d.val.reserve(d.col.capacity());
  for (int r = 0; r < rows; ++r) {
    for (int j = 0; j < packed->nz_per_row; ++j) {
      const int8_t v =
          packed->values[static_cast<size_t>(r) * packed->values_row_bytes +
                         static_cast<size_t>(j)];
      if (v == 0) continue;
      d.col.push_back(j * packed->m + packed->offset_at(r, j));
      d.val.push_back(v);
    }
    d.row_start[static_cast<size_t>(r) + 1] =
        static_cast<int32_t>(d.val.size());
  }
  return d;
}

void host_conv2d_s8_into(const HostKernelDispatch& d, const Tensor8& input,
                         const Tensor8& weights, const Tensor32& bias,
                         const ConvGeom& g, const Requant& rq, int oy_s,
                         int oy_e, int k_s, int k_e, Tensor8& out) {
  switch (d.impl) {
    case HostImpl::kSparseConv:
      check_conv_args(input, weights, bias, g, oy_s, oy_e, k_s, k_e, out,
                      /*dense=*/false);
      break;
    case HostImpl::kDenseConv:
      check_conv_args(input, weights, bias, g, oy_s, oy_e, k_s, k_e, out,
                      /*dense=*/true);
      break;
    case HostImpl::kRefFallback:
      conv2d_s8_into(input, weights, bias, g, rq, oy_s, oy_e, k_s, k_e, out);
      return;
    default: DECIMATE_FAIL("dispatch is not a conv kernel");
  }
  resolve(d).conv_run(d, input, weights, bias, g, rq, oy_s, oy_e, k_s, k_e,
                      out);
}

Tensor8 host_conv2d_s8(const HostKernelDispatch& d, const Tensor8& input,
                       const Tensor8& weights, const Tensor32& bias,
                       const ConvGeom& g, const Requant& rq) {
  Tensor8 out({g.oy(), g.ox(), g.k});
  host_conv2d_s8_into(d, input, weights, bias, g, rq, 0, g.oy(), 0, g.k, out);
  return out;
}

void host_fc_s8_into(const HostKernelDispatch& d, const Tensor8& input,
                     const Tensor8& weights, const Tensor32& bias,
                     const Requant& rq, int t_s, int t_e, int k_s, int k_e,
                     Tensor8& out) {
  switch (d.impl) {
    case HostImpl::kSparseFc:
      check_fc_args(input, weights, bias, t_s, t_e, k_s, k_e, out,
                    /*dense=*/false);
      break;
    case HostImpl::kDenseFc:
      check_fc_args(input, weights, bias, t_s, t_e, k_s, k_e, out,
                    /*dense=*/true);
      break;
    case HostImpl::kRefFallback:
      fc_s8_into(input, weights, bias, rq, t_s, t_e, k_s, k_e, out);
      return;
    default: DECIMATE_FAIL("dispatch is not an fc kernel");
  }
  resolve(d).fc_run(d, input, weights, bias, rq, t_s, t_e, k_s, k_e, out);
}

Tensor8 host_fc_s8(const HostKernelDispatch& d, const Tensor8& input,
                   const Tensor8& weights, const Tensor32& bias,
                   const Requant& rq) {
  DECIMATE_CHECK(input.rank() == 2, "host fc expects 2D input");
  const int k = d.impl == HostImpl::kSparseFc
                    ? static_cast<int>(d.row_start.size()) - 1
                    : weights.dim(0);
  Tensor8 out({input.dim(0), k});
  host_fc_s8_into(d, input, weights, bias, rq, 0, input.dim(0), 0, k, out);
  return out;
}

Tensor32 host_fc_s32_partial(const HostKernelDispatch& d,
                             const Tensor8& input, const Tensor8& weights,
                             int c_s, int c_e) {
  DECIMATE_CHECK(input.rank() == 2, "host fc expects 2D input");
  const int t = input.dim(0), c = input.dim(1);
  DECIMATE_CHECK(0 <= c_s && c_s <= c_e && c_e <= c,
                 "host fc feature range out of bounds");

  if (d.impl == HostImpl::kSparseFc) {
    const int k = static_cast<int>(d.row_start.size()) - 1;
    Tensor32 out({t, k}, 0);
    for (int ki = 0; ki < k; ++ki) {
      // the row's columns ascend — binary-search the feature window once
      const auto row_b = d.col.begin() + d.row_start[static_cast<size_t>(ki)];
      const auto row_e =
          d.col.begin() + d.row_start[static_cast<size_t>(ki) + 1];
      const int e_s =
          static_cast<int>(std::lower_bound(row_b, row_e, c_s) - d.col.begin());
      const int e_e =
          static_cast<int>(std::lower_bound(row_b, row_e, c_e) - d.col.begin());
      for (int ti = 0; ti < t; ++ti) {
        const int8_t* in = input.data() + static_cast<int64_t>(ti) * c;
        int32_t acc = 0;
        for (int e = e_s; e < e_e; ++e) {
          acc += static_cast<int32_t>(in[d.col[static_cast<size_t>(e)]]) *
                 static_cast<int32_t>(d.val[static_cast<size_t>(e)]);
        }
        out[static_cast<int64_t>(ti) * k + ki] = acc;
      }
    }
    return out;
  }

  if (d.impl == HostImpl::kDenseFc) {
    DECIMATE_CHECK(weights.rank() == 2 && weights.dim(1) == c,
                   "host fc weight/input dim mismatch");
    const int k = weights.dim(0);
    Tensor32 out({t, k}, 0);
    const int n = c_e - c_s;
    for (int ti = 0; ti < t; ++ti) {
      const int8_t* in = input.data() + static_cast<int64_t>(ti) * c + c_s;
      int32_t* orow = out.data() + static_cast<int64_t>(ti) * k;
      int ki = 0;
      for (; ki + 3 < k; ki += 4) {
        const int8_t* wr0 = weights.data() + static_cast<int64_t>(ki) * c + c_s;
        const int8_t* wr1 = wr0 + c;
        const int8_t* wr2 = wr1 + c;
        const int8_t* wr3 = wr2 + c;
        int32_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
        for (int i = 0; i < n; ++i) {
          const int32_t v = in[i];
          a0 += v * wr0[i];
          a1 += v * wr1[i];
          a2 += v * wr2[i];
          a3 += v * wr3[i];
        }
        orow[ki] = a0;
        orow[ki + 1] = a1;
        orow[ki + 2] = a2;
        orow[ki + 3] = a3;
      }
      for (; ki < k; ++ki) {
        const int8_t* w = weights.data() + static_cast<int64_t>(ki) * c + c_s;
        int32_t acc = 0;
        for (int i = 0; i < n; ++i) {
          acc += static_cast<int32_t>(in[i]) * static_cast<int32_t>(w[i]);
        }
        orow[ki] = acc;
      }
    }
    return out;
  }

  return fc_s32_partial(input, weights, c_s, c_e);
}

}  // namespace decimate
