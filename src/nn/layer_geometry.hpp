#pragma once
// Layer hyper-parameter records, following the paper's Table 1 notation:
// input (IX/IY/C), output (OX/OY/K), weights (FX/FY/C/K), stride S, pad P.

#include "common/check.hpp"

namespace decimate {

struct ConvGeom {
  int ix = 0, iy = 0, c = 0;  // input columns, rows, channels
  int k = 0;                  // output channels
  int fx = 1, fy = 1;         // filter width, height
  int stride = 1;
  int pad = 0;

  int ox() const { return (ix + 2 * pad - fx) / stride + 1; }
  int oy() const { return (iy + 2 * pad - fy) / stride + 1; }
  int fsz() const { return fx * fy * c; }
  int64_t macs() const {
    return static_cast<int64_t>(ox()) * oy() * k * fsz();
  }
  void validate() const {
    DECIMATE_CHECK(ix > 0 && iy > 0 && c > 0 && k > 0 && fx > 0 && fy > 0,
                   "conv geometry has non-positive dims");
    DECIMATE_CHECK(stride >= 1 && pad >= 0, "bad stride/pad");
    DECIMATE_CHECK(ix + 2 * pad >= fx && iy + 2 * pad >= fy,
                   "filter larger than padded input");
  }
};

struct FcGeom {
  int tokens = 1;  // batch rows (1 for a classifier head, #tokens for ViT)
  int c = 0;       // input features
  int k = 0;       // output features

  int64_t macs() const { return static_cast<int64_t>(tokens) * c * k; }
  void validate() const {
    DECIMATE_CHECK(tokens > 0 && c > 0 && k > 0,
                   "fc geometry has non-positive dims");
  }
};

}  // namespace decimate
