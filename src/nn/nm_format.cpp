#include "nn/nm_format.hpp"

#include "common/bitutil.hpp"
#include "common/check.hpp"
#include "nn/prune.hpp"

namespace decimate {

namespace {

/// Write a `bits`-wide field at field-index `j` into a little-endian
/// packed byte stream.
void put_field(std::span<uint8_t> bytes, int j, int bits_, uint32_t value) {
  const int bitpos = j * bits_;
  const int byte = bitpos / 8;
  const int shift = bitpos % 8;
  DECIMATE_CHECK(static_cast<size_t>(byte) < bytes.size(),
                 "offset stream overflow");
  const auto mask = static_cast<uint8_t>(((1u << bits_) - 1u) << shift);
  bytes[static_cast<size_t>(byte)] = static_cast<uint8_t>(
      (bytes[static_cast<size_t>(byte)] & ~mask) |
      ((value << shift) & mask));
}

uint32_t get_field(std::span<const uint8_t> bytes, int j, int bits_) {
  const int bitpos = j * bits_;
  const int byte = bitpos / 8;
  const int shift = bitpos % 8;
  DECIMATE_CHECK(static_cast<size_t>(byte) < bytes.size(),
                 "offset stream overflow");
  return (bytes[static_cast<size_t>(byte)] >> shift) & ((1u << bits_) - 1u);
}

}  // namespace

const char* nm_layout_name(NmLayout layout) {
  switch (layout) {
    case NmLayout::kSw: return "sw";
    case NmLayout::kConvIsaDup: return "conv-isa-dup";
    case NmLayout::kFcIsaInterleaved: return "fc-isa-interleaved";
  }
  return "?";
}

int NmPacked::offset_at(int r, int j) const {
  DECIMATE_CHECK(r >= 0 && r < rows && j >= 0 && j < nz_per_row,
                 "offset_at out of range");
  const int bits_ = offset_bits();
  switch (layout) {
    case NmLayout::kSw: {
      std::span<const uint8_t> row{
          offsets.data() + static_cast<size_t>(r) * offsets_row_bytes,
          static_cast<size_t>(offsets_row_bytes)};
      return static_cast<int>(get_field(row, j, bits_));
    }
    case NmLayout::kConvIsaDup: {
      std::span<const uint8_t> row{
          offsets.data() + static_cast<size_t>(r) * offsets_row_bytes,
          static_cast<size_t>(offsets_row_bytes)};
      return static_cast<int>(get_field(row, 2 * j, bits_));
    }
    case NmLayout::kFcIsaInterleaved: {
      const int pair = r / 2;
      std::span<const uint8_t> row{
          offsets.data() + static_cast<size_t>(pair) * offsets_row_bytes,
          static_cast<size_t>(offsets_row_bytes)};
      return static_cast<int>(get_field(row, 2 * j + (r & 1), bits_));
    }
  }
  DECIMATE_FAIL("bad layout");
}

Tensor8 NmPacked::to_dense() const {
  Tensor8 dense({rows, cols});
  for (int r = 0; r < rows; ++r) {
    for (int j = 0; j < nz_per_row; ++j) {
      const int off = offset_at(r, j);
      dense.at({r, j * m + off}) =
          values[static_cast<size_t>(r) * values_row_bytes + j];
    }
  }
  return dense;
}

NmPacked nm_pack(std::span<const int8_t> w, int rows, int cols, int m,
                 NmLayout layout) {
  DECIMATE_CHECK(m == 2 || m == 4 || m == 8 || m == 16,
                 "M must be 2, 4, 8 or 16");
  DECIMATE_CHECK(cols % m == 0, "cols " << cols << " not multiple of M " << m);
  DECIMATE_CHECK(is_nm_sparse(w, rows, cols, 1, m),
                 "matrix is not 1:" << m << " sparse");
  if (layout == NmLayout::kFcIsaInterleaved) {
    DECIMATE_CHECK(rows % 2 == 0,
                   "FC-ISA interleaved layout needs an even channel count");
  }

  NmPacked p;
  p.m = m;
  p.rows = rows;
  p.cols = cols;
  p.nz_per_row = cols / m;
  p.nz_padded = static_cast<int>(round_up(p.nz_per_row, m <= 4 ? 8 : 4));
  p.layout = layout;
  const int bits_ = p.offset_bits();
  p.values_row_bytes = p.nz_padded;

  const int fields_per_unit =
      (layout == NmLayout::kSw) ? p.nz_padded : 2 * p.nz_padded;
  p.offsets_row_bytes = static_cast<int>(
      round_up(ceil_div(static_cast<int64_t>(fields_per_unit) * bits_, 8), 4));
  const int units =
      (layout == NmLayout::kFcIsaInterleaved) ? rows / 2 : rows;

  p.values.assign(static_cast<size_t>(rows) * p.values_row_bytes, 0);
  p.offsets.assign(static_cast<size_t>(units) * p.offsets_row_bytes, 0);

  // Logical offsets per row.
  auto row_offset = [&](int r, int j) -> uint32_t {
    const int8_t* blk =
        w.data() + static_cast<int64_t>(r) * cols + static_cast<int64_t>(j) * m;
    for (int i = 0; i < m; ++i) {
      if (blk[i] != 0) return static_cast<uint32_t>(i);
    }
    return 0;  // all-zero block: value 0 at offset 0
  };

  for (int r = 0; r < rows; ++r) {
    for (int j = 0; j < p.nz_padded; ++j) {
      const uint32_t off = (j < p.nz_per_row) ? row_offset(r, j) : 0;
      p.values[static_cast<size_t>(r) * p.values_row_bytes + j] =
          (j < p.nz_per_row)
              ? w[static_cast<int64_t>(r) * cols +
                  static_cast<int64_t>(j) * m + static_cast<int>(off)]
              : int8_t{0};
      switch (layout) {
        case NmLayout::kSw: {
          std::span<uint8_t> row{
              p.offsets.data() + static_cast<size_t>(r) * p.offsets_row_bytes,
              static_cast<size_t>(p.offsets_row_bytes)};
          put_field(row, j, bits_, off);
          break;
        }
        case NmLayout::kConvIsaDup: {
          std::span<uint8_t> row{
              p.offsets.data() + static_cast<size_t>(r) * p.offsets_row_bytes,
              static_cast<size_t>(p.offsets_row_bytes)};
          put_field(row, 2 * j, bits_, off);
          put_field(row, 2 * j + 1, bits_, off);
          break;
        }
        case NmLayout::kFcIsaInterleaved: {
          std::span<uint8_t> row{
              p.offsets.data() +
                  static_cast<size_t>(r / 2) * p.offsets_row_bytes,
              static_cast<size_t>(p.offsets_row_bytes)};
          put_field(row, 2 * j + (r & 1), bits_, off);
          break;
        }
      }
    }
  }
  return p;
}

int64_t dense_bytes(int rows, int cols) {
  return static_cast<int64_t>(rows) * cols;
}

int64_t coo_bytes(int64_t nnz) {
  return nnz * (1 + 2 + 2);  // value + 16-bit row + 16-bit col
}

int64_t csr_bytes(int rows, int64_t nnz) {
  return nnz * (1 + 2) + static_cast<int64_t>(rows) * 4;
}

int64_t nm_bytes(int rows, int cols, int m, bool duplicated_offsets) {
  const int64_t nnz = static_cast<int64_t>(rows) * cols / m;
  const int bits_ = (m <= 4) ? 2 : 4;
  const int dup = duplicated_offsets ? 2 : 1;
  return nnz + ceil_div(nnz * bits_ * dup, 8);
}

}  // namespace decimate
