#include "nn/prune.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace decimate {

namespace {

template <typename T>
void nm_prune_impl(std::span<T> w, int rows, int cols, int n, int m) {
  DECIMATE_CHECK(n >= 1 && n < m, "need 1 <= n < m, got " << n << ":" << m);
  DECIMATE_CHECK(cols % m == 0, "cols " << cols << " not a multiple of m " << m);
  DECIMATE_CHECK(static_cast<int64_t>(rows) * cols ==
                     static_cast<int64_t>(w.size()),
                 "matrix size mismatch");
  std::vector<int> idx(static_cast<size_t>(m));
  for (int r = 0; r < rows; ++r) {
    for (int b = 0; b < cols / m; ++b) {
      T* blk = w.data() + static_cast<int64_t>(r) * cols + b * m;
      for (int i = 0; i < m; ++i) idx[static_cast<size_t>(i)] = i;
      std::stable_sort(idx.begin(), idx.end(), [&](int a, int c) {
        return std::abs(static_cast<double>(blk[a])) >
               std::abs(static_cast<double>(blk[c]));
      });
      for (int i = n; i < m; ++i) blk[idx[static_cast<size_t>(i)]] = T{0};
    }
  }
}

}  // namespace

void nm_prune(std::span<float> w, int rows, int cols, int n, int m) {
  nm_prune_impl(w, rows, cols, n, m);
}

void nm_prune(std::span<int8_t> w, int rows, int cols, int n, int m) {
  nm_prune_impl(w, rows, cols, n, m);
}

bool is_nm_sparse(std::span<const int8_t> w, int rows, int cols, int n,
                  int m) {
  if (cols % m != 0) return false;
  if (static_cast<int64_t>(rows) * cols != static_cast<int64_t>(w.size())) {
    return false;
  }
  for (int r = 0; r < rows; ++r) {
    for (int b = 0; b < cols / m; ++b) {
      const int8_t* blk = w.data() + static_cast<int64_t>(r) * cols + b * m;
      int nz = 0;
      for (int i = 0; i < m; ++i) nz += (blk[i] != 0);
      if (nz > n) return false;
    }
  }
  return true;
}

double sparsity(std::span<const int8_t> w) {
  if (w.empty()) return 0.0;
  int64_t zeros = 0;
  for (int8_t v : w) zeros += (v == 0);
  return static_cast<double>(zeros) / static_cast<double>(w.size());
}

int detect_one_to_m(std::span<const int8_t> w, int rows, int cols) {
  for (int m : {16, 8, 4, 2}) {
    if (cols % m != 0) continue;
    if (!is_nm_sparse(w, rows, cols, 1, m)) continue;
    // Reject pathological all-zero matrices claiming max sparsity: they
    // are still valid 1:M, keep the tightest M.
    return m;
  }
  return 0;
}

}  // namespace decimate
