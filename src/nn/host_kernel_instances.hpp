#pragma once
// The host kernel *instance library*: per-geometry-class implementations
// of the four host kernel families (dense conv, dense FC/matmul, N:M
// sparse conv, N:M sparse FC), compiled per ISA and selected at compile
// time (host_dispatch_for_*) by a geometry predicate — the
// composable-kernel instance-dispatch idiom applied to this repo's host
// backend.
//
// Three ISA tiers:
//  - kScalar:     the blocked scalar loops (always present — the
//                 guaranteed fallback, and the oracle the SIMD instances
//                 are fuzzed against).
//  - kAvx2:       16-lane int8 dot-product microkernels built from
//                 sign-extend + pmaddwd (exact: s16 x s16 pair-products
//                 fit int32, accumulation wraps mod 2^32 like the scalar
//                 reference, so outputs are bit-identical in any order).
//  - kAvx512Vnni: vpdpbusd u8 x s8 dot products with the +128 bias
//                 correction (acc = sum((x+128) w) - 128 sum(w), exact mod
//                 2^32).
//
// The SIMD translation units are compiled with their ISA flags only when
// the toolchain supports them (CMake gates DECIMATE_HAVE_*_TU) and their
// instances are only *selectable* when CPUID reports the ISA at runtime —
// a plan compiled on a capable machine and forced to scalar (or a build
// with no SIMD TUs at all) produces bit-identical outputs.

#include "nn/host_kernels.hpp"

namespace decimate {

enum class HostIsa : uint8_t { kScalar = 0, kAvx2 = 1, kAvx512Vnni = 2 };

const char* host_isa_name(HostIsa isa);

/// The ISA tier this process's CPU supports (CPUID, computed once).
HostIsa host_isa_detected();

/// The tier instance selection uses: min(detected, cap).
HostIsa host_isa();

/// Clamp instance selection to at most `cap` for subsequently built
/// dispatches — the scalar-fallback test hook (kAvx512Vnni = no clamp).
/// Already-built dispatches keep their instance.
void set_host_isa_cap(HostIsa cap);

/// Registry metadata for one kernel instance (bench tables, README, and
/// the per-instance fuzz sweep enumerate these).
struct HostInstanceInfo {
  const char* name;      // e.g. "fc-dense-mac16-avx2"
  HostImpl family;       // which kernel family it implements
  HostIsa isa;           // minimum ISA tier required to run it
  const char* geometry;  // human-readable selection predicate
};

int host_instance_count();
const HostInstanceInfo& host_instance_info(int id);

/// The instance a dispatch selected (name of d.instance; "ref" when the
/// dispatch is a default-constructed reference fallback).
const char* host_instance_name(const HostKernelDispatch& d);

/// Test/bench hook: override the compile-time selection with a specific
/// registry instance. Checks the instance implements d's family and that
/// the running CPU supports its ISA. Every instance must be bit-exact on
/// every geometry of its family (predicates are performance heuristics,
/// not correctness gates), which is exactly what this hook lets tests
/// assert.
void host_force_instance(HostKernelDispatch& d, int id);

}  // namespace decimate
