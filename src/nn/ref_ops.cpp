#include "nn/ref_ops.hpp"

#include <algorithm>

#include "common/bitutil.hpp"

namespace decimate {

Tensor8 conv2d_s8(const Tensor8& input, const Tensor8& weights,
                  const Tensor32& bias, const ConvGeom& g, const Requant& rq) {
  Tensor8 out({g.oy(), g.ox(), g.k});
  conv2d_s8_into(input, weights, bias, g, rq, 0, g.oy(), 0, g.k, out);
  return out;
}

void conv2d_s8_into(const Tensor8& input, const Tensor8& weights,
                    const Tensor32& bias, const ConvGeom& g,
                    const Requant& rq, int oy_s, int oy_e, int k_s, int k_e,
                    Tensor8& out) {
  g.validate();
  DECIMATE_CHECK(input.shape() == (std::vector<int>{g.iy, g.ix, g.c}),
                 "conv input shape mismatch");
  DECIMATE_CHECK(weights.shape() == (std::vector<int>{g.k, g.fsz()}),
                 "conv weight shape mismatch");
  DECIMATE_CHECK(bias.shape() == (std::vector<int>{g.k}),
                 "conv bias shape mismatch");
  const int oy = g.oy(), ox = g.ox();
  DECIMATE_CHECK(out.shape() == (std::vector<int>{oy, ox, g.k}),
                 "conv output shape mismatch");
  DECIMATE_CHECK(0 <= oy_s && oy_s <= oy_e && oy_e <= oy && 0 <= k_s &&
                     k_s <= k_e && k_e <= g.k,
                 "conv range out of bounds");
  for (int y = oy_s; y < oy_e; ++y) {
    int8_t* out_y = out.data() + static_cast<int64_t>(y) * ox * g.k;
    for (int x = 0; x < ox; ++x) {
      int8_t* orow = out_y + static_cast<int64_t>(x) * g.k;
      for (int k = k_s; k < k_e; ++k) {
        int32_t acc = bias[k];
        const int8_t* wrow = weights.data() + static_cast<int64_t>(k) * g.fsz();
        int wi = 0;
        for (int fy = 0; fy < g.fy; ++fy) {
          const int iy = y * g.stride + fy - g.pad;
          for (int fx = 0; fx < g.fx; ++fx) {
            const int ix = x * g.stride + fx - g.pad;
            if (iy < 0 || iy >= g.iy || ix < 0 || ix >= g.ix) {
              wi += g.c;  // zero padding: skip this column
              continue;
            }
            const int8_t* in =
                input.data() +
                (static_cast<int64_t>(iy) * g.ix + ix) * g.c;
            for (int c = 0; c < g.c; ++c) {
              acc += static_cast<int32_t>(in[c]) *
                     static_cast<int32_t>(wrow[wi + c]);
            }
            wi += g.c;
          }
        }
        orow[k] = rq.apply(acc);
      }
    }
  }
}

Tensor8 fc_s8(const Tensor8& input, const Tensor8& weights,
              const Tensor32& bias, const Requant& rq) {
  DECIMATE_CHECK(input.rank() == 2 && weights.rank() == 2, "fc expects 2D");
  Tensor8 out({input.dim(0), weights.dim(0)});
  fc_s8_into(input, weights, bias, rq, 0, input.dim(0), 0, weights.dim(0),
             out);
  return out;
}

void fc_s8_into(const Tensor8& input, const Tensor8& weights,
                const Tensor32& bias, const Requant& rq, int t_s, int t_e,
                int k_s, int k_e, Tensor8& out) {
  DECIMATE_CHECK(input.rank() == 2 && weights.rank() == 2, "fc expects 2D");
  const int t = input.dim(0), c = input.dim(1), k = weights.dim(0);
  DECIMATE_CHECK(weights.dim(1) == c, "fc weight/input dim mismatch");
  DECIMATE_CHECK(bias.shape() == (std::vector<int>{k}), "fc bias mismatch");
  DECIMATE_CHECK(out.shape() == (std::vector<int>{t, k}),
                 "fc output shape mismatch");
  DECIMATE_CHECK(0 <= t_s && t_s <= t_e && t_e <= t && 0 <= k_s &&
                     k_s <= k_e && k_e <= k,
                 "fc range out of bounds");
  for (int ti = t_s; ti < t_e; ++ti) {
    const int8_t* in = input.data() + static_cast<int64_t>(ti) * c;
    for (int ki = k_s; ki < k_e; ++ki) {
      const int8_t* w = weights.data() + static_cast<int64_t>(ki) * c;
      int32_t acc = bias[ki];
      for (int ci = 0; ci < c; ++ci) {
        acc += static_cast<int32_t>(in[ci]) * static_cast<int32_t>(w[ci]);
      }
      out.at({ti, ki}) = rq.apply(acc);
    }
  }
}

Tensor32 fc_s32_partial(const Tensor8& input, const Tensor8& weights,
                        int c_s, int c_e) {
  DECIMATE_CHECK(input.rank() == 2 && weights.rank() == 2, "fc expects 2D");
  const int t = input.dim(0), c = input.dim(1), k = weights.dim(0);
  DECIMATE_CHECK(weights.dim(1) == c, "fc weight/input dim mismatch");
  DECIMATE_CHECK(0 <= c_s && c_s <= c_e && c_e <= c,
                 "fc feature range out of bounds");
  Tensor32 out({t, k}, 0);
  for (int ti = 0; ti < t; ++ti) {
    const int8_t* in = input.data() + static_cast<int64_t>(ti) * c;
    for (int ki = 0; ki < k; ++ki) {
      const int8_t* w = weights.data() + static_cast<int64_t>(ki) * c;
      int32_t acc = 0;
      for (int ci = c_s; ci < c_e; ++ci) {
        acc += static_cast<int32_t>(in[ci]) * static_cast<int32_t>(w[ci]);
      }
      out.at({ti, ki}) = acc;
    }
  }
  return out;
}

Tensor8 relu_s8(const Tensor8& x) {
  Tensor8 out(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) out[i] = std::max<int8_t>(x[i], 0);
  return out;
}

Tensor8 add_s8(const Tensor8& a, const Requant& ra, const Tensor8& b,
               const Requant& rb) {
  DECIMATE_CHECK(a.shape() == b.shape(), "add shape mismatch");
  Tensor8 out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    const int32_t ta =
        static_cast<int32_t>(static_cast<uint32_t>(a[i]) *
                             static_cast<uint32_t>(ra.mult)) >> ra.shift;
    const int32_t tb =
        static_cast<int32_t>(static_cast<uint32_t>(b[i]) *
                             static_cast<uint32_t>(rb.mult)) >> rb.shift;
    out[i] = static_cast<int8_t>(clip_signed(ta + tb, 8));
  }
  return out;
}

Tensor8 maxpool2x2_s8(const Tensor8& x) {
  DECIMATE_CHECK(x.rank() == 3, "maxpool expects {H,W,C}");
  const int h = x.dim(0), w = x.dim(1), c = x.dim(2);
  DECIMATE_CHECK(h % 2 == 0 && w % 2 == 0, "maxpool needs even H/W");
  Tensor8 out({h / 2, w / 2, c});
  const int64_t row = static_cast<int64_t>(w) * c;
  for (int y = 0; y < h / 2; ++y) {
    const int8_t* r0 = x.data() + 2 * y * row;
    const int8_t* r1 = r0 + row;
    int8_t* orow = out.data() + static_cast<int64_t>(y) * (w / 2) * c;
    for (int xx = 0; xx < w / 2; ++xx) {
      const int8_t* p00 = r0 + static_cast<int64_t>(2 * xx) * c;
      const int8_t* p01 = p00 + c;
      const int8_t* p10 = r1 + static_cast<int64_t>(2 * xx) * c;
      const int8_t* p11 = p10 + c;
      int8_t* o = orow + static_cast<int64_t>(xx) * c;
      for (int ci = 0; ci < c; ++ci) {
        int8_t m = p00[ci];
        m = std::max(m, p01[ci]);
        m = std::max(m, p10[ci]);
        m = std::max(m, p11[ci]);
        o[ci] = m;
      }
    }
  }
  return out;
}

Tensor8 global_avgpool_s8(const Tensor8& x, const Requant& rq) {
  DECIMATE_CHECK(x.rank() == 3, "avgpool expects {H,W,C}");
  const int h = x.dim(0), w = x.dim(1), c = x.dim(2);
  Tensor8 out({c});
  for (int ci = 0; ci < c; ++ci) {
    int32_t acc = 0;
    for (int y = 0; y < h; ++y) {
      const int8_t* row = x.data() + static_cast<int64_t>(y) * w * c + ci;
      for (int xx = 0; xx < w; ++xx) acc += row[static_cast<int64_t>(xx) * c];
    }
    out[ci] = rq.apply(acc);
  }
  return out;
}

Tensor8 lut_s8(const Tensor8& x, std::span<const int8_t> lut) {
  DECIMATE_CHECK(lut.size() == 256, "lut must have 256 entries");
  Tensor8 out(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    out[i] = lut[static_cast<uint8_t>(x[i])];
  }
  return out;
}

Tensor8 softmax_s8(const Tensor8& x, std::span<const uint8_t> exp_lut) {
  DECIMATE_CHECK(x.rank() == 2, "softmax expects {T,L}");
  const int t = x.dim(0), l = x.dim(1);
  Tensor8 out({t, l});
  for (int ti = 0; ti < t; ++ti) {
    softmax_s8_row({x.data() + static_cast<int64_t>(ti) * l,
                    static_cast<size_t>(l)},
                   exp_lut,
                   {out.data() + static_cast<int64_t>(ti) * l,
                    static_cast<size_t>(l)});
  }
  return out;
}

Tensor8 layernorm_s8(const Tensor8& x, const Tensor8& gamma,
                     const Tensor8& beta) {
  DECIMATE_CHECK(x.rank() == 2, "layernorm expects {T,L}");
  const int t = x.dim(0), l = x.dim(1);
  DECIMATE_CHECK(gamma.numel() == l && beta.numel() == l,
                 "layernorm gamma/beta size mismatch");
  Tensor8 out({t, l});
  for (int ti = 0; ti < t; ++ti) {
    layernorm_s8_row({x.data() + static_cast<int64_t>(ti) * l,
                      static_cast<size_t>(l)},
                     gamma.flat(), beta.flat(),
                     {out.data() + static_cast<int64_t>(ti) * l,
                      static_cast<size_t>(l)});
  }
  return out;
}

}  // namespace decimate
