#pragma once
// int8 quantization utilities.
//
// Requantization follows PULP-NN: out = clip8((acc * mult) >> shift), with
// a wrapping 32-bit multiply exactly as the core's MUL executes it, so the
// reference ops are bit-exact mirrors of the ISS kernels (3 instructions:
// mul, srai, p.clip). Lookup tables for GELU and exp are built on the host
// and shared by reference ops and kernels (both read the same bytes).

#include <cstdint>
#include <vector>

#include "common/bitutil.hpp"
#include "nn/tensor.hpp"

namespace decimate {

struct Requant {
  int32_t mult = 1;
  int32_t shift = 0;

  /// Bit-exact model of the kernel's requant sequence.
  int8_t apply(int32_t acc) const {
    const auto t = static_cast<int32_t>(static_cast<uint32_t>(acc) *
                                        static_cast<uint32_t>(mult));
    return static_cast<int8_t>(clip_signed(t >> shift, 8));
  }
};

/// Identity requant (mult=1, shift=0).
inline Requant requant_identity() { return {1, 0}; }

/// Choose (mult, shift) approximating `scale`, keeping |acc*mult| < 2^31
/// for accumulators up to max_abs_acc (avoids the wrapping multiply).
Requant make_requant(double scale, int64_t max_abs_acc);

/// Symmetric per-tensor quantization of float data to int8.
/// Returns the scale used (x_float ≈ q * scale).
float quantize_symmetric(std::span<const float> x, std::span<int8_t> out);

/// Dequantize helper for tests.
inline float dequant(int8_t q, float scale) { return q * scale; }

/// 256-entry int8 GELU table: lut[(uint8)x] = Q(gelu(x * s_in) / s_out).
std::vector<int8_t> build_gelu_lut(float s_in, float s_out);

/// 256-entry uint8 exp table for integer softmax:
/// lut[(uint8)d] = round(255 * exp(d * s_in)) for d in [-255, 0] (d is the
/// max-subtracted logit, always <= 0; positive indices map to 255).
std::vector<uint8_t> build_exp_lut(float s_in);

/// Integer isqrt (floor(sqrt(v))) — the same algorithm is implemented as an
/// assembly subroutine in the layernorm kernel; keep both in sync.
uint32_t isqrt_u32(uint32_t v);

/// Integer softmax over a row (mirrors the 3-pass kernel exactly):
///  pass 1: m = max(x); pass 2: e_i = exp_lut[x_i - m], sum = Σ e_i;
///  pass 3: r = (127 << 16) / sum; out_i = (e_i * r) >> 16.
void softmax_s8_row(std::span<const int8_t> x, std::span<const uint8_t> exp_lut,
                    std::span<int8_t> out);

/// Integer layernorm over a row (mirrors the 3-pass kernel exactly):
///  mean = Σx / L; var = Σ(x-mean)^2 / L; stdq = isqrt(var << 8) (≈16*std);
///  r = (1 << 16) / max(stdq, 1); xhat_i = ((x_i - mean) * r) >> 8
///  (≈ 16*(x-mean)/std); out_i = clip8((xhat_i * gamma_i) >> 6 + beta_i).
void layernorm_s8_row(std::span<const int8_t> x, std::span<const int8_t> gamma,
                      std::span<const int8_t> beta, std::span<int8_t> out);

}  // namespace decimate
