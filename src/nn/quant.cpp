#include "nn/quant.hpp"

#include <algorithm>
#include <cmath>

namespace decimate {

Requant make_requant(double scale, int64_t max_abs_acc) {
  DECIMATE_CHECK(scale > 0, "requant scale must be positive: " << scale);
  DECIMATE_CHECK(max_abs_acc > 0, "max_abs_acc must be positive");
  // Largest multiplier that keeps acc*mult inside int32.
  const auto mult_cap =
      static_cast<int64_t>((1ll << 31) - 1) / max_abs_acc;
  DECIMATE_CHECK(mult_cap >= 1, "accumulator range too large for requant");
  int shift = 0;
  // Grow shift while the rounded multiplier still fits the cap (and keep
  // shift < 31 so the arithmetic right shift is well-defined).
  while (shift < 30) {
    const double m_next = scale * static_cast<double>(1ll << (shift + 1));
    if (m_next > static_cast<double>(mult_cap)) break;
    ++shift;
  }
  auto mult = static_cast<int64_t>(std::llround(scale * static_cast<double>(1ll << shift)));
  mult = std::clamp<int64_t>(mult, 1, mult_cap);
  return Requant{static_cast<int32_t>(mult), shift};
}

float quantize_symmetric(std::span<const float> x, std::span<int8_t> out) {
  DECIMATE_CHECK(x.size() == out.size(), "size mismatch in quantize");
  float amax = 0.f;
  for (float v : x) amax = std::max(amax, std::abs(v));
  const float scale = (amax == 0.f) ? 1.f : amax / 127.f;
  for (size_t i = 0; i < x.size(); ++i) {
    const auto q =
        static_cast<int>(std::lround(static_cast<double>(x[i]) / scale));
    out[i] = static_cast<int8_t>(std::clamp(q, -127, 127));
  }
  return scale;
}

std::vector<int8_t> build_gelu_lut(float s_in, float s_out) {
  std::vector<int8_t> lut(256);
  for (int i = 0; i < 256; ++i) {
    const auto q = static_cast<int8_t>(i);  // reinterpret the byte
    const double x = q * static_cast<double>(s_in);
    const double g = 0.5 * x * (1.0 + std::erf(x / std::sqrt(2.0)));
    const auto o = static_cast<int>(std::lround(g / s_out));
    lut[static_cast<size_t>(i)] =
        static_cast<int8_t>(std::clamp(o, -128, 127));
  }
  return lut;
}

std::vector<uint8_t> build_exp_lut(float s_in) {
  std::vector<uint8_t> lut(256);
  for (int i = 0; i < 256; ++i) {
    // Index is the low byte of d = x - max, d in [-255, 0]. Bytes 0..127
    // encode d >= -127 ... wait: d in [-255, 0] wraps; treat the byte as
    // the low 8 bits of d and recover d = byte - 256 for byte > 0, d = 0
    // for byte == 0. Values of d below -255 cannot occur (int8 range).
    const int d = (i == 0) ? 0 : i - 256;
    const double e = std::exp(static_cast<double>(d) * s_in);
    const auto v = static_cast<int>(std::lround(255.0 * e));
    lut[static_cast<size_t>(i)] = static_cast<uint8_t>(std::clamp(v, 0, 255));
  }
  return lut;
}

uint32_t isqrt_u32(uint32_t v) {
  // Classic bit-by-bit integer square root; the layernorm kernel implements
  // the identical loop in assembly (16 iterations).
  uint32_t res = 0;
  uint32_t bit = 1u << 30;
  while (bit > v) bit >>= 2;
  while (bit != 0) {
    if (v >= res + bit) {
      v -= res + bit;
      res = (res >> 1) + bit;
    } else {
      res >>= 1;
    }
    bit >>= 2;
  }
  return res;
}

void softmax_s8_row(std::span<const int8_t> x,
                    std::span<const uint8_t> exp_lut, std::span<int8_t> out) {
  DECIMATE_CHECK(x.size() == out.size(), "softmax size mismatch");
  DECIMATE_CHECK(exp_lut.size() == 256, "exp lut must have 256 entries");
  DECIMATE_CHECK(!x.empty(), "softmax of empty row");
  int32_t m = -128;
  for (int8_t v : x) m = std::max<int32_t>(m, v);
  std::vector<uint8_t> e(x.size());
  uint32_t sum = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    const uint32_t idx = static_cast<uint32_t>(x[i] - m) & 0xFF;
    e[i] = exp_lut[idx];
    sum += e[i];
  }
  const uint32_t r = (127u << 16) / std::max<uint32_t>(sum, 1);
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = static_cast<int8_t>((e[i] * r) >> 16);
  }
}

void layernorm_s8_row(std::span<const int8_t> x, std::span<const int8_t> gamma,
                      std::span<const int8_t> beta, std::span<int8_t> out) {
  const auto L = static_cast<int32_t>(x.size());
  DECIMATE_CHECK(L > 0, "layernorm of empty row");
  DECIMATE_CHECK(gamma.size() == x.size() && beta.size() == x.size() &&
                     out.size() == x.size(),
                 "layernorm size mismatch");
  int32_t sum = 0;
  for (int8_t v : x) sum += v;
  const int32_t mean = sum / L;
  int32_t sumsq = 0;
  for (int8_t v : x) {
    const int32_t d = v - mean;
    sumsq += d * d;
  }
  const int32_t var = sumsq / L;
  const uint32_t stdq = isqrt_u32(static_cast<uint32_t>(var) << 8);
  const uint32_t r = (1u << 16) / std::max<uint32_t>(stdq, 1);
  for (size_t i = 0; i < x.size(); ++i) {
    const int32_t d = x[i] - mean;
    const int32_t xhat = (d * static_cast<int32_t>(r)) >> 8;  // ~16*d/std
    const int32_t y = ((xhat * gamma[i]) >> 6) + beta[i];
    out[i] = static_cast<int8_t>(clip_signed(y, 8));
  }
}

}  // namespace decimate
