#pragma once
// Reference implementations of every layer type, written to be bit-exact
// with the ISS kernels (same integer arithmetic, same requant sequence).
// Tests assert kernel output == reference output across parameter sweeps;
// the schedule executor uses the reference for numerics while taking
// cycles from the simulated kernels (see DESIGN.md, hybrid execution).

#include <span>

#include "nn/layer_geometry.hpp"
#include "nn/quant.hpp"
#include "nn/tensor.hpp"

namespace decimate {

/// Convolution, HWC activations {IY, IX, C}, weights {K, FY*FX*C} with rows
/// in (fy, fx, c) order, int32 bias {K}; zero padding. Output {OY, OX, K}.
Tensor8 conv2d_s8(const Tensor8& input, const Tensor8& weights,
                  const Tensor32& bias, const ConvGeom& g, const Requant& rq);

/// Ranged convolution: computes output rows [oy_s, oy_e) x channels
/// [k_s, k_e) into a preallocated {OY, OX, K} tensor, element-for-element
/// identical to conv2d_s8 — disjoint ranges may run on concurrent shards
/// and stitch bit-exactly. conv2d_s8 is the full-range wrapper.
void conv2d_s8_into(const Tensor8& input, const Tensor8& weights,
                    const Tensor32& bias, const ConvGeom& g,
                    const Requant& rq, int oy_s, int oy_e, int k_s, int k_e,
                    Tensor8& out);

/// Fully-connected / matmul: input {T, C}, weights {K, C}, bias {K};
/// output {T, K}.
Tensor8 fc_s8(const Tensor8& input, const Tensor8& weights,
              const Tensor32& bias, const Requant& rq);

/// Ranged FC: computes tokens [t_s, t_e) x output channels [k_s, k_e)
/// into a preallocated {T, K} tensor (see conv2d_s8_into).
void fc_s8_into(const Tensor8& input, const Tensor8& weights,
                const Tensor32& bias, const Requant& rq, int t_s, int t_e,
                int k_s, int k_e, Tensor8& out);

/// Partial FC accumulation over input features [c_s, c_e): returns the
/// int32 sums sum_c in[t][c] * w[k][c] for the whole {T, K} output, with
/// no bias and no requant. Summing the partials of a contiguous input-
/// feature partition in ascending range order on top of the bias
/// reproduces fc_s8's accumulator bit-for-bit (int32 two's-complement
/// addition over a regrouped, order-preserved sequence), so a reduction-
/// dimension shard split stays exact as long as requant runs once, after
/// the reduce.
Tensor32 fc_s32_partial(const Tensor8& input, const Tensor8& weights,
                        int c_s, int c_e);

/// Elementwise ReLU.
Tensor8 relu_s8(const Tensor8& x);

/// Requantized residual add: clip8(((a*ma)>>sa) + ((b*mb)>>sb)).
Tensor8 add_s8(const Tensor8& a, const Requant& ra, const Tensor8& b,
               const Requant& rb);

/// 2x2 stride-2 max pooling on {H, W, C}.
Tensor8 maxpool2x2_s8(const Tensor8& x);

/// Global average pooling on {H, W, C} -> {C}: requant(sum).
Tensor8 global_avgpool_s8(const Tensor8& x, const Requant& rq);

/// Elementwise LUT application (GELU or any unary int8 op).
Tensor8 lut_s8(const Tensor8& x, std::span<const int8_t> lut);

/// Row-wise integer softmax on {T, L}.
Tensor8 softmax_s8(const Tensor8& x, std::span<const uint8_t> exp_lut);

/// Row-wise integer layernorm on {T, L} with per-feature gamma/beta.
Tensor8 layernorm_s8(const Tensor8& x, const Tensor8& gamma,
                     const Tensor8& beta);

}  // namespace decimate
