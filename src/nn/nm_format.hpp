#pragma once
// The N:M sparse storage format of the paper (Fig. 1, Sec. 2.1/4.1/4.2):
// a values matrix of shape (rows, cols/M) holding the non-zero weights and
// a packed offsets array holding each NZ element's position inside its
// M-block, in ceil(log2(M)) bits rounded to a power of two:
//   M=2/4 -> 2-bit offsets, M=8/16 -> 4-bit offsets (M=2 only needs one
//   bit but shares the M=4 field width so pack/unpack stay uniform).
//
// Three layout variants, matching the three kernel families:
//  - kSw:            one offset per NZ (software-only kernels)
//  - kConvIsaDup:    every offset duplicated, because the xDecimate csr
//                    advances the block index once every two executions to
//                    serve the two im2col buffers (Sec. 4.1.3)
//  - kFcIsaInterleaved: offsets of two consecutive output channels
//                    interleaved (o0_ch0, o0_ch1, o1_ch0, o1_ch1, ...)
//                    so one xDecimate stream fills vB1/vB2 (Sec. 4.2.3,
//                    Fig. 6); rows must be even.
//
// Rows of both values and offsets are padded to 4-byte boundaries so the
// kernels can stream them with word loads.

#include <cstdint>
#include <vector>

#include "common/shared_buf.hpp"
#include "nn/tensor.hpp"

namespace decimate {

enum class NmLayout : uint8_t { kSw, kConvIsaDup, kFcIsaInterleaved };

const char* nm_layout_name(NmLayout layout);

struct NmPacked {
  int m = 0;             // block size (2, 4, 8, 16)
  int rows = 0;          // output channels K
  int cols = 0;          // dense row length (FY*FX*C or C)
  int nz_per_row = 0;    // cols / m (logical)
  int nz_padded = 0;     // nz_per_row rounded up to the kernels' unroll
                         // granularity (4; 8 for M=4 because one offsets
                         // word then covers two inner iterations); padding
                         // entries are {value 0, offset 0} and address the
                         // blocks just past the row — the launcher leaves
                         // M*padding slack after gather buffers.
  NmLayout layout = NmLayout::kSw;

  int values_row_bytes = 0;   // padded to 4
  int offsets_row_bytes = 0;  // padded to 4
  // Owned at pack time; registry-loaded plans hold read-only views into
  // the artifact's mmap'd weight section instead (common/shared_buf.hpp).
  SharedBuf<int8_t> values;    // rows * values_row_bytes
  SharedBuf<uint8_t> offsets;  // rows * offsets_row_bytes (pair-rows for
                               // the FC interleaved layout)

  int offset_bits() const { return m <= 4 ? 2 : 4; }
  int64_t values_bytes() const { return static_cast<int64_t>(values.size()); }
  int64_t offsets_bytes() const {
    return static_cast<int64_t>(offsets.size());
  }
  int64_t total_bytes() const { return values_bytes() + offsets_bytes(); }

  /// Unpack the offset of NZ element j in row r (before duplication /
  /// interleaving, i.e. the logical offset).
  int offset_at(int r, int j) const;

  /// Reconstruct the dense row-major matrix (for tests).
  Tensor8 to_dense() const;

  /// Extra gather-buffer slack bytes the kernels may read past a row
  /// (padding entries address blocks nz_per_row..nz_padded-1).
  int gather_slack_bytes() const { return (nz_padded - nz_per_row) * m; }
};

/// Pack a dense 1:M-sparse [rows x cols] matrix. Requires the matrix to
/// satisfy is_nm_sparse(w, rows, cols, 1, m); blocks with all zeros store
/// offset 0 and value 0.
NmPacked nm_pack(std::span<const int8_t> w, int rows, int cols, int m,
                 NmLayout layout);

// ---------------------------------------------------------------------------
// Size models for the format comparison experiment (E7): bytes needed to
// store a [rows x cols] int8 matrix with `nnz` non-zeros.
// ---------------------------------------------------------------------------
int64_t dense_bytes(int rows, int cols);
/// COO: value (1B) + row index (2B) + col index (2B) per NZ.
int64_t coo_bytes(int64_t nnz);
/// CSR: values (1B/NZ) + column indices (2B/NZ) + row pointers (4B each).
int64_t csr_bytes(int rows, int64_t nnz);
/// N:M: values + packed offsets (optionally duplicated, as in Conv-ISA).
int64_t nm_bytes(int rows, int cols, int m, bool duplicated_offsets);

}  // namespace decimate
