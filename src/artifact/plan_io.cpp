#include "artifact/plan_io.hpp"

#include <bit>
#include <cstring>

#include "common/serde.hpp"
#include "compiler/fingerprint.hpp"
#include "exec/tile_runner.hpp"
#include "nn/host_kernels.hpp"

namespace decimate::artifact {

// The weight blob is raw element bytes that SharedBuf views reinterpret
// in place; that is only the serialized little-endian encoding on a
// little-endian host.
static_assert(std::endian::native == std::endian::little,
              "plan artifacts alias multi-byte payloads in place");

namespace {

constexpr char kMagic[4] = {'D', 'P', 'L', 'A'};

enum Section : uint8_t {
  kGraphSection = 0,
  kPlanSection = 1,
  kLatencySection = 2,
  kWeightSection = 3,
  kSectionCount = 4,
};


// ---------------------------------------------------------------------------
// Weight blob: 64-byte-aligned payload entries referenced by (offset,
// count) pairs from the graph/plan sections.
// ---------------------------------------------------------------------------

class BlobWriter {
 public:
  /// Append `n` elements of `p`, 64-byte aligned; returns the offset
  /// relative to the weight-section start.
  template <typename T>
  uint64_t add(const T* p, size_t n) {
    w_.align(64);
    const uint64_t off = w_.pos();
    if (n != 0) w_.bytes(p, n * sizeof(T));
    return off;
  }

  serde::Writer& writer() { return w_; }

 private:
  serde::Writer w_;
};

/// One blob reference as stored in the structured sections.
template <typename T>
void write_ref(serde::Writer& w, BlobWriter& blob, const SharedBuf<T>& buf) {
  w.u64(blob.add(buf.data(), buf.size()));
  w.u64(buf.size());
}

/// Resolves blob references to SharedBuf views aliasing the mapping.
class BlobReader {
 public:
  BlobReader(std::span<const uint8_t> blob, std::shared_ptr<const void> keep,
             const std::string& what)
      : blob_(blob), keep_(std::move(keep)), what_(what) {}

  template <typename T>
  SharedBuf<T> read_ref(serde::Reader& r) const {
    const uint64_t off = r.u64();
    const uint64_t count = r.u64();
    if (count == 0) return {};
    DECIMATE_CHECK(off % 64 == 0,
                   what_ << ": misaligned weight-section payload at " << off);
    DECIMATE_CHECK(off <= blob_.size() &&
                       count * sizeof(T) <= blob_.size() - off,
                   what_ << ": weight-section payload [" << off << ", +"
                         << count * sizeof(T) << ") outside section of "
                         << blob_.size() << " bytes");
    return SharedBuf<T>::view(
        reinterpret_cast<const T*>(blob_.data() + off), count, keep_);
  }

 private:
  std::span<const uint8_t> blob_;
  std::shared_ptr<const void> keep_;
  const std::string& what_;
};

// ---------------------------------------------------------------------------
// Tensors. Small tensors (dense master weights, gamma/beta) are stored
// inline in the graph section and copied at load — Tensor owns its bytes.
// Gemm biases go through the weight section (the issue's bias payload).
// ---------------------------------------------------------------------------

template <typename T>
void write_tensor(serde::Writer& w, const Tensor<T>& t) {
  w.u32(static_cast<uint32_t>(t.shape().size()));
  for (const int d : t.shape()) w.i32(d);
  w.u64(static_cast<uint64_t>(t.numel()) * sizeof(T));
  if (t.numel() != 0) w.bytes(t.data(), static_cast<size_t>(t.numel()) * sizeof(T));
}

template <typename T>
Tensor<T> read_tensor(serde::Reader& r) {
  const uint32_t rank = r.u32();
  std::vector<int> shape(rank);
  for (auto& d : shape) d = r.i32();
  const uint64_t nbytes = r.u64();
  if (rank == 0) {
    DECIMATE_CHECK(nbytes == 0, r.what() << ": rank-0 tensor with payload");
    return {};
  }
  Tensor<T> t(std::move(shape));
  DECIMATE_CHECK(nbytes == static_cast<uint64_t>(t.numel()) * sizeof(T),
                 r.what() << ": tensor payload size mismatch");
  const auto b = r.take(static_cast<size_t>(nbytes));
  std::memcpy(t.data(), b.data(), b.size());
  return t;
}

/// Tensor with the payload in the weight blob: shape inline, bytes by
/// reference. Loaded tensors COPY the payload (Tensor owns storage);
/// only the SharedBuf arrays alias the mapping.
template <typename T>
void write_tensor_blob(serde::Writer& w, BlobWriter& blob,
                       const Tensor<T>& t) {
  w.u32(static_cast<uint32_t>(t.shape().size()));
  for (const int d : t.shape()) w.i32(d);
  w.u64(blob.add(t.data(), static_cast<size_t>(t.numel())));
  w.u64(static_cast<uint64_t>(t.numel()));
}

template <typename T>
Tensor<T> read_tensor_blob(serde::Reader& r, const BlobReader& blob) {
  const uint32_t rank = r.u32();
  std::vector<int> shape(rank);
  for (auto& d : shape) d = r.i32();
  const SharedBuf<T> payload = blob.read_ref<T>(r);
  if (rank == 0) {
    DECIMATE_CHECK(payload.size() == 0,
                   r.what() << ": rank-0 tensor with payload");
    return {};
  }
  Tensor<T> t(std::move(shape));
  DECIMATE_CHECK(payload.size() == static_cast<size_t>(t.numel()),
                 r.what() << ": tensor payload size mismatch");
  std::memcpy(t.data(), payload.data(), payload.size() * sizeof(T));
  return t;
}

template <typename T>
void write_byte_vec(serde::Writer& w, const std::vector<T>& v) {
  w.pod_vec(v);
}

template <typename T>
std::vector<T> read_byte_vec(serde::Reader& r) {
  static_assert(sizeof(T) == 1);
  const uint64_t n = r.u64();
  const auto b = r.take(static_cast<size_t>(n));
  std::vector<T> v(b.size());
  if (!v.empty()) std::memcpy(v.data(), b.data(), b.size());
  return v;
}

// ---------------------------------------------------------------------------
// Graph section
// ---------------------------------------------------------------------------

bool is_gemm(OpType op) {
  return op == OpType::kConv2d || op == OpType::kFc || op == OpType::kMatmul;
}

void write_node(serde::Writer& w, BlobWriter& blob, const Node& n) {
  w.i32(n.id);
  w.u8(static_cast<uint8_t>(n.op));
  w.str(n.name);
  w.u32(static_cast<uint32_t>(n.inputs.size()));
  for (const int i : n.inputs) w.i32(i);
  w.u32(static_cast<uint32_t>(n.out_shape.size()));
  for (const int d : n.out_shape) w.i32(d);
  w.i32(n.conv.ix);
  w.i32(n.conv.iy);
  w.i32(n.conv.c);
  w.i32(n.conv.k);
  w.i32(n.conv.fx);
  w.i32(n.conv.fy);
  w.i32(n.conv.stride);
  w.i32(n.conv.pad);
  w.i32(n.fc.tokens);
  w.i32(n.fc.c);
  w.i32(n.fc.k);
  w.i32(n.rq.mult);
  w.i32(n.rq.shift);
  w.i32(n.rq2.mult);
  w.i32(n.rq2.shift);
  write_tensor(w, n.weights);
  // gemm bias rides in the weight section next to the packed payloads
  w.boolean(is_gemm(n.op));
  if (is_gemm(n.op)) {
    write_tensor_blob(w, blob, n.bias);
  } else {
    write_tensor(w, n.bias);
  }
  write_tensor(w, n.gamma);
  write_tensor(w, n.beta);
  write_byte_vec(w, n.lut);
  write_byte_vec(w, n.exp_lut);
  w.boolean(n.transpose_b);
  w.i32(n.slice_begin);
  w.i32(n.slice_end);
}

Node read_node(serde::Reader& r, const BlobReader& blob) {
  Node n;
  n.id = r.i32();
  n.op = static_cast<OpType>(r.u8());
  n.name = r.str();
  n.inputs.resize(r.u32());
  for (auto& i : n.inputs) i = r.i32();
  n.out_shape.resize(r.u32());
  for (auto& d : n.out_shape) d = r.i32();
  n.conv.ix = r.i32();
  n.conv.iy = r.i32();
  n.conv.c = r.i32();
  n.conv.k = r.i32();
  n.conv.fx = r.i32();
  n.conv.fy = r.i32();
  n.conv.stride = r.i32();
  n.conv.pad = r.i32();
  n.fc.tokens = r.i32();
  n.fc.c = r.i32();
  n.fc.k = r.i32();
  n.rq.mult = r.i32();
  n.rq.shift = r.i32();
  n.rq2.mult = r.i32();
  n.rq2.shift = r.i32();
  n.weights = read_tensor<int8_t>(r);
  if (r.boolean()) {
    n.bias = read_tensor_blob<int32_t>(r, blob);
  } else {
    n.bias = read_tensor<int32_t>(r);
  }
  n.gamma = read_tensor<int8_t>(r);
  n.beta = read_tensor<int8_t>(r);
  n.lut = read_byte_vec<int8_t>(r);
  n.exp_lut = read_byte_vec<uint8_t>(r);
  n.transpose_b = r.boolean();
  n.slice_begin = r.i32();
  n.slice_end = r.i32();
  return n;
}

void write_graph(serde::Writer& w, BlobWriter& blob, const Graph& g) {
  w.u32(static_cast<uint32_t>(g.size()));
  for (const Node& n : g.nodes()) write_node(w, blob, n);
}

std::shared_ptr<Graph> read_graph(serde::Reader& r, const BlobReader& blob) {
  const uint32_t count = r.u32();
  DECIMATE_CHECK(count >= 1, r.what() << ": graph without an input node");
  const Node input = read_node(r, blob);
  DECIMATE_CHECK(input.id == 0 && input.op == OpType::kInput,
                 r.what() << ": node 0 is not the input placeholder");
  auto g = std::make_shared<Graph>(input.out_shape);
  for (uint32_t i = 1; i < count; ++i) {
    Node n = read_node(r, blob);
    DECIMATE_CHECK(n.id == static_cast<int>(i),
                   r.what() << ": node ids out of order");
    g->add(std::move(n));
  }
  return g;
}

// ---------------------------------------------------------------------------
// Plan section
// ---------------------------------------------------------------------------

void write_options(serde::Writer& w, const CompileOptions& o) {
  // exactly the plan-shaping fields options_fingerprint() folds in;
  // host_threads / verify_plans / latency_cache_path are runtime knobs of
  // the loading process, not plan content
  w.boolean(o.enable_sparse);
  w.boolean(o.enable_isa);
  w.boolean(o.pulpnn_dense);
  w.boolean(o.interleaved_weights);
  w.boolean(o.lockstep);
  w.boolean(o.xdec_forwarding);
  w.i32(o.num_cores);
  w.i32(o.batch);
  w.i32(o.num_clusters);
}

CompileOptions read_options(serde::Reader& r) {
  CompileOptions o;
  o.enable_sparse = r.boolean();
  o.enable_isa = r.boolean();
  o.pulpnn_dense = r.boolean();
  o.interleaved_weights = r.boolean();
  o.lockstep = r.boolean();
  o.xdec_forwarding = r.boolean();
  o.num_cores = r.i32();
  o.batch = r.i32();
  o.num_clusters = r.i32();
  return o;
}

void write_conv_tiles(serde::Writer& w, const ConvTilePlan& t) {
  w.i32(t.oy_t);
  w.i32(t.k_t);
  w.boolean(t.k_outer);
  w.i64(t.l1_bytes);
  w.i32(t.n_oy);
  w.i32(t.n_k);
  w.i64(t.dma_in_bytes);
  w.i64(t.dma_w_bytes);
  w.i64(t.dma_out_bytes);
  w.boolean(t.double_buffered);
}

ConvTilePlan read_conv_tiles(serde::Reader& r) {
  ConvTilePlan t;
  t.oy_t = r.i32();
  t.k_t = r.i32();
  t.k_outer = r.boolean();
  t.l1_bytes = r.i64();
  t.n_oy = r.i32();
  t.n_k = r.i32();
  t.dma_in_bytes = r.i64();
  t.dma_w_bytes = r.i64();
  t.dma_out_bytes = r.i64();
  t.double_buffered = r.boolean();
  return t;
}

void write_fc_tiles(serde::Writer& w, const FcTilePlan& t) {
  w.i32(t.tok_t);
  w.i32(t.k_t);
  w.boolean(t.k_outer);
  w.i64(t.l1_bytes);
  w.i32(t.n_tok);
  w.i32(t.n_k);
  w.i64(t.dma_in_bytes);
  w.i64(t.dma_w_bytes);
  w.i64(t.dma_out_bytes);
  w.boolean(t.double_buffered);
}

FcTilePlan read_fc_tiles(serde::Reader& r) {
  FcTilePlan t;
  t.tok_t = r.i32();
  t.k_t = r.i32();
  t.k_outer = r.boolean();
  t.l1_bytes = r.i64();
  t.n_tok = r.i32();
  t.n_k = r.i32();
  t.dma_in_bytes = r.i64();
  t.dma_w_bytes = r.i64();
  t.dma_out_bytes = r.i64();
  t.double_buffered = r.boolean();
  return t;
}

void write_report(serde::Writer& w, const LayerReport& rep) {
  w.str(rep.name);
  w.str(rep.impl);
  w.i64(rep.macs);
  w.u64(rep.compute_cycles);
  w.u64(rep.dma_cycles);
  w.u64(rep.weight_dma_cycles);
  w.u64(rep.total_cycles);
  w.i64(rep.weight_bytes);
  w.i32(rep.tiles);
  w.f64(rep.bits_per_weight);
}

LayerReport read_report(serde::Reader& r) {
  LayerReport rep;
  rep.name = r.str();
  rep.impl = r.str();
  rep.macs = r.i64();
  rep.compute_cycles = r.u64();
  rep.dma_cycles = r.u64();
  rep.weight_dma_cycles = r.u64();
  rep.total_cycles = r.u64();
  rep.weight_bytes = r.i64();
  rep.tiles = r.i32();
  rep.bits_per_weight = r.f64();
  return rep;
}

void write_step(serde::Writer& w, BlobWriter& blob, const PlanStep& s) {
  w.i32(s.node_id);
  w.u8(static_cast<uint8_t>(s.op));
  w.u8(static_cast<uint8_t>(s.choice.kind));
  w.i32(s.choice.m);
  write_conv_tiles(w, s.conv_tiles);
  write_fc_tiles(w, s.fc_tiles);
  w.boolean(s.has_packed);
  if (s.has_packed) {
    const NmPacked& p = s.packed;
    w.i32(p.m);
    w.i32(p.rows);
    w.i32(p.cols);
    w.i32(p.nz_per_row);
    w.i32(p.nz_padded);
    w.u8(static_cast<uint8_t>(p.layout));
    w.i32(p.values_row_bytes);
    w.i32(p.offsets_row_bytes);
    write_ref(w, blob, p.values);
    write_ref(w, blob, p.offsets);
  }
  w.u8(static_cast<uint8_t>(s.weight_region));
  // host dispatch: arrays by weight-section reference; the instance index
  // is host-specific and re-selected at load
  w.u8(static_cast<uint8_t>(s.host.impl));
  w.i32(s.host.m);
  w.i32(s.host.taps);
  write_ref(w, blob, s.host.tap_start);
  write_ref(w, blob, s.host.ci);
  write_ref(w, blob, s.host.tap_off);
  write_ref(w, blob, s.host.tap_fy);
  write_ref(w, blob, s.host.tap_fx);
  write_ref(w, blob, s.host.row_start);
  write_ref(w, blob, s.host.col);
  write_ref(w, blob, s.host.val);
  w.u64(s.tile_costs.size());
  for (const TileCost& tc : s.tile_costs) {
    w.u64(tc.compute);
    w.u64(tc.dma_in);
    w.u64(tc.dma_out);
  }
  w.boolean(s.pipelined);
  w.u64(s.serial_cycles);
  w.boolean(s.batch_fused);
  w.u8(static_cast<uint8_t>(s.shard_axis));
  w.u64(s.tiles_meta.size());
  for (const ShardTile& t : s.tiles_meta) {
    w.i32(t.a_s);
    w.i32(t.a_e);
    w.i32(t.k_s);
    w.i32(t.k_e);
    w.i64(t.out_bytes);
    w.u64(t.in_fetch_cycles);
    w.u64(t.w_fetch_cycles);
    w.boolean(t.loads_input);
    w.boolean(t.loads_weights);
  }
  write_report(w, s.report);
}

PlanStep read_step(serde::Reader& r, const BlobReader& blob,
                   const Graph& graph) {
  PlanStep s;
  s.node_id = r.i32();
  s.op = static_cast<OpType>(r.u8());
  s.choice.kind = static_cast<KernelKind>(r.u8());
  s.choice.m = r.i32();
  s.conv_tiles = read_conv_tiles(r);
  s.fc_tiles = read_fc_tiles(r);
  s.has_packed = r.boolean();
  if (s.has_packed) {
    NmPacked& p = s.packed;
    p.m = r.i32();
    p.rows = r.i32();
    p.cols = r.i32();
    p.nz_per_row = r.i32();
    p.nz_padded = r.i32();
    p.layout = static_cast<NmLayout>(r.u8());
    p.values_row_bytes = r.i32();
    p.offsets_row_bytes = r.i32();
    p.values = blob.read_ref<int8_t>(r);
    p.offsets = blob.read_ref<uint8_t>(r);
  }
  s.weight_region = static_cast<MemRegion>(r.u8());
  s.host.impl = static_cast<HostImpl>(r.u8());
  s.host.m = r.i32();
  s.host.taps = r.i32();
  s.host.tap_start = blob.read_ref<int32_t>(r);
  s.host.ci = blob.read_ref<uint16_t>(r);
  s.host.tap_off = blob.read_ref<int32_t>(r);
  s.host.tap_fy = blob.read_ref<int16_t>(r);
  s.host.tap_fx = blob.read_ref<int16_t>(r);
  s.host.row_start = blob.read_ref<int32_t>(r);
  s.host.col = blob.read_ref<int32_t>(r);
  s.host.val = blob.read_ref<int8_t>(r);
  s.tile_costs.resize(r.u64());
  for (TileCost& tc : s.tile_costs) {
    tc.compute = r.u64();
    tc.dma_in = r.u64();
    tc.dma_out = r.u64();
  }
  s.pipelined = r.boolean();
  s.serial_cycles = r.u64();
  s.batch_fused = r.boolean();
  s.shard_axis = static_cast<ShardAxis>(r.u8());
  s.tiles_meta.resize(r.u64());
  for (ShardTile& t : s.tiles_meta) {
    t.a_s = r.i32();
    t.a_e = r.i32();
    t.k_s = r.i32();
    t.k_e = r.i32();
    t.out_bytes = r.i64();
    t.in_fetch_cycles = r.u64();
    t.w_fetch_cycles = r.u64();
    t.loads_input = r.boolean();
    t.loads_weights = r.boolean();
  }
  s.report = read_report(r);

  // Rehydrate the two host-process bindings that are never serialized:
  // the (kind, M) kernel program (a static singleton) and the host
  // kernel-instance index (a position in THIS host's instance registry).
  if (is_gemm(s.op)) {
    s.program = &TileRunner::program_for(s.choice.kind, s.choice.m);
    const Node& node = graph.node(s.node_id);
    if (s.host.impl != HostImpl::kRefFallback) {
      if (s.op == OpType::kConv2d) {
        s.host.instance =
            host_select_instance_for_conv(s.host.impl, node.conv, s.host.m);
      } else {
        s.host.instance = host_select_instance_for_fc(
            s.host.impl, node.fc.tokens, node.fc.c, node.fc.k, s.host.m);
      }
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Header / sections
// ---------------------------------------------------------------------------

struct SectionEntry {
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc = 0;
};

struct Header {
  uint32_t version = 0;
  uint64_t plan_fp = 0;
  uint64_t graph_fp = 0;
  SectionEntry sections[kSectionCount];
};

/// Parse the fixed header (no content validation beyond magic/size).
Header read_header(std::span<const uint8_t> bytes, const std::string& what) {
  DECIMATE_CHECK(bytes.size() >= kHeaderBytes,
                 what << ": too short for a plan artifact ("
                      << bytes.size() << " bytes)");
  serde::Reader r(bytes, what);
  const auto magic = r.take(sizeof(kMagic));
  DECIMATE_CHECK(std::memcmp(magic.data(), kMagic, sizeof(kMagic)) == 0,
                 what << ": bad magic (not a plan artifact)");
  Header h;
  h.version = r.u32();
  h.plan_fp = r.u64();
  h.graph_fp = r.u64();
  const uint32_t count = r.u32();
  DECIMATE_CHECK(count == kSectionCount,
                 what << ": unexpected section count " << count);
  for (auto& s : h.sections) {
    r.u8();  // section id, positional
    s.offset = r.u64();
    s.size = r.u64();
    s.crc = r.u32();
  }
  return h;
}

std::span<const uint8_t> section_span(std::span<const uint8_t> bytes,
                                      const SectionEntry& s) {
  return bytes.subspan(static_cast<size_t>(s.offset),
                       static_cast<size_t>(s.size));
}

}  // namespace

std::vector<uint8_t> serialize_plan(const CompiledPlan& plan) {
  DECIMATE_CHECK(plan.graph != nullptr, "cannot serialize a plan without a graph");

  // sections are built against a shared weight blob, then assembled
  BlobWriter blob;
  serde::Writer graph_sec;
  write_graph(graph_sec, blob, *plan.graph);

  serde::Writer plan_sec;
  write_options(plan_sec, plan.options);
  plan_sec.u8(static_cast<uint8_t>(plan.weight_region));
  plan_sec.i64(plan.weight_bytes);
  plan_sec.i64(plan.total_macs);
  plan_sec.u64(plan.total_cycles);
  plan_sec.u32(static_cast<uint32_t>(plan.steps.size()));
  for (const PlanStep& s : plan.steps) write_step(plan_sec, blob, s);

  serde::Writer lat_sec;
  if (plan.latencies) {
    plan.latencies->append_records(lat_sec);
  } else {
    lat_sec.u64(0);
  }

  serde::Writer out;
  out.bytes(kMagic, sizeof(kMagic));
  out.u32(kFormatVersion);
  out.u64(plan_fingerprint(*plan.graph, plan.options));
  out.u64(graph_fingerprint(*plan.graph));
  out.u32(kSectionCount);
  size_t table_pos[kSectionCount];
  for (uint8_t id = 0; id < kSectionCount; ++id) {
    out.u8(id);
    table_pos[id] = out.pos();
    out.u64(0);  // offset, patched below
    out.u64(0);  // size
    out.u32(0);  // crc
  }
  const size_t header_crc_pos = out.pos();
  out.u32(0);  // header crc, patched last
  DECIMATE_CHECK(out.pos() == kHeaderBytes, "plan artifact header drifted");

  const serde::Writer* sections[kSectionCount] = {
      &graph_sec, &plan_sec, &lat_sec, &blob.writer()};
  for (uint8_t id = 0; id < kSectionCount; ++id) {
    // the weight section is 64-byte aligned in the file so its 64-byte-
    // aligned entries stay aligned through a (page-aligned) mmap; other
    // sections get the same treatment for free
    out.align(64);
    const uint64_t off = out.pos();
    const auto& buf = sections[id]->buffer();
    out.bytes(buf.data(), buf.size());
    out.patch_u64(table_pos[id], off);
    out.patch_u64(table_pos[id] + 8, buf.size());
    out.patch_u32(table_pos[id] + 16, serde::crc32(buf));
  }
  out.patch_u32(header_crc_pos,
                serde::crc32(std::span<const uint8_t>(out.buffer())
                                 .first(header_crc_pos)));
  return out.take();
}

ArtifactInfo peek_info(std::span<const uint8_t> bytes,
                       const std::string& what) {
  const Header h = read_header(bytes, what);
  ArtifactInfo info;
  info.version = h.version;
  info.plan_fingerprint = h.plan_fp;
  info.graph_fingerprint = h.graph_fp;
  info.weight_section_bytes = h.sections[kWeightSection].size;
  info.total_bytes = bytes.size();
  return info;
}

VerifyReport verify_artifact(std::span<const uint8_t> bytes,
                             const std::string& what) {
  VerifyReport report;
  auto fail = [&](const char* check, std::string msg) {
    report.findings.push_back(
        {VerifySeverity::kError, check, 0, std::move(msg)});
  };

  ++report.checks_run;  // artifact.magic
  if (bytes.size() < kHeaderBytes) {
    fail("artifact.magic", "file too short for a plan artifact (" +
                               std::to_string(bytes.size()) + " bytes)");
    return report;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    fail("artifact.magic", "bad magic: not a plan artifact");
    return report;
  }
  const Header h = read_header(bytes, what);
  if (h.version != kFormatVersion) {
    fail("artifact.magic",
         "format version " + std::to_string(h.version) + ", this build reads " +
             std::to_string(kFormatVersion));
    return report;  // a different version's table cannot be trusted
  }

  // artifact.crc over the header itself before trusting the table
  ++report.checks_run;
  const size_t header_crc_pos = kHeaderBytes - 4;
  serde::Reader crc_r(bytes.subspan(header_crc_pos, 4), what);
  if (serde::crc32(bytes.first(header_crc_pos)) != crc_r.u32()) {
    fail("artifact.crc", "header CRC mismatch");
    return report;
  }

  ++report.checks_run;  // artifact.bounds
  uint64_t prev_end = kHeaderBytes;
  bool bounds_ok = true;
  for (const SectionEntry& s : h.sections) {
    if (s.offset < prev_end || s.offset > bytes.size() ||
        s.size > bytes.size() - s.offset) {
      fail("artifact.bounds",
           "section [" + std::to_string(s.offset) + ", +" +
               std::to_string(s.size) + ") outside file of " +
               std::to_string(bytes.size()) + " bytes or overlapping");
      bounds_ok = false;
      break;
    }
    prev_end = s.offset + s.size;
  }
  if (!bounds_ok) return report;

  // per-section CRCs; the weight-section CRC is what catches bit flips in
  // the mmap-shared payload
  for (const SectionEntry& s : h.sections) {
    ++report.checks_run;
    if (serde::crc32(section_span(bytes, s)) != s.crc) {
      fail("artifact.crc",
           "section at offset " + std::to_string(s.offset) +
               " CRC mismatch (corrupt artifact)");
    }
  }
  return report;
}

namespace {

CompiledPlan load_plan_impl(std::span<const uint8_t> bytes,
                            std::shared_ptr<const void> keepalive,
                            const std::string& what,
                            std::shared_ptr<TileLatencyCache> latencies) {
  VerifyReport admission = verify_artifact(bytes, what);
  if (!admission.ok()) throw VerifyError(std::move(admission));
  const Header h = read_header(bytes, what);

  const auto weights = section_span(bytes, h.sections[kWeightSection]);
  const BlobReader blob(weights, keepalive, what);

  serde::Reader graph_r(section_span(bytes, h.sections[kGraphSection]),
                        what + " [graph section]");
  std::shared_ptr<Graph> graph = read_graph(graph_r, blob);

  serde::Reader plan_r(section_span(bytes, h.sections[kPlanSection]),
                       what + " [plan section]");
  CompiledPlan plan;
  plan.options = read_options(plan_r);
  plan.weight_region = static_cast<MemRegion>(plan_r.u8());
  plan.weight_bytes = plan_r.i64();
  plan.total_macs = plan_r.i64();
  plan.total_cycles = plan_r.u64();
  const uint32_t steps = plan_r.u32();
  plan.steps.reserve(steps);
  for (uint32_t i = 0; i < steps; ++i) {
    plan.steps.push_back(read_step(plan_r, blob, *graph));
  }
  plan.owned_graph = graph;
  plan.graph = graph.get();
  plan.latencies = latencies ? std::move(latencies)
                             : std::make_shared<TileLatencyCache>();
  serde::Reader lat_r(section_span(bytes, h.sections[kLatencySection]),
                      what + " [latency section]");
  plan.latencies->merge_records(lat_r);

  // artifact.fingerprint: the header's identity must re-derive from the
  // rehydrated content — a mismatch means the artifact lies about what it
  // contains (or the serializer round-trip broke), which would poison
  // every fingerprint-keyed cache downstream.
  ++admission.checks_run;
  const uint64_t graph_fp = graph_fingerprint(*graph);
  const uint64_t plan_fp = plan_fingerprint_from(graph_fp, plan.options);
  if (graph_fp != h.graph_fp || plan_fp != h.plan_fp) {
    admission.findings.push_back(
        {VerifySeverity::kError, "artifact.fingerprint", 0,
         what + ": rehydrated fingerprints do not match the header"});
    throw VerifyError(std::move(admission));
  }

  // the PR-7 static verifier is the final admission gate, exactly as for
  // freshly compiled plans entering the serving PlanStore
  VerifyReport verdict = verify_plan(plan);
  if (!verdict.ok()) throw VerifyError(std::move(verdict));
  return plan;
}

}  // namespace

CompiledPlan load_plan(std::shared_ptr<MappedFile> file,
                       std::shared_ptr<TileLatencyCache> latencies) {
  DECIMATE_CHECK(file != nullptr, "load_plan: null mapping");
  const auto bytes = file->bytes();
  const std::string what = file->path();
  return load_plan_impl(bytes, file, what, std::move(latencies));
}

CompiledPlan load_plan_from_bytes(std::span<const uint8_t> bytes,
                                  const std::string& what,
                                  std::shared_ptr<TileLatencyCache> latencies) {
  // re-home into 64-byte-aligned storage so payload views keep the
  // alignment the format guarantees through a page-aligned mmap
  auto aligned = std::make_shared<AlignedVec<uint8_t>>(bytes.begin(),
                                                       bytes.end());
  const std::span<const uint8_t> span(*aligned);
  return load_plan_impl(span, aligned, what, std::move(latencies));
}

}  // namespace decimate::artifact
