#pragma once
// MappedFile: a read-only memory mapping of a plan artifact.
//
// The registry's zero-copy load path: the whole `.plan` file is mapped
// once and every SharedBuf view in the rehydrated plan aliases the
// mapping (keep-alive = the shared_ptr<MappedFile>), so N server
// processes that load the same artifact share ONE physical copy of the
// packed-weight section — the page cache backs all of them, and no
// process pays a private decode/copy for the payload arrays.
//
// On non-POSIX hosts (no mmap) the file is read into an owned heap
// buffer instead: same interface, same lifetime semantics, just without
// the cross-process sharing.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace decimate {

class MappedFile {
 public:
  /// Map `path` read-only. Returns nullptr when the file does not exist;
  /// throws decimate::Error on an open/map failure of an existing file.
  static std::shared_ptr<MappedFile> open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  std::span<const uint8_t> bytes() const { return {data_, size_}; }
  const std::string& path() const { return path_; }
  /// True when the bytes are a real mmap (false: heap fallback).
  bool is_mapped() const { return mapped_; }

 private:
  MappedFile() = default;

  std::string path_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::unique_ptr<uint8_t[]> heap_;  // non-POSIX fallback storage
};

}  // namespace decimate
