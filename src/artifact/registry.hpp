#pragma once
// PlanRegistry: a directory of serialized CompiledPlans, keyed by plan
// fingerprint — the deployment artifact store.
//
// Layout on disk:
//   <dir>/<%016x fingerprint>.plan   one artifact per plan identity
//   <dir>/index.tsv                  human-greppable index (fingerprint,
//                                    bytes, weight bytes), rebuilt on
//                                    every publish
//   <dir>/latencies.bin              optional shared TileLatencyCache
//                                    warm file (written by save_latencies)
//
// Publishing is atomic (write temp + rename), so concurrent publishers
// and a crashed process never leave a torn artifact: readers see either
// nothing or complete bytes. Loading mmaps the artifact read-only and
// rehydrates through the admission gate (artifact.* structural checks +
// the PR-7 static verifier); every SharedBuf payload in the returned
// plan aliases the mapping, so N processes serving the same registry
// share one physical copy of each plan's weight section.
//
// Observability: counters artifact.{hits,misses,publishes,
// verify_rejects}, histogram artifact.load_ns, spans registry.load /
// registry.mmap / registry.verify / registry.publish (Cat::kArtifact).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "artifact/plan_io.hpp"
#include "exec/plan.hpp"

namespace decimate {

/// One parsed index.tsv line (see index_entries()).
struct IndexEntry {
  uint64_t fingerprint = 0;
  uint64_t total_bytes = 0;
  uint64_t weight_bytes = 0;
  uint64_t version = 0;
};

class PlanRegistry {
 public:
  /// Open (creating the directory if needed). `latencies`: the cache
  /// loaded plans are costed with; artifact latency sections merge into
  /// it, so serve-time shard planning over loaded plans is ISS-free.
  /// A fresh cache is created when omitted.
  ///
  /// Startup hygiene: sweeps stale `*.tmp` files a crashed publisher left
  /// behind (a temp whose writer pid is dead, or an un-suffixed temp old
  /// enough that no writer can still hold it) — counted in
  /// artifact.stale_tmp_swept — and parses index.tsv tolerantly, so a
  /// torn index never fails the open (see index_entries()).
  explicit PlanRegistry(std::string dir,
                        std::shared_ptr<TileLatencyCache> latencies = nullptr);

  /// Serialize and atomically publish a plan under its fingerprint.
  /// Re-publishing an identical fingerprint overwrites (the bytes are a
  /// pure function of the fingerprint, so this is idempotent). Returns
  /// the artifact path.
  std::string publish(const CompiledPlan& plan);

  /// Load the plan with this fingerprint through the admission gate.
  /// Returns nullopt when no such artifact exists; throws VerifyError on
  /// a corrupt/forged artifact, decimate::Error on I/O failure.
  std::optional<CompiledPlan> load(uint64_t fingerprint);

  /// Whether an artifact for this fingerprint exists on disk.
  bool contains(uint64_t fingerprint) const;

  /// Header info of every artifact in the directory (sorted by path).
  std::vector<artifact::ArtifactInfo> list() const;

  /// Parse index.tsv, skipping comments and corrupt/truncated lines
  /// (each skipped data line increments artifact.index_skipped_lines
  /// rather than throwing — the index is a greppable convenience, the
  /// artifacts themselves are the source of truth). Empty when no index
  /// exists yet.
  std::vector<IndexEntry> index_entries() const;

  /// The artifact path a fingerprint maps to (whether or not it exists).
  std::string path_for(uint64_t fingerprint) const;

  const std::string& dir() const { return dir_; }
  const std::string& latency_file() const { return latency_file_; }
  std::shared_ptr<TileLatencyCache> shared_latencies() const {
    return latencies_;
  }

 private:
  void rewrite_index() const;

  std::string dir_;
  std::string latency_file_;
  std::shared_ptr<TileLatencyCache> latencies_;
};

}  // namespace decimate
