#pragma once
// Versioned binary serialization of CompiledPlans — the registry's wire
// format (`.plan` files).
//
// Layout: a fixed header (magic, format version, plan/graph fingerprints,
// section table, header CRC) followed by four sections:
//
//   graph    the full Graph: topology, geometries, requant constants and
//            every parameter tensor — enough to rehydrate a Graph whose
//            graph_fingerprint() equals the original's bit for bit. Gemm
//            biases are stored by reference into the weight section.
//   plan     CompileOptions (the nine plan-shaping fields) and every
//            PlanStep: kernel choice, tile plans, tile costs, shard
//            metadata, layer reports, and weight-section references for
//            the NmPacked payloads and host-dispatch gather arrays.
//   latency  the compile-time TileLatencyCache records
//            (TileLatencyCache::append_records), so a loaded plan can be
//            sharded (kFcC tile measurement) without an ISS in the
//            serving process.
//   weights  the payload blob: NmPacked values/offsets, the host gather
//            arrays, and gemm biases, each 64-byte aligned. This is the
//            section N server processes share physically: load_plan
//            builds SharedBuf views that alias the file mapping instead
//            of copying.
//
// Every structured field is explicit-width little-endian (common/serde);
// the weight blob is raw little-endian element bytes (views reinterpret
// them in place, so the format requires a little-endian host — asserted
// at compile time).
//
// Admission: verify_artifact() runs the structural artifact.* checks
// (magic/version, section bounds, per-section CRCs) without rehydrating;
// load_plan() runs them, rehydrates, re-derives both fingerprints from
// the rehydrated content (artifact.fingerprint), and finally runs the
// PR-7 static verifier (verify_plan) — a corrupt or forged artifact is
// rejected before anything executes from it.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "artifact/mapped_file.hpp"
#include "exec/plan.hpp"
#include "verify/verify.hpp"

namespace decimate::artifact {

constexpr uint32_t kFormatVersion = 1;

/// Fixed header size: magic + version + plan/graph fingerprints +
/// 4-entry section table + header CRC (the last 4 bytes of the header).
/// Exposed so tests can tamper with specific header fields.
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8 + 4 + 4 * (1 + 8 + 8 + 4) + 4;

/// Parsed header of a `.plan` byte buffer.
struct ArtifactInfo {
  uint32_t version = 0;
  uint64_t plan_fingerprint = 0;
  uint64_t graph_fingerprint = 0;
  uint64_t weight_section_bytes = 0;  // the mmap-shared payload blob
  uint64_t total_bytes = 0;
};

/// Serialize a plan to the `.plan` format. The result is self-contained:
/// load_plan() over these bytes rebuilds a plan that runs bit-identically
/// with no compiler and no ISS in the loading process.
std::vector<uint8_t> serialize_plan(const CompiledPlan& plan);

/// Parse the fixed header. Throws decimate::Error on a malformed one
/// (too short, bad magic); does not validate section contents.
ArtifactInfo peek_info(std::span<const uint8_t> bytes,
                       const std::string& what);

/// Structural admission checks, reported under stable artifact.* ids:
///   artifact.magic    magic/size/version legality
///   artifact.bounds   section table within the file, no overlap
///   artifact.crc      header and per-section CRC32 (the weight-section
///                     CRC catches bit flips in the shared payload)
/// Never rehydrates; safe on untrusted bytes.
VerifyReport verify_artifact(std::span<const uint8_t> bytes,
                             const std::string& what);

/// Rehydrate a plan from a mapped artifact. SharedBuf payloads (NmPacked
/// values/offsets, host gather arrays) alias the mapping — `file` is
/// kept alive by the returned plan; the plan owns its rehydrated graph
/// (CompiledPlan::owned_graph). Latency records are merged into
/// `latencies` (a fresh cache when null) and the plan costed with it.
/// Admission gate: runs verify_artifact, the artifact.fingerprint
/// re-derivation, and verify_plan; throws VerifyError on any error-level
/// finding.
CompiledPlan load_plan(std::shared_ptr<MappedFile> file,
                       std::shared_ptr<TileLatencyCache> latencies = nullptr);

/// load_plan from a heap buffer (tests, non-mmap callers): same checks;
/// the bytes are copied into 64-byte-aligned storage owned by the
/// returned plan's payload views.
CompiledPlan load_plan_from_bytes(std::span<const uint8_t> bytes,
                                  const std::string& what,
                                  std::shared_ptr<TileLatencyCache> latencies =
                                      nullptr);

}  // namespace decimate::artifact
