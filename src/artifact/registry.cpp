#include "artifact/registry.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/serde.hpp"
#include "compiler/fingerprint.hpp"
#include "serve/fault.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace decimate {

namespace fs = std::filesystem;

namespace {

std::string hex16(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return s;
}

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// A live writer's temp (serde::write_file_atomic names it
// "<target>.tmp.<pid>" where pids are available, "<target>.tmp"
// otherwise) must survive the sweep; only a crashed publisher's leavings
// go. With a pid suffix that's decidable (is the pid alive?); without
// one, fall back to age — no atomic write stays in flight for a minute.
bool tmp_is_stale(const fs::path& p) {
  const std::string name = p.filename().string();
  const size_t tag = name.rfind(".tmp.");
  if (tag != std::string::npos) {
    const std::string pid_s = name.substr(tag + 5);
    errno = 0;
    char* end = nullptr;
    const unsigned long pid = std::strtoul(pid_s.c_str(), &end, 10);
    if (errno == 0 && end != nullptr && *end == '\0' && !pid_s.empty()) {
#if defined(__unix__) || defined(__APPLE__)
      if (pid == static_cast<unsigned long>(::getpid())) return false;
      return !fs::exists(fs::path("/proc") / pid_s);
#endif
    }
    // unparsable pid (or no /proc): fall through to the age check
  }
  std::error_code ec;
  const auto mtime = fs::last_write_time(p, ec);
  if (ec) return false;  // raced with the writer's rename — leave it
  const auto age = fs::file_time_type::clock::now() - mtime;
  return age > std::chrono::seconds(60);
}

}  // namespace

PlanRegistry::PlanRegistry(std::string dir,
                           std::shared_ptr<TileLatencyCache> latencies)
    : dir_(std::move(dir)),
      latencies_(latencies ? std::move(latencies)
                           : std::make_shared<TileLatencyCache>()) {
  fs::create_directories(dir_);
  latency_file_ = (fs::path(dir_) / "latencies.bin").string();
  // Startup hygiene, half 1: sweep temp files a crashed publish left
  // behind. Readers never see temps (publish is write-temp + rename), so
  // the only cost of a leak is disk — but a registry dir that grows
  // garbage forever is how "atomic publish" quietly stops being trusted.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const bool is_tmp = name.size() >= 4 &&
                        (name.rfind(".tmp") == name.size() - 4 ||
                         name.rfind(".tmp.") != std::string::npos);
    if (!is_tmp || !tmp_is_stale(entry.path())) continue;
    std::error_code ec;
    fs::remove(entry.path(), ec);
    if (!ec) {
      metrics::registry().counter("artifact.stale_tmp_swept").inc();
      trace::instant(trace::Cat::kArtifact, "registry.sweep_stale_tmp");
    }
  }
  // Startup hygiene, half 2: a torn index.tsv must not fail the open;
  // parsing it here exercises the tolerant path (and its skip counter)
  // even for callers that never read the index themselves.
  index_entries();
}

std::string PlanRegistry::path_for(uint64_t fingerprint) const {
  return (fs::path(dir_) / (hex16(fingerprint) + ".plan")).string();
}

bool PlanRegistry::contains(uint64_t fingerprint) const {
  return fs::exists(path_for(fingerprint));
}

std::string PlanRegistry::publish(const CompiledPlan& plan) {
  DECIMATE_CHECK(plan.graph != nullptr, "cannot publish a plan without a graph");
  trace::TraceScope span(trace::Cat::kArtifact, "registry.publish");
  const uint64_t fp = plan_fingerprint(*plan.graph, plan.options);
  const std::string path = path_for(fp);
  const std::vector<uint8_t> bytes = artifact::serialize_plan(plan);
  span.arg("bytes", static_cast<int64_t>(bytes.size()));
  serde::write_file_atomic(path, bytes);
  metrics::registry().counter("artifact.publishes").inc();
  rewrite_index();
  return path;
}

std::optional<CompiledPlan> PlanRegistry::load(uint64_t fingerprint) {
  const uint64_t t0 = now_ns();
  trace::TraceScope span(trace::Cat::kArtifact, "registry.load");
  const std::string path = path_for(fingerprint);
  std::shared_ptr<MappedFile> file;
  {
    trace::TraceScope map_span(trace::Cat::kArtifact, "registry.mmap");
    file = MappedFile::open(path);
  }
  if (file == nullptr) {
    metrics::registry().counter("artifact.misses").inc();
    return std::nullopt;
  }
  span.arg("bytes", static_cast<int64_t>(file->size()));
  // Chaos hook: kException models an I/O fault mid-load; kBitFlip
  // corrupts a heap COPY of the mapped bytes (the disk artifact and the
  // shared mapping stay intact) and pushes the copy through the same
  // admission gate a real corruption would face — the gate, not the
  // injector, is what must catch it.
  fault::Fired fired{};
  if (fault::FaultInjector* inj = fault::FaultInjector::installed()) {
    fired = inj->fire(fault::Site::kRegistryLoad);
  }
  try {
    // load_plan runs the whole admission gate (artifact.* structural
    // checks, fingerprint re-derivation, the static plan verifier); the
    // verify span wraps it so trace consumers see admission cost
    // separately from the mmap
    trace::TraceScope verify_span(trace::Cat::kArtifact, "registry.verify");
    CompiledPlan plan = [&] {
      if (fired.kind == fault::Kind::kBitFlip) {
        std::vector<uint8_t> corrupt(file->bytes().begin(),
                                     file->bytes().end());
        fault::FaultInjector::installed()->flip_bit(corrupt, fired.seq);
        return artifact::load_plan_from_bytes(corrupt, path, latencies_);
      }
      return artifact::load_plan(std::move(file), latencies_);
    }();
    metrics::registry().counter("artifact.hits").inc();
    metrics::registry().histogram("artifact.load_ns").observe(now_ns() - t0);
    return plan;
  } catch (const VerifyError&) {
    metrics::registry().counter("artifact.verify_rejects").inc();
    throw;
  }
}

std::vector<artifact::ArtifactInfo> PlanRegistry::list() const {
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".plan") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<artifact::ArtifactInfo> out;
  out.reserve(paths.size());
  for (const auto& p : paths) {
    // mmap rather than read: only the header page is faulted in
    const auto file = MappedFile::open(p);
    if (file == nullptr) continue;  // raced with a delete
    out.push_back(artifact::peek_info(file->bytes(), p));
  }
  return out;
}

std::vector<IndexEntry> PlanRegistry::index_entries() const {
  std::vector<IndexEntry> out;
  std::ifstream in(fs::path(dir_) / "index.tsv");
  if (!in.good()) return out;  // no index yet: an empty registry is fine
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // four tab-separated fields: hex fingerprint, bytes, weight bytes,
    // version. Anything torn/truncated/garbled skips with a metric — the
    // index is advisory, the .plan files are authoritative.
    IndexEntry e;
    std::istringstream fields(line);
    std::string fp_hex;
    bool ok = static_cast<bool>(fields >> fp_hex >> e.total_bytes >>
                                e.weight_bytes >> e.version);
    if (ok && fp_hex.size() == 16) {
      errno = 0;
      char* end = nullptr;
      e.fingerprint = std::strtoull(fp_hex.c_str(), &end, 16);
      ok = errno == 0 && end != nullptr && *end == '\0';
    } else {
      ok = false;
    }
    if (!ok) {
      metrics::registry().counter("artifact.index_skipped_lines").inc();
      continue;
    }
    out.push_back(e);
  }
  return out;
}

void PlanRegistry::rewrite_index() const {
  std::ostringstream idx;
  idx << "# fingerprint\tbytes\tweight_bytes\tversion\n";
  for (const auto& info : list()) {
    idx << hex16(info.plan_fingerprint) << '\t' << info.total_bytes << '\t'
        << info.weight_section_bytes << '\t' << info.version << '\n';
  }
  const std::string s = idx.str();
  serde::write_file_atomic(
      (fs::path(dir_) / "index.tsv").string(),
      {reinterpret_cast<const uint8_t*>(s.data()), s.size()});
}

}  // namespace decimate
