#include "artifact/registry.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>

#include "common/serde.hpp"
#include "compiler/fingerprint.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace decimate {

namespace fs = std::filesystem;

namespace {

std::string hex16(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return s;
}

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

PlanRegistry::PlanRegistry(std::string dir,
                           std::shared_ptr<TileLatencyCache> latencies)
    : dir_(std::move(dir)),
      latencies_(latencies ? std::move(latencies)
                           : std::make_shared<TileLatencyCache>()) {
  fs::create_directories(dir_);
  latency_file_ = (fs::path(dir_) / "latencies.bin").string();
}

std::string PlanRegistry::path_for(uint64_t fingerprint) const {
  return (fs::path(dir_) / (hex16(fingerprint) + ".plan")).string();
}

bool PlanRegistry::contains(uint64_t fingerprint) const {
  return fs::exists(path_for(fingerprint));
}

std::string PlanRegistry::publish(const CompiledPlan& plan) {
  DECIMATE_CHECK(plan.graph != nullptr, "cannot publish a plan without a graph");
  trace::TraceScope span(trace::Cat::kArtifact, "registry.publish");
  const uint64_t fp = plan_fingerprint(*plan.graph, plan.options);
  const std::string path = path_for(fp);
  const std::vector<uint8_t> bytes = artifact::serialize_plan(plan);
  span.arg("bytes", static_cast<int64_t>(bytes.size()));
  serde::write_file_atomic(path, bytes);
  metrics::registry().counter("artifact.publishes").inc();
  rewrite_index();
  return path;
}

std::optional<CompiledPlan> PlanRegistry::load(uint64_t fingerprint) {
  const uint64_t t0 = now_ns();
  trace::TraceScope span(trace::Cat::kArtifact, "registry.load");
  std::shared_ptr<MappedFile> file;
  {
    trace::TraceScope map_span(trace::Cat::kArtifact, "registry.mmap");
    file = MappedFile::open(path_for(fingerprint));
  }
  if (file == nullptr) {
    metrics::registry().counter("artifact.misses").inc();
    return std::nullopt;
  }
  span.arg("bytes", static_cast<int64_t>(file->size()));
  try {
    // load_plan runs the whole admission gate (artifact.* structural
    // checks, fingerprint re-derivation, the static plan verifier); the
    // verify span wraps it so trace consumers see admission cost
    // separately from the mmap
    trace::TraceScope verify_span(trace::Cat::kArtifact, "registry.verify");
    CompiledPlan plan = artifact::load_plan(std::move(file), latencies_);
    metrics::registry().counter("artifact.hits").inc();
    metrics::registry().histogram("artifact.load_ns").observe(now_ns() - t0);
    return plan;
  } catch (const VerifyError&) {
    metrics::registry().counter("artifact.verify_rejects").inc();
    throw;
  }
}

std::vector<artifact::ArtifactInfo> PlanRegistry::list() const {
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".plan") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<artifact::ArtifactInfo> out;
  out.reserve(paths.size());
  for (const auto& p : paths) {
    // mmap rather than read: only the header page is faulted in
    const auto file = MappedFile::open(p);
    if (file == nullptr) continue;  // raced with a delete
    out.push_back(artifact::peek_info(file->bytes(), p));
  }
  return out;
}

void PlanRegistry::rewrite_index() const {
  std::ostringstream idx;
  idx << "# fingerprint\tbytes\tweight_bytes\tversion\n";
  for (const auto& info : list()) {
    idx << hex16(info.plan_fingerprint) << '\t' << info.total_bytes << '\t'
        << info.weight_section_bytes << '\t' << info.version << '\n';
  }
  const std::string s = idx.str();
  serde::write_file_atomic(
      (fs::path(dir_) / "index.tsv").string(),
      {reinterpret_cast<const uint8_t*>(s.data()), s.size()});
}

}  // namespace decimate
