#include "artifact/mapped_file.hpp"

#include <cstring>
#include <fstream>

#include "common/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DECIMATE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace decimate {

std::shared_ptr<MappedFile> MappedFile::open(const std::string& path) {
  // make_shared needs a public ctor; the private-ctor handshake
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->path_ = path;

#ifdef DECIMATE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return nullptr;
    DECIMATE_FAIL("cannot open " << path << ": " << std::strerror(errno));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    DECIMATE_FAIL("cannot stat " << path << ": " << std::strerror(errno));
  }
  file->size_ = static_cast<size_t>(st.st_size);
  if (file->size_ == 0) {
    // mmap of length 0 is EINVAL; an empty artifact is simply invalid and
    // the parser will reject it, so hand back a valid empty span.
    ::close(fd);
    file->data_ = reinterpret_cast<const uint8_t*>("");
    return file;
  }
  void* p = ::mmap(nullptr, file->size_, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the file
  DECIMATE_CHECK(p != MAP_FAILED,
                 "cannot mmap " << path << ": " << std::strerror(errno));
  file->data_ = static_cast<const uint8_t*>(p);
  file->mapped_ = true;
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return nullptr;
  const auto size = in.tellg();
  DECIMATE_CHECK(size >= 0, "cannot size " << path);
  file->size_ = static_cast<size_t>(size);
  file->heap_ = std::make_unique<uint8_t[]>(file->size_ + 1);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(file->heap_.get()),
          static_cast<std::streamsize>(file->size_));
  DECIMATE_CHECK(in.good() || file->size_ == 0, "cannot read " << path);
  file->data_ = file->heap_.get();
#endif
  return file;
}

MappedFile::~MappedFile() {
#ifdef DECIMATE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
}

}  // namespace decimate
