// E10 — ablation of the interleaved weight+index memory layout (Sec. 4.4,
// feature 3): storing the NZ values, their offsets and the bias so one DMA
// transaction moves them per weight tile, versus separate transfers paying
// one startup each. Gains concentrate where weight tiles are many and come
// from L3 (large models), and in the un-overlapped DMA budget; when compute
// fully hides the DMA, the end-to-end effect shrinks (also reported).

#include "bench_util.hpp"

using namespace decimate;
using namespace decimate::bench;

int main() {
  std::cout << "=== Ablation: interleaved weight+index DMA (Sec. 4.4) ===\n\n";
  Table t({"layer", "M", "DMA cyc inter", "DMA cyc sep", "DMA gain",
           "total gain"});
  auto row = [&](const char* name, const NetworkRun& a, const NetworkRun& b,
                 int m) {
    uint64_t dma_a = 0, dma_b = 0;
    for (const auto& l : a.layers) dma_a += l.dma_cycles;
    for (const auto& l : b.layers) dma_b += l.dma_cycles;
    t.add_row({name, std::to_string(m), std::to_string(dma_a),
               std::to_string(dma_b), speedup(dma_b, dma_a),
               speedup(b.total_cycles, a.total_cycles)});
  };
  for (int m : {4, 8, 16}) {
    const ConvGeom g{.ix = 8, .iy = 8, .c = 256, .k = 256, .fx = 3, .fy = 3,
                     .stride = 1, .pad = 1};
    CompileOptions inter = sparse_options(true);
    CompileOptions separate = sparse_options(true);
    separate.interleaved_weights = false;
    row("conv 8x8x256->256", deploy(single_conv_graph(g, m), {8, 8, 256}, inter),
        deploy(single_conv_graph(g, m), {8, 8, 256}, separate), m);
  }
  for (int m : {4, 8, 16}) {
    // large FC whose weights stream from L3 in many K tiles: the startup
    // savings are per tile and L3 startups are expensive
    const FcGeom g{.tokens = 1, .c = 4096, .k = 2048};
    CompileOptions inter = sparse_options(true);
    CompileOptions separate = sparse_options(true);
    separate.interleaved_weights = false;
    row("fc 4096->2048", deploy(single_fc_graph(g, m), {1, 4096}, inter),
        deploy(single_fc_graph(g, m), {1, 4096}, separate), m);
  }
  std::cout << t << "\n"
            << "interleaving saves two DMA startups per weight tile; the "
               "total-latency effect\n"
            << "appears when the transfers are not fully hidden behind "
               "compute (L3-resident\n"
            << "weights, memory-bound FC layers).\n";
  return 0;
}
