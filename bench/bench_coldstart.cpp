// Cold-start from a warm plan registry: the deployment story the artifact
// subsystem exists for. Phase `--build` compiles every serving variant of
// ResNet18 + a ViT FFN block (batch 1, batch 4, 2-cluster sharded),
// publishing each plan to the registry and the ISS latency cache to
// <registry>/latencies.bin. Phase `--serve` then stands up a *fresh*
// PlanStore against the same registry and requests the same variants —
// asserting the cold start performs ZERO compiles and ZERO ISS
// invocations, and that every execution path (run / run_batch / sharded
// MultiClusterEngine::run) is bit-exact with the build phase (checked via
// output CRCs carried in <registry>/coldstart_build.tsv).
//
// On Linux the serve phase additionally forks two child processes that
// each mmap-load every artifact in the registry concurrently, then reads
// /proc/self/smaps for the `.plan` mappings: Private_Dirty must be 0 and
// Shared_Clean > 0 in both children — the kernel is serving one physical
// copy of the weight sections to both processes.
//
//   ./bench_coldstart [--registry DIR] [--build] [--serve] [--out PATH]
//
// With neither --build nor --serve, both phases run in order (the serve
// phase still uses a fresh store + fresh latency cache, so its zero-work
// assertions are meaningful). CI runs the phases as separate invocations
// with a full build-tree wipe in between, proving the artifact alone —
// not any in-process state — carries the plans. Results land in
// BENCH_coldstart.json.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "artifact/registry.hpp"
#include "common/serde.hpp"
#include "exec/engine.hpp"
#include "models/models.hpp"
#include "serve/plan_store.hpp"
#include "shard/multi_cluster_engine.hpp"

#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace decimate;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PhaseStats {
  double wall_ms = 0.0;
  int compiles = 0;
  int registry_loads = 0;
  uint64_t iss_misses = 0;
  std::map<std::string, uint32_t> crcs;  // model -> CRC over all outputs
};

constexpr int kVariantsPerModel = 3;  // batch=1, batch=4, 1x2-cluster

/// One full pass over every model and serving variant against `dir`.
/// The first pass compiles + publishes; a later pass in a fresh process
/// (or fresh store) must do neither.
PhaseStats run_phase(const std::string& dir) {
  const double t0 = now_ms();
  CompileOptions copt;
  copt.enable_isa = true;
  // the registry carries the ISS warm file next to the artifacts
  copt.latency_cache_path = dir + "/latencies.bin";
  PlanStore store(copt);
  store.attach_registry(dir);

  Resnet18Options mopt;
  mopt.sparsity_m = 8;
  mopt.input_hw = 16;
  const Graph resnet = build_resnet18(mopt);
  const Graph ffn = build_ffn_block(96, 128, 512, 8, 11);
  struct Spec {
    const char* name;
    const Graph* graph;
    uint64_t seed;
  };
  const std::vector<Spec> specs = {{"resnet18", &resnet, 301},
                                   {"vit_ffn", &ffn, 302}};

  ExecutionEngine engine;
  MultiClusterEngine mce(2);
  PhaseStats st;
  for (const Spec& spec : specs) {
    const int id = store.add_model(*spec.graph);
    const CompiledPlan& p1 = store.plan(id, 1, 1);
    const CompiledPlan& p4 = store.plan(id, 4, 1);
    const CompiledPlan& pc = store.plan(id, 1, 2);

    // deterministic inputs: both phases hash identical traffic
    Rng rng(spec.seed);
    const auto& shape = spec.graph->node(0).out_shape;
    const Tensor8 input = Tensor8::random(shape, rng);
    std::vector<Tensor8> batch;
    for (int i = 0; i < 4; ++i) batch.push_back(Tensor8::random(shape, rng));

    uint32_t crc = serde::crc32(engine.run(p1, input).output.bytes());
    const BatchRun br = engine.run_batch(p4, batch);
    for (const NetworkRun& r : br.runs) crc = serde::crc32(r.output.bytes(), crc);
    crc = serde::crc32(mce.run(pc, input).run.output.bytes(), crc);
    st.crcs[spec.name] = crc;
  }
  st.compiles = store.compiles();
  st.registry_loads = store.registry_loads();
  st.iss_misses = store.shared_latencies()->misses();
  store.save_latencies();
  st.wall_ms = now_ms() - t0;
  return st;
}

// --- build metadata handoff (survives the CI build-tree wipe) ---------------

std::string meta_path(const std::string& dir) {
  return dir + "/coldstart_build.tsv";
}

void write_meta(const std::string& dir, const PhaseStats& st) {
  std::ofstream out(meta_path(dir));
  DECIMATE_CHECK(out.good(), "cannot write " << meta_path(dir));
  out << "wall_ms\t" << st.wall_ms << "\n";
  out << "compiles\t" << st.compiles << "\n";
  out << "iss_misses\t" << st.iss_misses << "\n";
  for (const auto& [name, crc] : st.crcs) out << "crc\t" << name << "\t" << crc
                                              << "\n";
}

bool read_meta(const std::string& dir, PhaseStats& st) {
  std::ifstream in(meta_path(dir));
  if (!in.good()) return false;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "wall_ms") {
      ls >> st.wall_ms;
    } else if (key == "compiles") {
      ls >> st.compiles;
    } else if (key == "iss_misses") {
      ls >> st.iss_misses;
    } else if (key == "crc") {
      std::string name;
      uint32_t crc = 0;
      ls >> name >> crc;
      st.crcs[name] = crc;
    }
  }
  return true;
}

// --- mmap sharing across processes ------------------------------------------

struct SmapsTotals {
  uint64_t rss_kb = 0;
  uint64_t shared_kb = 0;         // Shared_Clean + Shared_Dirty
  uint64_t private_clean_kb = 0;
  uint64_t private_dirty_kb = 0;
};

struct SharingReport {
  bool supported = false;
  bool shared = false;
  std::vector<SmapsTotals> per_process;
};

#if defined(__linux__)

/// Sum the smaps fields of every `.plan` mapping in this process.
/// smaps alternates mapping headers (start with a hex digit or lowercase
/// hex letter) with `Field:  N kB` lines (start with an uppercase
/// letter); the path, when present, ends the header line.
SmapsTotals plan_smaps() {
  SmapsTotals t;
  std::ifstream in("/proc/self/smaps");
  std::string line;
  bool in_plan = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const char c = line[0];
    const bool header = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (header) {
      in_plan = line.size() > 5 &&
                line.compare(line.size() - 5, 5, ".plan") == 0;
      continue;
    }
    if (!in_plan) continue;
    uint64_t kb = 0;
    char key[64] = {0};
    if (std::sscanf(line.c_str(), "%63[^:]: %llu kB", key,
                    reinterpret_cast<unsigned long long*>(&kb)) != 2) {
      continue;
    }
    if (std::strcmp(key, "Rss") == 0) t.rss_kb += kb;
    if (std::strcmp(key, "Shared_Clean") == 0 ||
        std::strcmp(key, "Shared_Dirty") == 0) {
      t.shared_kb += kb;
    }
    if (std::strcmp(key, "Private_Clean") == 0) t.private_clean_kb += kb;
    if (std::strcmp(key, "Private_Dirty") == 0) t.private_dirty_kb += kb;
  }
  return t;
}

/// Fork `n` children that concurrently mmap-load every artifact in the
/// registry (load_plan's CRC pass faults in every page, weights
/// included), hold the mappings while each reads its own smaps, and
/// report the totals. Lock-step protocol over pipes: child sends 'R'
/// (loaded), parent sends 'G' (everyone is mapped — measure), child
/// sends its totals, parent sends 'X' (everyone measured — release).
SharingReport measure_sharing(const std::string& dir, int n) {
  SharingReport rep;
  rep.supported = true;
  struct Child {
    int to_child[2];
    int from_child[2];
    pid_t pid;
  };
  std::vector<Child> children(static_cast<size_t>(n));
  for (Child& ch : children) {
    DECIMATE_CHECK(pipe(ch.to_child) == 0 && pipe(ch.from_child) == 0,
                   "pipe() failed");
    ch.pid = fork();
    DECIMATE_CHECK(ch.pid >= 0, "fork() failed");
    if (ch.pid == 0) {
      close(ch.to_child[1]);
      close(ch.from_child[0]);
      {
        PlanRegistry reg(dir);
        std::vector<CompiledPlan> plans;
        for (const artifact::ArtifactInfo& info : reg.list()) {
          auto p = reg.load(info.plan_fingerprint);
          if (p.has_value()) plans.push_back(std::move(*p));
        }
        char token = 'R';
        (void)!write(ch.from_child[1], &token, 1);
        (void)!read(ch.to_child[0], &token, 1);  // 'G'
        const SmapsTotals t = plan_smaps();
        char buf[128];
        const int len = std::snprintf(
            buf, sizeof buf, "%llu %llu %llu %llu\n",
            static_cast<unsigned long long>(t.rss_kb),
            static_cast<unsigned long long>(t.shared_kb),
            static_cast<unsigned long long>(t.private_clean_kb),
            static_cast<unsigned long long>(t.private_dirty_kb));
        (void)!write(ch.from_child[1], buf, static_cast<size_t>(len));
        (void)!read(ch.to_child[0], &token, 1);  // 'X': plans still mapped
      }
      _exit(0);
    }
    close(ch.to_child[0]);
    close(ch.from_child[1]);
  }
  char token = 0;
  for (Child& ch : children) {
    DECIMATE_CHECK(read(ch.from_child[0], &token, 1) == 1 && token == 'R',
                   "child failed to load the registry");
  }
  token = 'G';
  for (Child& ch : children) (void)!write(ch.to_child[1], &token, 1);
  for (Child& ch : children) {
    std::string line;
    char c = 0;
    while (read(ch.from_child[0], &c, 1) == 1 && c != '\n') line.push_back(c);
    SmapsTotals t;
    std::istringstream ls(line);
    ls >> t.rss_kb >> t.shared_kb >> t.private_clean_kb >> t.private_dirty_kb;
    rep.per_process.push_back(t);
  }
  token = 'X';
  for (Child& ch : children) {
    (void)!write(ch.to_child[1], &token, 1);
    int status = 0;
    waitpid(ch.pid, &status, 0);
    close(ch.to_child[1]);
    close(ch.from_child[0]);
  }
  rep.shared = !rep.per_process.empty();
  for (const SmapsTotals& t : rep.per_process) {
    // read-only MAP_SHARED: no process may have dirtied a private copy,
    // and with both children mapped at once the resident pages must be
    // counted shared
    rep.shared = rep.shared && t.private_dirty_kb == 0 && t.shared_kb > 0;
  }
  return rep;
}

#else

SharingReport measure_sharing(const std::string&, int) { return {}; }

#endif  // __linux__

void emit_json(std::ostream& os, const std::string& dir, bool have_build,
               const PhaseStats& build, const PhaseStats& serve,
               bool bit_exact, const std::vector<artifact::ArtifactInfo>& infos,
               const SharingReport& sharing) {
  os << "{\n  \"bench\": \"coldstart\",\n  \"registry_dir\": \"" << dir
     << "\",\n";
  if (have_build) {
    os << "  \"build\": {\"wall_ms\": " << build.wall_ms
       << ", \"compiles\": " << build.compiles
       << ", \"iss_misses\": " << build.iss_misses << "},\n";
  }
  os << "  \"serve\": {\"wall_ms\": " << serve.wall_ms
     << ", \"compiles\": " << serve.compiles
     << ", \"registry_loads\": " << serve.registry_loads
     << ", \"iss_misses\": " << serve.iss_misses << "},\n";
  if (have_build && serve.wall_ms > 0.0) {
    os << "  \"coldstart_speedup\": " << build.wall_ms / serve.wall_ms
       << ",\n";
  }
  os << "  \"bit_exact\": " << (bit_exact ? "true" : "false")
     << ",\n  \"artifacts\": [\n";
  for (size_t i = 0; i < infos.size(); ++i) {
    char fp[32];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(infos[i].plan_fingerprint));
    os << "    {\"fingerprint\": \"" << fp << "\", \"bytes\": "
       << infos[i].total_bytes << ", \"weight_bytes\": "
       << infos[i].weight_section_bytes << "}"
       << (i + 1 < infos.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"mmap_sharing\": {\"supported\": "
     << (sharing.supported ? "true" : "false") << ", \"shared\": "
     << (sharing.shared ? "true" : "false") << ", \"per_process\": [";
  for (size_t i = 0; i < sharing.per_process.size(); ++i) {
    const SmapsTotals& t = sharing.per_process[i];
    os << (i ? ", " : "") << "{\"rss_kb\": " << t.rss_kb << ", \"shared_kb\": "
       << t.shared_kb << ", \"private_clean_kb\": " << t.private_clean_kb
       << ", \"private_dirty_kb\": " << t.private_dirty_kb << "}";
  }
  os << "]}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "coldstart_registry";
  std::string out_path = "BENCH_coldstart.json";
  bool do_build = false;
  bool do_serve = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--registry") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--build") == 0) {
      do_build = true;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      do_serve = true;
    } else {
      std::cerr << "usage: bench_coldstart [--registry DIR] [--build] "
                   "[--serve] [--out PATH]\n";
      return 1;
    }
  }
  if (!do_build && !do_serve) do_build = do_serve = true;

  PhaseStats build;
  if (do_build) {
    build = run_phase(dir);
    write_meta(dir, build);
    std::cout << "build: " << build.compiles << " compiles, "
              << build.iss_misses << " ISS invocations, "
              << build.wall_ms << " ms wall -> " << dir << "\n";
    if (!do_serve) return 0;
  }

  // --- cold start: fresh store, fresh latency cache, same registry ----------
  const PhaseStats serve = run_phase(dir);
  const bool have_build = do_build || read_meta(dir, build);
  std::cout << "serve: " << serve.compiles << " compiles, "
            << serve.registry_loads << " registry loads, " << serve.iss_misses
            << " ISS invocations, " << serve.wall_ms << " ms wall\n";

  bool ok = true;
  if (serve.compiles != 0) {
    std::cerr << "FAIL: warm-registry cold start compiled " << serve.compiles
              << " plans (want 0)\n";
    ok = false;
  }
  if (serve.iss_misses != 0) {
    std::cerr << "FAIL: warm-registry cold start ran the ISS "
              << serve.iss_misses << " times (want 0)\n";
    ok = false;
  }
  if (serve.registry_loads != 2 * kVariantsPerModel) {
    std::cerr << "FAIL: expected " << 2 * kVariantsPerModel
              << " registry loads, got " << serve.registry_loads << "\n";
    ok = false;
  }
  bool bit_exact = have_build;
  if (have_build) {
    for (const auto& [name, crc] : serve.crcs) {
      const auto it = build.crcs.find(name);
      if (it == build.crcs.end() || it->second != crc) {
        std::cerr << "FAIL: " << name
                  << " outputs differ from the build phase\n";
        bit_exact = false;
      }
    }
    if (bit_exact) {
      std::cout << "outputs bit-exact with the build phase ("
                << serve.crcs.size() << " models, run+run_batch+sharded)\n";
    }
    ok = ok && bit_exact;
  }

  const SharingReport sharing = measure_sharing(dir, 2);
  if (sharing.supported) {
    for (size_t i = 0; i < sharing.per_process.size(); ++i) {
      const SmapsTotals& t = sharing.per_process[i];
      std::cout << "process " << i << ": .plan mappings rss " << t.rss_kb
                << " kB, shared " << t.shared_kb << " kB, private dirty "
                << t.private_dirty_kb << " kB\n";
    }
    if (!sharing.shared) {
      std::cerr << "FAIL: concurrent processes do not share the artifact "
                   "mappings\n";
      ok = false;
    }
  } else {
    std::cout << "mmap sharing check skipped (not Linux)\n";
  }

  PlanRegistry registry(dir);
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  emit_json(out, dir, have_build, build, serve, bit_exact, registry.list(),
            sharing);
  std::cout << "wrote " << out_path << "\n";
  return ok ? 0 : 1;
}
