// E5 — Table 3: comparison with the state of the art in sparse DNN
// acceleration on MCUs. The literature rows are recorded constants from
// the cited papers (as in the paper's own table); the ResNet18 rows are
// measured on this simulator at the matching sparsity levels.

#include "bench_util.hpp"
#include "hw/xfu_area.hpp"

using namespace decimate;
using namespace decimate::bench;

int main() {
  std::cout << "=== Table 3: comparison with the state of the art ===\n\n";
  Rng rng(13);
  const Tensor8 input = Tensor8::random({32, 32, 4}, rng);

  auto run_model = [&](int m, const CompileOptions& opt) {
    Resnet18Options ropt;
    ropt.sparsity_m = m;
    ScheduleExecutor exec(opt);
    return exec.run(build_resnet18(ropt), input);
  };

  // measured: speedups of our ResNet18 vs the dense 1x2 baseline (the
  // paper's Table 3 reference; 66.63/37.57 = 1.77 etc.)
  const auto dense = run_model(0, dense_1x2_options());
  const auto sw8 = run_model(8, sparse_options(false));    // 87.5% sparsity
  const auto sw16 = run_model(16, sparse_options(false));  // 93.75%
  const auto isa4 = run_model(4, sparse_options(true));    // 75%
  const auto isa16 = run_model(16, sparse_options(true));
  const auto sw16_for_isa = sw16;  // SW-only baseline for the ISA row

  const XfuAreaModel area;

  Table t({"benchmark", "sparsity", "speedup", "area[%]", "source"});
  t.add_row({"LeNet", "93.28%", "3.51x", "-", "Yu et al. 2017 (recorded)"});
  t.add_row({"ConvNet", "59.9%", "1.38x", "-", "Yu et al. 2017 (recorded)"});
  t.add_row({"LeNet300", "93.07%", "9.17x", "-", "Yu et al. 2017 (recorded)"});
  t.add_row({"DS-CNN", "90%", "1.71x", "-", "Trommer et al. 2021 (recorded)"});
  t.add_row({"ResNet50", "75%", "1.82x+", "n.a.",
             "Titopoulos et al. 2023 (recorded)"});
  t.add_row({"DenseNet", "75%", "2.14x+", "n.a.",
             "Titopoulos et al. 2023 (recorded)"});
  t.add_row({"InceptionV3", "75%", "1.92x+", "n.a.",
             "Titopoulos et al. 2023 (recorded)"});
  t.add_row({"spMV (SSSR)", "95.7%", "5x+", "44",
             "Scheffler et al. 2023 (recorded)"});
  t.add_row({"ResNet18-SW (ours)", "87.5-93.75%",
             speedup(dense.total_cycles, sw8.total_cycles) + "-" +
                 speedup(dense.total_cycles, sw16.total_cycles),
             "-", "measured"});
  t.add_row({"ResNet18-ISA (ours)", "75-93.75%",
             speedup(dense.total_cycles, isa4.total_cycles) + "-" +
                 speedup(dense.total_cycles, isa16.total_cycles),
             Table::num(100.0 * area.overhead_fraction(), 1), "measured"});
  std::cout << t << "\n";
  std::cout << "+ = speedup relative to a SW-only sparse baseline (as in the "
               "paper's table).\n";
  std::cout << "ours, ISA vs SW-only sparse at 75% (1:4): "
            << speedup(run_model(4, sparse_options(false)).total_cycles,
                       isa4.total_cycles)
            << "  (paper: 1.82x at iso-sparsity)\n";
  std::cout << "ours, ISA vs SW-only sparse at 93.75% (1:16): "
            << speedup(sw16_for_isa.total_cycles, isa16.total_cycles)
            << "  (paper: 1.39x)\n";
  std::cout << "paper reference rows (Table 3): ResNet18-SW 1.77-3.10x, "
               "ResNet18-ISA 1.77-4.31x @ 5% area\n";
  return 0;
}
