// E14 — google-benchmark micro-benchmarks of the simulator itself:
// interpreter throughput (simulated instructions per host second) and
// per-kernel cycle costs at fixed geometries. These gate the usability of
// the ISS for the end-to-end experiments.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "isa/builder.hpp"
#include "kernels/launch.hpp"
#include "nn/prune.hpp"
#include "sim/cluster.hpp"

namespace decimate {
namespace {

void BM_IssAluLoop(benchmark::State& state) {
  KernelBuilder b;
  using namespace reg;
  b.li(t0, 1000);
  b.hw_loop(0, t0, [&] {
    b.addi(a1, a1, 1);
    b.xor_(a2, a2, a1);
    b.add(a3, a3, a2);
    b.srli(a4, a3, 3);
  });
  b.barrier();
  b.halt();
  const Program prog = b.build();
  ClusterConfig cfg;
  cfg.num_cores = 1;
  Cluster cluster(cfg);
  uint64_t instructions = 0;
  for (auto _ : state) {
    const RunResult res = cluster.run(prog, 0);
    instructions += res.total_instructions;
  }
  state.counters["sim_instr_per_s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IssAluLoop);

void BM_ConvKernel(benchmark::State& state) {
  const auto kind = static_cast<KernelKind>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const ConvGeom g{.ix = 8, .iy = 8, .c = 64, .k = 16, .fx = 3, .fy = 3,
                   .stride = 1, .pad = 1};
  Rng rng(1);
  const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
  Tensor32 bias({g.k}, 0);
  Tensor8 w = Tensor8::random({g.k, g.fsz()}, rng);
  if (m) nm_prune(w.flat(), g.k, g.fsz(), 1, m);
  NmPacked packed;
  if (m) {
    packed = nm_pack(w.flat(), g.k, g.fsz(), m,
                     KernelLauncher::layout_for(kind));
  }
  Cluster cluster{ClusterConfig{}};
  KernelLauncher launcher(cluster);
  uint64_t cycles = 0, instructions = 0;
  for (auto _ : state) {
    const KernelRun run =
        m ? launcher.conv(kind, g, Requant{1, 8}, input, nullptr, &packed,
                          bias)
          : launcher.conv(kind, g, Requant{1, 8}, input, &w, nullptr, bias);
    cycles = run.result.wall_cycles;
    instructions += run.result.total_instructions;
  }
  state.counters["sim_cycles"] = static_cast<double>(cycles);
  state.counters["sim_instr_per_s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConvKernel)
    ->Args({static_cast<int>(KernelKind::kConvDense4x2), 0})
    ->Args({static_cast<int>(KernelKind::kConvDense1x2), 0})
    ->Args({static_cast<int>(KernelKind::kConvSparseSw), 8})
    ->Args({static_cast<int>(KernelKind::kConvSparseIsa), 8})
    ->Args({static_cast<int>(KernelKind::kConvSparseIsa), 16});

void BM_FcKernel(benchmark::State& state) {
  const auto kind = static_cast<KernelKind>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const FcGeom g{.tokens = 4, .c = 1024, .k = 64};
  Rng rng(2);
  const Tensor8 input = Tensor8::random({g.tokens, g.c}, rng);
  Tensor32 bias({g.k}, 0);
  Tensor8 w = Tensor8::random({g.k, g.c}, rng);
  if (m) nm_prune(w.flat(), g.k, g.c, 1, m);
  NmPacked packed;
  if (m) {
    packed = nm_pack(w.flat(), g.k, g.c, m, KernelLauncher::layout_for(kind));
  }
  Cluster cluster{ClusterConfig{}};
  KernelLauncher launcher(cluster);
  uint64_t cycles = 0;
  for (auto _ : state) {
    const KernelRun run =
        m ? launcher.fc(kind, g, Requant{1, 8}, input, nullptr, &packed, bias)
          : launcher.fc(kind, g, Requant{1, 8}, input, &w, nullptr, bias);
    cycles = run.result.wall_cycles;
  }
  state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_FcKernel)
    ->Args({static_cast<int>(KernelKind::kFcDense), 0})
    ->Args({static_cast<int>(KernelKind::kFcSparseSw), 8})
    ->Args({static_cast<int>(KernelKind::kFcSparseIsa), 8});

void BM_LockstepOverhead(benchmark::State& state) {
  const bool lockstep = state.range(0) != 0;
  const ConvGeom g{.ix = 8, .iy = 8, .c = 32, .k = 8, .fx = 3, .fy = 3,
                   .stride = 1, .pad = 1};
  Rng rng(3);
  const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
  Tensor32 bias({g.k}, 0);
  Tensor8 w = Tensor8::random({g.k, g.fsz()}, rng);
  ClusterConfig cfg;
  cfg.lockstep = lockstep;
  Cluster cluster(cfg);
  KernelLauncher launcher(cluster);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        launcher.conv(KernelKind::kConvDense1x2, g, Requant{1, 8}, input, &w,
                      nullptr, bias));
  }
}
BENCHMARK(BM_LockstepOverhead)->Arg(0)->Arg(1);

}  // namespace
}  // namespace decimate

BENCHMARK_MAIN();
