// Serving throughput of the pipelined batch engine: host images/sec and
// modeled cycles/image for batch sizes {1, 4, 16} on ResNet18 (conv-
// dominated) and the ViT FFN block (FC-dominated). Per-batch-size plans
// come from the serving PlanStore — compiled once per (model x batch)
// and indexed by content fingerprint, never rebuilt per run — with
// batch-fused tiling: FC fuses the batch into the token dim, conv into
// the OY tile loop, so weight DMA amortizes across the images of a
// batch. After timing, the bench re-looks-up every plan and asserts the
// compile counter did not move (exit 1 on violation). Results land in
// BENCH_batch.json.
//
//   ./bench_batch_throughput [--smoke] [--out PATH]
//
// --smoke shrinks the models so CI can run the bench in seconds.

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/engine.hpp"
#include "serve/plan_store.hpp"

using namespace decimate;

namespace {

struct Row {
  std::string model;
  int batch = 0;
  double images_per_sec = 0.0;
  double modeled_cycles_per_image = 0.0;
  uint64_t batch_cycles = 0;
  uint64_t sequential_cycles = 0;
  uint64_t weight_dma_per_image = 0;
};

Row time_batch(const std::string& model, const CompiledPlan& plan,
               const std::vector<int>& in_shape, int batch) {
  Rng rng(17);
  std::vector<Tensor8> images;
  images.reserve(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    images.push_back(Tensor8::random(in_shape, rng));
  }
  ExecutionEngine engine;
  const auto t0 = std::chrono::steady_clock::now();
  const BatchRun run = engine.run_batch(plan, images);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  Row row;
  row.model = model;
  row.batch = batch;
  row.images_per_sec = secs > 0.0 ? batch / secs : 0.0;
  row.batch_cycles = run.batch_cycles;
  row.sequential_cycles = run.sequential_cycles;
  row.modeled_cycles_per_image = run.cycles_per_image();
  for (const PlanStep& s : plan.steps) {
    row.weight_dma_per_image += s.report.weight_dma_cycles;
  }
  return row;
}

void emit_json(std::ostream& os, bool smoke, const std::vector<Row>& rows) {
  os << "{\n  \"bench\": \"batch_throughput\",\n  \"smoke\": "
     << (smoke ? "true" : "false") << ",\n  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"model\": \"" << r.model << "\", \"batch\": " << r.batch
       << ", \"images_per_sec\": " << r.images_per_sec
       << ", \"modeled_cycles_per_image\": " << r.modeled_cycles_per_image
       << ", \"batch_cycles\": " << r.batch_cycles
       << ", \"sequential_cycles\": " << r.sequential_cycles
       << ", \"weight_dma_cycles_per_image\": " << r.weight_dma_per_image
       << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_batch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_batch_throughput [--smoke] [--out PATH]\n";
      return 1;
    }
  }
  const std::vector<int> batches = {1, 4, 16};

  // every (model x batch) plan lives in one PlanStore: variants share a
  // latency cache (tile measurements never repeat across the fused
  // plans), and repeated lookups must hit the compiled plan
  CompileOptions copt;
  copt.enable_isa = true;
  PlanStore store(copt);

  // conv-dominated: conv fusion keeps each weight tile resident across
  // the batch's row sweeps (K-outer order)
  Resnet18Options mopt;
  mopt.sparsity_m = 8;
  mopt.input_hw = smoke ? 16 : 32;
  const Graph resnet = build_resnet18(mopt);
  const int resnet_id = store.add_model(resnet);

  // FC-dominated: the batch fuses into the token dim, so each weight
  // tile is fetched once per batch
  const int tokens = smoke ? 96 : 196;
  const int d = smoke ? 128 : 384;
  const int hidden = smoke ? 512 : 1536;
  const Graph ffn = build_ffn_block(tokens, d, hidden, 8, 11);
  const int ffn_id = store.add_model(ffn);

  store.warm(resnet_id, batches);
  store.warm(ffn_id, batches);
  const int compiles_warm = store.compiles();

  std::vector<Row> rows;
  for (int b : batches) {
    rows.push_back(time_batch("resnet18", store.plan(resnet_id, b),
                              {mopt.input_hw, mopt.input_hw, 4}, b));
  }
  for (int b : batches) {
    rows.push_back(time_batch("vit_ffn", store.plan(ffn_id, b),
                              {tokens, d}, b));
  }
  // a second round of lookups must hit every compiled plan
  for (int b : batches) {
    store.plan(resnet_id, b);
    store.plan(ffn_id, b);
  }
  if (store.compiles() != compiles_warm) {
    std::cerr << "FAIL: plan store recompiled while serving batches ("
              << compiles_warm << " -> " << store.compiles() << ")\n";
    return 1;
  }

  Table t({"model", "batch", "img/s", "Mcyc/img", "w-DMA kcyc/img",
           "overlap"});
  for (const Row& r : rows) {
    t.add_row({r.model, std::to_string(r.batch),
               Table::num(r.images_per_sec, 1),
               Table::num(r.modeled_cycles_per_image / 1e6, 2),
               Table::num(r.weight_dma_per_image / 1e3, 1),
               Table::num(static_cast<double>(r.sequential_cycles) /
                              static_cast<double>(r.batch_cycles), 3) + "x"});
  }
  std::cout << t;
  std::cout << "compiles: " << compiles_warm << " (all at warm-up)\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  emit_json(out, smoke, rows);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
