#pragma once
// Shared helpers for the benchmark binaries: single-layer graphs deployed
// through the compiler (tiling + DMA, as MATCH deploys the paper's single
// layers), and formatting utilities.

#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "compiler/schedule.hpp"
#include "models/models.hpp"
#include "nn/prune.hpp"

namespace decimate::bench {

/// Build a one-conv-layer graph with synthetic (optionally 1:M) weights.
inline Graph single_conv_graph(const ConvGeom& g, int m, uint64_t seed = 7) {
  Rng rng(seed);
  Graph graph({g.iy, g.ix, g.c});
  Node n;
  n.op = OpType::kConv2d;
  n.name = "conv";
  n.inputs = {0};
  n.conv = g;
  n.weights = Tensor8::random({g.k, g.fsz()}, rng);
  if (m != 0) nm_prune(n.weights.flat(), g.k, g.fsz(), 1, m);
  Tensor32 bias({g.k});
  for (int i = 0; i < g.k; ++i) bias[i] = rng.uniform_int(-500, 500);
  n.bias = std::move(bias);
  n.rq = calibrate_requant(g.fsz());
  n.out_shape = {g.oy(), g.ox(), g.k};
  graph.add(std::move(n));
  return graph;
}

inline Graph single_fc_graph(const FcGeom& g, int m, uint64_t seed = 7) {
  Rng rng(seed);
  Graph graph({g.tokens, g.c});
  Node n;
  n.op = OpType::kFc;
  n.name = "fc";
  n.inputs = {0};
  n.fc = g;
  n.weights = Tensor8::random({g.k, g.c}, rng);
  if (m != 0) nm_prune(n.weights.flat(), g.k, g.c, 1, m);
  Tensor32 bias({g.k});
  for (int i = 0; i < g.k; ++i) bias[i] = rng.uniform_int(-500, 500);
  n.bias = std::move(bias);
  n.rq = calibrate_requant(g.c);
  n.out_shape = {g.tokens, g.k};
  graph.add(std::move(n));
  return graph;
}

/// Deploy a single-layer graph and return the cycle report.
inline NetworkRun deploy(const Graph& g, const std::vector<int>& in_shape,
                         const CompileOptions& opt, uint64_t seed = 9) {
  Rng rng(seed);
  const Tensor8 input = Tensor8::random(in_shape, rng);
  ScheduleExecutor exec(opt);
  return exec.run(g, input);
}

inline CompileOptions dense_1x2_options() {
  CompileOptions o;
  o.enable_sparse = false;
  o.pulpnn_dense = false;
  return o;
}

inline CompileOptions pulpnn_options() {
  CompileOptions o;
  o.enable_sparse = false;
  o.pulpnn_dense = true;
  return o;
}

inline CompileOptions sparse_options(bool isa) {
  CompileOptions o;
  o.enable_sparse = true;
  o.enable_isa = isa;
  return o;
}

inline std::string mcyc(uint64_t cycles) {
  return Table::num(static_cast<double>(cycles) / 1e6, 2);
}

inline std::string speedup(uint64_t base, uint64_t x) {
  return Table::num(static_cast<double>(base) / static_cast<double>(x), 2) +
         "x";
}

}  // namespace decimate::bench
