// Full-configuration verification sweep: statically verify every plan the
// compiler produces for ResNet18 and the ViT FFN block across the whole
// deployment matrix — sparsity (dense / 1:2 / 1:4 / 1:8 / 1:16), SW vs
// xDecimate kernels, batch size, and cluster count (multi-cluster plans
// are additionally sharded and the ShardPlan verified). A single finding
// anywhere fails the bench with a nonzero exit — this is the "no plan the
// compiler emits is provably wrong" gate CI runs on every change.
//
//   ./bench_verify_all [--smoke] [--out PATH]
//
// --smoke shrinks the models so CI finishes in seconds; results (per-config
// check counts and any findings) land in BENCH_verify.json.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/compile.hpp"
#include "shard/shard_planner.hpp"
#include "verify/verify.hpp"

using namespace decimate;

namespace {

struct Row {
  std::string model;
  int m = 0;
  bool isa = false;
  int batch = 1;
  int clusters = 1;
  int checks = 0;        // verify_plan + verify_shard checks evaluated
  int findings = 0;      // error- or warn-level findings (0 = pass)
  std::string detail;    // first finding, for the report
};

/// Verify one (model, sparsity, kernels, batch, clusters) configuration:
/// compile against the shared latency cache, run the static verifier, and
/// for unbatched multi-cluster plans also verify the shard partitioning.
Row verify_config(const std::string& name, const Graph& graph, int m,
                  bool isa, int batch, int clusters,
                  const std::shared_ptr<TileLatencyCache>& cache) {
  CompileOptions opt;
  opt.enable_isa = isa;
  opt.batch = batch;
  opt.num_clusters = clusters;
  opt.verify_plans = false;  // the bench wants the report, not the throw
  Compiler compiler(opt, cache);
  const CompiledPlan plan = compiler.compile(graph);

  Row row{name, m, isa, batch, clusters, 0, 0, ""};
  VerifyReport rep = verify_plan(plan);
  row.checks += rep.checks_run;
  if (clusters > 1 && batch == 1) {
    ShardPlanner planner(clusters);
    const ShardPlan shard = planner.plan(plan);
    const VerifyReport srep = verify_shard(plan, shard);
    row.checks += srep.checks_run;
    rep.findings.insert(rep.findings.end(), srep.findings.begin(),
                        srep.findings.end());
  }
  row.findings = static_cast<int>(rep.findings.size());
  if (!rep.findings.empty()) {
    const VerifyFinding& f = rep.findings.front();
    row.detail = f.check + " (node " + std::to_string(f.node_id) + "): " +
                 f.message;
  }
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"verify_all\",\n  \"configs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"model\": \"" << r.model << "\", \"m\": " << r.m
        << ", \"isa\": " << (r.isa ? "true" : "false")
        << ", \"batch\": " << r.batch << ", \"clusters\": " << r.clusters
        << ", \"checks\": " << r.checks << ", \"findings\": " << r.findings
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_verify.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const auto cache = std::make_shared<TileLatencyCache>();
  const std::vector<int> sparsities = {0, 2, 4, 8, 16};
  const std::vector<int> batches = smoke ? std::vector<int>{1, 2}
                                         : std::vector<int>{1, 4};
  const std::vector<int> cluster_counts = smoke ? std::vector<int>{1, 2}
                                                : std::vector<int>{1, 2, 4};

  std::vector<Row> rows;
  for (const int m : sparsities) {
    // ResNet18 (conv-dominated) and the transformer FFN pair that
    // dominates ViT latency, at each sparsity level
    Resnet18Options ropt;
    ropt.sparsity_m = m;
    ropt.input_hw = smoke ? 16 : 32;
    const Graph resnet = build_resnet18(ropt);
    const Graph ffn = smoke ? build_ffn_block(8, 64, 128, m, 21)
                            : build_ffn_block(196, 384, 1536, m, 21);
    for (const bool isa : {false, true}) {
      for (const int batch : batches) {
        for (const int clusters : cluster_counts) {
          rows.push_back(verify_config("resnet18", resnet, m, isa, batch,
                                       clusters, cache));
          rows.push_back(verify_config("vit_ffn", ffn, m, isa, batch,
                                       clusters, cache));
        }
      }
    }
  }

  Table table({"model", "m", "kernels", "batch", "clusters", "checks",
               "findings"});
  int total_checks = 0, total_findings = 0;
  for (const Row& r : rows) {
    table.add_row({r.model,
                   r.m == 0 ? std::string("dense") : "1:" +
                       std::to_string(r.m),
                   r.isa ? "xdec" : "sw", std::to_string(r.batch),
                   std::to_string(r.clusters), std::to_string(r.checks),
                   std::to_string(r.findings)});
    total_checks += r.checks;
    total_findings += r.findings;
    if (!r.detail.empty()) {
      std::cerr << "FINDING [" << r.model << " m=" << r.m
                << " isa=" << r.isa << " b=" << r.batch
                << " nc=" << r.clusters << "] " << r.detail << "\n";
    }
  }
  std::cout << table;
  write_json(out_path, rows);
  std::cout << "\n" << rows.size() << " configs, " << total_checks
            << " checks, " << total_findings << " findings -> " << out_path
            << "\n";
  if (total_findings != 0) {
    std::cerr << "bench_verify_all: FAILED (" << total_findings
              << " findings)\n";
    return 1;
  }
  return 0;
}
