// E1 — Figure 8 (left): single convolutional layers, C in {32,64,128,256},
// K = 256, 8x8 spatial, 3x3 filters, S=1, P=1. Reports dense-equivalent
// MAC/cycle for the two dense baselines and the SW / ISA sparse kernels at
// 1:4, 1:8 and 1:16, plus speedups over the dense 1x2 baseline.

#include <map>

#include "bench_util.hpp"

using namespace decimate;
using namespace decimate::bench;

int main() {
  std::cout << "=== Figure 8 (left): single conv layers, K=256, 8x8, 3x3 ===\n"
            << "(paper shape: SW 1:4 slower than dense 1x2; SW 1:16 ~2.6x;\n"
            << " ISA ~1.5x/2.4x/3.9x at 1:4/1:8/1:16 over dense 1x2)\n\n";
  Table t({"C", "kernel", "MAC/cyc", "Mcyc", "speedup vs 1x2"});
  std::map<std::string, double> avg;
  std::vector<std::string> order;
  int count = 0;
  for (int c : {32, 64, 128, 256}) {
    const ConvGeom g{.ix = 8, .iy = 8, .c = c, .k = 256, .fx = 3, .fy = 3,
                     .stride = 1, .pad = 1};
    const std::vector<int> in_shape = {8, 8, c};
    struct Row {
      std::string name;
      NetworkRun run;
    };
    std::vector<Row> rows;
    rows.push_back(
        {"dense 1x2", deploy(single_conv_graph(g, 0), in_shape,
                             dense_1x2_options())});
    rows.push_back(
        {"PULP-NN 4x2", deploy(single_conv_graph(g, 0), in_shape,
                               pulpnn_options())});
    for (int m : {4, 8, 16}) {
      const std::string tag = "1:" + std::to_string(m);
      rows.push_back({"SW " + tag, deploy(single_conv_graph(g, m), in_shape,
                                          sparse_options(false))});
      rows.push_back({"ISA " + tag, deploy(single_conv_graph(g, m), in_shape,
                                           sparse_options(true))});
    }
    const uint64_t base = rows.front().run.total_cycles;
    for (const auto& row : rows) {
      t.add_row({std::to_string(c), row.name,
                 Table::num(row.run.macs_per_cycle(), 2),
                 mcyc(row.run.total_cycles),
                 speedup(base, row.run.total_cycles)});
      if (avg.find(row.name) == avg.end()) order.push_back(row.name);
      avg[row.name] += static_cast<double>(base) /
                       static_cast<double>(row.run.total_cycles);
    }
    ++count;
  }
  std::cout << t << "\n";
  std::cout << "average speedups over dense 1x2 across C:\n";
  for (const auto& name : order) {
    std::cout << "  " << name << ": " << Table::num(avg[name] / count, 2)
              << "x\n";
  }
  return 0;
}
