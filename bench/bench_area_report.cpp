// E8 — xDecimate XFU area accounting (Sec. 4.3): per-block kGE budget and
// the overhead ratio against an RI5CY-class FPU-less core (paper: 5.0%
// from 22nm synthesis), plus the paper's comparison point against SSR
// (Scheffler et al.: 20-31 kGE, 20-44% overhead).

#include "bench_util.hpp"
#include "hw/xfu_area.hpp"

using namespace decimate;
using namespace decimate::bench;

int main() {
  std::cout << "=== xDecimate XFU area model ===\n\n";
  const XfuAreaModel model;
  Table t({"block", "kGE", "note"});
  for (const auto& b : model.blocks()) {
    t.add_row({b.name, Table::num(b.kge, 2), b.note});
  }
  t.add_row({"TOTAL XFU", Table::num(model.xfu_kge(), 2), ""});
  std::cout << t << "\n";
  std::cout << "core baseline (RI5CY-class, no FPU): "
            << Table::num(model.core_kge, 1) << " kGE\n"
            << "XFU overhead: "
            << Table::num(100.0 * model.overhead_fraction(), 1)
            << "%   (paper: 5.0% from Synopsys synthesis @22nm)\n\n";
  std::cout << "comparison (paper Sec. 3): SSR/SSSR streaming registers are "
               "20-31 kGE,\n"
            << "i.e. 20-31% of an FPU-equipped RI5CY (102 kGE) and up to "
               "~44% of an\n"
            << "FPU-less core — an order of magnitude more than the XFU.\n\n";
  const XfuPipelineModel with_fwd{.forwarding = true};
  const XfuPipelineModel no_fwd{.forwarding = false};
  std::cout << "pipeline model: 8 back-to-back xdecimate = "
            << with_fwd.back_to_back_cycles(8) << " cycles with forwarding, "
            << no_fwd.back_to_back_cycles(8) << " without (csr is a "
            << "distance-1 WB->EX dependency).\n";
  return 0;
}
