// E9 — ablation of the sparse im2col strategies of Sec. 4.1.2:
//   strategy 2 ("sparse im2col"): gather the NZ activations into compact
//     per-channel buffers, repeated for every output channel;
//   strategy 3 ("decimate im2col", the paper's choice): dense im2col once
//     per pixel pair + per-channel decimation in the inner loop.
// The paper argues strategy 2 explodes the innermost loop; this bench
// quantifies the gap on single layers.

#include "bench_util.hpp"
#include "kernels/launch.hpp"

using namespace decimate;
using namespace decimate::bench;

int main() {
  std::cout << "=== Ablation: sparse im2col strategy (Sec. 4.1.2) ===\n\n";
  Table t({"C", "K", "M", "decimate [kcyc]", "sparse-im2col [kcyc]",
           "strategy-2 penalty"});
  Rng rng(5);
  for (int c : {32, 64, 128}) {
    for (int m : {8, 16}) {
      const ConvGeom g{.ix = 8, .iy = 8, .c = c, .k = 16, .fx = 3, .fy = 3,
                       .stride = 1, .pad = 1};
      const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
      Tensor32 bias({g.k}, 0);
      Tensor8 w = Tensor8::random({g.k, g.fsz()}, rng);
      nm_prune(w.flat(), g.k, g.fsz(), 1, m);
      const NmPacked packed = nm_pack(w.flat(), g.k, g.fsz(), m, NmLayout::kSw);

      ClusterConfig ccfg;
      Cluster c1(ccfg), c2(ccfg);
      KernelLauncher l1(c1), l2(c2);
      const auto decimate_run = l1.conv(KernelKind::kConvSparseSw, g,
                                        Requant{1, 8}, input, nullptr,
                                        &packed, bias);
      const auto gather_run = l2.conv(KernelKind::kConvSparseIm2col, g,
                                      Requant{1, 8}, input, nullptr, &packed,
                                      bias);
      DECIMATE_CHECK(decimate_run.output == gather_run.output,
                     "strategies disagree");
      t.add_row({std::to_string(c), std::to_string(g.k), std::to_string(m),
                 Table::num(decimate_run.result.wall_cycles / 1e3, 1),
                 Table::num(gather_run.result.wall_cycles / 1e3, 1),
                 speedup(gather_run.result.wall_cycles,
                         decimate_run.result.wall_cycles)});
    }
  }
  std::cout << t << "\n"
            << "strategy 2 repeats the activation gather once per output "
               "channel and pays the\n"
            << "extra compact-buffer stores, confirming the paper's choice "
               "of strategy 3.\n";
  return 0;
}
