// E7 — sparse-format storage comparison (Sec. 2.1 / Fig. 1 / Sec. 4):
// N:M vs COO vs CSR bytes for an int8 weight matrix across sparsity, the
// break-even sparsities of COO/CSR, and the paper's N:M savings numbers
// (68.75/81.25/90.62% SW; 62.5/75/87.5% with duplicated ISA offsets).

#include "bench_util.hpp"
#include "nn/nm_format.hpp"

using namespace decimate;
using namespace decimate::bench;

int main() {
  std::cout << "=== Sparse weight storage formats (256 x 1152 int8) ===\n\n";
  const int rows = 256, cols = 1152;
  const auto dense = static_cast<double>(dense_bytes(rows, cols));

  Table t({"sparsity", "dense[KB]", "COO[KB]", "CSR[KB]", "N:M[KB]",
           "N:M dup[KB]", "N:M saving"});
  for (int m : {2, 4, 8, 16}) {
    const int64_t nnz = static_cast<int64_t>(rows) * cols / m;
    const double sp = 100.0 * (1.0 - 1.0 / m);
    const int64_t nm = (m == 2) ? -1 : nm_bytes(rows, cols, m, false);
    const int64_t nmd = (m == 2) ? -1 : nm_bytes(rows, cols, m, true);
    t.add_row({"1:" + std::to_string(m) + " (" + Table::num(sp, 1) + "%)",
               Table::num(dense / 1024, 1),
               Table::num(static_cast<double>(coo_bytes(nnz)) / 1024, 1),
               Table::num(static_cast<double>(csr_bytes(rows, nnz)) / 1024, 1),
               m == 2 ? "n/a" : Table::num(static_cast<double>(nm) / 1024, 1),
               m == 2 ? "n/a" : Table::num(static_cast<double>(nmd) / 1024, 1),
               m == 2 ? "n/a"
                      : Table::num(100.0 * (1.0 - nm / dense), 2) + "%"});
  }
  std::cout << t << "\n";

  std::cout << "paper claims reproduced:\n";
  for (int m : {4, 8, 16}) {
    std::cout << "  1:" << m << " saving (SW): "
              << Table::num(100.0 * (1.0 - nm_bytes(rows, cols, m, false) /
                                               dense),
                            2)
              << "%  (paper: " << (m == 4 ? "68.75" : m == 8 ? "81.25" : "90.62")
              << "%),  with duplicated offsets: "
              << Table::num(
                     100.0 * (1.0 - nm_bytes(rows, cols, m, true) / dense), 2)
              << "%  (paper: " << (m == 4 ? "62.5" : m == 8 ? "75" : "87.5")
              << "%)\n";
  }

  // break-even sparsity: smallest zero fraction where the format beats dense
  auto break_even = [&](auto bytes_of_nnz) {
    for (int pct = 1; pct < 100; ++pct) {
      const int64_t nnz = static_cast<int64_t>(dense * (100 - pct) / 100);
      if (bytes_of_nnz(nnz) <= dense) return pct;
    }
    return 100;
  };
  std::cout << "\nbreak-even sparsity vs dense storage:\n"
            << "  COO (1B value + 2x16-bit coords): "
            << break_even([](int64_t n) { return coo_bytes(n); })
            << "% (paper quotes 75% with tighter coordinate packing)\n"
            << "  CSR (16-bit column indices): "
            << break_even([&](int64_t n) { return csr_bytes(rows, n); })
            << "% (paper: >50%)\n"
            << "  CSR compression at 75% sparsity: "
            << Table::num(
                   100.0 * (1.0 -
                            csr_bytes(rows, static_cast<int64_t>(rows) * cols / 4) /
                                dense),
                   1)
            << "% (paper: <25%)\n";
  return 0;
}
