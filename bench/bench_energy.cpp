// Extension (paper Sec. 6 future work): energy estimation. Applies the
// per-instruction-class energy model to the ISS opcode histograms of the
// kernels and adds the DMA transfer energy, showing where the sparse
// kernels' energy advantage comes from: fewer executed instructions per
// dense-equivalent MAC and fewer bytes moved per layer.

#include "bench_util.hpp"
#include "hw/energy.hpp"
#include "kernels/launch.hpp"

using namespace decimate;
using namespace decimate::bench;

int main() {
  std::cout << "=== Extension: kernel energy (per-instruction-class model) "
               "===\n\n";
  const EnergyModel em;
  const ConvGeom g{.ix = 8, .iy = 8, .c = 128, .k = 64, .fx = 3, .fy = 3,
                   .stride = 1, .pad = 1};
  Rng rng(8);
  const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
  Tensor32 bias({g.k}, 0);

  Table t({"kernel", "instr", "compute nJ", "idle nJ", "nJ/MMAC(dense-eq)",
           "vs dense 1x2"});
  double dense_nj = 0.0;
  struct Cfg {
    KernelKind kind;
    int m;
  };
  for (const auto& cfg :
       {Cfg{KernelKind::kConvDense1x2, 0}, Cfg{KernelKind::kConvDense4x2, 0},
        Cfg{KernelKind::kConvSparseSw, 8}, Cfg{KernelKind::kConvSparseIsa, 8},
        Cfg{KernelKind::kConvSparseSw, 16},
        Cfg{KernelKind::kConvSparseIsa, 16}}) {
    Cluster cluster{ClusterConfig{}};
    KernelLauncher launcher(cluster);
    KernelRun run;
    if (kernel_is_sparse(cfg.kind)) {
      Tensor8 w = Tensor8::random({g.k, g.fsz()}, rng);
      nm_prune(w.flat(), g.k, g.fsz(), 1, cfg.m);
      const NmPacked packed = nm_pack(w.flat(), g.k, g.fsz(), cfg.m,
                                      KernelLauncher::layout_for(cfg.kind));
      run = launcher.conv(cfg.kind, g, Requant{1, 8}, input, nullptr, &packed,
                          bias);
    } else {
      Tensor8 w = Tensor8::random({g.k, g.fsz()}, rng);
      run = launcher.conv(cfg.kind, g, Requant{1, 8}, input, &w, nullptr,
                          bias);
    }
    const EnergyBreakdown e = em.kernel_energy(run.result);
    const double nj_per_mmac =
        e.total_nj() / (static_cast<double>(run.dense_macs) / 1e6);
    if (dense_nj == 0.0) dense_nj = e.total_nj();
    std::string name = kernel_kind_name(cfg.kind);
    if (cfg.m) name += " 1:" + std::to_string(cfg.m);
    t.add_row({name, std::to_string(run.result.total_instructions),
               Table::num(e.compute_nj, 1), Table::num(e.idle_nj, 1),
               Table::num(nj_per_mmac, 1),
               Table::num(dense_nj / e.total_nj(), 2) + "x"});
  }
  std::cout << t << "\n";

  // DMA energy side: weight bytes per layer at each sparsity
  std::cout << "weight-transfer energy for this layer (L2-resident / "
               "L3-resident):\n";
  for (int m : {0, 4, 8, 16}) {
    const int64_t bytes =
        m ? nm_bytes(g.k, g.fsz(), m, true) : dense_bytes(g.k, g.fsz());
    std::cout << "  " << (m ? "1:" + std::to_string(m) : "dense") << ": "
              << bytes << " B -> " << Table::num(em.dma_nj(bytes, 0), 1)
              << " nJ (L2) / " << Table::num(em.dma_nj(0, bytes), 1)
              << " nJ (L3) per load\n";
  }
  std::cout << "\nthe sparse kernels save energy twice: fewer executed "
               "instructions per dense-\nequivalent MAC, and (paper Sec. 6) "
               "fewer off-chip bytes when weights live in L3.\n";
  return 0;
}
