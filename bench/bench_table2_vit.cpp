// E4 — Table 2 (ViT-Small/16 @224, CIFAR-10 in the paper): end-to-end
// deployment with the FFN FC layers sparsified. Accuracy column = paper's
// recorded values (see DESIGN.md); latency/memory measured here.

#include "bench_util.hpp"

using namespace decimate;
using namespace decimate::bench;

int main() {
  std::cout << "=== Table 2: ViT-Small/16 @ 224 (FFN sparsified) ===\n\n";
  Rng rng(12);
  const Tensor8 input = Tensor8::random({224, 224, 4}, rng);

  struct Row {
    std::string name;
    const char* paper_acc;
    NetworkRun run;
  };
  std::vector<Row> rows;

  auto run_model = [&](int m, const CompileOptions& opt) {
    VitOptions vopt;
    vopt.sparsity_m = m;
    ScheduleExecutor exec(opt);
    return exec.run(build_vit(vopt), input);
  };

  rows.push_back({"Dense", "95.59*", run_model(0, pulpnn_options())});
  for (int m : {4, 8, 16}) {
    const char* acc = (m == 4) ? "95.73*" : (m == 8) ? "95.02*" : "95.17*";
    rows.push_back({"1:" + std::to_string(m) + " SW", acc,
                    run_model(m, sparse_options(false))});
    rows.push_back({"1:" + std::to_string(m) + " ISA", acc,
                    run_model(m, sparse_options(true))});
  }

  Table t({"model", "acc[%]", "MAC/cyc", "Mcyc", "mem[MB]", "vs dense"});
  const uint64_t base = rows[0].run.total_cycles;
  for (const auto& r : rows) {
    t.add_row({r.name, r.paper_acc, Table::num(r.run.macs_per_cycle(), 2),
               mcyc(r.run.total_cycles),
               Table::num(static_cast<double>(r.run.weight_bytes) / 1e6, 2),
               speedup(base, r.run.total_cycles)});
  }
  std::cout << t << "\n"
            << "*accuracy values are the paper's measured CIFAR-10 results "
               "(Table 2).\n\n"
            << "paper reference (Table 2): dense 975.23 Mcyc @ 4.65; SW "
               "1:4/8/16 = 944/719/598 Mcyc\n"
            << " (1.03/1.36/1.63x); ISA = 681/607/540 Mcyc "
               "(1.43/1.61/1.81x); mem 21.59 ->\n"
            << " 11.86/10.09/8.76 MB. Our integer attention kernels are "
               "cheaper than the paper's\n"
            << " Deeploy ops, so absolute MAC/cyc is higher; the "
               "sparse-vs-dense ratios are the\n"
            << " reproduced quantity.\n";
  return 0;
}
