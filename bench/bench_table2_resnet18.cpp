// E3 — Table 2 (ResNet18 / CIFAR-100 geometry): end-to-end deployment of
// the dense baselines and the 1:4 / 1:8 / 1:16 sparse variants with the
// SW-only and ISA-extended kernels. The accuracy column reports the
// paper's measured values (training on CIFAR-100 is outside this repo;
// see DESIGN.md and bench_accuracy_trend for the substitute experiment).

#include "bench_util.hpp"

using namespace decimate;
using namespace decimate::bench;

int main() {
  std::cout << "=== Table 2: ResNet18 (CIFAR geometry, 32x32 input) ===\n\n";
  Rng rng(11);
  const Tensor8 input = Tensor8::random({32, 32, 4}, rng);

  struct Row {
    std::string name;
    const char* paper_acc;
    NetworkRun run;
  };
  std::vector<Row> rows;

  auto run_model = [&](int m, const CompileOptions& opt) {
    Resnet18Options ropt;
    ropt.sparsity_m = m;
    ScheduleExecutor exec(opt);
    return exec.run(build_resnet18(ropt), input);
  };

  rows.push_back({"Dense 1x2", "75.28*", run_model(0, dense_1x2_options())});
  rows.push_back({"PULP-NN", "75.28*", run_model(0, pulpnn_options())});
  for (int m : {4, 8, 16}) {
    const char* acc = (m == 4) ? "75.78*" : (m == 8) ? "75.63*" : "73.79*";
    rows.push_back({"1:" + std::to_string(m) + " SW", acc,
                    run_model(m, sparse_options(false))});
    rows.push_back({"1:" + std::to_string(m) + " ISA", acc,
                    run_model(m, sparse_options(true))});
  }

  Table t({"model", "acc[%]", "MAC/cyc", "Mcyc", "mem[MB]", "vs 1x2",
           "vs PULP-NN"});
  const uint64_t base_1x2 = rows[0].run.total_cycles;
  const uint64_t base_pn = rows[1].run.total_cycles;
  for (const auto& r : rows) {
    t.add_row({r.name, r.paper_acc, Table::num(r.run.macs_per_cycle(), 2),
               mcyc(r.run.total_cycles),
               Table::num(static_cast<double>(r.run.weight_bytes) / 1e6, 2),
               speedup(base_1x2, r.run.total_cycles),
               speedup(base_pn, r.run.total_cycles)});
  }
  std::cout << t << "\n"
            << "*accuracy values are the paper's measured CIFAR-100 results "
               "(Table 2), reported\n"
            << " as recorded constants; latency/memory columns are measured "
               "on this simulator.\n\n"
            << "paper reference (Table 2): dense 1x2 66.63 Mcyc @ 8.33; "
               "PULP-NN 49.71 @ 11.17;\n"
            << " SW 1:4/8/16 = 68.44/37.57/21.48 Mcyc; ISA = "
               "37.67/24.01/15.48 Mcyc;\n"
            << " mem 11.22 -> 3.66/2.29/1.26 (SW) and 4.35/2.98/1.60 (ISA) "
               "MB.\n";
  return 0;
}
