// E12 — TCDM banking/contention ablation: the default cycle model assumes
// the ideal single-cycle L1 of the paper's analysis; the lockstep mode
// arbitrates the word-interleaved banks cycle-by-cycle with rotating
// priority. This bench quantifies how much contention the dense and
// sparse kernels actually generate.

#include "bench_util.hpp"

using namespace decimate;
using namespace decimate::bench;

int main() {
  std::cout << "=== Ablation: TCDM bank contention (lockstep mode) ===\n\n";
  Table t({"kernel", "ideal [kcyc]", "16 banks [kcyc]", "contention"});
  const ConvGeom g{.ix = 8, .iy = 8, .c = 64, .k = 32, .fx = 3, .fy = 3,
                   .stride = 1, .pad = 1};
  struct Cfg {
    const char* name;
    int m;
    bool isa;
    bool sparse;
  };
  for (const auto& cfg :
       {Cfg{"dense 1x2", 0, false, false}, Cfg{"SW 1:8", 8, false, true},
        Cfg{"ISA 1:8", 8, true, true}, Cfg{"ISA 1:16", 16, true, true}}) {
    CompileOptions ideal =
        cfg.sparse ? sparse_options(cfg.isa) : dense_1x2_options();
    CompileOptions locks = ideal;
    locks.lockstep = true;
    const auto a = deploy(single_conv_graph(g, cfg.m), {8, 8, 64}, ideal);
    const auto b = deploy(single_conv_graph(g, cfg.m), {8, 8, 64}, locks);
    t.add_row({cfg.name, Table::num(a.total_cycles / 1e3, 1),
               Table::num(b.total_cycles / 1e3, 1),
               "+" + Table::num(100.0 * (static_cast<double>(b.total_cycles) /
                                             a.total_cycles -
                                         1.0),
                                1) +
                   "%"});
  }
  std::cout << t << "\n"
            << "the byte-granular gathers of the sparse kernels spread "
               "across banks; contention\n"
            << "stays small, supporting the ideal-L1 assumption of the "
               "paper's analysis.\n";
  return 0;
}
