// Serving throughput vs SLO: a deterministic Poisson-like request trace
// (seeded via common/rng.hpp) is served through the full runtime —
// Server queue -> SLO Batcher -> PlanStore -> Dispatcher — while the SLO
// deadline sweeps from tight to loose. Per point we report the deadline
// hit rate, modeled throughput, latency percentiles, and which execution
// mode the dispatcher chose (batch-fused / sharded single-image /
// data-parallel). On ResNet18 the bench asserts the headline behavior:
// at the loosest SLO the dispatcher serves batch-fused plans at a higher
// throughput than the batch=1 serial baseline, at the tightest it shards
// single images below the single-cluster latency, every served output is
// bit-exact with a sequential ExecutionEngine::run, and nothing compiles
// after PlanStore warm-up. Results land in BENCH_serve.json.
//
//   ./bench_serving [--smoke] [--out PATH] [--registry DIR]
//                   [--wallclock] [--overload] [--faults]
//
// --smoke shrinks the models and traces so CI can run the bench in
// seconds. --registry attaches DIR as the PlanStore's artifact tier:
// warm-up plans come from (and freshly compiled ones are published to)
// the registry, and the latency cache persists to DIR/latencies.bin —
// a second run against the same DIR warms up with zero compiles and
// zero ISS invocations.
//
// --wallclock appends a wall-clock overload sweep (ServerMode::
// kWallClock, real threads, steady-clock deadlines): seeded Poisson
// arrivals are paced in wall time at a multiple of the server's modeled
// sustained img/s, and each point reports offered load vs goodput, wall
// latency percentiles, shed/reject rates, and the deadline-miss rate
// among served requests. --overload sweeps 0.5x/1x/2x/4x sustained
// (without it only the 2x point runs); in --smoke the 2x point asserts
// the headline robustness claim — the excess load is shed with typed
// reasons while every admitted-and-served request meets its SLO.
// --faults additionally injects a deterministic transient-exception
// schedule into dispatch execution and asserts the retry ladder absorbs
// it (requests still complete, nothing terminally fails).

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include <thread>

#include "bench_util.hpp"
#include "exec/engine.hpp"
#include "serve/fault.hpp"
#include "serve/server.hpp"
#include "serve/wallclock.hpp"
#include "trace/energy_attr.hpp"
#include "trace/metrics.hpp"

using namespace decimate;

namespace {

struct ScenarioRow {
  std::string model;
  double deadline_x_total = 0.0;  // deadline as a multiple of total1
  uint64_t deadline = 0;
  int requests = 0;
  double hit_rate = 0.0;
  double miss_rate = 0.0;  // deadline misses / requests
  double throughput_ipmc = 0.0;  // images per modeled megacycle
  uint64_t p50_latency = 0;
  uint64_t p95_latency = 0;
  uint64_t p99_latency = 0;
  uint64_t p50_wait = 0;  // queue wait (arrival -> dispatch)
  uint64_t p95_wait = 0;
  uint64_t p99_wait = 0;
  uint64_t mean_exec = 0;
  double mean_nj = 0.0;  // modeled energy per request
  std::map<std::string, int> modes;
};

struct ModelReport {
  std::string name;
  uint64_t total1 = 0;          // batch=1 single-cluster cycles
  uint64_t shard_critical = 0;  // single image across all clusters
  double serial_ipmc = 0.0;     // batch=1 serial baseline on the trace
  std::vector<ScenarioRow> rows;
};

uint64_t percentile(std::vector<uint64_t> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t i = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

/// Deterministic Poisson-like arrivals: exponential gaps of the given
/// mean, one fresh random image per request.
std::vector<Request> poisson_trace(int model, const std::vector<int>& shape,
                                   int n, double mean_gap_cycles,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<Request> trace;
  trace.reserve(static_cast<size_t>(n));
  uint64_t t = 0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    t += static_cast<uint64_t>(-mean_gap_cycles * std::log1p(-u));
    trace.push_back(Request{static_cast<uint64_t>(i), model, t,
                            Tensor8::random(shape, rng)});
  }
  return trace;
}

std::vector<Request> copy_trace(const std::vector<Request>& trace) {
  std::vector<Request> out;
  out.reserve(trace.size());
  for (const Request& r : trace) {
    out.push_back(Request{r.id, r.model, r.arrival_cycles, r.input});
  }
  return out;
}

std::vector<Served> serve_trace(Dispatcher& dispatcher, const SloConfig& slo,
                                std::vector<Request> trace) {
  Server server(dispatcher, slo);
  for (Request& r : trace) server.submit(std::move(r));
  server.close();
  return server.serve();
}

/// Sustained serving rate: images per megacycle between the first
/// dispatch and the last completion. Measuring from the first dispatch
/// (not the first arrival) keeps short traces honest — the initial
/// batch-fill wait is a fixed offset that a long-running server
/// amortizes away, and it is already charged to the latency percentiles.
double throughput_ipmc(const std::vector<Served>& served) {
  uint64_t first = UINT64_MAX, last = 0;
  for (const Served& s : served) {
    first = std::min(first, s.stats.dispatch_cycles);
    last = std::max(last, s.stats.completion_cycles);
  }
  return last > first ? static_cast<double>(served.size()) * 1e6 /
                            static_cast<double>(last - first)
                      : 0.0;
}

/// Sequential reference outputs of a trace, computed once: the SLO sweep
/// serves the same trace at every point, and the reference depends only
/// on the inputs.
std::map<uint64_t, Tensor8> reference_outputs(
    PlanStore& store, const std::vector<Request>& trace) {
  ExecutionEngine engine;
  std::map<uint64_t, Tensor8> refs;
  for (const Request& r : trace) {
    refs.emplace(r.id, engine.run(store.plan(r.model, 1, 1), r.input).output);
  }
  return refs;
}

bool check_bit_exact(const std::map<uint64_t, Tensor8>& refs,
                     const std::vector<Served>& served) {
  for (const Served& s : served) {
    if (!(s.output == refs.at(s.stats.id))) {
      std::cerr << "FAIL: request " << s.stats.id << " ("
                << to_string(s.stats.mode)
                << ") differs from the sequential run\n";
      return false;
    }
  }
  return true;
}

ScenarioRow run_scenario(const std::string& model_name,
                         Dispatcher& dispatcher, PlanStore& store,
                         int num_clusters,
                         const std::map<uint64_t, Tensor8>& refs,
                         const std::vector<Request>& trace, uint64_t total1,
                         double deadline_x, bool& bit_exact) {
  const uint64_t deadline =
      static_cast<uint64_t>(deadline_x * static_cast<double>(total1));
  SloConfig slo;
  slo.deadline_cycles = deadline;
  slo.max_wait_cycles = deadline / 4;
  slo.max_batch = 8;

  const auto served = serve_trace(dispatcher, slo, copy_trace(trace));
  bit_exact = bit_exact && check_bit_exact(refs, served);

  ScenarioRow row;
  row.model = model_name;
  row.deadline_x_total = deadline_x;
  row.deadline = deadline;
  row.requests = static_cast<int>(served.size());
  row.throughput_ipmc = throughput_ipmc(served);
  std::vector<uint64_t> latencies;
  std::vector<uint64_t> waits;
  uint64_t exec_sum = 0;
  int hits = 0;
  for (const Served& s : served) {
    latencies.push_back(s.stats.latency_cycles());
    waits.push_back(s.stats.queue_wait_cycles());
    exec_sum += s.stats.exec_cycles();
    hits += s.stats.deadline_hit ? 1 : 0;
    ++row.modes[to_string(s.stats.mode)];
  }
  row.hit_rate = static_cast<double>(hits) / static_cast<double>(served.size());
  row.miss_rate = 1.0 - row.hit_rate;
  row.p50_latency = percentile(latencies, 0.5);
  row.p95_latency = percentile(latencies, 0.95);
  row.p99_latency = percentile(latencies, 0.99);
  row.p50_wait = percentile(waits, 0.5);
  row.p95_wait = percentile(waits, 0.95);
  row.p99_wait = percentile(waits, 0.99);
  row.mean_exec = exec_sum / served.size();
  // modeled joules from the cycle reports of the plans this scenario ran;
  // every plan is already warm, so this never compiles
  row.mean_nj = trace::attribute_energy(served, store, num_clusters)
                    .mean_nj_per_request();
  return row;
}

// --- wall-clock overload sweep ----------------------------------------------

struct WallPoint {
  double mult = 0.0;          // offered load as a multiple of sustained
  double offered_ips = 0.0;   // img/s submitted
  double goodput_ips = 0.0;   // img/s served kOk
  int requests = 0;
  int ok = 0;
  int shed = 0;
  int rejected = 0;
  int failed = 0;
  int redispatched = 0;
  double shed_rate = 0.0;
  double reject_rate = 0.0;
  double miss_rate = 0.0;     // deadline misses / served kOk
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
};

struct WallReport {
  double sustained_ips = 0.0;
  double ns_per_cycle = 0.0;
  uint64_t deadline_ns = 0;
  bool faults = false;
  uint64_t faults_injected = 0;
  std::vector<WallPoint> points;
};

/// One overload point: pace `n` seeded-Poisson arrivals in wall time at
/// `mult` x the server's sustained rate while serve() runs on its own
/// thread, then score the typed outcomes.
WallPoint run_wall_point(PlanStore& store, const DispatchConfig& dcfg,
                         const WallClockConfig& wcfg, int model,
                         const std::vector<int>& shape, int n, double mult,
                         uint64_t seed, bool& bit_exact) {
  WallClockServer server(store, dcfg, wcfg);
  server.warm(model);
  const double sustained = server.sustained_img_per_s(model);
  const double rate = mult * sustained;
  const double mean_gap_ns = 1e9 / rate;

  Rng rng(seed);
  std::vector<Tensor8> inputs;
  std::vector<uint64_t> arrivals;  // target arrival offsets, ns
  inputs.reserve(static_cast<size_t>(n));
  uint64_t t = 0;
  for (int i = 0; i < n; ++i) {
    t += static_cast<uint64_t>(-mean_gap_ns * std::log1p(-rng.uniform()));
    arrivals.push_back(t);
    inputs.push_back(Tensor8::random(shape, rng));
  }

  std::vector<WallServed> done;
  std::thread server_thread([&] { done = server.serve(); });
  const auto epoch = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    std::this_thread::sleep_until(
        epoch + std::chrono::nanoseconds(arrivals[static_cast<size_t>(i)]));
    WallRequest r;
    r.id = static_cast<uint64_t>(i);
    r.model = model;
    r.input = inputs[static_cast<size_t>(i)];
    server.submit(std::move(r));
  }
  server.close();
  server_thread.join();

  WallPoint pt;
  pt.mult = mult;
  pt.offered_ips = rate;
  pt.requests = n;
  std::vector<uint64_t> latencies;
  uint64_t first_arrival = UINT64_MAX, last_completion = 0;
  int misses = 0;
  ExecutionEngine engine;
  const CompiledPlan& single = store.plan(model, 1, 1);
  for (const WallServed& w : done) {
    switch (w.outcome) {
      case ServeOutcome::kOk: {
        ++pt.ok;
        pt.redispatched += w.redispatched ? 1 : 0;
        misses += w.deadline_hit ? 0 : 1;
        latencies.push_back(w.latency_ns());
        first_arrival = std::min(first_arrival, w.arrival_ns);
        last_completion = std::max(last_completion, w.completion_ns);
        const Tensor8& in = inputs[static_cast<size_t>(w.id)];
        if (!(w.output == engine.run(single, in).output)) {
          std::cerr << "FAIL: wall-clock request " << w.id
                    << " differs from the sequential run\n";
          bit_exact = false;
        }
        break;
      }
      case ServeOutcome::kShed: ++pt.shed; break;
      case ServeOutcome::kRejected: ++pt.rejected; break;
      case ServeOutcome::kFailed: ++pt.failed; break;
    }
  }
  pt.shed_rate = static_cast<double>(pt.shed) / n;
  pt.reject_rate = static_cast<double>(pt.rejected) / n;
  pt.miss_rate = pt.ok > 0 ? static_cast<double>(misses) / pt.ok : 0.0;
  pt.p50_ns = percentile(latencies, 0.5);
  pt.p99_ns = percentile(latencies, 0.99);
  pt.goodput_ips =
      last_completion > first_arrival
          ? static_cast<double>(pt.ok) * 1e9 /
                static_cast<double>(last_completion - first_arrival)
          : 0.0;
  return pt;
}

WallReport run_wall_sweep(PlanStore& store, int model,
                          const std::vector<int>& shape, int clusters,
                          bool smoke, bool overload, bool faults,
                          bool& bit_exact, bool& wall_ok) {
  DispatchConfig dcfg;
  dcfg.num_clusters = clusters;
  dcfg.fused_batches = {1, 2, 4, 8};

  WallClockConfig wcfg;
  wcfg.deadline_ns = 150'000'000;  // 150 ms: generous per-request, binding
                                   // in aggregate once the queue backs up
  wcfg.max_batch = 8;
  wcfg.admission.max_queue_depth = smoke ? 8 : 16;
  wcfg.watchdog_floor_ns = 20'000'000;  // recovery still fits the SLO

  // deterministic transient-exception schedule: every 5th dispatch
  // (phase 2) throws before executing; retry-with-backoff must absorb it
  fault::FaultInjector injector(0xc4a05);
  if (faults) {
    fault::SitePlan plan;
    plan.kind = fault::Kind::kException;
    plan.period = 5;
    plan.phase = 2;
    injector.set_plan(fault::Site::kDispatchExec, plan);
    fault::FaultInjector::install(&injector);
  }
  const uint64_t retries_before =
      metrics::registry().counter("serve.wall.retries").value();

  WallReport report;
  report.deadline_ns = wcfg.deadline_ns;
  report.faults = faults;
  const int n = smoke ? 48 : 128;
  const std::vector<double> mults =
      overload ? std::vector<double>{0.5, 1.0, 2.0, 4.0}
               : std::vector<double>{2.0};
  for (size_t i = 0; i < mults.size(); ++i) {
    report.points.push_back(run_wall_point(store, dcfg, wcfg, model, shape, n,
                                           mults[i],
                                           0xbe7c + static_cast<uint64_t>(i),
                                           bit_exact));
  }
  {
    // sustained/calibration snapshot from a fresh server (cheap: every
    // plan is warm)
    WallClockServer probe(store, dcfg, wcfg);
    probe.warm(model);
    report.sustained_ips = probe.sustained_img_per_s(model);
    report.ns_per_cycle = probe.ns_per_cycle();
  }
  if (faults) {
    fault::FaultInjector::install(nullptr);
    report.faults_injected = injector.injected(fault::Site::kDispatchExec);
    if (report.faults_injected == 0) {
      std::cerr << "FAIL: --faults injected nothing\n";
      wall_ok = false;
    }
    if (metrics::registry().counter("serve.wall.retries").value() ==
        retries_before) {
      std::cerr << "FAIL: injected faults never exercised the retry ladder\n";
      wall_ok = false;
    }
  }

  for (const WallPoint& pt : report.points) {
    if (pt.failed != 0) {
      std::cerr << "FAIL: " << pt.failed << " requests terminally failed at "
                << pt.mult << "x (every fault class must recover or shed)\n";
      wall_ok = false;
    }
    if (pt.ok + pt.shed + pt.rejected + pt.failed != pt.requests) {
      std::cerr << "FAIL: outcomes do not cover the trace at " << pt.mult
                << "x\n";
      wall_ok = false;
    }
  }
  if (smoke) {
    // the headline robustness claim, asserted at 2x sustained: excess
    // load sheds with typed reasons while every served request meets its
    // deadline
    for (const WallPoint& pt : report.points) {
      if (pt.mult != 2.0) continue;
      if (pt.miss_rate != 0.0) {
        std::cerr << "FAIL: deadline misses among served requests at 2x ("
                  << pt.miss_rate << ")\n";
        wall_ok = false;
      }
      if (pt.shed + pt.rejected == 0) {
        std::cerr << "FAIL: 2x overload shed/rejected nothing\n";
        wall_ok = false;
      }
    }
  }
  return report;
}

void emit_json(std::ostream& os, bool smoke, int clusters,
               const std::vector<ModelReport>& reports, int compiles_warm,
               int compiles_total, int registry_loads, bool bit_exact,
               const WallReport* wall) {
  os << "{\n  \"bench\": \"serving\",\n  \"smoke\": "
     << (smoke ? "true" : "false") << ",\n  \"num_clusters\": " << clusters
     << ",\n  \"compiles_at_warmup\": " << compiles_warm
     << ",\n  \"compiles_after_serving\": " << compiles_total
     << ",\n  \"registry_loads\": " << registry_loads
     << ",\n  \"bit_exact\": " << (bit_exact ? "true" : "false")
     << ",\n  \"models\": [\n";
  for (size_t mi = 0; mi < reports.size(); ++mi) {
    const ModelReport& m = reports[mi];
    os << "    {\"model\": \"" << m.name << "\", \"total_cycles_batch1\": "
       << m.total1 << ", \"shard_critical_cycles\": " << m.shard_critical
       << ", \"serial_throughput_ipmc\": " << m.serial_ipmc
       << ",\n     \"slo_sweep\": [\n";
    for (size_t i = 0; i < m.rows.size(); ++i) {
      const ScenarioRow& r = m.rows[i];
      os << "       {\"deadline_x_total\": " << r.deadline_x_total
         << ", \"deadline_cycles\": " << r.deadline << ", \"requests\": "
         << r.requests << ", \"hit_rate\": " << r.hit_rate
         << ", \"deadline_miss_rate\": " << r.miss_rate
         << ", \"throughput_ipmc\": " << r.throughput_ipmc
         << ", \"p50_latency\": " << r.p50_latency << ", \"p95_latency\": "
         << r.p95_latency << ", \"p99_latency\": " << r.p99_latency
         << ", \"p50_wait\": " << r.p50_wait << ", \"p95_wait\": "
         << r.p95_wait << ", \"p99_wait\": " << r.p99_wait
         << ", \"mean_exec_cycles\": " << r.mean_exec
         << ", \"mean_nj_per_request\": " << r.mean_nj << ", \"modes\": {";
      bool first = true;
      for (const auto& [mode, count] : r.modes) {
        os << (first ? "" : ", ") << "\"" << mode << "\": " << count;
        first = false;
      }
      os << "}}" << (i + 1 < m.rows.size() ? "," : "") << "\n";
    }
    os << "     ]}" << (mi + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "  ]";
  if (wall != nullptr) {
    os << ",\n  \"wallclock\": {\n    \"sustained_img_per_s\": "
       << wall->sustained_ips << ",\n    \"ns_per_cycle\": "
       << wall->ns_per_cycle << ",\n    \"deadline_ns\": "
       << wall->deadline_ns << ",\n    \"faults\": "
       << (wall->faults ? "true" : "false")
       << ",\n    \"faults_injected\": " << wall->faults_injected
       << ",\n    \"overload_sweep\": [\n";
    for (size_t i = 0; i < wall->points.size(); ++i) {
      const WallPoint& p = wall->points[i];
      os << "      {\"offered_x_sustained\": " << p.mult
         << ", \"offered_img_per_s\": " << p.offered_ips
         << ", \"goodput_img_per_s\": " << p.goodput_ips
         << ", \"requests\": " << p.requests << ", \"ok\": " << p.ok
         << ", \"shed\": " << p.shed << ", \"rejected\": " << p.rejected
         << ", \"failed\": " << p.failed << ", \"redispatched\": "
         << p.redispatched << ", \"shed_rate\": " << p.shed_rate
         << ", \"reject_rate\": " << p.reject_rate
         << ", \"deadline_miss_rate\": " << p.miss_rate
         << ", \"p50_latency_ns\": " << p.p50_ns
         << ", \"p99_latency_ns\": " << p.p99_ns << "}"
         << (i + 1 < wall->points.size() ? "," : "") << "\n";
    }
    os << "    ]\n  }";
  }
  os << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool wallclock = false;
  bool overload = false;
  bool faults = false;
  std::string out_path = "BENCH_serve.json";
  std::string registry_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--wallclock") == 0) {
      wallclock = true;
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      overload = true;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      faults = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--registry") == 0 && i + 1 < argc) {
      registry_dir = argv[++i];
    } else {
      std::cerr << "usage: bench_serving [--smoke] [--out PATH] "
                   "[--registry DIR] [--wallclock] [--overload] [--faults]\n";
      return 1;
    }
  }

  constexpr int kClusters = 4;
  CompileOptions copt;
  copt.enable_isa = true;
  if (!registry_dir.empty()) {
    // the registry carries the ISS warm file alongside the artifacts;
    // setting the path before construction makes the store load it
    copt.latency_cache_path = registry_dir + "/latencies.bin";
  }
  PlanStore store(copt);
  if (!registry_dir.empty()) store.attach_registry(registry_dir);
  DispatchConfig cfg;
  cfg.num_clusters = kClusters;
  cfg.fused_batches = {1, 2, 4, 8};
  Dispatcher dispatcher(store, cfg);
  // batch=1 serial baseline: one cluster, no fusion — the deployment the
  // paper's per-layer numbers describe
  DispatchConfig serial_cfg;
  serial_cfg.num_clusters = 1;
  serial_cfg.fused_batches = {1};
  Dispatcher serial(store, serial_cfg);

  // The asserted headline model is ResNet18 at 16x16 input: there the
  // sparse conv stack is weight-DMA-bound, the regime where batch fusion
  // buys pipelined cycles and the loose-SLO story holds. At 32x32 the
  // same sparse network is compute-bound — fusion's weight-DMA savings
  // hide behind compute and the dispatcher (correctly) keeps preferring
  // sharded/data-parallel execution at every SLO; the full bench serves
  // that geometry too, assertion-free, to document the crossover.
  Resnet18Options mopt;
  mopt.sparsity_m = 8;
  mopt.input_hw = 16;
  const Graph resnet = build_resnet18(mopt);
  Resnet18Options mopt32 = mopt;
  mopt32.input_hw = 32;
  const Graph resnet32 = build_resnet18(mopt32);
  const int tokens = smoke ? 96 : 196;
  const int d = smoke ? 128 : 384;
  const int hidden = smoke ? 512 : 1536;
  const Graph ffn = build_ffn_block(tokens, d, hidden, 8, 11);

  struct ModelSpec {
    std::string name;
    const Graph* graph;
    uint64_t seed;
    bool assert_headline;
  };
  std::vector<ModelSpec> specs = {{"resnet18", &resnet, 101, true},
                                  {"vit_ffn", &ffn, 102, false}};
  if (!smoke) specs.push_back({"resnet18_hw32", &resnet32, 103, false});
  const std::vector<double> deadline_sweep = {0.6, 1.0, 2.0, 4.0, 8.0, 40.0};
  const int n_requests = smoke ? 16 : 48;

  // --- warm-up: after this, serving must never compile ----------------------
  std::vector<int> ids;
  for (const ModelSpec& spec : specs) {
    const int id = store.add_model(*spec.graph);
    dispatcher.warm(id);
    serial.warm(id);
    ids.push_back(id);
  }
  const int compiles_warm = store.compiles();

  std::vector<ModelReport> reports;
  bool bit_exact = true;
  bool modes_ok = true;
  for (size_t si = 0; si < specs.size(); ++si) {
    const ModelSpec& spec = specs[si];
    const int id = ids[si];
    ModelReport report;
    report.name = spec.name;
    report.total1 = store.plan(id, 1, 1).total_cycles;
    report.shard_critical =
        dispatcher
            .evaluate(id, 1, {0}, 0, SloConfig{0, UINT64_MAX, 1})[1]
            .completion_cycles[0];

    // offered load ~2 requests per single-image latency: above the
    // one-cluster service rate (so loose SLOs fill batches and the serial
    // baseline saturates) but below the sharded rate (so tight SLOs stay
    // stable instead of backing up into deep, always-late batches)
    const auto trace =
        poisson_trace(id, spec.graph->node(0).out_shape, n_requests,
                      static_cast<double>(report.total1) / 2.0, spec.seed);

    const auto refs = reference_outputs(store, trace);
    const auto serial_served =
        serve_trace(serial, SloConfig{0, UINT64_MAX, 1}, copy_trace(trace));
    bit_exact = bit_exact && check_bit_exact(refs, serial_served);
    report.serial_ipmc = throughput_ipmc(serial_served);

    for (const double dx : deadline_sweep) {
      report.rows.push_back(run_scenario(spec.name, dispatcher, store,
                                         kClusters, refs, trace, report.total1,
                                         dx, bit_exact));
    }

    if (spec.assert_headline) {
      const ScenarioRow& tight = report.rows.front();
      const ScenarioRow& loose = report.rows.back();
      if (loose.modes.count("batch_fused") == 0 ||
          loose.modes.at("batch_fused") < n_requests / 2) {
        std::cerr << "FAIL: loose SLO should serve batch-fused plans\n";
        modes_ok = false;
      }
      if (loose.throughput_ipmc <= report.serial_ipmc) {
        std::cerr << "FAIL: loose-SLO throughput (" << loose.throughput_ipmc
                  << " img/Mcyc) does not beat the batch=1 serial baseline ("
                  << report.serial_ipmc << ")\n";
        modes_ok = false;
      }
      if (tight.modes.count("sharded_single") == 0 ||
          tight.modes.at("sharded_single") < n_requests / 2) {
        std::cerr << "FAIL: tight SLO should shard single images\n";
        modes_ok = false;
      }
      if (tight.mean_exec >= report.total1) {
        std::cerr << "FAIL: tight-SLO exec latency (" << tight.mean_exec
                  << ") does not beat the single-cluster total ("
                  << report.total1 << ")\n";
        modes_ok = false;
      }
    }
    reports.push_back(std::move(report));
  }

  const int compiles_total = store.compiles();

  Table t({"model", "SLO x total", "hit%", "img/Mcyc", "p95 lat Mcyc",
           "p99 lat Mcyc", "p95 wait Mcyc", "uJ/img", "fused", "sharded",
           "data-par"});
  for (const ModelReport& m : reports) {
    for (const ScenarioRow& r : m.rows) {
      const auto count = [&](const char* k) {
        const auto it = r.modes.find(k);
        return std::to_string(it == r.modes.end() ? 0 : it->second);
      };
      t.add_row({m.name, Table::num(r.deadline_x_total, 1),
                 Table::num(100.0 * r.hit_rate, 0),
                 Table::num(r.throughput_ipmc, 2),
                 Table::num(static_cast<double>(r.p95_latency) / 1e6, 2),
                 Table::num(static_cast<double>(r.p99_latency) / 1e6, 2),
                 Table::num(static_cast<double>(r.p95_wait) / 1e6, 2),
                 Table::num(r.mean_nj / 1e3, 1), count("batch_fused"),
                 count("sharded_single"), count("data_parallel")});
    }
  }
  std::cout << t;
  for (const ModelReport& m : reports) {
    std::cout << m.name << ": serial baseline " << Table::num(m.serial_ipmc, 2)
              << " img/Mcyc, total1 " << m.total1 << " cyc, shard critical "
              << m.shard_critical << " cyc\n";
  }
  std::cout << "compiles: " << compiles_warm << " at warm-up, "
            << compiles_total << " after serving\n";
  if (!registry_dir.empty()) {
    store.save_latencies();
    std::cout << "registry " << registry_dir << ": " << store.registry_loads()
              << " plans loaded, " << compiles_total << " compiled+published\n";
  }

  bool ok = bit_exact && modes_ok;
  if (compiles_total != compiles_warm) {
    std::cerr << "FAIL: serving recompiled after PlanStore warm-up ("
              << compiles_warm << " -> " << compiles_total << ")\n";
    ok = false;
  }

  // --- wall-clock overload sweep (real threads, steady-clock deadlines) -----
  WallReport wall;
  bool wall_ok = true;
  if (wallclock) {
    const int id = ids[0];  // the headline ResNet18 geometry
    wall = run_wall_sweep(store, id, specs[0].graph->node(0).out_shape,
                          kClusters, smoke, overload, faults, bit_exact,
                          wall_ok);
    Table wt({"offered x", "offered img/s", "goodput img/s", "ok", "shed",
              "rej", "fail", "redisp", "miss%", "p50 ms", "p99 ms"});
    for (const WallPoint& p : wall.points) {
      wt.add_row({Table::num(p.mult, 1), Table::num(p.offered_ips, 0),
                  Table::num(p.goodput_ips, 0), std::to_string(p.ok),
                  std::to_string(p.shed), std::to_string(p.rejected),
                  std::to_string(p.failed), std::to_string(p.redispatched),
                  Table::num(100.0 * p.miss_rate, 1),
                  Table::num(static_cast<double>(p.p50_ns) / 1e6, 2),
                  Table::num(static_cast<double>(p.p99_ns) / 1e6, 2)});
    }
    std::cout << "\nwall-clock overload sweep (sustained "
              << Table::num(wall.sustained_ips, 0) << " img/s, "
              << Table::num(wall.ns_per_cycle, 3) << " ns/cycle, deadline "
              << wall.deadline_ns / 1'000'000 << " ms"
              << (faults ? ", transient faults injected" : "") << ")\n"
              << wt;
    if (store.compiles() != compiles_total) {
      std::cerr << "FAIL: the wall-clock sweep recompiled plans ("
                << compiles_total << " -> " << store.compiles() << ")\n";
      wall_ok = false;
    }
    ok = ok && wall_ok && bit_exact;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  emit_json(out, smoke, kClusters, reports, compiles_warm, compiles_total,
            store.registry_loads(), bit_exact, wallclock ? &wall : nullptr);
  std::cout << "wrote " << out_path << "\n";
  return ok ? 0 : 1;
}
