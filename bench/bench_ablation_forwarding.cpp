// E11 — ablation of the XFU WB->EX forwarding path (Sec. 4.3): without it,
// every xDecimate following another xDecimate stalls one cycle on the csr
// dependency. Cost of the forwarding logic: ~0.2 kGE (see E8).

#include "bench_util.hpp"
#include "hw/xfu_area.hpp"

using namespace decimate;
using namespace decimate::bench;

int main() {
  std::cout << "=== Ablation: XFU forwarding path (Sec. 4.3) ===\n\n";
  Table t({"layer", "M", "with fwd [kcyc]", "no fwd [kcyc]", "slowdown",
           "xdec stalls"});
  for (int m : {4, 8, 16}) {
    const ConvGeom g{.ix = 8, .iy = 8, .c = 128, .k = 64, .fx = 3, .fy = 3,
                     .stride = 1, .pad = 1};
    CompileOptions fwd = sparse_options(true);
    CompileOptions nofwd = sparse_options(true);
    nofwd.xdec_forwarding = false;
    const auto a = deploy(single_conv_graph(g, m), {8, 8, 128}, fwd);
    const auto b = deploy(single_conv_graph(g, m), {8, 8, 128}, nofwd);
    t.add_row({"conv 8x8x128->64", std::to_string(m),
               Table::num(a.total_cycles / 1e3, 1),
               Table::num(b.total_cycles / 1e3, 1),
               speedup(b.total_cycles, a.total_cycles),
               "8/inner-iter"});
  }
  std::cout << t << "\n";
  const XfuAreaModel area;
  std::cout << "forwarding logic cost: 0.20 kGE of "
            << Table::num(area.xfu_kge(), 2)
            << " kGE XFU total — cheap insurance for ~8 stalls per inner "
               "iteration avoided.\n"
            << "(slowdown = no-forwarding cycles / forwarding cycles.)\n";
  return 0;
}
