// Host wall-clock throughput: the repo's first real-time (not modeled-
// cycle) perf baseline. Measures images/second and ns per dense-
// equivalent MAC of the host execution path — reference scalar ops vs
// the HostKernelDispatch kernels (blocked dense, N:M sparse gather) —
// across ResNet18 and the ViT FFN block, dense and sparse M in {4,8,16},
// in three deployment shapes: single-image engine.run, pipelined
// engine.run_batch, and MultiClusterEngine-sharded. Every host output is
// asserted bit-identical to the reference-kernel output, and the bench
// fails hard if sparse M=4 ResNet18 is not >= 2.5x the ref_ops baseline
// measured in the same run, or if blocked dense falls below 1x.
//
//   ./bench_host_throughput [--smoke] [--out PATH]
//
// --smoke shrinks the models so CI finishes in seconds.

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/compile.hpp"
#include "exec/engine.hpp"
#include "shard/multi_cluster_engine.hpp"

using namespace decimate;

namespace {

struct Row {
  std::string model;
  int m = 0;  // 0 = dense
  std::string mode;  // ref | host | host_batch | host_shard
  double ms_per_img = 0.0;
  double img_per_s = 0.0;
  double ns_per_mac = 0.0;   // dense-equivalent MACs
  double speedup_vs_ref = 0.0;
  bool bit_exact = false;
};

/// Best-of-reps wall seconds of f() (steady clock).
template <typename F>
double time_best_s(int reps, F&& f) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

struct BenchConfig {
  bool smoke = false;
  int reps = 3;
  int batch = 8;
  int clusters = 4;
};

/// One (model, m) workload through all four modes, appending rows.
void bench_workload(const std::string& name, const Graph& graph,
                    const std::vector<int>& in_shape, int m,
                    const BenchConfig& cfg,
                    const std::shared_ptr<TileLatencyCache>& cache,
                    std::vector<Row>& rows) {
  Rng rng(23);
  const Tensor8 input = Tensor8::random(in_shape, rng);
  std::vector<Tensor8> batch_inputs;
  for (int i = 0; i < cfg.batch; ++i) {
    batch_inputs.push_back(Tensor8::random(in_shape, rng));
  }

  CompileOptions opt;  // SW kernel selection: sparse steps pack kSw layout
  Compiler compiler(opt, cache);
  const CompiledPlan plan = compiler.compile(graph);

  CompileOptions shard_opt = opt;
  shard_opt.num_clusters = cfg.clusters;
  Compiler shard_compiler(shard_opt, cache);
  const CompiledPlan shard_plan = shard_compiler.compile(graph);

  ExecutionEngine ref_engine;
  ref_engine.set_use_host_kernels(false);
  ExecutionEngine host_engine;  // host kernels on by default

  // reference outputs (the bit-exactness oracle for every mode)
  const NetworkRun ref_run = ref_engine.run(plan, input);
  std::vector<Tensor8> ref_batch_out;
  for (const Tensor8& bi : batch_inputs) {
    ref_batch_out.push_back(ref_engine.run(plan, bi).output);
  }
  const double macs = static_cast<double>(plan.total_macs);

  const auto add_row = [&](const std::string& mode, double s_per_img,
                           double ref_s, bool exact) {
    Row r;
    r.model = name;
    r.m = m;
    r.mode = mode;
    r.ms_per_img = s_per_img * 1e3;
    r.img_per_s = s_per_img > 0 ? 1.0 / s_per_img : 0.0;
    r.ns_per_mac = macs > 0 ? s_per_img * 1e9 / macs : 0.0;
    r.speedup_vs_ref = s_per_img > 0 ? ref_s / s_per_img : 0.0;
    r.bit_exact = exact;
    rows.push_back(r);
  };

  // --- ref: the scalar reference ops, single image -----------------------
  const double ref_s =
      time_best_s(cfg.reps, [&] { ref_engine.run(plan, input); });
  add_row("ref", ref_s, ref_s, true);

  // --- host: HostKernelDispatch, single image ----------------------------
  Tensor8 host_out;
  const double host_s = time_best_s(cfg.reps, [&] {
    host_out = host_engine.run(plan, input).output;
  });
  add_row("host", host_s, ref_s, host_out == ref_run.output);

  // --- host_batch: pipelined run_batch on the persistent pool ------------
  BatchRun batch_run;
  const double batch_s = time_best_s(
      cfg.reps, [&] { batch_run = host_engine.run_batch(plan, batch_inputs); });
  bool batch_exact = true;
  for (size_t i = 0; i < batch_run.runs.size(); ++i) {
    batch_exact = batch_exact && batch_run.runs[i].output == ref_batch_out[i];
  }
  add_row("host_batch", batch_s / cfg.batch, ref_s, batch_exact);

  // --- host_shard: MultiClusterEngine slices, single image ---------------
  MultiClusterEngine mce(cfg.clusters);
  Tensor8 shard_out;
  const double shard_s = time_best_s(cfg.reps, [&] {
    shard_out = mce.run(shard_plan, input).run.output;
  });
  add_row("host_shard", shard_s, ref_s, shard_out == ref_run.output);
}

void emit_json(std::ostream& os, bool smoke, const std::vector<Row>& rows) {
  os << "{\n  \"bench\": \"host_throughput\",\n  \"smoke\": "
     << (smoke ? "true" : "false") << ",\n  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"model\": \"" << r.model << "\", \"m\": " << r.m
       << ", \"mode\": \"" << r.mode
       << "\", \"ms_per_img\": " << r.ms_per_img
       << ", \"img_per_s\": " << r.img_per_s
       << ", \"ns_per_mac\": " << r.ns_per_mac
       << ", \"speedup_vs_ref\": " << r.speedup_vs_ref
       << ", \"bit_exact\": " << (r.bit_exact ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  std::string out_path = "BENCH_host.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
      cfg.batch = 4;
      cfg.clusters = 2;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_host_throughput [--smoke] [--out PATH]\n";
      return 1;
    }
  }

  const auto cache = std::make_shared<TileLatencyCache>();
  std::vector<Row> rows;

  const int hw = cfg.smoke ? 16 : 32;
  for (const int m : {0, 4, 8, 16}) {
    Resnet18Options mopt;
    mopt.sparsity_m = m;
    mopt.input_hw = hw;
    bench_workload("resnet18", build_resnet18(mopt), {hw, hw, 4}, m, cfg,
                   cache, rows);
  }

  const int tokens = cfg.smoke ? 96 : 196;
  const int d = cfg.smoke ? 128 : 384;
  const int hidden = cfg.smoke ? 512 : 1536;
  for (const int m : {0, 4, 8, 16}) {
    bench_workload("vit_ffn", build_ffn_block(tokens, d, hidden, m, 11),
                   {tokens, d}, m, cfg, cache, rows);
  }

  // exit-code gates: full runs enforce the real targets (>= 2.5x sparse
  // M=4, dense no slower than ref); --smoke pads them for shared-CI
  // noise — tiny models on noisy runners can swing ratios ~15% — while
  // the JSON still records the measured values
  const double sparse_gate = cfg.smoke ? 2.0 : 2.5;
  const double dense_gate = cfg.smoke ? 0.85 : 1.0;
  Table t({"model", "m", "mode", "ms/img", "img/s", "ns/MAC", "vs ref",
           "bit-exact"});
  bool all_exact = true;
  double resnet_m4_host_speedup = 0.0;
  bool dense_ok = true;
  for (const Row& r : rows) {
    all_exact = all_exact && r.bit_exact;
    if (r.model == "resnet18" && r.m == 4 && r.mode == "host") {
      resnet_m4_host_speedup = r.speedup_vs_ref;
    }
    if (r.m == 0 && r.mode == "host") {
      dense_ok = dense_ok && r.speedup_vs_ref >= dense_gate;
    }
    t.add_row({r.model, std::to_string(r.m), r.mode,
               Table::num(r.ms_per_img, 2), Table::num(r.img_per_s, 1),
               Table::num(r.ns_per_mac, 3),
               Table::num(r.speedup_vs_ref, 2) + "x",
               r.bit_exact ? "yes" : "NO"});
  }
  std::cout << t;

  if (!all_exact) {
    std::cerr << "FAIL: a host-kernel output differs from the reference\n";
    return 1;
  }
  if (resnet_m4_host_speedup < sparse_gate) {
    std::cerr << "FAIL: sparse M=4 ResNet18 host speedup "
              << resnet_m4_host_speedup << "x < " << sparse_gate
              << "x gate\n";
    return 1;
  }
  if (!dense_ok) {
    std::cerr << "FAIL: blocked dense host kernels slower than ref_ops\n";
    return 1;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  emit_json(out, cfg.smoke, rows);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
