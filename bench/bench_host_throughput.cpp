// Host wall-clock throughput: the repo's real-time (not modeled-cycle)
// perf baseline. Measures images/second and ns per dense-equivalent MAC
// of the host execution path — reference scalar ops vs the
// HostKernelDispatch instance library (SIMD blocked dense, N:M sparse
// gather) — across ResNet18 and the ViT FFN block, dense and sparse M in
// {4,8,16}, in five deployment shapes: single-image engine.run,
// intra-image threaded engine.run, pipelined engine.run_batch,
// MultiClusterEngine-sharded, and MultiClusterEngine data-parallel. Every
// host output is asserted bit-identical to the reference-kernel output.
// A second table micro-benches every registry kernel instance runnable on
// this CPU (ns/MAC on a representative geometry of its family).
//
// Exit-code gates (full run, SIMD host): sparse M=4 ResNet18 >= 4.5x the
// ref_ops baseline measured in the same run, dense ResNet18 (conv-
// dominated) >= 2x. On a scalar-only host the pre-SIMD gates apply
// (>= 2.5x sparse, >= 1x dense).
//
//   ./bench_host_throughput [--smoke] [--out PATH] [--trace-gate]
//
// --smoke shrinks the models so CI finishes in seconds. --trace-gate
// skips the bench and instead measures the runtime cost of span tracing
// (DECIMATE_TRACE builds): same binary, recording toggled off vs on,
// fails if the traced run is more than 5% slower. In untraced builds the
// gate passes vacuously — there is nothing to measure.

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/compile.hpp"
#include "exec/engine.hpp"
#include "nn/host_kernel_instances.hpp"
#include "nn/ref_ops.hpp"
#include "shard/multi_cluster_engine.hpp"
#include "trace/trace.hpp"

using namespace decimate;

namespace {

struct Row {
  std::string model;
  int m = 0;  // 0 = dense
  std::string mode;  // ref | host | host_mt | host_batch | host_shard | host_dp
  double ms_per_img = 0.0;
  double img_per_s = 0.0;
  double ns_per_mac = 0.0;   // dense-equivalent MACs
  double speedup_vs_ref = 0.0;
  bool bit_exact = false;
};

/// Best-of-reps wall seconds of f() (steady clock).
template <typename F>
double time_best_s(int reps, F&& f) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

struct BenchConfig {
  bool smoke = false;
  int reps = 3;
  int batch = 8;
  int clusters = 4;
};

/// One (model, m) workload through all four modes, appending rows.
void bench_workload(const std::string& name, const Graph& graph,
                    const std::vector<int>& in_shape, int m,
                    const BenchConfig& cfg,
                    const std::shared_ptr<TileLatencyCache>& cache,
                    std::vector<Row>& rows) {
  Rng rng(23);
  const Tensor8 input = Tensor8::random(in_shape, rng);
  std::vector<Tensor8> batch_inputs;
  for (int i = 0; i < cfg.batch; ++i) {
    batch_inputs.push_back(Tensor8::random(in_shape, rng));
  }

  CompileOptions opt;  // SW kernel selection: sparse steps pack kSw layout
  Compiler compiler(opt, cache);
  const CompiledPlan plan = compiler.compile(graph);

  CompileOptions shard_opt = opt;
  shard_opt.num_clusters = cfg.clusters;
  Compiler shard_compiler(shard_opt, cache);
  const CompiledPlan shard_plan = shard_compiler.compile(graph);

  ExecutionEngine ref_engine;
  ref_engine.set_use_host_kernels(false);
  ExecutionEngine host_engine;  // host kernels on by default

  // reference outputs (the bit-exactness oracle for every mode)
  const NetworkRun ref_run = ref_engine.run(plan, input);
  std::vector<Tensor8> ref_batch_out;
  for (const Tensor8& bi : batch_inputs) {
    ref_batch_out.push_back(ref_engine.run(plan, bi).output);
  }
  const double macs = static_cast<double>(plan.total_macs);

  const auto add_row = [&](const std::string& mode, double s_per_img,
                           double ref_s, bool exact) {
    Row r;
    r.model = name;
    r.m = m;
    r.mode = mode;
    r.ms_per_img = s_per_img * 1e3;
    r.img_per_s = s_per_img > 0 ? 1.0 / s_per_img : 0.0;
    r.ns_per_mac = macs > 0 ? s_per_img * 1e9 / macs : 0.0;
    r.speedup_vs_ref = s_per_img > 0 ? ref_s / s_per_img : 0.0;
    r.bit_exact = exact;
    rows.push_back(r);
  };

  // --- ref: the scalar reference ops, single image -----------------------
  const double ref_s =
      time_best_s(cfg.reps, [&] { ref_engine.run(plan, input); });
  add_row("ref", ref_s, ref_s, true);

  // --- host: HostKernelDispatch, single image ----------------------------
  Tensor8 host_out;
  const double host_s = time_best_s(cfg.reps, [&] {
    host_out = host_engine.run(plan, input).output;
  });
  add_row("host", host_s, ref_s, host_out == ref_run.output);

  // --- host_batch: pipelined run_batch on the persistent pool ------------
  BatchRun batch_run;
  const double batch_s = time_best_s(
      cfg.reps, [&] { batch_run = host_engine.run_batch(plan, batch_inputs); });
  bool batch_exact = true;
  for (size_t i = 0; i < batch_run.runs.size(); ++i) {
    batch_exact = batch_exact && batch_run.runs[i].output == ref_batch_out[i];
  }
  add_row("host_batch", batch_s / cfg.batch, ref_s, batch_exact);

  // --- host_mt: intra-image threaded single image ------------------------
  ExecutionEngine mt_engine;
  mt_engine.set_intra_image_threads(0);  // hardware concurrency
  Tensor8 mt_out;
  const double mt_s = time_best_s(cfg.reps, [&] {
    mt_out = mt_engine.run(plan, input).output;
  });
  add_row("host_mt", mt_s, ref_s, mt_out == ref_run.output);

  // --- host_shard: MultiClusterEngine slices, single image ---------------
  MultiClusterEngine mce(cfg.clusters);
  Tensor8 shard_out;
  const double shard_s = time_best_s(cfg.reps, [&] {
    shard_out = mce.run(shard_plan, input).run.output;
  });
  add_row("host_shard", shard_s, ref_s, shard_out == ref_run.output);

  // --- host_dp: MultiClusterEngine data-parallel over the batch ----------
  DataParallelRun dp_run;
  const double dp_s = time_best_s(
      cfg.reps, [&] { dp_run = mce.run_data_parallel(plan, batch_inputs); });
  bool dp_exact = dp_run.runs.size() == ref_batch_out.size();
  for (size_t i = 0; dp_exact && i < dp_run.runs.size(); ++i) {
    dp_exact = dp_run.runs[i].output == ref_batch_out[i];
  }
  add_row("host_dp", dp_s / cfg.batch, ref_s, dp_exact);
}

// ---------------------------------------------------------------------------
// Per-instance microbench: every registry instance runnable on this CPU,
// forced onto a representative geometry of its family, timed and checked
// bit-exact against the scalar reference. ns/MAC is dense-equivalent.
// ---------------------------------------------------------------------------

struct InstanceRow {
  std::string name;
  std::string isa;
  std::string family;
  std::string geometry;
  double ns_per_mac = 0.0;
  double speedup_vs_scalar = 0.0;  // vs the family's scalar instance
  bool bit_exact = false;
};

std::vector<InstanceRow> bench_instances(const BenchConfig& cfg) {
  Rng rng(31);
  const int reps = cfg.reps;
  // representative geometries, scaled down under --smoke
  const int hw = cfg.smoke ? 12 : 28, c = cfg.smoke ? 32 : 64;
  const int k = cfg.smoke ? 32 : 64;
  const ConvGeom g{hw, hw, c, k, 3, 3, 1, 1};
  const int tokens = cfg.smoke ? 48 : 196;
  const int fc_c = cfg.smoke ? 128 : 512, fc_k = cfg.smoke ? 128 : 512;
  const int m = 4;

  const auto rand_bias = [&rng](int n) {
    Tensor32 b({n});
    for (int i = 0; i < n; ++i) b[i] = rng.uniform_int(-2000, 2000);
    return b;
  };
  const Tensor8 conv_in = Tensor8::random({g.iy, g.ix, g.c}, rng);
  const Tensor32 conv_bias = rand_bias(g.k);
  const Tensor8 fc_in = Tensor8::random({tokens, fc_c}, rng);
  const Tensor32 fc_bias = rand_bias(fc_k);
  const Requant rq{13, 13};

  const Tensor8 conv_dense_w = Tensor8::random({g.k, g.fsz()}, rng);
  Tensor8 conv_sparse_w = Tensor8::random({g.k, g.fsz()}, rng);
  nm_prune(conv_sparse_w.flat(), g.k, g.fsz(), 1, m);
  const Tensor8 fc_dense_w = Tensor8::random({fc_k, fc_c}, rng);
  Tensor8 fc_sparse_w = Tensor8::random({fc_k, fc_c}, rng);
  nm_prune(fc_sparse_w.flat(), fc_k, fc_c, 1, m);

  const NmPacked conv_packed =
      nm_pack(conv_sparse_w.flat(), g.k, g.fsz(), m, NmLayout::kSw);
  const NmPacked fc_packed =
      nm_pack(fc_sparse_w.flat(), fc_k, fc_c, m, NmLayout::kSw);

  const double conv_macs = static_cast<double>(g.oy()) * g.ox() * g.k *
                           static_cast<double>(g.fsz());
  const double fc_macs =
      static_cast<double>(tokens) * fc_k * static_cast<double>(fc_c);

  std::vector<InstanceRow> rows;
  std::vector<int> row_family;  // parallel to rows, for the speedup pass
  double scalar_ns[5] = {};     // per family, filled by the scalar instances
  for (int id = 0; id < host_instance_count(); ++id) {
    const HostInstanceInfo& info = host_instance_info(id);
    if (info.isa > host_isa_detected()) continue;

    InstanceRow row;
    row.name = info.name;
    row.isa = host_isa_name(info.isa);
    row.family = host_impl_name(info.family);
    row.geometry = info.geometry;

    double s = 0.0, macs = 0.0;
    if (info.family == HostImpl::kDenseConv ||
        info.family == HostImpl::kSparseConv) {
      const bool sparse = info.family == HostImpl::kSparseConv;
      const Tensor8& w = sparse ? conv_sparse_w : conv_dense_w;
      HostKernelDispatch d =
          host_dispatch_for_conv(g, sparse ? &conv_packed : nullptr);
      host_force_instance(d, id);
      const Tensor8 ref = conv2d_s8(conv_in, w, conv_bias, g, rq);
      Tensor8 out;
      s = time_best_s(reps, [&] {
        out = host_conv2d_s8(d, conv_in, w, conv_bias, g, rq);
      });
      row.bit_exact = out == ref;
      macs = conv_macs;
    } else {
      const bool sparse = info.family == HostImpl::kSparseFc;
      const Tensor8& w = sparse ? fc_sparse_w : fc_dense_w;
      HostKernelDispatch d = host_dispatch_for_fc(
          fc_k, fc_c, sparse ? &fc_packed : nullptr, tokens);
      host_force_instance(d, id);
      const Tensor8 ref = fc_s8(fc_in, w, fc_bias, rq);
      Tensor8 out;
      s = time_best_s(reps,
                      [&] { out = host_fc_s8(d, fc_in, w, fc_bias, rq); });
      row.bit_exact = out == ref;
      macs = fc_macs;
    }
    row.ns_per_mac = macs > 0 ? s * 1e9 / macs : 0.0;
    if (info.isa == HostIsa::kScalar) {
      scalar_ns[static_cast<int>(info.family)] = row.ns_per_mac;
    }
    row_family.push_back(static_cast<int>(info.family));
    rows.push_back(row);
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    const double base = scalar_ns[row_family[i]];
    rows[i].speedup_vs_scalar =
        rows[i].ns_per_mac > 0 ? base / rows[i].ns_per_mac : 0.0;
  }
  return rows;
}

void emit_json(std::ostream& os, bool smoke, const std::vector<Row>& rows,
               const std::vector<InstanceRow>& instances) {
  os << "{\n  \"bench\": \"host_throughput\",\n  \"smoke\": "
     << (smoke ? "true" : "false") << ",\n  \"host_isa\": \""
     << host_isa_name(host_isa_detected()) << "\",\n  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"model\": \"" << r.model << "\", \"m\": " << r.m
       << ", \"mode\": \"" << r.mode
       << "\", \"ms_per_img\": " << r.ms_per_img
       << ", \"img_per_s\": " << r.img_per_s
       << ", \"ns_per_mac\": " << r.ns_per_mac
       << ", \"speedup_vs_ref\": " << r.speedup_vs_ref
       << ", \"bit_exact\": " << (r.bit_exact ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"instances\": [\n";
  for (size_t i = 0; i < instances.size(); ++i) {
    const InstanceRow& r = instances[i];
    os << "    {\"instance\": \"" << r.name << "\", \"isa\": \"" << r.isa
       << "\", \"family\": \"" << r.family << "\", \"geometry\": \""
       << r.geometry << "\", \"ns_per_mac\": " << r.ns_per_mac
       << ", \"speedup_vs_scalar\": " << r.speedup_vs_scalar
       << ", \"bit_exact\": " << (r.bit_exact ? "true" : "false") << "}"
       << (i + 1 < instances.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

// ---------------------------------------------------------------------------
// --trace-gate: the DECIMATE_TRACE overhead budget, enforced by exit code.
// Runs the smoke ResNet18 workload through the host single-image path with
// recording runtime-disabled, then runtime-enabled, interleaving the reps so
// both modes see the same thermal/scheduler environment, and compares the
// best-of wall times. The traced run must stay within 5% of the untraced
// one. Untraced builds (DECIMATE_TRACE=OFF) pass vacuously: TraceScope is
// an empty type there, so there is no overhead to bound.
// ---------------------------------------------------------------------------

int run_trace_gate() {
#if !DECIMATE_TRACE_ENABLED
  std::cout << "trace-gate: tracing compiled out (DECIMATE_TRACE=OFF); "
               "nothing to measure, PASS\n";
  return 0;
#else
  constexpr int kHw = 16;
  Resnet18Options mopt;
  mopt.sparsity_m = 4;
  mopt.input_hw = kHw;
  const Graph graph = build_resnet18(mopt);
  Rng rng(23);
  const Tensor8 input = Tensor8::random({kHw, kHw, 4}, rng);

  const auto cache = std::make_shared<TileLatencyCache>();
  Compiler compiler(CompileOptions{}, cache);
  const CompiledPlan plan = compiler.compile(graph);
  ExecutionEngine engine;
  engine.run(plan, input);  // warm-up: page in weights, size the pool

  // interleaved best-of: rep r times one untraced then one traced run, so
  // slow-rep noise (a CI neighbor stealing the core) hits both modes alike
  constexpr int kReps = 7;
  double off_best = 1e300, on_best = 1e300;
  for (int r = 0; r < kReps; ++r) {
    trace::set_enabled(false);
    off_best = std::min(off_best, time_best_s(1, [&] {
      engine.run(plan, input);
    }));
    trace::set_enabled(true);
    on_best = std::min(on_best, time_best_s(1, [&] {
      engine.run(plan, input);
    }));
  }
  trace::set_enabled(true);

  const double ratio = off_best > 0 ? on_best / off_best : 1.0;
  const size_t events = trace::event_count();
  std::cout << "trace-gate: untraced " << off_best * 1e3 << " ms, traced "
            << on_best * 1e3 << " ms, ratio " << ratio << " ("
            << events << " events recorded)\n";
  if (ratio > 1.05) {
    std::cerr << "FAIL: tracing overhead " << (ratio - 1.0) * 100.0
              << "% exceeds the 5% budget\n";
    return 1;
  }
  std::cout << "trace-gate: PASS (<= 5% overhead)\n";
  return 0;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  std::string out_path = "BENCH_host.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
      cfg.batch = 4;
      cfg.clusters = 2;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-gate") == 0) {
      return run_trace_gate();
    } else {
      std::cerr << "usage: bench_host_throughput [--smoke] [--out PATH] "
                   "[--trace-gate]\n";
      return 1;
    }
  }

  const auto cache = std::make_shared<TileLatencyCache>();
  std::vector<Row> rows;

  const int hw = cfg.smoke ? 16 : 32;
  for (const int m : {0, 4, 8, 16}) {
    Resnet18Options mopt;
    mopt.sparsity_m = m;
    mopt.input_hw = hw;
    bench_workload("resnet18", build_resnet18(mopt), {hw, hw, 4}, m, cfg,
                   cache, rows);
  }

  const int tokens = cfg.smoke ? 96 : 196;
  const int d = cfg.smoke ? 128 : 384;
  const int hidden = cfg.smoke ? 512 : 1536;
  for (const int m : {0, 4, 8, 16}) {
    bench_workload("vit_ffn", build_ffn_block(tokens, d, hidden, m, 11),
                   {tokens, d}, m, cfg, cache, rows);
  }

  const std::vector<InstanceRow> instances = bench_instances(cfg);

  // exit-code gates. With SIMD instances live the full-run targets are
  // >= 4.5x sparse M=4 ResNet18 and >= 2x dense ResNet18 (conv-
  // dominated); a scalar-only host keeps the pre-SIMD gates (2.5x / 1x).
  // --smoke pads them for shared-CI noise — tiny models on noisy runners
  // can swing ratios ~15% — while the JSON records the measured values.
  const bool simd = host_isa_detected() != HostIsa::kScalar;
  const double sparse_gate = simd ? (cfg.smoke ? 3.0 : 4.5)
                                  : (cfg.smoke ? 2.0 : 2.5);
  const double dense_gate = simd ? (cfg.smoke ? 1.2 : 2.0)
                                 : (cfg.smoke ? 0.85 : 1.0);
  Table t({"model", "m", "mode", "ms/img", "img/s", "ns/MAC", "vs ref",
           "bit-exact"});
  bool all_exact = true;
  double resnet_m4_host_speedup = 0.0;
  double resnet_dense_host_speedup = 0.0;
  for (const Row& r : rows) {
    all_exact = all_exact && r.bit_exact;
    if (r.model == "resnet18" && r.m == 4 && r.mode == "host") {
      resnet_m4_host_speedup = r.speedup_vs_ref;
    }
    if (r.model == "resnet18" && r.m == 0 && r.mode == "host") {
      resnet_dense_host_speedup = r.speedup_vs_ref;
    }
    t.add_row({r.model, std::to_string(r.m), r.mode,
               Table::num(r.ms_per_img, 2), Table::num(r.img_per_s, 1),
               Table::num(r.ns_per_mac, 3),
               Table::num(r.speedup_vs_ref, 2) + "x",
               r.bit_exact ? "yes" : "NO"});
  }
  std::cout << t;

  Table ti({"instance", "isa", "family", "ns/MAC", "vs scalar", "bit-exact"});
  for (const InstanceRow& r : instances) {
    all_exact = all_exact && r.bit_exact;
    ti.add_row({r.name, r.isa, r.family, Table::num(r.ns_per_mac, 3),
                Table::num(r.speedup_vs_scalar, 2) + "x",
                r.bit_exact ? "yes" : "NO"});
  }
  std::cout << "\n" << ti;

  if (!all_exact) {
    std::cerr << "FAIL: a host-kernel output differs from the reference\n";
    return 1;
  }
  if (resnet_m4_host_speedup < sparse_gate) {
    std::cerr << "FAIL: sparse M=4 ResNet18 host speedup "
              << resnet_m4_host_speedup << "x < " << sparse_gate
              << "x gate\n";
    return 1;
  }
  if (resnet_dense_host_speedup < dense_gate) {
    std::cerr << "FAIL: dense ResNet18 host speedup "
              << resnet_dense_host_speedup << "x < " << dense_gate
              << "x gate\n";
    return 1;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  emit_json(out, cfg.smoke, rows, instances);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
