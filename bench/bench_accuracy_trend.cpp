// E13 — accuracy-trend substitute for Table 2's accuracy column: an MLP
// trained with N:M projected SGD on synthetic Gaussian-mixture data, then
// int8-quantized and deployed through the same compiler/executor stack.
// Reproduced claim: the dense ≈ 1:4 ≥ 1:8 ≥ 1:16 ordering with small
// degradations (the paper's CIFAR numbers need CIFAR + training, which
// this repo does not ship; see DESIGN.md).

#include "bench_util.hpp"
#include "train/trainer.hpp"

using namespace decimate;
using namespace decimate::bench;

int main() {
  std::cout << "=== Accuracy trend under N:M projected SGD (synthetic task) "
               "===\n\n";
  const auto points = accuracy_trend_experiment();
  Table t({"sparsity", "float acc", "int8 deployed acc", "paper (ResNet18)",
           "paper (ViT)"});
  for (const auto& p : points) {
    const char* rn = p.m == 0 ? "75.28" : p.m == 4 ? "75.78"
                               : p.m == 8 ? "75.63" : "73.79";
    const char* vt = p.m == 0 ? "95.59" : p.m == 4 ? "95.73"
                               : p.m == 8 ? "95.02" : "95.17";
    t.add_row({p.m == 0 ? "dense" : "1:" + std::to_string(p.m),
               Table::num(100.0 * p.float_acc, 1) + "%",
               Table::num(100.0 * p.int8_acc, 1) + "%", rn, vt});
  }
  std::cout << t << "\n"
            << "(paper columns are its recorded CIFAR results, shown for "
               "trend comparison only)\n";
  return 0;
}
