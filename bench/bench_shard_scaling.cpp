// Multi-cluster sharding scaling: modeled critical-path cycles/image,
// speedup over the single-cluster engine, per-cluster utilization and
// interconnect/reduction overhead for 1/2/4/8 clusters on ResNet18
// (conv-dominated, OY/channel tile shards) and the ViT FFN block
// (FC-dominated, token/K tile shards). Every sharded output is verified
// bit-exact against the single-cluster ExecutionEngine — the bench fails
// hard on a mismatch. Results land in BENCH_shard.json.
//
//   ./bench_shard_scaling [--smoke] [--out PATH]
//
// --smoke shrinks the models and stops at 2 clusters so CI can run the
// bench in seconds.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/compile.hpp"
#include "exec/engine.hpp"
#include "shard/multi_cluster_engine.hpp"

using namespace decimate;

namespace {

struct Row {
  std::string model;
  int clusters = 0;
  uint64_t critical_cycles = 0;
  uint64_t single_cluster_cycles = 0;  // the 1-cluster plan baseline
  uint64_t reduction_cycles = 0;
  double speedup = 0.0;       // baseline / critical (cross-plan)
  double self_speedup = 0.0;  // same-plan unsharded / critical
  double avg_utilization = 0.0;
  bool bit_exact = false;
};

/// Shard `graph` across every cluster count: one shard-aware compile per
/// count (shared latency cache — tiles re-simulate only for new shapes),
/// executed by MultiClusterEngine and checked against the single-cluster
/// reference output.
void scale_model(const std::string& name, const Graph& graph,
                 const std::vector<int>& in_shape,
                 const std::vector<int>& cluster_counts,
                 std::vector<Row>& rows) {
  Rng rng(17);
  const Tensor8 input = Tensor8::random(in_shape, rng);

  CompileOptions base;
  base.enable_isa = true;
  Compiler baseline_compiler(base);
  const CompiledPlan baseline_plan = baseline_compiler.compile(graph);
  ExecutionEngine engine;
  const NetworkRun baseline = engine.run(baseline_plan, input);
  const auto cache = baseline_compiler.shared_latencies();

  for (int n : cluster_counts) {
    CompileOptions opt = base;
    opt.num_clusters = n;
    Compiler compiler(opt, cache);
    const CompiledPlan plan = compiler.compile(graph);
    MultiClusterEngine mce(n);
    const ShardedRun sharded = mce.run(plan, input);

    Row row;
    row.model = name;
    row.clusters = n;
    row.critical_cycles = sharded.critical_path_cycles;
    row.single_cluster_cycles = baseline_plan.total_cycles;
    row.reduction_cycles = sharded.reduction_cycles;
    row.speedup = static_cast<double>(baseline_plan.total_cycles) /
                  static_cast<double>(sharded.critical_path_cycles);
    row.self_speedup = sharded.speedup();
    row.avg_utilization = sharded.avg_utilization();
    row.bit_exact = sharded.run.output == baseline.output;
    rows.push_back(row);
  }
}

void emit_json(std::ostream& os, bool smoke, const std::vector<Row>& rows) {
  os << "{\n  \"bench\": \"shard_scaling\",\n  \"smoke\": "
     << (smoke ? "true" : "false") << ",\n  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"model\": \"" << r.model
       << "\", \"clusters\": " << r.clusters
       << ", \"critical_path_cycles\": " << r.critical_cycles
       << ", \"single_cluster_cycles\": " << r.single_cluster_cycles
       << ", \"reduction_cycles\": " << r.reduction_cycles
       << ", \"speedup\": " << r.speedup
       << ", \"self_speedup\": " << r.self_speedup
       << ", \"avg_utilization\": " << r.avg_utilization
       << ", \"bit_exact\": " << (r.bit_exact ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_shard.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_shard_scaling [--smoke] [--out PATH]\n";
      return 1;
    }
  }
  const std::vector<int> cluster_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  std::vector<Row> rows;

  Resnet18Options mopt;
  mopt.sparsity_m = 8;
  mopt.input_hw = smoke ? 16 : 32;
  scale_model("resnet18", build_resnet18(mopt),
              {mopt.input_hw, mopt.input_hw, 4}, cluster_counts, rows);

  const int tokens = smoke ? 96 : 196;
  const int d = smoke ? 128 : 384;
  const int hidden = smoke ? 512 : 1536;
  scale_model("vit_ffn", build_ffn_block(tokens, d, hidden, 8, 11),
              {tokens, d}, cluster_counts, rows);

  Table t({"model", "clusters", "Mcyc/img", "speedup", "self", "util",
           "reduce kcyc", "bit-exact"});
  bool all_exact = true;
  for (const Row& r : rows) {
    all_exact = all_exact && r.bit_exact;
    t.add_row({r.model, std::to_string(r.clusters),
               Table::num(r.critical_cycles / 1e6, 2),
               Table::num(r.speedup, 2) + "x",
               Table::num(r.self_speedup, 2) + "x",
               Table::num(r.avg_utilization, 2),
               Table::num(r.reduction_cycles / 1e3, 1),
               r.bit_exact ? "yes" : "NO"});
  }
  std::cout << t;

  if (!all_exact) {
    std::cerr << "FAIL: sharded output differs from the single-cluster "
                 "engine\n";
    return 1;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  emit_json(out, smoke, rows);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
