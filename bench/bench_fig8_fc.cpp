// E2 — Figure 8 (right): single fully-connected layers, C in
// {256,512,1024,2048}, K = 256. FC layers are memory-bound: the weight
// transfers dominate, so even the 1:4 SW kernel gains from the smaller
// sparse footprint at large C (paper: up to 1.2x at C=2048 with SW 1:4;
// ISA ~1.8x/2.2x/2.9x at 1:4/1:8/1:16 on average).

#include <map>

#include "bench_util.hpp"

using namespace decimate;
using namespace decimate::bench;

int main() {
  std::cout << "=== Figure 8 (right): single FC layers, K=256 ===\n\n";
  Table t({"C", "kernel", "MAC/cyc", "kcyc", "speedup vs dense"});
  std::map<std::string, double> avg;
  std::vector<std::string> order;
  int count = 0;
  for (int c : {256, 512, 1024, 2048}) {
    const FcGeom g{.tokens = 1, .c = c, .k = 256};
    const std::vector<int> in_shape = {1, c};
    struct Row {
      std::string name;
      NetworkRun run;
    };
    std::vector<Row> rows;
    rows.push_back({"dense 1x2", deploy(single_fc_graph(g, 0), in_shape,
                                        dense_1x2_options())});
    for (int m : {4, 8, 16}) {
      const std::string tag = "1:" + std::to_string(m);
      rows.push_back({"SW " + tag, deploy(single_fc_graph(g, m), in_shape,
                                          sparse_options(false))});
      rows.push_back({"ISA " + tag, deploy(single_fc_graph(g, m), in_shape,
                                           sparse_options(true))});
    }
    const uint64_t base = rows.front().run.total_cycles;
    for (const auto& row : rows) {
      t.add_row({std::to_string(c), row.name,
                 Table::num(row.run.macs_per_cycle(), 2),
                 Table::num(static_cast<double>(row.run.total_cycles) / 1e3, 1),
                 speedup(base, row.run.total_cycles)});
      if (avg.find(row.name) == avg.end()) order.push_back(row.name);
      avg[row.name] += static_cast<double>(base) /
                       static_cast<double>(row.run.total_cycles);
    }
    ++count;
  }
  std::cout << t << "\n";
  std::cout << "average speedups over dense across C:\n";
  for (const auto& name : order) {
    std::cout << "  " << name << ": " << Table::num(avg[name] / count, 2)
              << "x\n";
  }
  return 0;
}
