// E6 — the Sec. 4 instruction-count analysis (Figs. 4/5): static inner-
// loop lengths of every kernel program and the resulting theoretical
// MACs/instruction/core, alongside ISS-measured MACs/instruction on a
// large layer (the gap is the im2col / loop-management overhead the paper
// discusses in Sec. 5.2).

#include "bench_util.hpp"
#include "kernels/launch.hpp"

using namespace decimate;
using namespace decimate::bench;

int main() {
  std::cout << "=== Sec. 4 analysis: inner-loop instruction budgets ===\n\n";
  Table t({"kernel", "M", "instr/iter", "MACs/iter", "peak MAC/instr",
           "dense-equiv peak"});

  struct Entry {
    KernelKind kind;
    int m;
  };
  const Entry entries[] = {
      {KernelKind::kConvDense4x2, 0}, {KernelKind::kConvDense1x2, 0},
      {KernelKind::kConvSparseSw, 4}, {KernelKind::kConvSparseSw, 8},
      {KernelKind::kConvSparseSw, 16}, {KernelKind::kConvSparseIsa, 4},
      {KernelKind::kConvSparseIsa, 8}, {KernelKind::kConvSparseIsa, 16},
      {KernelKind::kFcDense, 0},      {KernelKind::kFcSparseSw, 4},
      {KernelKind::kFcSparseSw, 8},   {KernelKind::kFcSparseSw, 16},
      {KernelKind::kFcSparseIsa, 4},  {KernelKind::kFcSparseIsa, 8},
      {KernelKind::kFcSparseIsa, 16},
  };
  for (const auto& e : entries) {
    const int len = expected_inner_loop_length(e.kind, e.m);
    const int macs = macs_per_inner_iter(e.kind, e.m);
    const Program& prog = KernelLauncher::program_for(e.kind, e.m);
    const int measured = prog.region_length(kInnerBegin, kInnerEnd);
    DECIMATE_CHECK(measured == len, "static length mismatch");
    const double peak = static_cast<double>(macs) / len;
    t.add_row({kernel_kind_name(e.kind), e.m ? std::to_string(e.m) : "-",
               std::to_string(len), std::to_string(macs),
               Table::num(peak, 2),
               Table::num(peak * std::max(e.m, 1), 2)});
  }
  std::cout << t << "\n";
  std::cout << "paper (Sec. 4): conv 4x2 = 2.28, 1x2 = 1.6, SW = 0.36 (0.35 "
               "at 1:4), ISA = 0.66;\n"
            << "fc dense = 1.6, SW = 0.25, ISA = 0.61 dense-equivalent "
               "peaks x M.\n\n";

  // measured on a large layer through the ISS
  std::cout << "ISS-measured MACs/instruction on conv C=128 K=16 (logical "
               "MACs / executed instructions):\n";
  Rng rng(3);
  const ConvGeom g{.ix = 8, .iy = 8, .c = 128, .k = 16, .fx = 3, .fy = 3,
                   .stride = 1, .pad = 1};
  ClusterConfig ccfg;
  for (const auto& e :
       {Entry{KernelKind::kConvDense4x2, 0}, Entry{KernelKind::kConvDense1x2, 0},
        Entry{KernelKind::kConvSparseSw, 8},
        Entry{KernelKind::kConvSparseIsa, 8}}) {
    Cluster cluster(ccfg);
    KernelLauncher launcher(cluster);
    const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
    Tensor32 bias({g.k}, 0);
    KernelRun run;
    if (kernel_is_sparse(e.kind)) {
      Tensor8 w = Tensor8::random({g.k, g.fsz()}, rng);
      nm_prune(w.flat(), g.k, g.fsz(), 1, e.m);
      const NmPacked packed = nm_pack(w.flat(), g.k, g.fsz(), e.m,
                                      KernelLauncher::layout_for(e.kind));
      run = launcher.conv(e.kind, g, Requant{1, 8}, input, nullptr, &packed,
                          bias);
    } else {
      Tensor8 w = Tensor8::random({g.k, g.fsz()}, rng);
      run = launcher.conv(e.kind, g, Requant{1, 8}, input, &w, nullptr, bias);
    }
    const double logical =
        static_cast<double>(g.macs()) / std::max(e.m, 1);
    std::cout << "  " << kernel_kind_name(e.kind)
              << (e.m ? " 1:" + std::to_string(e.m) : "") << ": "
              << Table::num(logical / run.result.total_instructions, 3)
              << " MACs/instr (theory "
              << Table::num(static_cast<double>(macs_per_inner_iter(e.kind, e.m)) /
                                expected_inner_loop_length(e.kind, e.m),
                            3)
              << ")\n";
  }
  return 0;
}
