// Extension (paper Sec. 6 future work): per-layer variable sparsity.
// The pattern table recognizes each layer's 1:M independently, so stages
// can mix patterns freely. Early stages are accuracy-critical (keep them
// at 1:4 or dense); late stages hold most parameters (prune them harder)
// — the classic mixed-sparsity recipe, here quantified for latency and
// memory on ResNet18 with the xDecimate kernels.

#include "bench_util.hpp"

using namespace decimate;
using namespace decimate::bench;

int main() {
  std::cout << "=== Extension: per-stage variable sparsity on ResNet18 ===\n\n";
  Rng rng(21);
  const Tensor8 input = Tensor8::random({32, 32, 4}, rng);

  struct Cfg {
    const char* name;
    std::vector<int> stages;
  };
  const Cfg cfgs[] = {
      {"dense", {0, 0, 0, 0}},
      {"uniform 1:4", {4, 4, 4, 4}},
      {"uniform 1:8", {8, 8, 8, 8}},
      {"uniform 1:16", {16, 16, 16, 16}},
      {"ramp 0/4/8/16", {0, 4, 8, 16}},
      {"ramp 4/8/16/16", {4, 8, 16, 16}},
      {"late-only 0/0/8/16", {0, 0, 8, 16}},
  };
  Table t({"config", "Mcyc", "MAC/cyc", "mem[MB]", "vs dense"});
  uint64_t base = 0;
  for (const auto& cfg : cfgs) {
    Resnet18Options ropt;
    ropt.per_stage_m = cfg.stages;
    CompileOptions copt = sparse_options(true);
    ScheduleExecutor exec(copt);
    const NetworkRun run = exec.run(build_resnet18(ropt), input);
    if (base == 0) base = run.total_cycles;
    t.add_row({cfg.name, mcyc(run.total_cycles),
               Table::num(run.macs_per_cycle(), 2),
               Table::num(run.weight_bytes / 1e6, 2),
               speedup(base, run.total_cycles)});
  }
  std::cout << t << "\n"
            << "ramped configurations recover most of the uniform-1:16 "
               "latency and memory while\n"
            << "keeping the accuracy-critical early stages dense or lightly "
               "pruned.\n";
  return 0;
}
