// Accuracy-vs-sparsity sweep: trains the synthetic-task MLP with N:M
// projected SGD at each sparsity level, quantizes it and deploys it
// through the compiler/executor stack, reporting float and int8 accuracy
// plus the deployed latency and weight memory of each variant.
//
//   ./examples/accuracy_sweep

#include <iostream>

#include "common/table.hpp"
#include "compiler/schedule.hpp"
#include "train/trainer.hpp"

using namespace decimate;

int main() {
  std::cout << "Training 2-layer MLPs (32 -> 128 -> 10) on a synthetic "
               "Gaussian-mixture task\nwith N:M projected SGD...\n\n";
  Rng rng(17);
  const SynthDataset train_set = SynthDataset::make(2000, 32, 10, 2.0, rng);
  const SynthDataset test_set = SynthDataset::make(400, 32, 10, 2.0, rng);

  Table t({"sparsity", "float acc", "int8 acc", "cycles", "weights [B]"});
  for (int m : {0, 4, 8, 16}) {
    MlpConfig cfg;
    cfg.nm_m = m;
    Mlp mlp(cfg);
    mlp.train(train_set);
    const double facc = mlp.accuracy(test_set);
    const Graph g = mlp.to_int8_graph(0.05f);
    CompileOptions copt;
    copt.enable_isa = true;
    Compiler compiler(copt);
    const CompiledPlan plan = compiler.compile(g);
    ExecutionEngine engine;
    int correct = 0;
    uint64_t cycles = 0;
    int64_t mem = 0;
    for (int i = 0; i < test_set.size(); ++i) {
      const Tensor8 qx = mlp.quantize_input(test_set.sample(i), 0.05f);
      const NetworkRun run = engine.run(plan, qx);
      int pred = 0;
      for (int k = 1; k < 10; ++k) {
        if (run.output[k] > run.output[pred]) pred = k;
      }
      correct += (pred == test_set.y[static_cast<size_t>(i)]);
      cycles = run.total_cycles;
      mem = run.weight_bytes;
    }
    t.add_row({m == 0 ? "dense" : "1:" + std::to_string(m),
               Table::num(100.0 * facc, 1) + "%",
               Table::num(100.0 * correct / test_set.size(), 1) + "%",
               std::to_string(cycles), std::to_string(mem)});
  }
  std::cout << t << "\n"
            << "expected trend (paper Table 2 analog): accuracy degrades "
               "gently with sparsity\nwhile latency and weight memory drop "
               "sharply.\n";
  return 0;
}
