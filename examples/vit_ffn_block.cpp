// Transformer feed-forward block (the part of ViT the paper sparsifies):
// layernorm -> fc (d -> 4d) -> GELU -> fc (4d -> d), at 1:4/1:8/1:16
// sparsity, deployed through the compiler with SW-only and xDecimate
// kernels. These FC layers are exactly the ones found in BERT/T5-style
// models, which is why the paper calls the approach transferable.
//
//   ./examples/vit_ffn_block

#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "compiler/schedule.hpp"
#include "exec/engine.hpp"
#include "nn/prune.hpp"

using namespace decimate;

namespace {

Graph ffn_block(int tokens, int d, int hidden, int m, uint64_t seed) {
  Rng rng(seed);
  Graph g({tokens, d});
  Node ln;
  ln.op = OpType::kLayerNorm;
  ln.name = "ln";
  ln.inputs = {0};
  ln.gamma = Tensor8({d});
  ln.beta = Tensor8({d});
  for (int i = 0; i < d; ++i) {
    ln.gamma[i] = 64;
    ln.beta[i] = 0;
  }
  ln.out_shape = {tokens, d};
  const int x = g.add(std::move(ln));
  auto fc = [&](const char* name, int in, int c, int k, int prune_m) {
    Node n;
    n.op = OpType::kFc;
    n.name = name;
    n.inputs = {in};
    n.fc = FcGeom{.tokens = tokens, .c = c, .k = k};
    n.weights = Tensor8::random({k, c}, rng);
    if (prune_m) nm_prune(n.weights.flat(), k, c, 1, prune_m);
    n.bias = Tensor32({k}, 0);
    n.rq = calibrate_requant(c);
    n.out_shape = {tokens, k};
    return g.add(std::move(n));
  };
  const int up = fc("fc1", x, d, hidden, m);
  Node gelu;
  gelu.op = OpType::kLut;
  gelu.name = "gelu";
  gelu.inputs = {up};
  gelu.lut = build_gelu_lut(0.05f, 0.05f);
  gelu.out_shape = {tokens, hidden};
  const int act = g.add(std::move(gelu));
  fc("fc2", act, hidden, d, m);
  return g;
}

}  // namespace

int main() {
  const int tokens = 196, d = 384, hidden = 1536;
  std::cout << "=== ViT/BERT-style FFN block: " << tokens << " tokens, " << d
            << " -> " << hidden << " -> " << d << " ===\n\n";
  Rng rng(5);
  const Tensor8 input = Tensor8::random({tokens, d}, rng);

  Table t({"config", "Mcyc", "MAC/cyc", "speedup vs dense"});
  CompileOptions dense_opt;
  ScheduleExecutor dense_exec(dense_opt);
  const NetworkRun dense = dense_exec.run(ffn_block(tokens, d, hidden, 0, 1),
                                          input);
  t.add_row({"dense", Table::num(dense.total_cycles / 1e6, 2),
             Table::num(dense.macs_per_cycle(), 2), "1.00x"});
  for (int m : {4, 8, 16}) {
    for (bool isa : {false, true}) {
      CompileOptions opt;
      opt.enable_isa = isa;
      ScheduleExecutor exec(opt);
      const NetworkRun run = exec.run(ffn_block(tokens, d, hidden, m, 1),
                                      input);
      t.add_row({std::string(isa ? "ISA" : "SW") + " 1:" + std::to_string(m),
                 Table::num(run.total_cycles / 1e6, 2),
                 Table::num(run.macs_per_cycle(), 2),
                 Table::num(static_cast<double>(dense.total_cycles) /
                                run.total_cycles, 2) + "x"});
    }
  }
  std::cout << t;

  // Batch-aware FC tiling: compiling the block for a batch fuses the
  // batch dimension into the token dimension, so each weight tile is
  // fetched from L2/L3 once per batch instead of once per image.
  std::cout << "\n=== batch-fused FC tiling (ISA 1:8), per-image amortized ==="
            << "\n\n";
  Table bt({"batch", "fc kcyc/img", "weight-DMA kcyc/img", "batch Mcyc"});
  for (int b : {1, 4, 16}) {
    CompileOptions opt;
    opt.enable_isa = true;
    opt.batch = b;
    Compiler compiler(opt);
    const Graph g = ffn_block(tokens, d, hidden, 8, 1);
    const CompiledPlan plan = compiler.compile(g);
    uint64_t fc_cycles = 0, weight_dma = 0;
    for (const PlanStep& s : plan.steps) {
      if (s.op == OpType::kFc) {
        fc_cycles += s.report.total_cycles;
        weight_dma += s.report.weight_dma_cycles;
      }
    }
    ExecutionEngine engine;
    const std::vector<Tensor8> images(static_cast<size_t>(b), input);
    const BatchRun br = engine.run_batch(plan, images);
    bt.add_row({std::to_string(b), Table::num(fc_cycles / 1e3, 1),
                Table::num(weight_dma / 1e3, 1),
                Table::num(br.batch_cycles / 1e6, 2)});
  }
  std::cout << bt;
  return 0;
}
