// End-to-end ResNet18 inference through the MATCH-style compiler: builds
// the CIFAR-geometry network with 1:8-pruned 3x3 convolutions, deploys it
// with the xDecimate kernels, and prints the per-layer cycle report.
//
//   ./examples/resnet18_e2e

#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "compiler/schedule.hpp"
#include "models/models.hpp"

using namespace decimate;

int main() {
  Resnet18Options mopt;
  mopt.sparsity_m = 8;
  const Graph net = build_resnet18(mopt);

  CompileOptions copt;
  copt.enable_isa = true;  // use the xDecimate kernels
  ScheduleExecutor exec(copt);

  Rng rng(7);
  const Tensor8 image = Tensor8::random({32, 32, 4}, rng);
  const NetworkRun run = exec.run(net, image);

  Table t({"layer", "impl", "MMAC", "kcyc", "MAC/cyc", "tiles", "bits/w"});
  for (const auto& l : run.layers) {
    if (l.macs == 0 && l.total_cycles < 1000) continue;  // skip glue ops
    t.add_row({l.name, l.impl, Table::num(l.macs / 1e6, 2),
               Table::num(l.total_cycles / 1e3, 1),
               Table::num(l.macs_per_cycle(), 2), std::to_string(l.tiles),
               l.bits_per_weight ? Table::num(l.bits_per_weight, 1) : "-"});
  }
  std::cout << t << "\n";
  std::cout << "total: " << Table::num(run.total_cycles / 1e6, 2) << " Mcyc, "
            << Table::num(run.macs_per_cycle(), 2) << " dense-equiv MAC/cyc, "
            << Table::num(run.weight_bytes / 1e6, 2) << " MB weights\n";
  std::cout << "logits (first 8): ";
  for (int i = 0; i < 8; ++i) std::cout << int(run.output[i]) << " ";
  std::cout << "\n";
  return 0;
}
