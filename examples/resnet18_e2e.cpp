// End-to-end ResNet18 inference through the MATCH-style compiler: builds
// the CIFAR-geometry network with 1:8-pruned 3x3 convolutions, lowers it
// once into a CompiledPlan with the xDecimate kernels, executes a batch of
// images through the ExecutionEngine, and prints the per-layer cycle
// report. Every unique (kernel, tile geometry) is simulated on the ISS
// exactly once, at compile time, regardless of the batch size.
//
//   ./examples/resnet18_e2e

#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "exec/compile.hpp"
#include "exec/engine.hpp"
#include "models/models.hpp"

using namespace decimate;

int main() {
  Resnet18Options mopt;
  mopt.sparsity_m = 8;
  const Graph net = build_resnet18(mopt);

  CompileOptions copt;
  copt.enable_isa = true;  // use the xDecimate kernels

  // compile once ...
  Compiler compiler(copt);
  const CompiledPlan plan = compiler.compile(net);

  // ... execute many
  Rng rng(7);
  std::vector<Tensor8> images;
  for (int i = 0; i < 4; ++i) {
    images.push_back(Tensor8::random({32, 32, 4}, rng));
  }
  ExecutionEngine engine;
  const BatchRun batch = engine.run_batch(plan, images);
  const NetworkRun& run = batch.runs.front();

  Table t({"layer", "impl", "MMAC", "kcyc", "MAC/cyc", "tiles", "bits/w"});
  for (const auto& l : run.layers) {
    if (l.macs == 0 && l.total_cycles < 1000) continue;  // skip glue ops
    t.add_row({l.name, l.impl, Table::num(l.macs / 1e6, 2),
               Table::num(l.total_cycles / 1e3, 1),
               Table::num(l.macs_per_cycle(), 2), std::to_string(l.tiles),
               l.bits_per_weight ? Table::num(l.bits_per_weight, 1) : "-"});
  }
  std::cout << t << "\n";
  std::cout << "total: " << Table::num(run.total_cycles / 1e6, 2) << " Mcyc, "
            << Table::num(run.macs_per_cycle(), 2) << " dense-equiv MAC/cyc, "
            << Table::num(run.weight_bytes / 1e6, 2) << " MB weights\n";
  std::cout << "batch of " << batch.batch_size() << " images: "
            << compiler.latencies().size() << " unique tiles simulated once, "
            << compiler.latencies().hits() << " cache hits\n";
  std::cout << "pipelined batch: "
            << Table::num(batch.batch_cycles / 1e6, 2) << " Mcyc vs "
            << Table::num(batch.sequential_cycles / 1e6, 2)
            << " Mcyc sequential ("
            << Table::num(batch.pipeline_speedup(), 3) << "x overlap)\n";
  for (size_t b = 0; b < batch.runs.size(); ++b) {
    std::cout << "logits[" << b << "] (first 8): ";
    for (int i = 0; i < 8; ++i) {
      std::cout << int(batch.runs[b].output[i]) << " ";
    }
    std::cout << "\n";
  }
  return 0;
}
