// Observability demo: a mixed ResNet18 + ViT-FFN request stream served
// through the full runtime stack (Server -> Batcher -> Dispatcher ->
// engines) with span tracing and the metrics registry live, then three
// artifacts written from the same run:
//
//   trace.json    Chrome trace-event JSON — open in https://ui.perfetto.dev
//                 (or chrome://tracing) to see the serve loop, per-kernel
//                 spans, pool workers, and request flow arrows
//   metrics.json  the metrics registry snapshot: counters, gauges, and
//                 latency histogram percentiles
//   stdout        per-request and per-layer energy attribution from the
//                 hw energy model folded over each plan's cycle reports
//
// The run ends with a registry cold start: the warm plans are published
// to trace_registry/ and reloaded through a fresh PlanStore, so the
// trace also shows the artifact path (registry.load / registry.mmap /
// registry.verify spans, artifact.* counters in metrics.json).
//
// Span recording requires a -DDECIMATE_TRACE=ON build; without it the
// demo still serves, writes metrics.json, and prints the energy tables,
// but trace.json is skipped (TraceScope compiles to nothing).
//
//   ./examples/trace_demo

#include <iostream>

#include "common/table.hpp"
#include "models/models.hpp"
#include "serve/server.hpp"
#include "trace/energy_attr.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

using namespace decimate;

namespace {

/// Interleaved two-model trace: even ids ResNet18, odd ids ViT-FFN,
/// arriving every `gap` cycles.
std::vector<Request> mixed_trace(int resnet, const std::vector<int>& rshape,
                                 int ffn, const std::vector<int>& fshape,
                                 int n, uint64_t gap) {
  Rng rng(7);
  std::vector<Request> trace;
  for (int i = 0; i < n; ++i) {
    const bool even = i % 2 == 0;
    trace.push_back(Request{static_cast<uint64_t>(i),
                            even ? resnet : ffn,
                            static_cast<uint64_t>(i) * gap,
                            Tensor8::random(even ? rshape : fshape, rng)});
  }
  return trace;
}

}  // namespace

int main() {
  trace::set_thread_name("main");

  CompileOptions opt;
  opt.enable_isa = true;
  PlanStore store(opt);

  Resnet18Options mopt;
  mopt.sparsity_m = 8;
  mopt.input_hw = 16;
  const Graph resnet_graph = build_resnet18(mopt);
  const Graph ffn_graph = build_ffn_block(32, 64, 128, 8, 11);
  const int resnet = store.add_model(resnet_graph);
  const int ffn = store.add_model(ffn_graph);

  DispatchConfig cfg;
  cfg.num_clusters = 4;
  cfg.fused_batches = {1, 2, 4};
  Dispatcher dispatcher(store, cfg);
  std::cout << "warming the plan store...\n";
  dispatcher.warm(resnet);
  dispatcher.warm(ffn);
  const uint64_t total1 = store.plan(resnet, 1, 1).total_cycles;

  // the warm-up compiles traced above are setup, not serving — drop them
  // so trace.json shows only the request lifecycle
  trace::clear();

  SloConfig slo;
  slo.max_wait_cycles = total1 / 2;
  slo.deadline_cycles = 2 * total1;
  slo.max_batch = 4;

  Server server(dispatcher, slo);
  auto trace_reqs = mixed_trace(resnet, resnet_graph.node(0).out_shape, ffn,
                                ffn_graph.node(0).out_shape, 12, total1 / 3);
  for (Request& r : trace_reqs) server.submit(std::move(r));
  server.close();
  const std::vector<Served> served = server.serve();
  std::cout << "served " << served.size() << " requests in "
            << server.batches_dispatched() << " batches\n\n";

  // --- energy attribution: J/request and J/layer -------------------------
  const trace::EnergyAttribution ea =
      trace::attribute_energy(served, store, cfg.num_clusters);

  Table per_req({"req", "model", "mode", "uJ"});
  for (size_t i = 0; i < served.size(); ++i) {
    per_req.add_row({std::to_string(ea.requests[i].id),
                     served[i].stats.model == resnet ? "resnet18" : "vit_ffn",
                     to_string(served[i].stats.mode),
                     Table::num(ea.requests[i].nj * 1e-3, 3)});
  }
  std::cout << "energy per request (" << Table::num(ea.total_nj * 1e-6, 3)
            << " mJ total, " << Table::num(ea.mean_nj_per_request() * 1e-3, 3)
            << " uJ/request mean):\n" << per_req << "\n";

  Table per_layer({"layer", "impl", "invocations", "Mcycles", "uJ"});
  for (const trace::LayerEnergy& l : ea.layers) {
    per_layer.add_row({l.name, l.impl, std::to_string(l.invocations),
                       Table::num(static_cast<double>(l.cycles) / 1e6, 3),
                       Table::num(l.nj * 1e-3, 3)});
  }
  std::cout << "energy per layer (first-execution order):\n"
            << per_layer << "\n";

  // --- registry cold start: the artifact path, traced --------------------
  // publish the warm plans, then reload one through a fresh store so the
  // exported trace shows registry.load/mmap/verify alongside the serving
  // spans (and metrics.json the artifact.* counters)
  store.attach_registry("trace_registry")->publish(store.plan(resnet, 1, 1));
  {
    PlanStore cold(opt);
    cold.attach_registry("trace_registry");
    const int id = cold.add_model(resnet_graph);
    cold.plan(id, 1, 1);
    std::cout << "registry cold start: " << cold.registry_loads()
              << " plan loaded from trace_registry/, " << cold.compiles()
              << " compiles\n\n";
  }

  // --- artifacts ---------------------------------------------------------
  if (metrics::registry().save_json("metrics.json")) {
    std::cout << "wrote metrics.json (metrics registry snapshot)\n";
  } else {
    std::cerr << "cannot write metrics.json\n";
    return 1;
  }
#if DECIMATE_TRACE_ENABLED
  if (trace::export_chrome("trace.json")) {
    std::cout << "wrote trace.json (" << trace::event_count()
              << " events) — open in https://ui.perfetto.dev\n";
  } else {
    std::cerr << "cannot write trace.json\n";
    return 1;
  }
#else
  std::cout << "trace.json skipped: build with -DDECIMATE_TRACE=ON to "
               "record spans\n";
#endif
  return 0;
}
