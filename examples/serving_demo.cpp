// Serving demo: the same deterministic request trace served under a
// tight and a loose latency SLO. The PlanStore pre-compiles every
// (batch x cluster) plan variant once; the Server queues single-image
// requests; the Batcher forms batches on the modeled-cycle timeline; and
// the Dispatcher picks — per batch — between batch-fused execution,
// sharding each image across the clusters, and data-parallel placement.
// Watch the chosen mode flip from sharded (tight SLO: lowest latency) to
// batch-fused (loose SLO: fewest cycles per image).
//
//   ./examples/serving_demo

#include <iostream>

#include "common/table.hpp"
#include "models/models.hpp"
#include "serve/server.hpp"

using namespace decimate;

namespace {

std::vector<Request> make_trace(int model, const std::vector<int>& shape,
                                int n, uint64_t gap) {
  Rng rng(7);
  std::vector<Request> trace;
  for (int i = 0; i < n; ++i) {
    trace.push_back(Request{static_cast<uint64_t>(i), model,
                            static_cast<uint64_t>(i) * gap,
                            Tensor8::random(shape, rng)});
  }
  return trace;
}

void serve_and_print(const char* label, Dispatcher& dispatcher,
                     const SloConfig& slo, std::vector<Request> trace) {
  Server server(dispatcher, slo);
  for (Request& r : trace) server.submit(std::move(r));
  server.close();
  const std::vector<Served> served = server.serve();

  std::cout << label << " (deadline " << slo.deadline_cycles
            << " cyc, max wait " << slo.max_wait_cycles << " cyc, max batch "
            << slo.max_batch << ")\n";
  Table t({"req", "mode", "group", "wait kcyc", "exec kcyc", "latency kcyc",
           "SLO"});
  for (const Served& s : served) {
    t.add_row({std::to_string(s.stats.id), to_string(s.stats.mode),
               std::to_string(s.stats.group_size),
               Table::num(static_cast<double>(s.stats.queue_wait_cycles()) /
                          1e3, 1),
               Table::num(static_cast<double>(s.stats.exec_cycles()) / 1e3,
                          1),
               Table::num(static_cast<double>(s.stats.latency_cycles()) /
                          1e3, 1),
               s.stats.deadline_hit ? "hit" : "MISS"});
  }
  std::cout << t << "\n";
}

}  // namespace

int main() {
  CompileOptions opt;
  opt.enable_isa = true;
  PlanStore store(opt);

  Resnet18Options mopt;
  mopt.sparsity_m = 8;
  mopt.input_hw = 16;
  const Graph resnet = build_resnet18(mopt);
  const int model = store.add_model(resnet);

  DispatchConfig cfg;
  cfg.num_clusters = 4;
  cfg.fused_batches = {1, 2, 4};
  Dispatcher dispatcher(store, cfg);
  std::cout << "warming the plan store (compile once per batch x cluster "
               "variant)...\n";
  dispatcher.warm(model);
  const uint64_t total1 = store.plan(model, 1, 1).total_cycles;
  std::cout << "single-image single-cluster latency: " << total1
            << " cycles; " << store.compiles() << " plans compiled\n\n";

  const auto trace =
      make_trace(model, resnet.node(0).out_shape, 8, total1 / 2);

  SloConfig tight;
  tight.max_wait_cycles = total1 / 10;
  tight.deadline_cycles = 3 * total1 / 4;
  tight.max_batch = 4;
  serve_and_print("tight SLO", dispatcher, tight, trace);

  SloConfig loose;
  loose.max_wait_cycles = 4 * total1;
  loose.deadline_cycles = 100 * total1;
  loose.max_batch = 4;
  serve_and_print("loose SLO", dispatcher, loose, trace);

  std::cout << "plans compiled after serving both SLOs: " << store.compiles()
            << " (unchanged — the store never recompiles)\n";
  return 0;
}
