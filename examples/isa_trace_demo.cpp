// A look inside the ISA extension: disassembles the sparse kernels' inner
// loops (SW vs xDecimate), traces the xDecimate csr/address sequence on a
// toy block, and shows the binary encodings.
//
//   ./examples/isa_trace_demo

#include <iomanip>
#include <iostream>

#include "isa/builder.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "kernels/launch.hpp"
#include "sim/core.hpp"

using namespace decimate;

int main() {
  // 1) inner loops of the conv kernels, disassembled
  for (auto [kind, m, label] :
       {std::tuple{KernelKind::kConvDense1x2, 0, "dense 1x2 (5 instr)"},
        std::tuple{KernelKind::kConvSparseSw, 8, "sparse SW 1:8 (22 instr)"},
        std::tuple{KernelKind::kConvSparseIsa, 8,
                   "sparse ISA 1:8 with xDecimate (12 instr)"}}) {
    const Program& prog = KernelLauncher::program_for(kind, m);
    const int begin = prog.marker(kInnerBegin);
    const int end = prog.marker(kInnerEnd);
    std::cout << "=== inner loop of " << label << " ===\n";
    for (int pc = begin; pc < end; ++pc) {
      const uint32_t word = encode(prog.code[static_cast<size_t>(pc)], pc);
      std::cout << "  0x" << std::hex << std::setw(8) << std::setfill('0')
                << word << std::dec << "  "
                << disassemble(prog.code[static_cast<size_t>(pc)], pc) << "\n";
    }
    std::cout << "\n";
  }

  // 2) xDecimate semantics, step by step (Sec. 4.3 equations)
  std::cout << "=== xDecimate trace (M=8, duplicated offsets 1,1,7,7,0,0,5,5)"
            << " ===\n";
  SocMemory mem;
  const uint32_t buf = MemoryMap::kL1Base;
  const int offs[4] = {1, 7, 0, 5};
  for (int blk = 0; blk < 4; ++blk) {
    mem.write8(buf + blk * 8 + offs[blk], static_cast<uint8_t>(0xA0 + blk));
  }
  uint32_t packed = 0;
  for (int f = 0; f < 8; ++f) packed |= uint32_t(offs[f / 2]) << (4 * f);
  KernelBuilder b;
  using namespace reg;
  b.li(a0, static_cast<int32_t>(buf));
  b.li(a2, static_cast<int32_t>(packed));
  b.xdec_clear();
  for (int i = 0; i < 8; ++i) b.xdec(a3, a0, a2, 8);
  b.halt();
  Program p = b.build();
  Core core(0, mem, CoreConfig{});
  core.reset(p.code, 0, MemoryMap::kL1Base + 1024);
  while (!core.halted()) {
    const bool is_xdec = p.code[core.pc()].op == Opcode::kXdec;
    const uint32_t csr_before = core.xdec_csr();
    const uint32_t addr = is_xdec ? core.peek_mem_addr() : 0;
    core.step();
    if (is_xdec) {
      std::cout << "  csr=" << std::setw(2) << csr_before << "  block="
                << (csr_before >> 1) << "  lane=" << ((csr_before >> 1) & 3)
                << "  addr=buf+" << std::setw(2) << (addr - buf)
                << "  rd=0x" << std::hex << std::setw(8) << std::setfill('0')
                << core.reg(a3) << std::dec << std::setfill(' ') << "\n";
    }
  }
  std::cout << "\nfinal rd = 0x" << std::hex << core.reg(a3) << std::dec
            << " (lanes A0..A3 gathered without a single pointer update)\n";
  return 0;
}
