// Quickstart: prune a convolution to 1:8, pack it into the N:M format,
// run it on the simulated PULP cluster with the SW-only and xDecimate
// kernels, and check the outputs against the int8 reference.
//
//   ./examples/quickstart

#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "kernels/launch.hpp"
#include "nn/prune.hpp"
#include "nn/ref_ops.hpp"

using namespace decimate;

int main() {
  // 1) a 3x3 convolution layer: 8x8x64 input, 32 output channels
  const ConvGeom geom{.ix = 8, .iy = 8, .c = 64, .k = 32, .fx = 3, .fy = 3,
                      .stride = 1, .pad = 1};
  Rng rng(2024);
  const Tensor8 input = Tensor8::random({geom.iy, geom.ix, geom.c}, rng);
  Tensor8 weights = Tensor8::random({geom.k, geom.fsz()}, rng);
  Tensor32 bias({geom.k}, 0);
  const Requant rq{13, 13};  // out = clip8((acc * 13) >> 13)

  // 2) prune to 1:8 (exactly one non-zero per 8 weights) by magnitude
  nm_prune(weights.flat(), geom.k, geom.fsz(), 1, 8);
  std::cout << "weight sparsity after 1:8 pruning: "
            << Table::num(100.0 * sparsity(weights.flat()), 1) << "%\n";

  // 3) pack into the paper's N:M format (values + 4-bit offsets)
  const NmPacked sw_pack = nm_pack(weights.flat(), geom.k, geom.fsz(), 8,
                                   NmLayout::kSw);
  const NmPacked isa_pack = nm_pack(weights.flat(), geom.k, geom.fsz(), 8,
                                    NmLayout::kConvIsaDup);
  std::cout << "dense weights: " << geom.k * geom.fsz() << " B, packed: "
            << sw_pack.total_bytes() << " B (SW), " << isa_pack.total_bytes()
            << " B (ISA, duplicated offsets)\n\n";

  // 4) run dense baseline, SW sparse, and ISA sparse kernels on the cluster
  const Tensor8 expected = conv2d_s8(input, weights, bias, geom, rq);
  Table t({"kernel", "cycles", "MAC/cyc (dense-equiv)", "matches reference"});
  Cluster cluster;  // 8 cores, sequential mode
  KernelLauncher launcher(cluster);

  Tensor8 dense_weights = weights;  // zeros included
  const KernelRun dense = launcher.conv(KernelKind::kConvDense1x2, geom, rq,
                                        input, &dense_weights, nullptr, bias);
  t.add_row({"dense 1x2", std::to_string(dense.result.wall_cycles),
             Table::num(dense.macs_per_cycle(), 2),
             dense.output == expected ? "yes" : "NO"});

  const KernelRun sw = launcher.conv(KernelKind::kConvSparseSw, geom, rq,
                                     input, nullptr, &sw_pack, bias);
  t.add_row({"sparse SW 1:8", std::to_string(sw.result.wall_cycles),
             Table::num(sw.macs_per_cycle(), 2),
             sw.output == expected ? "yes" : "NO"});

  const KernelRun isa = launcher.conv(KernelKind::kConvSparseIsa, geom, rq,
                                      input, nullptr, &isa_pack, bias);
  t.add_row({"sparse ISA 1:8 (xDecimate)",
             std::to_string(isa.result.wall_cycles),
             Table::num(isa.macs_per_cycle(), 2),
             isa.output == expected ? "yes" : "NO"});
  std::cout << t << "\n";
  std::cout << "speedup SW vs dense:  "
            << Table::num(static_cast<double>(dense.result.wall_cycles) /
                              sw.result.wall_cycles, 2)
            << "x\n"
            << "speedup ISA vs dense: "
            << Table::num(static_cast<double>(dense.result.wall_cycles) /
                              isa.result.wall_cycles, 2)
            << "x\n";
  return 0;
}
