// Batch-execution and cache-soundness tests: the three cache/cycle-model
// regressions (maxpool tile-key collision, ReLU tail truncation,
// latency-cache races), pipelined run_batch bit-exactness against
// sequential per-image runs, batch-fused FC weight-DMA amortization, and
// the ScheduleExecutor compile-once guarantee.

#include <gtest/gtest.h>

#include <thread>

#include "compiler/fingerprint.hpp"
#include "compiler/schedule.hpp"
#include "exec/compile.hpp"
#include "exec/engine.hpp"
#include "models/models.hpp"
#include "nn/prune.hpp"

namespace decimate {
namespace {

CompileOptions isa_options() {
  CompileOptions opt;
  opt.enable_isa = true;
  return opt;
}

Graph scaled_resnet18() {
  Resnet18Options opt;
  opt.sparsity_m = 8;
  opt.input_hw = 16;
  return build_resnet18(opt);
}

Graph scaled_vit() {
  VitOptions opt;
  opt.image_hw = 64;
  opt.dim = 64;
  opt.depth = 2;
  opt.heads = 2;
  opt.mlp = 256;
  opt.sparsity_m = 8;
  return build_vit(opt);
}

std::vector<Tensor8> distinct_inputs(const std::vector<int>& shape, int n,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor8> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(Tensor8::random(shape, rng));
  return inputs;
}

Graph maxpool_graph(int h, int w, int c) {
  Graph g({h, w, c});
  Node n;
  n.op = OpType::kMaxPool2;
  n.name = "pool";
  n.inputs = {0};
  n.out_shape = {h / 2, w / 2, c};
  g.add(std::move(n));
  return g;
}

Graph relu_graph(int numel) {
  Graph g({1, numel});
  Node n;
  n.op = OpType::kRelu;
  n.name = "relu";
  n.inputs = {0};
  n.out_shape = {1, numel};
  g.add(std::move(n));
  return g;
}

/// Two sparse FC layers (d -> hidden -> d) over `tokens` rows — the ViT
/// FFN shape the paper sparsifies, used by the batch-fusion tests.
Graph ffn_block(int tokens, int d, int hidden, int m, uint64_t seed) {
  return build_ffn_block(tokens, d, hidden, m, seed);
}

// --- cache / cycle-model regressions ----------------------------------------

TEST(TileKeys, MaxpoolShapesWithEqualProductsAreDistinct) {
  // (w, c) = (8, 4) and (4, 8) share rows = 4 and 2*w*c = 64; conflating
  // them silently reuses one shape's measured cycles for the other.
  Compiler first(isa_options());
  first.compile(maxpool_graph(8, 8, 4));
  const uint64_t misses = first.latencies().misses();
  EXPECT_GT(misses, 0u);

  Compiler second(isa_options(), first.shared_latencies());
  second.compile(maxpool_graph(8, 4, 8));
  EXPECT_GT(second.latencies().misses(), misses)
      << "different maxpool shapes must not share a latency-cache entry";
}

TEST(TileKeys, ClusterConfigSaltsSharedCache) {
  // The cache is documented as shareable across compilers; compilers with
  // different core counts measure different cycles for the same geometry.
  const Graph g = relu_graph(4096);
  Compiler eight(isa_options());
  const CompiledPlan p8 = eight.compile(g);
  const uint64_t misses = eight.latencies().misses();

  CompileOptions one_core = isa_options();
  one_core.num_cores = 1;
  Compiler single(one_core, eight.shared_latencies());
  const CompiledPlan p1 = single.compile(g);
  EXPECT_GT(single.latencies().misses(), misses)
      << "same geometry under a different cluster config must re-measure";
  EXPECT_NE(p1.steps[0].report.compute_cycles,
            p8.steps[0].report.compute_cycles);
}

TEST(CycleModel, ReluTailElementsAreCosted) {
  // numel % 4 != 0 used to drop the tail word from both the compute
  // measurement and the DMA cost.
  Compiler compiler(isa_options());
  const Graph g_even = relu_graph(8);
  const Graph g_odd = relu_graph(11);  // plans keep a graph reference
  const CompiledPlan even = compiler.compile(g_even);
  const CompiledPlan odd = compiler.compile(g_odd);
  const LayerReport& re = even.steps[0].report;
  const LayerReport& ro = odd.steps[0].report;
  EXPECT_GT(ro.dma_cycles, re.dma_cycles)
      << "11 elements move 3 words of DMA, 8 elements move 2";
  EXPECT_GE(ro.total_cycles, re.total_cycles);

  // numerics always covered the tail; the plan must still execute it
  ExecutionEngine engine;
  Rng rng(3);
  const Tensor8 x = Tensor8::random({1, 11}, rng);
  const NetworkRun run = engine.run(odd, x);
  for (int i = 0; i < 11; ++i) {
    EXPECT_EQ(run.output[i], std::max<int8_t>(x[i], 0));
  }
}

TEST(LatencyCache, ConcurrentCompilesAreSafeAndSimulateOnce) {
  // Many compilers, one shared cache, racing on the same graph: each
  // unique tile must be simulated exactly once (misses == size) and every
  // plan must carry identical cycle reports.
  const Graph g = scaled_resnet18();
  auto cache = std::make_shared<TileLatencyCache>();
  constexpr int kThreads = 4;
  std::vector<CompiledPlan> plans(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Compiler compiler(isa_options(), cache);
      plans[static_cast<size_t>(t)] = compiler.compile(g);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache->misses(), cache->size());
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(plans[static_cast<size_t>(t)].steps.size(),
              plans[0].steps.size());
    EXPECT_EQ(plans[static_cast<size_t>(t)].total_cycles,
              plans[0].total_cycles);
    for (size_t s = 0; s < plans[0].steps.size(); ++s) {
      EXPECT_EQ(plans[static_cast<size_t>(t)].steps[s].report.total_cycles,
                plans[0].steps[s].report.total_cycles);
    }
  }
}

// --- pipelined batch execution ----------------------------------------------

TEST(Batch, PipelinedRunBatchBitExactWithSequentialRunsResnet18) {
  const Graph g = scaled_resnet18();
  Compiler compiler(isa_options());
  const CompiledPlan plan = compiler.compile(g);
  const auto inputs = distinct_inputs({16, 16, 4}, 6, 21);

  ExecutionEngine pipelined;
  pipelined.set_workers(4);
  const BatchRun batch = pipelined.run_batch(plan, inputs);

  ExecutionEngine sequential;
  ASSERT_EQ(batch.runs.size(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    const NetworkRun ref = sequential.run(plan, inputs[i]);
    EXPECT_TRUE(batch.runs[i].output == ref.output) << "image " << i;
    EXPECT_EQ(batch.runs[i].total_cycles, ref.total_cycles);
  }
}

TEST(Batch, PipelinedRunBatchBitExactWithSequentialRunsVit) {
  const Graph g = scaled_vit();
  Compiler compiler(isa_options());
  const CompiledPlan plan = compiler.compile(g);
  const auto inputs = distinct_inputs({64, 64, 4}, 3, 22);

  ExecutionEngine pipelined;
  pipelined.set_workers(3);
  const BatchRun batch = pipelined.run_batch(plan, inputs);

  ExecutionEngine sequential;
  ASSERT_EQ(batch.runs.size(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    const NetworkRun ref = sequential.run(plan, inputs[i]);
    EXPECT_TRUE(batch.runs[i].output == ref.output) << "image " << i;
    EXPECT_EQ(batch.runs[i].total_cycles, ref.total_cycles);
  }
}

TEST(Batch, CrossImagePipelineNeverSlowerThanSequentialModel) {
  const Graph g = scaled_resnet18();
  Compiler compiler(isa_options());
  const CompiledPlan plan = compiler.compile(g);
  uint64_t prev = 0;
  for (int n : {1, 2, 4, 8}) {
    const uint64_t cycles = ExecutionEngine::modeled_batch_cycles(plan, n);
    EXPECT_GT(cycles, prev);  // more images cost more in total...
    EXPECT_LE(cycles, plan.total_cycles * static_cast<uint64_t>(n))
        << "...but never more than n independent images";
    prev = cycles;
  }
}

TEST(Batch, FusedFcTilingAmortizesWeightDmaAcrossImages) {
  const int tokens = 96, d = 128, hidden = 512;
  const auto weight_dma_per_image = [&](int batch) {
    CompileOptions opt = isa_options();
    opt.batch = batch;
    Compiler compiler(opt);
    const Graph g = ffn_block(tokens, d, hidden, 8, 5);
    const CompiledPlan plan = compiler.compile(g);
    uint64_t dma = 0;
    for (const PlanStep& s : plan.steps) {
      EXPECT_EQ(s.batch_fused, batch > 1);
      dma += s.report.weight_dma_cycles;
    }
    return dma;
  };
  const uint64_t per_image = weight_dma_per_image(1);
  const uint64_t fused4 = weight_dma_per_image(4);
  const uint64_t fused16 = weight_dma_per_image(16);
  EXPECT_LT(fused4, per_image)
      << "batch-fused FC must fetch each weight tile fewer times per image";
  EXPECT_LT(fused16, fused4);
}

TEST(Batch, FusedConvTilingAmortizesWeightDmaAcrossImages) {
  // The conv counterpart of FC batch fusion: a K-outer fused schedule
  // keeps each weight tile resident while it sweeps every image's row
  // tiles, so conv weight DMA per image drops with the batch.
  const auto weight_dma_per_image = [&](int batch) {
    CompileOptions opt = isa_options();
    opt.batch = batch;
    Compiler compiler(opt);
    const CompiledPlan plan = compiler.compile(scaled_resnet18());
    uint64_t dma = 0;
    for (const PlanStep& s : plan.steps) {
      if (s.op != OpType::kConv2d) continue;
      EXPECT_EQ(s.batch_fused, batch > 1);
      dma += s.report.weight_dma_cycles;
    }
    return dma;
  };
  const uint64_t per_image = weight_dma_per_image(1);
  const uint64_t fused4 = weight_dma_per_image(4);
  const uint64_t fused16 = weight_dma_per_image(16);
  EXPECT_LT(fused4, per_image)
      << "batch-fused conv must fetch each weight tile fewer times per image";
  EXPECT_LT(fused16, fused4);
}

TEST(Batch, FusedConvPlanBitExactWithUnfusedPlan) {
  // Conv fusion only reorders the cost model's tile stream; numerics are
  // per-image and must be unchanged.
  const Graph g = scaled_resnet18();
  Compiler unfused(isa_options());
  CompileOptions fopt = isa_options();
  fopt.batch = 3;
  Compiler fused(fopt, unfused.shared_latencies());
  const CompiledPlan p1 = unfused.compile(g);
  const CompiledPlan p3 = fused.compile(g);

  ExecutionEngine engine;
  const auto inputs = distinct_inputs({16, 16, 4}, 3, 24);
  const BatchRun b1 = engine.run_batch(p1, inputs);
  const BatchRun b3 = engine.run_batch(p3, inputs);
  for (size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_TRUE(b1.runs[i].output == b3.runs[i].output) << "image " << i;
  }
}

TEST(Batch, RunBatchRejectsSpanMismatchedWithFusedBatch) {
  // A fused plan's tile stream covers exactly options.batch images;
  // serving any other span must throw instead of stamping a mismatched
  // cycle report.
  const Graph g = ffn_block(32, 64, 128, 8, 8);
  CompileOptions opt = isa_options();
  opt.batch = 4;
  Compiler compiler(opt);
  const CompiledPlan plan = compiler.compile(g);
  ExecutionEngine engine;
  const auto three = distinct_inputs({32, 64}, 3, 25);
  EXPECT_THROW(engine.run_batch(plan, three), Error);
  const auto four = distinct_inputs({32, 64}, 4, 26);
  EXPECT_EQ(engine.run_batch(plan, four).batch_size(), 4);
}

TEST(Batch, FusedPlanBitExactWithUnfusedPlan) {
  // Batch fusion only changes the cost model / tile schedule; FC rows are
  // independent, so outputs must be unchanged image by image.
  const Graph g = ffn_block(96, 128, 512, 8, 6);
  Compiler unfused(isa_options());
  CompileOptions fopt = isa_options();
  fopt.batch = 4;
  Compiler fused(fopt);
  const CompiledPlan p1 = unfused.compile(g);
  const CompiledPlan p4 = fused.compile(g);

  ExecutionEngine engine;
  const auto inputs = distinct_inputs({96, 128}, 4, 23);
  const BatchRun b1 = engine.run_batch(p1, inputs);
  const BatchRun b4 = engine.run_batch(p4, inputs);
  for (size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_TRUE(b1.runs[i].output == b4.runs[i].output) << "image " << i;
  }
}

// --- compile-once wrapper ---------------------------------------------------

TEST(PlanCache, ScheduleExecutorCompilesRepeatedGraphOnce) {
  const Graph g = scaled_resnet18();
  ScheduleExecutor exec(isa_options());
  const auto inputs = distinct_inputs({16, 16, 4}, 3, 31);

  const NetworkRun first = exec.run(g, inputs[0]);
  EXPECT_EQ(exec.compiles(), 1);
  const uint64_t misses = exec.latencies().misses();

  const NetworkRun second = exec.run(g, inputs[1]);
  EXPECT_EQ(exec.compiles(), 1) << "identical graph must reuse the plan";
  EXPECT_EQ(exec.latencies().misses(), misses);
  EXPECT_EQ(first.total_cycles, second.total_cycles);

  // same content in a different Graph object: still one compile
  const Graph twin = scaled_resnet18();
  EXPECT_EQ(graph_fingerprint(twin), graph_fingerprint(g));
  exec.run(twin, inputs[2]);
  EXPECT_EQ(exec.compiles(), 1);

  // different content (different sparsity) is a new identity
  Resnet18Options mopt;
  mopt.sparsity_m = 16;
  mopt.input_hw = 16;
  const Graph other = build_resnet18(mopt);
  EXPECT_NE(graph_fingerprint(other), graph_fingerprint(g));
  exec.run(other, inputs[0]);
  EXPECT_EQ(exec.compiles(), 2);
}

TEST(PlanCache, ScheduleExecutorRunBatchUsesCachedPlan) {
  const Graph g = ffn_block(32, 64, 128, 8, 7);
  ScheduleExecutor exec(isa_options());
  const auto inputs = distinct_inputs({32, 64}, 3, 33);
  const BatchRun batch = exec.run_batch(g, inputs);
  EXPECT_EQ(exec.compiles(), 1);
  for (size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_TRUE(batch.runs[i].output == exec.run(g, inputs[i]).output);
  }
  EXPECT_EQ(exec.compiles(), 1);
}

}  // namespace
}  // namespace decimate
