#pragma once
// Shared helpers for the test suite: deterministic random layers, sparse
// weight synthesis, and a small harness around Cluster/KernelLauncher.

#include <memory>

#include "common/rng.hpp"
#include "kernels/launch.hpp"
#include "nn/prune.hpp"
#include "sim/cluster.hpp"

namespace decimate::test {

/// Random dense int8 weights {rows, cols}.
inline Tensor8 random_weights(int rows, int cols, Rng& rng) {
  return Tensor8::random({rows, cols}, rng);
}

/// Random 1:M sparse int8 weights {rows, cols} (magnitude-pruned).
inline Tensor8 random_sparse_weights(int rows, int cols, int m, Rng& rng) {
  Tensor8 w = Tensor8::random({rows, cols}, rng);
  nm_prune(w.flat(), rows, cols, 1, m);
  return w;
}

/// Random bias in a range that keeps requant sane.
inline Tensor32 random_bias(int k, Rng& rng) {
  Tensor32 b({k});
  for (int i = 0; i < k; ++i) b[i] = rng.uniform_int(-2000, 2000);
  return b;
}

/// A requant typical of int8 layers (scale ~1/2^10 of the accumulator).
inline Requant test_requant() { return Requant{13, 13}; }

struct TestRig {
  explicit TestRig(int cores = 8, bool lockstep = false) {
    ClusterConfig cfg;
    cfg.num_cores = cores;
    cfg.lockstep = lockstep;
    cluster = std::make_unique<Cluster>(cfg);
    launcher = std::make_unique<KernelLauncher>(*cluster);
  }
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<KernelLauncher> launcher;
};

}  // namespace decimate::test
