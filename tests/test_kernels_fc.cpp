// Bit-exactness of the FC kernel programs vs the reference, the offsets
// interleaving of Fig. 6, and the FC instruction-count analysis (Sec. 4.2).

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace decimate {
namespace {

using test::TestRig;

struct FcCase {
  KernelKind kind;
  int m;
  FcGeom g;
};

std::string fc_case_name(const ::testing::TestParamInfo<FcCase>& info) {
  const auto& c = info.param;
  std::string n = kernel_kind_name(c.kind);
  for (auto& ch : n) {
    if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return n + "_m" + std::to_string(c.m) + "_t" + std::to_string(c.g.tokens) +
         "_c" + std::to_string(c.g.c) + "_k" + std::to_string(c.g.k) + "_" +
         std::to_string(info.index);
}

class FcKernelTest : public ::testing::TestWithParam<FcCase> {};

TEST_P(FcKernelTest, MatchesReference) {
  const auto& c = GetParam();
  Rng rng(0xFC + static_cast<uint64_t>(c.g.c) * 17 + c.m + c.g.tokens);
  TestRig rig;
  const Tensor8 input = Tensor8::random({c.g.tokens, c.g.c}, rng);
  const Tensor32 bias = test::random_bias(c.g.k, rng);
  const Requant rq = test::test_requant();

  Tensor8 w = (c.m == 0) ? test::random_weights(c.g.k, c.g.c, rng)
                         : test::random_sparse_weights(c.g.k, c.g.c, c.m, rng);
  const Tensor8 expected = fc_s8(input, w, bias, rq);

  KernelRun run;
  if (kernel_is_sparse(c.kind)) {
    const NmPacked packed =
        nm_pack(w.flat(), c.g.k, c.g.c, c.m, KernelLauncher::layout_for(c.kind));
    run = rig.launcher->fc(c.kind, c.g, rq, input, nullptr, &packed, bias);
  } else {
    run = rig.launcher->fc(c.kind, c.g, rq, input, &w, nullptr, bias);
  }
  ASSERT_EQ(run.output.shape(), expected.shape());
  for (int64_t i = 0; i < expected.numel(); ++i) {
    ASSERT_EQ(run.output[i], expected[i])
        << "first mismatch at flat index " << i << " for "
        << kernel_kind_name(c.kind) << " m=" << c.m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dense, FcKernelTest,
    ::testing::Values(
        FcCase{KernelKind::kFcDense, 0, FcGeom{.tokens = 1, .c = 64, .k = 16}},
        FcCase{KernelKind::kFcDense, 0, FcGeom{.tokens = 1, .c = 256, .k = 10}},
        FcCase{KernelKind::kFcDense, 0, FcGeom{.tokens = 5, .c = 32, .k = 8}},
        FcCase{KernelKind::kFcDense, 0, FcGeom{.tokens = 16, .c = 64, .k = 32}},
        FcCase{KernelKind::kFcDense, 0,
               FcGeom{.tokens = 3, .c = 128, .k = 100}}),
    fc_case_name);

INSTANTIATE_TEST_SUITE_P(
    SparseSw, FcKernelTest,
    ::testing::Values(
        FcCase{KernelKind::kFcSparseSw, 4, FcGeom{.tokens = 1, .c = 64, .k = 16}},
        FcCase{KernelKind::kFcSparseSw, 8, FcGeom{.tokens = 1, .c = 64, .k = 16}},
        FcCase{KernelKind::kFcSparseSw, 16, FcGeom{.tokens = 1, .c = 64, .k = 16}},
        FcCase{KernelKind::kFcSparseSw, 8, FcGeom{.tokens = 1, .c = 256, .k = 9}},
        FcCase{KernelKind::kFcSparseSw, 8, FcGeom{.tokens = 7, .c = 64, .k = 13}},
        FcCase{KernelKind::kFcSparseSw, 16, FcGeom{.tokens = 16, .c = 128, .k = 24}},
        FcCase{KernelKind::kFcSparseSw, 4, FcGeom{.tokens = 2, .c = 96, .k = 6}},
        FcCase{KernelKind::kFcSparseSw, 2, FcGeom{.tokens = 1, .c = 64, .k = 16}},
        FcCase{KernelKind::kFcSparseSw, 2, FcGeom{.tokens = 7, .c = 96, .k = 13}}),
    fc_case_name);

INSTANTIATE_TEST_SUITE_P(
    SparseIsa, FcKernelTest,
    ::testing::Values(
        FcCase{KernelKind::kFcSparseIsa, 4, FcGeom{.tokens = 1, .c = 64, .k = 16}},
        FcCase{KernelKind::kFcSparseIsa, 8, FcGeom{.tokens = 1, .c = 64, .k = 16}},
        FcCase{KernelKind::kFcSparseIsa, 16, FcGeom{.tokens = 1, .c = 64, .k = 16}},
        FcCase{KernelKind::kFcSparseIsa, 8, FcGeom{.tokens = 1, .c = 256, .k = 10}},
        FcCase{KernelKind::kFcSparseIsa, 8, FcGeom{.tokens = 7, .c = 64, .k = 14}},
        FcCase{KernelKind::kFcSparseIsa, 16, FcGeom{.tokens = 16, .c = 128, .k = 24}},
        FcCase{KernelKind::kFcSparseIsa, 4, FcGeom{.tokens = 2, .c = 96, .k = 6}},
        FcCase{KernelKind::kFcSparseIsa, 16, FcGeom{.tokens = 3, .c = 512, .k = 2}}),
    fc_case_name);

TEST(FcKernelInstrCounts, InnerLoopsMatchPaper) {
  // Sec. 4.2: dense 5; SW 16 (17 for 1:4); ISA 13 (25 per 2 iters for 1:4).
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kFcDense, 0)
                .region_length(kInnerBegin, kInnerEnd),
            5);
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kFcSparseSw, 8)
                .region_length(kInnerBegin, kInnerEnd),
            16);
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kFcSparseSw, 16)
                .region_length(kInnerBegin, kInnerEnd),
            16);
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kFcSparseSw, 4)
                .region_length(kInnerBegin, kInnerEnd),
            17);
  // M=2 shares the M=4 body (2-bit offsets): same inner-loop length.
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kFcSparseSw, 2)
                .region_length(kInnerBegin, kInnerEnd),
            17);
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kFcSparseIsa, 8)
                .region_length(kInnerBegin, kInnerEnd),
            13);
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kFcSparseIsa, 16)
                .region_length(kInnerBegin, kInnerEnd),
            13);
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kFcSparseIsa, 4)
                .region_length(kInnerBegin, kInnerEnd),
            25);
}

TEST(FcKernelPeaks, DenseEquivalentMacsPerInstruction) {
  // Sec. 4.2: FC ISA reaches 0.61 dense-equivalent MACs/instr/M, i.e.
  // 2.44 / 4.88 / 9.76 at 1:4 / 1:8 / 1:16; the SW kernel reaches 0.25/M.
  const FcGeom g{.tokens = 8, .c = 1024, .k = 64};
  Rng rng(9);
  const Tensor8 input = Tensor8::random({g.tokens, g.c}, rng);
  const Tensor32 bias = test::random_bias(g.k, rng);

  auto measure = [&](KernelKind kind, int m) {
    TestRig rig;
    Tensor8 w = test::random_sparse_weights(g.k, g.c, m, rng);
    const NmPacked packed =
        nm_pack(w.flat(), g.k, g.c, m, KernelLauncher::layout_for(kind));
    const KernelRun run = rig.launcher->fc(kind, g, test::test_requant(),
                                           input, nullptr, &packed, bias);
    return static_cast<double>(run.dense_macs) /
           static_cast<double>(run.result.total_instructions);
  };
  EXPECT_NEAR(measure(KernelKind::kFcSparseSw, 8), 2.0, 0.25);
  EXPECT_NEAR(measure(KernelKind::kFcSparseSw, 16), 4.0, 0.5);
  EXPECT_NEAR(measure(KernelKind::kFcSparseIsa, 8), 4.88, 0.6);
  EXPECT_NEAR(measure(KernelKind::kFcSparseIsa, 16), 9.76, 1.2);
}

TEST(FcKernel, SparseBeatsDenseAtHighSparsityOnCompute) {
  const FcGeom g{.tokens = 4, .c = 512, .k = 32};
  Rng rng(10);
  const Tensor8 input = Tensor8::random({g.tokens, g.c}, rng);
  const Tensor32 bias = test::random_bias(g.k, rng);
  TestRig rig;
  Tensor8 dense_w = test::random_weights(g.k, g.c, rng);
  const KernelRun dense = rig.launcher->fc(
      KernelKind::kFcDense, g, test::test_requant(), input, &dense_w, nullptr,
      bias);
  Tensor8 sparse_w = test::random_sparse_weights(g.k, g.c, 16, rng);
  const NmPacked packed =
      nm_pack(sparse_w.flat(), g.k, g.c, 16, NmLayout::kFcIsaInterleaved);
  TestRig rig2;
  const KernelRun sparse = rig2.launcher->fc(
      KernelKind::kFcSparseIsa, g, test::test_requant(), input, nullptr,
      &packed, bias);
  EXPECT_LT(sparse.result.wall_cycles, dense.result.wall_cycles);
  // paper's shape: > 2x at 1:16 on the compute-only path
  EXPECT_GT(static_cast<double>(dense.result.wall_cycles) /
                static_cast<double>(sparse.result.wall_cycles),
            2.0);
}

TEST(FcKernel, OddKRejectedForPairKernels) {
  TestRig rig;
  Rng rng(2);
  const FcGeom g{.tokens = 1, .c = 32, .k = 7};
  const Tensor8 input = Tensor8::random({1, 32}, rng);
  Tensor8 w = test::random_weights(7, 32, rng);
  Tensor32 bias({7}, 0);
  EXPECT_THROW(rig.launcher->fc(KernelKind::kFcDense, g, test::test_requant(),
                                input, &w, nullptr, bias),
               Error);
  // ...but fine for the SW sparse kernel (no channel pairing)
  Tensor8 ws = test::random_sparse_weights(7, 32, 8, rng);
  const NmPacked packed = nm_pack(ws.flat(), 7, 32, 8, NmLayout::kSw);
  const Tensor8 expected = fc_s8(input, ws, bias, test::test_requant());
  const KernelRun run = rig.launcher->fc(
      KernelKind::kFcSparseSw, g, test::test_requant(), input, nullptr,
      &packed, bias);
  EXPECT_TRUE(run.output == expected);
}

}  // namespace
}  // namespace decimate
