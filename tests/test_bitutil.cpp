#include "common/bitutil.hpp"

#include <gtest/gtest.h>

namespace decimate {
namespace {

TEST(BitUtil, BitsExtractsInclusiveRange) {
  EXPECT_EQ(bits(0xDEADBEEF, 7, 0), 0xEFu);
  EXPECT_EQ(bits(0xDEADBEEF, 31, 28), 0xDu);
  EXPECT_EQ(bits(0xDEADBEEF, 15, 8), 0xBEu);
  EXPECT_EQ(bits(0xFFFFFFFF, 31, 0), 0xFFFFFFFFu);
  EXPECT_EQ(bits(0x00000000, 31, 0), 0u);
}

TEST(BitUtil, SetBitsWritesField) {
  EXPECT_EQ(set_bits(0, 7, 4, 0xA), 0xA0u);
  EXPECT_EQ(set_bits(0xFFFFFFFF, 7, 4, 0), 0xFFFFFF0Fu);
  EXPECT_EQ(set_bits(0, 31, 0, 0x12345678), 0x12345678u);
  // value is masked to the field width
  EXPECT_EQ(set_bits(0, 3, 0, 0x1F), 0xFu);
}

TEST(BitUtil, SignExtend) {
  EXPECT_EQ(sign_extend(0xFFF, 12), -1);
  EXPECT_EQ(sign_extend(0x800, 12), -2048);
  EXPECT_EQ(sign_extend(0x7FF, 12), 2047);
  EXPECT_EQ(sign_extend(0x0, 12), 0);
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
}

TEST(BitUtil, CeilDivAndRoundUp) {
  EXPECT_EQ(ceil_div(10, 4), 3);
  EXPECT_EQ(ceil_div(8, 4), 2);
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(12, 4), 12);
}

TEST(BitUtil, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(8), 3u);
  EXPECT_EQ(ceil_log2(16), 4u);
}

TEST(BitUtil, PackAndLane) {
  const uint32_t w = pack_b4(1, -2, 3, -4);
  EXPECT_EQ(lane_b(w, 0), 1);
  EXPECT_EQ(lane_b(w, 1), -2);
  EXPECT_EQ(lane_b(w, 2), 3);
  EXPECT_EQ(lane_b(w, 3), -4);
}

TEST(BitUtil, Sdot4MatchesScalar) {
  const uint32_t a = pack_b4(10, -20, 30, -40);
  const uint32_t b = pack_b4(-1, 2, -3, 4);
  EXPECT_EQ(sdot4(a, b), 10 * -1 + -20 * 2 + 30 * -3 + -40 * 4);
  EXPECT_EQ(sdot4(pack_b4(127, 127, 127, 127), pack_b4(127, 127, 127, 127)),
            4 * 127 * 127);
  EXPECT_EQ(sdot4(pack_b4(-128, -128, -128, -128),
                  pack_b4(127, 127, 127, 127)),
            4 * -128 * 127);
}

TEST(BitUtil, ClipSigned) {
  EXPECT_EQ(clip_signed(300, 8), 127);
  EXPECT_EQ(clip_signed(-300, 8), -128);
  EXPECT_EQ(clip_signed(5, 8), 5);
  EXPECT_EQ(clip_signed(-5, 8), -5);
  EXPECT_EQ(clip_signed(127, 8), 127);
  EXPECT_EQ(clip_signed(-128, 8), -128);
  EXPECT_EQ(clip_signed(40000, 16), 32767);
}

TEST(BitUtil, NarrowThrowsOnLoss) {
  EXPECT_EQ(narrow<int8_t>(100), 100);
  EXPECT_THROW(narrow<int8_t>(300), Error);
  EXPECT_THROW(narrow<uint8_t>(-1), Error);
}

}  // namespace
}  // namespace decimate
