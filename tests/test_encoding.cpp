#include "isa/encoding.hpp"

#include <gtest/gtest.h>

#include "isa/builder.hpp"
#include "kernels/kernels.hpp"

namespace decimate {
namespace {

using namespace reg;

void expect_roundtrip(const Instr& in, int pc = 100) {
  const uint32_t word = encode(in, pc);
  const Instr out = decode(word, pc);
  EXPECT_EQ(out.op, in.op) << opcode_name(in.op);
  EXPECT_EQ(out.rd, in.rd) << opcode_name(in.op);
  EXPECT_EQ(out.rs1, in.rs1) << opcode_name(in.op);
  EXPECT_EQ(out.rs2, in.rs2) << opcode_name(in.op);
  EXPECT_EQ(out.imm, in.imm) << opcode_name(in.op);
  EXPECT_EQ(out.aux, in.aux) << opcode_name(in.op);
  EXPECT_EQ(out.imm2, in.imm2) << opcode_name(in.op);
}

TEST(Encoding, AluRegisterRoundtrip) {
  for (Opcode op : {Opcode::kAdd, Opcode::kSub, Opcode::kAnd, Opcode::kOr,
                    Opcode::kXor, Opcode::kSll, Opcode::kSrl, Opcode::kSra,
                    Opcode::kSlt, Opcode::kSltu, Opcode::kMul, Opcode::kMulh,
                    Opcode::kDiv, Opcode::kDivu, Opcode::kRem}) {
    expect_roundtrip(Instr{op, 5, 6, 7, 0, 0, 0});
  }
}

TEST(Encoding, AluImmediateRoundtrip) {
  for (Opcode op : {Opcode::kAddi, Opcode::kAndi, Opcode::kOri, Opcode::kXori,
                    Opcode::kSlti, Opcode::kSltiu}) {
    expect_roundtrip(Instr{op, 10, 11, 0, 0, -123, 0});
    expect_roundtrip(Instr{op, 10, 11, 0, 0, 2047, 0});
    expect_roundtrip(Instr{op, 10, 11, 0, 0, -2048, 0});
  }
  for (Opcode op : {Opcode::kSlli, Opcode::kSrli, Opcode::kSrai}) {
    expect_roundtrip(Instr{op, 10, 11, 0, 0, 31, 0});
    expect_roundtrip(Instr{op, 10, 11, 0, 0, 1, 0});
  }
  expect_roundtrip(Instr{Opcode::kLui, 10, 0, 0, 0, 0xABCDE, 0});
}

TEST(Encoding, LoadStoreRoundtrip) {
  for (Opcode op : {Opcode::kLb, Opcode::kLbu, Opcode::kLh, Opcode::kLhu,
                    Opcode::kLw}) {
    expect_roundtrip(Instr{op, 8, 9, 0, 0, 444, 0});
    expect_roundtrip(Instr{op, 8, 9, 0, 0, -444, 0});
  }
  for (Opcode op : {Opcode::kSb, Opcode::kSh, Opcode::kSw}) {
    expect_roundtrip(Instr{op, 0, 9, 8, 0, 444, 0});
    expect_roundtrip(Instr{op, 0, 9, 8, 0, -4, 0});
  }
}

TEST(Encoding, PulpLoadStoreRoundtrip) {
  for (Opcode op : {Opcode::kLbPi, Opcode::kLbuPi, Opcode::kLhuPi,
                    Opcode::kLwPi}) {
    expect_roundtrip(Instr{op, 8, 9, 0, 0, 4, 0});
  }
  for (Opcode op : {Opcode::kSbPi, Opcode::kSwPi}) {
    expect_roundtrip(Instr{op, 0, 9, 8, 0, 4, 0});
  }
  for (Opcode op : {Opcode::kLbRr, Opcode::kLbuRr, Opcode::kLwRr}) {
    expect_roundtrip(Instr{op, 8, 9, 10, 0, 0, 0});
  }
}

TEST(Encoding, ClipMaxMinRoundtrip) {
  expect_roundtrip(Instr{Opcode::kPClip, 5, 6, 0, 8, 0, 0});
  expect_roundtrip(Instr{Opcode::kPClip, 5, 6, 0, 16, 0, 0});
  expect_roundtrip(Instr{Opcode::kPMax, 5, 6, 7, 0, 0, 0});
  expect_roundtrip(Instr{Opcode::kPMin, 5, 6, 7, 0, 0, 0});
}

TEST(Encoding, BranchJumpRoundtrip) {
  for (Opcode op : {Opcode::kBeq, Opcode::kBne, Opcode::kBlt, Opcode::kBge,
                    Opcode::kBltu, Opcode::kBgeu}) {
    expect_roundtrip(Instr{op, 0, 5, 6, 0, 60, 0}, /*pc=*/100);
    expect_roundtrip(Instr{op, 0, 5, 6, 0, 140, 0}, /*pc=*/100);
  }
  expect_roundtrip(Instr{Opcode::kJal, 1, 0, 0, 0, 5000, 0}, 100);
  expect_roundtrip(Instr{Opcode::kJalr, 0, 1, 0, 0, 0, 0});
}

TEST(Encoding, HwLoopRoundtrip) {
  expect_roundtrip(Instr{Opcode::kLpSetup, 0, 9, 0, 0, 130, 0}, 100);
  expect_roundtrip(Instr{Opcode::kLpSetup, 0, 9, 0, 1, 130, 0}, 100);
  expect_roundtrip(Instr{Opcode::kLpSetupImm, 0, 0, 0, 1, 130, 7}, 100);
  expect_roundtrip(Instr{Opcode::kLpSetupImm, 0, 0, 0, 0, 103, 255}, 100);
}

TEST(Encoding, SimdAndXdecRoundtrip) {
  expect_roundtrip(Instr{Opcode::kPvAddB, 5, 6, 7, 0, 0, 0});
  expect_roundtrip(Instr{Opcode::kPvMaxB, 5, 6, 7, 0, 0, 0});
  expect_roundtrip(Instr{Opcode::kPvSdotspB, 5, 6, 7, 0, 0, 0});
  for (int lane = 0; lane < 4; ++lane) {
    for (int lm : {0, 2, 3, 4}) {
      expect_roundtrip(Instr{Opcode::kPvLbIns, 5, 6, 7,
                             static_cast<uint8_t>(lane | (lm << 2)), 0, 0});
    }
  }
  for (int m : {4, 8, 16}) {
    expect_roundtrip(
        Instr{Opcode::kXdec, 5, 6, 7, static_cast<uint8_t>(m), 0, 0});
  }
  expect_roundtrip(Instr{Opcode::kXdecClear, 0, 0, 0, 0, 0, 0});
}

TEST(Encoding, SystemRoundtrip) {
  expect_roundtrip(Instr{Opcode::kHartid, 7, 0, 0, 0, 0, 0});
  expect_roundtrip(Instr{Opcode::kHalt, 0, 0, 0, 0, 0, 0});
  expect_roundtrip(Instr{Opcode::kBarrier, 0, 0, 0, 0, 0, 0});
}

TEST(Encoding, WholeKernelProgramsRoundtrip) {
  // Encode/decode every kernel program and compare instruction streams.
  // (Labels and markers are metadata and not part of the binary image.)
  for (auto kind : {KernelKind::kConvDense4x2, KernelKind::kConvDense1x2}) {
    const Program p = build_conv_kernel(kind, 0);
    const auto words = encode_program(p);
    const auto decoded = decode_program(words);
    ASSERT_EQ(decoded.size(), p.code.size());
    for (size_t i = 0; i < decoded.size(); ++i) {
      EXPECT_EQ(decoded[i].op, p.code[i].op) << "at " << i;
      EXPECT_EQ(decoded[i].imm, p.code[i].imm) << "at " << i;
    }
  }
  for (int m : {4, 8, 16}) {
    for (auto kind : {KernelKind::kConvSparseSw, KernelKind::kConvSparseIsa}) {
      const Program p = build_conv_kernel(kind, m);
      const auto words = encode_program(p);
      const auto decoded = decode_program(words);
      ASSERT_EQ(decoded.size(), p.code.size());
      for (size_t i = 0; i < decoded.size(); ++i) {
        EXPECT_EQ(decoded[i].op, p.code[i].op) << "m=" << m << " at " << i;
      }
    }
  }
}

}  // namespace
}  // namespace decimate
