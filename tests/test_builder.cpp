#include "isa/builder.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "isa/disasm.hpp"

namespace decimate {
namespace {

using namespace reg;

TEST(Builder, ForwardAndBackwardLabels) {
  KernelBuilder b;
  b.bind("start");
  b.beq(a0, a1, "end");   // forward reference
  b.addi(a0, a0, 1);
  b.bne(a0, a1, "start");  // backward reference
  b.bind("end");
  b.halt();
  const Program p = b.build();
  EXPECT_EQ(p.code[0].imm, 3);  // "end"
  EXPECT_EQ(p.code[2].imm, 0);  // "start"
  EXPECT_EQ(p.label("start"), 0);
  EXPECT_EQ(p.label("end"), 3);
}

TEST(Builder, UndefinedLabelThrows) {
  KernelBuilder b;
  b.beq(a0, a1, "nowhere");
  EXPECT_THROW(b.build(), Error);
}

TEST(Builder, DuplicateLabelThrows) {
  KernelBuilder b;
  b.bind("x");
  b.nop();
  EXPECT_THROW(b.bind("x"), Error);
}

TEST(Builder, LiSmallUsesOneInstr) {
  KernelBuilder b;
  b.li(a0, 42);
  b.li(a1, -42);
  b.li(a2, 2047);
  b.li(a3, -2048);
  const Program p = b.build();
  ASSERT_EQ(p.size(), 4);
  for (const auto& in : p.code) EXPECT_EQ(in.op, Opcode::kAddi);
}

TEST(Builder, LiLargeUsesLuiAddi) {
  KernelBuilder b;
  b.li(a0, 0x12345678);
  const Program p = b.build();
  ASSERT_EQ(p.size(), 2);
  EXPECT_EQ(p.code[0].op, Opcode::kLui);
  EXPECT_EQ(p.code[1].op, Opcode::kAddi);
}

TEST(Builder, HwLoopRecordsEndIndex) {
  KernelBuilder b;
  b.li(t0, 10);
  b.hw_loop(0, t0, [&] {
    b.addi(a0, a0, 1);
    b.addi(a1, a1, 1);
  });
  b.halt();
  const Program p = b.build();
  EXPECT_EQ(p.code[1].op, Opcode::kLpSetup);
  EXPECT_EQ(p.code[1].imm, 3);  // last body instruction
}

TEST(Builder, HwLoopBodyTooShortThrows) {
  KernelBuilder b;
  b.li(t0, 10);
  EXPECT_THROW(b.hw_loop(0, t0, [&] { b.nop(); }), Error);
}

TEST(Builder, MarkersRecorded) {
  KernelBuilder b;
  b.nop();
  b.marker("here");
  b.nop();
  b.nop();
  b.marker("there");
  const Program p = b.build();
  EXPECT_EQ(p.marker("here"), 1);
  EXPECT_EQ(p.marker("there"), 3);
  EXPECT_EQ(p.region_length("here", "there"), 2);
}

TEST(Builder, ImmediateRangeChecked) {
  KernelBuilder b;
  EXPECT_THROW(b.addi(a0, a0, 5000), Error);
  EXPECT_THROW(b.lw(a0, -3000, a1), Error);
}

TEST(Disasm, BasicFormats) {
  KernelBuilder b;
  b.add(a0, a1, a2);
  b.lw(a0, 8, sp);
  b.lw_pi(a0, a1, 4);
  b.xdec(a0, a1, a2, 8);
  b.pv_lb_ins(t0, 2, a1, a2, 8);
  const Program p = b.build();
  EXPECT_EQ(disassemble(p.code[0]), "add a0, a1, a2");
  EXPECT_EQ(disassemble(p.code[1]), "lw a0, 8(sp)");
  EXPECT_EQ(disassemble(p.code[2]), "p.lw! a0, 4(a1!)");
  EXPECT_EQ(disassemble(p.code[3]), "xdecimate.m8 a0, a1, a2");
  const std::string full = disassemble(p);
  EXPECT_NE(full.find("xdecimate"), std::string::npos);
}

}  // namespace
}  // namespace decimate
