// Compiler-layer tests: pattern recognition, sparsity-aware tiling, DMA
// pipeline model, vector-op kernels vs reference, and small end-to-end
// graphs (with ISS verification of single-tile layers).

#include <gtest/gtest.h>

#include "compiler/schedule.hpp"
#include "kernels/vecops.hpp"
#include "nn/prune.hpp"
#include "nn/ref_ops.hpp"
#include "testutil.hpp"

namespace decimate {
namespace {

Node conv_node(const ConvGeom& g, Tensor8 weights, Rng& rng) {
  Node n;
  n.op = OpType::kConv2d;
  n.name = "conv";
  n.inputs = {0};
  n.conv = g;
  n.weights = std::move(weights);
  n.bias = test::random_bias(g.k, rng);
  n.rq = test::test_requant();
  n.out_shape = {g.oy(), g.ox(), g.k};
  return n;
}

TEST(Pattern, RecognizesSparsityAndFallsBackDense) {
  Rng rng(3);
  const ConvGeom g{.ix = 8, .iy = 8, .c = 32, .k = 8, .fx = 3, .fy = 3,
                   .stride = 1, .pad = 1};
  CompileOptions opt;
  // dense weights -> dense kernel (1x2 since K%4==0... K=8 is %4, so 4x2)
  Node dense = conv_node(g, test::random_weights(g.k, g.fsz(), rng), rng);
  EXPECT_EQ(select_kernel(dense, opt).kind, KernelKind::kConvDense4x2);
  EXPECT_EQ(select_kernel(dense, opt).m, 0);
  opt.pulpnn_dense = false;
  EXPECT_EQ(select_kernel(dense, opt).kind, KernelKind::kConvDense1x2);
  // sparse weights -> SW sparse kernel; ISA when enabled
  Node sparse =
      conv_node(g, test::random_sparse_weights(g.k, g.fsz(), 8, rng), rng);
  opt.pulpnn_dense = true;
  EXPECT_EQ(select_kernel(sparse, opt).kind, KernelKind::kConvSparseSw);
  EXPECT_EQ(select_kernel(sparse, opt).m, 8);
  opt.enable_isa = true;
  EXPECT_EQ(select_kernel(sparse, opt).kind, KernelKind::kConvSparseIsa);
  // sparsity recognition disabled -> dense kernel even on sparse weights
  opt.enable_sparse = false;
  EXPECT_EQ(select_kernel(sparse, opt).kind, KernelKind::kConvDense4x2);
}

TEST(Tiling, BitsPerDenseWeightMatchPaper) {
  // Sec. 4.4: 1:4 with duplicated offsets = 12 bits per NZ = 3 bits per
  // dense-equivalent weight; SW 1:4 = 2.5 bits; dense = 8 bits.
  const int cols = 1024;
  EXPECT_NEAR(bits_per_dense_weight({KernelKind::kConvDense1x2, 0}, cols), 8.0,
              0.05);
  EXPECT_NEAR(bits_per_dense_weight({KernelKind::kConvSparseSw, 4}, cols), 2.5,
              0.1);
  EXPECT_NEAR(bits_per_dense_weight({KernelKind::kConvSparseIsa, 4}, cols),
              3.0, 0.1);
  EXPECT_NEAR(bits_per_dense_weight({KernelKind::kConvSparseSw, 8}, cols), 1.5,
              0.1);
  EXPECT_NEAR(bits_per_dense_weight({KernelKind::kConvSparseIsa, 8}, cols),
              2.0, 0.1);
  EXPECT_NEAR(bits_per_dense_weight({KernelKind::kConvSparseSw, 16}, cols),
              0.75, 0.1);
  EXPECT_NEAR(bits_per_dense_weight({KernelKind::kConvSparseIsa, 16}, cols),
              1.0, 0.1);
}

TEST(Tiling, SparseLayersGetLargerKTiles) {
  // Same geometry, smaller weights per channel -> at least as large K tile.
  const ConvGeom g{.ix = 8, .iy = 8, .c = 256, .k = 256, .fx = 3, .fy = 3,
                   .stride = 1, .pad = 1};
  const int64_t budget = 120 * 1024;
  const auto dense = plan_conv_tiles(g, {KernelKind::kConvDense1x2, 0}, 8,
                                     budget);
  const auto sparse = plan_conv_tiles(g, {KernelKind::kConvSparseIsa, 16}, 8,
                                      budget);
  EXPECT_GE(sparse.k_t, dense.k_t);
  EXPECT_LE(sparse.l1_bytes, budget);
  EXPECT_LE(dense.l1_bytes, budget);
}

TEST(Tiling, PlansCoverAndFit) {
  for (const auto& g :
       {ConvGeom{.ix = 32, .iy = 32, .c = 64, .k = 64, .fx = 3, .fy = 3,
                 .stride = 1, .pad = 1},
        ConvGeom{.ix = 224, .iy = 224, .c = 4, .k = 384, .fx = 16, .fy = 16,
                 .stride = 16, .pad = 0},
        ConvGeom{.ix = 8, .iy = 8, .c = 512, .k = 512, .fx = 1, .fy = 1,
                 .stride = 2, .pad = 0}}) {
    const auto plan =
        plan_conv_tiles(g, {KernelKind::kConvDense4x2, 0}, 8, 120 * 1024);
    EXPECT_GE(plan.oy_t, 1);
    EXPECT_GE(plan.k_t, 4);
    EXPECT_EQ(plan.k_t % 4, 0);
    EXPECT_LE(plan.l1_bytes, 120 * 1024);
  }
  const FcGeom fg{.tokens = 196, .c = 1536, .k = 384};
  const auto fplan =
      plan_fc_tiles(fg, {KernelKind::kFcSparseIsa, 8}, 8, 120 * 1024);
  EXPECT_GE(fplan.tok_t, 1);
  EXPECT_EQ(fplan.k_t % 2, 0);
}

// --- vector kernels vs reference -------------------------------------------

TEST(VecKernels, ReluMatchesReference) {
  test::TestRig rig;
  Rng rng(1);
  const Tensor8 x = Tensor8::random({8, 8, 16}, rng);
  EXPECT_TRUE(run_relu(*rig.cluster, x).output == relu_s8(x));
}

TEST(VecKernels, AddMatchesReference) {
  test::TestRig rig;
  Rng rng(2);
  const Tensor8 a = Tensor8::random({1000}, rng);
  const Tensor8 b = Tensor8::random({1000}, rng);
  const Requant ra{3, 2}, rb{5, 3};
  EXPECT_TRUE(run_add(*rig.cluster, a, ra, b, rb).output ==
              add_s8(a, ra, b, rb));
}

TEST(VecKernels, LutMatchesReference) {
  test::TestRig rig;
  Rng rng(3);
  const Tensor8 x = Tensor8::random({777}, rng);
  const auto lut = build_gelu_lut(0.05f, 0.05f);
  EXPECT_TRUE(run_lut(*rig.cluster, x, lut).output == lut_s8(x, lut));
}

TEST(VecKernels, PoolsMatchReference) {
  test::TestRig rig;
  Rng rng(4);
  const Tensor8 x = Tensor8::random({8, 8, 32}, rng);
  EXPECT_TRUE(run_maxpool2x2(*rig.cluster, x).output == maxpool2x2_s8(x));
  const Requant rq{1, 6};
  EXPECT_TRUE(run_avgpool(*rig.cluster, x, rq).output ==
              global_avgpool_s8(x, rq));
}

TEST(VecKernels, SoftmaxMatchesReference) {
  test::TestRig rig;
  Rng rng(5);
  const Tensor8 x = Tensor8::random({12, 100}, rng);
  const auto lut = build_exp_lut(0.125f);
  EXPECT_TRUE(run_softmax(*rig.cluster, x, lut).output == softmax_s8(x, lut));
}

TEST(VecKernels, LayernormMatchesReference) {
  test::TestRig rig;
  Rng rng(6);
  const Tensor8 x = Tensor8::random({10, 64}, rng);
  Tensor8 gamma({64}), beta({64});
  for (int i = 0; i < 64; ++i) {
    gamma[i] = static_cast<int8_t>(rng.uniform_int(40, 90));
    beta[i] = static_cast<int8_t>(rng.uniform_int(-20, 20));
  }
  EXPECT_TRUE(run_layernorm(*rig.cluster, x, gamma, beta).output ==
              layernorm_s8(x, gamma, beta));
}

TEST(VecKernels, SingleRowAndOddSizes) {
  test::TestRig rig;
  Rng rng(7);
  const Tensor8 x = Tensor8::random({1, 13}, rng);
  const auto lut = build_exp_lut(0.125f);
  EXPECT_TRUE(run_softmax(*rig.cluster, x, lut).output == softmax_s8(x, lut));
  const Tensor8 y = Tensor8::random({3}, rng);
  EXPECT_TRUE(run_lut(*rig.cluster, y, build_gelu_lut(0.1f, 0.1f)).output ==
              lut_s8(y, build_gelu_lut(0.1f, 0.1f)));
}

// --- end-to-end small graphs -------------------------------------------------

Graph tiny_cnn(int sparsity_m, Rng& rng) {
  Graph g({8, 8, 16});
  const ConvGeom c1{.ix = 8, .iy = 8, .c = 16, .k = 32, .fx = 3, .fy = 3,
                    .stride = 1, .pad = 1};
  Node n1;
  n1.op = OpType::kConv2d;
  n1.name = "c1";
  n1.inputs = {0};
  n1.conv = c1;
  n1.weights = sparsity_m
                   ? test::random_sparse_weights(32, c1.fsz(), sparsity_m, rng)
                   : test::random_weights(32, c1.fsz(), rng);
  n1.bias = test::random_bias(32, rng);
  n1.rq = calibrate_requant(c1.fsz());
  n1.out_shape = {8, 8, 32};
  const int id1 = g.add(std::move(n1));
  Node r;
  r.op = OpType::kRelu;
  r.name = "relu";
  r.inputs = {id1};
  r.out_shape = {8, 8, 32};
  const int id2 = g.add(std::move(r));
  Node flat;
  flat.op = OpType::kReshape;
  flat.name = "flat";
  flat.inputs = {id2};
  flat.out_shape = {1, 8 * 8 * 32};
  const int id3 = g.add(std::move(flat));
  Node fc;
  fc.op = OpType::kFc;
  fc.name = "head";
  fc.inputs = {id3};
  fc.fc = FcGeom{.tokens = 1, .c = 2048, .k = 10};
  fc.weights = test::random_weights(10, 2048, rng);
  fc.bias = test::random_bias(10, rng);
  fc.rq = calibrate_requant(2048);
  fc.out_shape = {1, 10};
  g.add(std::move(fc));
  return g;
}

TEST(Executor, TinyCnnRunsAndVerifiesOnIss) {
  Rng rng(42);
  const Graph g = tiny_cnn(0, rng);
  const Tensor8 input = Tensor8::random({8, 8, 16}, rng);
  CompileOptions opt;
  ScheduleExecutor exec(opt);
  exec.set_verify_with_sim(true);  // replay single-tile layers on the ISS
  const NetworkRun run = exec.run(g, input);
  EXPECT_EQ(run.output.shape(), (std::vector<int>{1, 10}));
  EXPECT_GT(run.total_cycles, 0u);
  EXPECT_EQ(run.layers.size(), 4u);
  EXPECT_GT(run.total_macs, 0);
}

TEST(Executor, SparseFasterThanDenseOnTinyCnnAt16) {
  Rng rng(43);
  const Tensor8 input = Tensor8::random({8, 8, 16}, rng);
  CompileOptions opt;
  ScheduleExecutor dense_exec(opt);
  const NetworkRun dense = dense_exec.run(tiny_cnn(0, rng), input);
  Rng rng2(43);
  opt.enable_isa = true;
  ScheduleExecutor sparse_exec(opt);
  Rng rng3(44);
  const NetworkRun sparse = sparse_exec.run(tiny_cnn(16, rng3), input);
  EXPECT_LT(sparse.layers[0].total_cycles, dense.layers[0].total_cycles);
  EXPECT_LT(sparse.layers[0].weight_bytes, dense.layers[0].weight_bytes);
}

TEST(Executor, DeterministicCyclesAcrossRuns) {
  Rng rng(7);
  const Graph g = tiny_cnn(8, rng);
  const Tensor8 input = Tensor8::random({8, 8, 16}, rng);
  CompileOptions opt;
  ScheduleExecutor e1(opt), e2(opt);
  const auto r1 = e1.run(g, input);
  const auto r2 = e2.run(g, input);
  EXPECT_EQ(r1.total_cycles, r2.total_cycles);
  EXPECT_TRUE(r1.output == r2.output);
}

TEST(Executor, InterleavedWeightsReduceDmaCycles) {
  Rng rng(8);
  const Graph g = tiny_cnn(8, rng);
  const Tensor8 input = Tensor8::random({8, 8, 16}, rng);
  CompileOptions opt;
  ScheduleExecutor inter(opt);
  opt.interleaved_weights = false;
  ScheduleExecutor separate(opt);
  const auto r1 = inter.run(g, input);
  const auto r2 = separate.run(g, input);
  EXPECT_LE(r1.layers[0].dma_cycles, r2.layers[0].dma_cycles);
  EXPECT_TRUE(r1.output == r2.output);
}

TEST(Executor, WeightRegionSelection) {
  EXPECT_EQ(ScheduleExecutor::weight_region(100 * 1024), MemRegion::kL2);
  EXPECT_EQ(ScheduleExecutor::weight_region(10 * 1024 * 1024), MemRegion::kL3);
}

}  // namespace
}  // namespace decimate
